// vlint: command-line front-end for the static analyzer.
//
//   vlint [--json] [--figures] [file...]
//
// Files ending in .vql are checked as ViewQL (each against a summary built
// from a same-named .vcl sibling when one exists); everything else is ViewCL.
// --figures lints the paper's entire figure + objective corpus. The exit code
// is the number of programs with errors (capped at 125 so it stays a valid
// exit status). After linting, the tool asserts the zero-read guarantee: the
// Target transport must have charged exactly 0 ns and 0 bytes.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/decorate.h"
#include "src/vision/figures.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

struct NamedProgram {
  std::string name;
  std::string source;
  bool is_viewql = false;
  std::string viewcl_context;  // summary source for ViewQL programs
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool figures = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--figures") == 0) {
      figures = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: vlint [--json] [--figures] [file...]\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (!figures && files.empty()) {
    std::fprintf(stderr, "vlint: nothing to lint (try --figures or a file)\n");
    return 2;
  }

  // Boot the kernel so the registries match what a debugging session sees.
  // Linting itself never reads target memory — asserted below.
  vkern::Kernel kernel;
  vkern::Workload workload(&kernel);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel);
  vision::RegisterFigureSymbols(&debugger, &workload);
  viewcl::EmojiRegistry emoji;

  analysis::Linter linter(&debugger.types(), &debugger.symbols(), &debugger.helpers(), &emoji);

  std::vector<NamedProgram> programs;
  if (figures) {
    for (const vision::FigureDef& fig : vision::AllFigures()) {
      programs.push_back({fig.id, fig.viewcl, false, ""});
    }
    for (const vision::ObjectiveDef& obj : vision::AllObjectives()) {
      const vision::FigureDef* fig = vision::FindFigure(obj.figure_id);
      programs.push_back({std::string("objective:") + obj.figure_id, obj.viewql, true,
                          fig != nullptr ? fig->viewcl : ""});
    }
  }
  for (const std::string& path : files) {
    NamedProgram p;
    p.name = path;
    if (!ReadFile(path, &p.source)) {
      std::fprintf(stderr, "vlint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    if (path.size() > 4 && path.compare(path.size() - 4, 4, ".vql") == 0) {
      p.is_viewql = true;
      std::string sibling = path.substr(0, path.size() - 4) + ".vcl";
      ReadFile(sibling, &p.viewcl_context);  // optional
    }
    programs.push_back(std::move(p));
  }

  uint64_t ns_before = debugger.target().clock().nanos();
  uint64_t bytes_before = debugger.target().bytes_read();

  int failed = 0;
  size_t total_diags = 0;
  for (const NamedProgram& p : programs) {
    analysis::LintResult result;
    if (p.is_viewql) {
      analysis::ProgramSummary summary;
      if (!p.viewcl_context.empty()) {
        summary = linter.SummarizeViewCl(p.viewcl_context);
      }
      result = linter.LintViewQl(p.source, p.viewcl_context.empty() ? nullptr : &summary);
    } else {
      result = linter.LintViewCl(p.source);
    }
    total_diags += result.diagnostics.size();
    if (json) {
      std::printf("%s\n", result.diagnostics.ToJson(p.name).Dump(2).c_str());
    } else if (!result.diagnostics.empty()) {
      std::printf("%s", result.diagnostics.RenderText(p.source, p.name).c_str());
    } else {
      std::printf("%s: clean\n", p.name.c_str());
    }
    if (result.diagnostics.errors() > 0) {
      ++failed;
    }
  }

  uint64_t ns_charged = debugger.target().clock().nanos() - ns_before;
  uint64_t bytes_read = debugger.target().bytes_read() - bytes_before;
  if (!json) {
    std::printf("vlint: %zu program(s), %zu diagnostic(s), %d with errors\n", programs.size(),
                total_diags, failed);
    std::printf("vlint: transport charged %llu ns, read %llu bytes (zero-read guarantee)\n",
                static_cast<unsigned long long>(ns_charged),
                static_cast<unsigned long long>(bytes_read));
  }
  if (ns_charged != 0 || bytes_read != 0) {
    std::fprintf(stderr, "vlint: FATAL: zero-read guarantee violated\n");
    return 120;
  }
  return failed > 125 ? 125 : failed;
}
