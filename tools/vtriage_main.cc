// vtriage: command-line front-end for the vcheck invariant engine.
//
//   vtriage [--json] [--rule <id|name>] [--list]
//   vtriage --figures
//   vtriage --scenario stackrot|dirtypipe [--json]
//
// Default mode boots a kernel + workload and runs one full sweep; the exit
// code is the number of violations (capped at 100). `--figures` is the CI
// gate: it steps the workload and re-sweeps after extracting each of the 21
// paper figures (all must be clean — zero false positives), then self-tests
// detection by running both CVE fault scenarios on fresh kernels (each must
// produce violations naming the corrupted address); exit 0 iff the corpus is
// clean AND both scenarios are detected. `--scenario` runs one fault scenario
// and sweeps — nonzero exit (the violation count) is the expected outcome.
//
// Every sweep must reconcile with Target::clock() — each rule body's charge
// plus the epoch sync must account for every nanosecond the sweep put on the
// virtual clock. A reconciliation failure exits 120 (mirroring vlint's
// zero-read exit code).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vkern/faults.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

constexpr int kExitReconcile = 120;  // sweep charge failed to reconcile
constexpr int kExitUsage = 2;
constexpr int kMaxExitViolations = 100;

struct SweepOutcome {
  size_t violations = 0;
  bool reconciled = true;
  // True when any violation message names `needle` (the corrupted address).
  bool names_addr = false;
};

SweepOutcome RunSweep(analysis::CheckEngine* engine, const std::string& rule, bool json,
                      const char* tag, uint64_t needle = 0) {
  SweepOutcome outcome;
  analysis::CheckReport report;
  if (rule.empty()) {
    report = engine->RunAll();
  } else {
    vl::StatusOr<analysis::CheckReport> one = engine->RunOne(rule);
    if (!one.ok()) {
      std::fprintf(stderr, "vtriage: %s\n", one.status().ToString().c_str());
      outcome.violations = 1;
      return outcome;
    }
    report = std::move(one).value();
  }
  outcome.violations = report.violations();
  outcome.reconciled = report.reconciled;
  if (needle != 0) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%llx", static_cast<unsigned long long>(needle));
    for (const analysis::CheckRuleReport& r : report.rules) {
      for (const analysis::CheckViolation& v : r.violations) {
        if (v.diagnostic.message.find(hex) != std::string::npos || v.addr == needle) {
          outcome.names_addr = true;
        }
      }
    }
  }
  if (json) {
    vl::Json j = report.ToJson();
    j["tag"] = vl::Json::Str(tag);
    std::printf("%s\n", j.Dump(2).c_str());
  } else if (outcome.violations > 0 || !outcome.reconciled) {
    std::printf("--- %s ---\n%s", tag, report.RenderText().c_str());
  } else {
    std::printf("%s: clean (%zu rules, %llu reads, %llu ns, reconciled)\n", tag,
                report.rules_run(), static_cast<unsigned long long>(report.reads),
                static_cast<unsigned long long>(report.charged_ns + report.sync_ns));
  }
  return outcome;
}

struct Env {
  vkern::Kernel kernel;
  vkern::Workload workload;
  dbg::KernelDebugger debugger;
  analysis::CheckEngine engine;

  Env()
      : workload(&kernel),
        debugger((workload.Run(), &kernel), dbg::LatencyModel::GdbQemu()),
        engine(&debugger.types(), &debugger.symbols(), &debugger.session()) {
    vision::RegisterFigureSymbols(&debugger, &workload);
  }
};

int FinalExit(size_t violations, bool reconciled) {
  if (!reconciled) {
    std::fprintf(stderr, "vtriage: FATAL: sweep charge does not reconcile with "
                         "Target::clock()\n");
    return kExitReconcile;
  }
  return violations > static_cast<size_t>(kMaxExitViolations)
             ? kMaxExitViolations
             : static_cast<int>(violations);
}

int RunFigures(bool json) {
  Env env;
  size_t false_positives = 0;
  bool reconciled = true;
  for (const vision::FigureDef& fig : vision::AllFigures()) {
    env.workload.Step();
    viewcl::Interpreter interp(&env.debugger);
    auto graph = interp.RunProgram(fig.viewcl);
    if (!graph.ok()) {
      std::fprintf(stderr, "vtriage: figure %s failed to extract: %s\n", fig.id,
                   graph.status().ToString().c_str());
      return kExitUsage;
    }
    SweepOutcome outcome = RunSweep(&env.engine, "", json, fig.id);
    false_positives += outcome.violations;
    reconciled = reconciled && outcome.reconciled;
  }
  // Detection self-test: each CVE scenario on a fresh kernel must trip the
  // suite and name the corrupted node/slot.
  bool stackrot_detected = false;
  bool dirtypipe_detected = false;
  {
    Env cve;
    vkern::StackRotReport report =
        vkern::RunStackRotScenario(&cve.kernel, cve.workload.process(0));
    // The stale pointer survives only in CPU#1's register (the report) — feed
    // it to the engine the way a crash handler would.
    cve.engine.AddSuspect(report.fetched_addr);
    SweepOutcome outcome =
        RunSweep(&cve.engine, "", json, "scenario:stackrot", report.fetched_addr);
    stackrot_detected = outcome.violations > 0 && outcome.names_addr;
    reconciled = reconciled && outcome.reconciled;
  }
  {
    Env cve;
    vkern::DirtyPipeReport report =
        vkern::RunDirtyPipeScenario(&cve.kernel, cve.workload.process(0), true);
    // The arena is identity-mapped, so a host pointer IS the target address.
    uint64_t buf_addr =
        report.pipe != nullptr
            ? reinterpret_cast<uint64_t>(&report.pipe->bufs[report.buggy_buf_index])
            : 0;
    SweepOutcome outcome =
        RunSweep(&cve.engine, "", json, "scenario:dirtypipe", buf_addr);
    dirtypipe_detected = outcome.violations > 0 && outcome.names_addr;
    reconciled = reconciled && outcome.reconciled;
  }
  if (!json) {
    std::printf("vtriage: 21 figures swept, %zu false positive(s); "
                "stackrot %s, dirtypipe %s\n",
                false_positives, stackrot_detected ? "DETECTED" : "MISSED",
                dirtypipe_detected ? "DETECTED" : "MISSED");
  }
  if (!reconciled) {
    std::fprintf(stderr, "vtriage: FATAL: sweep charge does not reconcile with "
                         "Target::clock()\n");
    return kExitReconcile;
  }
  if (false_positives > 0 || !stackrot_detected || !dirtypipe_detected) {
    return 1;
  }
  return 0;
}

int RunScenario(const std::string& name, const std::string& rule, bool json) {
  Env env;
  uint64_t needle = 0;
  if (name == "stackrot") {
    vkern::StackRotReport report =
        vkern::RunStackRotScenario(&env.kernel, env.workload.process(0));
    env.engine.AddSuspect(report.fetched_addr);
    needle = report.fetched_addr;
  } else if (name == "dirtypipe") {
    vkern::RunDirtyPipeScenario(&env.kernel, env.workload.process(0), true);
  } else {
    std::fprintf(stderr, "vtriage: unknown scenario '%s' (stackrot|dirtypipe)\n",
                 name.c_str());
    return kExitUsage;
  }
  SweepOutcome outcome =
      RunSweep(&env.engine, rule, json, ("scenario:" + name).c_str(), needle);
  return FinalExit(outcome.violations, outcome.reconciled);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool figures = false;
  std::string rule;
  std::string scenario;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--figures") == 0) {
      figures = true;
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      rule = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const analysis::CheckRuleInfo& info : analysis::CheckEngine::Catalog()) {
        std::printf("%s  %-20s %s\n", info.id, info.name, info.description);
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: vtriage [--json] [--rule <id|name>] [--list] "
                  "[--figures] [--scenario stackrot|dirtypipe]\n");
      return 0;
    } else {
      std::fprintf(stderr, "vtriage: unknown argument '%s'\n", argv[i]);
      return kExitUsage;
    }
  }
  if (figures) {
    return RunFigures(json);
  }
  if (!scenario.empty()) {
    return RunScenario(scenario, rule, json);
  }
  Env env;
  SweepOutcome outcome = RunSweep(&env.engine, rule, json, "sweep");
  return FinalExit(outcome.violations, outcome.reconciled);
}
