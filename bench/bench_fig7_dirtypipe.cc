// Reproduces paper Figure 7 (CVE-2022-0847): the Dirty Pipe object graph.
// Runs the vulnerable and fixed splice paths, plots the pipe ring + page
// cache, and uses the paper's ViewQL (REACHABLE + set operations) to isolate
// the single page shared between a file and a pipe.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vkern/faults.h"

namespace {

const char* kProgram = R"(
define Page as Box<page> [
  Text index
  Text<u64:x> flags
]
define PipeBuffer as Box<pipe_buffer> [
  Text offset, len
  Text<flag:pipe_buf_flag_bits> flags
  Link page -> Page(${@this.page})
]
define Pipe as Box<pipe_inode_info> [
  Text head, tail, ring_size
  Container bufs: Array(${@this.bufs}, ${@this.ring_size}).forEach |b| {
    yield PipeBuffer(${&@b})
  }
]
define AddressSpace as Box<address_space> [
  Text nrpages
  Container pagecache: Array.selectFrom(${&@this.i_pages}, Page)
]
define File as Box<file> [
  Text<string> path: ${@this.f_dentry->d_name}
  Link pagecache -> AddressSpace(${@this.f_mapping})
]
plot File(${target_file})
plot Pipe(${target_pipe})
)";

const char* kViewQl = R"(
  file_pgc = SELECT File.pagecache FROM *
  file_pgs = SELECT page FROM REACHABLE(file_pgc)
  pipe_buf = SELECT pipe_buffer FROM *
  pipe_pgs = SELECT page FROM REACHABLE(pipe_buf)
  UPDATE pipe_pgs \ file_pgs WITH trimmed: true
)";

}  // namespace

int main() {
  std::printf("=== Figure 7: the Dirty Pipe (CVE-2022-0847) object graph ===\n\n");
  vlbench::BenchEnv env;

  std::printf("%-12s %12s %12s %12s %10s\n", "path", "CAN_MERGE", "corrupted", "shared-pg",
              "trimmed");
  std::printf("%.64s\n", "----------------------------------------------------------------");

  for (bool vulnerable : {true, false}) {
    vkern::DirtyPipeReport report = vkern::RunDirtyPipeScenario(
        env.kernel.get(), env.workload->process(vulnerable ? 0 : 1), vulnerable);

    env.debugger->symbols().AddGlobal("target_file",
                                      env.debugger->types().FindByName("file"),
                                      reinterpret_cast<uint64_t>(report.victim_file));
    env.debugger->symbols().AddGlobal(
        "target_pipe", env.debugger->types().FindByName("pipe_inode_info"),
        reinterpret_cast<uint64_t>(report.pipe));

    viewcl::Interpreter interp(env.debugger.get());
    auto graph = interp.RunProgram(kProgram);
    if (!graph.ok()) {
      std::printf("plot failed: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    viewql::QueryEngine engine(graph->get(), env.debugger.get());
    if (vl::Status status = engine.Execute(kViewQl); !status.ok()) {
      std::printf("viewql failed: %s\n", status.ToString().c_str());
      return 1;
    }
    // The shared pages survive the trim.
    const viewql::BoxSet* file_pgs = engine.FindSet("file_pgs");
    const viewql::BoxSet* pipe_pgs = engine.FindSet("pipe_pgs");
    int shared = 0;
    for (uint64_t id : *pipe_pgs) {
      if (file_pgs->count(id) != 0) {
        ++shared;
      }
    }
    std::printf("%-12s %12s %12s %12d %10llu\n", vulnerable ? "vulnerable" : "fixed",
                report.can_merge_leaked ? "leaked" : "clean",
                report.file_content_corrupted ? "YES" : "no", shared,
                static_cast<unsigned long long>(engine.stats().boxes_updated));
  }

  std::printf("\nshape check vs the paper: exactly one page survives the ViewQL trim on "
              "the vulnerable path —\nthe page-cache page owned by the read-only file and "
              "writable through the pipe's CAN_MERGE buffer.\n");
  return 0;
}
