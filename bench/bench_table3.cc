// Reproduces paper Table 3 + §5.2: the ten hypothetical debugging objectives.
// For each: the reference ViewQL's size and effect (boxes updated), and
// whether the natural-language request synthesizes (via vchat, the paper's
// DeepSeek-V2 stand-in) to a program with the *identical* effect — the
// "all 10 objectives correctly synthesized" claim.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/viewcl/lexer.h"
#include "src/viewql/query.h"
#include "src/vision/vchat.h"

namespace {

bool SameAttrs(const viewcl::ViewGraph& a, const viewcl::ViewGraph& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (uint64_t id = 0; id < a.size(); ++id) {
    if (a.box(id)->attrs() != b.box(id)->attrs()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("=== Table 3: debugging objectives for ViewQL usability (+ vchat/LLM "
              "synthesis, paper 5.2) ===\n\n");
  vlbench::BenchEnv env;
  vision::VchatSynthesizer vchat;

  std::printf("%-10s %-52s %4s %8s %6s %s\n", "Fig.", "Debugging objective (simplified)",
              "LOC", "updated", "NL ok", "NL==ref");
  std::printf("%.100s\n",
              "---------------------------------------------------------------------------"
              "-------------------------");

  int synthesized_ok = 0;
  int equivalent = 0;
  for (const vision::ObjectiveDef& objective : vision::AllObjectives()) {
    const vision::FigureDef* figure = vision::FindFigure(objective.figure_id);
    viewcl::Interpreter interp_ref(env.debugger.get());
    auto graph_ref = interp_ref.RunProgram(figure->viewcl);
    if (!graph_ref.ok()) {
      std::printf("%-10s plot failed: %s\n", figure->ulk_figure,
                  graph_ref.status().ToString().c_str());
      continue;
    }
    viewql::QueryEngine ref_engine(graph_ref->get(), env.debugger.get());
    vl::Status ref_status = ref_engine.Execute(objective.viewql);
    uint64_t updated = ref_engine.stats().boxes_updated;

    bool nl_ok = false;
    bool nl_equal = false;
    auto synthesized = vchat.Synthesize(objective.nl_request);
    if (synthesized.ok()) {
      viewcl::Interpreter interp_syn(env.debugger.get());
      auto graph_syn = interp_syn.RunProgram(figure->viewcl);
      if (graph_syn.ok()) {
        viewql::QueryEngine syn_engine(graph_syn->get(), env.debugger.get());
        if (syn_engine.Execute(*synthesized).ok()) {
          nl_ok = true;
          nl_equal = SameAttrs(**graph_ref, **graph_syn);
        }
      }
    }
    synthesized_ok += nl_ok ? 1 : 0;
    equivalent += nl_equal ? 1 : 0;

    std::printf("%-10s %-52.52s %4d %8llu %6s %s\n", figure->ulk_figure,
                objective.description, viewcl::CountCodeLines(objective.viewql),
                static_cast<unsigned long long>(updated), nl_ok ? "yes" : "NO",
                ref_status.ok() ? (nl_equal ? "yes" : "NO") : "ref-failed");
  }

  std::printf("\nsummary: %d/10 natural-language requests synthesized, %d/10 "
              "effect-equivalent to the reference ViewQL\n",
              synthesized_ok, equivalent);
  std::printf("paper reference: DeepSeek-V2 correctly synthesizes all 10 (every objective "
              "<10 ViewQL lines)\n");
  return 0;
}
