// Reproduces paper Figure 4 (+ §3.1): visualizing the maple tree of a
// process's address space, then the ViewQL simplification (collapse slot
// lists, trim writable VMAs). Reports plot sizes before/after, extraction
// cost, and the maple substrate's structural stats across a range of address
// -space sizes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/render.h"

int main() {
  std::printf("=== Figure 4: maple tree visualization and ViewQL simplification ===\n\n");
  vlbench::BenchEnv env;
  const vision::FigureDef* figure = vision::FindFigure("fig9_2");

  // Sweep address-space sizes: keep mmapping into the target to grow the tree.
  vkern::task_struct* target = env.workload->process(0);
  env.debugger->symbols().AddGlobal(
      "target_task", env.debugger->types().FindByName("task_struct"),
      reinterpret_cast<uint64_t>(target));

  std::printf("%8s %8s %8s %8s %10s %12s %12s\n", "VMAs", "height", "nodes", "boxes",
              "visible", "after-VQL", "extract-ms");
  std::printf("%.78s\n",
              "---------------------------------------------------------------------------"
              "---");

  for (int round = 0; round < 6; ++round) {
    // Grow the mapping between rounds.
    if (round > 0) {
      for (int i = 0; i < 24; ++i) {
        uint64_t flags = vkern::VM_READ | vkern::VM_ANON |
                         ((i % 2 == 0) ? uint64_t{vkern::VM_WRITE} : 0);
        (void)env.kernel->procs().Mmap(target->mm, 0x3000, flags, nullptr, 0);
      }
      env.kernel->rcu().Synchronize();
    }
    env.debugger->target().ResetStats();
    viewcl::Interpreter interp(env.debugger.get());
    auto graph = interp.RunProgram(figure->viewcl);
    if (!graph.ok()) {
      std::printf("plot failed: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    double extract_ms = env.debugger->target().clock().millis();

    // Show the maple-tree view, then measure the raw vs refined plot size.
    viewql::QueryEngine engine(graph->get(), env.debugger.get());
    (void)engine.Execute("a = SELECT mm_struct FROM *\nUPDATE a WITH view: show_mt");
    size_t before_visible = vision::VisibleBoxes(**graph).size();
    (void)engine.Execute(
        "slots = SELECT maple_node.slots FROM *\n"
        "UPDATE slots WITH collapsed: true\n"
        "writable_vmas = SELECT vm_area_struct FROM * WHERE is_writable == true\n"
        "UPDATE writable_vmas WITH trimmed: true");
    size_t after_visible = vision::VisibleBoxes(**graph).size();

    std::printf("%8d %8d %8llu %8zu %10zu %12zu %12.1f\n", target->mm->map_count,
                env.kernel->maple().Height(&target->mm->mm_mt),
                static_cast<unsigned long long>(
                    env.kernel->maple().CountEntries(&target->mm->mm_mt)),
                (*graph)->size(), before_visible, after_visible, extract_ms);
  }

  std::string why;
  bool valid = env.kernel->maple().Validate(&target->mm->mm_mt, &why);
  std::printf("\nmaple invariants after growth: %s\n", valid ? "OK" : why.c_str());
  std::printf("shape check: the ViewQL pass must shrink the visible plot (paper: the "
              "refined Figure 4 is readable, the raw plot is not)\n");
  return valid ? 0 : 1;
}
