// Reproduces paper Table 2: "Representative figures in the book Understanding
// the Linux Kernel ported to Linux kernel 6.1" — each row gives the ViewCL
// program size (LOC), the data-structure change class since 2.6.11, and (as
// evidence the port works) the number of boxes/edges extracted live.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/viewcl/lexer.h"

int main() {
  std::printf("=== Table 2: ULK figures ported to the simulated 6.1 kernel ===\n\n");
  vlbench::BenchEnv env;

  std::printf("%-3s %-38s %-5s %-3s %8s %8s  %s\n", "#", "Diagram description", "LOC",
              "Delta", "boxes", "edges", "status");
  std::printf("%.110s\n",
              "---------------------------------------------------------------------------"
              "-----------------------------------");

  int total_loc = 0;
  int changed = 0;
  int major = 0;
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    int loc = viewcl::CountCodeLines(figure.viewcl);
    total_loc += loc;
    if (std::string(figure.delta) != "O") {
      ++changed;
    }
    if (std::string(figure.delta) == "D") {
      ++major;
    }
    viewcl::Interpreter interp(env.debugger.get());
    auto graph = interp.RunProgram(figure.viewcl);
    std::string status = "ok";
    uint64_t boxes = 0;
    uint64_t edges = 0;
    if (!graph.ok()) {
      status = graph.status().ToString();
    } else {
      boxes = (*graph)->size();
      edges = vlbench::CountEdges(**graph);
      if (!interp.warnings().empty()) {
        status = "ok (" + std::to_string(interp.warnings().size()) + " warnings)";
      }
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%s. %s", figure.ulk_figure, figure.description);
    std::printf("%-3d %-38.38s %-5d %-3s %8llu %8llu  %s\n", figure.index, label, loc,
                figure.delta, static_cast<unsigned long long>(boxes),
                static_cast<unsigned long long>(edges), status.c_str());
  }

  std::printf("\nDelta legend: O negligible | o variables/fields changed | d structures/"
              "relations changed | D implementation replaced\n");
  std::printf("summary: %zu figures, %d total ViewCL LOC, %d/%zu changed since 2.6.11 "
              "(%d with major changes)\n",
              vision::AllFigures().size(), total_loc, changed, vision::AllFigures().size(),
              major);
  std::printf("paper reference: 17/21 figures changed, 14/17 significantly; LOC range "
              "19-154\n");
  return 0;
}
