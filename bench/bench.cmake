# Benchmarks are declared from the top level so that build/bench/ holds only
# the runnable binaries (the documented run command is `for b in build/bench/*`).
function(vl_add_bench name)
  add_executable(${name} bench/${name}.cc)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE vl_serve vl_vision vl_viewql vl_viewcl vl_dbg vl_vkern vl_support)
endfunction()

vl_add_bench(bench_table2)
vl_add_bench(bench_table3)
vl_add_bench(bench_table4)
vl_add_bench(bench_fig2_focus)
vl_add_bench(bench_fig4_maple)
vl_add_bench(bench_fig5_stackrot)
vl_add_bench(bench_fig7_dirtypipe)
vl_add_bench(bench_ablation)
vl_add_bench(bench_report)

add_executable(bench_micro bench/bench_micro.cc)
set_target_properties(bench_micro PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(bench_micro PRIVATE vl_serve vl_vision vl_viewql vl_viewcl vl_dbg vl_vkern vl_support benchmark::benchmark)
