// Reproduces paper Figure 5 (CVE-2023-3269): sweeps the StackRot race across
// every workload process and both a buggy and a "fixed" interleaving,
// verifying the use-after-free manifests exactly when the reader relies on
// mmap_lock alone.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/vkern/faults.h"

int main() {
  std::printf("=== Figure 5: the StackRot (CVE-2023-3269) race, swept across processes "
              "===\n\n");
  vlbench::BenchEnv env;

  std::printf("%-6s %-10s %10s %10s %8s %6s\n", "pid", "comm", "on-cblist", "gp-done",
              "UAF", "fixed");
  std::printf("%.58s\n", "-------------------------------------------------------------");

  int reproduced = 0;
  int prevented = 0;
  int total = 0;
  for (int p = 0; p < env.workload->nr_processes(); ++p) {
    vkern::task_struct* victim = env.workload->process(p);

    // Buggy interleaving: reader holds only mmap_lock.
    vkern::StackRotReport report = vkern::RunStackRotScenario(env.kernel.get(), victim);
    bool uaf = report.uaf_detected && report.node_was_on_cblist &&
               report.grace_period_completed;
    reproduced += uaf ? 1 : 0;

    // "Fixed" interleaving: the reader takes the RCU read lock around the
    // walk, pinning the grace period for the duration of the access.
    vkern::mm_struct* mm = victim->mm;
    vkern::maple_node* node =
        env.kernel->maple().LeafContaining(&mm->mm_mt, mm->start_stack);
    bool fixed_ok = false;
    if (node != nullptr) {
      env.kernel->rcu().ReadLock(1);
      env.kernel->maple().RebuildLeaf(&mm->mm_mt, mm->start_stack);
      env.kernel->rcu().Synchronize();
      bool freed_during_read =
          vkern::SlabAllocator::IsPoisoned(node, sizeof(vkern::maple_node));
      env.kernel->rcu().ReadUnlock(1);
      env.kernel->rcu().Synchronize();
      fixed_ok = !freed_during_read;
      prevented += fixed_ok ? 1 : 0;
    }
    ++total;

    std::printf("%-6d %-10s %10s %10s %8s %6s\n", victim->pid, victim->comm,
                report.node_was_on_cblist ? "yes" : "no",
                report.grace_period_completed ? "yes" : "no", uaf ? "YES" : "no",
                fixed_ok ? "safe" : "UAF");
  }

  std::printf("\nsummary: UAF reproduced %d/%d with mmap_lock only; prevented %d/%d under "
              "rcu_read_lock\n",
              reproduced, total, prevented, total);
  std::printf("paper reference: the mmap read lock does not hold off the RCU grace period "
              "— that is the root cause\n");
  return (reproduced == total && prevented == total) ? 0 : 1;
}
