// Reproduces paper Figure 2: the pane-based "focus" workflow. Two primary
// panes display the same tasks through different structures (parenthood tree
// and CFS run queue); focus must locate every queued task in both panes, and
// a secondary pane displays the focused object. Reports hit rates and the
// focus operation's cost.

#include <chrono>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/vision/panes.h"

int main() {
  std::printf("=== Figure 2: cross-pane focus over two process structures ===\n\n");
  vlbench::BenchEnv env;
  vision::PaneManager panes(env.debugger.get());

  viewcl::Interpreter interp(env.debugger.get());
  auto tree = interp.RunProgram(vision::FindFigure("fig3_4")->viewcl);
  auto rq = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
  if (!tree.ok() || !rq.ok()) {
    std::printf("plot failed\n");
    return 1;
  }
  (void)panes.Split(1, 'h');
  (void)panes.SetGraph(1, std::move(tree).value(), "fig3_4");
  (void)panes.SetGraph(2, std::move(rq).value(), "fig7_1");

  std::printf("pane layout:\n%s\n", panes.LayoutAscii().c_str());

  // Focus on every task queued on either CPU; each must be found in both
  // panes (it is simultaneously managed by the parent tree and a run queue).
  int focused = 0;
  int both = 0;
  int total_hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
    env.kernel->sched().ForEachQueued(cpu, [&](vkern::task_struct* task) {
      auto hits = panes.FocusAddress(reinterpret_cast<uint64_t>(task));
      std::set<int> pane_hits;
      for (const vision::FocusHit& hit : hits) {
        pane_hits.insert(hit.pane_id);
      }
      ++focused;
      total_hits += static_cast<int>(hits.size());
      if (pane_hits.count(1) != 0 && pane_hits.count(2) != 0) {
        ++both;
      }
    });
  }
  auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);

  std::printf("focused %d queued tasks: %d/%d found in BOTH panes (%d total hits)\n",
              focused, both, focused, total_hits);
  std::printf("focus wall time: %.2f ms total, %.3f ms per search (front-end only — the\n"
              "paper reports ViewQL/front-end cost as negligible next to extraction)\n",
              elapsed.count(), focused > 0 ? elapsed.count() / focused : 0.0);

  // Secondary pane for the first queued task.
  vkern::task_struct* first = nullptr;
  env.kernel->sched().ForEachQueued(0, [&](vkern::task_struct* task) {
    if (first == nullptr) {
      first = task;
    }
  });
  if (first != nullptr) {
    auto hits = panes.FocusAddress(reinterpret_cast<uint64_t>(first));
    if (!hits.empty()) {
      auto secondary = panes.CreateSecondary(hits[0].pane_id, {hits[0].box_id});
      if (secondary.ok()) {
        std::printf("\nsecondary pane %d (focused pid %d):\n%s", *secondary, first->pid,
                    panes.RenderPane(*secondary).c_str());
      }
    }
  }
  return both == focused ? 0 : 1;
}
