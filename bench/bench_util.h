// Shared benchmark harness: boots a kernel, runs the paper's workload, and
// attaches a debugger with figure symbols registered.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>

#include "src/dbg/kernel_introspect.h"
#include "src/vision/figures.h"
#include "src/vkern/kernel.h"
#include "src/viewcl/graph.h"
#include "src/vkern/workload.h"

namespace vlbench {

struct BenchEnv {
  std::unique_ptr<vkern::Kernel> kernel;
  std::unique_ptr<vkern::Workload> workload;
  std::unique_ptr<dbg::KernelDebugger> debugger;

  // `steps` matches the paper's ~500-LoC workload scale by default.
  explicit BenchEnv(int steps = 120, dbg::LatencyModel model = dbg::LatencyModel::GdbQemu()) {
    kernel = std::make_unique<vkern::Kernel>();
    vkern::WorkloadConfig config;
    config.steps = steps;
    workload = std::make_unique<vkern::Workload>(kernel.get(), config);
    workload->Run();
    // Keep mm_percpu_wq lively so the workqueue figure is non-trivial.
    kernel->QueueMmPercpuWork(0);
    kernel->QueueMmPercpuWork(1);
    // The shared debugger reads uncached: the paper-reproduction benches
    // (table4, ablation) measure raw transport traffic and swap latency
    // models mid-run, which a warm block cache would silently zero out.
    // Cache experiments (bench_report, bench_micro's guard) construct their
    // own KernelDebugger with the cache enabled.
    debugger = std::make_unique<dbg::KernelDebugger>(kernel.get(), std::move(model),
                                                     dbg::CacheConfig::Disabled());
    vision::RegisterFigureSymbols(debugger.get(), workload.get());
  }
};

// Counts boxes backed by real kernel objects (Table 4's per-object metric).
inline uint64_t CountObjects(const viewcl::ViewGraph& graph) {
  uint64_t n = 0;
  graph.ForEachBox([&n](const viewcl::VBox& box) {
    if (!box.is_virtual()) {
      ++n;
    }
  });
  return n;
}

// Counts edges (links + container members) across active views.
inline uint64_t CountEdges(const viewcl::ViewGraph& graph) {
  uint64_t n = 0;
  graph.ForEachBox([&](const viewcl::VBox& box) {
    for (const viewcl::ViewInstance& view : box.views()) {
      n += view.links.size();
      for (const viewcl::ContainerItem& container : view.containers) {
        n += container.members.size();
      }
    }
  });
  return n;
}

}  // namespace vlbench

#endif  // BENCH_BENCH_UTIL_H_
