// Observability report: re-runs the Table 4 per-figure extraction and the
// Figure 2 focus workflow with the deterministic tracer enabled, and emits
// machine-readable BENCH_observability.json — per-figure span aggregates,
// read-size/latency histograms, per-transport attribution, and ViewQL
// execution stats — plus BENCH_explain.json, the per-figure refresh
// attribution trees (each reconciled against the virtual clock to the
// nanosecond). Timestamps are virtual nanoseconds, so two runs of this
// binary produce identical JSON.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "src/analysis/check.h"
#include "src/analysis/lint.h"
#include "src/serve/server.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/viewcl/interp.h"
#include "src/vision/panes.h"

namespace {

vl::Json SpanStatsToJson(const vl::Tracer& tracer) {
  vl::Json spans = vl::Json::Object();
  for (const auto& [name, stats] : tracer.stats()) {
    vl::Json s = vl::Json::Object();
    s["count"] = vl::Json::Int(static_cast<int64_t>(stats.count));
    s["total_ns"] = vl::Json::Int(static_cast<int64_t>(stats.total_ns));
    s["self_ns"] = vl::Json::Int(static_cast<int64_t>(stats.self_ns));
    spans[name] = std::move(s);
  }
  return spans;
}

// One traced figure extraction on one transport.
vl::Json MeasureFigure(vlbench::BenchEnv& env, const vision::FigureDef& figure,
                       const dbg::LatencyModel& model) {
  vl::Tracer& tracer = vl::Tracer::Instance();
  tracer.Clear();
  vl::MetricsRegistry::Instance().Reset();
  env.debugger->target().set_model(model);
  env.debugger->target().ResetStats();

  vl::Json j = vl::Json::Object();
  j["figure"] = vl::Json::Str(figure.id);
  j["model"] = vl::Json::Str(model.name);
  uint64_t objects = 0;
  {
    vl::ScopedSpan span("bench.figure");
    viewcl::Interpreter interp(env.debugger.get());
    auto graph = interp.RunProgram(figure.viewcl);
    if (!graph.ok()) {
      j["ok"] = vl::Json::Bool(false);
      return j;
    }
    objects = vlbench::CountObjects(**graph);
  }
  const dbg::Target& target = env.debugger->target();
  j["ok"] = vl::Json::Bool(true);
  j["objects"] = vl::Json::Int(static_cast<int64_t>(objects));
  j["clock_ns"] = vl::Json::Int(static_cast<int64_t>(target.clock().nanos()));
  j["reads"] = vl::Json::Int(static_cast<int64_t>(target.reads()));
  j["bytes"] = vl::Json::Int(static_cast<int64_t>(target.bytes_read()));
  j["trace_self_ns"] = vl::Json::Int(static_cast<int64_t>(tracer.TotalSelfNanos()));
  j["spans"] = SpanStatsToJson(tracer);
  j["metrics"] = vl::MetricsRegistry::Instance().ToJson();
  return j;
}

// The Figure 2 focus workflow: two panes, a ViewQL refinement, focus searches.
vl::Json MeasureFig2Focus(vlbench::BenchEnv& env) {
  vl::Tracer& tracer = vl::Tracer::Instance();
  tracer.Clear();
  vl::MetricsRegistry::Instance().Reset();
  env.debugger->target().set_model(dbg::LatencyModel::GdbQemu());
  env.debugger->target().ResetStats();

  vl::Json j = vl::Json::Object();
  vision::PaneManager panes(env.debugger.get());
  int focused = 0;
  int both = 0;
  {
    vl::ScopedSpan span("bench.fig2_focus");
    viewcl::Interpreter interp(env.debugger.get());
    auto tree = interp.RunProgram(vision::FindFigure("fig3_4")->viewcl);
    auto rq = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
    if (!tree.ok() || !rq.ok()) {
      j["ok"] = vl::Json::Bool(false);
      return j;
    }
    (void)panes.Split(1, 'h');
    (void)panes.SetGraph(1, std::move(tree).value(), "fig3_4");
    (void)panes.SetGraph(2, std::move(rq).value(), "fig7_1");
    (void)panes.ApplyViewQl(1,
                            "a = SELECT task_struct FROM * WHERE mm != NULL\n"
                            "UPDATE a WITH collapsed: true");
    for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
      env.kernel->sched().ForEachQueued(cpu, [&](vkern::task_struct* task) {
        auto hits = panes.FocusAddress(reinterpret_cast<uint64_t>(task));
        std::set<int> pane_hits;
        for (const vision::FocusHit& hit : hits) {
          pane_hits.insert(hit.pane_id);
        }
        ++focused;
        if (pane_hits.count(1) != 0 && pane_hits.count(2) != 0) {
          ++both;
        }
      });
    }
    panes.RenderPane(1);
    panes.RenderPane(2);
  }
  j["ok"] = vl::Json::Bool(true);
  j["focused"] = vl::Json::Int(focused);
  j["found_in_both"] = vl::Json::Int(both);
  j["clock_ns"] =
      vl::Json::Int(static_cast<int64_t>(env.debugger->target().clock().nanos()));
  j["trace_self_ns"] = vl::Json::Int(static_cast<int64_t>(tracer.TotalSelfNanos()));
  if (const viewql::ExecStats* stats = panes.exec_stats(1)) {
    j["pane1_exec"] = stats->ToJson();
  }
  j["spans"] = SpanStatsToJson(tracer);
  j["session"] = panes.SaveState();
  return j;
}

// One tree-mode traced pane refresh of a figure: the full explain tree
// (ViewQL statement → ViewCL definition → adapter → struct type, with cache
// hit/miss byte attribution), verified to reconcile with the target clock to
// the nanosecond.
vl::Json MeasureExplain(vlbench::BenchEnv& env, const vision::FigureDef& figure,
                        const dbg::LatencyModel& model) {
  vl::Tracer& tracer = vl::Tracer::Instance();
  env.debugger->target().set_model(model);

  vl::Json j = vl::Json::Object();
  j["figure"] = vl::Json::Str(figure.id);
  j["model"] = vl::Json::Str(model.name);

  // Seed the pane outside the measured window, then attribute one refresh.
  vision::PaneManager panes(env.debugger.get());
  viewcl::Interpreter interp(env.debugger.get());
  auto seed = interp.RunProgram(figure.viewcl);
  if (!seed.ok() ||
      !panes.SetGraph(1, std::move(seed).value(), figure.viewcl).ok()) {
    j["ok"] = vl::Json::Bool(false);
    return j;
  }

  tracer.Clear();
  tracer.SetTreeEnabled(true);
  uint64_t before = env.debugger->target().clock().nanos();
  auto result = panes.RefreshPane(
      1, [&](const std::string& program) { return interp.RunProgram(program); });
  uint64_t clock_delta = env.debugger->target().clock().nanos() - before;
  tracer.SetTreeEnabled(false);
  if (!result.ok()) {
    j["ok"] = vl::Json::Bool(false);
    return j;
  }
  uint64_t tree_total = 0;
  for (const auto& [name, node] : tracer.tree_root().children) {
    tree_total += node.total_ns;
  }
  j["ok"] = vl::Json::Bool(true);
  j["boxes"] = vl::Json::Int(static_cast<int64_t>(result->boxes));
  j["clock_ns"] = vl::Json::Int(static_cast<int64_t>(clock_delta));
  j["tree_total_ns"] = vl::Json::Int(static_cast<int64_t>(tree_total));
  j["reconciled"] = vl::Json::Bool(tree_total == clock_delta);
  j["tree"] = tracer.TreeToJson();
  return j;
}

// Repeated pane-refresh workflow on one transport, cache on vs off: the
// developer re-renders the same figures after every breakpoint stop. Records
// charged-ns/read counts for both sessions, the cache's hit accounting, and
// verifies every refresh rendered byte-identically.
vl::Json MeasureCacheWorkflow(vlbench::BenchEnv& env, const dbg::LatencyModel& model) {
  constexpr int kRefreshes = 3;
  const char* kFigures[] = {"fig3_4", "fig7_1"};

  dbg::KernelDebugger cached(env.kernel.get(), model);
  dbg::KernelDebugger uncached(env.kernel.get(), model, dbg::CacheConfig::Disabled());
  vision::RegisterFigureSymbols(&cached, env.workload.get());
  vision::RegisterFigureSymbols(&uncached, env.workload.get());
  cached.target().ResetStats();
  uncached.target().ResetStats();

  vl::Json j = vl::Json::Object();
  j["model"] = vl::Json::Str(model.name);
  j["refreshes"] = vl::Json::Int(kRefreshes);
  bool ok = true;
  bool identical = true;
  vision::AsciiRenderer renderer;
  for (int i = 0; i < kRefreshes; ++i) {
    for (const char* id : kFigures) {
      const vision::FigureDef* figure = vision::FindFigure(id);
      viewcl::Interpreter interp_cached(&cached);
      auto graph_cached = interp_cached.RunProgram(figure->viewcl);
      viewcl::Interpreter interp_uncached(&uncached);
      auto graph_uncached = interp_uncached.RunProgram(figure->viewcl);
      if (!graph_cached.ok() || !graph_uncached.ok()) {
        ok = false;
        continue;
      }
      if (renderer.Render(**graph_cached) != renderer.Render(**graph_uncached)) {
        identical = false;
      }
    }
  }

  uint64_t cached_ns = cached.target().clock().nanos();
  uint64_t uncached_ns = uncached.target().clock().nanos();
  j["ok"] = vl::Json::Bool(ok);
  j["renders_identical"] = vl::Json::Bool(identical);
  j["cached"] = cached.target().StatsToJson();
  j["cached"]["cache"] = cached.session().StatsToJson();
  j["uncached"] = uncached.target().StatsToJson();
  j["speedup"] = vl::Json::Number(
      cached_ns > 0 ? static_cast<double>(uncached_ns) / static_cast<double>(cached_ns)
                    : 0.0);
  return j;
}

// Cold-extraction cost with and without compiled extraction plans: every
// Table 2 figure, on both transport models. Each cell is one cold run on a
// fresh debugger (empty block cache) so the number is the full first-paint
// charge — the case vectored prefetch targets. Renders must stay
// byte-identical cell by cell; "passed" additionally requires the
// high-fanout PID-hash figure to clear the 3x floor on both models.
vl::Json MeasurePlan(vlbench::BenchEnv& env) {
  const char* kGateFigure = "fig3_6";
  constexpr double kGateFloor = 3.0;
  const dbg::LatencyModel kModels[] = {dbg::LatencyModel::GdbQemu(),
                                       dbg::LatencyModel::KgdbRpi400()};

  vl::Json j = vl::Json::Object();
  j["gate_figure"] = vl::Json::Str(kGateFigure);
  j["gate_floor"] = vl::Json::Number(kGateFloor);
  vl::Json models = vl::Json::Array();
  bool identical = true;
  bool gate_ok = true;
  vision::AsciiRenderer renderer;
  for (const dbg::LatencyModel& model : kModels) {
    vl::Json m = vl::Json::Object();
    m["model"] = vl::Json::Str(model.name);
    vl::Json figures = vl::Json::Array();
    for (const vision::FigureDef& figure : vision::AllFigures()) {
      auto run = [&](bool plans, uint64_t* ns) -> std::string {
        dbg::KernelDebugger debugger(env.kernel.get(), model);
        vision::RegisterFigureSymbols(&debugger, env.workload.get());
        viewcl::InterpLimits limits;
        limits.compile_plans = plans;
        viewcl::Interpreter interp(&debugger, limits);
        auto graph = interp.RunProgram(figure.viewcl);
        *ns = debugger.target().clock().nanos();
        return graph.ok() ? renderer.Render(**graph) : std::string();
      };
      uint64_t interp_ns = 0;
      uint64_t plan_ns = 0;
      std::string classic_render = run(false, &interp_ns);
      std::string planned_render = run(true, &plan_ns);
      bool cell_identical = !classic_render.empty() && classic_render == planned_render;
      identical = identical && cell_identical;
      double speedup = plan_ns > 0
                           ? static_cast<double>(interp_ns) / static_cast<double>(plan_ns)
                           : 0.0;
      if (figure.id == std::string(kGateFigure) && speedup < kGateFloor) {
        gate_ok = false;
      }
      vl::Json cell = vl::Json::Object();
      cell["figure"] = vl::Json::Str(figure.id);
      cell["interpreter_ns"] = vl::Json::Int(static_cast<int64_t>(interp_ns));
      cell["plan_ns"] = vl::Json::Int(static_cast<int64_t>(plan_ns));
      cell["speedup"] = vl::Json::Number(speedup);
      cell["renders_identical"] = vl::Json::Bool(cell_identical);
      figures.Append(std::move(cell));
    }
    m["figures"] = std::move(figures);
    models.Append(std::move(m));
  }
  j["models"] = std::move(models);
  j["renders_identical"] = vl::Json::Bool(identical);
  j["gate_ok"] = vl::Json::Bool(gate_ok);
  j["passed"] = vl::Json::Bool(identical && gate_ok);
  return j;
}

// Steady-state incremental refresh: one small mutation batch (a single CPU
// tick — the breakpoint-stepping scenario) between pane refreshes. The
// "full" path is the classic cache (whole-cache
// flush per epoch, fresh re-extraction each refresh); the "delta" path
// layers dirty-log delta invalidation and memoized re-extraction on top
// (CacheConfig::Incremental + a persistent interpreter per figure). Both
// render after every refresh and must stay byte-identical.
vl::Json MeasureIncremental(vlbench::BenchEnv& env, const dbg::LatencyModel& model) {
  constexpr int kRefreshes = 4;
  // A multi-pane dashboard mixing the scheduler figures (whose pages a CPU
  // tick dirties) with mm/VFS figures (whose pages stay clean): the full
  // path refetches every pane, the delta path only the scheduler's pages.
  const char* kFigures[] = {"fig3_4", "fig7_1", "fig8_2",
                            "fig12_3", "fig14_3", "fig15_1"};

  dbg::KernelDebugger full(env.kernel.get(), model);
  dbg::KernelDebugger delta(env.kernel.get(), model, dbg::CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&full, env.workload.get());
  vision::RegisterFigureSymbols(&delta, env.workload.get());

  vl::Json j = vl::Json::Object();
  j["model"] = vl::Json::Str(model.name);
  j["refreshes"] = vl::Json::Int(kRefreshes);
  bool ok = true;
  bool identical = true;
  vision::AsciiRenderer renderer;

  std::map<std::string, std::unique_ptr<viewcl::Interpreter>> delta_interps;
  for (const char* id : kFigures) {
    const vision::FigureDef* figure = vision::FindFigure(id);
    auto interp = std::make_unique<viewcl::Interpreter>(&delta);
    ok = ok && interp->Load(figure->viewcl).ok();
    delta_interps[id] = std::move(interp);
  }

  // Warm both paths: steady state starts after the first full extraction.
  for (const char* id : kFigures) {
    const vision::FigureDef* figure = vision::FindFigure(id);
    viewcl::Interpreter warm_full(&full);
    ok = ok && warm_full.RunProgram(figure->viewcl).ok();
    ok = ok && delta_interps[id]->Run().ok();
  }

  vl::Json per_refresh = vl::Json::Array();
  uint64_t full_total = 0;
  uint64_t delta_total = 0;
  for (int i = 0; i < kRefreshes && ok; ++i) {
    env.kernel->TickCpu(i % vkern::kNrCpus);
    uint64_t full_before = full.target().clock().nanos();
    uint64_t delta_before = delta.target().clock().nanos();
    uint64_t full_reads_before = full.target().reads();
    uint64_t delta_reads_before = delta.target().reads();
    for (const char* id : kFigures) {
      const vision::FigureDef* figure = vision::FindFigure(id);
      viewcl::Interpreter interp_full(&full);
      auto graph_full = interp_full.RunProgram(figure->viewcl);
      auto graph_delta = delta_interps[id]->Run();
      if (!graph_full.ok() || !graph_delta.ok()) {
        ok = false;
        continue;
      }
      if (renderer.Render(**graph_full) != renderer.Render(**graph_delta)) {
        identical = false;
      }
    }
    uint64_t full_ns = full.target().clock().nanos() - full_before;
    uint64_t delta_ns = delta.target().clock().nanos() - delta_before;
    full_total += full_ns;
    delta_total += delta_ns;
    vl::Json round = vl::Json::Object();
    round["full_ns"] = vl::Json::Int(static_cast<int64_t>(full_ns));
    round["delta_ns"] = vl::Json::Int(static_cast<int64_t>(delta_ns));
    round["full_reads"] =
        vl::Json::Int(static_cast<int64_t>(full.target().reads() - full_reads_before));
    round["delta_reads"] =
        vl::Json::Int(static_cast<int64_t>(delta.target().reads() - delta_reads_before));
    per_refresh.Append(std::move(round));
  }

  uint64_t memo_replays = 0;
  uint64_t memo_misses = 0;
  for (const auto& [id, interp] : delta_interps) {
    memo_replays += interp->memo_replays();
    memo_misses += interp->memo_misses();
  }
  j["ok"] = vl::Json::Bool(ok);
  j["renders_identical"] = vl::Json::Bool(identical);
  j["per_refresh"] = std::move(per_refresh);
  j["full_ns"] = vl::Json::Int(static_cast<int64_t>(full_total));
  j["delta_ns"] = vl::Json::Int(static_cast<int64_t>(delta_total));
  j["speedup"] = vl::Json::Number(
      delta_total > 0 ? static_cast<double>(full_total) / static_cast<double>(delta_total)
                      : 0.0);
  j["delta_cache"] = delta.session().StatsToJson();
  j["dirty"] = delta.target().dirty_stats().ToJson();
  j["memo_replays"] = vl::Json::Int(static_cast<int64_t>(memo_replays));
  j["memo_misses"] = vl::Json::Int(static_cast<int64_t>(memo_misses));
  return j;
}

// Static-analysis sweep: vlint over every paper figure + objective. The
// whole point of the analyzer is that it consults only the type registry, so
// the report asserts transport charged-ns and read-bytes deltas are exactly
// zero across the sweep.
vl::Json MeasureLint(vlbench::BenchEnv& env) {
  viewcl::EmojiRegistry emoji;
  analysis::Linter linter(&env.debugger->types(), &env.debugger->symbols(),
                          &env.debugger->helpers(), &emoji);

  const dbg::Target& target = env.debugger->target();
  uint64_t ns_before = target.clock().nanos();
  uint64_t reads_before = target.reads();
  uint64_t bytes_before = target.bytes_read();

  int programs = 0;
  uint64_t errors = 0;
  uint64_t warnings = 0;
  auto wall_start = std::chrono::steady_clock::now();
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    analysis::LintResult result = linter.LintViewCl(figure.viewcl);
    ++programs;
    errors += result.diagnostics.errors();
    warnings += result.diagnostics.warnings();
  }
  for (const vision::ObjectiveDef& objective : vision::AllObjectives()) {
    const vision::FigureDef* figure = vision::FindFigure(objective.figure_id);
    analysis::ProgramSummary summary =
        linter.SummarizeViewCl(figure != nullptr ? figure->viewcl : "");
    analysis::LintResult result = linter.LintViewQl(objective.viewql, &summary);
    ++programs;
    errors += result.diagnostics.errors();
    warnings += result.diagnostics.warnings();
  }
  auto wall_end = std::chrono::steady_clock::now();

  uint64_t charged_ns = target.clock().nanos() - ns_before;
  uint64_t reads = target.reads() - reads_before;
  uint64_t bytes = target.bytes_read() - bytes_before;
  vl::Json j = vl::Json::Object();
  j["programs"] = vl::Json::Int(programs);
  j["errors"] = vl::Json::Int(static_cast<int64_t>(errors));
  j["warnings"] = vl::Json::Int(static_cast<int64_t>(warnings));
  j["wall_ns"] = vl::Json::Int(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_start)
          .count());
  j["transport_charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["transport_reads"] = vl::Json::Int(static_cast<int64_t>(reads));
  j["transport_bytes_read"] = vl::Json::Int(static_cast<int64_t>(bytes));
  j["zero_read"] = vl::Json::Bool(charged_ns == 0 && reads == 0 && bytes == 0);
  return j;
}

// vcheck: full vs incremental invariant sweeps across the figure corpus. Two
// engines audit the same kernel: `full` re-runs all eleven rules per sweep
// (a CPU tick bumps the generation, so its classic cache flushes and every
// byte is re-fetched); `delta` rides a delta-enabled session and skips rules
// whose recorded page footprint stayed clean. Per figure: one CPU tick + one
// figure extraction (the dashboard refresh a sweep piggybacks on), then both
// sweeps. Every sweep must reconcile with Target::clock() and stay clean.
vl::Json MeasureCheck(vlbench::BenchEnv& env) {
  dbg::KernelDebugger full(env.kernel.get(), dbg::LatencyModel::GdbQemu());
  // Constructed second: the delta session's dirty-page journal baselines at
  // construction, and it must cover `full`'s in-arena bookkeeping writes.
  dbg::KernelDebugger delta(env.kernel.get(), dbg::LatencyModel::GdbQemu(),
                            dbg::CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&full, env.workload.get());
  vision::RegisterFigureSymbols(&delta, env.workload.get());
  analysis::CheckEngine full_engine(&full.types(), &full.symbols(), &full.session());
  analysis::CheckEngine delta_engine(&delta.types(), &delta.symbols(),
                                     &delta.session());

  vl::Json j = vl::Json::Object();
  j["workload"] = vl::Json::Str(
      "per figure: one cpu tick + one figure extraction, then a full "
      "11-rule sweep vs an incremental re-sweep with footprint skipping");

  // Warm both engines: incremental steady state starts after one full audit.
  bool ok = full_engine.RunAll().reconciled && delta_engine.RunAll().reconciled;

  vl::Json cells = vl::Json::Array();
  uint64_t full_total = 0;
  uint64_t delta_total = 0;
  size_t violations = 0;
  int tick = 0;
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    if (std::string(figure.id) == "fig19_2") {
      continue;  // merged with fig19_1, as in bench_table4
    }
    env.kernel->TickCpu(tick++ % vkern::kNrCpus);
    viewcl::Interpreter interp(&delta);
    ok = ok && interp.RunProgram(figure.viewcl).ok();

    analysis::CheckReport full_report = full_engine.RunAll();
    analysis::CheckReport inc_report = delta_engine.RunIncremental();
    ok = ok && full_report.reconciled && inc_report.reconciled;
    violations += full_report.violations() + inc_report.violations();
    full_total += full_report.clock_delta_ns;
    delta_total += inc_report.clock_delta_ns;

    vl::Json cell = vl::Json::Object();
    cell["figure"] = vl::Json::Str(figure.id);
    cell["full_ns"] = vl::Json::Int(static_cast<int64_t>(full_report.clock_delta_ns));
    cell["incremental_ns"] =
        vl::Json::Int(static_cast<int64_t>(inc_report.clock_delta_ns));
    cell["skipped"] = vl::Json::Int(static_cast<int64_t>(inc_report.rules_skipped()));
    cell["reran"] = vl::Json::Int(static_cast<int64_t>(inc_report.rules_run()));
    cell["speedup"] = vl::Json::Number(
        inc_report.clock_delta_ns > 0
            ? static_cast<double>(full_report.clock_delta_ns) /
                  static_cast<double>(inc_report.clock_delta_ns)
            : 0.0);
    cell["reconciled"] =
        vl::Json::Bool(full_report.reconciled && inc_report.reconciled);
    cells.Append(std::move(cell));
  }

  // Quiescent re-sweep: no mutation since the last audit, so every rule's
  // footprint is clean and the whole catalog is skipped. (After a CPU tick
  // the rules all re-run — every walk crosses a dirtied task/rq page — and
  // the per-figure speedup above comes from page-level delta cache
  // retention instead.)
  analysis::CheckReport quiescent = delta_engine.RunIncremental();
  ok = ok && quiescent.reconciled &&
       quiescent.rules_skipped() == analysis::CheckEngine::Catalog().size();
  j["quiescent_skipped"] = vl::Json::Int(static_cast<int64_t>(quiescent.rules_skipped()));
  j["quiescent_ns"] = vl::Json::Int(static_cast<int64_t>(quiescent.clock_delta_ns));

  j["figures"] = std::move(cells);
  j["full_ns"] = vl::Json::Int(static_cast<int64_t>(full_total));
  j["incremental_ns"] = vl::Json::Int(static_cast<int64_t>(delta_total));
  j["speedup"] = vl::Json::Number(
      delta_total > 0 ? static_cast<double>(full_total) / static_cast<double>(delta_total)
                      : 0.0);
  j["violations"] = vl::Json::Int(static_cast<int64_t>(violations));
  j["passed"] =
      vl::Json::Bool(ok && violations == 0 && delta_total < full_total);
  return j;
}

// ---------------------------------------------------------------------------
// vserve: aggregate work served vs charged transport time as overlapping
// clients pile onto one shard. Every server in this section boots an
// identical deterministic kernel and steps it in lockstep, so a fleet
// client's render bytes must equal the single-session reference exactly.

constexpr int kServeRounds = 3;

const char* ServeFigure(size_t client, int overlap_pct) {
  // 100%: everyone refreshes fig3_4. 50%: odd clients refresh fig7_1.
  return (overlap_pct == 100 || client % 2 == 0) ? "fig3_4" : "fig7_1";
}

// Single-session mode: one server, one client, `rounds` step+refresh cycles.
// Returns the render bytes per round (the byte-identity reference).
std::vector<std::string> ServeSingleSessionRenders(const char* figure_id, int rounds) {
  vserve::Server server;
  if (!server.BootShard("serve", dbg::LatencyModel::GdbQemu()).ok()) {
    return {};
  }
  auto client = server.Connect();
  if (!client.ok() || !(*client)->Plot(1, vision::FindFigure(figure_id)->viewcl).ok()) {
    return {};
  }
  std::vector<std::string> renders;
  for (int round = 0; round < rounds; ++round) {
    server.shard_workload("serve")->Step();
    auto result = (*client)->Refresh(1);
    if (!result.ok()) {
      return {};
    }
    renders.push_back(result->render);
  }
  return renders;
}

vl::Json MeasureServeCell(size_t clients, int overlap_pct,
                          const std::map<std::string, std::vector<std::string>>& reference) {
  vl::Json j = vl::Json::Object();
  j["clients"] = vl::Json::Int(static_cast<int64_t>(clients));
  j["overlap_pct"] = vl::Json::Int(overlap_pct);
  j["rounds"] = vl::Json::Int(kServeRounds);
  j["ok"] = vl::Json::Bool(false);

  vserve::Server server;
  if (!server.BootShard("serve", dbg::LatencyModel::GdbQemu()).ok()) {
    return j;
  }
  std::vector<vl::StatusOr<vserve::Client>> fleet;
  for (size_t i = 0; i < clients; ++i) {
    fleet.push_back(server.Connect());
    if (!fleet.back().ok() ||
        !(*fleet.back())
             ->Plot(1, vision::FindFigure(ServeFigure(i, overlap_pct))->viewcl)
             .ok()) {
      return j;
    }
  }

  bool renders_identical = true;
  uint64_t refreshes = 0;
  for (int round = 0; round < kServeRounds; ++round) {
    server.shard_workload("serve")->Step();
    for (size_t i = 0; i < clients; ++i) {
      auto result = (*fleet[i])->Refresh(1);
      if (!result.ok()) {
        return j;
      }
      refreshes++;
      const std::vector<std::string>& expect = reference.at(ServeFigure(i, overlap_pct));
      renders_identical =
          renders_identical && result->render == expect[static_cast<size_t>(round)];
    }
  }

  uint64_t charged_ns = 0;
  uint64_t deduped = 0;
  for (auto& client : fleet) {
    charged_ns += (*client)->charged_ns();
    deduped += (*client)->deduped();
  }
  j["ok"] = vl::Json::Bool(true);
  j["refreshes_served"] = vl::Json::Int(static_cast<int64_t>(refreshes));
  j["aggregate_charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(deduped));
  j["renders_identical"] = vl::Json::Bool(renders_identical);
  return j;
}

vl::Json MeasureServe() {
  std::map<std::string, std::vector<std::string>> reference;
  for (const char* figure_id : {"fig3_4", "fig7_1"}) {
    reference[figure_id] = ServeSingleSessionRenders(figure_id, kServeRounds);
    if (reference[figure_id].empty()) {
      vl::Json failed = vl::Json::Object();
      failed["passed"] = vl::Json::Bool(false);
      return failed;
    }
  }

  vl::Json report = vl::Json::Object();
  report["workload"] = vl::Json::Str(
      "N clients on one GDB/QEMU shard; per round: one workload step, then "
      "every client refreshes its pane; 100% overlap = all fig3_4, 50% = odd "
      "clients fig7_1");
  vl::Json cells = vl::Json::Array();
  bool passed = true;
  for (int overlap_pct : {100, 50}) {
    uint64_t single_charged = 0;
    for (size_t clients : {1u, 2u, 4u, 8u}) {
      vl::Json cell = MeasureServeCell(clients, overlap_pct, reference);
      const vl::Json* ok = cell.Find("ok");
      if (ok == nullptr || !ok->AsBool()) {
        passed = false;
        cells.Append(std::move(cell));
        continue;
      }
      uint64_t charged =
          static_cast<uint64_t>(cell.Find("aggregate_charged_ns")->AsNumber());
      uint64_t refreshes =
          static_cast<uint64_t>(cell.Find("refreshes_served")->AsNumber());
      if (clients == 1) {
        single_charged = charged;
      }
      bool identical = cell.Find("renders_identical")->AsBool();
      double work_vs_single = static_cast<double>(refreshes) / kServeRounds;
      double charged_vs_single =
          single_charged > 0 ? static_cast<double>(charged) / single_charged : 0.0;
      cell["work_vs_single"] = vl::Json::Number(work_vs_single);
      cell["charged_vs_single"] = vl::Json::Number(charged_vs_single);
      passed = passed && identical;
      // The acceptance gate: a fully-overlapping 8-client fleet serves >= 6x
      // the work of one client for < 2x the charged transport time.
      if (overlap_pct == 100 && clients == 8) {
        passed = passed && work_vs_single >= 6.0 && charged_vs_single < 2.0;
      }
      std::printf("  serve %zu client(s) %3d%% overlap: %5.1fx work, %4.2fx charged, "
                  "renders_identical=%s\n",
                  clients, overlap_pct, work_vs_single, charged_vs_single,
                  identical ? "true" : "false");
      cells.Append(std::move(cell));
    }
  }
  report["cells"] = std::move(cells);
  report["passed"] = vl::Json::Bool(passed);
  return report;
}

// ---------------------------------------------------------------------------
// vflight: queue/service decomposition across the overlap x clients grid.
// Each round pauses the scheduler, submits the whole fleet's refreshes at one
// virtual instant, and resumes — so requests genuinely queue behind each
// other and the recorder's queue_ns/service_ns split carries signal. The gate
// is reconciliation: summed flight service_ns + control_ns must equal the
// shard's charged-ns exactly, per cell.

vl::Json MeasureFlightCell(size_t clients, int overlap_pct) {
  vl::Json j = vl::Json::Object();
  j["clients"] = vl::Json::Int(static_cast<int64_t>(clients));
  j["overlap_pct"] = vl::Json::Int(overlap_pct);
  j["rounds"] = vl::Json::Int(kServeRounds);
  j["ok"] = vl::Json::Bool(false);

  vserve::Server server;
  if (!server.BootShard("serve", dbg::LatencyModel::GdbQemu()).ok()) {
    return j;
  }
  std::vector<vl::StatusOr<vserve::Client>> fleet;
  for (size_t i = 0; i < clients; ++i) {
    fleet.push_back(server.Connect());
    if (!fleet.back().ok() ||
        !(*fleet.back())
             ->Plot(1, vision::FindFigure(ServeFigure(i, overlap_pct))->viewcl)
             .ok()) {
      return j;
    }
  }

  for (int round = 0; round < kServeRounds; ++round) {
    server.shard_workload("serve")->Step();
    server.Pause();
    std::vector<vserve::Ticket> tickets;
    for (auto& client : fleet) {
      auto ticket = (*client)->SubmitRefresh(1);
      if (!ticket.ok()) {
        server.Resume();
        return j;
      }
      tickets.push_back(*ticket);
    }
    server.Resume();
    for (vserve::Ticket& ticket : tickets) {
      if (!ticket.Wait().ok()) {
        return j;
      }
    }
  }

  vserve::FlightStats stats = server.flights().ShardStats("serve");
  vl::Json doc = server.ExportFlights();
  const vl::Json* shard = doc.Find("metadata")->Find("shards")->Find("serve");
  bool reconciled = shard != nullptr && shard->Find("reconciled")->AsBool();

  j["completed"] = vl::Json::Int(static_cast<int64_t>(stats.completed));
  j["executed"] = vl::Json::Int(static_cast<int64_t>(stats.executed));
  j["dedup_hits"] = vl::Json::Int(static_cast<int64_t>(stats.dedup_hits));
  j["queue_ns"] = stats.queue_ns.ToJson();
  j["service_ns"] = stats.service_ns.ToJson();
  j["total_ns"] = stats.total_ns.ToJson();
  j["flight_service_ns"] = vl::Json::Int(static_cast<int64_t>(stats.service_sum_ns));
  if (shard != nullptr) {
    j["charged_ns"] = *shard->Find("charged_ns");
    j["control_ns"] = *shard->Find("control_ns");
  }
  j["reconciled"] = vl::Json::Bool(reconciled);
  j["ok"] = vl::Json::Bool(
      reconciled && stats.completed == clients * static_cast<size_t>(kServeRounds));
  return j;
}

vl::Json MeasureFlight() {
  vl::Json report = vl::Json::Object();
  report["workload"] = vl::Json::Str(
      "N clients on one GDB/QEMU shard; per round: one workload step, then "
      "the whole fleet's refreshes submitted under Pause() and released at "
      "once — queue_ns/service_ns decomposition from the flight recorder, "
      "gated on exact service-vs-charged reconciliation");
  vl::Json cells = vl::Json::Array();
  bool passed = true;
  for (int overlap_pct : {100, 50}) {
    for (size_t clients : {1u, 2u, 4u, 8u}) {
      vl::Json cell = MeasureFlightCell(clients, overlap_pct);
      const vl::Json* ok = cell.Find("ok");
      bool cell_ok = ok != nullptr && ok->AsBool();
      passed = passed && cell_ok;
      if (cell_ok) {
        std::printf(
            "  flight %zu client(s) %3d%% overlap: queue p99 %.0f ns, "
            "service p99 %.0f ns, %lld dedup, reconciled=%s\n",
            clients, overlap_pct, cell.Find("queue_ns")->Find("p99")->AsNumber(),
            cell.Find("service_ns")->Find("p99")->AsNumber(),
            static_cast<long long>(cell.Find("dedup_hits")->AsInt()),
            cell.Find("reconciled")->AsBool() ? "true" : "false");
      }
      cells.Append(std::move(cell));
    }
  }
  report["cells"] = std::move(cells);
  report["passed"] = vl::Json::Bool(passed);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_observability.json";
  const char* cache_path = argc > 2 ? argv[2] : "BENCH_cache.json";
  const char* explain_path = argc > 3 ? argv[3] : "BENCH_explain.json";
  std::printf("=== observability report: traced table4 + fig2-focus workloads ===\n");
  vlbench::BenchEnv env;
  vl::Tracer::Instance().Enable();

  vl::Json report = vl::Json::Object();
  vl::Json figures = vl::Json::Array();
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    if (std::string(figure.id) == "fig19_2") {
      continue;  // merged with fig19_1, as in bench_table4
    }
    for (const dbg::LatencyModel& model :
         {dbg::LatencyModel::GdbQemu(), dbg::LatencyModel::KgdbRpi400()}) {
      vl::Json cell = MeasureFigure(env, figure, model);
      const vl::Json* ok = cell.Find("ok");
      std::printf("  %-12s %-16s %s\n", figure.id, model.name.c_str(),
                  ok != nullptr && ok->AsBool() ? "ok" : "FAILED");
      figures.Append(std::move(cell));
    }
  }
  report["table4"] = std::move(figures);
  report["fig2_focus"] = MeasureFig2Focus(env);
  report["per_model"] = env.debugger->target().StatsToJson();

  std::ofstream file(out_path);
  if (!file) {
    std::printf("error: cannot open %s\n", out_path);
    return 1;
  }
  file << report.Dump(2) << "\n";
  std::printf("wrote %s\n", out_path);

  // Per-figure refresh attribution: every paper figure, both transports, each
  // refresh's explain tree reconciled against the virtual clock.
  vl::Json explain_report = vl::Json::Object();
  vl::Json explains = vl::Json::Array();
  bool all_reconciled = true;
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    if (std::string(figure.id) == "fig19_2") {
      continue;  // merged with fig19_1, as in bench_table4
    }
    for (const dbg::LatencyModel& model :
         {dbg::LatencyModel::GdbQemu(), dbg::LatencyModel::KgdbRpi400()}) {
      vl::Json cell = MeasureExplain(env, figure, model);
      const vl::Json* ok = cell.Find("ok");
      const vl::Json* reconciled = cell.Find("reconciled");
      bool cell_ok = ok != nullptr && ok->AsBool() && reconciled != nullptr &&
                     reconciled->AsBool();
      all_reconciled = all_reconciled && cell_ok;
      std::printf("  explain %-12s %-16s %s\n", figure.id, model.name.c_str(),
                  cell_ok ? "reconciled" : "MISMATCH");
      explains.Append(std::move(cell));
    }
  }
  explain_report["figures"] = std::move(explains);
  explain_report["all_reconciled"] = vl::Json::Bool(all_reconciled);
  std::ofstream explain_file(explain_path);
  if (!explain_file) {
    std::printf("error: cannot open %s\n", explain_path);
    return 1;
  }
  explain_file << explain_report.Dump(2) << "\n";
  std::printf("wrote %s\n", explain_path);

  // Cache on/off comparison (tracing off: we want pure transport accounting).
  vl::Tracer::Instance().Disable();
  vl::Json cache_report = vl::Json::Object();
  vl::Json transports = vl::Json::Array();
  for (const dbg::LatencyModel& model :
       {dbg::LatencyModel::GdbQemu(), dbg::LatencyModel::KgdbRpi400()}) {
    vl::Json cell = MeasureCacheWorkflow(env, model);
    const vl::Json* speedup = cell.Find("speedup");
    const vl::Json* identical = cell.Find("renders_identical");
    std::printf("  cache %-16s speedup %.1fx renders_identical=%s\n",
                model.name.c_str(), speedup != nullptr ? speedup->AsNumber() : 0.0,
                identical != nullptr && identical->AsBool() ? "true" : "false");
    transports.Append(std::move(cell));
  }
  cache_report["workflow"] = vl::Json::Str("repeated pane refresh: fig3_4 + fig7_1 x3");
  cache_report["transports"] = std::move(transports);

  std::ofstream cache_file(cache_path);
  if (!cache_file) {
    std::printf("error: cannot open %s\n", cache_path);
    return 1;
  }
  cache_file << cache_report.Dump(2) << "\n";
  std::printf("wrote %s\n", cache_path);

  // Zero-read static analysis sweep over the full paper corpus.
  const char* lint_path = argc > 4 ? argv[4] : "BENCH_lint.json";
  vl::Json lint_report = MeasureLint(env);
  const vl::Json* zero_read = lint_report.Find("zero_read");
  const vl::Json* lint_errors = lint_report.Find("errors");
  std::printf("  lint %s program(s), %s error(s), zero_read=%s\n",
              lint_report.Find("programs")->Dump(0).c_str(),
              lint_errors != nullptr ? lint_errors->Dump(0).c_str() : "?",
              zero_read != nullptr && zero_read->AsBool() ? "true" : "false");
  std::ofstream lint_file(lint_path);
  if (!lint_file) {
    std::printf("error: cannot open %s\n", lint_path);
    return 1;
  }
  lint_file << lint_report.Dump(2) << "\n";
  std::printf("wrote %s\n", lint_path);
  if (zero_read == nullptr || !zero_read->AsBool()) {
    std::printf("error: lint sweep charged transport time — zero-read violated\n");
    return 1;
  }

  // Incremental refresh: full vs delta charged ns on a steady-state
  // small-mutation loop (last: it steps the shared workload).
  const char* incremental_path = argc > 5 ? argv[5] : "BENCH_incremental.json";
  vl::Json incremental_report = vl::Json::Object();
  vl::Json inc_transports = vl::Json::Array();
  bool inc_ok = true;
  for (const dbg::LatencyModel& model :
       {dbg::LatencyModel::GdbQemu(), dbg::LatencyModel::KgdbRpi400()}) {
    vl::Json cell = MeasureIncremental(env, model);
    const vl::Json* ok = cell.Find("ok");
    const vl::Json* speedup = cell.Find("speedup");
    const vl::Json* identical = cell.Find("renders_identical");
    bool cell_ok = ok != nullptr && ok->AsBool() && identical != nullptr &&
                   identical->AsBool();
    inc_ok = inc_ok && cell_ok;
    std::printf("  incremental %-16s speedup %.1fx renders_identical=%s\n",
                model.name.c_str(), speedup != nullptr ? speedup->AsNumber() : 0.0,
                identical != nullptr && identical->AsBool() ? "true" : "false");
    inc_transports.Append(std::move(cell));
  }
  incremental_report["workflow"] =
      vl::Json::Str("steady-state: one cpu tick between refreshes of a 6-pane "
                    "dashboard (fig3_4 fig7_1 fig8_2 fig12_3 fig14_3 fig15_1)");
  incremental_report["transports"] = std::move(inc_transports);
  std::ofstream incremental_file(incremental_path);
  if (!incremental_file) {
    std::printf("error: cannot open %s\n", incremental_path);
    return 1;
  }
  incremental_file << incremental_report.Dump(2) << "\n";
  std::printf("wrote %s\n", incremental_path);
  if (!inc_ok) {
    std::printf("error: incremental refresh diverged from full re-extraction\n");
    return 1;
  }

  // Invariant sweeps: full vs incremental vcheck charge across the corpus.
  const char* check_path = argc > 8 ? argv[8] : "BENCH_check.json";
  vl::Json check_report = MeasureCheck(env);
  const vl::Json* check_passed = check_report.Find("passed");
  const vl::Json* check_speedup = check_report.Find("speedup");
  std::printf("  check full %s ns vs incremental %s ns, speedup %.1fx, passed=%s\n",
              check_report.Find("full_ns")->Dump(0).c_str(),
              check_report.Find("incremental_ns")->Dump(0).c_str(),
              check_speedup != nullptr ? check_speedup->AsNumber() : 0.0,
              check_passed != nullptr && check_passed->AsBool() ? "true" : "false");
  std::ofstream check_file(check_path);
  if (!check_file) {
    std::printf("error: cannot open %s\n", check_path);
    return 1;
  }
  check_file << check_report.Dump(2) << "\n";
  std::printf("wrote %s\n", check_path);
  if (check_passed == nullptr || !check_passed->AsBool()) {
    std::printf("error: vcheck sweep missed its reconciliation/speedup gates\n");
    return 1;
  }

  // Extraction plans: cold interpreter-vs-plan charge per figure per model.
  const char* plan_path = argc > 9 ? argv[9] : "BENCH_plan.json";
  vl::Json plan_report = MeasurePlan(env);
  const vl::Json* plan_passed = plan_report.Find("passed");
  std::ofstream plan_file(plan_path);
  if (!plan_file) {
    std::printf("error: cannot open %s\n", plan_path);
    return 1;
  }
  plan_file << plan_report.Dump(2) << "\n";
  std::printf("wrote %s\n", plan_path);
  if (plan_passed == nullptr || !plan_passed->AsBool()) {
    std::printf("error: extraction plans missed the byte-identity/speedup gates\n");
    return 1;
  }

  // Multi-session serving: throughput and dedup accounting as overlapping
  // clients share one shard.
  const char* serve_path = argc > 6 ? argv[6] : "BENCH_serve.json";
  vl::Json serve_report = MeasureServe();
  const vl::Json* serve_passed = serve_report.Find("passed");
  std::ofstream serve_file(serve_path);
  if (!serve_file) {
    std::printf("error: cannot open %s\n", serve_path);
    return 1;
  }
  serve_file << serve_report.Dump(2) << "\n";
  std::printf("wrote %s\n", serve_path);
  if (serve_passed == nullptr || !serve_passed->AsBool()) {
    std::printf("error: serve fleet missed its dedup/byte-identity gates\n");
    return 1;
  }

  // Flight recorder: queue/service decomposition + reconciliation per cell.
  const char* flight_path = argc > 7 ? argv[7] : "BENCH_flight.json";
  vl::Json flight_report = MeasureFlight();
  const vl::Json* flight_passed = flight_report.Find("passed");
  std::ofstream flight_file(flight_path);
  if (!flight_file) {
    std::printf("error: cannot open %s\n", flight_path);
    return 1;
  }
  flight_file << flight_report.Dump(2) << "\n";
  std::printf("wrote %s\n", flight_path);
  if (flight_passed == nullptr || !flight_passed->AsBool()) {
    std::printf("error: flight decomposition failed to reconcile\n");
    return 1;
  }
  return 0;
}
