// Reproduces paper Table 4: the cost of plotting every ULK figure on the two
// debugger transports — GDB attached to localhost QEMU versus serial KGDB on
// a Raspberry Pi 400. Each cell is | total ms | ms/object | ms/KB |.
//
// Transport costs accrue on a virtual clock driven by a per-access latency
// model (calibrated so one uint64 over KGDB costs ~5 ms, the paper's
// observation); see DESIGN.md for the substitution rationale. The claim under
// test is the *shape*: KGDB per-object cost ~50x GDB-QEMU, figure-to-figure
// ordering by object count, and per-KB costs in a narrow band per transport.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"

namespace {

struct Cell {
  double total_ms = 0;
  double per_object_ms = 0;
  double per_kb_ms = 0;
  uint64_t objects = 0;
  bool ok = false;
};

Cell Measure(vlbench::BenchEnv& env, const vision::FigureDef& figure,
             const dbg::LatencyModel& model) {
  Cell cell;
  env.debugger->target().set_model(model);
  env.debugger->target().ResetStats();
  viewcl::Interpreter interp(env.debugger.get());
  auto graph = interp.RunProgram(figure.viewcl);
  if (!graph.ok()) {
    return cell;
  }
  cell.ok = true;
  cell.total_ms = env.debugger->target().clock().millis();
  cell.objects = vlbench::CountObjects(**graph);
  uint64_t bytes = (*graph)->TotalObjectBytes();
  cell.per_object_ms = cell.objects > 0 ? cell.total_ms / static_cast<double>(cell.objects) : 0;
  cell.per_kb_ms = bytes > 0 ? cell.total_ms / (static_cast<double>(bytes) / 1024.0) : 0;
  return cell;
}

}  // namespace

int main() {
  std::printf("=== Table 4: plotting cost per figure on two debugger transports ===\n");
  std::printf("(virtual-clock transport accounting; each cell: total ms | ms/object | "
              "ms/KB)\n\n");
  vlbench::BenchEnv env;

  std::printf("%-3s %-12s | %10s %8s %8s | %12s %9s %9s | %7s\n", "#", "Figure", "QEMU ms",
              "ms/obj", "ms/KB", "KGDB ms", "ms/obj", "ms/KB", "objects");
  std::printf("%.112s\n",
              "---------------------------------------------------------------------------"
              "----------------------------------------");

  double ratio_sum = 0;
  int ratio_count = 0;
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    if (std::string(figure.id) == "fig19_2") {
      continue;  // the paper merges Fig 19-1/19-2 into one performance row
    }
    Cell qemu = Measure(env, figure, dbg::LatencyModel::GdbQemu());
    Cell kgdb = Measure(env, figure, dbg::LatencyModel::KgdbRpi400());
    if (!qemu.ok || !kgdb.ok) {
      std::printf("%-3d %-12s plot failed\n", figure.index, figure.id);
      continue;
    }
    const char* label = std::string(figure.id) == "fig19_1" ? "Fig 19-1/2" : figure.ulk_figure;
    if (label[0] == '-') {
      label = figure.id;
    }
    std::printf("%-3d %-12s | %10.1f %8.2f %8.1f | %12.1f %9.2f %9.1f | %7llu\n",
                figure.index, label, qemu.total_ms, qemu.per_object_ms, qemu.per_kb_ms,
                kgdb.total_ms, kgdb.per_object_ms, kgdb.per_kb_ms,
                static_cast<unsigned long long>(qemu.objects));
    if (qemu.per_object_ms > 0) {
      ratio_sum += kgdb.per_object_ms / qemu.per_object_ms;
      ++ratio_count;
    }
  }

  std::printf("\nshape checks vs the paper:\n");
  std::printf("  mean KGDB/QEMU per-object slowdown: %.0fx (paper: ~50x; retrieving a "
              "uint64 over KGDB ~5 ms)\n",
              ratio_count > 0 ? ratio_sum / ratio_count : 0.0);
  std::printf("  paper GDB-QEMU totals span 10.1-326.0 ms; KGDB totals 17.4-20904.3 ms\n");
  return 0;
}
