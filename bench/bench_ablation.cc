// Ablation benches for the design choices DESIGN.md calls out:
//
//  (a) PRUNE: ViewCL reads only the fields a view declares. Baseline: a
//      debugger "print *object" that fetches every byte of every visited
//      object. Metric: bytes over the transport.
//  (b) FLATTEN: dot-paths collapse intermediate objects. Baseline: a program
//      that materializes every hop as a box. Metric: boxes + reads.
//  (c) DISTILL: Array.selectFrom renders a maple tree as a flat interval
//      list. Baseline: the full node-structure plot. Metric: boxes + reads.
//  (d) TRANSPORT SENSITIVITY: total plot cost under a per-access latency
//      sweep — cost is linear in transport round trips, which is why the
//      KGDB column of Table 4 scales the way it does.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"

namespace {

struct Run {
  bool ok = false;
  uint64_t boxes = 0;
  uint64_t reads = 0;
  uint64_t bytes_read = 0;
  uint64_t object_bytes = 0;
  double ms = 0;
};

Run Plot(vlbench::BenchEnv& env, const char* program) {
  Run run;
  env.debugger->target().ResetStats();
  viewcl::Interpreter interp(env.debugger.get());
  auto graph = interp.RunProgram(program);
  if (!graph.ok()) {
    std::printf("  plot failed: %s\n", graph.status().ToString().c_str());
    return run;
  }
  run.ok = true;
  run.boxes = (*graph)->size();
  run.reads = env.debugger->target().reads();
  run.bytes_read = env.debugger->target().bytes_read();
  run.object_bytes = (*graph)->TotalObjectBytes();
  run.ms = env.debugger->target().clock().millis();
  return run;
}

const char* kFlattened = R"(
define SB as Box<super_block> [ Text<string> s_id ]
define Task as Box<task_struct> [
  Text pid, comm
  Link fd0_sb -> SB(${@this.files->fdtab.fd[0] != NULL ?
                     @this.files->fdtab.fd[0]->f_inode->i_sb : 0})
]
plot Task(${target_task})
)";

const char* kUnflattened = R"(
define SB as Box<super_block> [ Text<string> s_id ]
define Inode as Box<inode> [
  Text i_ino
  Link i_sb -> SB(${@this.i_sb})
]
define Dentry as Box<dentry> [
  Text<string> d_name
  Link d_inode -> Inode(${@this.d_inode})
]
define File as Box<file> [
  Text f_flags
  Link f_dentry -> Dentry(${@this.f_dentry})
]
define Files as Box<files_struct> [
  Text next_fd
  Link fd0 -> File(${@this.fdtab.fd[0]})
]
define Task as Box<task_struct> [
  Text pid, comm
  Link files -> Files(${@this.files})
]
plot Task(${target_task})
)";

const char* kDistilled = R"(
define VMArea as Box<vm_area_struct> [ Text<u64:x> vm_start, vm_end ]
define MM as Box<mm_struct> [
  Text map_count
  Container vmas: Array.selectFrom(${&@this.mm_mt}, VMArea)
]
plot MM(${target_task.mm})
)";

}  // namespace

int main() {
  std::printf("=== Ablations: prune / flatten / distill / transport sensitivity ===\n\n");
  vlbench::BenchEnv env;

  // (a) prune: declared-fields reads vs whole-object dump.
  std::printf("(a) PRUNE — transport bytes, ViewCL views vs full-object dump baseline\n");
  std::printf("    %-12s %10s %14s %14s %8s\n", "figure", "boxes", "viewcl-bytes",
              "dump-bytes", "saving");
  for (const char* id : {"fig3_4", "fig7_1", "fig12_3", "fig14_3"}) {
    Run run = Plot(env, vision::FindFigure(id)->viewcl);
    if (!run.ok) {
      continue;
    }
    double saving = run.object_bytes > 0
                        ? 100.0 * (1.0 - static_cast<double>(run.bytes_read) /
                                             static_cast<double>(run.object_bytes))
                        : 0;
    std::printf("    %-12s %10llu %14llu %14llu %7.1f%%\n", id,
                static_cast<unsigned long long>(run.boxes),
                static_cast<unsigned long long>(run.bytes_read),
                static_cast<unsigned long long>(run.object_bytes), saving);
  }

  // (b) flatten.
  std::printf("\n(b) FLATTEN — direct dot-path vs per-hop boxes (task -> fd0's "
              "superblock)\n");
  Run flat = Plot(env, kFlattened);
  Run hops = Plot(env, kUnflattened);
  std::printf("    flattened:   %3llu boxes, %5llu reads, %7.2f ms\n",
              static_cast<unsigned long long>(flat.boxes),
              static_cast<unsigned long long>(flat.reads), flat.ms);
  std::printf("    per-hop:     %3llu boxes, %5llu reads, %7.2f ms\n",
              static_cast<unsigned long long>(hops.boxes),
              static_cast<unsigned long long>(hops.reads), hops.ms);

  // (c) distill.
  std::printf("\n(c) DISTILL — Array.selectFrom interval list vs full maple node plot\n");
  Run distilled = Plot(env, kDistilled);
  Run full = Plot(env, vision::FindFigure("fig9_2")->viewcl);
  std::printf("    distilled:   %4llu boxes, %6llu reads, %8.2f ms\n",
              static_cast<unsigned long long>(distilled.boxes),
              static_cast<unsigned long long>(distilled.reads), distilled.ms);
  std::printf("    node plot:   %4llu boxes, %6llu reads, %8.2f ms\n",
              static_cast<unsigned long long>(full.boxes),
              static_cast<unsigned long long>(full.reads), full.ms);

  // (d) transport sensitivity.
  std::printf("\n(d) TRANSPORT — fig7_1 plot cost vs per-access latency\n");
  std::printf("    %-18s %12s %10s\n", "per-access", "total ms", "reads");
  for (uint64_t ns : {1'000ull, 35'000ull, 500'000ull, 5'000'000ull}) {
    env.debugger->target().set_model(dbg::LatencyModel{"sweep", ns, 15});
    Run run = Plot(env, vision::FindFigure("fig7_1")->viewcl);
    std::printf("    %8.3f ms/read %12.1f %10llu\n", static_cast<double>(ns) / 1e6, run.ms,
                static_cast<unsigned long long>(run.reads));
  }
  // (e) interning: deduplicating (declaration, address) pairs keeps shared
  // structures compact and terminates cycles.
  std::printf("\n(e) INTERNING — fig9_2 with and without box deduplication\n");
  env.debugger->target().set_model(dbg::LatencyModel::GdbQemu());
  {
    env.debugger->target().ResetStats();
    viewcl::Interpreter interp(env.debugger.get());
    auto graph = interp.RunProgram(vision::FindFigure("fig9_2")->viewcl);
    std::printf("    interned:     %5zu boxes, %6llu reads\n",
                graph.ok() ? (*graph)->size() : 0,
                static_cast<unsigned long long>(env.debugger->target().reads()));
  }
  {
    viewcl::InterpLimits limits;
    limits.intern_boxes = false;
    limits.max_boxes = 5000;
    env.debugger->target().ResetStats();
    viewcl::Interpreter interp(env.debugger.get(), limits);
    auto graph = interp.RunProgram(vision::FindFigure("fig9_2")->viewcl);
    std::printf("    no interning: %5zu boxes, %6llu reads (capped at %zu boxes, %zu "
                "warnings)\n",
                graph.ok() ? (*graph)->size() : 0,
                static_cast<unsigned long long>(env.debugger->target().reads()),
                limits.max_boxes, interp.warnings().size());
  }

  std::printf("\nexpected shape: cost scales linearly with per-access latency at a fixed "
              "read count —\nthe paper's C-expression evaluation bottleneck.\n");
  return 0;
}
