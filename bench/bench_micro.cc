// Google-benchmark microbenchmarks for the hot paths: the kernel substrate's
// data structures, the debugger's C-expression engine, and ViewCL/ViewQL
// evaluation. These quantify the *host-side* costs the paper's Table 4
// footnote calls negligible next to transport latency.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"

namespace {

vlbench::BenchEnv* Env() {
  static auto* env = new vlbench::BenchEnv(60, dbg::LatencyModel::Free());
  return env;
}

void BM_MapleStoreErase(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::maple_tree tree;
  env->kernel->maple().Init(&tree, vkern::MT_FLAGS_ALLOC_RANGE);
  vkern::kmem_cache* cache = env->kernel->slabs().FindCache("vm_area_struct");
  void* entry = env->kernel->slabs().Alloc(cache);
  uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t start = 0x100000 + i * 0x2000;
    env->kernel->maple().StoreRange(&tree, start, start + 0xfff, entry);
  }
  uint64_t cursor = 0;
  for (auto _ : state) {
    uint64_t start = 0x100000 + (n + cursor) * 0x2000;
    benchmark::DoNotOptimize(env->kernel->maple().StoreRange(&tree, start, start + 0xfff,
                                                             entry));
    benchmark::DoNotOptimize(env->kernel->maple().Erase(&tree, start));
    env->kernel->rcu().Synchronize();
    ++cursor;
  }
  env->kernel->maple().Destroy(&tree);
  env->kernel->rcu().Synchronize();
  vkern::SlabAllocator::Free(cache, entry);
}
BENCHMARK(BM_MapleStoreErase)->Arg(16)->Arg(256)->Arg(1024);

void BM_MapleFind(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::mm_struct* mm = env->workload->process(0)->mm;
  uint64_t probe = mm->start_stack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->kernel->maple().Find(&mm->mm_mt, probe));
  }
}
BENCHMARK(BM_MapleFind);

void BM_SlabAllocFree(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::kmem_cache* cache = env->kernel->slabs().FindCache("vm_area_struct");
  for (auto _ : state) {
    void* obj = env->kernel->slabs().Alloc(cache);
    benchmark::DoNotOptimize(obj);
    vkern::SlabAllocator::Free(cache, obj);
  }
}
BENCHMARK(BM_SlabAllocFree);

void BM_SchedTick(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->kernel->sched().Tick(0));
  }
}
BENCHMARK(BM_SchedTick);

void BM_ExprMemberChain(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    auto v = env->debugger->Eval("init_task.se.vruntime");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprMemberChain);

void BM_ExprHelperCall(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    auto v = env->debugger->Eval("cpu_rq(0)->cfs.nr_running + mte_node_type(0x1010)");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprHelperCall);

void BM_ViewClPlotRunqueue(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");
  for (auto _ : state) {
    viewcl::Interpreter interp(env->debugger.get());
    auto graph = interp.RunProgram(figure->viewcl);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_ViewClPlotRunqueue);

void BM_ViewQlSelectUpdate(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  viewcl::Interpreter interp(env->debugger.get());
  auto graph = interp.RunProgram(vision::FindFigure("fig3_4")->viewcl);
  if (!graph.ok()) {
    state.SkipWithError("plot failed");
    return;
  }
  for (auto _ : state) {
    viewql::QueryEngine engine(graph->get(), env->debugger.get());
    benchmark::DoNotOptimize(
        engine.Execute("a = SELECT task_struct FROM * WHERE mm != NULL\n"
                       "UPDATE a WITH collapsed: true"));
  }
}
BENCHMARK(BM_ViewQlSelectUpdate);

void BM_TargetRead(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  uint64_t addr = reinterpret_cast<uint64_t>(env->kernel->procs().init_task());
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->debugger->target().ReadUnsigned(addr, 8));
  }
}
BENCHMARK(BM_TargetRead);

}  // namespace

BENCHMARK_MAIN();
