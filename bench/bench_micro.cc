// Google-benchmark microbenchmarks for the hot paths: the kernel substrate's
// data structures, the debugger's C-expression engine, and ViewCL/ViewQL
// evaluation. These quantify the *host-side* costs the paper's Table 4
// footnote calls negligible next to transport latency.
//
// After the benchmarks, main() runs a tracing-overhead guard: with tracing
// disabled, the instrumented Target read path (one cached relaxed atomic flag
// load + branch) must stay close to an uninstrumented replica — the budget is
// a noise-floor tripwire (see CheckTracingOverhead) that catches slow-path
// work leaking onto the hot read path. A second guard holds the vexplain
// side-cars to a 1% bar (resolvable there: renders are ~10 us, not ~8 ns): a
// pane render with a time-series recorder and budget registry attached but
// disabled must stay within 1% of a detached pane manager.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/check.h"
#include "src/dbg/target.h"
#include "src/serve/server.h"
#include "src/support/budget.h"
#include "src/support/str.h"
#include "src/support/timeseries.h"
#include "src/support/trace.h"
#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "src/vision/panes.h"
#include "src/vision/render.h"

namespace {

vlbench::BenchEnv* Env() {
  static auto* env = new vlbench::BenchEnv(60, dbg::LatencyModel::Free());
  return env;
}

void BM_MapleStoreErase(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::maple_tree tree;
  env->kernel->maple().Init(&tree, vkern::MT_FLAGS_ALLOC_RANGE);
  vkern::kmem_cache* cache = env->kernel->slabs().FindCache("vm_area_struct");
  void* entry = env->kernel->slabs().Alloc(cache);
  uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t start = 0x100000 + i * 0x2000;
    env->kernel->maple().StoreRange(&tree, start, start + 0xfff, entry);
  }
  uint64_t cursor = 0;
  for (auto _ : state) {
    uint64_t start = 0x100000 + (n + cursor) * 0x2000;
    benchmark::DoNotOptimize(env->kernel->maple().StoreRange(&tree, start, start + 0xfff,
                                                             entry));
    benchmark::DoNotOptimize(env->kernel->maple().Erase(&tree, start));
    env->kernel->rcu().Synchronize();
    ++cursor;
  }
  env->kernel->maple().Destroy(&tree);
  env->kernel->rcu().Synchronize();
  vkern::SlabAllocator::Free(cache, entry);
}
BENCHMARK(BM_MapleStoreErase)->Arg(16)->Arg(256)->Arg(1024);

void BM_MapleFind(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::mm_struct* mm = env->workload->process(0)->mm;
  uint64_t probe = mm->start_stack;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->kernel->maple().Find(&mm->mm_mt, probe));
  }
}
BENCHMARK(BM_MapleFind);

void BM_SlabAllocFree(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  vkern::kmem_cache* cache = env->kernel->slabs().FindCache("vm_area_struct");
  for (auto _ : state) {
    void* obj = env->kernel->slabs().Alloc(cache);
    benchmark::DoNotOptimize(obj);
    vkern::SlabAllocator::Free(cache, obj);
  }
}
BENCHMARK(BM_SlabAllocFree);

void BM_SchedTick(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->kernel->sched().Tick(0));
  }
}
BENCHMARK(BM_SchedTick);

void BM_ExprMemberChain(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    auto v = env->debugger->Eval("init_task.se.vruntime");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprMemberChain);

void BM_ExprHelperCall(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  for (auto _ : state) {
    auto v = env->debugger->Eval("cpu_rq(0)->cfs.nr_running + mte_node_type(0x1010)");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExprHelperCall);

void BM_ViewClPlotRunqueue(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");
  for (auto _ : state) {
    viewcl::Interpreter interp(env->debugger.get());
    auto graph = interp.RunProgram(figure->viewcl);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_ViewClPlotRunqueue);

void BM_ViewQlSelectUpdate(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  viewcl::Interpreter interp(env->debugger.get());
  auto graph = interp.RunProgram(vision::FindFigure("fig3_4")->viewcl);
  if (!graph.ok()) {
    state.SkipWithError("plot failed");
    return;
  }
  for (auto _ : state) {
    viewql::QueryEngine engine(graph->get(), env->debugger.get());
    benchmark::DoNotOptimize(
        engine.Execute("a = SELECT task_struct FROM * WHERE mm != NULL\n"
                       "UPDATE a WITH collapsed: true"));
  }
}
BENCHMARK(BM_ViewQlSelectUpdate);

void BM_TargetRead(benchmark::State& state) {
  vlbench::BenchEnv* env = Env();
  uint64_t addr = reinterpret_cast<uint64_t>(env->kernel->procs().init_task());
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->debugger->target().ReadUnsigned(addr, 8));
  }
}
BENCHMARK(BM_TargetRead);

// --- tracing-overhead guard -------------------------------------------------

// A flat buffer standing in for the kernel arena.
class FlatMemory : public dbg::MemoryDomain {
 public:
  explicit FlatMemory(size_t size) : bytes_(size, 0xab) {}
  bool ReadBytes(uint64_t addr, void* out, size_t len) const override {
    if (addr + len > bytes_.size()) {
      return false;
    }
    std::memcpy(out, bytes_.data() + addr, len);
    return true;
  }

 private:
  std::vector<uint8_t> bytes_;
};

// Replica of the pre-instrumentation read path: the same two-level
// ReadUnsigned → ReadBytes → Charge structure and Status plumbing as
// dbg::Target, minus the tracing flag check. The counters mirror Target's
// single-writer relaxed atomics exactly, so the only delta the guard measures
// is the tracing instrumentation itself. noinline mirrors the real methods
// being out-of-line in the library.
struct BaselineTarget {
  const dbg::MemoryDomain* memory;
  dbg::LatencyModel model;
  vl::VirtualClock clock;
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> bytes_read{0};

  void Charge(size_t len) {
    clock.AdvanceNanos(model.per_access_ns + model.per_byte_ns * len);
    reads.store(reads.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    bytes_read.store(bytes_read.load(std::memory_order_relaxed) + len,
                     std::memory_order_relaxed);
  }

  __attribute__((noinline)) vl::Status ReadBytes(uint64_t addr, void* out,
                                                 size_t len) {
    if (!memory->ReadBytes(addr, out, len)) {
      return vl::MemoryFaultError(
          vl::StrFormat("cannot read %zu bytes at 0x%llx", len,
                        static_cast<unsigned long long>(addr)));
    }
    Charge(len);
    return vl::Status::Ok();
  }

  __attribute__((noinline)) vl::StatusOr<uint64_t> ReadUnsigned(uint64_t addr,
                                                                size_t size) {
    if (size == 0 || size > 8) {
      return vl::InvalidArgumentError(vl::StrFormat("bad scalar width %zu", size));
    }
    uint64_t value = 0;
    VL_RETURN_IF_ERROR(ReadBytes(addr, &value, size));
    return value;
  }
};

// Returns the best-of-trials seconds for `iters` calls of `read(ctx, addr)`.
// Deliberately NOT a template: both sides of the overhead comparison must run
// the exact same timing loop (same instructions, same alignment) and differ
// only in the indirect callee, or the loop's own codegen accidents — which
// vary by ±10% per build — leak into the measured ratio.
using ReadFn = vl::StatusOr<uint64_t> (*)(void* ctx, uint64_t addr);
__attribute__((noinline)) double TimeReads(int trials, int iters,
                                           uint64_t addr_mask, ReadFn read,
                                           void* ctx) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      uint64_t addr = (static_cast<uint64_t>(i) * 64) & addr_mask;
      benchmark::DoNotOptimize(read(ctx, addr));
    }
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    best = std::min(best, seconds);
  }
  return best;
}

vl::StatusOr<uint64_t> ReadViaBaseline(void* ctx, uint64_t addr) {
  return static_cast<BaselineTarget*>(ctx)->ReadUnsigned(addr, 8);
}
vl::StatusOr<uint64_t> ReadViaTarget(void* ctx, uint64_t addr) {
  return static_cast<dbg::Target*>(ctx)->ReadUnsigned(addr, 8);
}

// Asserts that with tracing disabled the instrumented read path is within 1%
// of the uninstrumented replica. Returns 0 on success.
//
// Budget calibration: on pinned bare metal the flag check measures ~0%. But
// the comparison is between two separately-compiled copies of an ~8 ns
// function, and their relative speed swings ±10% with incidental codegen and
// layout of the *harness* (rebuilding this file with an unrelated edit moved
// the measured ratio from 0.98 to 1.09 with the library untouched), plus
// cloud-host frequency drift. The budget is therefore a coarse tripwire: it
// catches the real failure modes — RecordRead inlined onto the hot path, a
// mutex or locked RMW in Charge, tracing accidentally left enabled — which
// each cost well over 25%, and does not pretend to resolve 1% at this
// granularity on shared hardware.
int CheckTracingOverhead() {
  constexpr size_t kBufBytes = 1 << 20;
  constexpr uint64_t kAddrMask = kBufBytes - 64;
  constexpr int kTrials = 12;
  constexpr int kIters = 2'000'000;
  constexpr double kBudget = 1.25;

  FlatMemory memory(kBufBytes);
  dbg::Target target(&memory, dbg::LatencyModel::Free());
  BaselineTarget baseline{&memory, dbg::LatencyModel::Free(), {}};
  vl::Tracer::Instance().Disable();

  // Warm up both paths, then run paired back-to-back trials and take the
  // median of the per-pair ratios. Each pair sees the same frequency and
  // scheduler conditions, so drift on shared hardware cancels out instead of
  // masquerading as instrumentation overhead; the median sheds the tail of
  // preempted pairs. (Ratio-of-global-bests compares measurements taken at
  // different moments and is ~±3% noisy on cloud hosts.)
  TimeReads(1, kIters, kAddrMask, &ReadViaBaseline, &baseline);
  TimeReads(1, kIters, kAddrMask, &ReadViaTarget, &target);
  double baseline_s = 1e100;
  double traced_off_s = 1e100;
  std::vector<double> ratios;
  ratios.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    // Alternate which side runs first so linear drift within a pair biases
    // half the ratios up and half down, cancelling in the median.
    double b, i;
    if (t % 2 == 0) {
      b = TimeReads(1, kIters, kAddrMask, &ReadViaBaseline, &baseline);
      i = TimeReads(1, kIters, kAddrMask, &ReadViaTarget, &target);
    } else {
      i = TimeReads(1, kIters, kAddrMask, &ReadViaTarget, &target);
      b = TimeReads(1, kIters, kAddrMask, &ReadViaBaseline, &baseline);
    }
    ratios.push_back(i / b);
    baseline_s = std::min(baseline_s, b);
    traced_off_s = std::min(traced_off_s, i);
  }
  std::sort(ratios.begin(), ratios.end());
  double ratio = (ratios[kTrials / 2 - 1] + ratios[kTrials / 2]) / 2.0;
  std::printf("tracing-overhead guard: baseline %.2f ns/read, instrumented "
              "(tracing off) %.2f ns/read, median paired ratio %.4f "
              "(budget %.2f)\n",
              baseline_s / kIters * 1e9, traced_off_s / kIters * 1e9, ratio,
              kBudget);
  if (ratio > kBudget) {
    std::printf("FAIL: tracing-disabled overhead exceeds the noise-floor "
                "budget — a slow path leaked onto the hot read path\n");
    return 1;
  }
  return 0;
}

// --- cache-speedup guard ----------------------------------------------------

// Asserts the ReadSession block cache pays for itself where it matters most:
// a repeated figure extraction over serial KGDB must cost at least 2x less
// virtual transport time cached than uncached. Returns 0 on success.
int CheckCacheSpeedup() {
  constexpr int kRefreshes = 3;
  vlbench::BenchEnv* env = Env();
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");

  dbg::KernelDebugger cached(env->kernel.get(), dbg::LatencyModel::KgdbRpi400());
  dbg::KernelDebugger uncached(env->kernel.get(), dbg::LatencyModel::KgdbRpi400(),
                               dbg::CacheConfig::Disabled());
  vision::RegisterFigureSymbols(&cached, env->workload.get());
  vision::RegisterFigureSymbols(&uncached, env->workload.get());
  cached.target().ResetStats();
  uncached.target().ResetStats();

  for (int i = 0; i < kRefreshes; ++i) {
    viewcl::Interpreter interp_cached(&cached);
    if (!interp_cached.RunProgram(figure->viewcl).ok()) {
      std::printf("FAIL: cached extraction errored\n");
      return 1;
    }
    viewcl::Interpreter interp_uncached(&uncached);
    if (!interp_uncached.RunProgram(figure->viewcl).ok()) {
      std::printf("FAIL: uncached extraction errored\n");
      return 1;
    }
  }

  uint64_t cached_ns = cached.target().clock().nanos();
  uint64_t uncached_ns = uncached.target().clock().nanos();
  double speedup = cached_ns > 0
                       ? static_cast<double>(uncached_ns) / static_cast<double>(cached_ns)
                       : 1e100;
  std::printf("cache-speedup guard: KGDB %dx fig7_1 refresh, uncached %.1f ms, "
              "cached %.1f ms, speedup %.1fx (floor 2x), hit rate %.1f%%\n",
              kRefreshes, uncached_ns / 1e6, cached_ns / 1e6, speedup,
              cached.session().cache_stats().HitRate() * 100.0);
  if (speedup < 2.0) {
    std::printf("FAIL: cached repeated extraction is less than 2x faster\n");
    return 1;
  }
  return 0;
}

// --- plan-speedup guard -----------------------------------------------------

// Asserts the extraction-plan compiler pays for itself where the paper's
// latency model hurts most: a COLD extraction of a high-fanout figure (the
// PID hash table — a 64-bucket array fanning into hash chains) must charge
// at least 3x less virtual transport time with plans on than with pure
// interpretation, because the plan gathers each wavefront of independent
// reads into one vectored round trip. Both sides must render byte-identically
// (the plan is a prefetch oracle, never a semantic shortcut). Returns 0 on
// success.
int CheckPlanSpeedup() {
  vlbench::BenchEnv* env = Env();
  const vision::FigureDef* figure = vision::FindFigure("fig3_6");

  dbg::KernelDebugger classic(env->kernel.get(), dbg::LatencyModel::GdbQemu());
  dbg::KernelDebugger planned(env->kernel.get(), dbg::LatencyModel::GdbQemu());
  vision::RegisterFigureSymbols(&classic, env->workload.get());
  vision::RegisterFigureSymbols(&planned, env->workload.get());

  viewcl::Interpreter interp_classic(&classic);
  viewcl::InterpLimits limits;
  limits.compile_plans = true;
  viewcl::Interpreter interp_planned(&planned, limits);
  auto classic_graph = interp_classic.RunProgram(figure->viewcl);
  auto planned_graph = interp_planned.RunProgram(figure->viewcl);
  if (!classic_graph.ok() || !planned_graph.ok()) {
    std::printf("FAIL: plan-speedup guard extraction errored\n");
    return 1;
  }
  std::string classic_render = vision::AsciiRenderer().Render(**classic_graph);
  std::string planned_render = vision::AsciiRenderer().Render(**planned_graph);
  if (classic_render != planned_render) {
    std::printf("FAIL: plan-assisted render diverged from the interpreter\n");
    return 1;
  }

  uint64_t classic_ns = classic.target().clock().nanos();
  uint64_t planned_ns = planned.target().clock().nanos();
  double speedup = planned_ns > 0
                       ? static_cast<double>(classic_ns) / static_cast<double>(planned_ns)
                       : 1e100;
  std::printf("plan-speedup guard: GDB/QEMU cold fig3_6 extraction, classic "
              "%.2f ms, planned %.2f ms, speedup %.1fx (floor 3x)\n",
              classic_ns / 1e6, planned_ns / 1e6, speedup);
  if (speedup < 3.0) {
    std::printf("FAIL: plan-assisted cold extraction is less than 3x cheaper\n");
    return 1;
  }
  return 0;
}

// --- incremental-refresh guard ----------------------------------------------

// Asserts the incremental path (dirty-log delta invalidation + memoized
// re-extraction) beats full re-extraction by at least 3x in charged
// transport ns on a steady-state loop: one small mutation batch (a single
// CPU tick — the breakpoint-stepping scenario) between refreshes of fig7_1
// over the default workload's kernel, on the GDB/QEMU transport.
int CheckIncrementalSpeedup() {
  constexpr int kRefreshes = 3;
  // Same dashboard shape as bench_report: scheduler panes a tick dirties
  // plus mm/VFS panes whose pages stay clean between refreshes.
  const char* kFigures[] = {"fig3_4", "fig7_1", "fig8_2",
                            "fig12_3", "fig14_3", "fig15_1"};
  vlbench::BenchEnv* env = Env();

  dbg::KernelDebugger full(env->kernel.get(), dbg::LatencyModel::GdbQemu());
  dbg::KernelDebugger delta(env->kernel.get(), dbg::LatencyModel::GdbQemu(),
                            dbg::CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&full, env->workload.get());
  vision::RegisterFigureSymbols(&delta, env->workload.get());
  std::vector<std::unique_ptr<viewcl::Interpreter>> delta_interps;
  for (const char* id : kFigures) {
    const vision::FigureDef* figure = vision::FindFigure(id);
    auto interp = std::make_unique<viewcl::Interpreter>(&delta);
    if (!interp->Load(figure->viewcl).ok()) {
      std::printf("FAIL: incremental guard load errored (%s)\n", id);
      return 1;
    }
    delta_interps.push_back(std::move(interp));
  }

  // Warm both: the steady state under test starts after one full extraction.
  for (size_t f = 0; f < delta_interps.size(); ++f) {
    viewcl::Interpreter warm(&full);
    if (!warm.RunProgram(vision::FindFigure(kFigures[f])->viewcl).ok() ||
        !delta_interps[f]->Run().ok()) {
      std::printf("FAIL: incremental guard warmup errored\n");
      return 1;
    }
  }

  uint64_t full_before = full.target().clock().nanos();
  uint64_t delta_before = delta.target().clock().nanos();
  for (int i = 0; i < kRefreshes; ++i) {
    env->kernel->TickCpu(i % vkern::kNrCpus);
    for (size_t f = 0; f < delta_interps.size(); ++f) {
      viewcl::Interpreter interp_full(&full);
      if (!interp_full.RunProgram(vision::FindFigure(kFigures[f])->viewcl).ok() ||
          !delta_interps[f]->Run().ok()) {
        std::printf("FAIL: incremental guard refresh errored\n");
        return 1;
      }
    }
  }
  uint64_t full_ns = full.target().clock().nanos() - full_before;
  uint64_t delta_ns = delta.target().clock().nanos() - delta_before;
  double speedup = delta_ns > 0
                       ? static_cast<double>(full_ns) / static_cast<double>(delta_ns)
                       : 1e100;
  uint64_t replays = 0;
  for (const auto& interp : delta_interps) replays += interp->memo_replays();
  std::printf("incremental guard: GDB/QEMU %dx 6-pane steady-state refresh, "
              "full %.2f ms, delta %.2f ms, speedup %.1fx (floor 3x), "
              "%llu memo replays\n",
              kRefreshes, full_ns / 1e6, delta_ns / 1e6, speedup,
              static_cast<unsigned long long>(replays));
  if (speedup < 3.0) {
    std::printf("FAIL: incremental refresh is less than 3x cheaper than full\n");
    return 1;
  }
  return 0;
}

// --- invariant-sweep guard --------------------------------------------------

// Asserts the vcheck engine's footprint skipping pays for itself: in the
// steady state (one CPU tick — a single small mutation batch — between
// sweeps), an incremental re-sweep on a delta-enabled session must charge at
// least 3x less virtual transport time than a full sweep re-auditing all
// eleven rules. Every sweep must reconcile with the virtual clock and stay
// violation-free, so the speedup never comes from skipping a dirty rule.
int CheckInvariantSweepSpeedup() {
  constexpr int kRounds = 3;
  vlbench::BenchEnv* env = Env();

  dbg::KernelDebugger full(env->kernel.get(), dbg::LatencyModel::GdbQemu());
  // Constructed second: the delta session's dirty-page journal baselines at
  // construction and must cover `full`'s in-arena bookkeeping writes.
  dbg::KernelDebugger delta(env->kernel.get(), dbg::LatencyModel::GdbQemu(),
                            dbg::CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&full, env->workload.get());
  vision::RegisterFigureSymbols(&delta, env->workload.get());
  analysis::CheckEngine full_engine(&full.types(), &full.symbols(), &full.session());
  analysis::CheckEngine delta_engine(&delta.types(), &delta.symbols(),
                                     &delta.session());

  // Warm both engines: the steady state starts after one full audit each.
  if (full_engine.RunAll().violations() != 0 ||
      delta_engine.RunAll().violations() != 0) {
    std::printf("FAIL: invariant-sweep guard found violations at warmup\n");
    return 1;
  }

  uint64_t full_ns = 0;
  uint64_t delta_ns = 0;
  size_t skipped = 0;
  for (int round = 0; round < kRounds; ++round) {
    env->kernel->TickCpu(round % vkern::kNrCpus);
    analysis::CheckReport f = full_engine.RunAll();
    analysis::CheckReport d = delta_engine.RunIncremental();
    if (!f.reconciled || !d.reconciled) {
      std::printf("FAIL: invariant sweep failed to reconcile with the clock\n");
      return 1;
    }
    if (f.violations() != 0 || d.violations() != 0) {
      std::printf("FAIL: invariant sweep found violations on a healthy kernel\n");
      return 1;
    }
    full_ns += f.clock_delta_ns;
    delta_ns += d.clock_delta_ns;
    skipped += d.rules_skipped();
  }
  double speedup = delta_ns > 0
                       ? static_cast<double>(full_ns) / static_cast<double>(delta_ns)
                       : 1e100;
  std::printf("invariant-sweep guard: GDB/QEMU %dx tick+sweep, full %.2f ms, "
              "incremental %.2f ms, speedup %.1fx (floor 3x), %zu rule skips\n",
              kRounds, full_ns / 1e6, delta_ns / 1e6, speedup, skipped);
  if (speedup < 3.0) {
    std::printf("FAIL: incremental re-check is less than 3x cheaper than full\n");
    return 1;
  }
  return 0;
}

// --- disabled-observability guard -------------------------------------------

// Asserts that attaching the vexplain side-cars (time-series recorder +
// budget registry) while they are disabled costs a pane render no more than
// 1% over a detached pane manager: the hook is one null/flag branch.
int CheckDisabledObservabilityOverhead() {
  // Resolving a 1% budget on a ~12 us render needs many alternating trials:
  // timing noise is one-sided, so best-of-N converges to the true floor.
  constexpr int kTrials = 40;
  constexpr int kIters = 400;
  vlbench::BenchEnv* env = Env();
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");

  // One manager, one graph: attaching/detaching the observers between trials
  // flips only the hook's branch, so the comparison is not polluted by
  // allocation-layout differences between two separately extracted graphs.
  vision::PaneManager panes(env->debugger.get());
  viewcl::Interpreter interp(env->debugger.get());
  auto graph = interp.RunProgram(figure->viewcl);
  if (!graph.ok()) {
    std::printf("FAIL: observability-guard extraction errored\n");
    return 1;
  }
  (void)panes.SetGraph(1, std::move(graph).value(), figure->viewcl);

  vl::TimeSeriesRecorder recorder;  // attached but disabled
  vl::BudgetRegistry budgets;
  budgets.Set("pane.1", 1);  // would fire on every refresh if armed...
  budgets.Disable();         // ...but the master switch is off
  vl::Tracer::Instance().Disable();

  // Time every render individually and compare the medians of the two
  // (interleaved) per-render distributions: the median shrugs off the
  // scheduler/frequency spikes that make best-of-window ratios flap around
  // the 1% budget on a ~12 us unit of work.
  auto time_batch = [&](std::vector<double>* samples) {
    for (int i = 0; i < kIters; ++i) {
      auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(panes.RenderPane(1));
      samples->push_back(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    }
  };
  std::vector<double> plain_samples;
  std::vector<double> observed_samples;
  plain_samples.reserve(static_cast<size_t>(kTrials) * kIters);
  observed_samples.reserve(static_cast<size_t>(kTrials) * kIters);
  auto measure_detached = [&]() {
    panes.AttachObservers(nullptr, nullptr);
    time_batch(&plain_samples);
  };
  auto measure_attached = [&]() {
    panes.AttachObservers(&recorder, &budgets);
    time_batch(&observed_samples);
  };
  measure_detached();  // warm
  measure_attached();  // warm
  plain_samples.clear();
  observed_samples.clear();
  // Swap which side goes first each round so frequency/thermal drift cannot
  // systematically favor one.
  for (int t = 0; t < kTrials; ++t) {
    if (t % 2 == 0) {
      measure_detached();
      measure_attached();
    } else {
      measure_attached();
      measure_detached();
    }
  }
  auto median = [](std::vector<double>* samples) {
    std::nth_element(samples->begin(), samples->begin() + samples->size() / 2,
                     samples->end());
    return (*samples)[samples->size() / 2];
  };
  double plain_s = median(&plain_samples);
  double observed_s = median(&observed_samples);

  double ratio = observed_s / plain_s;
  std::printf("observability-overhead guard: detached %.2f us/render, observers "
              "attached+disabled %.2f us/render, ratio %.4f (budget 1.01)\n",
              plain_s * 1e6, observed_s * 1e6, ratio);
  if (ratio > 1.01) {
    std::printf("FAIL: disabled observability overhead exceeds 1%%\n");
    return 1;
  }
  return 0;
}

// --- serve-dedup guard ------------------------------------------------------

// Asserts the serving layer's request dedup pays for itself: eight clients
// refreshing the SAME figure on one shard must be charged, in aggregate,
// less than 2x what a single client pays for the same refresh cadence (the
// ideal is ~1x: one extraction per epoch, fanned out to all eight).
int CheckServeDedup() {
  constexpr int kRounds = 3;
  const char* figure = vision::FindFigure("fig3_4")->viewcl;

  auto run_fleet = [&](size_t clients) -> uint64_t {
    vserve::Server server;
    if (!server.BootShard("serve", dbg::LatencyModel::GdbQemu()).ok()) {
      return 0;
    }
    std::vector<vl::StatusOr<vserve::Client>> fleet;
    for (size_t i = 0; i < clients; ++i) {
      fleet.push_back(server.Connect());
      if (!fleet.back().ok() || !(*fleet.back())->Plot(1, figure).ok()) {
        return 0;
      }
    }
    for (int round = 0; round < kRounds; ++round) {
      server.shard_workload("serve")->Step();
      for (auto& client : fleet) {
        if (!(*client)->Refresh(1).ok()) {
          return 0;
        }
      }
    }
    uint64_t charged = 0;
    for (auto& client : fleet) {
      charged += (*client)->charged_ns();
    }
    return charged;
  };

  uint64_t single = run_fleet(1);
  uint64_t fleet8 = run_fleet(8);
  if (single == 0 || fleet8 == 0) {
    std::printf("FAIL: serve-dedup guard could not run its fleets\n");
    return 1;
  }
  double ratio = static_cast<double>(fleet8) / static_cast<double>(single);
  std::printf("serve-dedup guard: 1 client charged %llu ns, 8 overlapping "
              "clients charged %llu ns, ratio %.2f (budget 2.0)\n",
              static_cast<unsigned long long>(single),
              static_cast<unsigned long long>(fleet8), ratio);
  if (ratio >= 2.0) {
    std::printf("FAIL: 8-client fleet charged >= 2x one client — dedup broken\n");
    return 1;
  }
  return 0;
}

// vflight overhead guard: the recorder must stay invisible on the serve hot
// path. A disabled-recorder server and an enabled one run the same steady
// dedup-hit refresh loop (no kernel steps, so after the first extraction
// every refresh is a result-cache hit — the cheapest, most stamp-sensitive
// path); the paired-trial median ratio between them must stay inside the
// same coarse noise-floor budget CheckTracingOverhead uses. Two-sided,
// because either direction drifting past 25% means a slow path appeared
// (stamping while disabled, or Finish() growing a lock walk while enabled).
int CheckFlightOverhead() {
  constexpr int kTrials = 12;
  constexpr int kIters = 4'000;
  constexpr double kBudget = 1.25;

  struct Rig {
    std::unique_ptr<vserve::Server> server;
    std::optional<vserve::Client> client;
  };
  auto make_rig = [](bool recorder) -> Rig {
    vserve::ServerConfig config;
    config.flight_recorder = recorder;
    Rig rig;
    rig.server = std::make_unique<vserve::Server>(config);
    if (!rig.server->BootShard("serve", dbg::LatencyModel::GdbQemu()).ok()) {
      return {};
    }
    auto client = rig.server->Connect();
    if (!client.ok() ||
        !(*client)->Plot(1, vision::FindFigure("fig3_4")->viewcl).ok() ||
        !(*client)->Refresh(1).ok()) {  // prime the result cache
      return {};
    }
    rig.client = std::move(*client);
    return rig;
  };
  Rig off = make_rig(false);
  Rig on = make_rig(true);
  if (!off.client || !on.client) {
    std::printf("FAIL: flight-overhead guard could not boot its servers\n");
    return 1;
  }
  auto time_refreshes = [](Rig& rig) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      if (!(*rig.client)->Refresh(1).ok()) {
        return -1.0;
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  // Warm both paths, then paired alternating trials, median of per-pair
  // ratios (the CheckTracingOverhead methodology — see its comment for why).
  time_refreshes(off);
  time_refreshes(on);
  double off_s = 1e100;
  double on_s = 1e100;
  std::vector<double> ratios;
  ratios.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    double d, e;
    if (t % 2 == 0) {
      d = time_refreshes(off);
      e = time_refreshes(on);
    } else {
      e = time_refreshes(on);
      d = time_refreshes(off);
    }
    if (d <= 0.0 || e <= 0.0) {
      std::printf("FAIL: flight-overhead guard refresh loop errored\n");
      return 1;
    }
    ratios.push_back(e / d);
    off_s = std::min(off_s, d);
    on_s = std::min(on_s, e);
  }
  std::sort(ratios.begin(), ratios.end());
  double ratio = (ratios[kTrials / 2 - 1] + ratios[kTrials / 2]) / 2.0;
  double sided = std::max(ratio, 1.0 / ratio);
  std::printf("flight-overhead guard: recorder off %.2f us/refresh, on %.2f "
              "us/refresh, median paired ratio %.4f (two-sided budget %.2f)\n",
              off_s / kIters * 1e6, on_s / kIters * 1e6, ratio, kBudget);
  if (sided > kBudget) {
    std::printf("FAIL: flight recorder overhead exceeds the noise-floor "
                "budget on the dedup hot path\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return CheckTracingOverhead() + CheckCacheSpeedup() + CheckPlanSpeedup() +
         CheckIncrementalSpeedup() +
         CheckInvariantSweepSpeedup() + CheckDisabledObservabilityOverhead() +
         CheckServeDedup() + CheckFlightOverhead();
}
