// CVE scenario tests: the injected faults must reproduce the corrupted states
// the paper's case studies visualize — and the fixed paths must not.

#include "src/vkern/faults.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace vkern {
namespace {

using vltest::WorkloadKernelTest;

class StackRotTest : public WorkloadKernelTest {};

TEST_F(StackRotTest, ReproducesUseAfterFree) {
  task_struct* victim = workload_->process(0);
  StackRotReport report = RunStackRotScenario(kernel_.get(), victim);
  ASSERT_NE(report.fetched_node, nullptr);
  EXPECT_TRUE(report.node_was_on_cblist)
      << "the freed node must transit the RCU waiting list (Figure 5)";
  EXPECT_GE(report.cblist_len_at_free, 1u);
  EXPECT_TRUE(report.grace_period_completed)
      << "mmap_lock must NOT hold off the grace period — that is the bug";
  EXPECT_TRUE(report.uaf_detected) << "stale pointer must read slab poison";
  EXPECT_EQ(report.first_poison_byte, kSlabPoison);
}

TEST_F(StackRotTest, TreeRemainsValidAfterScenario) {
  task_struct* victim = workload_->process(1);
  StackRotReport report = RunStackRotScenario(kernel_.get(), victim);
  ASSERT_NE(report.mm, nullptr);
  std::string why;
  EXPECT_TRUE(kernel_->maple().Validate(&report.mm->mm_mt, &why)) << why;
  // The replacement leaf answers the same query the reader was performing.
  EXPECT_NE(kernel_->maple().Find(&report.mm->mm_mt, report.mm->start_stack), nullptr);
}

TEST_F(StackRotTest, RcuReaderWouldHavePreventedIt) {
  // Control experiment: holding the RCU read lock (the actual fix direction)
  // blocks the free for the duration of the critical section.
  task_struct* victim = workload_->process(2);
  mm_struct* mm = victim->mm;
  maple_node* node = kernel_->maple().LeafContaining(&mm->mm_mt, mm->start_stack);
  ASSERT_NE(node, nullptr);
  kernel_->rcu().ReadLock(1);
  kernel_->maple().RebuildLeaf(&mm->mm_mt, mm->start_stack);
  kernel_->rcu().Synchronize();
  EXPECT_FALSE(SlabAllocator::IsPoisoned(node, sizeof(maple_node)))
      << "node freed despite an active RCU reader";
  kernel_->rcu().ReadUnlock(1);
  kernel_->rcu().Synchronize();
  EXPECT_TRUE(SlabAllocator::IsPoisoned(node, sizeof(maple_node)));
}

class DirtyPipeTest : public WorkloadKernelTest {};

TEST_F(DirtyPipeTest, VulnerablePathCorruptsPageCache) {
  DirtyPipeReport report = RunDirtyPipeScenario(kernel_.get(), workload_->process(0), true);
  EXPECT_TRUE(report.can_merge_leaked)
      << "stale CAN_MERGE must survive on the spliced buffer";
  EXPECT_TRUE(report.file_content_corrupted)
      << "pipe write must have modified the shared page-cache page";
  EXPECT_EQ(report.corrupted_byte, '0');  // first byte of the "0wned" payload
  ASSERT_NE(report.shared_page, nullptr);
  // The page is owned by the victim file's address space, not the pipe.
  EXPECT_EQ(report.shared_page->mapping, &report.victim_file->f_inode->i_data);
}

TEST_F(DirtyPipeTest, FixedPathDoesNotCorrupt) {
  DirtyPipeReport report = RunDirtyPipeScenario(kernel_.get(), workload_->process(1), false);
  EXPECT_FALSE(report.can_merge_leaked);
  EXPECT_FALSE(report.file_content_corrupted);
  EXPECT_EQ(report.corrupted_byte, report.original_byte);
}

TEST_F(DirtyPipeTest, SharedPageIsZeroCopy) {
  DirtyPipeReport report = RunDirtyPipeScenario(kernel_.get(), workload_->process(2), true);
  page* cached = kernel_->fs().PageCacheLookup(report.victim_file->f_inode, 0);
  EXPECT_EQ(report.shared_page, cached)
      << "the pipe buffer must reference the page-cache page itself";
}

}  // namespace
}  // namespace vkern
