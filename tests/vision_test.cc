// Visualizer tests: renderers (ASCII/DOT/JSON) with ViewQL attribute
// semantics, the pane tree with focus (paper Figure 2), the v-command shell,
// vchat synthesis, and session persistence.

#include <gtest/gtest.h>

#include "src/support/json.h"
#include "src/vision/figures.h"
#include "src/vision/panes.h"
#include "src/vision/render.h"
#include "src/vision/shell.h"
#include "src/vision/vchat.h"
#include "tests/test_util.h"

namespace vision {
namespace {

class VisionTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    RegisterFigureSymbols(debugger_.get(), workload_.get());
    interp_ = std::make_unique<viewcl::Interpreter>(debugger_.get());
  }

  std::unique_ptr<viewcl::ViewGraph> Plot(const char* figure_id) {
    auto graph = interp_->RunProgram(FindFigure(figure_id)->viewcl);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return std::move(graph).value();
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<viewcl::Interpreter> interp_;
};

// --- JSON support ---

TEST(JsonTest, RoundTrip) {
  vl::Json obj = vl::Json::Object();
  obj["name"] = vl::Json::Str("maple \"tree\"");
  obj["count"] = vl::Json::Int(42);
  obj["ok"] = vl::Json::Bool(true);
  obj["nothing"] = vl::Json::Null();
  vl::Json arr = vl::Json::Array();
  arr.Append(vl::Json::Int(1));
  arr.Append(vl::Json::Number(2.5));
  obj["items"] = std::move(arr);

  std::string text = obj.Dump(2);
  auto parsed = vl::Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("name")->AsString(), "maple \"tree\"");
  EXPECT_EQ(parsed->Find("count")->AsInt(), 42);
  EXPECT_TRUE(parsed->Find("ok")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->is_null());
  EXPECT_EQ(parsed->Find("items")->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->Find("items")->at(1).AsNumber(), 2.5);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(vl::Json::Parse("{").ok());
  EXPECT_FALSE(vl::Json::Parse("[1,]").ok());
  EXPECT_FALSE(vl::Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(vl::Json::Parse("{1: 2}").ok());
  EXPECT_FALSE(vl::Json::Parse("42 43").ok());
  EXPECT_TRUE(vl::Json::Parse("  [1, 2, {\"a\": null}]  ").ok());
}

// --- renderers ---

TEST_F(VisionTest, AsciiRendererShowsBoxesAndItems) {
  auto graph = Plot("fig7_1");
  std::string out = AsciiRenderer().Render(*graph);
  EXPECT_NE(out.find("rq"), std::string::npos);
  EXPECT_NE(out.find("tasks_timeline"), std::string::npos);
  EXPECT_NE(out.find("pid ="), std::string::npos);
  EXPECT_NE(out.find("== plot 1 =="), std::string::npos);
  EXPECT_NE(out.find("== plot 2 =="), std::string::npos);
}

TEST_F(VisionTest, TrimmedBoxesVanishFromRender) {
  auto graph = Plot("fig7_1");
  viewql::QueryEngine engine(graph.get(), debugger_.get());
  ASSERT_TRUE(engine.Execute("a = SELECT task_struct FROM *\n"
                             "UPDATE a WITH trimmed: true")
                  .ok());
  std::string out = AsciiRenderer().Render(*graph);
  EXPECT_EQ(out.find("pid ="), std::string::npos);
  std::set<uint64_t> visible = VisibleBoxes(*graph);
  for (uint64_t id : visible) {
    EXPECT_NE(graph->box(id)->kernel_type(), "task_struct");
  }
}

TEST_F(VisionTest, CollapsedBoxesRenderAsStubs) {
  auto graph = Plot("fig7_1");
  viewql::QueryEngine engine(graph.get(), debugger_.get());
  ASSERT_TRUE(engine.Execute("a = SELECT task_struct FROM *\n"
                             "UPDATE a WITH collapsed: true")
                  .ok());
  std::string out = AsciiRenderer().Render(*graph);
  EXPECT_NE(out.find("(collapsed)"), std::string::npos);
}

TEST_F(VisionTest, ViewAttributeSwitchesRenderedItems) {
  auto graph = Plot("fig7_1");
  std::string before = AsciiRenderer().Render(*graph);
  EXPECT_EQ(before.find("se.vruntime"), std::string::npos);
  viewql::QueryEngine engine(graph.get(), debugger_.get());
  ASSERT_TRUE(engine.Execute("a = SELECT task_struct FROM *\n"
                             "UPDATE a WITH view: sched")
                  .ok());
  std::string after = AsciiRenderer().Render(*graph);
  EXPECT_NE(after.find("se.vruntime ="), std::string::npos);
}

TEST_F(VisionTest, DotRendererEmitsValidDigraph) {
  auto graph = Plot("fig14_3");
  std::string dot = DotRenderer().Render(*graph);
  EXPECT_EQ(dot.substr(0, 8), "digraph ");
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("super_block"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST_F(VisionTest, JsonRendererSerializesGraph) {
  auto graph = Plot("fig14_3");
  vl::Json json = JsonRenderer().ToJson(*graph);
  EXPECT_EQ(json.Find("boxes")->size(), graph->size());
  EXPECT_GE(json.Find("roots")->size(), 1u);
  // Round-trip through text.
  auto parsed = vl::Json::Parse(json.Dump(-1));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("boxes")->size(), graph->size());
}

// --- panes ---

TEST_F(VisionTest, PaneSplitAndPlot) {
  PaneManager panes(debugger_.get());
  auto right = panes.Split(panes.root_pane(), 'h');
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(*right, 2);
  ASSERT_TRUE(panes.SetGraph(1, Plot("fig3_4"), "p1").ok());
  ASSERT_TRUE(panes.SetGraph(2, Plot("fig7_1"), "p2").ok());
  EXPECT_NE(panes.graph(1), nullptr);
  EXPECT_NE(panes.graph(2), nullptr);
  std::string layout = panes.LayoutAscii();
  EXPECT_NE(layout.find("split-h"), std::string::npos);
}

TEST_F(VisionTest, FocusFindsTaskInBothPanes) {
  // The paper's Figure 2: find one task in the parent tree AND the sched tree.
  PaneManager panes(debugger_.get());
  ASSERT_TRUE(panes.Split(1, 'h').ok());
  ASSERT_TRUE(panes.SetGraph(1, Plot("fig3_4"), "tree").ok());
  ASSERT_TRUE(panes.SetGraph(2, Plot("fig7_1"), "rq").ok());
  // Pick a task that is queued on CPU 0 (hence in both plots).
  vkern::task_struct* queued = nullptr;
  kernel_->sched().ForEachQueued(0, [&](vkern::task_struct* t) {
    if (queued == nullptr && t->pid > 0) {
      queued = t;
    }
  });
  ASSERT_NE(queued, nullptr);
  auto hits = panes.FocusAddress(reinterpret_cast<uint64_t>(queued));
  std::set<int> hit_panes;
  for (const FocusHit& hit : hits) {
    hit_panes.insert(hit.pane_id);
  }
  EXPECT_EQ(hit_panes.size(), 2u) << "task must be found in both data structures";
  // Focus by member works too.
  auto by_pid = panes.FocusMember("pid", queued->pid);
  EXPECT_GE(by_pid.size(), 2u);
}

TEST_F(VisionTest, SecondaryPaneShowsSubset) {
  PaneManager panes(debugger_.get());
  ASSERT_TRUE(panes.SetGraph(1, Plot("fig3_4"), "tree").ok());
  viewcl::ViewGraph* g = panes.graph(1);
  uint64_t init_box = viewcl::kNoBox;
  g->ForEachBox([&](const viewcl::VBox& box) {
    if (box.members().count("pid") != 0 && box.members().at("pid").num == 1) {
      init_box = box.id();
    }
  });
  ASSERT_NE(init_box, viewcl::kNoBox);
  auto secondary = panes.CreateSecondary(1, {init_box});
  ASSERT_TRUE(secondary.ok());
  EXPECT_TRUE(panes.is_secondary(*secondary));
  std::string out = panes.RenderPane(*secondary);
  EXPECT_NE(out.find("init"), std::string::npos);
}

TEST_F(VisionTest, RefineAppliesViewQlToPane) {
  PaneManager panes(debugger_.get());
  ASSERT_TRUE(panes.SetGraph(1, Plot("fig3_4"), "tree").ok());
  ASSERT_TRUE(panes
                  .ApplyViewQl(1,
                               "a = SELECT task_struct FROM * WHERE mm == NULL\n"
                               "UPDATE a WITH collapsed: true")
                  .ok());
  size_t collapsed = 0;
  panes.graph(1)->ForEachBox([&](const viewcl::VBox& box) {
    if (box.AttrBool("collapsed")) {
      ++collapsed;
    }
  });
  EXPECT_GT(collapsed, 0u);
}

TEST_F(VisionTest, SessionSaveAndReload) {
  PaneManager panes(debugger_.get());
  ASSERT_TRUE(panes.Split(1, 'v').ok());
  const char* program = R"(
    define Task as Box<task_struct> [ Text pid, comm ]
    plot Task(${&init_task})
  )";
  auto graph = interp_->RunProgram(program);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(panes.SetGraph(1, std::move(graph).value(), program).ok());
  ASSERT_TRUE(panes.ApplyViewQl(1,
                                "a = SELECT task_struct FROM *\n"
                                "UPDATE a WITH collapsed: true")
                  .ok());
  vl::Json saved = panes.SaveState();
  std::string text = saved.Dump(2);

  // Reload into a fresh manager; replot re-runs the recorded ViewCL and the
  // recorded ViewQL history re-applies.
  PaneManager restored(debugger_.get());
  auto parsed = vl::Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  vl::Status status = restored.LoadState(
      *parsed, [this](const std::string& source)
                   -> vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> {
        viewcl::Interpreter fresh(debugger_.get());
        return fresh.RunProgram(source);
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(restored.graph(1), nullptr);
  size_t collapsed = 0;
  restored.graph(1)->ForEachBox([&](const viewcl::VBox& box) {
    if (box.AttrBool("collapsed")) {
      ++collapsed;
    }
  });
  EXPECT_GT(collapsed, 0u) << "the ViewQL history must replay on load";
  EXPECT_NE(restored.LayoutAscii().find("split-v"), std::string::npos);
}

// --- the v-command shell ---

TEST_F(VisionTest, ShellVplotAndView) {
  DebuggerShell shell(debugger_.get());
  std::string out = shell.Execute(
      "vplot 1 define Task as Box<task_struct> [ Text pid, comm ] plot Task(${&init_task})");
  EXPECT_NE(out.find("plotted"), std::string::npos) << out;
  std::string view = shell.Execute("vctrl view 1");
  EXPECT_NE(view.find("swapper/0"), std::string::npos);
}

TEST_F(VisionTest, ShellSplitApplyFocus) {
  DebuggerShell shell(debugger_.get());
  shell.Execute(
      "vplot 1 define Task as Box<task_struct> [ Text pid, comm "
      "Link parent -> Task(${@this.parent}) ] plot Task(${target_task})");
  EXPECT_NE(shell.Execute("vctrl split 1 v").find("created pane 2"), std::string::npos);
  std::string applied = shell.Execute(
      "vctrl apply 1 a = SELECT task_struct FROM * WHERE pid == 1 "
      "UPDATE a WITH collapsed: true");
  EXPECT_NE(applied.find("applied"), std::string::npos) << applied;
  std::string focus = shell.Execute("vctrl focus pid 1");
  EXPECT_NE(focus.find("pane 1"), std::string::npos) << focus;
  EXPECT_NE(shell.Execute("vctrl layout").find("split-v"), std::string::npos);
  EXPECT_NE(shell.Execute("vctrl save").find("\"layout\""), std::string::npos);
}

TEST_F(VisionTest, ShellVchatSynthesizesAndApplies) {
  DebuggerShell shell(debugger_.get());
  shell.Execute(std::string("vplot 1 ") + FindFigure("fig3_4")->viewcl);
  std::string out =
      shell.Execute("vchat 1 shrink tasks that have no address space");
  EXPECT_NE(out.find("synthesized ViewQL"), std::string::npos) << out;
  EXPECT_NE(out.find("applied"), std::string::npos) << out;
  size_t collapsed = 0;
  shell.panes().graph(1)->ForEachBox([&](const viewcl::VBox& box) {
    if (box.AttrBool("collapsed")) {
      ++collapsed;
    }
  });
  EXPECT_GT(collapsed, 0u);
}

TEST_F(VisionTest, ShellDotAndJsonOutput) {
  DebuggerShell shell(debugger_.get());
  shell.Execute(
      "vplot 1 define Task as Box<task_struct> [ Text pid ] plot Task(${&init_task})");
  std::string dot = shell.Execute("vctrl dot 1");
  EXPECT_EQ(dot.substr(0, 8), "digraph ");
  std::string json = shell.Execute("vctrl json 1");
  auto parsed = vl::Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GE(parsed->Find("boxes")->size(), 1u);
  EXPECT_NE(shell.Execute("vctrl dot 9").find("no such pane"), std::string::npos);
}

TEST_F(VisionTest, ShellReportsErrors) {
  DebuggerShell shell(debugger_.get());
  EXPECT_NE(shell.Execute("vplot abc").find("usage"), std::string::npos);
  EXPECT_NE(shell.Execute("vplot 1 not viewcl at all").find("error"), std::string::npos);
  EXPECT_NE(shell.Execute("bogus").find("unknown command"), std::string::npos);
  EXPECT_NE(shell.Execute("vctrl split 99 h").find("error"), std::string::npos);
  EXPECT_NE(shell.Execute("vchat 1 entirely unintelligible gibberish").find("error"),
            std::string::npos);
}

// --- vchat unit behaviour ---

TEST(VchatTest, RecognizesCoreVerbs) {
  VchatSynthesizer vchat;
  auto trimmed = vchat.Synthesize("hide all pages");
  ASSERT_TRUE(trimmed.ok());
  EXPECT_NE(trimmed->find("trimmed: true"), std::string::npos);
  auto collapsed = vchat.Synthesize("collapse all sockets");
  ASSERT_TRUE(collapsed.ok());
  EXPECT_NE(collapsed->find("collapsed: true"), std::string::npos);
  auto view = vchat.Synthesize("display view sched of all processes");
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("view: sched"), std::string::npos);
}

TEST(VchatTest, AnaphoraReusesPreviousSelection) {
  VchatSynthesizer vchat;
  auto program = vchat.Synthesize(
      "find memory areas whose address is not 0xdeadbeef, and collapse them");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // One SELECT, one UPDATE on the same set.
  EXPECT_NE(program->find("AS obj"), std::string::npos);
  EXPECT_NE(program->find("obj != 0xdeadbeef"), std::string::npos);
  EXPECT_EQ(program->find("b = SELECT"), std::string::npos) << *program;
}

TEST(VchatTest, RejectsPlaceholders) {
  VchatSynthesizer vchat;
  EXPECT_FALSE(vchat.Synthesize("collapse vmas whose address is not <addr>").ok());
}

TEST(VchatTest, PidListNegation) {
  VchatSynthesizer vchat;
  auto program = vchat.Synthesize("shrink all pid entries except for pids 3 and 9");
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->find("nr != 3 AND nr != 9"), std::string::npos) << *program;
}

}  // namespace
}  // namespace vision
