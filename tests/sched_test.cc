// CFS scheduler tests: runqueue ordering, vruntime accounting, preemption.

#include "src/vkern/sched.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/vkern/kstructs.h"

namespace vkern {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runqueues_.resize(kNrCpus);
    sched_ = std::make_unique<Scheduler>(runqueues_.data());
    idle_.resize(kNrCpus);
    for (int cpu = 0; cpu < kNrCpus; ++cpu) {
      idle_[cpu] = MakeTask("swapper");
      sched_->InitRq(cpu, &idle_[cpu]->task);
    }
  }

  struct Holder {
    task_struct task;
  };

  Holder* MakeTask(const char* name) {
    auto holder = std::make_unique<Holder>();
    holder->task = {};
    std::snprintf(holder->task.comm, sizeof(holder->task.comm), "%s", name);
    holder->task.se.load.weight = kNiceZeroWeight;
    tasks_.push_back(std::move(holder));
    return tasks_.back().get();
  }

  std::vector<rq> runqueues_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<Holder*> idle_;
  std::vector<std::unique_ptr<Holder>> tasks_;
};

TEST_F(SchedTest, EmptyRqRunsIdle) {
  EXPECT_EQ(sched_->PickNext(0), &idle_[0]->task);
  EXPECT_EQ(sched_->Tick(0), &idle_[0]->task);
  EXPECT_EQ(sched_->nr_running(0), 0u);
}

TEST_F(SchedTest, EnqueueOrdersByVruntime) {
  Holder* a = MakeTask("a");
  Holder* b = MakeTask("b");
  Holder* c = MakeTask("c");
  a->task.se.vruntime = 300;
  b->task.se.vruntime = 100;
  c->task.se.vruntime = 200;
  sched_->Enqueue(0, &a->task);
  sched_->Enqueue(0, &b->task);
  sched_->Enqueue(0, &c->task);
  EXPECT_EQ(sched_->nr_running(0), 3u);
  std::vector<task_struct*> order;
  sched_->ForEachQueued(0, [&order](task_struct* t) { order.push_back(t); });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], &b->task);
  EXPECT_EQ(order[1], &c->task);
  EXPECT_EQ(order[2], &a->task);
  EXPECT_EQ(sched_->PickNext(0), &b->task);
}

TEST_F(SchedTest, TickRunsLowestVruntime) {
  Holder* a = MakeTask("a");
  Holder* b = MakeTask("b");
  a->task.se.vruntime = 1000;
  b->task.se.vruntime = 0;
  sched_->Enqueue(0, &a->task);
  sched_->Enqueue(0, &b->task);
  task_struct* running = sched_->Tick(0);
  EXPECT_EQ(running, &b->task);
  EXPECT_EQ(sched_->cpu_rq(0)->curr, &b->task);
}

TEST_F(SchedTest, VruntimeAdvancesWhileRunning) {
  Holder* a = MakeTask("a");
  sched_->Enqueue(0, &a->task);
  sched_->Tick(0);
  uint64_t v0 = a->task.se.vruntime;
  sched_->Tick(0);
  sched_->Tick(0);
  EXPECT_GT(a->task.se.vruntime, v0);
  EXPECT_GT(a->task.se.sum_exec_runtime, 0u);
}

TEST_F(SchedTest, RoundRobinUnderEqualLoad) {
  Holder* a = MakeTask("a");
  Holder* b = MakeTask("b");
  sched_->Enqueue(0, &a->task);
  sched_->Enqueue(0, &b->task);
  // Over many ticks both should accumulate comparable runtime.
  for (int i = 0; i < 200; ++i) {
    sched_->Tick(0);
  }
  uint64_t ra = a->task.se.sum_exec_runtime;
  uint64_t rb = b->task.se.sum_exec_runtime;
  EXPECT_GT(ra, 0u);
  EXPECT_GT(rb, 0u);
  double ratio = static_cast<double>(ra) / static_cast<double>(rb);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(SchedTest, DequeueRemovesFromTree) {
  Holder* a = MakeTask("a");
  sched_->Enqueue(0, &a->task);
  sched_->Dequeue(0, &a->task);
  EXPECT_EQ(sched_->nr_running(0), 0u);
  EXPECT_EQ(sched_->PickNext(0), &idle_[0]->task);
}

TEST_F(SchedTest, DequeueRunningTaskFallsBackToIdle) {
  Holder* a = MakeTask("a");
  sched_->Enqueue(0, &a->task);
  sched_->Tick(0);
  ASSERT_EQ(sched_->cpu_rq(0)->curr, &a->task);
  sched_->Dequeue(0, &a->task);  // task blocked while current
  EXPECT_EQ(sched_->cpu_rq(0)->curr, &idle_[0]->task);
  EXPECT_EQ(sched_->Tick(0), &idle_[0]->task);
}

TEST_F(SchedTest, PerCpuQueuesAreIndependent) {
  Holder* a = MakeTask("a");
  Holder* b = MakeTask("b");
  sched_->Enqueue(0, &a->task);
  sched_->Enqueue(1, &b->task);
  EXPECT_EQ(sched_->nr_running(0), 1u);
  EXPECT_EQ(sched_->nr_running(1), 1u);
  EXPECT_EQ(sched_->Tick(0), &a->task);
  EXPECT_EQ(sched_->Tick(1), &b->task);
}

TEST_F(SchedTest, NewcomerClampedToMinVruntime) {
  Holder* a = MakeTask("a");
  sched_->Enqueue(0, &a->task);
  for (int i = 0; i < 100; ++i) {
    sched_->Tick(0);
  }
  Holder* late = MakeTask("late");
  late->task.se.vruntime = 0;
  sched_->Enqueue(0, &late->task);
  EXPECT_GE(late->task.se.vruntime, sched_->cpu_rq(0)->cfs.min_vruntime);
}

TEST_F(SchedTest, RunqueueTreeStaysValid) {
  std::vector<Holder*> holders;
  for (int i = 0; i < 50; ++i) {
    Holder* h = MakeTask("t");
    h->task.se.vruntime = static_cast<uint64_t>(i * 37 % 100);
    sched_->Enqueue(0, &h->task);
    holders.push_back(h);
  }
  EXPECT_GE(rb_validate(&sched_->cpu_rq(0)->cfs.tasks_timeline.rb_root_), 0);
  for (int i = 0; i < 25; ++i) {
    sched_->Dequeue(0, &holders[static_cast<size_t>(i * 2)]->task);
  }
  EXPECT_GE(rb_validate(&sched_->cpu_rq(0)->cfs.tasks_timeline.rb_root_), 0);
  EXPECT_EQ(sched_->nr_running(0), 25u);
}

}  // namespace
}  // namespace vkern
