// Maple tree unit and property tests: stores, erases, splits, encoded
// pointers, gap tracking, COW/RCU node replacement.

#include "src/vkern/maple.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/support/rng.h"
#include "src/vkern/arena.h"
#include "src/vkern/buddy.h"
#include "src/vkern/rcu.h"
#include "src/vkern/slab.h"

namespace vkern {
namespace {

class MapleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<Arena>(32ull << 20);
    buddy_ = std::make_unique<BuddyAllocator>(arena_.get());
    slabs_ = std::make_unique<SlabAllocator>(buddy_.get());
    state_ = static_cast<rcu_state*>(slabs_->AllocMeta(sizeof(rcu_state)));
    data_ = static_cast<rcu_data*>(slabs_->AllocMeta(sizeof(rcu_data) * kNrCpus));
    rcu_ = std::make_unique<RcuSubsystem>(state_, data_, kNrCpus);
    ops_ = std::make_unique<MapleTreeOps>(slabs_.get(), rcu_.get());
    entry_cache_ = slabs_->CreateCache("test_entry", 64);
    ops_->Init(&tree_, MT_FLAGS_ALLOC_RANGE);
  }

  void* NewEntry() { return slabs_->Alloc(entry_cache_); }

  void ExpectValid() {
    std::string why;
    EXPECT_TRUE(ops_->Validate(&tree_, &why)) << why;
  }

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<SlabAllocator> slabs_;
  rcu_state* state_ = nullptr;
  rcu_data* data_ = nullptr;
  std::unique_ptr<RcuSubsystem> rcu_;
  std::unique_ptr<MapleTreeOps> ops_;
  kmem_cache* entry_cache_ = nullptr;
  maple_tree tree_;
};

TEST_F(MapleTest, EmptyTreeFindsNothing) {
  EXPECT_EQ(ops_->Find(&tree_, 0), nullptr);
  EXPECT_EQ(ops_->Find(&tree_, 12345), nullptr);
  EXPECT_EQ(ops_->CountEntries(&tree_), 0u);
  EXPECT_EQ(ops_->Height(&tree_), 0);
}

TEST_F(MapleTest, SingleRangeStoreAndFind) {
  void* entry = NewEntry();
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, entry));
  EXPECT_EQ(ops_->Find(&tree_, 0x1000), entry);
  EXPECT_EQ(ops_->Find(&tree_, 0x1800), entry);
  EXPECT_EQ(ops_->Find(&tree_, 0x1fff), entry);
  EXPECT_EQ(ops_->Find(&tree_, 0x0fff), nullptr);
  EXPECT_EQ(ops_->Find(&tree_, 0x2000), nullptr);
  EXPECT_EQ(ops_->CountEntries(&tree_), 1u);
  ExpectValid();
}

TEST_F(MapleTest, RootBecomesLeafNode) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  ASSERT_TRUE(xa_is_node(tree_.ma_root));
  maple_enode enode = reinterpret_cast<uintptr_t>(tree_.ma_root);
  EXPECT_EQ(mte_node_type(enode), maple_leaf_64);
  EXPECT_TRUE(mte_is_leaf(enode));
  EXPECT_TRUE(ma_is_root(mte_to_node(enode)));
}

TEST_F(MapleTest, EncodedPointerRoundTrip) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  maple_enode enode = reinterpret_cast<uintptr_t>(tree_.ma_root);
  maple_node* node = mte_to_node(enode);
  // The node address must be 256-byte aligned so the type bits decode cleanly.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(node) & 0xff, 0u);
  EXPECT_EQ(mt_mk_node(node, mte_node_type(enode)), enode);
}

TEST_F(MapleTest, OverlappingStoreRejected) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  EXPECT_FALSE(ops_->StoreRange(&tree_, 0x1800, 0x27ff, NewEntry()));
  EXPECT_FALSE(ops_->StoreRange(&tree_, 0x0800, 0x17ff, NewEntry()));
  EXPECT_EQ(ops_->CountEntries(&tree_), 1u);
}

TEST_F(MapleTest, AdjacentRangesAllowed) {
  void* a = NewEntry();
  void* b = NewEntry();
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, a));
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x2000, 0x2fff, b));
  EXPECT_EQ(ops_->Find(&tree_, 0x1fff), a);
  EXPECT_EQ(ops_->Find(&tree_, 0x2000), b);
  ExpectValid();
}

TEST_F(MapleTest, EraseReturnsEntryAndLeavesGap) {
  void* a = NewEntry();
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, a));
  EXPECT_EQ(ops_->Erase(&tree_, 0x1234), a);
  EXPECT_EQ(ops_->Find(&tree_, 0x1234), nullptr);
  EXPECT_EQ(ops_->Erase(&tree_, 0x1234), nullptr);
  ExpectValid();
}

TEST_F(MapleTest, ManyInsertionsSplitIntoTree) {
  // Enough ranges to force leaf splits and at least one root split.
  std::vector<void*> entries;
  for (int i = 0; i < 64; ++i) {
    void* e = NewEntry();
    entries.push_back(e);
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x3000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, e)) << i;
  }
  EXPECT_EQ(ops_->CountEntries(&tree_), 64u);
  EXPECT_GE(ops_->Height(&tree_), 2);
  ExpectValid();
  for (int i = 0; i < 64; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x3000;
    EXPECT_EQ(ops_->Find(&tree_, start + 0x800), entries[static_cast<size_t>(i)]);
  }
}

TEST_F(MapleTest, InternalNodesAreArangeWhenGapTracking) {
  for (int i = 0; i < 64; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x3000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, NewEntry()));
  }
  maple_enode root = reinterpret_cast<uintptr_t>(tree_.ma_root);
  EXPECT_EQ(mte_node_type(root), maple_arange_64);
}

TEST_F(MapleTest, ForEachVisitsInOrder) {
  for (int i = 15; i >= 0; --i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x2000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, NewEntry()));
  }
  uint64_t prev_last = 0;
  uint64_t count = 0;
  ops_->ForEach(&tree_, [&](uint64_t start, uint64_t last, void* entry) {
    EXPECT_GT(start, prev_last);
    EXPECT_GE(last, start);
    EXPECT_NE(entry, nullptr);
    prev_last = last;
    ++count;
  });
  EXPECT_EQ(count, 16u);
}

TEST_F(MapleTest, FindEmptyAreaRespectsExistingRanges) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x10000, 0x10fff, NewEntry()));
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x12000, 0x12fff, NewEntry()));
  uint64_t found = 0;
  // The gap [0x11000, 0x11fff] fits exactly one page.
  ASSERT_TRUE(ops_->FindEmptyArea(&tree_, 0x10000, 0x13000, 0x1000, &found));
  EXPECT_EQ(found, 0x11000u);
  // A two-page request must skip it.
  ASSERT_TRUE(ops_->FindEmptyArea(&tree_, 0x10000, 0x20000, 0x2000, &found));
  EXPECT_EQ(found, 0x13000u);
}

TEST_F(MapleTest, StoreIntoFoundGapAlwaysSucceeds) {
  vl::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    uint64_t size = (rng.NextInRange(1, 40)) * 0x1000;
    uint64_t addr = 0;
    ASSERT_TRUE(ops_->FindEmptyArea(&tree_, 0x10000, 0x10000000, size, &addr)) << i;
    ASSERT_TRUE(ops_->StoreRange(&tree_, addr, addr + size - 1, NewEntry())) << i;
  }
  EXPECT_EQ(ops_->CountEntries(&tree_), 300u);
  ExpectValid();
}

TEST_F(MapleTest, RandomStoreEraseAgainstModel) {
  vl::Rng rng(1234);
  std::map<uint64_t, std::pair<uint64_t, void*>> model;  // start -> (last, entry)
  for (int round = 0; round < 600; ++round) {
    if (model.empty() || rng.NextChance(3, 5)) {
      uint64_t size = rng.NextInRange(1, 16) * 0x1000;
      uint64_t addr = 0;
      if (!ops_->FindEmptyArea(&tree_, 0x10000, 0x4000000, size, &addr)) {
        continue;
      }
      void* e = NewEntry();
      ASSERT_TRUE(ops_->StoreRange(&tree_, addr, addr + size - 1, e));
      model[addr] = {addr + size - 1, e};
    } else {
      size_t victim = rng.NextBelow(model.size());
      auto it = model.begin();
      std::advance(it, static_cast<long>(victim));
      EXPECT_EQ(ops_->Erase(&tree_, it->first), it->second.second);
      model.erase(it);
    }
  }
  std::string why;
  ASSERT_TRUE(ops_->Validate(&tree_, &why)) << why;
  EXPECT_EQ(ops_->CountEntries(&tree_), model.size());
  for (const auto& [start, range] : model) {
    EXPECT_EQ(ops_->Find(&tree_, start), range.second);
    EXPECT_EQ(ops_->Find(&tree_, range.first), range.second);
  }
}

TEST_F(MapleTest, CowStoresQueueRcuFrees) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  uint64_t before = rcu_->pending_callbacks();
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x3000, 0x3fff, NewEntry()));
  // The second store rewrote the root leaf; the old one awaits a grace period.
  EXPECT_GT(rcu_->pending_callbacks(), before);
  uint64_t active_before = slabs_->FindCache("maple_node")->active_objects;
  rcu_->Synchronize();
  EXPECT_LT(slabs_->FindCache("maple_node")->active_objects, active_before);
}

TEST_F(MapleTest, RebuildLeafReplacesNodeAndFreesOldViaRcu) {
  for (int i = 0; i < 8; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x2000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, NewEntry()));
  }
  rcu_->Synchronize();
  maple_node* before = ops_->LeafContaining(&tree_, 0x10000);
  ASSERT_NE(before, nullptr);
  maple_node* old_node = ops_->RebuildLeaf(&tree_, 0x10000);
  EXPECT_EQ(old_node, before);
  maple_node* after = ops_->LeafContaining(&tree_, 0x10000);
  EXPECT_NE(after, before);
  // Content preserved.
  EXPECT_NE(ops_->Find(&tree_, 0x10000), nullptr);
  ExpectValid();
  // The old node is poisoned only after the grace period.
  EXPECT_FALSE(SlabAllocator::IsPoisoned(before, sizeof(maple_node)));
  rcu_->Synchronize();
  EXPECT_TRUE(SlabAllocator::IsPoisoned(before, sizeof(maple_node)));
}

TEST_F(MapleTest, ReaderInCriticalSectionBlocksFree) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  rcu_->Synchronize();
  rcu_->ReadLock(1);
  maple_node* old_node = ops_->RebuildLeaf(&tree_, 0x1000);
  rcu_->Synchronize();  // cannot complete: CPU1 is a reader
  EXPECT_FALSE(SlabAllocator::IsPoisoned(old_node, sizeof(maple_node)));
  rcu_->ReadUnlock(1);
  rcu_->Synchronize();
  EXPECT_TRUE(SlabAllocator::IsPoisoned(old_node, sizeof(maple_node)));
}

TEST_F(MapleTest, SpanningStoreTakesSlowPath) {
  // Fill enough ranges to split into multiple leaves, leaving a gap that
  // crosses a leaf boundary, then store across it.
  std::vector<void*> entries;
  for (int i = 0; i < 40; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x4000;
    void* e = NewEntry();
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, e));
    entries.push_back(e);
  }
  ASSERT_GE(ops_->Height(&tree_), 2);
  // Erase a run in the middle to open a wide gap spanning leaves.
  for (int i = 10; i < 30; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x4000;
    ASSERT_NE(ops_->Erase(&tree_, start), nullptr);
  }
  // A store covering the whole gap necessarily spans several former leaves.
  uint64_t big_start = 0x10000ull + 10 * 0x4000;
  uint64_t big_last = 0x10000ull + 29 * 0x4000 + 0xfff;
  void* big = NewEntry();
  ASSERT_TRUE(ops_->StoreRange(&tree_, big_start, big_last, big));
  EXPECT_EQ(ops_->Find(&tree_, big_start), big);
  EXPECT_EQ(ops_->Find(&tree_, big_last), big);
  EXPECT_EQ(ops_->Find(&tree_, (big_start + big_last) / 2), big);
  EXPECT_EQ(ops_->CountEntries(&tree_), 21u);
  std::string why;
  EXPECT_TRUE(ops_->Validate(&tree_, &why)) << why;
  // Surviving neighbours are intact.
  EXPECT_EQ(ops_->Find(&tree_, 0x10000ull + 9 * 0x4000), entries[9]);
  EXPECT_EQ(ops_->Find(&tree_, 0x10000ull + 30 * 0x4000), entries[30]);
}

TEST_F(MapleTest, SpanningStoreRejectsOverlap) {
  for (int i = 0; i < 40; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x4000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, NewEntry()));
  }
  // A huge range overlapping existing entries must fail without damage.
  uint64_t before = ops_->CountEntries(&tree_);
  EXPECT_FALSE(ops_->StoreRange(&tree_, 0x10000, 0x10000ull + 40 * 0x4000, NewEntry()));
  EXPECT_EQ(ops_->CountEntries(&tree_), before);
  std::string why;
  EXPECT_TRUE(ops_->Validate(&tree_, &why)) << why;
}

TEST_F(MapleTest, DestroyEmptiesTree) {
  for (int i = 0; i < 40; ++i) {
    uint64_t start = 0x10000ull + static_cast<uint64_t>(i) * 0x2000;
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, NewEntry()));
  }
  ops_->Destroy(&tree_);
  EXPECT_EQ(tree_.ma_root, nullptr);
  EXPECT_EQ(ops_->CountEntries(&tree_), 0u);
  rcu_->Synchronize();
  EXPECT_EQ(rcu_->pending_callbacks(), 0u);
}

TEST_F(MapleTest, DataEndScansPivots) {
  ASSERT_TRUE(ops_->StoreRange(&tree_, 0x1000, 0x1fff, NewEntry()));
  maple_node* node = mte_to_node(reinterpret_cast<uintptr_t>(tree_.ma_root));
  uint32_t end = ma_data_end(node, maple_leaf_64, kMtMaxIndex);
  // Layout: [null 0..0xfff][entry 0x1000..0x1fff][null 0x2000..max] => end = 2.
  EXPECT_EQ(end, 2u);
}

// Parameterized sweep: different insertion orders and range sizes must all
// produce a valid tree that answers point queries correctly.
class MapleSweepTest : public MapleTest,
                       public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(MapleSweepTest, InsertionPatternsKeepInvariants) {
  auto [count, stride_pages] = GetParam();
  std::vector<std::pair<uint64_t, void*>> inserted;
  for (int i = 0; i < count; ++i) {
    // Alternate low/high halves to vary split patterns.
    int slot = (i % 2 == 0) ? i / 2 : count - 1 - i / 2;
    uint64_t start =
        0x100000ull + static_cast<uint64_t>(slot) * static_cast<uint64_t>(stride_pages) * 0x1000;
    void* e = NewEntry();
    ASSERT_TRUE(ops_->StoreRange(&tree_, start, start + 0xfff, e));
    inserted.emplace_back(start, e);
  }
  std::string why;
  ASSERT_TRUE(ops_->Validate(&tree_, &why)) << why;
  for (const auto& [start, e] : inserted) {
    EXPECT_EQ(ops_->Find(&tree_, start), e);
  }
  EXPECT_EQ(ops_->CountEntries(&tree_), static_cast<uint64_t>(count));
}

INSTANTIATE_TEST_SUITE_P(Patterns, MapleSweepTest,
                         ::testing::Combine(::testing::Values(1, 8, 17, 64, 200, 500),
                                            ::testing::Values(2, 3, 9)));

}  // namespace
}  // namespace vkern
