// Radix tree tests against a std::map model.

#include "src/vkern/radix.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/support/rng.h"
#include "src/vkern/arena.h"

namespace vkern {
namespace {

class RadixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<Arena>(16ull << 20);
    buddy_ = std::make_unique<BuddyAllocator>(arena_.get());
    slabs_ = std::make_unique<SlabAllocator>(buddy_.get());
    radix_ = std::make_unique<RadixTreeOps>(slabs_.get());
    root_.height = 0;
    root_.rnode = nullptr;
  }

  void* Tag(uint64_t v) { return reinterpret_cast<void*>(v << 3); }

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<SlabAllocator> slabs_;
  std::unique_ptr<RadixTreeOps> radix_;
  radix_tree_root root_;
};

TEST_F(RadixTest, EmptyLookup) {
  EXPECT_EQ(radix_->Lookup(&root_, 0), nullptr);
  EXPECT_EQ(radix_->CountEntries(&root_), 0u);
}

TEST_F(RadixTest, InsertLookupSmallIndices) {
  ASSERT_TRUE(radix_->Insert(&root_, 0, Tag(1)));
  ASSERT_TRUE(radix_->Insert(&root_, 63, Tag(2)));
  EXPECT_EQ(radix_->Lookup(&root_, 0), Tag(1));
  EXPECT_EQ(radix_->Lookup(&root_, 63), Tag(2));
  EXPECT_EQ(radix_->Lookup(&root_, 1), nullptr);
}

TEST_F(RadixTest, TreeGrowsForLargeIndices) {
  ASSERT_TRUE(radix_->Insert(&root_, 5, Tag(1)));
  uint32_t h1 = root_.height;
  ASSERT_TRUE(radix_->Insert(&root_, 1ull << 30, Tag(2)));
  EXPECT_GT(root_.height, h1);
  // Old entry survives root growth.
  EXPECT_EQ(radix_->Lookup(&root_, 5), Tag(1));
  EXPECT_EQ(radix_->Lookup(&root_, 1ull << 30), Tag(2));
}

TEST_F(RadixTest, ReplaceExisting) {
  ASSERT_TRUE(radix_->Insert(&root_, 7, Tag(1)));
  ASSERT_TRUE(radix_->Insert(&root_, 7, Tag(9)));
  EXPECT_EQ(radix_->Lookup(&root_, 7), Tag(9));
  EXPECT_EQ(radix_->CountEntries(&root_), 1u);
}

TEST_F(RadixTest, Delete) {
  ASSERT_TRUE(radix_->Insert(&root_, 100, Tag(4)));
  EXPECT_EQ(radix_->Delete(&root_, 100), Tag(4));
  EXPECT_EQ(radix_->Lookup(&root_, 100), nullptr);
  EXPECT_EQ(radix_->Delete(&root_, 100), nullptr);
}

TEST_F(RadixTest, ForEachInIndexOrder) {
  for (uint64_t i : {900ull, 3ull, 70ull, 4096ull, 64ull}) {
    ASSERT_TRUE(radix_->Insert(&root_, i, Tag(i)));
  }
  uint64_t prev = 0;
  bool first = true;
  uint64_t count = 0;
  radix_->ForEach(&root_, [&](uint64_t index, void* item) {
    EXPECT_EQ(item, Tag(index));
    if (!first) {
      EXPECT_GT(index, prev);
    }
    prev = index;
    first = false;
    ++count;
  });
  EXPECT_EQ(count, 5u);
}

TEST_F(RadixTest, RandomAgainstModel) {
  vl::Rng rng(21);
  std::map<uint64_t, void*> model;
  for (int round = 0; round < 2000; ++round) {
    uint64_t index = rng.NextBelow(1ull << 18);
    if (model.empty() || rng.NextChance(2, 3)) {
      void* v = Tag(rng.Next() | 8);
      ASSERT_TRUE(radix_->Insert(&root_, index, v));
      model[index] = v;
    } else {
      EXPECT_EQ(radix_->Delete(&root_, index),
                model.count(index) != 0 ? model[index] : nullptr);
      model.erase(index);
    }
  }
  EXPECT_EQ(radix_->CountEntries(&root_), model.size());
  for (const auto& [index, v] : model) {
    EXPECT_EQ(radix_->Lookup(&root_, index), v);
  }
}

}  // namespace
}  // namespace vkern
