// Slab allocator tests: cache lifecycle, poisoning, alignment, list movement.

#include "src/vkern/slab.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/support/rng.h"
#include "src/vkern/arena.h"

namespace vkern {
namespace {

class SlabTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<Arena>(16ull << 20);
    buddy_ = std::make_unique<BuddyAllocator>(arena_.get());
    slabs_ = std::make_unique<SlabAllocator>(buddy_.get());
  }

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<SlabAllocator> slabs_;
};

TEST_F(SlabTest, CreateAndFindCache) {
  kmem_cache* cache = slabs_->CreateCache("widget", 48);
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(slabs_->FindCache("widget"), cache);
  EXPECT_EQ(slabs_->FindCache("missing"), nullptr);
  EXPECT_STREQ(cache->name, "widget");
  EXPECT_EQ(cache->object_size, 48u);
  EXPECT_GE(cache->num, 4u);
}

TEST_F(SlabTest, AllocZeroesObject) {
  kmem_cache* cache = slabs_->CreateCache("zeroed", 128);
  auto* obj = static_cast<uint8_t*>(slabs_->Alloc(cache));
  ASSERT_NE(obj, nullptr);
  for (uint32_t i = 0; i < cache->size; ++i) {
    EXPECT_EQ(obj[i], 0) << i;
  }
}

TEST_F(SlabTest, FreePoisonsObject) {
  kmem_cache* cache = slabs_->CreateCache("poisoned", 96);
  void* obj = slabs_->Alloc(cache);
  SlabAllocator::Free(cache, obj);
  EXPECT_TRUE(SlabAllocator::IsPoisoned(obj, cache->object_size));
  // Reallocation un-poisons.
  void* again = slabs_->Alloc(cache);
  EXPECT_EQ(again, obj);  // LIFO freelist
  EXPECT_FALSE(SlabAllocator::IsPoisoned(again, cache->object_size));
}

TEST_F(SlabTest, AlignmentHonored) {
  kmem_cache* cache = slabs_->CreateCache("aligned256", 300, 256);
  for (int i = 0; i < 20; ++i) {
    void* obj = slabs_->Alloc(cache);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(obj) & 255, 0u);
  }
}

TEST_F(SlabTest, AccountingTracksActiveObjects) {
  kmem_cache* cache = slabs_->CreateCache("counted", 64);
  std::vector<void*> objs;
  for (int i = 0; i < 100; ++i) {
    objs.push_back(slabs_->Alloc(cache));
  }
  EXPECT_EQ(cache->active_objects, 100u);
  EXPECT_GE(cache->total_objects, 100u);
  for (void* obj : objs) {
    SlabAllocator::Free(cache, obj);
  }
  EXPECT_EQ(cache->active_objects, 0u);
}

TEST_F(SlabTest, SlabListsMoveBetweenStates) {
  kmem_cache* cache = slabs_->CreateCache("lists", 64);
  // Fill exactly one slab.
  std::vector<void*> objs;
  for (uint32_t i = 0; i < cache->num; ++i) {
    objs.push_back(slabs_->Alloc(cache));
  }
  EXPECT_FALSE(list_empty(&cache->slabs_full));
  EXPECT_TRUE(list_empty(&cache->slabs_partial));
  SlabAllocator::Free(cache, objs.back());
  objs.pop_back();
  EXPECT_TRUE(list_empty(&cache->slabs_full));
  EXPECT_FALSE(list_empty(&cache->slabs_partial));
  for (void* obj : objs) {
    SlabAllocator::Free(cache, obj);
  }
  EXPECT_FALSE(list_empty(&cache->slabs_free));
}

TEST_F(SlabTest, DistinctAddressesWhileLive) {
  kmem_cache* cache = slabs_->CreateCache("distinct", 40);
  std::set<void*> seen;
  for (int i = 0; i < 500; ++i) {
    void* obj = slabs_->Alloc(cache);
    ASSERT_NE(obj, nullptr);
    EXPECT_TRUE(seen.insert(obj).second);
  }
}

TEST_F(SlabTest, LargeObjectsGetMultiPageSlabs) {
  kmem_cache* cache = slabs_->CreateCache("big", 3000);
  EXPECT_GE(cache->pages_per_slab, 4u);
  void* a = slabs_->Alloc(cache);
  void* b = slabs_->Alloc(cache);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  SlabAllocator::Free(cache, a);
  SlabAllocator::Free(cache, b);
  EXPECT_EQ(cache->active_objects, 0u);
}

TEST_F(SlabTest, StressRandomAllocFree) {
  kmem_cache* cache = slabs_->CreateCache("stress", 72);
  vl::Rng rng(3);
  std::vector<void*> live;
  for (int round = 0; round < 5000; ++round) {
    if (live.empty() || rng.NextChance(1, 2)) {
      void* obj = slabs_->Alloc(cache);
      ASSERT_NE(obj, nullptr);
      live.push_back(obj);
    } else {
      size_t idx = rng.NextBelow(live.size());
      SlabAllocator::Free(cache, live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(cache->active_objects, live.size());
}

TEST_F(SlabTest, CacheChainListsAllCaches) {
  slabs_->CreateCache("a", 16);
  slabs_->CreateCache("b", 32);
  slabs_->CreateCache("c", 64);
  size_t n = 0;
  for (list_head* p = slabs_->cache_chain()->next; p != slabs_->cache_chain(); p = p->next) {
    ++n;
  }
  EXPECT_GE(n, 3u);
}

}  // namespace
}  // namespace vkern
