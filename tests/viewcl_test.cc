// ViewCL end-to-end tests: lexer, parser, and interpreter evaluated against a
// live simulated kernel — including the paper's §1 motivating program (the
// CFS runqueue red-black tree).

#include <gtest/gtest.h>

#include "src/viewcl/interp.h"
#include "src/viewcl/lexer.h"
#include "src/viewcl/parser.h"
#include "tests/test_util.h"

namespace viewcl {
namespace {

class ViewClTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    interp_ = std::make_unique<Interpreter>(debugger_.get());
  }

  std::unique_ptr<ViewGraph> MustRun(std::string_view program) {
    auto graph = interp_->RunProgram(program);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (!graph.ok()) {
      return nullptr;
    }
    return std::move(graph).value();
  }

  // Count boxes of a kernel type.
  static int CountType(const ViewGraph& graph, std::string_view type) {
    int n = 0;
    graph.ForEachBox([&](const VBox& box) {
      if (box.kernel_type() == type) {
        ++n;
      }
    });
    return n;
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<Interpreter> interp_;
};

TEST_F(ViewClTest, LexerTokens) {
  auto toks = LexViewCl("define Task as Box<task_struct> [ Text<u64:x> pid ] // c\nplot @x");
  ASSERT_TRUE(toks.ok());
  EXPECT_GT(toks->size(), 10u);
  EXPECT_EQ((*toks)[0].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "define");
}

TEST_F(ViewClTest, LexerCExprCapturesRawText) {
  auto toks = LexViewCl("root = ${cpu_rq(0)->cfs.tasks_timeline}");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 3u);
  EXPECT_EQ((*toks)[2].kind, TokKind::kCExpr);
  EXPECT_EQ((*toks)[2].text, "cpu_rq(0)->cfs.tasks_timeline");
}

TEST_F(ViewClTest, LexerRejectsUnterminatedCExpr) {
  EXPECT_FALSE(LexViewCl("x = ${oops").ok());
}

TEST_F(ViewClTest, CountCodeLinesSkipsCommentsAndBlanks) {
  EXPECT_EQ(CountCodeLines("a = ${1}\n\n// comment\nb = ${2}\n"), 2);
}

TEST_F(ViewClTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseViewCl("define without as").ok());
  EXPECT_FALSE(ParseViewCl("plot").ok());
  EXPECT_FALSE(ParseViewCl("x = ").ok());
}

TEST_F(ViewClTest, ParserAcceptsNamedViewsWithInheritance) {
  auto program = ParseViewCl(R"(
    define Task as Box<task_struct> {
      :default [ Text pid, comm ]
      :default => :sched [ Text se.vruntime ]
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->defines.size(), 1u);
  ASSERT_EQ(program->defines[0]->views.size(), 2u);
  EXPECT_EQ(program->defines[0]->views[1].name, "sched");
  EXPECT_EQ(program->defines[0]->views[1].parent, "default");
}

TEST_F(ViewClTest, SimpleBoxPlot) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid, comm
      Text ppid: parent.pid
    ]
    plot Task(${init_task.pids[0].pid == 0 ? &init_task : &init_task})
  )");
  ASSERT_NE(graph, nullptr);
  ASSERT_EQ(graph->roots().size(), 1u);
  const VBox* box = graph->box(graph->roots()[0]);
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->kernel_type(), "task_struct");
  const ViewInstance* view = box->ActiveView();
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->texts.size(), 3u);
  EXPECT_EQ(view->texts[0].name, "pid");
  EXPECT_EQ(view->texts[0].display, "0");
  EXPECT_EQ(view->texts[1].display, "swapper/0");
  // members map captured for ViewQL.
  EXPECT_EQ(box->members().at("pid").num, 0);
  EXPECT_EQ(box->members().at("comm").str, "swapper/0");
}

TEST_F(ViewClTest, PaperIntroExampleCfsRunqueue) {
  // The §1 motivating program, verbatim modulo whitespace.
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid, comm
      Text ppid: parent.pid
      Text<string> state: ${task_state(@this)}
      Text se.vruntime
    ]
    root = ${cpu_rq(0)->cfs.tasks_timeline}
    sched_tree = RBTree(@root).forEach |node| {
      yield Task<task_struct.se.run_node>(@node)
    }
    plot @sched_tree
  )");
  ASSERT_NE(graph, nullptr);
  int tasks = CountType(*graph, "task_struct");
  EXPECT_EQ(tasks, static_cast<int>(kernel_->sched().cpu_rq(0)->cfs.nr_running));
  EXPECT_GT(tasks, 0);
  // Every task box shows four text items with a decoded state string.
  graph->ForEachBox([&](const VBox& box) {
    if (box.kernel_type() != "task_struct") {
      return;
    }
    const ViewInstance* view = box.ActiveView();
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(view->texts.size(), 5u);
    EXPECT_FALSE(box.members().at("state").str.empty());
    // vruntime ordering is reflected in tree order by construction; at least
    // verify the member parsed as an integer.
    EXPECT_EQ(box.members().at("se.vruntime").kind, MemberValue::Kind::kInt);
  });
}

TEST_F(ViewClTest, AnchoredCtorRecoversContainer) {
  // Walk init_task's children list through container_of.
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [ Text pid, comm ]
    kids = List(${&init_task.children}).forEach |node| {
      yield Task<task_struct.sibling>(@node)
    }
    plot @kids
  )");
  ASSERT_NE(graph, nullptr);
  int tasks = CountType(*graph, "task_struct");
  EXPECT_EQ(tasks, static_cast<int>(vkern::list_count(
                       &kernel_->procs().init_task()->children)));
  // One of them must be init (pid 1).
  bool found_init = false;
  graph->ForEachBox([&](const VBox& box) {
    if (box.kernel_type() == "task_struct" && box.members().count("pid") != 0 &&
        box.members().at("pid").num == 1) {
      found_init = true;
    }
  });
  EXPECT_TRUE(found_init);
}

TEST_F(ViewClTest, ViewInheritanceProducesBothViews) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> {
      :default [ Text pid, comm ]
      :default => :sched [ Text se.vruntime ]
    }
    plot Task(${&init_task})
  )");
  ASSERT_NE(graph, nullptr);
  const VBox* box = graph->box(graph->roots()[0]);
  const ViewInstance* def = box->FindView("default");
  const ViewInstance* sched = box->FindView("sched");
  ASSERT_NE(def, nullptr);
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(def->texts.size(), 2u);
  EXPECT_EQ(sched->texts.size(), 3u);  // inherited pid, comm + vruntime
}

TEST_F(ViewClTest, InterningTerminatesCycles) {
  // parent links form cycles (init_task is its own ancestor anchor); a
  // recursive Link must terminate via interning.
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    plot Task(${&init_task})
  )");
  ASSERT_NE(graph, nullptr);
  // init_task's parent is null, so exactly one box exists; run also on init.
  EXPECT_EQ(CountType(*graph, "task_struct"), 1);
}

TEST_F(ViewClTest, InterningSharesBoxesAcrossPaths) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    plot Task(${&runqueues[0]})
  )");
  // Bogus type for plot root is fine — instead test two plots sharing a node:
  (void)graph;
  interp_ = std::make_unique<Interpreter>(debugger_.get());
  auto graph2 = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    a = Task(${&init_task})
    plot @a
    plot @a
  )");
  ASSERT_NE(graph2, nullptr);
  EXPECT_EQ(graph2->roots().size(), 2u);
  EXPECT_EQ(graph2->roots()[0], graph2->roots()[1]);
}

TEST_F(ViewClTest, WhereClauseBindings) {
  auto graph = MustRun(R"(
    define Rq as Box<rq> [
      Text cpu
      Text nr: @n
    ] where {
      n = ${@this.cfs.nr_running}
    }
    plot Rq(${cpu_rq(0)})
  )");
  ASSERT_NE(graph, nullptr);
  const VBox* box = graph->box(graph->roots()[0]);
  EXPECT_EQ(box->members().at("nr").num,
            static_cast<int64_t>(kernel_->sched().cpu_rq(0)->cfs.nr_running));
}

TEST_F(ViewClTest, SwitchCaseSelectsArm) {
  auto graph = MustRun(R"(
    define A as Box<task_struct> [ Text pid ]
    define B as Box<task_struct> [ Text tgid ]
    x = switch ${1 + 1} {
      case ${3}: A(${&init_task})
      case ${2}: B(${&init_task})
      otherwise: NULL
    }
    plot @x
  )");
  ASSERT_NE(graph, nullptr);
  const VBox* box = graph->box(graph->roots()[0]);
  EXPECT_EQ(box->decl_name(), "B");
}

TEST_F(ViewClTest, DecoratorsRenderPerTable1) {
  vkern::task_struct* proc = workload_->process(0);
  char program[640];
  std::snprintf(program, sizeof(program), R"(
    define Vma as Box<vm_area_struct> [
      Text<u64:x> vm_start, vm_end
      Text<flag:vm_flags_bits> vm_flags
      Text<bool> is_writable: ${(@this.vm_flags & VM_WRITE) != 0}
    ]
    define Mm as Box<mm_struct> [
      Text map_count
      Container vmas: Array.selectFrom(${&((mm_struct*)0x%llx)->mm_mt}, Vma)
    ]
    plot Mm(${(mm_struct*)0x%llx})
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(proc->mm)),
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(proc->mm)));
  auto g = MustRun(program);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(CountType(*g, "vm_area_struct"), proc->mm->map_count);
  bool saw_hex = false;
  bool saw_flags = false;
  g->ForEachBox([&](const VBox& box) {
    if (box.kernel_type() != "vm_area_struct") {
      return;
    }
    const ViewInstance* view = box.ActiveView();
    if (view->texts[0].display.substr(0, 2) == "0x") {
      saw_hex = true;
    }
    if (box.members().at("vm_flags").str.find("VM_READ") != std::string::npos) {
      saw_flags = true;
    }
  });
  EXPECT_TRUE(saw_hex);
  EXPECT_TRUE(saw_flags);
}

TEST_F(ViewClTest, XArrayWalksPageCache) {
  // Find a file inode with cached pages and plot its page cache.
  vkern::inode* target_ino = nullptr;
  VKERN_LIST_FOR_EACH(pos, &kernel_->ext4_sb()->s_inodes) {
    vkern::inode* ino = VKERN_CONTAINER_OF(pos, vkern::inode, i_sb_list);
    if (ino->i_data.nrpages >= 2) {
      target_ino = ino;
      break;
    }
  }
  ASSERT_NE(target_ino, nullptr);
  char program[512];
  std::snprintf(program, sizeof(program), R"(
    define Page as Box<page> [
      Text<u64:x> flags
      Text index
    ]
    pages = XArray(${&((inode*)0x%llx)->i_data.i_pages}).forEach |entry| {
      yield Page(${(page*)@entry})
    }
    plot @pages
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(target_ino)));
  auto graph = MustRun(program);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "page"), static_cast<int>(target_ino->i_data.nrpages));
}

TEST_F(ViewClTest, HListWalksPidHash) {
  auto graph = MustRun(R"(
    define Pid as Box<pid> [ Text nr ]
    bucket = HList(${&pid_hash[1]}).forEach |node| {
      yield Pid<pid.pid_chain>(@node)
    }
    plot @bucket
  )");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "pid"),
            static_cast<int>(vkern::hlist_count(&kernel_->procs().pid_hash()[1])));
}

TEST_F(ViewClTest, MapleTreeContainerDistillsVmas) {
  vkern::mm_struct* mm = workload_->process(1)->mm;
  char program[512];
  std::snprintf(program, sizeof(program), R"(
    define Vma as Box<vm_area_struct> [ Text<u64:x> vm_start ]
    vmas = MapleTree(${&((mm_struct*)0x%llx)->mm_mt}).forEach |entry| {
      yield Vma(${(vm_area_struct*)@entry})
    }
    plot @vmas
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(mm)));
  auto graph = MustRun(program);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "vm_area_struct"), mm->map_count);
}

TEST_F(ViewClTest, InlineVirtualBoxes) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [ Text pid ]
    wrapper = List(${&init_task.children}).forEach |node| {
      t = Task<task_struct.sibling>(@node)
      yield Box [
        Link child -> @t
      ]
    }
    plot @wrapper
  )");
  ASSERT_NE(graph, nullptr);
  int virtual_boxes = 0;
  graph->ForEachBox([&](const VBox& box) {
    if (box.is_virtual() && box.decl_name().substr(0, 8) == "<inline:") {
      ++virtual_boxes;
    }
  });
  EXPECT_GT(virtual_boxes, 0);
}

TEST_F(ViewClTest, RawContainerRendersValueBoxes) {
  auto graph = MustRun(R"(
    define Sighand as Box<sighand_struct> [
      Text count
      Container actions: Array(${@this.action}, 4)
    ]
    plot Sighand(${init_task.sighand})
  )");
  ASSERT_NE(graph, nullptr);
  const VBox* root = graph->box(graph->roots()[0]);
  const ViewInstance* view = root->ActiveView();
  ASSERT_EQ(view->containers.size(), 1u);
  EXPECT_EQ(view->containers[0].members.size(), 4u);
  EXPECT_EQ(root->members().at("actions.size").num, 4);
}

TEST_F(ViewClTest, WarningsInsteadOfHardFailures) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid
      Text broken: ${nonexistent_fn(@this)}
    ]
    plot Task(${&init_task})
  )");
  ASSERT_NE(graph, nullptr);
  EXPECT_FALSE(interp_->warnings().empty());
  const VBox* box = graph->box(graph->roots()[0]);
  EXPECT_EQ(box->ActiveView()->texts[1].display, "?");
}

TEST_F(ViewClTest, ReachableComputesClosure) {
  auto graph = MustRun(R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    plot Task(${&init_task.children == 0 ? 0 : 0})
  )");
  interp_ = std::make_unique<Interpreter>(debugger_.get());
  vkern::task_struct* deep = workload_->user_tasks()[0];
  char program[256];
  std::snprintf(program, sizeof(program), R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    plot Task(${(task_struct*)0x%llx})
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(deep)));
  auto g = MustRun(program);
  ASSERT_NE(g, nullptr);
  // bench-0 -> init -> swapper: three tasks reachable through parent links.
  auto reach = g->Reachable(g->roots());
  EXPECT_EQ(reach.size(), 3u);
}

// Parameterized: every workload process's VMA count must match between the
// kernel and the distilled ViewCL container.
class ViewClProcessSweep : public ViewClTest, public ::testing::WithParamInterface<int> {};

TEST_P(ViewClProcessSweep, VmaDistillMatchesKernel) {
  vkern::mm_struct* mm = workload_->process(GetParam())->mm;
  char program[384];
  std::snprintf(program, sizeof(program), R"(
    define Vma as Box<vm_area_struct> [ Text<u64:x> vm_start, vm_end ]
    vmas = Array.selectFrom(${(maple_tree*)0x%llx}, Vma)
    plot @vmas
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(&mm->mm_mt)));
  auto graph = MustRun(program);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "vm_area_struct"), mm->map_count);
  // And the VMAs come out sorted by vm_start.
  uint64_t prev = 0;
  graph->ForEachBox([&](const VBox& box) {
    if (box.kernel_type() != "vm_area_struct") {
      return;
    }
    auto it = box.members().find("vm_start");
    ASSERT_NE(it, box.members().end());
    uint64_t start = static_cast<uint64_t>(it->second.num);
    EXPECT_GE(start, prev);
    prev = start;
  });
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, ViewClProcessSweep, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace viewcl
