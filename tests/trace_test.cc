// Tests for the deterministic tracing/metrics layer (support/trace.h,
// support/metrics.h) and its integration: span nesting and self-time
// accounting, run-to-run byte-identical Chrome trace JSON, histogram bucket
// edges, per-transport charge attribution, and the vctrl stats / vctrl trace /
// vprof shell commands.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/support/vclock.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/shell.h"
#include "tests/test_util.h"

namespace vl {
namespace {

// The tracer and metrics registry are process-wide; every test starts and
// finishes with both quiesced so ordering cannot leak state.
void Quiesce() {
  Tracer& tracer = Tracer::Instance();
  tracer.Disable();
  tracer.Clear();
  tracer.SetCapacity(1 << 16);
  MetricsRegistry::Instance().Reset();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Quiesce(); }
  void TearDown() override { Quiesce(); }
};

// Registers a local clock with the tracer for clock-only unit tests and
// always un-registers it (the pointer would otherwise dangle).
class ClockGuard {
 public:
  ClockGuard() { Tracer::Instance().SetClock(&clock_); }
  ~ClockGuard() { Tracer::Instance().ClearClockIf(&clock_); }
  VirtualClock& clock() { return clock_; }

 private:
  VirtualClock clock_;
};

TEST_F(TraceTest, HistogramBucketEdges) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1ull << 20), 21);
  EXPECT_EQ(Histogram::BucketOf(~0ull), 64);

  EXPECT_EQ(Histogram::BucketUpperEdge(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperEdge(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperEdge(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperEdge(64), ~0ull);

  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1ull << 20}) {
    h.Record(v);
  }
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1u);  // 4
  EXPECT_EQ(h.bucket(21), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 10u + (1ull << 20));
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1ull << 20);
}

TEST_F(TraceTest, SpanNestingSelfTimeAndOrdering) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  tracer.BeginSpan("outer");
  guard.clock().AdvanceNanos(10);
  tracer.BeginSpan("inner");
  guard.clock().AdvanceNanos(5);
  tracer.EndSpan();
  guard.clock().AdvanceNanos(3);
  tracer.EndSpan();

  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // inner completes first (recorded at EndSpan).
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts_ns, 10u);
  EXPECT_EQ(events[0].dur_ns, 5u);
  EXPECT_EQ(events[0].self_ns, 5u);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 18u);
  EXPECT_EQ(events[1].self_ns, 13u);  // 18 minus inner's 5
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LT(events[1].seq, events[0].seq);  // outer began first

  // Self times partition the root's duration.
  EXPECT_EQ(tracer.TotalSelfNanos(), 18u);
}

TEST_F(TraceTest, CompleteEventChargesParent) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  tracer.BeginSpan("parent");
  guard.clock().AdvanceNanos(7);
  tracer.CompleteEvent("leaf", 0, 7, {{"bytes", 8}});
  guard.clock().AdvanceNanos(2);
  tracer.EndSpan();

  const auto& stats = tracer.stats();
  ASSERT_EQ(stats.count("parent"), 1u);
  ASSERT_EQ(stats.count("leaf"), 1u);
  EXPECT_EQ(stats.at("parent").total_ns, 9u);
  EXPECT_EQ(stats.at("parent").self_ns, 2u);
  EXPECT_EQ(stats.at("leaf").self_ns, 7u);
  EXPECT_EQ(tracer.TotalSelfNanos(), 9u);
}

TEST_F(TraceTest, RingEvictsOldestAndCountsDropped) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  tracer.SetCapacity(4);

  for (int i = 0; i < 10; ++i) {
    tracer.CompleteEvent("e", i, 1);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // oldest first
  }
  EXPECT_EQ(events.back().ts_ns, 9u);
  // Aggregates survive eviction.
  EXPECT_EQ(tracer.stats().at("e").count, 10u);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span("ignored");
    guard.clock().AdvanceNanos(5);
  }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_TRUE(tracer.stats().empty());
}

TEST_F(TraceTest, ApproxQuantileOnKnownDistributions) {
  Histogram uniform;
  for (uint64_t v = 1; v <= 1000; ++v) {
    uniform.Record(v);
  }
  // Linear interpolation inside a log2 bucket: exact to within the bucket's
  // factor-of-two span, always clamped to the observed [min, max].
  EXPECT_NEAR(uniform.ApproxQuantile(0.50), 500.0, 16.0);
  EXPECT_NEAR(uniform.ApproxQuantile(0.90), 900.0, 60.0);
  EXPECT_NEAR(uniform.ApproxQuantile(0.99), 990.0, 15.0);
  EXPECT_EQ(uniform.ApproxQuantile(0.0), 1.0);
  EXPECT_EQ(uniform.ApproxQuantile(1.0), 1000.0);
  // Out-of-range q clamps to the extremes.
  EXPECT_EQ(uniform.ApproxQuantile(-0.5), uniform.ApproxQuantile(0.0));
  EXPECT_EQ(uniform.ApproxQuantile(1.5), uniform.ApproxQuantile(1.0));
  // Monotone in q.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = uniform.ApproxQuantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }

  // One distinct value: the [min, max] clamp makes every quantile exact.
  Histogram single;
  for (int i = 0; i < 4; ++i) {
    single.Record(8);
  }
  EXPECT_EQ(single.ApproxQuantile(0.0), 8.0);
  EXPECT_EQ(single.ApproxQuantile(0.5), 8.0);
  EXPECT_EQ(single.ApproxQuantile(0.99), 8.0);

  Histogram empty;
  EXPECT_EQ(empty.ApproxQuantile(0.5), 0.0);
}

TEST_F(TraceTest, MetricsReportQuantiles) {
  MetricsRegistry& metrics = MetricsRegistry::Instance();
  Histogram* h = metrics.GetHistogram("test.quantiles");
  for (uint64_t v = 1; v <= 100; ++v) {
    h->Record(v);
  }
  Json j = metrics.ToJson();
  const Json* hist = j.Find("histograms")->Find("test.quantiles");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("p50"), nullptr);
  ASSERT_NE(hist->Find("p90"), nullptr);
  ASSERT_NE(hist->Find("p99"), nullptr);
  EXPECT_NEAR(hist->Find("p50")->AsNumber(), 50.0, 8.0);
  EXPECT_NE(metrics.TextReport().find("p50="), std::string::npos);
}

TEST_F(TraceTest, AnnotateAccumulatesIntoInnermostSpan) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  tracer.Annotate("cache.hit_bytes", 4);  // no open span: dropped
  tracer.BeginSpan("outer");
  tracer.BeginSpan("inner");
  tracer.Annotate("cache.hit_bytes", 8);
  tracer.Annotate("cache.hit_bytes", 8);
  tracer.Annotate("cache.miss_bytes", 16);
  guard.clock().AdvanceNanos(2);
  tracer.EndSpan();
  tracer.EndSpan();

  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].name, "inner");
  // Annotations accumulate per key, sorted; they do not leak to the parent.
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "cache.hit_bytes");
  EXPECT_EQ(events[0].args[0].second, 16);
  EXPECT_EQ(events[0].args[1].first, "cache.miss_bytes");
  EXPECT_EQ(events[0].args[1].second, 16);
  EXPECT_TRUE(events[1].args.empty());
}

TEST_F(TraceTest, TreeModeBuildsCallingContextTreeWithRolledUpArgs) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.SetTreeEnabled(true);
  tracer.Enable();

  // Two identical refresh-shaped passes: same-path spans merge into one node.
  for (int i = 0; i < 2; ++i) {
    tracer.BeginSpan("a");
    guard.clock().AdvanceNanos(10);
    tracer.BeginSpan("b");
    guard.clock().AdvanceNanos(5);
    tracer.Annotate("cache.hit_bytes", 8);
    tracer.EndSpan();
    tracer.CompleteEvent("read", tracer.NowNanos(), 3, {{"bytes", 4}});
    guard.clock().AdvanceNanos(3);
    tracer.EndSpan();
  }
  tracer.SetTreeEnabled(false);  // freeze for inspection

  const TreeNode& root = tracer.tree_root();
  ASSERT_EQ(root.children.count("a"), 1u);
  const TreeNode& a = root.children.at("a");
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.total_ns, 36u);
  EXPECT_EQ(a.self_ns, 20u);
  ASSERT_EQ(a.children.count("b"), 1u);
  ASSERT_EQ(a.children.count("read"), 1u);
  EXPECT_EQ(a.children.at("b").total_ns, 10u);
  EXPECT_EQ(a.children.at("b").args.at("cache.hit_bytes"), 16);
  EXPECT_EQ(a.children.at("read").total_ns, 6u);

  // Serialization rolls descendants' args up: node "a" reports its subtree's
  // bytes and cache split even though the annotations landed on children.
  Json j = tracer.TreeToJson();
  EXPECT_EQ(j.Find("total_ns")->AsInt(), 36);
  const Json* ja = j.Find("children")->Find("a");
  ASSERT_NE(ja, nullptr);
  EXPECT_EQ(ja->Find("total_ns")->AsInt(), 36);
  EXPECT_EQ(ja->Find("args")->Find("cache.hit_bytes")->AsInt(), 16);
  EXPECT_EQ(ja->Find("args")->Find("bytes")->AsInt(), 8);

  std::string text = tracer.TreeText();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("cache.hit_bytes=16"), std::string::npos);

  // Re-enabling resets the tree for the next refresh.
  tracer.SetTreeEnabled(true);
  EXPECT_TRUE(tracer.tree_root().children.empty());
  tracer.SetTreeEnabled(false);
}

TEST_F(TraceTest, FoldedStacksReconstructFromRing) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  for (int i = 0; i < 2; ++i) {
    tracer.BeginSpan("a");
    guard.clock().AdvanceNanos(10);
    tracer.BeginSpan("b");
    guard.clock().AdvanceNanos(5);
    tracer.EndSpan();
    tracer.CompleteEvent("read", tracer.NowNanos(), 3);
    guard.clock().AdvanceNanos(3);
    tracer.EndSpan();
  }
  EXPECT_EQ(tracer.ToFolded(), "a 20\na;b 10\na;read 6\n");
}

// Shrinking the ring while it has wrapped must keep the newest events (in
// order) and charge the shed ones to dropped(); the ring must keep working
// at the new capacity afterwards.
TEST_F(TraceTest, SetCapacityShrinkWhileWrappedKeepsNewest) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  tracer.SetCapacity(8);
  for (int i = 0; i < 10; ++i) {
    tracer.CompleteEvent("e", i, 1);
  }
  ASSERT_EQ(tracer.dropped(), 2u);  // ring wrapped: ts 0 and 1 evicted

  tracer.SetCapacity(4);
  EXPECT_EQ(tracer.dropped(), 6u);  // shrink shed ts 2..5
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 6u + i);  // newest four, oldest first
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }

  // The ring wraps correctly at the new capacity.
  tracer.CompleteEvent("e", 10, 1);
  events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().ts_ns, 7u);
  EXPECT_EQ(events.back().ts_ns, 10u);
  EXPECT_EQ(tracer.dropped(), 7u);

  // Growing keeps everything buffered and the dropped count.
  tracer.SetCapacity(16);
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 7u);
  // Aggregates were never touched by the resizes.
  EXPECT_EQ(tracer.stats().at("e").count, 11u);
}

class TraceKernelTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    Quiesce();
    vltest::WorkloadKernelTest::SetUp();
    // GdbQemu so reads actually advance the virtual clock.
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get(),
                                                      dbg::LatencyModel::GdbQemu());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
  }
  void TearDown() override {
    debugger_.reset();
    Quiesce();
  }

  // One traced extraction from a clean slate; returns the Chrome JSON dump.
  std::string TracedRun(const char* figure_id) {
    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    MetricsRegistry::Instance().Reset();
    debugger_->target().ResetStats();
    // A clean slate includes an empty read cache: a warm cache elides
    // transport reads (and their spans) entirely.
    debugger_->session().InvalidateAll();
    debugger_->session().ResetCacheStats();
    tracer.Enable();
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(vision::FindFigure(figure_id)->viewcl);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    tracer.Disable();
    return tracer.ToChromeJson().Dump(2);
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
};

TEST_F(TraceKernelTest, TwoRunsProduceByteIdenticalTraces) {
  std::string first = TracedRun("fig7_1");
  std::string second = TracedRun("fig7_1");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(TraceKernelTest, ChromeJsonRoundTripsThroughParser) {
  std::string dump = TracedRun("fig7_1");
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  const Json& first = events->at(0);
  EXPECT_EQ(first.Find("ph")->AsString(), "X");
  EXPECT_EQ(first.Find("cat")->AsString(), "vtrace");
  EXPECT_NE(first.Find("ts"), nullptr);
  EXPECT_NE(first.Find("dur"), nullptr);
  EXPECT_NE(first.Find("args")->Find("seq"), nullptr);
  EXPECT_EQ(parsed->Find("metadata")->Find("clock")->AsString(), "virtual");
}

TEST_F(TraceKernelTest, SelfTimesPartitionTheTargetClock) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  debugger_->target().ResetStats();
  tracer.Enable();
  {
    ScopedSpan root("root");
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
    ASSERT_TRUE(graph.ok());
  }
  tracer.Disable();
  EXPECT_GT(debugger_->target().clock().nanos(), 0u);
  EXPECT_EQ(tracer.TotalSelfNanos(), debugger_->target().clock().nanos());
}

TEST_F(TraceKernelTest, ReadsAreTaggedByKernelType) {
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  viewcl::Interpreter interp(debugger_.get());
  auto graph = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
  ASSERT_TRUE(graph.ok());
  tracer.Disable();

  const auto& counters = MetricsRegistry::Instance().counters();
  uint64_t typed = 0;
  for (const auto& [name, counter] : counters) {
    if (name.rfind("dbg.read.by_type.", 0) == 0 &&
        name.rfind("dbg.read.by_type.untyped", 0) != 0) {
      typed += counter.value();
    }
  }
  EXPECT_GT(typed, 0u);
  EXPECT_GT(MetricsRegistry::Instance().histograms().at("dbg.read.bytes").count(), 0u);
}

// ResetStats must also clear the dbg.read.* histograms and per-type counters
// fed by RecordRead, or back-to-back bench phases leak counts into each other.
TEST_F(TraceKernelTest, ResetStatsClearsReadMetrics) {
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  viewcl::Interpreter interp(debugger_.get());
  ASSERT_TRUE(interp.RunProgram(vision::FindFigure("fig7_1")->viewcl).ok());
  tracer.Disable();

  MetricsRegistry& metrics = MetricsRegistry::Instance();
  ASSERT_GT(metrics.histograms().at("dbg.read.bytes").count(), 0u);
  ASSERT_GT(metrics.histograms().at("dbg.read.latency_ns").count(), 0u);
  // An unrelated metric must survive the targeted reset.
  metrics.GetCounter("unrelated.counter")->Add(7);

  debugger_->target().ResetStats();
  EXPECT_EQ(debugger_->target().reads(), 0u);
  EXPECT_EQ(metrics.histograms().at("dbg.read.bytes").count(), 0u);
  EXPECT_EQ(metrics.histograms().at("dbg.read.latency_ns").count(), 0u);
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("dbg.read.", 0) == 0) {
      EXPECT_EQ(counter.value(), 0u) << name;
    }
  }
  EXPECT_EQ(metrics.counters().at("unrelated.counter").value(), 7u);
}

TEST_F(TraceKernelTest, PerModelAttributionSumsToTotals) {
  dbg::Target& target = debugger_->target();
  uint64_t addr = reinterpret_cast<uint64_t>(kernel_->procs().init_task());
  target.ResetStats();
  target.set_model(dbg::LatencyModel::GdbQemu());
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());
  target.set_model(dbg::LatencyModel::KgdbRpi400());
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());

  const auto& per_model = target.per_model_stats();
  uint64_t nanos = 0;
  uint64_t reads = 0;
  uint64_t bytes = 0;
  for (const auto& [name, stats] : per_model) {
    nanos += stats.charged_ns;
    reads += stats.reads;
    bytes += stats.bytes;
  }
  EXPECT_EQ(nanos, target.clock().nanos());
  EXPECT_EQ(reads, target.reads());
  EXPECT_EQ(bytes, target.bytes_read());
  ASSERT_EQ(per_model.count("GDB (QEMU)"), 1u);
  ASSERT_EQ(per_model.count("KGDB (rpi-400)"), 1u);
  EXPECT_GT(per_model.at("KGDB (rpi-400)").charged_ns, per_model.at("GDB (QEMU)").charged_ns);

  target.ResetStats();
  EXPECT_TRUE(target.per_model_stats().at(target.model().name).reads == 0);
}

class TraceShellTest : public TraceKernelTest {
 protected:
  void SetUp() override {
    TraceKernelTest::SetUp();
    shell_ = std::make_unique<vision::DebuggerShell>(debugger_.get());
  }
  void TearDown() override {
    shell_.reset();
    TraceKernelTest::TearDown();
  }

  std::unique_ptr<vision::DebuggerShell> shell_;
};

TEST_F(TraceShellTest, VctrlStatsReportsTargetAndTracer) {
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig7_1")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;
  std::string out = shell_->Execute("vctrl stats");
  EXPECT_NE(out.find("target: model="), std::string::npos) << out;
  EXPECT_NE(out.find("reads="), std::string::npos);
  EXPECT_NE(out.find("cache: on"), std::string::npos) << out;
  EXPECT_NE(out.find("hit rate"), std::string::npos);
  EXPECT_NE(out.find("tracer: off"), std::string::npos);

  // `vctrl stats json` merges every stats shape into one object.
  auto merged = Json::Parse(shell_->Execute("vctrl stats json"));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const Json* target = merged->Find("target");
  ASSERT_NE(target, nullptr);
  EXPECT_NE(target->Find("charged_ns"), nullptr);
  const Json* cache = merged->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("hits"), nullptr);
  EXPECT_NE(cache->Find("hit_rate"), nullptr);
  EXPECT_NE(merged->Find("panes"), nullptr);
  EXPECT_NE(merged->Find("tracer"), nullptr);
  EXPECT_NE(merged->Find("metrics"), nullptr);
}

TEST_F(TraceShellTest, VctrlTraceOnOffDump) {
  EXPECT_NE(shell_->Execute("vctrl trace on").find("tracing on"), std::string::npos);
  EXPECT_TRUE(Tracer::Instance().enabled());
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig7_1")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;

  std::string path = ::testing::TempDir() + "/vtrace_dump.json";
  std::string out = shell_->Execute("vctrl trace dump " + path);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->Find("traceEvents")->size(), 0u);

  EXPECT_NE(shell_->Execute("vctrl trace off").find("tracing off"), std::string::npos);
  EXPECT_FALSE(Tracer::Instance().enabled());
}

TEST_F(TraceShellTest, VprofBreakdownReconcilesWithClockExactly) {
  std::string out = shell_->Execute(
      std::string("vprof 1 ") + vision::FindFigure("fig7_1")->viewcl);
  EXPECT_NE(out.find("vprof pane 1"), std::string::npos) << out;
  EXPECT_NE(out.find("dbg.read"), std::string::npos) << out;
  EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
  EXPECT_EQ(out.find("MISMATCH"), std::string::npos) << out;
  // vprof leaves the tracer the way it found it (off).
  EXPECT_FALSE(Tracer::Instance().enabled());
  // The profiled graph landed in the pane.
  EXPECT_NE(shell_->panes().graph(1), nullptr);
}

TEST_F(TraceShellTest, SessionSaveIncludesStats) {
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig3_4")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;
  ASSERT_EQ(shell_->Execute("vctrl apply 1 a = SELECT task_struct FROM *\n"
                            "UPDATE a WITH collapsed: true"),
            "applied\n");
  std::string saved = shell_->Execute("vctrl save");
  auto parsed = Json::Parse(saved);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->Find("charged_ns")->AsInt(), 0);
  EXPECT_NE(stats->Find("per_model"), nullptr);
  const Json* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("hits"), nullptr);
  EXPECT_NE(cache->Find("misses"), nullptr);
  const Json* panes = parsed->Find("panes");
  ASSERT_NE(panes, nullptr);
  const Json* exec = panes->at(0).Find("exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->Find("statements")->AsInt(), 2);
  EXPECT_EQ(exec->Find("selects")->AsInt(), 1);
  EXPECT_EQ(exec->Find("updates")->AsInt(), 1);
}

}  // namespace
}  // namespace vl
