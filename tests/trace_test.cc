// Tests for the deterministic tracing/metrics layer (support/trace.h,
// support/metrics.h) and its integration: span nesting and self-time
// accounting, run-to-run byte-identical Chrome trace JSON, histogram bucket
// edges, per-transport charge attribution, and the vctrl stats / vctrl trace /
// vprof shell commands.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/support/vclock.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/shell.h"
#include "tests/test_util.h"

namespace vl {
namespace {

// The tracer and metrics registry are process-wide; every test starts and
// finishes with both quiesced so ordering cannot leak state.
void Quiesce() {
  Tracer& tracer = Tracer::Instance();
  tracer.Disable();
  tracer.Clear();
  tracer.SetCapacity(1 << 16);
  MetricsRegistry::Instance().Reset();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Quiesce(); }
  void TearDown() override { Quiesce(); }
};

// Registers a local clock with the tracer for clock-only unit tests and
// always un-registers it (the pointer would otherwise dangle).
class ClockGuard {
 public:
  ClockGuard() { Tracer::Instance().SetClock(&clock_); }
  ~ClockGuard() { Tracer::Instance().ClearClockIf(&clock_); }
  VirtualClock& clock() { return clock_; }

 private:
  VirtualClock clock_;
};

TEST_F(TraceTest, HistogramBucketEdges) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1ull << 20), 21);
  EXPECT_EQ(Histogram::BucketOf(~0ull), 64);

  EXPECT_EQ(Histogram::BucketUpperEdge(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperEdge(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperEdge(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperEdge(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperEdge(64), ~0ull);

  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1ull << 20}) {
    h.Record(v);
  }
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1u);  // 4
  EXPECT_EQ(h.bucket(21), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 10u + (1ull << 20));
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1ull << 20);
}

TEST_F(TraceTest, SpanNestingSelfTimeAndOrdering) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  tracer.BeginSpan("outer");
  guard.clock().AdvanceNanos(10);
  tracer.BeginSpan("inner");
  guard.clock().AdvanceNanos(5);
  tracer.EndSpan();
  guard.clock().AdvanceNanos(3);
  tracer.EndSpan();

  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // inner completes first (recorded at EndSpan).
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts_ns, 10u);
  EXPECT_EQ(events[0].dur_ns, 5u);
  EXPECT_EQ(events[0].self_ns, 5u);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 18u);
  EXPECT_EQ(events[1].self_ns, 13u);  // 18 minus inner's 5
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_LT(events[1].seq, events[0].seq);  // outer began first

  // Self times partition the root's duration.
  EXPECT_EQ(tracer.TotalSelfNanos(), 18u);
}

TEST_F(TraceTest, CompleteEventChargesParent) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();

  tracer.BeginSpan("parent");
  guard.clock().AdvanceNanos(7);
  tracer.CompleteEvent("leaf", 0, 7, {{"bytes", 8}});
  guard.clock().AdvanceNanos(2);
  tracer.EndSpan();

  const auto& stats = tracer.stats();
  ASSERT_EQ(stats.count("parent"), 1u);
  ASSERT_EQ(stats.count("leaf"), 1u);
  EXPECT_EQ(stats.at("parent").total_ns, 9u);
  EXPECT_EQ(stats.at("parent").self_ns, 2u);
  EXPECT_EQ(stats.at("leaf").self_ns, 7u);
  EXPECT_EQ(tracer.TotalSelfNanos(), 9u);
}

TEST_F(TraceTest, RingEvictsOldestAndCountsDropped) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  tracer.SetCapacity(4);

  for (int i = 0; i < 10; ++i) {
    tracer.CompleteEvent("e", i, 1);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);  // oldest first
  }
  EXPECT_EQ(events.back().ts_ns, 9u);
  // Aggregates survive eviction.
  EXPECT_EQ(tracer.stats().at("e").count, 10u);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ClockGuard guard;
  Tracer& tracer = Tracer::Instance();
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span("ignored");
    guard.clock().AdvanceNanos(5);
  }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_TRUE(tracer.stats().empty());
}

class TraceKernelTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    Quiesce();
    vltest::WorkloadKernelTest::SetUp();
    // GdbQemu so reads actually advance the virtual clock.
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get(),
                                                      dbg::LatencyModel::GdbQemu());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
  }
  void TearDown() override {
    debugger_.reset();
    Quiesce();
  }

  // One traced extraction from a clean slate; returns the Chrome JSON dump.
  std::string TracedRun(const char* figure_id) {
    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    MetricsRegistry::Instance().Reset();
    debugger_->target().ResetStats();
    // A clean slate includes an empty read cache: a warm cache elides
    // transport reads (and their spans) entirely.
    debugger_->session().InvalidateAll();
    debugger_->session().ResetCacheStats();
    tracer.Enable();
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(vision::FindFigure(figure_id)->viewcl);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    tracer.Disable();
    return tracer.ToChromeJson().Dump(2);
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
};

TEST_F(TraceKernelTest, TwoRunsProduceByteIdenticalTraces) {
  std::string first = TracedRun("fig7_1");
  std::string second = TracedRun("fig7_1");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(TraceKernelTest, ChromeJsonRoundTripsThroughParser) {
  std::string dump = TracedRun("fig7_1");
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  const Json& first = events->at(0);
  EXPECT_EQ(first.Find("ph")->AsString(), "X");
  EXPECT_EQ(first.Find("cat")->AsString(), "vtrace");
  EXPECT_NE(first.Find("ts"), nullptr);
  EXPECT_NE(first.Find("dur"), nullptr);
  EXPECT_NE(first.Find("args")->Find("seq"), nullptr);
  EXPECT_EQ(parsed->Find("metadata")->Find("clock")->AsString(), "virtual");
}

TEST_F(TraceKernelTest, SelfTimesPartitionTheTargetClock) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  debugger_->target().ResetStats();
  tracer.Enable();
  {
    ScopedSpan root("root");
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
    ASSERT_TRUE(graph.ok());
  }
  tracer.Disable();
  EXPECT_GT(debugger_->target().clock().nanos(), 0u);
  EXPECT_EQ(tracer.TotalSelfNanos(), debugger_->target().clock().nanos());
}

TEST_F(TraceKernelTest, ReadsAreTaggedByKernelType) {
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  viewcl::Interpreter interp(debugger_.get());
  auto graph = interp.RunProgram(vision::FindFigure("fig7_1")->viewcl);
  ASSERT_TRUE(graph.ok());
  tracer.Disable();

  const auto& counters = MetricsRegistry::Instance().counters();
  uint64_t typed = 0;
  for (const auto& [name, counter] : counters) {
    if (name.rfind("dbg.read.by_type.", 0) == 0 &&
        name.rfind("dbg.read.by_type.untyped", 0) != 0) {
      typed += counter.value();
    }
  }
  EXPECT_GT(typed, 0u);
  EXPECT_GT(MetricsRegistry::Instance().histograms().at("dbg.read.bytes").count(), 0u);
}

// ResetStats must also clear the dbg.read.* histograms and per-type counters
// fed by RecordRead, or back-to-back bench phases leak counts into each other.
TEST_F(TraceKernelTest, ResetStatsClearsReadMetrics) {
  Tracer& tracer = Tracer::Instance();
  tracer.Enable();
  viewcl::Interpreter interp(debugger_.get());
  ASSERT_TRUE(interp.RunProgram(vision::FindFigure("fig7_1")->viewcl).ok());
  tracer.Disable();

  MetricsRegistry& metrics = MetricsRegistry::Instance();
  ASSERT_GT(metrics.histograms().at("dbg.read.bytes").count(), 0u);
  ASSERT_GT(metrics.histograms().at("dbg.read.latency_ns").count(), 0u);
  // An unrelated metric must survive the targeted reset.
  metrics.GetCounter("unrelated.counter")->Add(7);

  debugger_->target().ResetStats();
  EXPECT_EQ(debugger_->target().reads(), 0u);
  EXPECT_EQ(metrics.histograms().at("dbg.read.bytes").count(), 0u);
  EXPECT_EQ(metrics.histograms().at("dbg.read.latency_ns").count(), 0u);
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("dbg.read.", 0) == 0) {
      EXPECT_EQ(counter.value(), 0u) << name;
    }
  }
  EXPECT_EQ(metrics.counters().at("unrelated.counter").value(), 7u);
}

TEST_F(TraceKernelTest, PerModelAttributionSumsToTotals) {
  dbg::Target& target = debugger_->target();
  uint64_t addr = reinterpret_cast<uint64_t>(kernel_->procs().init_task());
  target.ResetStats();
  target.set_model(dbg::LatencyModel::GdbQemu());
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());
  target.set_model(dbg::LatencyModel::KgdbRpi400());
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());

  const auto& per_model = target.per_model_stats();
  uint64_t nanos = 0;
  uint64_t reads = 0;
  uint64_t bytes = 0;
  for (const auto& [name, stats] : per_model) {
    nanos += stats.charged_ns;
    reads += stats.reads;
    bytes += stats.bytes;
  }
  EXPECT_EQ(nanos, target.clock().nanos());
  EXPECT_EQ(reads, target.reads());
  EXPECT_EQ(bytes, target.bytes_read());
  ASSERT_EQ(per_model.count("GDB (QEMU)"), 1u);
  ASSERT_EQ(per_model.count("KGDB (rpi-400)"), 1u);
  EXPECT_GT(per_model.at("KGDB (rpi-400)").charged_ns, per_model.at("GDB (QEMU)").charged_ns);

  target.ResetStats();
  EXPECT_TRUE(target.per_model_stats().at(target.model().name).reads == 0);
}

class TraceShellTest : public TraceKernelTest {
 protected:
  void SetUp() override {
    TraceKernelTest::SetUp();
    shell_ = std::make_unique<vision::DebuggerShell>(debugger_.get());
  }
  void TearDown() override {
    shell_.reset();
    TraceKernelTest::TearDown();
  }

  std::unique_ptr<vision::DebuggerShell> shell_;
};

TEST_F(TraceShellTest, VctrlStatsReportsTargetAndTracer) {
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig7_1")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;
  std::string out = shell_->Execute("vctrl stats");
  EXPECT_NE(out.find("target: model="), std::string::npos) << out;
  EXPECT_NE(out.find("reads="), std::string::npos);
  EXPECT_NE(out.find("cache: on"), std::string::npos) << out;
  EXPECT_NE(out.find("hit rate"), std::string::npos);
  EXPECT_NE(out.find("tracer: off"), std::string::npos);

  // `vctrl stats json` merges every stats shape into one object.
  auto merged = Json::Parse(shell_->Execute("vctrl stats json"));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const Json* target = merged->Find("target");
  ASSERT_NE(target, nullptr);
  EXPECT_NE(target->Find("charged_ns"), nullptr);
  const Json* cache = merged->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("hits"), nullptr);
  EXPECT_NE(cache->Find("hit_rate"), nullptr);
  EXPECT_NE(merged->Find("panes"), nullptr);
  EXPECT_NE(merged->Find("tracer"), nullptr);
  EXPECT_NE(merged->Find("metrics"), nullptr);
}

TEST_F(TraceShellTest, VctrlTraceOnOffDump) {
  EXPECT_NE(shell_->Execute("vctrl trace on").find("tracing on"), std::string::npos);
  EXPECT_TRUE(Tracer::Instance().enabled());
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig7_1")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;

  std::string path = ::testing::TempDir() + "/vtrace_dump.json";
  std::string out = shell_->Execute("vctrl trace dump " + path);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->Find("traceEvents")->size(), 0u);

  EXPECT_NE(shell_->Execute("vctrl trace off").find("tracing off"), std::string::npos);
  EXPECT_FALSE(Tracer::Instance().enabled());
}

TEST_F(TraceShellTest, VprofBreakdownReconcilesWithClockExactly) {
  std::string out = shell_->Execute(
      std::string("vprof 1 ") + vision::FindFigure("fig7_1")->viewcl);
  EXPECT_NE(out.find("vprof pane 1"), std::string::npos) << out;
  EXPECT_NE(out.find("dbg.read"), std::string::npos) << out;
  EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
  EXPECT_EQ(out.find("MISMATCH"), std::string::npos) << out;
  // vprof leaves the tracer the way it found it (off).
  EXPECT_FALSE(Tracer::Instance().enabled());
  // The profiled graph landed in the pane.
  EXPECT_NE(shell_->panes().graph(1), nullptr);
}

TEST_F(TraceShellTest, SessionSaveIncludesStats) {
  std::string plot = shell_->Execute(
      std::string("vplot 1 ") + vision::FindFigure("fig3_4")->viewcl);
  ASSERT_NE(plot.find("plotted"), std::string::npos) << plot;
  ASSERT_EQ(shell_->Execute("vctrl apply 1 a = SELECT task_struct FROM *\n"
                            "UPDATE a WITH collapsed: true"),
            "applied\n");
  std::string saved = shell_->Execute("vctrl save");
  auto parsed = Json::Parse(saved);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->Find("charged_ns")->AsInt(), 0);
  EXPECT_NE(stats->Find("per_model"), nullptr);
  const Json* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("hits"), nullptr);
  EXPECT_NE(cache->Find("misses"), nullptr);
  const Json* panes = parsed->Find("panes");
  ASSERT_NE(panes, nullptr);
  const Json* exec = panes->at(0).Find("exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->Find("statements")->AsInt(), 2);
  EXPECT_EQ(exec->Find("selects")->AsInt(), 1);
  EXPECT_EQ(exec->Find("updates")->AsInt(), 1);
}

}  // namespace
}  // namespace vl
