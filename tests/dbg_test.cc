// Debugger-substrate tests: type registry, target reads + latency accounting,
// and the C expression engine evaluated against a live simulated kernel.

#include <gtest/gtest.h>

#include "src/dbg/kernel_introspect.h"
#include "tests/test_util.h"

namespace dbg {
namespace {

class DbgTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<KernelDebugger>(kernel_.get());
  }

  uint64_t EvalU64(const std::string& expr, const Environment* env = nullptr) {
    auto result = debugger_->Eval(expr, env);
    EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
    if (!result.ok()) {
      return ~0ull;
    }
    auto loaded = result->Load(&debugger_->session());
    EXPECT_TRUE(loaded.ok()) << expr << ": " << loaded.status().ToString();
    return loaded.ok() ? loaded->bits() : ~0ull;
  }

  std::unique_ptr<KernelDebugger> debugger_;
};

TEST_F(DbgTest, TypeLayoutsMatchCompiler) {
  const Type* task = debugger_->types().FindByName("task_struct");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->size, sizeof(vkern::task_struct));
  const Field* pid = task->FindField("pid");
  ASSERT_NE(pid, nullptr);
  EXPECT_EQ(pid->offset, offsetof(vkern::task_struct, pid));
  EXPECT_EQ(pid->type->size, sizeof(int));
  EXPECT_TRUE(pid->type->is_signed);
  const Field* comm = task->FindField("comm");
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(comm->type->kind, TypeKind::kArray);
  EXPECT_EQ(comm->type->array_len, static_cast<size_t>(vkern::kTaskCommLen));
}

TEST_F(DbgTest, StructTagPrefixLookup) {
  EXPECT_EQ(debugger_->types().FindByName("struct task_struct"),
            debugger_->types().FindByName("task_struct"));
  EXPECT_NE(debugger_->types().FindByName("unsigned long"), nullptr);
  EXPECT_EQ(debugger_->types().FindByName("u64"), debugger_->types().FindByName("unsigned long"));
}

TEST_F(DbgTest, TargetReadsArenaMemory) {
  vkern::task_struct* init = kernel_->procs().init_task();
  auto pid = debugger_->target().ReadUnsigned(
      reinterpret_cast<uint64_t>(init) + offsetof(vkern::task_struct, pid), 4);
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(*pid, 0u);
  auto comm = debugger_->target().ReadCString(
      reinterpret_cast<uint64_t>(init) + offsetof(vkern::task_struct, comm));
  ASSERT_TRUE(comm.ok());
  EXPECT_EQ(*comm, "swapper/0");
}

TEST_F(DbgTest, TargetRejectsOutOfBounds) {
  uint8_t buf[8];
  EXPECT_FALSE(debugger_->target().ReadBytes(0x10, buf, 8).ok());
  EXPECT_FALSE(debugger_->target().ReadBytes(kernel_->arena().end_addr(), buf, 1).ok());
}

TEST_F(DbgTest, LatencyModelChargesVirtualTime) {
  Target& target = debugger_->target();
  target.set_model(LatencyModel::KgdbRpi400());
  target.ResetStats();
  uint64_t addr = reinterpret_cast<uint64_t>(kernel_->procs().init_task());
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());
  // One uint64 over KGDB ~ 5 ms (the paper's observation).
  EXPECT_GE(target.clock().millis(), 5.0);
  EXPECT_LT(target.clock().millis(), 6.0);
  EXPECT_EQ(target.reads(), 1u);
  EXPECT_EQ(target.bytes_read(), 8u);

  target.set_model(LatencyModel::GdbQemu());
  target.ResetStats();
  ASSERT_TRUE(target.ReadUnsigned(addr, 8).ok());
  EXPECT_LT(target.clock().millis(), 0.2);
}

TEST_F(DbgTest, EvalLiteralsAndArithmetic) {
  EXPECT_EQ(EvalU64("1 + 2 * 3"), 7u);
  EXPECT_EQ(EvalU64("(1 + 2) * 3"), 9u);
  EXPECT_EQ(EvalU64("0x10 | 0x01"), 0x11u);
  EXPECT_EQ(EvalU64("1 << 12"), 4096u);
  EXPECT_EQ(EvalU64("10 % 3"), 1u);
  EXPECT_EQ(EvalU64("7 / 2"), 3u);
  EXPECT_EQ(EvalU64("~0 & 0xff"), 0xffu);
  EXPECT_EQ(EvalU64("1 ? 42 : 13"), 42u);
  EXPECT_EQ(EvalU64("0 ? 42 : 13"), 13u);
  EXPECT_EQ(EvalU64("'A'"), 65u);
  EXPECT_EQ(EvalU64("010"), 8u);
}

TEST_F(DbgTest, EvalLogicalAndComparisons) {
  EXPECT_EQ(EvalU64("1 && 2"), 1u);
  EXPECT_EQ(EvalU64("0 || 0"), 0u);
  EXPECT_EQ(EvalU64("3 == 3"), 1u);
  EXPECT_EQ(EvalU64("3 != 3"), 0u);
  EXPECT_EQ(EvalU64("2 < 3 && 3 <= 3 && 4 > 3 && 3 >= 3"), 1u);
  EXPECT_EQ(EvalU64("!5"), 0u);
  EXPECT_EQ(EvalU64("!0"), 1u);
}

TEST_F(DbgTest, EvalGlobalSymbolMemberChains) {
  EXPECT_EQ(EvalU64("init_task.pid"), 0u);
  // Flattened dot-path through pointers (ViewCL's flatten primitive).
  vkern::task_struct* init_proc = kernel_->procs().FindTaskByPid(1);
  Environment env;
  env.emplace("this", Value::MakeLValue(debugger_->types().FindByName("task_struct"),
                                        reinterpret_cast<uint64_t>(init_proc)));
  EXPECT_EQ(EvalU64("@this.pid", &env), 1u);
  EXPECT_EQ(EvalU64("@this.parent.pid", &env), 0u);  // init's parent is swapper
  EXPECT_EQ(EvalU64("@this.mm.map_count", &env),
            static_cast<uint64_t>(init_proc->mm->map_count));
  EXPECT_EQ(EvalU64("@this.signal.nr_threads", &env), 1u);
}

TEST_F(DbgTest, EvalArrowEqualsDot) {
  vkern::task_struct* t = kernel_->procs().FindTaskByPid(1);
  Environment env;
  env.emplace("t", Value::MakePointer(
                       debugger_->types().PointerTo(debugger_->types().FindByName("task_struct")),
                       reinterpret_cast<uint64_t>(t)));
  EXPECT_EQ(EvalU64("@t->pid", &env), 1u);
  EXPECT_EQ(EvalU64("@t.pid", &env), 1u);  // GDB-style permissive dot
  EXPECT_EQ(EvalU64("(*@t).pid", &env), 1u);
}

TEST_F(DbgTest, EvalArrayIndexing) {
  // runqueues[1].cpu == 1
  EXPECT_EQ(EvalU64("runqueues[1].cpu"), 1u);
  EXPECT_EQ(EvalU64("runqueues[0].cpu"), 0u);
  // irq_desc[14] has a shared action chain.
  EXPECT_NE(EvalU64("irq_desc[14].action"), 0u);
  EXPECT_NE(EvalU64("irq_desc[14].action->next"), 0u);
  EXPECT_EQ(EvalU64("irq_desc[14].action->irq"), 14u);
}

TEST_F(DbgTest, EvalHelperCalls) {
  EXPECT_EQ(EvalU64("cpu_rq(0)->cpu"), 0u);
  EXPECT_EQ(EvalU64("cpu_rq(1)->cfs.nr_running"),
            static_cast<uint64_t>(kernel_->sched().cpu_rq(1)->cfs.nr_running));
  EXPECT_EQ(EvalU64("pid_hashfn(65)"), 1u);
}

TEST_F(DbgTest, EvalMapleHelpers) {
  vkern::mm_struct* mm = workload_->process(0)->mm;
  Environment env;
  env.emplace("mm", Value::MakeLValue(debugger_->types().FindByName("mm_struct"),
                                      reinterpret_cast<uint64_t>(mm)));
  uint64_t root = EvalU64("@mm.mm_mt.ma_root", &env);
  ASSERT_NE(root, 0u);
  EXPECT_EQ(EvalU64("xa_is_node(@mm.mm_mt.ma_root)", &env), 1u);
  uint64_t node_addr = EvalU64("mte_to_node(@mm.mm_mt.ma_root)", &env);
  EXPECT_EQ(node_addr & 0xff, 0u);
  uint64_t node_type = EvalU64("mte_node_type(@mm.mm_mt.ma_root)", &env);
  EXPECT_TRUE(node_type == vkern::maple_arange_64 || node_type == vkern::maple_leaf_64);
  // Enumerator comparison, as used in ViewCL switch-cases.
  EXPECT_EQ(EvalU64("mte_node_type(@mm.mm_mt.ma_root) == maple_arange_64 || "
                    "mte_node_type(@mm.mm_mt.ma_root) == maple_leaf_64",
                    &env),
            1u);
}

TEST_F(DbgTest, EvalCasts) {
  vkern::task_struct* t = kernel_->procs().FindTaskByPid(1);
  Environment env;
  env.emplace("addr",
              Value::MakeInt(debugger_->types().u64(), reinterpret_cast<uint64_t>(t)));
  EXPECT_EQ(EvalU64("((struct task_struct *)@addr)->pid", &env), 1u);
  EXPECT_EQ(EvalU64("((task_struct *)@addr)->pid", &env), 1u);
  EXPECT_EQ(EvalU64("(unsigned long)123", &env), 123u);
  EXPECT_EQ(EvalU64("(u8)0x1ff", &env), 0xffu);
  // Signed narrowing sign-extends.
  EXPECT_EQ(static_cast<int64_t>(EvalU64("(s8)0xff", &env)), -1);
}

TEST_F(DbgTest, EvalSizeof) {
  EXPECT_EQ(EvalU64("sizeof(task_struct)"), sizeof(vkern::task_struct));
  EXPECT_EQ(EvalU64("sizeof(unsigned long)"), 8u);
  EXPECT_EQ(EvalU64("sizeof(maple_node)"), sizeof(vkern::maple_node));
}

TEST_F(DbgTest, EvalEnumerators) {
  EXPECT_EQ(EvalU64("PIPE_BUF_FLAG_CAN_MERGE"), vkern::PIPE_BUF_FLAG_CAN_MERGE);
  EXPECT_EQ(EvalU64("VM_WRITE"), vkern::VM_WRITE);
  EXPECT_EQ(EvalU64("maple_leaf_64"), 1u);
  EXPECT_EQ(EvalU64("NULL == 0"), 1u);
}

TEST_F(DbgTest, EvalPointerArithmetic) {
  // &mem_map[3] == mem_map + 3 scaled by sizeof(page).
  uint64_t base = EvalU64("&mem_map[0]");
  uint64_t third = EvalU64("&mem_map[3]");
  EXPECT_EQ(third - base, 3 * sizeof(vkern::page));
}

TEST_F(DbgTest, EvalErrorsAreReported) {
  EXPECT_FALSE(debugger_->Eval("nonexistent_symbol").ok());
  EXPECT_FALSE(debugger_->Eval("init_task.no_such_field").ok());
  EXPECT_FALSE(debugger_->Eval("1 +").ok());
  EXPECT_FALSE(debugger_->Eval("unknown_helper(3)").ok());
  EXPECT_FALSE(debugger_->Eval("1 / 0").ok());
  EXPECT_FALSE(debugger_->Eval("@unbound").ok());
  EXPECT_FALSE(debugger_->Eval("").ok());
}

TEST_F(DbgTest, TaskStateHelperYieldsString) {
  auto result = debugger_->Eval("task_state(init_task)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->type()->kind, TypeKind::kPointer);
  auto text = debugger_->target().ReadCString(result->bits());
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "I (idle)");
}

TEST_F(DbgTest, FunctionSymbolization) {
  uint64_t func = EvalU64("irq_desc[14].action->handler");
  EXPECT_EQ(debugger_->symbols().FunctionName(func), "ata_bmdma_interrupt");
}

TEST_F(DbgTest, RbNodeColorCompactionHelpers) {
  // Find a queued task and decode its run_node parent pointer.
  vkern::rb_node* leftmost =
      vkern::rb_first_cached(&kernel_->sched().cpu_rq(0)->cfs.tasks_timeline);
  if (leftmost == nullptr) {
    GTEST_SKIP() << "no runnable tasks on CPU 0";
  }
  Environment env;
  env.emplace("n", Value::MakeLValue(debugger_->types().FindByName("rb_node"),
                                     reinterpret_cast<uint64_t>(leftmost)));
  uint64_t parent = EvalU64("rb_parent(@n.__rb_parent_color)", &env);
  EXPECT_EQ(parent, reinterpret_cast<uint64_t>(vkern::rb_parent(leftmost)));
}

TEST_F(DbgTest, CheckExpressionParseOnly) {
  EXPECT_TRUE(CheckCExpression("a.b->c[3] + foo(1,2) ? x : y").ok());
  EXPECT_FALSE(CheckCExpression("a + / b").ok());
  EXPECT_FALSE(CheckCExpression("(a").ok());
}

}  // namespace
}  // namespace dbg
