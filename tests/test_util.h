// Shared test fixtures: a booted simulated kernel, optionally with the paper's
// standard workload already run over it.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace vltest {

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override { kernel_ = std::make_unique<vkern::Kernel>(); }

  std::unique_ptr<vkern::Kernel> kernel_;
};

class WorkloadKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<vkern::Kernel>();
    vkern::WorkloadConfig config;
    config.steps = 60;
    workload_ = std::make_unique<vkern::Workload>(kernel_.get(), config);
    workload_->Run();
  }

  std::unique_ptr<vkern::Kernel> kernel_;
  std::unique_ptr<vkern::Workload> workload_;
};

}  // namespace vltest

#endif  // TESTS_TEST_UTIL_H_
