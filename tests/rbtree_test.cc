// Red-black tree unit and property tests against a std::multiset model.

#include "src/vkern/rbtree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/support/rng.h"
#include "src/vkern/list.h"

namespace vkern {
namespace {

struct Item {
  uint64_t key;
  rb_node node;
};

class RbFixture : public ::testing::Test {
 protected:
  void Insert(Item* item) {
    rb_node** link = &root_.rb_node_;
    rb_node* parent = nullptr;
    while (*link != nullptr) {
      parent = *link;
      Item* other = VKERN_CONTAINER_OF(parent, Item, node);
      link = item->key < other->key ? &parent->rb_left : &parent->rb_right;
    }
    rb_link_node(&item->node, parent, link);
    rb_insert_color(&item->node, &root_);
  }

  std::vector<uint64_t> InOrderKeys() {
    std::vector<uint64_t> keys;
    for (rb_node* n = rb_first(&root_); n != nullptr; n = rb_next(n)) {
      keys.push_back(VKERN_CONTAINER_OF(n, Item, node)->key);
    }
    return keys;
  }

  rb_root root_{nullptr};
};

TEST_F(RbFixture, EmptyTreeValidates) {
  EXPECT_EQ(rb_validate(&root_), 0);
  EXPECT_EQ(rb_first(&root_), nullptr);
  EXPECT_EQ(rb_last(&root_), nullptr);
}

TEST_F(RbFixture, SingleNode) {
  Item a{42, {}};
  Insert(&a);
  EXPECT_GE(rb_validate(&root_), 1);
  EXPECT_EQ(rb_first(&root_), &a.node);
  EXPECT_EQ(rb_last(&root_), &a.node);
  EXPECT_EQ(rb_next(&a.node), nullptr);
  EXPECT_EQ(rb_prev(&a.node), nullptr);
}

TEST_F(RbFixture, AscendingInsertStaysBalanced) {
  std::vector<Item> items(1024);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].key = i;
    Insert(&items[i]);
  }
  int bh = rb_validate(&root_);
  ASSERT_GT(bh, 0);
  // Black height of a 1024-node RB tree is at most ~log2(n)+1.
  EXPECT_LE(bh, 11);
  EXPECT_EQ(InOrderKeys().size(), items.size());
}

TEST_F(RbFixture, InOrderTraversalIsSorted) {
  vl::Rng rng(99);
  std::vector<Item> items(512);
  std::multiset<uint64_t> model;
  for (auto& item : items) {
    item.key = rng.NextBelow(10000);
    model.insert(item.key);
    Insert(&item);
  }
  std::vector<uint64_t> keys = InOrderKeys();
  std::vector<uint64_t> expect(model.begin(), model.end());
  EXPECT_EQ(keys, expect);
  EXPECT_GT(rb_validate(&root_), 0);
}

TEST_F(RbFixture, EraseKeepsInvariants) {
  vl::Rng rng(7);
  std::vector<Item> items(400);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].key = i * 3;
    Insert(&items[i]);
  }
  // Erase in random order, validating periodically.
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  size_t remaining = items.size();
  for (size_t idx : order) {
    rb_erase(&items[idx].node, &root_);
    --remaining;
    if (remaining % 37 == 0) {
      ASSERT_GE(rb_validate(&root_), 0) << "invariant broken at " << remaining;
      EXPECT_EQ(InOrderKeys().size(), remaining);
    }
  }
  EXPECT_EQ(root_.rb_node_, nullptr);
}

TEST_F(RbFixture, CachedLeftmostTracksMinimum) {
  rb_root_cached cached{{nullptr}, nullptr};
  std::vector<Item> items(100);
  vl::Rng rng(5);
  for (auto& item : items) {
    item.key = rng.NextBelow(100000);
    rb_node** link = &cached.rb_root_.rb_node_;
    rb_node* parent = nullptr;
    bool leftmost = true;
    while (*link != nullptr) {
      parent = *link;
      Item* other = VKERN_CONTAINER_OF(parent, Item, node);
      if (item.key < other->key) {
        link = &parent->rb_left;
      } else {
        link = &parent->rb_right;
        leftmost = false;
      }
    }
    rb_link_node(&item.node, parent, link);
    rb_insert_color_cached(&item.node, &cached, leftmost);
    EXPECT_EQ(cached.rb_leftmost, rb_first(&cached.rb_root_));
  }
  // Erase the minimum repeatedly; the cache must follow.
  while (cached.rb_root_.rb_node_ != nullptr) {
    rb_node* min = cached.rb_leftmost;
    ASSERT_EQ(min, rb_first(&cached.rb_root_));
    rb_erase_cached(min, &cached);
  }
  EXPECT_EQ(cached.rb_leftmost, nullptr);
}

// Property sweep over sizes: insert N, erase every other, validate.
class RbSweep : public RbFixture, public ::testing::WithParamInterface<int> {};

TEST_P(RbSweep, InsertEraseHalf) {
  int n = GetParam();
  std::vector<Item> items(static_cast<size_t>(n));
  vl::Rng rng(static_cast<uint64_t>(n));
  for (auto& item : items) {
    item.key = rng.Next() % 1000000;
    Insert(&item);
  }
  ASSERT_GT(rb_validate(&root_), 0);
  for (size_t i = 0; i < items.size(); i += 2) {
    rb_erase(&items[i].node, &root_);
  }
  ASSERT_GE(rb_validate(&root_), 0);
  EXPECT_EQ(InOrderKeys().size(), items.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbSweep, ::testing::Values(2, 3, 7, 33, 128, 1000, 4096));

}  // namespace
}  // namespace vkern
