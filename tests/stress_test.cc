// Long-run stress: a 400-step workload (2x the paper's default), with
// cross-subsystem invariants validated afterwards, plus exit/reap churn and a
// full-corpus replot to prove the extraction layer survives a heavily mutated
// kernel.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<vkern::Kernel>();
    vkern::WorkloadConfig config;
    config.steps = 400;
    workload_ = std::make_unique<vkern::Workload>(kernel_.get(), config);
    workload_->Run();
  }

  std::unique_ptr<vkern::Kernel> kernel_;
  std::unique_ptr<vkern::Workload> workload_;
};

TEST_F(StressTest, AllInvariantsHoldAfterLongRun) {
  // Buddy allocator.
  EXPECT_TRUE(kernel_->buddy().Validate());
  // Every process's maple tree.
  for (int p = 0; p < workload_->nr_processes(); ++p) {
    vkern::mm_struct* mm = workload_->process(p)->mm;
    std::string why;
    ASSERT_TRUE(kernel_->maple().Validate(&mm->mm_mt, &why)) << "proc " << p << ": " << why;
    EXPECT_EQ(kernel_->maple().CountEntries(&mm->mm_mt),
              static_cast<uint64_t>(mm->map_count));
  }
  // Scheduler trees.
  for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
    EXPECT_GE(vkern::rb_validate(&kernel_->sched().cpu_rq(cpu)->cfs.tasks_timeline.rb_root_),
              0);
  }
  // RCU fully drains once quiesced.
  kernel_->rcu().Synchronize();
  EXPECT_EQ(kernel_->rcu().pending_callbacks(), 0u);
  // Slab accounting is self-consistent per cache.
  for (vkern::list_head* p = kernel_->slabs().cache_chain()->next;
       p != kernel_->slabs().cache_chain(); p = p->next) {
    vkern::kmem_cache* cache = VKERN_CONTAINER_OF(p, vkern::kmem_cache, cache_list);
    EXPECT_LE(cache->active_objects, cache->total_objects) << cache->name;
  }
}

TEST_F(StressTest, ExitAndReapChurnKeepsKernelConsistent) {
  // Kill every workload process (threads first), reap them all, then verify
  // the global structures.
  std::set<int> dead_pids;
  std::vector<vkern::task_struct*> victims(workload_->user_tasks().begin(),
                                           workload_->user_tasks().end());
  // Threads before leaders (reverse creation order within the vector works
  // because CreateThread appends after its leader).
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    dead_pids.insert((*it)->pid);
    kernel_->procs().ExitTask(*it, 0);
  }
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    kernel_->procs().ReapTask(*it);
  }
  kernel_->rcu().Synchronize();

  for (int pid : dead_pids) {
    EXPECT_EQ(kernel_->procs().FindTaskByPid(pid), nullptr);
  }
  EXPECT_TRUE(kernel_->buddy().Validate());
  // The scheduler no longer references any victim.
  for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
    kernel_->sched().ForEachQueued(cpu, [&](vkern::task_struct* t) {
      EXPECT_EQ(dead_pids.count(t->pid), 0u);
    });
    kernel_->TickCpu(cpu);
  }
  // The kernel remains fully plottable.
  dbg::KernelDebugger debugger(kernel_.get());
  viewcl::Interpreter interp(&debugger);
  auto graph = interp.RunProgram(vision::FindFigure("fig3_4")->viewcl);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GE((*graph)->size(), 2u);
}

TEST_F(StressTest, FullCorpusPlotsOnMutatedKernel) {
  dbg::KernelDebugger debugger(kernel_.get());
  vision::RegisterFigureSymbols(&debugger, workload_.get());
  kernel_->QueueMmPercpuWork(0);
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    viewcl::Interpreter interp(&debugger);
    auto graph = interp.RunProgram(figure.viewcl);
    ASSERT_TRUE(graph.ok()) << figure.id << ": " << graph.status().ToString();
    EXPECT_GE((*graph)->size(), 2u) << figure.id;
    for (const std::string& warning : interp.warnings()) {
      ADD_FAILURE() << figure.id << ": " << warning;
    }
  }
}

}  // namespace
