// Support library tests: Status/StatusOr, string utilities, RNG determinism.

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/str.h"
#include "src/support/vclock.h"

namespace vl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("unexpected token at 3:14");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: unexpected token at 3:14");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status Half(int x, int* out) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  *out = x / 2;
  return Status::Ok();
}

StatusOr<int> QuarterViaMacros(int x) {
  int half = 0;
  VL_RETURN_IF_ERROR(Half(x, &half));
  int quarter = 0;
  VL_RETURN_IF_ERROR(Half(half, &quarter));
  return quarter;
}

TEST(StatusOrTest, MacrosPropagate) {
  EXPECT_EQ(*QuarterViaMacros(8), 2);
  EXPECT_FALSE(QuarterViaMacros(6).ok());
  EXPECT_FALSE(QuarterViaMacros(7).ok());
}

TEST(StrTest, SplitKeepsEmpty) {
  auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrTest, SplitTrimmedDropsEmpty) {
  auto parts = StrSplitTrimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StrTest, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim(" \t\n "), "");
}

TEST(StrTest, FormatUnsignedBases) {
  EXPECT_EQ(FormatUnsigned(255, 16), "0xff");
  EXPECT_EQ(FormatUnsigned(8, 8), "010");
  EXPECT_EQ(FormatUnsigned(5, 2), "0b101");
  EXPECT_EQ(FormatUnsigned(1234, 10), "1234");
  EXPECT_EQ(FormatUnsigned(0, 16), "0x0");
}

TEST(StrTest, FormatByteSize) {
  EXPECT_EQ(FormatByteSize(512), "512 B");
  EXPECT_EQ(FormatByteSize(2048), "2.0 KiB");
  EXPECT_EQ(FormatByteSize(3u << 20), "3.0 MiB");
}

TEST(StrTest, ReplaceAll) {
  EXPECT_EQ(StrReplaceAll("a.b.c", ".", "->"), "a->b->c");
  EXPECT_EQ(StrReplaceAll("", ".", "x"), "");
}

TEST(StrTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StrTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("0x10", &v));
  EXPECT_EQ(v, 16);
  EXPECT_TRUE(ParseInt64("-5", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(VClockTest, Accumulates) {
  VirtualClock clock;
  clock.AdvanceNanos(1500000);
  clock.AdvanceNanos(500000);
  EXPECT_EQ(clock.nanos(), 2000000u);
  EXPECT_DOUBLE_EQ(clock.millis(), 2.0);
  clock.Reset();
  EXPECT_EQ(clock.nanos(), 0u);
}

}  // namespace
}  // namespace vl
