// VFS tests: superblocks, inodes, fd tables, page cache, pipes.

#include "src/vkern/fs.h"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_util.h"

namespace vkern {
namespace {

using vltest::KernelTest;

class FsTest : public KernelTest {
 protected:
  file* MakeFile(const char* name, int64_t size = 8192) {
    inode* ino = kernel_->fs().CreateInode(kernel_->ext4_sb(), kSIfReg | 0644, size);
    dentry* dent = kernel_->fs().CreateDentry(name, ino, kernel_->ext4_sb()->s_root);
    return kernel_->fs().OpenFile(dent, 2);
  }
};

TEST_F(FsTest, BootRegistersSuperblocks) {
  // ext4, tmpfs, pipefs, sockfs were mounted at boot.
  size_t n = list_count(kernel_->fs().super_blocks());
  EXPECT_GE(n, 4u);
  bool found_ext4 = false;
  VKERN_LIST_FOR_EACH(pos, kernel_->fs().super_blocks()) {
    super_block* sb = VKERN_CONTAINER_OF(pos, super_block, s_list);
    if (sb == kernel_->ext4_sb()) {
      found_ext4 = true;
      EXPECT_EQ(sb->s_bdev, kernel_->sda());
      EXPECT_STREQ(sb->s_type->name, "ext4");
    }
  }
  EXPECT_TRUE(found_ext4);
}

TEST_F(FsTest, InodesJoinSuperblockList) {
  size_t before = list_count(&kernel_->ext4_sb()->s_inodes);
  MakeFile("x.txt");
  EXPECT_EQ(list_count(&kernel_->ext4_sb()->s_inodes), before + 1);
}

TEST_F(FsTest, FdInstallAndGet) {
  files_struct* files = kernel_->fs().CreateFilesStruct();
  file* f = MakeFile("fd.txt");
  int fd = kernel_->fs().InstallFd(files, f);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(kernel_->fs().FdGet(files, fd), f);
  EXPECT_EQ(kernel_->fs().FdGet(files, fd + 1), nullptr);
  kernel_->fs().CloseFd(files, fd);
  EXPECT_EQ(kernel_->fs().FdGet(files, fd), nullptr);
}

TEST_F(FsTest, FdsReuseLowestFree) {
  files_struct* files = kernel_->fs().CreateFilesStruct();
  int fd0 = kernel_->fs().InstallFd(files, MakeFile("a"));
  int fd1 = kernel_->fs().InstallFd(files, MakeFile("b"));
  int fd2 = kernel_->fs().InstallFd(files, MakeFile("c"));
  EXPECT_EQ(fd1, fd0 + 1);
  EXPECT_EQ(fd2, fd0 + 2);
  kernel_->fs().CloseFd(files, fd1);
  EXPECT_EQ(kernel_->fs().InstallFd(files, MakeFile("d")), fd1);
}

TEST_F(FsTest, FdTableExhaustion) {
  files_struct* files = kernel_->fs().CreateFilesStruct();
  for (int i = 0; i < kNrOpenDefault; ++i) {
    ASSERT_GE(kernel_->fs().InstallFd(files, MakeFile("f")), 0) << i;
  }
  EXPECT_EQ(kernel_->fs().InstallFd(files, MakeFile("overflow")), -1);
}

TEST_F(FsTest, PageCacheGrabCachesPages) {
  file* f = MakeFile("cache.txt");
  page* p0 = kernel_->fs().PageCacheGrab(f->f_inode, 0);
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(kernel_->fs().PageCacheGrab(f->f_inode, 0), p0);  // hit
  page* p5 = kernel_->fs().PageCacheGrab(f->f_inode, 5);
  EXPECT_NE(p5, p0);
  EXPECT_EQ(f->f_inode->i_data.nrpages, 2u);
  EXPECT_EQ(p5->index, 5u);
  EXPECT_EQ(p5->mapping, &f->f_inode->i_data);
  EXPECT_TRUE(p5->flags & PG_uptodate);
  EXPECT_EQ(kernel_->fs().PageCacheLookup(f->f_inode, 7), nullptr);
}

TEST_F(FsTest, PipeRoundTrip) {
  file* rd = nullptr;
  file* wr = nullptr;
  pipe_inode_info* pipe = kernel_->fs().CreatePipe(kernel_->pipefs_sb(), &rd, &wr);
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(rd->private_data, pipe);
  EXPECT_EQ(wr->private_data, pipe);
  EXPECT_STREQ(rd->f_op->name, "pipefifo_fops");
  EXPECT_EQ((rd->f_inode->i_mode & 0170000u), kSIfIfo);

  char data[100];
  std::memset(data, 'q', sizeof(data));
  ASSERT_TRUE(kernel_->fs().PipeWrite(pipe, data, sizeof(data)));
  EXPECT_EQ(pipe->head, 1u);
  EXPECT_EQ(kernel_->fs().PipeRead(pipe, 100), 100u);
  EXPECT_EQ(pipe->tail, 1u);
}

TEST_F(FsTest, PipeWritesMergeIntoHeadBuffer) {
  file* rd = nullptr;
  file* wr = nullptr;
  pipe_inode_info* pipe = kernel_->fs().CreatePipe(kernel_->pipefs_sb(), &rd, &wr);
  char data[64];
  std::memset(data, 'm', sizeof(data));
  ASSERT_TRUE(kernel_->fs().PipeWrite(pipe, data, sizeof(data)));
  ASSERT_TRUE(kernel_->fs().PipeWrite(pipe, data, sizeof(data)));
  // Merged into one buffer thanks to CAN_MERGE.
  EXPECT_EQ(pipe->head, 1u);
  EXPECT_EQ(pipe->bufs[0].len, 128u);
  EXPECT_TRUE(pipe->bufs[0].flags & PIPE_BUF_FLAG_CAN_MERGE);
}

TEST_F(FsTest, PipeFillsRingThenBlocks) {
  file* rd = nullptr;
  file* wr = nullptr;
  pipe_inode_info* pipe = kernel_->fs().CreatePipe(kernel_->pipefs_sb(), &rd, &wr);
  std::vector<char> pagebuf(kPageSize, 'f');
  for (uint32_t i = 0; i < pipe->ring_size; ++i) {
    ASSERT_TRUE(kernel_->fs().PipeWrite(pipe, pagebuf.data(), kPageSize));
  }
  EXPECT_FALSE(kernel_->fs().PipeWrite(pipe, pagebuf.data(), kPageSize));
}

TEST_F(FsTest, SpliceSharesPageCachePage) {
  file* victim = MakeFile("victim.txt");
  page* cached = kernel_->fs().PageCacheGrab(victim->f_inode, 0);
  file* rd = nullptr;
  file* wr = nullptr;
  pipe_inode_info* pipe = kernel_->fs().CreatePipe(kernel_->pipefs_sb(), &rd, &wr);
  ASSERT_TRUE(kernel_->fs().SpliceFileToPipe(victim, 0, pipe, 16, /*init_flags_bug=*/false));
  pipe_buffer* buf = &pipe->bufs[0];
  EXPECT_EQ(buf->page_, cached);  // zero copy: same page descriptor
  EXPECT_STREQ(buf->ops->name, "page_cache_pipe_buf_ops");
  EXPECT_EQ(buf->flags, 0u);  // fixed path clears flags
}

TEST_F(FsTest, DentryTreeParenting) {
  inode* dir_ino = kernel_->fs().CreateInode(kernel_->ext4_sb(), kSIfDir | 0755, 0);
  dentry* dir = kernel_->fs().CreateDentry("home", dir_ino, kernel_->ext4_sb()->s_root);
  inode* ino = kernel_->fs().CreateInode(kernel_->ext4_sb(), kSIfReg | 0644, 10);
  dentry* child = kernel_->fs().CreateDentry("notes", ino, dir);
  EXPECT_EQ(child->d_parent, dir);
  EXPECT_EQ(list_count(&dir->d_subdirs), 1u);
  EXPECT_EQ(dir->d_parent, kernel_->ext4_sb()->s_root);
}

}  // namespace
}  // namespace vkern
