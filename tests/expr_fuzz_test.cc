// Differential fuzzing of the C-expression engine: random integer expression
// trees are rendered to source text and evaluated both by the debugger's
// engine and by a host-side oracle; the results must agree bit for bit.

#include <gtest/gtest.h>

#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/support/rng.h"
#include "tests/test_util.h"

namespace dbg {
namespace {

// Generates a random expression, returning its text and the oracle value.
// All values are uint64 (the engine's unsigned 64-bit arithmetic); operators
// that could diverge from C semantics (division by zero, full-width shifts)
// are avoided or guarded the same way the engine guards them.
class ExprGen {
 public:
  explicit ExprGen(uint64_t seed) : rng_(seed) {}

  struct Node {
    std::string text;
    uint64_t value;
  };

  Node Gen(int depth) {
    if (depth <= 0 || rng_.NextChance(1, 4)) {
      return Leaf();
    }
    switch (rng_.NextBelow(12)) {
      case 0:
        return Binary(depth, "+", [](uint64_t a, uint64_t b) { return a + b; });
      case 1:
        return Binary(depth, "-", [](uint64_t a, uint64_t b) { return a - b; });
      case 2:
        return Binary(depth, "*", [](uint64_t a, uint64_t b) { return a * b; });
      case 3:
        return Binary(depth, "&", [](uint64_t a, uint64_t b) { return a & b; });
      case 4:
        return Binary(depth, "|", [](uint64_t a, uint64_t b) { return a | b; });
      case 5:
        return Binary(depth, "^", [](uint64_t a, uint64_t b) { return a ^ b; });
      case 6:
        return Binary(depth, "==", [](uint64_t a, uint64_t b) { return uint64_t{a == b}; });
      case 7:
        return Binary(depth, "<", [](uint64_t a, uint64_t b) { return uint64_t{a < b}; });
      case 8: {  // shift with the engine's 63-mask semantics
        Node lhs = Gen(depth - 1);
        uint64_t amount = rng_.NextBelow(64);
        return Node{"(" + lhs.text + " << " + std::to_string(amount) + ")",
                    lhs.value << amount};
      }
      case 9: {  // guarded division
        Node lhs = Gen(depth - 1);
        uint64_t divisor = rng_.NextInRange(1, 1000);
        return Node{"(" + lhs.text + " / " + std::to_string(divisor) + ")",
                    lhs.value / divisor};
      }
      case 10: {  // ternary
        Node cond = Gen(depth - 1);
        Node then_n = Gen(depth - 1);
        Node else_n = Gen(depth - 1);
        return Node{"(" + cond.text + " ? " + then_n.text + " : " + else_n.text + ")",
                    cond.value != 0 ? then_n.value : else_n.value};
      }
      default: {  // unary ~ over a literal (comparison results are int-typed
                  // in C, so ~cmp would pit signed engine semantics against
                  // this unsigned oracle)
        Node operand = Leaf();
        return Node{"(~" + operand.text + ")", ~operand.value};
      }
    }
  }

 private:
  Node Leaf() {
    uint64_t value;
    switch (rng_.NextBelow(4)) {
      case 0:
        value = rng_.NextBelow(10);
        break;
      case 1:
        value = rng_.NextBelow(1ull << 16);
        break;
      case 2:
        value = rng_.Next();  // full-width
        break;
      default:
        value = rng_.NextChance(1, 2) ? 0 : 1;
    }
    // Mix decimal and hex spellings.
    if (rng_.NextChance(1, 2)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
      return Node{buf, value};
    }
    return Node{std::to_string(value), value};
  }

  template <typename Fn>
  Node Binary(int depth, const char* op, Fn fn) {
    Node lhs = Gen(depth - 1);
    Node rhs = Gen(depth - 1);
    return Node{"(" + lhs.text + " " + op + " " + rhs.text + ")", fn(lhs.value, rhs.value)};
  }

  vl::Rng rng_;
};

class ExprFuzzTest : public vltest::KernelTest {
 protected:
  void SetUp() override {
    vltest::KernelTest::SetUp();
    debugger_ = std::make_unique<KernelDebugger>(kernel_.get());
  }

  std::unique_ptr<KernelDebugger> debugger_;
};

TEST_F(ExprFuzzTest, RandomExpressionsMatchOracle) {
  ExprGen gen(0xfeedface);
  for (int i = 0; i < 2000; ++i) {
    ExprGen::Node node = gen.Gen(5);
    auto result = debugger_->Eval(node.text);
    ASSERT_TRUE(result.ok()) << node.text << ": " << result.status().ToString();
    auto loaded = result->Load(&debugger_->session());
    ASSERT_TRUE(loaded.ok()) << node.text;
    EXPECT_EQ(loaded->bits(), node.value) << node.text;
  }
}

TEST_F(ExprFuzzTest, DeepNestingParses) {
  // 64 levels of parenthesized addition.
  std::string expr = "1";
  for (int i = 0; i < 64; ++i) {
    expr = "(" + expr + " + 1)";
  }
  auto result = debugger_->Eval(expr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bits(), 65u);
}

TEST_F(ExprFuzzTest, GarbageNeverCrashes) {
  vl::Rng rng(31337);
  const std::string alphabet = "abc01(){}[]<>.,+-*/&|!~?:@$ \"'%^=";
  for (int i = 0; i < 3000; ++i) {
    std::string garbage;
    size_t len = rng.NextInRange(1, 40);
    for (size_t j = 0; j < len; ++j) {
      garbage += alphabet[rng.NextBelow(alphabet.size())];
    }
    // Must return a Status (ok or error), never crash or hang.
    auto result = debugger_->Eval(garbage);
    (void)result;
  }
  SUCCEED();
}

}  // namespace
}  // namespace dbg
