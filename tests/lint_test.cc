// vlint golden tests: the paper's whole figure + objective corpus lints
// clean, a broken corpus triggers every rule ID, rendering is byte-stable
// across runs, and the analyzer never charges a single transport nanosecond
// (the zero-read guarantee).

#include "src/analysis/lint.h"

#include <gtest/gtest.h>

#include "src/dbg/kernel_introspect.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/viewcl/interp.h"
#include "src/viewcl/lexer.h"
#include "src/viewcl/parser.h"
#include "src/viewql/parse.h"
#include "src/vision/figures.h"
#include "src/vision/shell.h"
#include "tests/test_util.h"

namespace analysis {
namespace {

class LintTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
    linter_ = std::make_unique<Linter>(&debugger_->types(), &debugger_->symbols(),
                                       &debugger_->helpers(), &emoji_);
  }

  static bool HasRule(const vl::DiagnosticList& diags, std::string_view rule) {
    for (const vl::Diagnostic& d : diags.diags()) {
      if (d.rule == rule) {
        return true;
      }
    }
    return false;
  }

  static std::string Rules(const vl::DiagnosticList& diags) {
    std::string out;
    for (const vl::Diagnostic& d : diags.diags()) {
      out += d.rule + " " + d.message + "\n";
    }
    return out;
  }

  // Expects exactly one rule fires (possibly several times) in a ViewCL snip.
  void ExpectViewClRule(std::string_view source, std::string_view rule) {
    LintResult result = linter_->LintViewCl(source);
    EXPECT_TRUE(HasRule(result.diagnostics, rule))
        << "expected " << rule << ", got:\n"
        << Rules(result.diagnostics);
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  viewcl::EmojiRegistry emoji_;
  std::unique_ptr<Linter> linter_;
};

// The ViewCL program behind the summary-dependent ViewQL tests.
constexpr const char* kSummarySource = R"(
define Task as Box<task_struct> {
  :default [
    Text pid, comm
  ]
  :default => :detail [
    Text se.vruntime
  ]
}
plot Task(${&init_task})
)";

// ---------------------------------------------------------------------------
// The paper corpus lints clean, with zero transport traffic.
// ---------------------------------------------------------------------------

TEST_F(LintTest, AllFigureProgramsLintClean) {
  uint64_t ns_before = debugger_->target().clock().nanos();
  uint64_t reads_before = debugger_->target().reads();
  uint64_t bytes_before = debugger_->target().bytes_read();
  for (const vision::FigureDef& fig : vision::AllFigures()) {
    LintResult result = linter_->LintViewCl(fig.viewcl);
    EXPECT_TRUE(result.parse_ok) << fig.id;
    EXPECT_EQ(result.diagnostics.errors(), 0u)
        << fig.id << ":\n"
        << result.diagnostics.RenderText(fig.viewcl, fig.id);
  }
  EXPECT_EQ(debugger_->target().clock().nanos() - ns_before, 0u);
  EXPECT_EQ(debugger_->target().reads() - reads_before, 0u);
  EXPECT_EQ(debugger_->target().bytes_read() - bytes_before, 0u);
}

TEST_F(LintTest, AllObjectivesLintClean) {
  uint64_t ns_before = debugger_->target().clock().nanos();
  uint64_t bytes_before = debugger_->target().bytes_read();
  for (const vision::ObjectiveDef& obj : vision::AllObjectives()) {
    const vision::FigureDef* fig = vision::FindFigure(obj.figure_id);
    ASSERT_NE(fig, nullptr) << obj.figure_id;
    ProgramSummary summary = linter_->SummarizeViewCl(fig->viewcl);
    ASSERT_TRUE(summary.valid) << obj.figure_id;
    LintResult result = linter_->LintViewQl(obj.viewql, &summary);
    EXPECT_TRUE(result.parse_ok) << obj.figure_id;
    EXPECT_EQ(result.diagnostics.errors(), 0u)
        << obj.figure_id << ":\n"
        << result.diagnostics.RenderText(obj.viewql, obj.figure_id);
  }
  EXPECT_EQ(debugger_->target().clock().nanos() - ns_before, 0u);
  EXPECT_EQ(debugger_->target().bytes_read() - bytes_before, 0u);
}

// ---------------------------------------------------------------------------
// Broken corpus: one program per rule ID.
// ---------------------------------------------------------------------------

TEST_F(LintTest, VL000ParseError) {
  LintResult result = linter_->LintViewCl("define Task as");
  EXPECT_FALSE(result.parse_ok);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics.diags()[0].rule, "VL000");
}

TEST_F(LintTest, VL001UnknownKernelType) {
  ExpectViewClRule("define T as Box<task_structt> [ Text pid ]\nplot T(${&init_task})",
                   "VL001");
}

TEST_F(LintTest, VL002DuplicateDefinition) {
  ExpectViewClRule(
      "define T as Box<task_struct> [ Text pid ]\n"
      "define T as Box<task_struct> [ Text comm ]\n"
      "plot T(${&init_task})",
      "VL002");
}

TEST_F(LintTest, VL003UnknownBoxWithFixIt) {
  LintResult result = linter_->LintViewCl(
      "define Task as Box<task_struct> [ Text pid ]\nplot Tsk(${&init_task})");
  ASSERT_TRUE(HasRule(result.diagnostics, "VL003")) << Rules(result.diagnostics);
  const vl::Diagnostic* d = nullptr;
  for (const vl::Diagnostic& diag : result.diagnostics.diags()) {
    if (diag.rule == "VL003") {
      d = &diag;
    }
  }
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->has_fixit);
  EXPECT_EQ(d->fixit.replacement, "Task");
}

TEST_F(LintTest, VL004UnknownField) {
  ExpectViewClRule("define T as Box<task_struct> [ Text pidd ]\nplot T(${&init_task})",
                   "VL004");
}

TEST_F(LintTest, VL005BadAnchorPath) {
  ExpectViewClRule(
      "define T as Box<task_struct> [ Text pid ]\n"
      "x = List(${&init_task.tasks}).forEach |n| { yield T<task_struct.taskss>(@n) }\n"
      "plot @x",
      "VL005");
}

TEST_F(LintTest, VL006ContainerShapeMismatch) {
  // task_struct.se is a sched_entity, not a list_head.
  ExpectViewClRule(
      "define T as Box<task_struct> [ Container c: List(se) ]\nplot T(${&init_task})",
      "VL006");
}

TEST_F(LintTest, VL007UnknownDecoratorHead) {
  ExpectViewClRule("define T as Box<task_struct> [ Text<u65:x> pid ]\nplot T(${&init_task})",
                   "VL007");
}

TEST_F(LintTest, VL008BadDecoratorArgument) {
  // Unknown emoji set: a hard runtime error, so lint makes it an error too.
  LintResult result = linter_->LintViewCl(
      "define T as Box<task_struct> [ Text<emoji:nope> pid ]\nplot T(${&init_task})");
  ASSERT_TRUE(HasRule(result.diagnostics, "VL008")) << Rules(result.diagnostics);
  EXPECT_GT(result.diagnostics.errors(), 0u);
  // A non-enum enum: argument degrades at runtime, so it is only a warning.
  result = linter_->LintViewCl(
      "define T as Box<task_struct> [ Text<enum:task_struct> pid ]\nplot T(${&init_task})");
  ASSERT_TRUE(HasRule(result.diagnostics, "VL008")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
  EXPECT_GT(result.diagnostics.warnings(), 0u);
}

TEST_F(LintTest, VL009UnknownParentView) {
  ExpectViewClRule(
      "define T as Box<task_struct> { :default [ Text pid ] :missing => :kid [ Text comm ] }\n"
      "plot T(${&init_task})",
      "VL009");
}

TEST_F(LintTest, VL010DuplicateView) {
  LintResult result = linter_->LintViewCl(
      "define T as Box<task_struct> { :default [ Text pid ] :default [ Text comm ] }\n"
      "plot T(${&init_task})");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL010")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);  // warning only
}

TEST_F(LintTest, VL011UnboundAtRef) {
  ExpectViewClRule("define T as Box<task_struct> [ Text x: @nope ]\nplot T(${&init_task})",
                   "VL011");
}

TEST_F(LintTest, VL012UnknownCExprIdentifier) {
  ExpectViewClRule(
      "define T as Box<task_struct> [ Text x: ${innit_task.pid} ]\nplot T(${&init_task})",
      "VL012");
}

TEST_F(LintTest, VL013CExprSyntaxError) {
  ExpectViewClRule("define T as Box<task_struct> [ Text x: ${1 + } ]\nplot T(${&init_task})",
                   "VL013");
}

TEST_F(LintTest, VL014DeadDefinition) {
  LintResult result = linter_->LintViewCl(
      "define Used as Box<task_struct> [ Text pid ]\n"
      "define Unused as Box<mm_struct> [ Text map_count ]\n"
      "plot Used(${&init_task})");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL014")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);  // warning only
  // Without a plot the program is a prelude chunk: no dead-code warnings.
  result = linter_->LintViewCl("define Unused as Box<mm_struct> [ Text map_count ]");
  EXPECT_FALSE(HasRule(result.diagnostics, "VL014")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL015ContainerArity) {
  ExpectViewClRule(
      "define T as Box<task_struct> [ Text pid ]\n"
      "x = RBTree(${cpu_rq(0)->cfs.tasks_timeline}, ${1}).forEach |n| { yield "
      "T<task_struct.se.run_node>(@n) }\n"
      "plot @x",
      "VL015");
}

TEST_F(LintTest, VL101UnknownSet) {
  LintResult result = linter_->LintViewQl("UPDATE nope WITH collapsed: true\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL101")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL102DuplicateSet) {
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM *\na = SELECT mm_struct FROM *\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL102")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
}

TEST_F(LintTest, VL103UnknownSelectType) {
  ProgramSummary summary = linter_->SummarizeViewCl(kSummarySource);
  ASSERT_TRUE(summary.valid);
  LintResult result = linter_->LintViewQl("a = SELECT bogus_kernel_type FROM *\n", &summary);
  EXPECT_TRUE(HasRule(result.diagnostics, "VL103")) << Rules(result.diagnostics);
  EXPECT_GT(result.diagnostics.errors(), 0u);
  // A registered type that simply is not in the pane only warns.
  result = linter_->LintViewQl("a = SELECT dentry FROM *\n", &summary);
  EXPECT_TRUE(HasRule(result.diagnostics, "VL103")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
  // Container kinds are always selectable (the paper's RBTree/List idiom).
  result = linter_->LintViewQl("a = SELECT RBTree FROM *\n", &summary);
  EXPECT_EQ(result.diagnostics.size(), 0u) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL104UnknownView) {
  ProgramSummary summary = linter_->SummarizeViewCl(kSummarySource);
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM *\nUPDATE a WITH view: nonexistent\n", &summary);
  EXPECT_TRUE(HasRule(result.diagnostics, "VL104")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL105UnknownAttribute) {
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM *\nUPDATE a WITH color: red\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL105")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
}

TEST_F(LintTest, VL106BadAttributeValue) {
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM *\nUPDATE a WITH collapsed: maybe\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL106")) << Rules(result.diagnostics);
  result = linter_->LintViewQl(
      "a = SELECT task_struct FROM *\nUPDATE a WITH direction: sideways\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL106")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL107UnknownWhereMember) {
  ProgramSummary summary = linter_->SummarizeViewCl(kSummarySource);
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM * WHERE bogus_member == 1\n", &summary);
  EXPECT_TRUE(HasRule(result.diagnostics, "VL107")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
  // Raw kernel fields resolve even when no item displays them.
  result = linter_->LintViewQl("a = SELECT task_struct FROM * WHERE mm == NULL\n", &summary);
  EXPECT_FALSE(HasRule(result.diagnostics, "VL107")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL108ReachableOverAll) {
  LintResult result = linter_->LintViewQl("a = SELECT task_struct FROM REACHABLE(*)\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL108")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
}

TEST_F(LintTest, VL109UnknownEnumerator) {
  LintResult result = linter_->LintViewQl(
      "a = SELECT task_struct FROM * WHERE pid == BOGUS_CONSTANT\n");
  EXPECT_TRUE(HasRule(result.diagnostics, "VL109")) << Rules(result.diagnostics);
  // A real enumerator passes.
  result = linter_->LintViewQl("a = SELECT task_struct FROM * WHERE pid == PAGE_SIZE\n");
  EXPECT_FALSE(HasRule(result.diagnostics, "VL109")) << Rules(result.diagnostics);
}

TEST_F(LintTest, VL110UnknownItemPath) {
  ProgramSummary summary = linter_->SummarizeViewCl(kSummarySource);
  LintResult result = linter_->LintViewQl("a = SELECT Task.slots FROM *\n", &summary);
  EXPECT_TRUE(HasRule(result.diagnostics, "VL110")) << Rules(result.diagnostics);
  EXPECT_EQ(result.diagnostics.errors(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: byte-identical text + JSON across two runs.
// ---------------------------------------------------------------------------

TEST_F(LintTest, RenderingIsByteStable) {
  const char* broken =
      "define Task as Box<task_structt> [ Text pidd, @nope ]\n"
      "plot Tsk(${&init_task})";
  LintResult a = linter_->LintViewCl(broken);
  LintResult b = linter_->LintViewCl(broken);
  EXPECT_GT(a.diagnostics.size(), 0u);
  EXPECT_EQ(a.diagnostics.RenderText(broken, "broken"),
            b.diagnostics.RenderText(broken, "broken"));
  EXPECT_EQ(a.diagnostics.ToJson("broken").Dump(2), b.diagnostics.ToJson("broken").Dump(2));
  // The figure corpus renders byte-stable too.
  for (const vision::FigureDef& fig : vision::AllFigures()) {
    LintResult r1 = linter_->LintViewCl(fig.viewcl);
    LintResult r2 = linter_->LintViewCl(fig.viewcl);
    EXPECT_EQ(r1.diagnostics.ToJson(fig.id).Dump(2), r2.diagnostics.ToJson(fig.id).Dump(2))
        << fig.id;
  }
}

TEST_F(LintTest, DiagnosticsAreSortedBySourceOrder) {
  LintResult result = linter_->LintViewCl(
      "define T as Box<task_struct> [ Text pidd ]\n"
      "define U as Box<mm_structt> [ Text x: @nope ]\n"
      "plot T(${&init_task})\nplot U(${0})");
  size_t last_offset = 0;
  for (const vl::Diagnostic& d : result.diagnostics.diags()) {
    EXPECT_GE(d.span.offset, last_offset) << Rules(result.diagnostics);
    last_offset = d.span.offset;
  }
}

// ---------------------------------------------------------------------------
// Fix-its.
// ---------------------------------------------------------------------------

TEST_F(LintTest, ApplyFixItsRepairsTheProgram) {
  const char* broken =
      "define Task as Box<task_struct> [ Text pid ]\nplot Tsk(${&init_task})";
  LintResult result = linter_->LintViewCl(broken);
  ASSERT_TRUE(HasRule(result.diagnostics, "VL003"));
  std::string fixed = vl::ApplyFixIts(broken, result.diagnostics.diags());
  EXPECT_NE(fixed.find("plot Task("), std::string::npos) << fixed;
  LintResult relint = linter_->LintViewCl(fixed);
  EXPECT_EQ(relint.diagnostics.errors(), 0u)
      << relint.diagnostics.RenderText(fixed, "fixed");
}

// ---------------------------------------------------------------------------
// Span accuracy through both front-ends.
// ---------------------------------------------------------------------------

TEST_F(LintTest, ViewClLexerSpans) {
  auto toks = viewcl::LexViewCl("define Task as Box<task_struct>");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 2u);
  const viewcl::Token& define_tok = (*toks)[0];
  EXPECT_EQ(define_tok.line, 1);
  EXPECT_EQ(define_tok.col, 1);
  EXPECT_EQ(define_tok.offset, 0u);
  EXPECT_EQ(define_tok.length, 6u);  // "define"
  const viewcl::Token& task_tok = (*toks)[1];
  EXPECT_EQ(task_tok.col, 8);
  EXPECT_EQ(task_tok.offset, 7u);
  EXPECT_EQ(task_tok.length, 4u);  // "Task"
}

TEST_F(LintTest, ViewQlTokenSpans) {
  auto toks = viewql::LexViewQl("a = SELECT\n  task_struct FROM *");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 5u);
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[0].col, 1);
  const viewql::Token& type_tok = (*toks)[3];
  EXPECT_EQ(type_tok.text, "task_struct");
  EXPECT_EQ(type_tok.line, 2);
  EXPECT_EQ(type_tok.col, 3);
  EXPECT_EQ(type_tok.offset, 13u);
  EXPECT_EQ(type_tok.length, 11u);
}

TEST_F(LintTest, DiagnosticSpanPointsAtTheOffendingToken) {
  const char* broken =
      "define Task as Box<task_struct> [ Text pid ]\nplot Tsk(${&init_task})";
  LintResult result = linter_->LintViewCl(broken);
  ASSERT_TRUE(HasRule(result.diagnostics, "VL003"));
  for (const vl::Diagnostic& d : result.diagnostics.diags()) {
    if (d.rule != "VL003") {
      continue;
    }
    EXPECT_EQ(d.span.line, 2);
    EXPECT_EQ(std::string_view(broken).substr(d.span.offset, d.span.length), "Tsk");
  }
}

// ---------------------------------------------------------------------------
// Interp integration: structured Load errors + the fail-fast lint hook.
// ---------------------------------------------------------------------------

TEST_F(LintTest, InterpRejectsDuplicateDefinitionInOneChunk) {
  viewcl::Interpreter interp(debugger_.get());
  vl::Status status = interp.Load(
      "define T as Box<task_struct> [ Text pid ]\n"
      "define T as Box<task_struct> [ Text comm ]");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("duplicate definition"), std::string::npos)
      << status.ToString();
}

TEST_F(LintTest, InterpAllowsCrossChunkRedefinition) {
  viewcl::Interpreter interp(debugger_.get());
  ASSERT_TRUE(interp.Load("define T as Box<task_struct> [ Text pid ]").ok());
  EXPECT_TRUE(interp.Load("define T as Box<task_struct> [ Text comm ]").ok());
}

TEST_F(LintTest, InterpRejectsUnknownDecoratorHead) {
  viewcl::Interpreter interp(debugger_.get());
  vl::Status status = interp.Load("define T as Box<task_struct> [ Text<u65:x> pid ]");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unknown decorator"), std::string::npos)
      << status.ToString();
}

TEST_F(LintTest, FailFastLoadValidatorRefusesBadChunks) {
  viewcl::Interpreter interp(debugger_.get());
  interp.SetLoadValidator(linter_->MakeLoadValidator());
  vl::Status status =
      interp.Load("define T as Box<task_struct> [ Text pidd ]\nplot T(${&init_task})");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("VL004"), std::string::npos) << status.ToString();
  // A clean chunk passes and still evaluates.
  ASSERT_TRUE(
      interp.Load("define T as Box<task_struct> [ Text pid ]\nplot T(${&init_task})").ok());
  auto graph = interp.Run();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GT((*graph)->size(), 0u);
}

// ---------------------------------------------------------------------------
// Observability: vlint span + lint.* counters under tracing.
// ---------------------------------------------------------------------------

TEST_F(LintTest, CountersBumpOnlyWhenTracing) {
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  uint64_t programs_before = metrics.GetCounter("lint.programs")->value();
  linter_->LintViewCl("define T as Box<task_struct> [ Text pid ]\nplot T(${&init_task})");
  EXPECT_EQ(metrics.GetCounter("lint.programs")->value(), programs_before);

  vl::Tracer::Instance().Enable();
  uint64_t errors_before = metrics.GetCounter("lint.diagnostics.error")->value();
  linter_->LintViewCl("define T as Box<task_struct> [ Text pidd ]\nplot T(${&init_task})");
  vl::Tracer::Instance().Disable();
  EXPECT_EQ(metrics.GetCounter("lint.programs")->value(), programs_before + 1);
  EXPECT_GT(metrics.GetCounter("lint.diagnostics.error")->value(), errors_before);
}

// ---------------------------------------------------------------------------
// Shell integration: vctrl lint + the vchat gate.
// ---------------------------------------------------------------------------

class LintShellTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
    shell_ = std::make_unique<vision::DebuggerShell>(debugger_.get());
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<vision::DebuggerShell> shell_;
};

TEST_F(LintShellTest, VctrlLintPane) {
  std::string out = shell_->Execute(
      "vplot 1 define Task as Box<task_struct> [ Text pid, comm ]\n"
      "tasks = List(${&init_task.tasks}).forEach |n| { yield Task<task_struct.tasks>(@n) }\n"
      "plot @tasks");
  ASSERT_NE(out.find("plotted"), std::string::npos) << out;
  ASSERT_NE(shell_->Execute("vctrl apply 1 a = SELECT task_struct FROM *")
                .find("applied"),
            std::string::npos);
  out = shell_->Execute("vctrl lint 1");
  EXPECT_NE(out.find("0 error(s)"), std::string::npos) << out;
  std::string json = shell_->Execute("vctrl lint 1 json");
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos) << json;
  EXPECT_NE(json.find("viewql[0]"), std::string::npos) << json;
}

TEST_F(LintShellTest, VctrlLintErrors) {
  EXPECT_NE(shell_->Execute("vctrl lint").find("usage:"), std::string::npos);
  EXPECT_NE(shell_->Execute("vctrl lint 7").find("error:"), std::string::npos);
  EXPECT_NE(shell_->Execute("vctrl lint /no/such/file.vcl").find("error:"),
            std::string::npos);
}

TEST_F(LintShellTest, VchatStillAppliesCleanPrograms) {
  const vision::FigureDef* fig = vision::FindFigure("fig3_4");
  ASSERT_NE(fig, nullptr);
  std::string out = shell_->Execute(std::string("vplot 1 ") + fig->viewcl);
  ASSERT_NE(out.find("plotted"), std::string::npos) << out;
  out = shell_->Execute("vchat 1 shrink tasks that have no address space");
  EXPECT_NE(out.find("applied"), std::string::npos) << out;
}

}  // namespace
}  // namespace analysis
