// RCU grace-period semantics: callbacks run only after every CPU quiesces and
// no reader is inside a critical section.

#include "src/vkern/rcu.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/vkern/arena.h"
#include "src/vkern/buddy.h"
#include "src/vkern/slab.h"

namespace vkern {
namespace {

struct Tracked {
  rcu_head rcu;
  bool* fired;
};

void MarkFired(rcu_head* head) {
  auto* t = VKERN_CONTAINER_OF(head, Tracked, rcu);
  *t->fired = true;
}

class RcuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    state_ = {};
    data_.resize(kNrCpus);
    rcu_ = std::make_unique<RcuSubsystem>(&state_, data_.data(), kNrCpus);
  }

  rcu_state state_;
  std::vector<rcu_data> data_;
  std::unique_ptr<RcuSubsystem> rcu_;
};

TEST_F(RcuTest, CallbackRunsAfterGracePeriod) {
  bool fired = false;
  Tracked t{{}, &fired};
  rcu_->CallRcu(0, &t.rcu, &MarkFired);
  EXPECT_EQ(rcu_->pending_callbacks(), 1u);
  EXPECT_FALSE(fired);
  rcu_->Synchronize();
  EXPECT_TRUE(fired);
  EXPECT_EQ(rcu_->pending_callbacks(), 0u);
}

TEST_F(RcuTest, ReaderBlocksGracePeriod) {
  bool fired = false;
  Tracked t{{}, &fired};
  rcu_->ReadLock(1);
  rcu_->CallRcu(0, &t.rcu, &MarkFired);
  rcu_->Synchronize();
  EXPECT_FALSE(fired) << "callback ran while a reader was active";
  rcu_->ReadUnlock(1);
  rcu_->Synchronize();
  EXPECT_TRUE(fired);
}

TEST_F(RcuTest, NestedReadLock) {
  bool fired = false;
  Tracked t{{}, &fired};
  rcu_->ReadLock(0);
  rcu_->ReadLock(0);
  rcu_->CallRcu(1, &t.rcu, &MarkFired);
  rcu_->ReadUnlock(0);
  rcu_->Synchronize();
  EXPECT_FALSE(fired);
  rcu_->ReadUnlock(0);
  rcu_->Synchronize();
  EXPECT_TRUE(fired);
}

TEST_F(RcuTest, CallbacksQueuedDuringGpWaitForNextGp) {
  bool fired1 = false;
  bool fired2 = false;
  Tracked t1{{}, &fired1};
  Tracked t2{{}, &fired2};
  rcu_->CallRcu(0, &t1.rcu, &MarkFired);
  rcu_->TryAdvanceGracePeriod();  // starts a GP covering t1
  rcu_->CallRcu(0, &t2.rcu, &MarkFired);
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    rcu_->QuiescentState(cpu);
  }
  rcu_->TryAdvanceGracePeriod();  // completes the GP: only t1 may run
  EXPECT_TRUE(fired1);
  EXPECT_FALSE(fired2);
  rcu_->Synchronize();
  EXPECT_TRUE(fired2);
}

TEST_F(RcuTest, CblistIsFifo) {
  std::vector<int> order;
  struct Seq {
    rcu_head rcu;
    std::vector<int>* order;
    int id;
  };
  auto fire = [](rcu_head* head) {
    auto* s = VKERN_CONTAINER_OF(head, Seq, rcu);
    s->order->push_back(s->id);
  };
  Seq a{{}, &order, 1};
  Seq b{{}, &order, 2};
  Seq c{{}, &order, 3};
  rcu_->CallRcu(0, &a.rcu, fire);
  rcu_->CallRcu(0, &b.rcu, fire);
  rcu_->CallRcu(0, &c.rcu, fire);
  EXPECT_EQ(data_[0].cblist_len, 3u);
  rcu_->Synchronize();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(data_[0].invoked, 3u);
}

TEST_F(RcuTest, GpSeqAdvances) {
  uint64_t seq0 = state_.gp_seq;
  bool fired = false;
  Tracked t{{}, &fired};
  rcu_->CallRcu(1, &t.rcu, &MarkFired);
  rcu_->Synchronize();
  EXPECT_GT(state_.gp_seq, seq0);
}

}  // namespace
}  // namespace vkern
