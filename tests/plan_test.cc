// Extraction-plan correctness: plan-assisted extraction must render
// byte-identically to the classic interpreter across the full figure corpus
// (including the CVE case studies), batch accounting must reconcile exactly
// against the virtual clock, plan caching must invalidate on redefinition,
// gated programs must fall back to pure interpretation, and parallel
// wavefront decode must not change results.

#include "src/viewcl/plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/dbg/kernel_introspect.h"
#include "src/dbg/read_session.h"
#include "src/serve/shell.h"
#include "src/support/metrics.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/render.h"
#include "src/vkern/faults.h"
#include "tests/test_util.h"

namespace viewcl {
namespace {

class PlanTest : public vltest::WorkloadKernelTest {
 protected:
  // A fresh debugger with a block cache and the paper's GDB latency model
  // (plans only engage through a cache; the latency model makes the batch
  // accounting non-trivial).
  std::unique_ptr<dbg::KernelDebugger> MakeDebugger() {
    auto debugger = std::make_unique<dbg::KernelDebugger>(
        kernel_.get(), dbg::LatencyModel::GdbQemu(), dbg::CacheConfig{});
    vision::RegisterFigureSymbols(debugger.get(), workload_.get());
    return debugger;
  }

  static InterpLimits PlanLimits() {
    InterpLimits limits;
    limits.compile_plans = true;
    return limits;
  }

  // Renders one program cold (fresh debugger) under the given limits.
  std::string Render(const std::string& program, const InterpLimits& limits) {
    auto debugger = MakeDebugger();
    Interpreter interp(debugger.get(), limits);
    auto graph = interp.RunProgram(program);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    if (!graph.ok()) {
      return std::string();
    }
    return vision::AsciiRenderer().Render(**graph);
  }

  void ExpectIdenticalRenders(const std::string& id, const std::string& program) {
    std::string classic = Render(program, InterpLimits{});
    std::string planned = Render(program, PlanLimits());
    ASSERT_FALSE(classic.empty()) << id;
    EXPECT_EQ(classic, planned) << id << ": plan-assisted render diverged";
  }
};

// The core contract: the plan is a prefetch oracle, so every Table 2 figure
// must render byte-identically with plans on and off.
TEST_F(PlanTest, ByteIdenticalRendersAcrossAllFigures) {
  ASSERT_EQ(vision::AllFigures().size(), 21u);
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    ExpectIdenticalRenders(figure.id, figure.viewcl);
  }
}

// Same contract over corrupted kernel states: both CVE case studies mutate
// structures (freed maple node, page-cache overwrite) that the speculative
// executor walks.
TEST_F(PlanTest, ByteIdenticalRendersAfterStackRot) {
  vkern::StackRotReport report =
      vkern::RunStackRotScenario(kernel_.get(), workload_->process(0));
  ASSERT_NE(report.fetched_node, nullptr);
  for (const char* id : {"fig9_2", "fig3_4"}) {
    const vision::FigureDef* figure = vision::FindFigure(id);
    ASSERT_NE(figure, nullptr) << id;
    ExpectIdenticalRenders(id, figure->viewcl);
  }
}

TEST_F(PlanTest, ByteIdenticalRendersAfterDirtyPipe) {
  vkern::DirtyPipeReport report = vkern::RunDirtyPipeScenario(
      kernel_.get(), workload_->process(0), /*vulnerable=*/true);
  ASSERT_TRUE(report.file_content_corrupted);
  for (const char* id : {"fig15_1", "fig12_3"}) {
    const vision::FigureDef* figure = vision::FindFigure(id);
    ASSERT_NE(figure, nullptr) << id;
    ExpectIdenticalRenders(id, figure->viewcl);
  }
}

// Exact batch accounting: with batching in play the virtual clock must still
// decompose exactly into reads * per_access + bytes * per_byte (a vectored
// batch counts as ONE read), and the batches must actually have coalesced
// multiple would-be round trips.
TEST_F(PlanTest, BatchAccountingReconcilesExactly) {
  auto debugger = MakeDebugger();
  debugger->target().ResetStats();  // zero the read.vector.* / plan.* families

  Interpreter interp(debugger.get(), PlanLimits());
  const vision::FigureDef* figure = vision::FindFigure("fig3_6");
  ASSERT_NE(figure, nullptr);
  auto graph = interp.RunProgram(figure->viewcl);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  const dbg::Target& target = debugger->target();
  const dbg::LatencyModel& model = target.model();
  EXPECT_EQ(target.clock().nanos(),
            target.reads() * model.per_access_ns +
                target.bytes_read() * model.per_byte_ns)
      << "clock must equal reads x per_access + bytes x per_byte exactly";

  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  EXPECT_GT(metrics.GetCounter("read.vector.batches")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("read.vector.avoided_round_trips")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("plan.wavefronts")->value(), 0u);
  // Wavefronts that found everything cached issue no batch.
  EXPECT_LE(metrics.GetCounter("plan.batches")->value(),
            metrics.GetCounter("plan.wavefronts")->value());
  // The session's vectored-fetch stats mirror the target's batch count.
  EXPECT_EQ(debugger->session().cache_stats().vector_batches,
            metrics.GetCounter("read.vector.batches")->value());
}

// The plan must make cold extraction dramatically cheaper: one batch per
// wavefront instead of one round trip per pointer.
TEST_F(PlanTest, ColdExtractionCheaperWithPlans) {
  const vision::FigureDef* figure = vision::FindFigure("fig3_6");
  ASSERT_NE(figure, nullptr);

  auto classic_debugger = MakeDebugger();
  Interpreter classic(classic_debugger.get());
  ASSERT_TRUE(classic.RunProgram(figure->viewcl).ok());
  uint64_t classic_ns = classic_debugger->target().clock().nanos();

  auto planned_debugger = MakeDebugger();
  Interpreter planned(planned_debugger.get(), PlanLimits());
  ASSERT_TRUE(planned.RunProgram(figure->viewcl).ok());
  uint64_t planned_ns = planned_debugger->target().clock().nanos();

  EXPECT_LT(planned_ns * 3, classic_ns)
      << "plan-assisted cold extraction must be at least 3x cheaper "
      << "(classic " << classic_ns << " ns, planned " << planned_ns << " ns)";
}

// Plan caching: repeated Run() reuses the compiled plan; a Load() (program
// redefinition) invalidates it and the next Run() recompiles.
TEST_F(PlanTest, PlanCacheInvalidatesOnRedefinition) {
  auto debugger = MakeDebugger();
  debugger->target().ResetStats();
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();

  Interpreter interp(debugger.get(), PlanLimits());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp.Load(figure->viewcl).ok());
  ASSERT_TRUE(interp.Run().ok());
  EXPECT_EQ(metrics.GetCounter("plan.compiles")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("plan.cache_hits")->value(), 0u);
  ASSERT_NE(interp.plan(), nullptr);
  EXPECT_EQ(interp.plan()->executions(), 1u);

  ASSERT_TRUE(interp.Run().ok());
  EXPECT_EQ(metrics.GetCounter("plan.compiles")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("plan.cache_hits")->value(), 1u);

  // Redefining (any new chunk) bumps the program version: recompile.
  ASSERT_TRUE(interp.Load(figure->viewcl).ok());
  ASSERT_TRUE(interp.Run().ok());
  EXPECT_EQ(metrics.GetCounter("plan.compiles")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("plan.cache_hits")->value(), 1u);
}

// The gate: a refused program is pinned to the classic path — no plan is
// compiled or executed, but the program still loads and runs.
TEST_F(PlanTest, GatedProgramFallsBackToInterpreter) {
  auto debugger = MakeDebugger();
  debugger->target().ResetStats();
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();

  Interpreter interp(debugger.get(), PlanLimits());
  interp.SetPlanGate([](const Program&, std::string_view) { return false; });
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  auto graph = interp.RunProgram(figure->viewcl);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(interp.plan(), nullptr);
  EXPECT_EQ(metrics.GetCounter("plan.compiles")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("plan.executions")->value(), 0u);
  // The JSON shape reports the block so `vctrl plan` can say why.
  EXPECT_TRUE(interp.PlanToJson()["blocked"].AsBool());
}

// Plans also require a block cache: with caching disabled, prefetch would
// double-charge, so the executor must not run.
TEST_F(PlanTest, NoPlanWithoutBlockCache) {
  auto debugger = std::make_unique<dbg::KernelDebugger>(
      kernel_.get(), dbg::LatencyModel::GdbQemu(), dbg::CacheConfig::Disabled());
  vision::RegisterFigureSymbols(debugger.get(), workload_.get());
  debugger->target().ResetStats();
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();

  Interpreter interp(debugger.get(), PlanLimits());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp.RunProgram(figure->viewcl).ok());
  EXPECT_EQ(metrics.GetCounter("plan.executions")->value(), 0u);
}

// Parallel wavefront decode: forcing the parallel threshold to 1 must engage
// worker threads without changing the rendered output. (This test also backs
// the tsan-serve preset's Plan filter.)
TEST_F(PlanTest, ParallelDecodeMatchesSerial) {
  const vision::FigureDef* figure = vision::FindFigure("fig3_6");
  ASSERT_NE(figure, nullptr);

  InterpLimits parallel = PlanLimits();
  parallel.plan_parallel_min = 1;
  parallel.plan_workers = 4;

  std::string classic = Render(figure->viewcl, InterpLimits{});
  auto debugger = MakeDebugger();
  debugger->target().ResetStats();
  Interpreter interp(debugger.get(), parallel);
  auto graph = interp.RunProgram(figure->viewcl);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(classic, vision::AsciiRenderer().Render(**graph));
  EXPECT_GT(interp.plan()->last_stats().parallel_wavefronts, 0u);
}

// ResetStats satellite: both new counter families zero on a target reset.
TEST_F(PlanTest, ResetStatsClearsPlanAndVectorCounters) {
  auto debugger = MakeDebugger();
  Interpreter interp(debugger.get(), PlanLimits());
  const vision::FigureDef* figure = vision::FindFigure("fig3_6");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp.RunProgram(figure->viewcl).ok());

  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  ASSERT_GT(metrics.GetCounter("plan.executions")->value(), 0u);
  ASSERT_GT(metrics.GetCounter("read.vector.batches")->value(), 0u);

  debugger->target().ResetStats();
  EXPECT_EQ(metrics.GetCounter("plan.executions")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("plan.wavefronts")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("read.vector.batches")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("read.vector.spans")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("read.vector.avoided_round_trips")->value(), 0u);
}

// The plan DAG dump carries the compiled shape: per-box items with resolved
// adapters, and the last execution's stats.
TEST_F(PlanTest, PlanDumpExposesCompiledShape) {
  auto debugger = MakeDebugger();
  Interpreter interp(debugger.get(), PlanLimits());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp.RunProgram(figure->viewcl).ok());

  vl::Json dump = interp.PlanToJson();
  ASSERT_FALSE(dump.is_null());
  EXPECT_GT(dump["boxes"].size(), 0u);
  EXPECT_GT(dump["last_exec"]["wavefronts"].AsInt(), 0);
  EXPECT_GT(interp.plan()->box_count(), 0u);
}

// Direct Target::ReadVector contract: one batch charges base latency once
// plus per-byte for the successful spans; failed spans are tolerated.
TEST_F(PlanTest, ReadVectorChargesOneBatch) {
  auto debugger = MakeDebugger();
  debugger->target().ResetStats();
  dbg::Target& target = debugger->target();

  dbg::Value task_sym;
  ASSERT_TRUE(debugger->symbols().FindGlobal("target_task", &task_sym));
  uint64_t task = task_sym.addr();
  uint8_t a[64], b[64], c[16];
  std::vector<dbg::ReadSpan> spans = {
      {task, sizeof(a), a},
      {task + 128, sizeof(b), b},
      {~uint64_t{0} - 8, sizeof(c), c},  // unreadable: must not fail the batch
  };
  size_t ok = target.ReadVector(spans);
  EXPECT_EQ(ok, 2u);
  EXPECT_TRUE(spans[0].ok);
  EXPECT_TRUE(spans[1].ok);
  EXPECT_FALSE(spans[2].ok);
  EXPECT_EQ(target.reads(), 1u);
  EXPECT_EQ(target.bytes_read(), sizeof(a) + sizeof(b));
  const dbg::LatencyModel& model = target.model();
  EXPECT_EQ(target.clock().nanos(),
            model.per_access_ns + model.per_byte_ns * (sizeof(a) + sizeof(b)));
}

// The serving surfaces: `vctrl plan <pane>` dumps the compiled plan behind a
// pane (serving sessions default to compile_plans), `vctrl stats` grows a
// plan: section, the merged stats JSON carries the counter family, and
// `vctrl export prom` publishes the vl_plan_* gauges.
TEST_F(PlanTest, ShellExposesPlanSurfaces) {
  vserve::Server server;
  ASSERT_TRUE(server.BootShard("k0", dbg::LatencyModel::GdbQemu()).ok());
  server.ResetStats();
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  vserve::DebuggerShell shell((*client).session());

  const vision::FigureDef* figure = vision::FindFigure("fig3_6");
  ASSERT_NE(figure, nullptr);
  std::string plotted =
      shell.Execute(std::string("vplot 1 ") + figure->viewcl);
  ASSERT_NE(plotted.find("pane 1"), std::string::npos) << plotted;

  std::string summary = shell.Execute("vctrl plan 1");
  EXPECT_NE(summary.find("wavefront(s)"), std::string::npos) << summary;
  std::string dump = shell.Execute("vctrl plan 1 json");
  EXPECT_NE(dump.find("\"boxes\""), std::string::npos) << dump;

  std::string stats = shell.Execute("vctrl stats");
  EXPECT_NE(stats.find("plan:"), std::string::npos) << stats;
  std::string stats_json = shell.Execute("vctrl stats json");
  EXPECT_NE(stats_json.find("\"avoided_round_trips\""), std::string::npos)
      << stats_json;

  std::string prom = shell.Execute("vctrl export prom");
  EXPECT_NE(prom.find("vl_plan_fleet_compiles"), std::string::npos);
  EXPECT_NE(prom.find("vl_plan_fleet_batched_reads"), std::string::npos);

  // Server::ResetStats clears the plan/vector families fleet-wide.
  server.ResetStats();
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  EXPECT_EQ(metrics.GetCounter("plan.compiles")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("read.vector.batches")->value(), 0u);
}

}  // namespace
}  // namespace viewcl
