// Tests for the vexplain layer: per-pane cost attribution trees that
// reconcile with Target::clock() to the nanosecond for every paper figure,
// refresh time-series (vctrl watch), latency budgets with explain-carrying
// violations, and the Prometheus / folded-stack exporters — all of it
// byte-reproducible across identical runs.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/support/budget.h"
#include "src/support/json.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/timeseries.h"
#include "src/support/trace.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/shell.h"
#include "tests/test_util.h"

namespace vl {
namespace {

void Quiesce() {
  Tracer& tracer = Tracer::Instance();
  tracer.Disable();
  tracer.SetTreeEnabled(false);
  tracer.Clear();
  tracer.SetCapacity(1 << 16);
  MetricsRegistry::Instance().Reset();
}

// --- TimeSeriesRecorder unit tests ---

TEST(TimeSeriesTest, BoundedSeriesShedOldestAndCountDropped) {
  TimeSeriesRecorder recorder;
  recorder.SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record("s", {{"v", i}});
  }
  const auto* samples = recorder.Find("s");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->size(), 4u);
  EXPECT_EQ(recorder.dropped("s"), 6u);
  EXPECT_EQ(samples->front().values.at("v"), 6);
  EXPECT_EQ(samples->back().values.at("v"), 9);
  for (size_t i = 1; i < samples->size(); ++i) {
    EXPECT_LT((*samples)[i - 1].seq, (*samples)[i].seq);
  }

  // Shrinking sheds from the front too.
  recorder.SetCapacity(2);
  ASSERT_EQ(recorder.Find("s")->size(), 2u);
  EXPECT_EQ(recorder.dropped("s"), 8u);
  EXPECT_EQ(recorder.Find("s")->front().values.at("v"), 8);

  ASSERT_EQ(recorder.SeriesNames().size(), 1u);
  EXPECT_EQ(recorder.SeriesNames()[0], "s");
  EXPECT_EQ(recorder.Find("missing"), nullptr);
  EXPECT_EQ(recorder.dropped("missing"), 0u);

  recorder.Clear();
  EXPECT_EQ(recorder.Find("s"), nullptr);
}

TEST(TimeSeriesTest, SparklineTextReportAndJson) {
  TimeSeriesRecorder recorder;
  for (int i = 0; i < 8; ++i) {
    recorder.Record("s", {{"v", i}, {"flat", 5}});
  }
  // Eight samples spanning the range hit all eight glyph levels in order.
  EXPECT_EQ(recorder.Sparkline("s", "v"), "▁▂▃▄▅▆▇█");
  // A constant series renders at the lowest level.
  EXPECT_EQ(recorder.Sparkline("s", "flat"), "▁▁▁▁▁▁▁▁");

  std::string report = recorder.TextReport("s");
  EXPECT_NE(report.find("series s: 8 samples"), std::string::npos) << report;
  EXPECT_NE(report.find("last=7"), std::string::npos) << report;
  EXPECT_NE(report.find("min=0"), std::string::npos);
  EXPECT_NE(report.find("max=7"), std::string::npos);

  Json j = recorder.ToJson();
  EXPECT_NE(j.Find("enabled"), nullptr);
  EXPECT_NE(j.Find("capacity"), nullptr);
  const Json* series = j.Find("series")->Find("s");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Find("samples")->size(), 8u);
  EXPECT_EQ(series->Find("dropped")->AsInt(), 0);
  const Json& first = series->Find("samples")->at(0);
  EXPECT_EQ(first.Find("values")->Find("v")->AsInt(), 0);
}

// --- BudgetRegistry unit tests ---

TEST(BudgetTest, RegistryStoresBudgetsAndBoundsViolations) {
  BudgetRegistry budgets;
  EXPECT_FALSE(budgets.armed());  // enabled by default, but no budgets set
  budgets.Set("pane.1", 100);
  budgets.Set("viewcl.eval", 50);
  EXPECT_TRUE(budgets.armed());
  ASSERT_NE(budgets.Find("pane.1"), nullptr);
  EXPECT_EQ(*budgets.Find("pane.1"), 100u);
  EXPECT_EQ(budgets.Find("pane.2"), nullptr);
  budgets.Disable();
  EXPECT_FALSE(budgets.armed());
  budgets.Enable();
  budgets.Remove("viewcl.eval");
  EXPECT_EQ(budgets.budgets().size(), 1u);

  budgets.SetCapacity(2);
  for (int i = 0; i < 3; ++i) {
    budgets.RecordViolation("pane.1", 100, 200 + i, 7, Json::Object());
  }
  ASSERT_EQ(budgets.violations().size(), 2u);
  EXPECT_EQ(budgets.dropped(), 1u);
  EXPECT_EQ(budgets.violations().front().seq, 1u);  // oldest (seq 0) shed
  EXPECT_EQ(budgets.violations().back().actual_ns, 202u);
  EXPECT_EQ(budgets.violations().back().epoch, 7u);

  Json report = budgets.ReportJson();
  EXPECT_EQ(report.Find("budgets")->Find("pane.1")->AsInt(), 100);
  EXPECT_EQ(report.Find("violations")->size(), 2u);
  EXPECT_EQ(report.Find("dropped")->AsInt(), 1);
  std::string text = budgets.ReportText();
  EXPECT_NE(text.find("pane.1"), std::string::npos) << text;
  EXPECT_NE(text.find("violations: 2 (1 dropped)"), std::string::npos) << text;

  budgets.ClearViolations();
  EXPECT_TRUE(budgets.violations().empty());
  EXPECT_EQ(budgets.dropped(), 0u);
}

// --- end-to-end explain / watch / budget / export, on the shell ---

class ExplainTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    Quiesce();
    vltest::WorkloadKernelTest::SetUp();
    // GdbQemu so reads actually advance the virtual clock.
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get(),
                                                      dbg::LatencyModel::GdbQemu());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
    shell_ = std::make_unique<vision::DebuggerShell>(debugger_.get());
  }
  void TearDown() override {
    shell_.reset();
    debugger_.reset();
    Quiesce();
  }

  // Resets everything a refresh's cost depends on: clock/read stats, the
  // block cache, the trace ring, the metrics registry, and the serve-layer
  // counters/flight ring (`vctrl export prom` publishes those on export, so
  // they must restart too). After this, two identical refreshes are
  // byte-identical.
  void ColdState() {
    Tracer::Instance().Clear();
    MetricsRegistry::Instance().Reset();
    shell_->session().server()->ResetStats();
    debugger_->target().ResetStats();
    debugger_->session().InvalidateAll();
    debugger_->session().ResetCacheStats();
  }

  void Plot(int pane, const char* figure_id) {
    std::string out = shell_->Execute(
        StrFormat("vplot %d ", pane) + vision::FindFigure(figure_id)->viewcl);
    ASSERT_NE(out.find("plotted"), std::string::npos) << out;
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<vision::DebuggerShell> shell_;
};

// The tentpole invariant: for every paper figure, the explain tree's root
// totals partition the refresh's Target::clock() delta exactly — the vprof
// "(exact)" reconciliation extended to per-node attribution.
TEST_F(ExplainTest, ExplainReconcilesWithClockForEveryFigure) {
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    if (std::string(figure.id) == "fig19_2") {
      continue;  // merged with fig19_1, as in bench_table4
    }
    SCOPED_TRACE(figure.id);
    ColdState();
    Plot(1, figure.id);
    std::string out = shell_->Execute("vctrl explain 1");
    EXPECT_NE(out.find("explain pane 1"), std::string::npos) << out;
    EXPECT_NE(out.find("(exact)"), std::string::npos) << out;
    EXPECT_EQ(out.find("MISMATCH"), std::string::npos) << out;
    // The refresh itself was traced and is the tree's sole root.
    EXPECT_NE(out.find("pane.refresh"), std::string::npos) << out;
  }
  // Explain leaves the tracer the way it found it (off).
  EXPECT_FALSE(Tracer::Instance().enabled());
}

TEST_F(ExplainTest, ExplainJsonReconcilesAndCarriesAllAttributionLevels) {
  Plot(1, "fig7_1");
  // Give the pane ViewQL history so the statement level shows up too.
  ASSERT_EQ(shell_->Execute("vctrl apply 1 a = SELECT task_struct FROM * WHERE pid >= 0\n"
                            "UPDATE a WITH collapsed: true"),
            "applied\n");
  ColdState();
  std::string out = shell_->Execute("vctrl explain 1 json");
  auto parsed = Json::Parse(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Find("reconciled")->AsBool()) << out;
  EXPECT_GT(parsed->Find("clock_ns")->AsInt(), 0);
  EXPECT_GT(parsed->Find("boxes")->AsInt(), 0);

  const Json* tree = parsed->Find("tree");
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->Find("total_ns")->AsInt(), parsed->Find("clock_ns")->AsInt());
  const Json* refresh = tree->Find("children")->Find("pane.refresh");
  ASSERT_NE(refresh, nullptr);

  // Every attribution level of the tentpole is present somewhere in the tree:
  // ViewQL statement -> ViewCL definition -> adapter -> struct type -> reads,
  // with cache hit/miss bytes rolled up the spine.
  EXPECT_NE(out.find("\"viewql.select\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"viewql.where\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"viewql.update\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"viewcl.parse\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"viewcl.eval\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"viewcl.box.task_struct\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"dbg.read\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"cache.hit_bytes\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"cache.miss_bytes\""), std::string::npos) << out;
}

TEST_F(ExplainTest, ExplainTreesAreByteIdenticalAcrossRuns) {
  Plot(1, "fig7_1");
  auto run = [&]() {
    ColdState();
    return shell_->Execute("vctrl explain 1 json");
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(ExplainTest, RefreshReportsCostAndReappliesViewQlHistory) {
  Plot(1, "fig3_4");
  ASSERT_EQ(shell_->Execute("vctrl apply 1 a = SELECT task_struct FROM *\n"
                            "UPDATE a WITH collapsed: true"),
            "applied\n");
  std::string out = shell_->Execute("vctrl refresh 1");
  EXPECT_NE(out.find("refreshed pane 1"), std::string::npos) << out;
  EXPECT_NE(out.find("virtual ns"), std::string::npos);
  // The history survived the re-extraction (replayed onto the new graph).
  const viewql::ExecStats* stats = shell_->panes().exec_stats(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->statements, 2);

  // Error paths: unknown pane, pane with nothing plotted yet.
  EXPECT_NE(shell_->Execute("vctrl refresh 99").find("error"), std::string::npos);
  ASSERT_NE(shell_->Execute("vctrl split 1 h").find("pane"), std::string::npos);
  EXPECT_NE(shell_->Execute("vctrl refresh 2").find("error"), std::string::npos);
}

TEST_F(ExplainTest, WatchRecordsSeriesAcrossKernelMutations) {
  Plot(1, "fig7_1");
  ASSERT_EQ(shell_->Execute("vctrl watch on"), "watch on\n");
  for (int i = 0; i < 3; ++i) {
    workload_->Step();  // mutate the kernel so refresh costs can drift
    std::string out = shell_->Execute("vctrl refresh 1");
    ASSERT_NE(out.find("refreshed"), std::string::npos) << out;
  }

  std::string text = shell_->Execute("vctrl watch 1");
  EXPECT_NE(text.find("series pane.1:"), std::string::npos) << text;
  EXPECT_NE(text.find("refresh_ns"), std::string::npos) << text;
  EXPECT_NE(text.find("last="), std::string::npos);

  auto parsed = Json::Parse(shell_->Execute("vctrl watch 1 json"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* refresh_series = parsed->Find("pane.1");
  ASSERT_NE(refresh_series, nullptr);
  const Json* samples = refresh_series->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->size(), 3u);
  for (size_t i = 0; i < samples->size(); ++i) {
    const Json* values = samples->at(i).Find("values");
    EXPECT_GT(values->Find("refresh_ns")->AsInt(), 0);
    EXPECT_GT(values->Find("boxes")->AsInt(), 0);
    EXPECT_GT(values->Find("reads")->AsInt(), 0);
    EXPECT_NE(values->Find("hit_bytes"), nullptr);
    EXPECT_NE(values->Find("miss_bytes"), nullptr);
  }
  // The render-time series rode along (one cumulative snapshot per render).
  EXPECT_NE(parsed->Find("pane.1.render"), nullptr);

  ASSERT_EQ(shell_->Execute("vctrl watch off"), "watch off\n");
  shell_->Execute("vctrl refresh 1");
  EXPECT_EQ(shell_->recorder().Find("pane.1")->size(), 3u);  // off = no sample
  ASSERT_EQ(shell_->Execute("vctrl watch clear"), "watch cleared\n");
  EXPECT_NE(shell_->Execute("vctrl watch 1").find("no samples"), std::string::npos);
}

TEST_F(ExplainTest, BudgetViolationCarriesExplainTree) {
  Plot(1, "fig7_1");
  // 1 ns budgets are always breached: one pane budget, one phase budget.
  ASSERT_EQ(shell_->Execute("vctrl budget set 1 1"), "budget pane.1 = 1 ns\n");
  ASSERT_EQ(shell_->Execute("vctrl budget set viewcl.eval 1"),
            "budget viewcl.eval = 1 ns\n");
  // A warm block cache elides every transport charge (a 0 ns refresh breaches
  // nothing) — budgets are about live re-extraction cost, so start cold.
  ColdState();
  std::string out = shell_->Execute("vctrl refresh 1");
  EXPECT_NE(out.find("budget violation: pane.1"), std::string::npos) << out;
  EXPECT_NE(out.find("budget violation: viewcl.eval"), std::string::npos) << out;

  const auto& violations = shell_->budgets().violations();
  ASSERT_EQ(violations.size(), 2u);
  for (const BudgetViolation& v : violations) {
    EXPECT_GT(v.actual_ns, v.budget_ns);
    // The structured event carries the offending refresh's explain tree.
    const Json* children = v.explain.Find("children");
    ASSERT_NE(children, nullptr);
    EXPECT_NE(children->Find("pane.refresh"), nullptr);
    EXPECT_GT(v.explain.Find("total_ns")->AsInt(), 0);
  }
  // The watchdog's own tree-mode tracing was torn down afterwards.
  EXPECT_FALSE(Tracer::Instance().enabled());

  std::string report = shell_->Execute("vctrl budget report");
  EXPECT_NE(report.find("pane.1"), std::string::npos) << report;
  EXPECT_NE(report.find("violations: 2"), std::string::npos) << report;
  auto parsed = Json::Parse(shell_->Execute("vctrl budget report json"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->Find("violations")->size(), 2u);
  EXPECT_NE(parsed->Find("violations")->at(0).Find("explain")->Find("children"),
            nullptr);

  // `budget off` disarms the watchdog without forgetting the budgets.
  ASSERT_EQ(shell_->Execute("vctrl budget off"), "budgets off\n");
  shell_->Execute("vctrl refresh 1");
  EXPECT_EQ(shell_->budgets().violations().size(), 2u);
  ASSERT_EQ(shell_->Execute("vctrl budget on"), "budgets on\n");

  // Generous budgets do not fire.
  ASSERT_EQ(shell_->Execute("vctrl budget clear"), "budgets cleared\n");
  shell_->Execute("vctrl budget set 1 1000000000000");
  out = shell_->Execute("vctrl refresh 1");
  EXPECT_EQ(out.find("violation"), std::string::npos) << out;
  EXPECT_TRUE(shell_->budgets().violations().empty());

  // Another pane's budget is not this refresh's business.
  shell_->Execute("vctrl budget clear");
  shell_->Execute("vctrl budget set 2 1");
  shell_->Execute("vctrl refresh 1");
  EXPECT_TRUE(shell_->budgets().violations().empty());
}

TEST_F(ExplainTest, BudgetReportsAndExportsAreByteIdenticalAcrossRuns) {
  Plot(1, "fig7_1");
  auto run = [&]() {
    ColdState();
    shell_->Execute("vctrl budget clear");
    shell_->Execute("vctrl budget set 1 1");
    shell_->Execute("vctrl refresh 1");
    std::string out = shell_->Execute("vctrl budget report json");
    out += shell_->Execute("vctrl export prom");
    out += shell_->Execute("vctrl export folded");
    return out;
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(ExplainTest, PrometheusExportIsWellFormed) {
  Plot(1, "fig7_1");
  ColdState();
  shell_->Execute("vctrl trace on");
  shell_->Execute("vctrl refresh 1");
  shell_->Execute("vctrl trace off");
  std::string prom = shell_->Execute("vctrl export prom");

  // Counters: sanitized name, `_total` suffix, TYPE line.
  EXPECT_NE(prom.find("# TYPE vl_dbg_read_by_type_task_struct_total counter"),
            std::string::npos)
      << prom;
  // Histograms: TYPE line, `le` buckets closed by +Inf, then _sum and _count.
  EXPECT_NE(prom.find("# TYPE vl_dbg_read_bytes histogram"), std::string::npos);
  EXPECT_NE(prom.find("vl_dbg_read_bytes_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(prom.find("vl_dbg_read_bytes_sum"), std::string::npos);
  EXPECT_NE(prom.find("vl_dbg_read_bytes_count"), std::string::npos);

  // The `le` buckets of each histogram are cumulative (non-decreasing) and
  // the +Inf bucket equals _count.
  uint64_t last_bucket = 0;
  uint64_t inf_bucket = 0;
  uint64_t count = 0;
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("vl_dbg_read_bytes_bucket{le=\"+Inf\"}", 0) == 0) {
      inf_bucket = std::stoull(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("vl_dbg_read_bytes_bucket", 0) == 0) {
      uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, last_bucket) << line;
      last_bucket = v;
    } else if (line.rfind("vl_dbg_read_bytes_count", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_GT(count, 0u);
  EXPECT_EQ(inf_bucket, count);
  EXPECT_LE(last_bucket, count);
}

TEST_F(ExplainTest, FoldedExportReconcilesWithClock) {
  Plot(1, "fig7_1");
  ColdState();
  shell_->Execute("vctrl trace on");
  shell_->Execute("vctrl refresh 1");
  shell_->Execute("vctrl trace off");
  std::string folded = shell_->Execute("vctrl export folded");
  ASSERT_FALSE(folded.empty());

  // Every line is "path self_ns"; the refresh root frames the stacks; the
  // self times sum to the virtual clock (which ColdState zeroed).
  uint64_t sum = 0;
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.rfind("pane.refresh", 0), 0u) << line;
    sum += std::stoull(line.substr(space + 1));
  }
  EXPECT_EQ(sum, debugger_->target().clock().nanos());
  EXPECT_NE(folded.find("pane.refresh;viewcl.eval"), std::string::npos) << folded;
  EXPECT_NE(folded.find(";dbg.read"), std::string::npos) << folded;
}

TEST_F(ExplainTest, ExportWritesFiles) {
  Plot(1, "fig7_1");
  shell_->Execute("vctrl trace on");
  shell_->Execute("vctrl refresh 1");
  shell_->Execute("vctrl trace off");
  std::string path = ::testing::TempDir() + "/vexplain_export.folded";
  std::string out = shell_->Execute("vctrl export folded " + path);
  EXPECT_NE(out.find("wrote"), std::string::npos) << out;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, shell_->Execute("vctrl export folded"));
  EXPECT_NE(shell_->Execute("vctrl export bogus").find("usage"), std::string::npos);
}

}  // namespace
}  // namespace vl
