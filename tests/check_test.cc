// vcheck invariant-engine tests: one targeted corruption per catalog rule
// (mutate kernel state host-side, assert exactly that rule fires with the
// right address), clean-corpus zero findings across the 21-figure corpus,
// charge reconciliation against Target::clock(), incremental footprint
// skip/retrigger, suspect-set retriggering, and the Server::Sweep /
// `vctrl check` fleet paths.
//
// The arena is identity-mapped (a host pointer IS the target address), so
// every expected violation address is computed directly from the vkern
// pointers that were corrupted. Every host-side mutation is followed by
// Kernel::BumpGeneration() per the mutation contract in kernel.h.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/dbg/kernel_introspect.h"
#include "src/dbg/read_session.h"
#include "src/serve/server.h"
#include "src/serve/shell.h"
#include "src/support/metrics.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vkern/faults.h"
#include "src/vkern/kernel.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/list.h"
#include "src/vkern/workload.h"
#include "tests/test_util.h"

namespace {

using analysis::CheckEngine;
using analysis::CheckReport;
using analysis::CheckRuleReport;
using analysis::CheckViolation;

void NoopTimerFn(vkern::timer_list*) {}

const CheckRuleReport* FindRuleReport(const CheckReport& report, const std::string& id) {
  for (const CheckRuleReport& r : report.rules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

// True if rule `id` recorded a violation at exactly `addr`.
bool FiredAt(const CheckReport& report, const std::string& id, uint64_t addr) {
  const CheckRuleReport* r = FindRuleReport(report, id);
  if (r == nullptr) return false;
  for (const CheckViolation& v : r->violations) {
    if (v.addr == addr) return true;
  }
  return false;
}

// IDs of every rule that recorded at least one violation.
std::vector<std::string> FiredRules(const CheckReport& report) {
  std::vector<std::string> ids;
  for (const CheckRuleReport& r : report.rules) {
    if (!r.violations.empty()) ids.push_back(r.id);
  }
  return ids;
}

std::string AllMessages(const CheckReport& report, const std::string& id) {
  std::string out;
  const CheckRuleReport* r = FindRuleReport(report, id);
  if (r == nullptr) return out;
  for (const CheckViolation& v : r->violations) {
    out += v.diagnostic.message;
    out.push_back('\n');
  }
  return out;
}

class CheckTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get(),
                                                      dbg::LatencyModel::GdbQemu(), cache());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
    engine_ = std::make_unique<CheckEngine>(&debugger_->types(), &debugger_->symbols(),
                                            &debugger_->session());
  }

  virtual dbg::CacheConfig cache() const { return dbg::CacheConfig{}; }

  // Sweep and require exactly one rule to be at fault.
  CheckReport SweepExpecting(const std::string& id, uint64_t addr) {
    CheckReport report = engine_->RunAll();
    EXPECT_TRUE(report.reconciled);
    EXPECT_TRUE(FiredAt(report, id, addr))
        << id << " did not fire at the expected address:\n"
        << report.RenderText();
    return report;
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<CheckEngine> engine_;
};

// Same fixture over a delta-invalidation session: RangeCleanSince has real
// dirty-page history, so RunIncremental can actually skip clean rules.
class IncrementalCheckTest : public CheckTest {
 protected:
  dbg::CacheConfig cache() const override { return dbg::CacheConfig::Incremental(); }
};

// ---------------------------------------------------------------------------
// Catalog + clean sweeps
// ---------------------------------------------------------------------------

TEST(CheckCatalogTest, CatalogIsStableAndSearchable) {
  const std::vector<analysis::CheckRuleInfo>& catalog = CheckEngine::Catalog();
  ASSERT_GE(catalog.size(), 10u);
  EXPECT_STREQ(catalog.front().id, "VC001");
  const analysis::CheckRuleInfo* by_id = CheckEngine::FindRule("VC004");
  ASSERT_NE(by_id, nullptr);
  EXPECT_STREQ(by_id->name, "maple-pivots");
  const analysis::CheckRuleInfo* by_name = CheckEngine::FindRule("slab-poison");
  ASSERT_NE(by_name, nullptr);
  EXPECT_STREQ(by_name->id, "VC006");
  EXPECT_EQ(CheckEngine::FindRule("no-such-rule"), nullptr);
}

TEST_F(CheckTest, CleanSweepHasZeroFindingsAndReconciles) {
  CheckReport report = engine_->RunAll();
  EXPECT_EQ(report.violations(), 0u) << report.RenderText();
  EXPECT_EQ(report.rules_run(), CheckEngine::Catalog().size());
  EXPECT_TRUE(report.reconciled);
  EXPECT_GT(report.reads, 0u);
  EXPECT_GT(report.charged_ns, 0u);
  EXPECT_EQ(report.clock_delta_ns, report.charged_ns + report.sync_ns);
  // A warm re-sweep still reconciles (cache hits charge nothing, but the
  // attribution equation must hold regardless).
  CheckReport warm = engine_->RunAll();
  EXPECT_TRUE(warm.reconciled);
  EXPECT_EQ(warm.violations(), 0u);
}

TEST_F(CheckTest, RunOneRejectsUnknownRules) {
  vl::StatusOr<CheckReport> report = engine_->RunOne("VC999");
  EXPECT_FALSE(report.ok());
  vl::StatusOr<CheckReport> ok = engine_->RunOne("rcu-cblist");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->rules.size(), 1u);
  EXPECT_EQ(ok->rules[0].id, "VC008");
  EXPECT_TRUE(ok->reconciled);
}

// The CI corpus gate in miniature: extract every paper figure, sweeping the
// full catalog after each one — zero false positives, always reconciled.
TEST_F(CheckTest, CleanCorpusAcrossAllFigures) {
  for (const vision::FigureDef& fig : vision::AllFigures()) {
    workload_->Step();
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(fig.viewcl);
    ASSERT_TRUE(graph.ok()) << fig.id << ": " << graph.status().ToString();
    CheckReport report = engine_->RunAll();
    EXPECT_EQ(report.violations(), 0u) << fig.id << ":\n" << report.RenderText();
    EXPECT_TRUE(report.reconciled) << fig.id;
  }
}

// ---------------------------------------------------------------------------
// One targeted corruption per rule
// ---------------------------------------------------------------------------

TEST_F(CheckTest, Vc001ListBacklinkCorruptionFires) {
  vkern::workqueue_struct* wq = kernel_->mm_percpu_wq();
  ASSERT_NE(wq, nullptr);
  wq->list.prev = &wq->list;  // break the back-link into the workqueues ring
  kernel_->BumpGeneration();
  uint64_t addr = reinterpret_cast<uint64_t>(&wq->list);
  CheckReport report = SweepExpecting("VC001", addr);
  // VC011 walks the same global workqueues list, so it may echo the broken
  // link; nothing else may fire.
  for (const std::string& id : FiredRules(report)) {
    EXPECT_TRUE(id == "VC001" || id == "VC011") << id << " fired unexpectedly";
  }
}

TEST_F(CheckTest, Vc002CachedLeftmostCorruptionFires) {
  // Three fresh runnable tasks guarantee a multi-node CFS tree on CPU 0.
  for (const char* name : {"chk-a", "chk-b", "chk-c"}) {
    ASSERT_NE(kernel_->procs().CreateTask(name, workload_->process(0), 0, 0), nullptr);
  }
  vkern::cfs_rq* cfs = &kernel_->runqueues()[0].cfs;
  vkern::rb_node* root = cfs->tasks_timeline.rb_root_.rb_node_;
  ASSERT_NE(root, nullptr);
  ASSERT_NE(root->rb_left, nullptr);  // root is not the leftmost node
  cfs->tasks_timeline.rb_leftmost = root;
  kernel_->BumpGeneration();
  uint64_t addr = reinterpret_cast<uint64_t>(&cfs->tasks_timeline.rb_leftmost);
  CheckReport report = SweepExpecting("VC002", addr);
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC002"});
}

TEST_F(CheckTest, Vc003RedRootCorruptionFires) {
  for (const char* name : {"chk-a", "chk-b", "chk-c"}) {
    ASSERT_NE(kernel_->procs().CreateTask(name, workload_->process(0), 0, 0), nullptr);
  }
  vkern::rb_node* root = kernel_->runqueues()[0].cfs.tasks_timeline.rb_root_.rb_node_;
  ASSERT_NE(root, nullptr);
  root->__rb_parent_color &= ~1ull;  // clear the colour bit: a red root
  kernel_->BumpGeneration();
  CheckReport report = SweepExpecting("VC003", reinterpret_cast<uint64_t>(root));
  EXPECT_NE(AllMessages(report, "VC003").find("root is red"), std::string::npos);
  // Ordering is untouched.
  const CheckRuleReport* vc002 = FindRuleReport(report, "VC002");
  ASSERT_NE(vc002, nullptr);
  EXPECT_TRUE(vc002->violations.empty());
}

// Finds a maple node with at least three live, strictly increasing pivots:
// pivot[1] is then provably inside the checked data range (pivot[2] bounds it
// away from the subtree max), so collapsing it breaks monotonicity.
uint64_t FindCorruptibleMapleNode(uintptr_t enode) {
  uint64_t node = enode & ~0xffull;
  uint32_t type = static_cast<uint32_t>((enode >> 3) & 0xf);
  if (type < 1 || type > 3) return 0;
  uint32_t n_pivots = type == 3 ? 9 : 15;
  // pivot[] starts right after the parent pointer in both node layouts.
  const uint64_t* pivots = reinterpret_cast<const uint64_t*>(node + 8);
  if (pivots[0] != 0 && pivots[1] > pivots[0] && pivots[2] > pivots[1]) {
    return node;
  }
  if (type == 1) return 0;  // leaf: nowhere further to descend
  uint64_t slot_base = node + 8 + 8ull * n_pivots;
  for (uint32_t i = 0; i <= n_pivots; ++i) {
    if (i > 0 && i <= n_pivots && pivots[i - 1] == 0) break;  // past the data end
    uintptr_t child = *reinterpret_cast<const uintptr_t*>(slot_base + 8ull * i);
    if (child == 0 || (child & 2) == 0) continue;
    uint64_t hit = FindCorruptibleMapleNode(child);
    if (hit != 0) return hit;
  }
  return 0;
}

TEST_F(CheckTest, Vc004MaplePivotCorruptionFires) {
  uint64_t node = 0;
  for (int i = 0; i < workload_->nr_processes() && node == 0; ++i) {
    vkern::mm_struct* mm = workload_->process(i)->mm;
    ASSERT_NE(mm, nullptr);
    uintptr_t enode = reinterpret_cast<uintptr_t>(mm->mm_mt.ma_root);
    if ((enode & 2u) == 0) continue;  // direct entry, no node to walk
    node = FindCorruptibleMapleNode(enode);
  }
  ASSERT_NE(node, 0u) << "no VMA tree node with three live pivots";
  uint64_t* pivots = reinterpret_cast<uint64_t*>(node + 8);
  pivots[1] = pivots[0];  // non-monotonic: pivot[1] < pivot[0] + 1
  kernel_->BumpGeneration();
  uint64_t addr = node + 8 + 8;  // &pivot[1]
  CheckReport report = SweepExpecting("VC004", addr);
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC004"});
}

TEST_F(CheckTest, Vc005FreelistEscapeCorruptionFires) {
  vkern::kmem_cache* cache = kernel_->slabs().FindCache("maple_node");
  ASSERT_NE(cache, nullptr);
  void* obj = kernel_->slabs().Alloc(cache);
  ASSERT_NE(obj, nullptr);
  vkern::SlabAllocator::Free(cache, obj);
  // The freed object's first word is the embedded next-free index; point it
  // out of the slab.
  *reinterpret_cast<uint32_t*>(obj) = 0xdead;
  kernel_->BumpGeneration();
  // Slab blocks are naturally aligned; the descriptor sits at the block head.
  uint64_t block = static_cast<uint64_t>(cache->pages_per_slab) * 4096;
  uint64_t slab_addr = reinterpret_cast<uint64_t>(obj) & ~(block - 1);
  CheckReport report = SweepExpecting("VC005", slab_addr);
  EXPECT_NE(AllMessages(report, "VC005").find("escapes"), std::string::npos);
}

TEST_F(CheckTest, Vc006PoisonClobberCorruptionFires) {
  vkern::kmem_cache* cache = kernel_->slabs().FindCache("maple_node");
  ASSERT_NE(cache, nullptr);
  void* obj = kernel_->slabs().Alloc(cache);
  ASSERT_NE(obj, nullptr);
  vkern::SlabAllocator::Free(cache, obj);
  // A write-after-free beyond the freelist word clobbers the 0x6b poison.
  reinterpret_cast<unsigned char*>(obj)[8] = 0xaa;
  kernel_->BumpGeneration();
  uint64_t addr = reinterpret_cast<uint64_t>(obj) + 8;
  CheckReport report = SweepExpecting("VC006", addr);
  EXPECT_NE(AllMessages(report, "VC006").find("poison"), std::string::npos);
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC006"});
}

TEST_F(CheckTest, Vc006SuspectPointerNamesUseAfterFree) {
  vkern::kmem_cache* cache = kernel_->slabs().FindCache("maple_node");
  ASSERT_NE(cache, nullptr);
  void* obj = kernel_->slabs().Alloc(cache);
  ASSERT_NE(obj, nullptr);
  vkern::SlabAllocator::Free(cache, obj);
  kernel_->BumpGeneration();
  // An interior pointer a crashed reader still holds must resolve to the
  // freed object (the StackRot shape: heap consistent, the danger is the
  // stale register).
  engine_->AddSuspect(reinterpret_cast<uint64_t>(obj) + 16);
  CheckReport report = SweepExpecting("VC006", reinterpret_cast<uint64_t>(obj));
  EXPECT_NE(AllMessages(report, "VC006").find("use-after-free"), std::string::npos);
}

TEST_F(CheckTest, Vc006SuspectOnLiveObjectStaysQuiet) {
  vkern::kmem_cache* cache = kernel_->slabs().FindCache("maple_node");
  ASSERT_NE(cache, nullptr);
  void* obj = kernel_->slabs().Alloc(cache);
  ASSERT_NE(obj, nullptr);
  kernel_->BumpGeneration();
  engine_->AddSuspect(reinterpret_cast<uint64_t>(obj));
  vl::StatusOr<CheckReport> report = engine_->RunOne("VC006");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violations(), 0u) << report->RenderText();
}

TEST_F(CheckTest, Vc007UnlinkedTaskCorruptionFires) {
  vkern::task_struct* task = workload_->process(2);
  ASSERT_NE(task, nullptr);
  // Remove the task from its parent's children list: still on the global
  // task list, no longer reachable through the fork tree.
  vkern::list_del_init(&task->sibling);
  kernel_->BumpGeneration();
  CheckReport report = SweepExpecting("VC007", reinterpret_cast<uint64_t>(task));
  EXPECT_NE(AllMessages(report, "VC007").find("unreachable"), std::string::npos);
  // Its thread-group members may also drop out of reach, but nothing else.
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC007"});
}

TEST_F(CheckTest, Vc008CblistLenCorruptionFires) {
  vkern::rcu_data* rdp = &kernel_->rcu_data_array()[0];
  rdp->cblist_len += 3;
  kernel_->BumpGeneration();
  uint64_t addr = reinterpret_cast<uint64_t>(&rdp->cblist_len);
  CheckReport report = SweepExpecting("VC008", addr);
  EXPECT_NE(AllMessages(report, "VC008").find("cblist_len"), std::string::npos);
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC008"});
}

TEST_F(CheckTest, Vc009DirtyPipeScenarioFires) {
  vkern::DirtyPipeReport fault =
      vkern::RunDirtyPipeScenario(kernel_.get(), workload_->process(0), /*vulnerable=*/true);
  ASSERT_NE(fault.pipe, nullptr);
  ASSERT_TRUE(fault.can_merge_leaked);
  uint64_t addr = reinterpret_cast<uint64_t>(&fault.pipe->bufs[fault.buggy_buf_index]);
  CheckReport report = SweepExpecting("VC009", addr);
  EXPECT_NE(AllMessages(report, "VC009").find("CAN_MERGE"), std::string::npos);
}

TEST_F(CheckTest, Vc009PatchedPipeStaysQuiet) {
  vkern::DirtyPipeReport fault =
      vkern::RunDirtyPipeScenario(kernel_.get(), workload_->process(0), /*vulnerable=*/false);
  ASSERT_NE(fault.pipe, nullptr);
  EXPECT_FALSE(fault.can_merge_leaked);
  vl::StatusOr<CheckReport> report = engine_->RunOne("VC009");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->violations(), 0u) << report->RenderText();
}

TEST_F(CheckTest, Vc010TimerPprevCorruptionFires) {
  vkern::timer_list* timer = kernel_->timers().AllocTimer();
  ASSERT_NE(timer, nullptr);
  kernel_->timers().AddTimer(0, timer, kernel_->jiffies() + 100, &NoopTimerFn);
  timer->entry.pprev = reinterpret_cast<vkern::hlist_node**>(&timer->expires);
  kernel_->BumpGeneration();
  CheckReport report = SweepExpecting("VC010", reinterpret_cast<uint64_t>(&timer->entry));
  EXPECT_NE(AllMessages(report, "VC010").find("pprev"), std::string::npos);
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC010"});
}

TEST_F(CheckTest, Vc011PwqBackrefCorruptionFires) {
  vkern::workqueue_struct* wq = kernel_->mm_percpu_wq();
  ASSERT_NE(wq, nullptr);
  ASSERT_NE(wq->pwqs.next, &wq->pwqs);
  vkern::pool_workqueue* pwq =
      VKERN_CONTAINER_OF(wq->pwqs.next, vkern::pool_workqueue, pwqs_node);
  ASSERT_EQ(pwq->wq, wq);
  pwq->wq = kernel_->events_wq();  // back-pointer hijacked to another workqueue
  kernel_->BumpGeneration();
  CheckReport report = SweepExpecting("VC011", reinterpret_cast<uint64_t>(pwq));
  EXPECT_EQ(FiredRules(report), std::vector<std::string>{"VC011"});
}

// ---------------------------------------------------------------------------
// Incremental re-checking
// ---------------------------------------------------------------------------

TEST_F(IncrementalCheckTest, SecondSweepSkipsEveryCleanRule) {
  CheckReport full = engine_->RunAll();
  ASSERT_EQ(full.violations(), 0u) << full.RenderText();
  CheckReport inc = engine_->RunIncremental();
  EXPECT_TRUE(inc.incremental);
  EXPECT_EQ(inc.rules_skipped(), CheckEngine::Catalog().size());
  EXPECT_EQ(inc.rules_run(), 0u);
  EXPECT_EQ(inc.charged_ns, 0u);
  EXPECT_EQ(inc.violations(), 0u);
  EXPECT_TRUE(inc.reconciled);
  for (const CheckRuleReport& r : inc.rules) {
    EXPECT_FALSE(r.ran) << r.id;
    EXPECT_TRUE(r.skipped_clean) << r.id;
  }
}

TEST_F(IncrementalCheckTest, DirtyFootprintRetriggersOnlyAffectedRules) {
  CheckReport full = engine_->RunAll();
  ASSERT_EQ(full.violations(), 0u) << full.RenderText();
  // Dirty exactly one page: the rcu_data slot VC008's footprint covers.
  vkern::rcu_data* rdp = &kernel_->rcu_data_array()[0];
  rdp->cblist_len += 3;
  kernel_->BumpGeneration();
  CheckReport inc = engine_->RunIncremental();
  const CheckRuleReport* vc008 = FindRuleReport(inc, "VC008");
  ASSERT_NE(vc008, nullptr);
  EXPECT_TRUE(vc008->ran);
  EXPECT_TRUE(FiredAt(inc, "VC008", reinterpret_cast<uint64_t>(&rdp->cblist_len)))
      << inc.RenderText();
  EXPECT_TRUE(inc.reconciled);
  // Rules whose footprint avoids the dirtied page replay their clean result.
  // The journal reports the whole arena-relative page as dirty, and that page
  // spans up to two absolute 4 KiB granules — compute the set from the arena
  // base rather than assuming which neighbouring globals share the page.
  uint64_t addr = reinterpret_cast<uint64_t>(&rdp->cblist_len);
  uint64_t base = kernel_->arena().base_addr();
  uint64_t page = base + ((addr - base) / 4096) * 4096;
  uint64_t g0 = page & ~4095ull;
  size_t verified_skips = 0;
  for (const CheckRuleReport& prev : full.rules) {
    bool touches = false;
    for (uint64_t pg : prev.footprint) {
      if (pg == g0 || pg == g0 + 4096) {
        touches = true;
        break;
      }
    }
    if (touches) continue;
    const CheckRuleReport* now = FindRuleReport(inc, prev.id);
    ASSERT_NE(now, nullptr);
    EXPECT_TRUE(now->skipped_clean) << prev.id << " touched no dirty page:\n"
                                    << inc.RenderText();
    ++verified_skips;
  }
  EXPECT_GE(inc.rules_skipped(), verified_skips);
  // Repair + re-sweep: the page is dirty again, so VC008 re-runs and clears.
  rdp->cblist_len -= 3;
  kernel_->BumpGeneration();
  CheckReport fixed = engine_->RunIncremental();
  const CheckRuleReport* again = FindRuleReport(fixed, "VC008");
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(again->ran);
  EXPECT_EQ(fixed.violations(), 0u) << fixed.RenderText();
}

TEST_F(IncrementalCheckTest, SuspectChangeRetriggersSlabAudit) {
  vkern::kmem_cache* cache = kernel_->slabs().FindCache("maple_node");
  ASSERT_NE(cache, nullptr);
  void* obj = kernel_->slabs().Alloc(cache);
  ASSERT_NE(obj, nullptr);
  kernel_->BumpGeneration();
  CheckReport full = engine_->RunAll();
  ASSERT_EQ(full.violations(), 0u) << full.RenderText();
  // No memory changed, but the suspect set did: VC006 must re-run.
  engine_->AddSuspect(reinterpret_cast<uint64_t>(obj));
  CheckReport inc = engine_->RunIncremental();
  const CheckRuleReport* vc006 = FindRuleReport(inc, "VC006");
  ASSERT_NE(vc006, nullptr);
  EXPECT_TRUE(vc006->ran);
  EXPECT_EQ(inc.violations(), 0u) << inc.RenderText();  // object is live
  // Now the object dies; the suspect pointer becomes a use-after-free.
  vkern::SlabAllocator::Free(cache, obj);
  kernel_->BumpGeneration();
  CheckReport uaf = engine_->RunIncremental();
  EXPECT_TRUE(FiredAt(uaf, "VC006", reinterpret_cast<uint64_t>(obj))) << uaf.RenderText();
}

// ---------------------------------------------------------------------------
// Telemetry + fleet sweep
// ---------------------------------------------------------------------------

TEST_F(CheckTest, ResetStatsClearsCheckCounters) {
  engine_->RunAll();
  vl::MetricsRegistry& registry = vl::MetricsRegistry::Instance();
  EXPECT_GT(registry.GetCounter("check.sweeps")->value(), 0u);
  EXPECT_GT(registry.GetCounter("check.rules.run")->value(), 0u);
  debugger_->target().ResetStats();
  EXPECT_EQ(registry.GetCounter("check.sweeps")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("check.rules.run")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("check.violations")->value(), 0u);
}

TEST(CheckServeTest, ServerSweepCoversEveryShard) {
  vserve::Server server;
  ASSERT_TRUE(server.BootShard("s0", dbg::LatencyModel::GdbQemu()).ok());
  ASSERT_TRUE(server.BootShard("s1", dbg::LatencyModel::GdbQemu()).ok());
  auto sweep = server.Sweep();
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->shards.size(), 2u);
  EXPECT_EQ(sweep->violations(), 0u) << sweep->RenderText();
  EXPECT_EQ(sweep->rules_run(), 2 * CheckEngine::Catalog().size());
  EXPECT_TRUE(sweep->reconciled());

  auto one = server.Sweep("VC008");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->rules_run(), 2u);
  EXPECT_FALSE(server.Sweep("VC999").ok());

  // Corrupt one shard only; the fleet sweep localizes the finding.
  vkern::Kernel* kernel = server.shard_kernel("s0");
  ASSERT_NE(kernel, nullptr);
  kernel->rcu_data_array()[0].cblist_len += 2;
  kernel->BumpGeneration();
  auto dirty = server.Sweep("VC008");
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty->violations(), 1u) << dirty->RenderText();
  for (const vserve::Server::ShardSweep& s : dirty->shards) {
    if (s.shard == "s0") {
      EXPECT_EQ(s.report.violations(), 1u);
    } else {
      EXPECT_EQ(s.report.violations(), 0u);
    }
  }

  server.ResetStats();
  EXPECT_EQ(vl::MetricsRegistry::Instance().GetCounter("check.sweeps")->value(), 0u);
}

TEST(CheckShellTest, VctrlCheckAndStatsSurfaceSweeps) {
  vserve::Server server;
  ASSERT_TRUE(server.BootShard("main").ok());
  auto client = vserve::Client::Connect(&server);
  ASSERT_TRUE(client.ok());
  vserve::DebuggerShell shell(client->session());

  std::string listing = shell.Execute("vctrl check list");
  EXPECT_NE(listing.find("VC001"), std::string::npos);
  EXPECT_NE(listing.find("maple-pivots"), std::string::npos);

  std::string out = shell.Execute("vctrl check");
  EXPECT_NE(out.find("sweep: 1 shard(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("0 violation(s)"), std::string::npos) << out;
  EXPECT_EQ(out.find("NOT RECONCILED"), std::string::npos) << out;

  std::string json = shell.Execute("vctrl check VC008 json");
  EXPECT_NE(json.find("\"rules_run\""), std::string::npos) << json;

  EXPECT_NE(shell.Execute("vctrl check bogus-rule").find("error"), std::string::npos);

  std::string stats = shell.Execute("vctrl stats");
  EXPECT_NE(stats.find("check:"), std::string::npos) << stats;
  std::string prom = shell.Execute("vctrl export prom");
  EXPECT_NE(prom.find("vl_check_fleet_sweeps"), std::string::npos) << prom;
}

}  // namespace
