// vserve serving-layer tests: SessionOptions validation, request dedup
// (one extraction serves every overlapping client), per-session view
// isolation, byte-identical renders vs single-session mode, admission
// control, shard routing, the async scheduler, and the Target stats
// snapshot race fixed alongside this layer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/serve/options.h"
#include "src/serve/server.h"
#include "src/serve/shell.h"
#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/vision/figures.h"
#include "src/vkern/kernel.h"
#include "src/vkern/workload.h"

namespace vserve {
namespace {

const char* Fig(const char* id) { return vision::FindFigure(id)->viewcl; }

// ---------------------------------------------------------------------------
// SessionOptions (the consolidated-config satellite)

TEST(SessionOptionsTest, DefaultsValidateClean) {
  SessionOptions options;
  vl::DiagnosticList diags = options.Validate();
  EXPECT_EQ(diags.errors(), 0);
  EXPECT_EQ(options.ValidationText(), "");
}

TEST(SessionOptionsTest, FailFastDiagnosticsCarryRuleIds) {
  SessionOptions options;
  options.block_bytes = 0;  // VS001: incremental needs a block cache
  EXPECT_GT(options.Validate().errors(), 0);
  EXPECT_NE(options.ValidationText().find("VS001"), std::string::npos);

  options = SessionOptions{};
  options.capacity_blocks = 0;  // VS002
  EXPECT_NE(options.ValidationText().find("VS002"), std::string::npos);

  options = SessionOptions{};
  options.max_dirty_ratio = 1.5;  // VS003
  EXPECT_NE(options.ValidationText().find("VS003"), std::string::npos);

  options = SessionOptions{};
  options.max_queued = 0;  // VS004
  EXPECT_NE(options.ValidationText().find("VS004"), std::string::npos);

  options = SessionOptions{};
  options.shard = "bad shard";  // VS005
  EXPECT_NE(options.ValidationText().find("VS005"), std::string::npos);

  // VS006 is a warning: still zero errors, so the session is admissible.
  options = SessionOptions{};
  options.block_bytes = 300;
  EXPECT_EQ(options.Validate().errors(), 0);
}

TEST(SessionOptionsTest, CacheConfigRoundTrip) {
  dbg::CacheConfig config;
  config.block_bytes = 512;
  config.capacity_blocks = 64;
  config.delta_invalidation = true;
  config.max_dirty_ratio = 0.25;
  SessionOptions options = SessionOptions::FromCacheConfig(config);
  EXPECT_TRUE(SameCacheConfig(options.ToCacheConfig(), config));
  // The compat conversion preserves classic single-user semantics.
  EXPECT_FALSE(options.shared_engines);
  EXPECT_FALSE(options.coalesce);
  EXPECT_TRUE(SameCacheConfig(SessionOptions::Classic().ToCacheConfig(),
                              dbg::CacheConfig{}));
}

// ---------------------------------------------------------------------------
// Serving

class ServeTest : public ::testing::Test {
 protected:
  // One booted shard on the GDB/QEMU latency model so refreshes have a real
  // (virtual) cost to account.
  void Boot(Server& server, const std::string& name = "k0",
            dbg::LatencyModel model = dbg::LatencyModel::GdbQemu()) {
    ASSERT_TRUE(server.BootShard(name, model).ok());
  }
};

TEST_F(ServeTest, DedupServesSecondClientFromOneExtraction) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());

  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());

  auto first = (*a)->Refresh(1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->deduped);
  EXPECT_EQ((*a)->executed(), 1u);

  uint64_t charged_before = (*b)->charged_ns();
  auto second = (*b)->Refresh(1);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->deduped);
  EXPECT_EQ(second->refresh_ns, 0u);  // the duplicate is charged nothing
  EXPECT_EQ((*b)->charged_ns(), charged_before);
  EXPECT_EQ((*b)->deduped(), 1u);
  EXPECT_EQ((*b)->executed(), 0u);
  // ...and it is served real bytes, not just accounting.
  EXPECT_FALSE(second->render.empty());
  EXPECT_EQ(second->render, first->render);
  // Completion sequences are server-wide and monotonic.
  EXPECT_GT(second->sequence, first->sequence);
}

TEST_F(ServeTest, KernelMutationInvalidatesDedup) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*a)->Refresh(1).ok());

  // Advance the kernel: the dedup key embeds the mutation generation, so the
  // stale cached result must not be served.
  server.shard_workload("k0")->Step();
  auto fresh = (*b)->Refresh(1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->deduped);
  EXPECT_EQ((*b)->executed(), 1u);
}

TEST_F(ServeTest, PerSessionViewIsolation) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());
  EXPECT_EQ((*a)->Render(1), (*b)->Render(1));

  // A ViewQL refinement in one session must not leak into the other, even
  // though both share the shard's block cache and engines.
  ASSERT_TRUE((*a)->Apply(1,
                          "a = SELECT task_struct FROM *\n"
                          "UPDATE a WITH collapsed: true")
                  .ok());
  EXPECT_NE((*a)->Render(1), (*b)->Render(1));

  // And the refinement changes A's dedup key, so A's next refresh is a real
  // extraction, not B's cached result.
  ASSERT_TRUE((*b)->Refresh(1).ok());
  auto refined = (*a)->Refresh(1);
  ASSERT_TRUE(refined.ok());
  EXPECT_FALSE(refined->deduped);
}

TEST_F(ServeTest, RendersByteIdenticalToSingleSessionMode) {
  // Serving path: a session on a booted shard.
  Server server;
  Boot(server, "k0", dbg::LatencyModel::Free());
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());
  auto served = (*client)->Refresh(1);
  ASSERT_TRUE(served.ok());

  // Classic path: the same deterministic kernel driven by the pre-vserve
  // shell (compat constructor = one-session server, classic options).
  vkern::Kernel kernel;
  vkern::WorkloadConfig config;
  config.steps = 60;
  vkern::Workload workload(&kernel, config);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel);
  vision::RegisterFigureSymbols(&debugger, &workload);
  DebuggerShell shell(&debugger);
  shell.Execute(std::string("vplot 1 ") + Fig("fig3_4"));

  // Note: no classic `vctrl refresh` here — the classic engine re-loads and
  // accumulates the program per replot (a second `plot` section), which is
  // preserved compat behavior, not the canonical figure bytes.
  EXPECT_EQ(served->render, shell.Execute("vctrl view 1"));
  // And a serve refresh is idempotent on an unchanged kernel.
  auto again = (*client)->Refresh(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->render, served->render);
}

TEST_F(ServeTest, AdmissionRejectsSessionOverBudget) {
  Server server;
  Boot(server);
  // No block cache: every refresh pays raw transport costs, so the first
  // refresh is guaranteed to charge > 0 virtual ns.
  SessionOptions options;
  options.block_bytes = 0;
  options.capacity_blocks = 0;
  options.incremental = false;
  options.session_budget_ns = 1;
  auto client = server.Connect(options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());

  auto first = (*client)->Refresh(1);
  ASSERT_TRUE(first.ok());
  ASSERT_GT((*client)->charged_ns(), 0u);

  auto second = (*client)->Refresh(1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), vl::StatusCode::kResourceExhausted);
  EXPECT_EQ((*client)->rejected(), 1u);
  // The rejection is recorded as a budget violation for vexplain.
  ASSERT_FALSE((*client)->budgets().violations().empty());
  const vl::BudgetViolation& violation = (*client)->budgets().violations().back();
  EXPECT_EQ(violation.key, vl::StrFormat("serve.session.%d", (*client)->id()));
  EXPECT_EQ(violation.budget_ns, 1u);
}

TEST_F(ServeTest, ShardRoutingNamedAndRoundRobin) {
  Server server;
  Boot(server, "k0", dbg::LatencyModel::Free());
  Boot(server, "k1", dbg::LatencyModel::Free());
  EXPECT_EQ(server.shard_count(), 2u);

  SessionOptions named;
  named.shard = "k1";
  auto pinned = server.Connect(named);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ((*pinned)->shard_name(), "k1");

  SessionOptions missing;
  missing.shard = "nope";
  auto not_found = server.Connect(missing);
  ASSERT_FALSE(not_found.ok());
  EXPECT_EQ(not_found.status().code(), vl::StatusCode::kNotFound);

  // "" spreads sessions round-robin across the fleet.
  auto c1 = server.Connect();
  auto c2 = server.Connect();
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE((*c1)->shard_name(), (*c2)->shard_name());
  EXPECT_EQ(server.session_count(), 3u);
}

TEST_F(ServeTest, ConnectRefusesCacheConfigConflictWhileOccupied) {
  Server server;
  Boot(server, "k0", dbg::LatencyModel::Free());
  SessionOptions big;
  big.block_bytes = 512;
  {
    auto first = server.Connect();  // adopts the default incremental config
    ASSERT_TRUE(first.ok());
    auto conflicting = server.Connect(big);
    ASSERT_FALSE(conflicting.ok());
    EXPECT_EQ(conflicting.status().code(), vl::StatusCode::kFailedPrecondition);
    // A matching config can still share the shard.
    auto matching = server.Connect();
    EXPECT_TRUE(matching.ok());
  }
  // Once the shard is empty again it adopts the newcomer's config.
  auto retry = server.Connect(big);
  EXPECT_TRUE(retry.ok());
}

TEST_F(ServeTest, SchedulerQueuesUnderPauseAndPreservesFifo) {
  Server server;  // inline mode: workers == 0
  Boot(server, "k0", dbg::LatencyModel::Free());
  SessionOptions options;
  options.max_queued = 2;
  auto client = server.Connect(options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());

  server.Pause();
  auto t1 = (*client)->SubmitRefresh(1);
  auto t2 = (*client)->SubmitRefresh(1);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_FALSE(t1->done());

  // Admission control on queue depth: the third submit is rejected.
  auto t3 = (*client)->SubmitRefresh(1);
  ASSERT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), vl::StatusCode::kResourceExhausted);
  EXPECT_EQ((*client)->rejected(), 1u);

  server.Resume();  // inline server: drains on this thread
  auto r1 = t1->Wait();
  auto r2 = t2->Wait();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LT(r1->sequence, r2->sequence);  // per-session FIFO preserved
  EXPECT_TRUE(r2->deduped);               // same figure, same epoch: coalesced
  server.Drain();
}

TEST_F(ServeTest, WorkerPoolServesConcurrentClients) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  Boot(server, "k0", dbg::LatencyModel::Free());

  std::vector<vl::StatusOr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(server.Connect());
    ASSERT_TRUE(clients.back().ok());
    ASSERT_TRUE((*clients.back())->Plot(1, Fig("fig3_4")).ok());
  }
  std::vector<Ticket> tickets;
  for (auto& client : clients) {
    auto ticket = (*client)->SubmitRefresh(1);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  server.Drain();
  std::string render;
  for (Ticket& ticket : tickets) {
    auto result = ticket.Wait();
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->render.empty());
    if (render.empty()) {
      render = result->render;
    }
    EXPECT_EQ(result->render, render);  // every client sees the same bytes
  }
  // The overlapping fleet coalesced: exactly one client paid for extraction.
  uint64_t executed = 0;
  for (auto& client : clients) {
    executed += (*client)->executed();
  }
  EXPECT_EQ(executed, 1u);
}

TEST_F(ServeTest, CompatShellIsOneSessionServer) {
  vkern::Kernel kernel;
  vkern::WorkloadConfig config;
  config.steps = 60;
  vkern::Workload workload(&kernel, config);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel);
  vision::RegisterFigureSymbols(&debugger, &workload);

  DebuggerShell shell(&debugger);
  EXPECT_EQ(shell.session().shard_name(), "local");
  // Classic options: the shim must never reconfigure the caller's debugger.
  EXPECT_FALSE(shell.session().options().coalesce);

  std::string out = shell.Execute(std::string("vplot 1 ") + Fig("fig3_4"));
  EXPECT_NE(out.find("plotted"), std::string::npos);
  out = shell.Execute("vctrl refresh 1");
  EXPECT_NE(out.find("refreshed pane 1"), std::string::npos);
  EXPECT_EQ(out.find("(deduped)"), std::string::npos);
  // The merged stats report now carries the serve section.
  EXPECT_NE(shell.Execute("vctrl stats").find("serve: session"), std::string::npos);
  EXPECT_NE(shell.Execute("vctrl stats json").find("\"serve\""), std::string::npos);
}

TEST_F(ServeTest, ServerStatsExposeShardsAndSessions) {
  Server server;
  Boot(server, "k0", dbg::LatencyModel::Free());
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*a)->Refresh(1).ok());
  ASSERT_TRUE((*b)->Refresh(1).ok());

  std::string stats = server.StatsToJson().Dump(2);
  EXPECT_NE(stats.find("\"shards\""), std::string::npos);
  EXPECT_NE(stats.find("\"k0\""), std::string::npos);
  EXPECT_NE(stats.find("\"dedup_hits\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"per_session\""), std::string::npos);

  vl::MetricsRegistry::Instance().Reset();
  server.PublishMetrics();
  std::string prom = vl::MetricsRegistry::Instance().ToPrometheus();
  EXPECT_NE(prom.find("serve_sessions"), std::string::npos);
  EXPECT_NE(prom.find("serve_shard_k0_dedup_hits"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The Target::ResetStats race fix

TEST(TargetStatsRaceTest, ResetRacesWithSnapshotReaders) {
  vkern::Kernel kernel;
  vkern::WorkloadConfig config;
  config.steps = 30;
  vkern::Workload workload(&kernel, config);
  workload.Run();
  dbg::KernelDebugger debugger(&kernel, dbg::LatencyModel::GdbQemu());
  dbg::Target& target = debugger.target();

  // One thread generating charges, one hammering ResetStats, two taking the
  // snapshot accessors. Pre-fix, per_model_stats()/dirty_stats() returned
  // references into state ResetStats concurrently cleared; the snapshots are
  // now taken by value under the stats lock. TSan (the build-tsan preset) is
  // the real assertion here; the invariants below catch torn reads anywhere.
  std::atomic<bool> stop{false};
  std::thread charger([&] {
    uint8_t buffer[64];
    uint64_t addr = reinterpret_cast<uint64_t>(kernel.procs().init_task());
    while (!stop.load(std::memory_order_relaxed)) {
      (void)debugger.session().ReadBytes(addr, buffer, sizeof(buffer));
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      target.ResetStats();
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto per_model = target.per_model_stats();
      for (const auto& [name, stats] : per_model) {
        ASSERT_FALSE(name.empty());
        ASSERT_GE(stats.bytes, stats.reads);  // every read is >= 1 byte
      }
      auto dirty = target.dirty_stats();
      ASSERT_GE(dirty.pages_scanned, dirty.pages_dirty);
    }
  });
  std::thread json_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_FALSE(target.StatsToJson().Dump(0).empty());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  charger.join();
  resetter.join();
  reader.join();
  json_reader.join();
}

}  // namespace
}  // namespace vserve
