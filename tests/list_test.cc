// Intrusive container tests: list_head and hlist primitives, container_of.

#include "src/vkern/list.h"

#include <gtest/gtest.h>

#include <vector>

namespace vkern {
namespace {

struct Widget {
  int value;
  list_head node;
  hlist_node hnode;
};

class ListTest : public ::testing::Test {
 protected:
  void SetUp() override { INIT_LIST_HEAD(&head_); }

  std::vector<int> Values() {
    std::vector<int> out;
    VKERN_LIST_FOR_EACH(pos, &head_) {
      out.push_back(VKERN_CONTAINER_OF(pos, Widget, node)->value);
    }
    return out;
  }

  list_head head_;
};

TEST_F(ListTest, EmptyList) {
  EXPECT_TRUE(list_empty(&head_));
  EXPECT_EQ(list_count(&head_), 0u);
  EXPECT_EQ(head_.next, &head_);
  EXPECT_EQ(head_.prev, &head_);
}

TEST_F(ListTest, AddHeadAndTailOrdering) {
  Widget a{1, {}, {}};
  Widget b{2, {}, {}};
  Widget c{3, {}, {}};
  list_add(&a.node, &head_);        // head insertion
  list_add_tail(&b.node, &head_);   // tail insertion
  list_add(&c.node, &head_);        // head again
  EXPECT_EQ(Values(), (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(list_count(&head_), 3u);
}

TEST_F(ListTest, DelAndDelInit) {
  Widget a{1, {}, {}};
  Widget b{2, {}, {}};
  list_add_tail(&a.node, &head_);
  list_add_tail(&b.node, &head_);
  list_del(&a.node);
  EXPECT_EQ(Values(), std::vector<int>{2});
  EXPECT_EQ(a.node.next, nullptr);  // poisoned
  list_del_init(&b.node);
  EXPECT_TRUE(list_empty(&head_));
  EXPECT_EQ(b.node.next, &b.node);  // reinitialized
}

TEST_F(ListTest, MoveTail) {
  Widget a{1, {}, {}};
  Widget b{2, {}, {}};
  Widget c{3, {}, {}};
  list_add_tail(&a.node, &head_);
  list_add_tail(&b.node, &head_);
  list_add_tail(&c.node, &head_);
  list_move_tail(&a.node, &head_);
  EXPECT_EQ(Values(), (std::vector<int>{2, 3, 1}));
}

TEST_F(ListTest, ContainerOfRecoversObject) {
  Widget w{42, {}, {}};
  list_add_tail(&w.node, &head_);
  Widget* recovered = VKERN_CONTAINER_OF(head_.next, Widget, node);
  EXPECT_EQ(recovered, &w);
  EXPECT_EQ(recovered->value, 42);
}

TEST(HlistTest, AddHeadAndDel) {
  hlist_head head;
  INIT_HLIST_HEAD(&head);
  EXPECT_TRUE(hlist_empty(&head));

  Widget a{1, {}, {}};
  Widget b{2, {}, {}};
  INIT_HLIST_NODE(&a.hnode);
  INIT_HLIST_NODE(&b.hnode);
  hlist_add_head(&a.hnode, &head);
  hlist_add_head(&b.hnode, &head);
  // Head insertion: b before a.
  EXPECT_EQ(head.first, &b.hnode);
  EXPECT_EQ(b.hnode.next, &a.hnode);
  EXPECT_EQ(hlist_count(&head), 2u);

  hlist_del(&b.hnode);
  EXPECT_EQ(head.first, &a.hnode);
  EXPECT_EQ(hlist_count(&head), 1u);
  EXPECT_TRUE(hlist_unhashed(&b.hnode));
  // Deleting an unhashed node is a no-op, as in the kernel.
  hlist_del(&b.hnode);
  hlist_del(&a.hnode);
  EXPECT_TRUE(hlist_empty(&head));
}

TEST(HlistTest, MiddleDeletionFixesPprev) {
  hlist_head head;
  INIT_HLIST_HEAD(&head);
  Widget a{1, {}, {}};
  Widget b{2, {}, {}};
  Widget c{3, {}, {}};
  for (Widget* w : {&a, &b, &c}) {
    INIT_HLIST_NODE(&w->hnode);
    hlist_add_head(&w->hnode, &head);
  }
  // Order: c, b, a. Remove the middle.
  hlist_del(&b.hnode);
  EXPECT_EQ(head.first, &c.hnode);
  EXPECT_EQ(c.hnode.next, &a.hnode);
  EXPECT_EQ(a.hnode.pprev, &c.hnode.next);
  EXPECT_EQ(hlist_count(&head), 2u);
}

}  // namespace
}  // namespace vkern
