// vflight tests: per-request flight-recorder lifecycle invariants (monotone
// virtual-clock stamps, dedup followers referencing a real leader id),
// queue/service decomposition, service-ns reconciliation against shard
// charged-ns, chrome-trace flow arrows, ring eviction, SLO ceilings,
// Server::ResetStats coherence, and the vctrl flights/top/slo commands.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/flight.h"
#include "src/serve/options.h"
#include "src/serve/server.h"
#include "src/serve/shell.h"
#include "src/support/metrics.h"
#include "src/vision/figures.h"

namespace vserve {
namespace {

const char* Fig(const char* id) { return vision::FindFigure(id)->viewcl; }

class FlightTest : public ::testing::Test {
 protected:
  // GdbQemu so refreshes charge real (virtual) transport time — the stamps
  // and the reconciliation are only interesting when the clock moves.
  void Boot(Server& server, const std::string& name = "k0",
            dbg::LatencyModel model = dbg::LatencyModel::GdbQemu()) {
    ASSERT_TRUE(server.BootShard(name, model).ok());
  }

  // Finds the ring record for `request_id`; fails the test if evicted.
  FlightRecord Record(Server& server, uint64_t request_id) {
    for (const FlightRecord& record : server.flights().Snapshot()) {
      if (record.request_id == request_id) {
        return record;
      }
    }
    ADD_FAILURE() << "request " << request_id << " not in the flight ring";
    return FlightRecord{};
  }
};

// ---------------------------------------------------------------------------
// Lifecycle invariants

TEST_F(FlightTest, LifecycleStampsAreMonotone) {
  Server server;
  Boot(server);
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*client)->Refresh(1).ok());
  server.shard_workload("k0")->Step();
  ASSERT_TRUE((*client)->Refresh(1).ok());

  std::vector<FlightRecord> flights = server.flights().Snapshot();
  ASSERT_EQ(flights.size(), 2u);
  for (const FlightRecord& flight : flights) {
    EXPECT_GT(flight.request_id, 0u);
    EXPECT_LE(flight.submitted_ns, flight.dequeued_ns);
    EXPECT_LE(flight.dequeued_ns, flight.finished_ns);
    if (flight.outcome != FlightOutcome::kAdmissionRejected) {
      EXPECT_EQ(flight.admitted_ns, flight.submitted_ns);
    }
    if (FlightExecuted(flight.outcome)) {
      EXPECT_LE(flight.dequeued_ns, flight.executing_ns);
      EXPECT_LE(flight.executing_ns, flight.finished_ns);
      // Single client, inline server: nothing else can charge the clock
      // between our executing/finished stamps, so the window IS the service.
      EXPECT_EQ(flight.finished_ns - flight.executing_ns, flight.service_ns);
    }
    EXPECT_EQ(flight.total_ns(),
              flight.queue_ns() + flight.service_ns + flight.stall_ns());
  }
  // Request ids are assigned monotonically in submission order.
  EXPECT_LT(flights[0].request_id, flights[1].request_id);
  // The first refresh replays the engine's memo snapshots (the Plot warmed
  // them) at zero transport cost; after the kernel stepped, the re-extraction
  // pays real service time.
  EXPECT_EQ(flights[0].outcome, FlightOutcome::kMemoReplay);
  EXPECT_EQ(flights[0].service_ns, 0u);
  EXPECT_GT(flights[1].service_ns, 0u);
}

TEST_F(FlightTest, DedupFollowerReferencesRealLeader) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());

  auto first = (*a)->Refresh(1);
  auto second = (*b)->Refresh(1);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_TRUE(second->deduped);

  // The result carries the flight identity of both sides of the coalesce.
  EXPECT_GT(first->request_id, 0u);
  EXPECT_GT(second->request_id, 0u);
  EXPECT_EQ(second->leader_request_id, first->request_id);

  FlightRecord leader = Record(server, first->request_id);
  FlightRecord follower = Record(server, second->request_id);
  EXPECT_TRUE(FlightExecuted(leader.outcome));
  EXPECT_EQ(follower.outcome, FlightOutcome::kDedupHit);
  EXPECT_EQ(follower.leader_request_id, leader.request_id);
  EXPECT_EQ(follower.service_ns, 0u);  // the duplicate is charged nothing
  EXPECT_EQ(leader.session_id, (*a)->id());
  EXPECT_EQ(follower.session_id, (*b)->id());
}

TEST_F(FlightTest, QueueNsDecomposesAsLeaderServiceTime) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  // Different figures: no dedup, both requests genuinely execute.
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_6")).ok());
  // Invalidate the plots' memo snapshots so both refreshes pay real service
  // time (a warm refresh replays memo at zero cost).
  server.shard_workload("k0")->Step();

  // Pause so both requests are queued at the same virtual instant; Resume
  // drains them FIFO on this thread.
  server.Pause();
  auto t1 = (*a)->SubmitRefresh(1);
  auto t2 = (*b)->SubmitRefresh(1);
  ASSERT_TRUE(t1.ok() && t2.ok());
  server.Resume();
  auto r1 = t1->Wait();
  auto r2 = t2->Wait();
  ASSERT_TRUE(r1.ok() && r2.ok());

  FlightRecord first = Record(server, r1->request_id);
  FlightRecord second = Record(server, r2->request_id);
  ASSERT_GT(first.service_ns, 0u);
  // Both were submitted before the clock moved; the second dequeues only
  // after the first finishes, so its queue_ns is exactly the first's service.
  EXPECT_EQ(first.queue_ns(), 0u);
  EXPECT_EQ(second.queue_ns(), first.service_ns);
  EXPECT_EQ(second.submitted_ns, first.submitted_ns);
}

// ---------------------------------------------------------------------------
// Reconciliation

TEST_F(FlightTest, ServiceNsReconcilesWithShardChargedNs) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_6")).ok());
  ASSERT_TRUE((*a)->Refresh(1).ok());
  ASSERT_TRUE((*b)->Refresh(1).ok());
  server.shard_workload("k0")->Step();
  ASSERT_TRUE((*a)->Refresh(1).ok());
  ASSERT_TRUE((*a)->Refresh(1).ok());  // dedup hit: adds no service_ns

  vl::Json doc = server.ExportFlights();
  const vl::Json* shard = doc.Find("metadata")->Find("shards")->Find("k0");
  ASSERT_NE(shard, nullptr);
  // charged == control (Plot) + sum of flight service_ns, to the nanosecond.
  EXPECT_TRUE(shard->Find("reconciled")->AsBool());
  EXPECT_EQ(shard->Find("unattributed_ns")->AsInt(), 0);
  EXPECT_EQ(shard->Find("charged_ns")->AsInt(),
            shard->Find("control_ns")->AsInt() +
                shard->Find("flight_service_ns")->AsInt());
  EXPECT_GT(shard->Find("flight_service_ns")->AsInt(), 0);
  EXPECT_GT(shard->Find("control_ns")->AsInt(), 0);  // the Plot extractions
}

TEST_F(FlightTest, WorkerPoolFlightsStillReconcile) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  Boot(server);

  std::vector<vl::StatusOr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(server.Connect());
    ASSERT_TRUE(clients.back().ok());
    ASSERT_TRUE((*clients.back())->Plot(1, Fig("fig3_4")).ok());
  }
  std::vector<Ticket> tickets;
  for (auto& client : clients) {
    auto ticket = (*client)->SubmitRefresh(1);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  server.Drain();
  for (Ticket& ticket : tickets) {
    ASSERT_TRUE(ticket.Wait().ok());
  }

  // Per-shard service sums reconcile even when workers raced: every charge
  // happened under the shard lock and was stamped into exactly one flight.
  vl::Json doc = server.ExportFlights();
  EXPECT_TRUE(
      doc.Find("metadata")->Find("shards")->Find("k0")->Find("reconciled")->AsBool());
  // The overlapping fleet coalesced: exactly one executed flight.
  FlightStats stats = server.flights().ShardStats("k0");
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.dedup_hits, 3u);
}

// ---------------------------------------------------------------------------
// Chrome export

TEST_F(FlightTest, ChromeExportEmitsOneFlowPairPerDedupHit) {
  Server server;
  Boot(server);
  std::vector<vl::StatusOr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(server.Connect());
    ASSERT_TRUE(clients.back().ok());
    ASSERT_TRUE((*clients.back())->Plot(1, Fig("fig3_4")).ok());
    ASSERT_TRUE((*clients.back())->Refresh(1).ok());  // 1 cold + 3 dedup
  }

  vl::Json doc = server.ExportFlights();
  int slices = 0, starts = 0, finishes = 0, metadata = 0;
  for (const vl::Json& event : doc.Find("traceEvents")->items()) {
    const std::string& ph = event.Find("ph")->AsString();
    if (ph == "X") slices++;
    if (ph == "s") starts++;
    if (ph == "f") finishes++;
    if (ph == "M") metadata++;
  }
  EXPECT_EQ(slices, 4);    // one span per flight
  EXPECT_EQ(starts, 3);    // one flow arrow per coalesced request...
  EXPECT_EQ(finishes, 3);  // ...from the leader's completion to the follower
  EXPECT_EQ(metadata, 2);  // process_name for the shard + thread_name inline
  EXPECT_EQ(doc.Find("metadata")->Find("clock")->AsString(), "virtual");
}

// ---------------------------------------------------------------------------
// Ring bounds + kill switch

TEST_F(FlightTest, RingEvictionKeepsNewestN) {
  ServerConfig config;
  config.flight_records = 4;
  Server server(config);
  Boot(server, "k0", dbg::LatencyModel::Free());
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*client)->Refresh(1).ok());
  }

  EXPECT_EQ(server.flights().recorded(), 8u);
  EXPECT_EQ(server.flights().dropped(), 4u);
  std::vector<FlightRecord> flights = server.flights().Snapshot();
  ASSERT_EQ(flights.size(), 4u);
  // Oldest shed first: the ring holds the newest four ids, oldest first.
  for (size_t i = 0; i < flights.size(); ++i) {
    EXPECT_EQ(flights[i].request_id, 5u + i);
  }
  // The histograms survive eviction — they saw all eight flights.
  EXPECT_EQ(server.flights().ShardStats("k0").completed, 8u);
}

TEST_F(FlightTest, DisabledRecorderStampsNothing) {
  ServerConfig config;
  config.flight_recorder = false;
  Server server(config);
  Boot(server);
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());

  auto result = (*client)->Refresh(1);
  ASSERT_TRUE(result.ok());  // serving is unaffected by the kill switch
  EXPECT_FALSE(result->render.empty());
  EXPECT_EQ(result->request_id, 0u);  // 0 = "not recorded"
  EXPECT_FALSE(server.flights().enabled());
  EXPECT_EQ(server.flights().recorded(), 0u);
  EXPECT_TRUE(server.flights().Snapshot().empty());
}

// ---------------------------------------------------------------------------
// Admission rules

TEST_F(FlightTest, BudgetRejectionRecordsRule) {
  SessionOptions options;
  options.session_budget_ns = 1;
  Server server;
  Boot(server);
  auto client = server.Connect(options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());
  // Step so the refresh re-extracts (a warm memo replay would charge 0 ns
  // and never trip the budget).
  server.shard_workload("k0")->Step();
  ASSERT_TRUE((*client)->Refresh(1).ok());  // charges >= 1 ns
  ASSERT_GT((*client)->charged_ns(), 0u);
  auto rejected = (*client)->Refresh(1);
  ASSERT_FALSE(rejected.ok());

  std::vector<FlightRecord> flights = server.flights().Snapshot();
  ASSERT_EQ(flights.size(), 2u);
  const FlightRecord& flight = flights[1];
  EXPECT_EQ(flight.outcome, FlightOutcome::kAdmissionRejected);
  EXPECT_EQ(flight.admission_rule, "session_budget_ns");
  EXPECT_EQ(flight.service_ns, 0u);
  EXPECT_GT(flight.finished_ns, 0u);
  // Rejections are counted but kept out of the latency histograms.
  FlightStats stats = server.flights().SessionStats((*client)->id());
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(FlightTest, QueueFullRejectionRecordsRule) {
  SessionOptions options;
  options.max_queued = 1;
  Server server;
  Boot(server, "k0", dbg::LatencyModel::Free());
  auto client = server.Connect(options);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());

  server.Pause();
  auto queued = (*client)->SubmitRefresh(1);
  ASSERT_TRUE(queued.ok());
  auto rejected = (*client)->SubmitRefresh(1);
  EXPECT_FALSE(rejected.ok());
  server.Resume();
  ASSERT_TRUE(queued->Wait().ok());

  bool found = false;
  for (const FlightRecord& flight : server.flights().Snapshot()) {
    if (flight.outcome != FlightOutcome::kAdmissionRejected) {
      continue;
    }
    found = true;
    EXPECT_EQ(flight.admission_rule, "max_queued");
    EXPECT_EQ(flight.admitted_ns, 0u);  // never passed the queue gate
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// SLO ceilings

TEST_F(FlightTest, SloViolationAttachesOffendingFlight) {
  Server server;
  Boot(server);
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Plot(1, Fig("fig3_4")).ok());
  server.shard_workload("k0")->Step();  // force a real (charged) extraction

  server.flights().SetSlo("service", 1);  // any real extraction breaches it
  auto result = (*client)->Refresh(1);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->refresh_ns, 1u);

  EXPECT_GE(server.flights().slo_violations(), 1u);
  std::string report = server.flights().SloReportJson().Dump(2);
  EXPECT_NE(report.find("serve.slo.service_ns"), std::string::npos);
  // The offending flight record rides along as the explain payload.
  EXPECT_NE(report.find("\"request_id\""), std::string::npos);
  EXPECT_NE(report.find("\"outcome\""), std::string::npos);

  // Dedup hits have zero service time: no new violation.
  uint64_t before = server.flights().slo_violations();
  ASSERT_TRUE((*client)->Refresh(1).ok());
  EXPECT_EQ(server.flights().slo_violations(), before);

  // Clear() keeps the configured ceiling but drops the violations.
  server.flights().Clear();
  EXPECT_EQ(server.flights().slo_violations(), 0u);
  EXPECT_NE(server.flights().SloReportJson().Dump(0).find("serve.slo.service_ns"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// ResetStats coherence

TEST_F(FlightTest, ResetStatsClearsServeAccountingCoherently) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());
  server.shard_workload("k0")->Step();  // force a real (charged) extraction
  ASSERT_TRUE((*a)->Refresh(1).ok());
  ASSERT_TRUE((*b)->Refresh(1).ok());
  ASSERT_GT((*a)->charged_ns(), 0u);
  ASSERT_GT(server.flights().recorded(), 0u);

  server.ResetStats();

  EXPECT_EQ((*a)->charged_ns(), 0u);
  EXPECT_EQ((*a)->executed(), 0u);
  EXPECT_EQ((*b)->deduped(), 0u);
  EXPECT_EQ(server.flights().recorded(), 0u);
  EXPECT_TRUE(server.flights().Snapshot().empty());
  vl::Json doc = server.ExportFlights();
  const vl::Json* shard = doc.Find("metadata")->Find("shards")->Find("k0");
  EXPECT_EQ(shard->Find("charged_ns")->AsInt(), 0);
  EXPECT_EQ(shard->Find("control_ns")->AsInt(), 0);
  EXPECT_TRUE(shard->Find("reconciled")->AsBool());

  // A fresh epoch of traffic reconciles from zero: the reset rebased the
  // shard clock and the per-session counters together.
  server.shard_workload("k0")->Step();
  ASSERT_TRUE((*a)->Refresh(1).ok());
  doc = server.ExportFlights();
  shard = doc.Find("metadata")->Find("shards")->Find("k0");
  EXPECT_TRUE(shard->Find("reconciled")->AsBool());
  EXPECT_GT(shard->Find("flight_service_ns")->AsInt(), 0);
  EXPECT_EQ(server.flights().recorded(), 1u);
}

// ---------------------------------------------------------------------------
// Shell commands + publish-on-export

TEST_F(FlightTest, PromExportPublishesServeGaugesItself) {
  vl::MetricsRegistry::Instance().Reset();
  Server server;
  Boot(server);
  auto client = server.Connect();
  ASSERT_TRUE(client.ok());
  DebuggerShell shell((*client).session());
  ASSERT_NE(shell.Execute(std::string("vplot 1 ") + Fig("fig3_4")).find("plotted"),
            std::string::npos);
  shell.Execute("vctrl refresh 1");

  // No manual PublishMetrics(): the exporter snapshots the serve layer.
  std::string prom = shell.Execute("vctrl export prom");
  EXPECT_NE(prom.find("vl_serve_flights_recorded"), std::string::npos);
  EXPECT_NE(prom.find("vl_serve_shard_k0_queue_depth"), std::string::npos);
  EXPECT_NE(prom.find("vl_serve_shard_k0_p99_service_ns"), std::string::npos);
}

TEST_F(FlightTest, FlightsAndTopCommands) {
  Server server;
  Boot(server);
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  DebuggerShell shell((*a).session());
  ASSERT_TRUE((*a)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*b)->Plot(1, Fig("fig3_4")).ok());
  ASSERT_TRUE((*a)->Refresh(1).ok());
  ASSERT_TRUE((*b)->Refresh(1).ok());

  std::string flights = shell.Execute("vctrl flights");
  EXPECT_NE(flights.find("req"), std::string::npos);
  EXPECT_NE(flights.find("dedup-hit->1"), std::string::npos);
  std::string json = shell.Execute("vctrl flights json");
  EXPECT_NE(json.find("\"flights\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
  // `vctrl flights 1` trims to the newest record.
  std::string newest = shell.Execute("vctrl flights 1");
  EXPECT_EQ(newest.find("cold"), std::string::npos);
  EXPECT_NE(newest.find("dedup-hit"), std::string::npos);

  std::string top = shell.Execute("vctrl top");
  EXPECT_NE(top.find("k0"), std::string::npos);
  EXPECT_NE(top.find("p99_service_ns"), std::string::npos);
  std::string top_json = shell.Execute("vctrl top json");
  EXPECT_NE(top_json.find("\"dedup_ratio\""), std::string::npos);

  // The merged stats report carries the decomposition.
  EXPECT_NE(shell.Execute("vctrl stats").find("flights"), std::string::npos);
  std::string stats_json = shell.Execute("vctrl stats json");
  EXPECT_NE(stats_json.find("\"flights\""), std::string::npos);
  EXPECT_NE(stats_json.find("\"control_ns\""), std::string::npos);

  // SLO round trip through the shell.
  EXPECT_NE(shell.Execute("vctrl slo set service 1").find("slo service_ns = 1 ns"),
            std::string::npos);
  server.shard_workload("k0")->Step();
  ASSERT_TRUE((*a)->Refresh(1).ok());
  EXPECT_NE(shell.Execute("vctrl slo report").find("serve.slo.service_ns"),
            std::string::npos);
  EXPECT_NE(shell.Execute("vctrl slo clear").find("cleared"), std::string::npos);

  // The chrome export merges the span trace with the flight tracks.
  std::string chrome = shell.Execute("vctrl export chrome");
  EXPECT_NE(chrome.find("traceEvents"), std::string::npos);
  EXPECT_NE(chrome.find("\"serve\""), std::string::npos);
  std::string flights_doc = shell.Execute("vctrl export flights");
  EXPECT_NE(flights_doc.find("\"reconciled\""), std::string::npos);
}

}  // namespace
}  // namespace vserve
