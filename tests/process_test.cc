// Process-management tests: fork/thread/exit semantics, pid hash, process
// tree, mm/VMA lifecycle, signals, reverse map.

#include "src/vkern/process.h"

#include <gtest/gtest.h>

#include "src/vkern/kernel.h"
#include "tests/test_util.h"

namespace vkern {
namespace {

using vltest::KernelTest;

class ProcessTest : public KernelTest {};

TEST_F(ProcessTest, BootCreatesIdleAndInit) {
  EXPECT_EQ(kernel_->procs().init_task()->pid, 0);
  EXPECT_STREQ(kernel_->procs().init_task()->comm, "swapper/0");
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  ASSERT_NE(init, nullptr);
  EXPECT_STREQ(init->comm, "init");
  EXPECT_EQ(init->parent, kernel_->procs().init_task());
}

TEST_F(ProcessTest, ForkBuildsProcessTree) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* child = kernel_->procs().CreateTask("child", init, 0, 0);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent, init);
  EXPECT_EQ(child->tgid, child->pid);
  // The child appears in init's children list.
  bool found = false;
  VKERN_LIST_FOR_EACH(pos, &init->children) {
    if (VKERN_CONTAINER_OF(pos, task_struct, sibling) == child) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(kernel_->procs().FindTaskByPid(child->pid), child);
}

TEST_F(ProcessTest, ForkGetsFreshMmWithStandardLayout) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* child = kernel_->procs().CreateTask("child", init, 0, 0);
  ASSERT_NE(child->mm, nullptr);
  EXPECT_NE(child->mm, init->mm);
  EXPECT_EQ(child->mm->map_count, 4);  // code, data, heap, stack
  vm_area_struct* code = kernel_->procs().FindVma(child->mm, kCodeStart);
  ASSERT_NE(code, nullptr);
  EXPECT_TRUE(code->vm_flags & VM_EXEC);
  vm_area_struct* stack = kernel_->procs().FindVma(child->mm, child->mm->start_stack);
  ASSERT_NE(stack, nullptr);
  EXPECT_TRUE(stack->vm_flags & VM_GROWSDOWN);
}

TEST_F(ProcessTest, ThreadsShareMmFilesSignal) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* leader = kernel_->procs().CreateTask("leader", init, 0, 0);
  task_struct* thread = kernel_->procs().CreateThread(leader, "worker", 1);
  ASSERT_NE(thread, nullptr);
  EXPECT_EQ(thread->mm, leader->mm);
  EXPECT_EQ(thread->files, leader->files);
  EXPECT_EQ(thread->signal, leader->signal);
  EXPECT_EQ(thread->sighand, leader->sighand);
  EXPECT_EQ(thread->tgid, leader->pid);
  EXPECT_NE(thread->pid, leader->pid);
  EXPECT_EQ(thread->group_leader, leader);
  EXPECT_EQ(leader->signal->nr_threads, 2);
  EXPECT_EQ(leader->mm->mm_users.counter, 2);
}

TEST_F(ProcessTest, PidHashChainsCollisions) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  // Create enough tasks that two must share a bucket (64 buckets).
  task_struct* last = nullptr;
  for (int i = 0; i < 70; ++i) {
    last = kernel_->procs().CreateTask("many", init, 0, i % kNrCpus);
  }
  ASSERT_NE(last, nullptr);
  // Each pid still resolves to its own task.
  EXPECT_EQ(kernel_->procs().FindTaskByPid(last->pid), last);
  EXPECT_EQ(kernel_->procs().FindTaskByPid(last->pid - kPidHashSize)->pid,
            last->pid - kPidHashSize);
}

TEST_F(ProcessTest, ExitReparentsChildrenToInit) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* parent = kernel_->procs().CreateTask("parent", init, 0, 0);
  task_struct* child = kernel_->procs().CreateTask("orphan", parent, 0, 0);
  kernel_->procs().ExitTask(parent, 0);
  EXPECT_EQ(child->parent, init);
  EXPECT_EQ(parent->__state, static_cast<uint32_t>(TASK_DEAD));
  EXPECT_NE(parent->exit_state, 0);
  EXPECT_EQ(parent->mm, nullptr);
}

TEST_F(ProcessTest, ReapReleasesPid) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("gone", init, 0, 0);
  int pid = t->pid;
  kernel_->procs().ExitTask(t, 3);
  EXPECT_NE(kernel_->procs().FindTaskByPid(pid), nullptr);
  kernel_->procs().ReapTask(t);
  EXPECT_EQ(kernel_->procs().FindTaskByPid(pid), nullptr);
}

TEST_F(ProcessTest, MmapPicksFreeRangesAboveMmapBase) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("mapper", init, 0, 0);
  vm_area_struct* a = kernel_->procs().Mmap(t->mm, 0x4000, VM_READ | VM_WRITE | VM_ANON,
                                            nullptr, 0);
  vm_area_struct* b = kernel_->procs().Mmap(t->mm, 0x4000, VM_READ | VM_WRITE | VM_ANON,
                                            nullptr, 0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(a->vm_start, kMmapBase);
  EXPECT_NE(a->vm_start, b->vm_start);
  // Non-overlap.
  EXPECT_TRUE(a->vm_end <= b->vm_start || b->vm_end <= a->vm_start);
  EXPECT_EQ(t->mm->map_count, 6);
}

TEST_F(ProcessTest, MunmapRemovesVma) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("mapper", init, 0, 0);
  vm_area_struct* a =
      kernel_->procs().Mmap(t->mm, 0x4000, VM_READ | VM_WRITE | VM_ANON, nullptr, 0);
  uint64_t start = a->vm_start;
  EXPECT_TRUE(kernel_->procs().Munmap(t->mm, start));
  EXPECT_EQ(kernel_->procs().FindVma(t->mm, start), nullptr);
  EXPECT_FALSE(kernel_->procs().Munmap(t->mm, start));
  std::string why;
  EXPECT_TRUE(kernel_->maple().Validate(&t->mm->mm_mt, &why)) << why;
}

TEST_F(ProcessTest, AnonVmaReverseMapWiring) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("rmap", init, 0, 0);
  vm_area_struct* vma =
      kernel_->procs().Mmap(t->mm, 0x3000, VM_READ | VM_WRITE | VM_ANON, nullptr, 0);
  ASSERT_NE(vma, nullptr);
  ASSERT_NE(vma->anon_vma_, nullptr);
  page* pg = kernel_->procs().FaultAnonPage(vma, vma->vm_start + kPageSize);
  ASSERT_NE(pg, nullptr);
  // PAGE_MAPPING_ANON tag set.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(pg->mapping) & 1u, 1u);
  auto* av = reinterpret_cast<anon_vma*>(reinterpret_cast<uintptr_t>(pg->mapping) & ~1ull);
  EXPECT_EQ(av, vma->anon_vma_);
  EXPECT_EQ(pg->index, 1u);
  // The interval tree leads back to the VMA.
  rb_node* first = rb_first_cached(&av->rb_root_);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(VKERN_CONTAINER_OF(first, anon_vma_chain, rb)->vma, vma);
}

TEST_F(ProcessTest, SignalDeliveryQueuesAndDrains) {
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("sig", init, 0, 0);
  kernel_->procs().SetSigaction(t, 2, KernelTestSigHandler1(), 0);
  EXPECT_TRUE(kernel_->procs().SendSignal(t, 2, 1));
  EXPECT_TRUE(kernel_->procs().SendSignal(t, 10, 1));
  EXPECT_EQ(t->pending.signal.sig, (1ull << 1) | (1ull << 9));
  EXPECT_EQ(kernel_->procs().DequeueSignal(t), 2);
  EXPECT_EQ(t->pending.signal.sig, 1ull << 9);
  EXPECT_EQ(kernel_->procs().DequeueSignal(t), 10);
  EXPECT_EQ(kernel_->procs().DequeueSignal(t), 0);
  EXPECT_EQ(t->sighand->action[1].sa.sa_handler_fn, KernelTestSigHandler1());
}

TEST_F(ProcessTest, TaskCountTracksGlobalList) {
  int before = kernel_->procs().task_count();
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  task_struct* t = kernel_->procs().CreateTask("counted", init, 0, 0);
  EXPECT_EQ(kernel_->procs().task_count(), before + 1);
  kernel_->procs().ExitTask(t, 0);
  kernel_->procs().ReapTask(t);
  EXPECT_EQ(kernel_->procs().task_count(), before);
}

}  // namespace
}  // namespace vkern
