// Buddy allocator tests: split/coalesce behaviour, alignment, accounting.

#include "src/vkern/buddy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/support/rng.h"

namespace vkern {
namespace {

class BuddyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_ = std::make_unique<Arena>(16ull << 20);
    buddy_ = std::make_unique<BuddyAllocator>(arena_.get());
  }

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<BuddyAllocator> buddy_;
};

TEST_F(BuddyTest, FreshZoneValidates) {
  EXPECT_TRUE(buddy_->Validate());
  EXPECT_GT(buddy_->free_pages(), 1000u);
  EXPECT_EQ(buddy_->free_pages(), buddy_->nr_pool_pages());
}

TEST_F(BuddyTest, AllocFreeSinglePage) {
  uint64_t before = buddy_->free_pages();
  page* pg = buddy_->AllocPage();
  ASSERT_NE(pg, nullptr);
  EXPECT_EQ(buddy_->free_pages(), before - 1);
  EXPECT_EQ(pg->refcount, 1);
  EXPECT_EQ(pg->flags & PG_buddy, 0u);
  buddy_->FreePage(pg);
  EXPECT_EQ(buddy_->free_pages(), before);
  EXPECT_TRUE(buddy_->Validate());
}

TEST_F(BuddyTest, PageAddressRoundTrip) {
  page* pg = buddy_->AllocPage();
  void* addr = buddy_->PageAddress(pg);
  EXPECT_EQ(buddy_->VirtToPage(addr), pg);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(addr) & (kPageSize - 1), 0u);
  buddy_->FreePage(pg);
}

TEST_F(BuddyTest, HighOrderBlocksAreAligned) {
  for (int order = 1; order <= 6; ++order) {
    page* pg = buddy_->AllocPages(order);
    ASSERT_NE(pg, nullptr);
    uint64_t addr = reinterpret_cast<uint64_t>(buddy_->PageAddress(pg));
    EXPECT_EQ(addr & ((kPageSize << order) - 1), 0u) << "order " << order;
    buddy_->FreePages(pg, order);
  }
  EXPECT_TRUE(buddy_->Validate());
}

TEST_F(BuddyTest, CoalescingRestoresLargeBlocks) {
  uint64_t initial_free = buddy_->free_pages();
  std::vector<page*> pages;
  for (int i = 0; i < 256; ++i) {
    pages.push_back(buddy_->AllocPage());
  }
  for (page* pg : pages) {
    buddy_->FreePage(pg);
  }
  EXPECT_EQ(buddy_->free_pages(), initial_free);
  EXPECT_TRUE(buddy_->Validate());
  // After full free, a max-order allocation must succeed again.
  page* big = buddy_->AllocPages(kMaxOrder - 1);
  EXPECT_NE(big, nullptr);
  buddy_->FreePages(big, kMaxOrder - 1);
}

TEST_F(BuddyTest, ExhaustionReturnsNull) {
  std::vector<page*> taken;
  while (true) {
    page* pg = buddy_->AllocPages(4);
    if (pg == nullptr) {
      break;
    }
    taken.push_back(pg);
  }
  // No block of order >= 4 can remain (only sub-order tail/head fragments).
  for (int order = 4; order < kMaxOrder; ++order) {
    EXPECT_EQ(buddy_->zone_desc()->free_area_[order].nr_free, 0u) << "order " << order;
  }
  for (page* pg : taken) {
    buddy_->FreePages(pg, 4);
  }
  EXPECT_TRUE(buddy_->Validate());
}

TEST_F(BuddyTest, RandomAllocFreeStress) {
  vl::Rng rng(11);
  std::vector<std::pair<page*, int>> live;
  for (int round = 0; round < 3000; ++round) {
    if (live.empty() || rng.NextChance(3, 5)) {
      int order = static_cast<int>(rng.NextBelow(5));
      page* pg = buddy_->AllocPages(order);
      if (pg != nullptr) {
        live.emplace_back(pg, order);
      }
    } else {
      size_t idx = rng.NextBelow(live.size());
      buddy_->FreePages(live[idx].first, live[idx].second);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (auto& [pg, order] : live) {
    buddy_->FreePages(pg, order);
  }
  EXPECT_TRUE(buddy_->Validate());
  EXPECT_EQ(buddy_->free_pages(), buddy_->nr_pool_pages());
}

TEST_F(BuddyTest, ZoneDescriptorLivesInArena) {
  EXPECT_TRUE(arena_->ContainsPtr(buddy_->zone_desc(), sizeof(zone)));
  EXPECT_TRUE(arena_->ContainsPtr(buddy_->mem_map(), sizeof(page)));
  EXPECT_STREQ(buddy_->zone_desc()->name, "Normal");
}

}  // namespace
}  // namespace vkern
