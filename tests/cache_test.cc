// ReadSession block-cache correctness: hit/miss accounting, LRU eviction,
// block-boundary reads, epoch invalidation on kernel mutation, fallback at
// unreadable boundaries, and the determinism contract — cached and uncached
// extractions must produce byte-identical render output.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/dbg/read_session.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "tests/test_util.h"

namespace dbg {
namespace {

// A flat buffer memory domain with a controllable generation counter.
class FlatMemory : public MemoryDomain {
 public:
  explicit FlatMemory(size_t size) : bytes_(size) {
    for (size_t i = 0; i < size; ++i) {
      bytes_[i] = static_cast<uint8_t>(i * 31 + 7);
    }
  }
  bool ReadBytes(uint64_t addr, void* out, size_t len) const override {
    if (addr + len > bytes_.size()) {
      return false;
    }
    std::memcpy(out, bytes_.data() + addr, len);
    return true;
  }
  uint64_t generation() const override { return generation_; }

  void Poke(uint64_t addr, uint8_t value) { bytes_[addr] = value; }
  void Bump() { ++generation_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t generation_ = 0;
};

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : memory_(1 << 16), target_(&memory_, LatencyModel::GdbQemu()) {}

  FlatMemory memory_;
  Target target_;
};

TEST_F(CacheTest, MissFetchesBlockThenHitsAreFree) {
  ReadSession session(&target_, CacheConfig{256, 64});
  uint64_t before = target_.clock().nanos();

  // First read: one 256-byte block fetch (one transport round trip).
  auto v1 = session.ReadUnsigned(0x100, 8);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(target_.reads(), 1u);
  EXPECT_EQ(target_.bytes_read(), 256u);
  uint64_t after_miss = target_.clock().nanos();
  EXPECT_GT(after_miss, before);

  // Every field in the same block [0x100, 0x200): zero additional charges.
  for (uint64_t off = 0; off < 256; off += 8) {
    ASSERT_TRUE(session.ReadUnsigned(0x100 + off, 8).ok());
  }
  EXPECT_EQ(target_.reads(), 1u);
  EXPECT_EQ(target_.clock().nanos(), after_miss);

  const CacheStats& stats = session.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.hit_bytes, 32u * 8u);
  EXPECT_EQ(stats.block_fetches, 1u);
  EXPECT_EQ(stats.fetched_bytes, 256u);
}

TEST_F(CacheTest, CachedBytesMatchDirectReads) {
  ReadSession session(&target_, CacheConfig{256, 64});
  for (uint64_t addr : {0ull, 1ull, 255ull, 256ull, 300ull, 511ull, 1000ull}) {
    for (size_t len : {1, 2, 4, 8}) {
      uint64_t via_cache = 0;
      uint64_t direct = 0;
      ASSERT_TRUE(session.ReadBytes(addr, &via_cache, len).ok());
      ASSERT_TRUE(target_.ReadBytes(addr, &direct, len).ok());
      EXPECT_EQ(via_cache, direct) << "addr=" << addr << " len=" << len;
    }
  }
}

TEST_F(CacheTest, BlockBoundaryReadSpansTwoBlocks) {
  ReadSession session(&target_, CacheConfig{256, 64});
  uint8_t buf[16];
  // [0xf8, 0x108) straddles the 0x100 block boundary.
  ASSERT_TRUE(session.ReadBytes(0xf8, buf, sizeof(buf)).ok());
  EXPECT_EQ(target_.reads(), 2u);  // one fetch per block
  EXPECT_EQ(session.cache_stats().misses, 2u);
  uint8_t direct[16];
  ASSERT_TRUE(target_.ReadBytes(0xf8, direct, sizeof(direct)).ok());
  EXPECT_EQ(std::memcmp(buf, direct, sizeof(buf)), 0);
}

TEST_F(CacheTest, LruEvictsColdestBlockAtCapacity) {
  ReadSession session(&target_, CacheConfig{256, 2});
  ASSERT_TRUE(session.ReadUnsigned(0 * 256, 8).ok());    // block 0
  ASSERT_TRUE(session.ReadUnsigned(1 * 256, 8).ok());    // block 1
  EXPECT_EQ(session.cached_blocks(), 2u);
  ASSERT_TRUE(session.ReadUnsigned(0 * 256, 8).ok());    // touch 0: 1 is coldest
  ASSERT_TRUE(session.ReadUnsigned(2 * 256, 8).ok());    // block 2 evicts 1
  EXPECT_EQ(session.cached_blocks(), 2u);
  EXPECT_EQ(session.cache_stats().evictions, 1u);

  uint64_t reads_before = target_.reads();
  ASSERT_TRUE(session.ReadUnsigned(0 * 256, 8).ok());    // still cached
  EXPECT_EQ(target_.reads(), reads_before);
  ASSERT_TRUE(session.ReadUnsigned(1 * 256, 8).ok());    // was evicted: refetch
  EXPECT_EQ(target_.reads(), reads_before + 1);
}

TEST_F(CacheTest, EpochBumpDropsStaleBlocks) {
  ReadSession session(&target_, CacheConfig{256, 64});
  ASSERT_TRUE(session.ReadUnsigned(0x40, 1).ok());
  memory_.Poke(0x40, 0xEE);

  // Without a generation bump the stale cached byte is served (the contract:
  // out-of-band mutators must bump or invalidate).
  auto stale = session.ReadUnsigned(0x40, 1);
  ASSERT_TRUE(stale.ok());
  EXPECT_NE(*stale, 0xEEu);

  memory_.Bump();
  auto fresh = session.ReadUnsigned(0x40, 1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, 0xEEu);
  EXPECT_EQ(session.cache_stats().invalidations, 1u);
  EXPECT_EQ(session.cached_blocks(), 1u);  // refetched after the flush
}

TEST_F(CacheTest, UnreadableBlockFallsBackToDirectRead) {
  // 1000 bytes of memory: the block containing the tail ([768, 1024)) runs
  // off the edge, so the block fetch fails and the session must fall back to
  // an exact-range read.
  FlatMemory memory(1000);
  Target target(&memory, LatencyModel::GdbQemu());
  ReadSession session(&target, CacheConfig{256, 64});
  auto v = session.ReadUnsigned(992, 8);
  ASSERT_TRUE(v.ok());
  uint64_t direct = 0;
  ASSERT_TRUE(target.ReadBytes(992, &direct, 8).ok());
  EXPECT_EQ(*v, direct);
  EXPECT_EQ(session.cache_stats().uncached_reads, 1u);
  EXPECT_EQ(session.cached_blocks(), 0u);
  // Fully out-of-bounds reads still error.
  EXPECT_FALSE(session.ReadUnsigned(4096, 8).ok());
}

TEST_F(CacheTest, DisabledConfigIsPassthrough) {
  ReadSession session(&target_, CacheConfig::Disabled());
  EXPECT_FALSE(session.cache_enabled());
  ASSERT_TRUE(session.ReadUnsigned(0x100, 8).ok());
  ASSERT_TRUE(session.ReadUnsigned(0x100, 8).ok());
  EXPECT_EQ(target_.reads(), 2u);          // every read hits the transport
  EXPECT_EQ(target_.bytes_read(), 16u);    // exact sizes, no block rounding
  EXPECT_EQ(session.cache_stats().hits, 0u);
  EXPECT_EQ(session.cache_stats().misses, 0u);
}

TEST_F(CacheTest, ReconfigureSwapsGranularityAndDropsBlocks) {
  ReadSession session(&target_, CacheConfig{256, 64});
  ASSERT_TRUE(session.ReadUnsigned(0x100, 8).ok());
  EXPECT_EQ(session.cached_blocks(), 1u);
  session.Reconfigure(CacheConfig{64, 8});
  EXPECT_EQ(session.cached_blocks(), 0u);
  ASSERT_TRUE(session.ReadUnsigned(0x100, 8).ok());
  EXPECT_EQ(target_.bytes_read(), 256u + 64u);
  // Non-power-of-two block sizes round up.
  session.Reconfigure(CacheConfig{100, 8});
  EXPECT_EQ(session.config().block_bytes, 128u);
}

TEST_F(CacheTest, PrefetchObjectPullsWholeStructInBlockRequests) {
  vkern::Kernel kernel;
  KernelDebugger debugger(&kernel, LatencyModel::GdbQemu());
  const Type* task = debugger.types().FindByName("task_struct");
  ASSERT_NE(task, nullptr);
  uint64_t addr = reinterpret_cast<uint64_t>(kernel.procs().init_task());

  debugger.target().ResetStats();
  debugger.session().InvalidateAll();
  debugger.session().PrefetchObject(addr, task);
  size_t block = debugger.session().config().block_bytes;
  size_t expected = (addr + task->size + block - 1) / block - addr / block;
  EXPECT_EQ(debugger.target().reads(), expected);  // ceil over spanned blocks

  // Walking every scalar field afterwards costs nothing extra.
  uint64_t reads_after_prefetch = debugger.target().reads();
  for (const Field& field : task->fields) {
    if (field.type->IsScalar()) {
      ASSERT_TRUE(debugger.session().ReadUnsigned(addr + field.offset,
                                                  field.type->size).ok());
    }
  }
  EXPECT_EQ(debugger.target().reads(), reads_after_prefetch);
  EXPECT_EQ(debugger.session().cache_stats().prefetches, 1u);
}

TEST_F(CacheTest, CStringReadsThroughCache) {
  vkern::Kernel kernel;
  KernelDebugger debugger(&kernel, LatencyModel::GdbQemu());
  vkern::task_struct* init = kernel.procs().init_task();
  uint64_t comm_addr = reinterpret_cast<uint64_t>(init->comm);

  auto direct = debugger.target().ReadCString(comm_addr, sizeof(init->comm));
  ASSERT_TRUE(direct.ok());
  auto cached = debugger.session().ReadCString(comm_addr, sizeof(init->comm));
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, *direct);

  // Re-reading the same string is free.
  uint64_t reads_before = debugger.target().reads();
  ASSERT_TRUE(debugger.session().ReadCString(comm_addr, sizeof(init->comm)).ok());
  EXPECT_EQ(debugger.target().reads(), reads_before);
}

// --- end-to-end: cache on vs off over real extractions ----------------------

class CacheKernelTest : public vltest::WorkloadKernelTest {};

// The determinism contract in one assertion: for every figure, a cached
// extraction renders byte-identically to an uncached one.
TEST_F(CacheKernelTest, CachedAndUncachedRendersAreByteIdentical) {
  KernelDebugger cached(kernel_.get(), LatencyModel::GdbQemu());
  KernelDebugger uncached(kernel_.get(), LatencyModel::GdbQemu(),
                          CacheConfig::Disabled());
  vision::RegisterFigureSymbols(&cached, workload_.get());
  vision::RegisterFigureSymbols(&uncached, workload_.get());
  vision::AsciiRenderer renderer;

  for (const vision::FigureDef& figure : vision::AllFigures()) {
    viewcl::Interpreter interp_cached(&cached);
    auto graph_cached = interp_cached.RunProgram(figure.viewcl);
    viewcl::Interpreter interp_uncached(&uncached);
    auto graph_uncached = interp_uncached.RunProgram(figure.viewcl);
    ASSERT_EQ(graph_cached.ok(), graph_uncached.ok()) << figure.id;
    if (!graph_cached.ok()) {
      continue;
    }
    EXPECT_EQ(renderer.Render(**graph_cached), renderer.Render(**graph_uncached))
        << figure.id;
  }
  EXPECT_GT(cached.session().cache_stats().hits, 0u);
  EXPECT_LT(cached.target().clock().nanos(), uncached.target().clock().nanos());
}

// A pane refresh after TickCpu must not render stale memory: the kernel's
// generation bump flushes the cache.
TEST_F(CacheKernelTest, TickCpuInvalidatesCachedExtraction) {
  KernelDebugger debugger(kernel_.get(), LatencyModel::Free());
  vision::RegisterFigureSymbols(&debugger, workload_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");
  ASSERT_NE(figure, nullptr);

  viewcl::Interpreter interp1(&debugger);
  ASSERT_TRUE(interp1.RunProgram(figure->viewcl).ok());
  ASSERT_GT(debugger.session().cached_blocks(), 0u);

  // Mutate through the kernel's official entry point...
  for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
    kernel_->TickCpu(cpu);
  }
  // ...and verify the refreshed extraction matches a cold-cache debugger's.
  viewcl::Interpreter interp2(&debugger);
  auto refreshed = interp2.RunProgram(figure->viewcl);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_GT(debugger.session().cache_stats().invalidations, 0u);

  KernelDebugger fresh(kernel_.get(), LatencyModel::Free());
  vision::RegisterFigureSymbols(&fresh, workload_.get());
  viewcl::Interpreter interp3(&fresh);
  auto cold = interp3.RunProgram(figure->viewcl);
  ASSERT_TRUE(cold.ok());
  vision::AsciiRenderer renderer;
  EXPECT_EQ(renderer.Render(**refreshed), renderer.Render(**cold));
}

}  // namespace
}  // namespace dbg
