// Incremental refresh correctness: the dirty-page journal over the arena,
// Target's charged dirty-log queries, ReadSession delta invalidation (with
// the all-dirty fallback), dirty-aware prefetch, viewcl memo replay, the
// pane render-digest cache — and the end-to-end contract that incremental
// refreshes render byte-identically to cold-cache extractions for every
// figure, across epoch skew.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/dbg/read_session.h"
#include "src/dbg/target.h"
#include "src/viewcl/interp.h"
#include "src/vision/figures.h"
#include "src/vision/panes.h"
#include "src/vision/render.h"
#include "src/vkern/kernel.h"
#include "src/vkern/page_journal.h"
#include "src/vkern/workload.h"
#include "tests/test_util.h"

namespace dbg {
namespace {

constexpr uint64_t kPage = 4096;

// --- the page-hash journal over the kernel arena ----------------------------

TEST(PageJournalTest, CleanAtAttachDirtyAfterMutation) {
  vkern::Kernel kernel;
  vkern::PageJournal journal(&kernel.arena(), kernel.generation());
  EXPECT_GT(journal.page_count(), 0u);

  // Attaching baselines every page at the attach generation: nothing is
  // dirty relative to it.
  EXPECT_TRUE(journal.DirtyPagesSince(kernel.generation(), kernel.generation()).empty());

  uint64_t attach_gen = kernel.generation();
  for (int cpu = 0; cpu < vkern::kNrCpus; ++cpu) {
    kernel.TickCpu(cpu);
  }
  std::vector<uint32_t> dirty = journal.DirtyPagesSince(attach_gen, kernel.generation());
  EXPECT_GT(dirty.size(), 0u) << "a tick mutates scheduler/timer pages";
  EXPECT_LT(dirty.size(), journal.page_count()) << "a tick must not touch everything";
}

TEST(PageJournalTest, RescansLazilyOncePerGeneration) {
  vkern::Kernel kernel;
  vkern::PageJournal journal(&kernel.arena(), kernel.generation());
  uint64_t scans_after_attach = journal.scans();

  // Same generation: answers come from the existing hashes, no rescan.
  (void)journal.DirtyPagesSince(0, kernel.generation());
  (void)journal.DirtyPagesSince(0, kernel.generation());
  EXPECT_EQ(journal.scans(), scans_after_attach);

  uint64_t attach_gen = kernel.generation();
  kernel.TickCpu(0);
  (void)journal.DirtyPagesSince(attach_gen, kernel.generation());
  EXPECT_EQ(journal.scans(), scans_after_attach + 1);
  (void)journal.DirtyPagesSince(attach_gen, kernel.generation());
  EXPECT_EQ(journal.scans(), scans_after_attach + 1);
}

// --- a flat memory domain with an exact dirty log ---------------------------

// FlatMemory plus a precise per-page dirty log, so delta invalidation can be
// unit-tested without a kernel: Mutate() is one epoch + one dirtied page.
class FlatDirtyMemory : public MemoryDomain {
 public:
  explicit FlatDirtyMemory(size_t size) : bytes_(size) {
    for (size_t i = 0; i < size; ++i) {
      bytes_[i] = static_cast<uint8_t>(i * 31 + 7);
    }
  }
  bool ReadBytes(uint64_t addr, void* out, size_t len) const override {
    if (addr + len > bytes_.size()) {
      return false;
    }
    std::memcpy(out, bytes_.data() + addr, len);
    return true;
  }
  uint64_t generation() const override { return generation_; }
  DirtyPageInfo DirtyPagesSince(uint64_t since_generation) const override {
    DirtyPageInfo info;
    info.supported = true;
    info.page_size = kPage;
    info.pages_total = bytes_.size() / kPage;
    info.pages_scanned = info.pages_total;
    for (const auto& [page, gen] : dirty_) {
      if (gen > since_generation) {
        info.dirty_pages.push_back(page * kPage);
      }
    }
    return info;
  }

  void Mutate(uint64_t addr, uint8_t value) {
    ++generation_;
    bytes_[addr] = value;
    dirty_[addr / kPage] = generation_;
  }
  void MutateAllPages() {
    ++generation_;
    for (uint64_t page = 0; page < bytes_.size() / kPage; ++page) {
      bytes_[page * kPage] ^= 0xFF;
      dirty_[page] = generation_;
    }
  }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t generation_ = 0;
  std::map<uint64_t, uint64_t> dirty_;  // page index -> last dirty generation
};

TEST(DeltaInvalidationTest, EvictsOnlyBlocksOnDirtyPages) {
  FlatDirtyMemory memory(16 * kPage);
  Target target(&memory, LatencyModel::Free());
  ReadSession session(&target, CacheConfig::Incremental());
  ASSERT_TRUE(session.delta_enabled());

  ASSERT_TRUE(session.ReadUnsigned(0, 8).ok());          // page 0
  ASSERT_TRUE(session.ReadUnsigned(2 * kPage, 8).ok());  // page 2
  EXPECT_EQ(target.reads(), 2u);

  memory.Mutate(0, 0xEE);

  // The clean page survives the epoch change: no refetch.
  ASSERT_TRUE(session.ReadUnsigned(2 * kPage, 8).ok());
  EXPECT_EQ(target.reads(), 2u);
  EXPECT_EQ(session.cache_stats().delta_invalidations, 1u);
  EXPECT_EQ(session.cache_stats().invalidations, 0u);
  EXPECT_GT(session.cache_stats().invalidated_bytes_delta, 0u);
  EXPECT_EQ(session.cache_stats().invalidated_bytes_full, 0u);

  // The dirty page was evicted: refetch sees the new byte.
  auto fresh = session.ReadUnsigned(0, 1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, 0xEEu);
  EXPECT_EQ(target.reads(), 3u);
}

TEST(DeltaInvalidationTest, AllPagesDirtyFallsBackToFullFlush) {
  FlatDirtyMemory memory(16 * kPage);
  Target target(&memory, LatencyModel::Free());
  ReadSession session(&target, CacheConfig::Incremental());

  for (uint64_t page = 0; page < 16; ++page) {
    ASSERT_TRUE(session.ReadUnsigned(page * kPage, 8).ok());
  }
  memory.MutateAllPages();

  // Dirty ratio 1.0 > max_dirty_ratio: one flush, not 16 pages of block
  // walking — and the legacy `invalidations` counter keeps its meaning.
  ASSERT_TRUE(session.ReadUnsigned(0, 1).ok());
  EXPECT_EQ(session.cache_stats().invalidations, 1u);
  EXPECT_EQ(session.cache_stats().delta_invalidations, 0u);
  EXPECT_GT(session.cache_stats().invalidated_bytes_full, 0u);

  // Every page refetches fresh bytes.
  auto v = session.ReadUnsigned(5 * kPage, 1);
  ASSERT_TRUE(v.ok());
  uint64_t direct = 0;
  ASSERT_TRUE(target.ReadBytes(5 * kPage, &direct, 1).ok());
  EXPECT_EQ(*v, direct);
}

TEST(DeltaInvalidationTest, DomainWithoutDirtyLogFallsBackToFullFlush) {
  // FlatDirtyMemory minus the override: DirtyPagesSince is unsupported.
  class PlainMemory : public MemoryDomain {
   public:
    bool ReadBytes(uint64_t addr, void* out, size_t len) const override {
      std::memset(out, static_cast<int>(addr & 0xFF), len);
      return true;
    }
    uint64_t generation() const override { return generation_; }
    void Bump() { ++generation_; }

   private:
    uint64_t generation_ = 0;
  };

  PlainMemory memory;
  Target target(&memory, LatencyModel::Free());
  ReadSession session(&target, CacheConfig::Incremental());
  ASSERT_TRUE(session.ReadUnsigned(0, 8).ok());
  memory.Bump();
  ASSERT_TRUE(session.ReadUnsigned(0, 8).ok());
  EXPECT_EQ(session.cache_stats().invalidations, 1u);
  EXPECT_EQ(session.cache_stats().delta_invalidations, 0u);
}

TEST(DeltaInvalidationTest, RangeCleanSinceTracksDirtyHistory) {
  FlatDirtyMemory memory(16 * kPage);
  Target target(&memory, LatencyModel::Free());
  ReadSession session(&target, CacheConfig::Incremental());
  uint64_t attach_epoch = session.epoch();

  memory.Mutate(3 * kPage + 100, 0xAB);
  EXPECT_EQ(session.SyncEpoch(), memory.generation());

  EXPECT_FALSE(session.RangeCleanSince(3 * kPage, 8, attach_epoch));
  EXPECT_TRUE(session.RangeCleanSince(5 * kPage, 8, attach_epoch));
  // A range straddling into the dirty page is dirty.
  EXPECT_FALSE(session.RangeCleanSince(3 * kPage - 4, 8, attach_epoch));
  // Relative to the current epoch everything is clean again.
  EXPECT_TRUE(session.RangeCleanSince(3 * kPage, 8, session.epoch()));
}

TEST(DeltaInvalidationTest, DirtyAwarePrefetchWarmsOnlyDirtyPages) {
  FlatDirtyMemory memory(16 * kPage);
  Target target(&memory, LatencyModel::Free());
  ReadSession session(&target, CacheConfig::Incremental());

  // A fake 2-page object type.
  Type object;
  object.name = "two_pages";
  object.size = 2 * kPage;

  session.PrefetchObject(0, &object);
  uint64_t reads_cold = target.reads();
  EXPECT_GT(reads_cold, 0u);

  // Dirty only the second page, then re-prefetch: only that page's blocks
  // refetch.
  memory.Mutate(kPage + 8, 0x55);
  session.PrefetchObject(0, &object);
  uint64_t blocks_per_page = kPage / session.config().block_bytes;
  EXPECT_EQ(target.reads(), reads_cold + blocks_per_page);
  EXPECT_EQ(session.cache_stats().delta_prefetches, 1u);

  // Clean re-prefetch: free.
  session.PrefetchObject(0, &object);
  EXPECT_EQ(target.reads(), reads_cold + blocks_per_page);
}

// --- charged dirty-log queries ----------------------------------------------

TEST(DirtyQueryTest, ChargesModelCostWithoutCountingReads) {
  FlatDirtyMemory memory(16 * kPage);
  LatencyModel model{"test", 1000, 10, 50'000};
  Target target(&memory, model);

  uint64_t before = target.clock().nanos();
  DirtyPageInfo info = target.DirtyPagesSince(0);
  ASSERT_TRUE(info.supported);
  EXPECT_EQ(info.pages_total, 16u);

  // One dirty-log round trip plus the bitmap payload (one bit per page).
  uint64_t bitmap_bytes = (info.pages_total + 7) / 8;
  EXPECT_EQ(target.clock().nanos() - before,
            model.dirty_query_ns + model.per_byte_ns * bitmap_bytes);
  EXPECT_EQ(target.reads(), 0u) << "dirty queries are not memory reads";
  EXPECT_EQ(target.dirty_stats().queries, 1u);
  EXPECT_EQ(target.dirty_stats().charged_ns,
            model.dirty_query_ns + model.per_byte_ns * bitmap_bytes);
}

TEST(DirtyQueryTest, UnsupportedDomainChargesNothing) {
  class PlainMemory : public MemoryDomain {
   public:
    bool ReadBytes(uint64_t, void* out, size_t len) const override {
      std::memset(out, 0, len);
      return true;
    }
    uint64_t generation() const override { return 0; }
  };
  PlainMemory memory;
  Target target(&memory, LatencyModel::GdbQemu());
  DirtyPageInfo info = target.DirtyPagesSince(0);
  EXPECT_FALSE(info.supported);
  EXPECT_EQ(target.clock().nanos(), 0u);
  EXPECT_EQ(target.dirty_stats().queries, 0u);
}

// --- workload epoch coalescing ----------------------------------------------

TEST(MutationBatchTest, OneWorkloadStepCostsOneEpoch) {
  vkern::Kernel kernel;
  vkern::WorkloadConfig config;
  config.steps = 1;
  vkern::Workload workload(&kernel, config);
  workload.Run();  // spawn + one step

  uint64_t before = kernel.generation();
  workload.Step();
  EXPECT_EQ(kernel.generation(), before + 1)
      << "a step's ops + per-CPU ticks must coalesce into one epoch";

  // Standalone TickCpu still bumps (the classic cache contract).
  before = kernel.generation();
  kernel.TickCpu(0);
  EXPECT_EQ(kernel.generation(), before + 1);
}

// --- end-to-end: incremental refresh vs cold cache --------------------------

class IncrementalKernelTest : public vltest::WorkloadKernelTest {};

// The headline contract: a long-lived incremental debugger (delta
// invalidation + memo replay), refreshed across workload steps, renders
// byte-identically to a cold-cache extraction — for every figure.
TEST_F(IncrementalKernelTest, IncrementalRendersMatchColdCacheForAllFigures) {
  KernelDebugger incremental(kernel_.get(), LatencyModel::Free(),
                             CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&incremental, workload_.get());
  vision::AsciiRenderer renderer;

  // One persistent interpreter per figure, so memo snapshots carry across
  // refreshes exactly like a pane's shared interpreter does.
  std::map<std::string, std::unique_ptr<viewcl::Interpreter>> interps;
  for (const vision::FigureDef& figure : vision::AllFigures()) {
    auto interp = std::make_unique<viewcl::Interpreter>(&incremental);
    ASSERT_TRUE(interp->Load(figure.viewcl).ok()) << figure.id;
    interps[figure.id] = std::move(interp);
  }

  for (int round = 0; round < 2; ++round) {
    if (round > 0) {
      workload_->Step();
    }
    KernelDebugger cold(kernel_.get(), LatencyModel::Free(), CacheConfig::Disabled());
    vision::RegisterFigureSymbols(&cold, workload_.get());
    for (const vision::FigureDef& figure : vision::AllFigures()) {
      auto inc_graph = interps[figure.id]->Run();
      viewcl::Interpreter cold_interp(&cold);
      auto cold_graph = cold_interp.RunProgram(figure.viewcl);
      ASSERT_EQ(inc_graph.ok(), cold_graph.ok()) << figure.id << " round " << round;
      if (!inc_graph.ok()) {
        continue;
      }
      EXPECT_EQ(renderer.Render(**inc_graph), renderer.Render(**cold_graph))
          << figure.id << " round " << round;
    }
  }
  // The steady-state rounds must actually exercise the incremental paths.
  EXPECT_GT(incremental.session().cache_stats().delta_invalidations, 0u);
  EXPECT_EQ(incremental.session().cache_stats().invalidations, 0u)
      << "a workload step dirties a small fraction of the arena";
}

TEST_F(IncrementalKernelTest, MemoReplaysCleanSubtreesOnRefresh) {
  KernelDebugger debugger(kernel_.get(), LatencyModel::Free(),
                          CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&debugger, workload_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);

  viewcl::Interpreter interp(&debugger);
  ASSERT_TRUE(interp.Load(figure->viewcl).ok());
  auto first = interp.Run();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(interp.memo_replays(), 0u);
  EXPECT_GT(interp.memo_misses(), 0u);

  // Nothing mutated: the whole graph replays from memo snapshots.
  auto second = interp.Run();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(interp.memo_replays(), 0u);
  vision::AsciiRenderer renderer;
  EXPECT_EQ(renderer.Render(**first), renderer.Render(**second));
}

// Epoch skew: multiple mutation epochs between refreshes (a pane left unre-
// freshed while the kernel runs) must still converge to the cold render.
TEST_F(IncrementalKernelTest, RefreshAfterMultipleEpochBumpsMatchesCold) {
  KernelDebugger debugger(kernel_.get(), LatencyModel::Free(),
                          CacheConfig::Incremental());
  vision::RegisterFigureSymbols(&debugger, workload_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig7_1");
  ASSERT_NE(figure, nullptr);

  viewcl::Interpreter interp(&debugger);
  ASSERT_TRUE(interp.Load(figure->viewcl).ok());
  ASSERT_TRUE(interp.Run().ok());

  uint64_t epoch_before = debugger.target().memory_generation();
  for (int i = 0; i < 3; ++i) {
    workload_->Step();
  }
  ASSERT_EQ(debugger.target().memory_generation(), epoch_before + 3);

  auto refreshed = interp.Run();
  ASSERT_TRUE(refreshed.ok());

  KernelDebugger cold(kernel_.get(), LatencyModel::Free(), CacheConfig::Disabled());
  vision::RegisterFigureSymbols(&cold, workload_.get());
  viewcl::Interpreter cold_interp(&cold);
  auto cold_graph = cold_interp.RunProgram(figure->viewcl);
  ASSERT_TRUE(cold_graph.ok());
  vision::AsciiRenderer renderer;
  EXPECT_EQ(renderer.Render(**refreshed), renderer.Render(**cold_graph));
}

// --- pane render-digest cache -----------------------------------------------

class RenderDigestTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<KernelDebugger>(kernel_.get());
    vision::RegisterFigureSymbols(debugger_.get(), workload_.get());
    interp_ = std::make_unique<viewcl::Interpreter>(debugger_.get());
  }

  std::unique_ptr<KernelDebugger> debugger_;
  std::unique_ptr<viewcl::Interpreter> interp_;
};

TEST_F(RenderDigestTest, UnchangedGraphSkipsReRender) {
  vision::PaneManager panes(debugger_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp_->Load(figure->viewcl).ok());
  auto graph = interp_->Run();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(panes.SetGraph(1, std::move(graph).value(), figure->viewcl).ok());

  auto replot = [this](const std::string& source)
      -> vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> {
    viewcl::Interpreter fresh(debugger_.get());
    return fresh.RunProgram(source);
  };

  // First refresh renders (empty cache); the second reproduces the same
  // graph, so its digest matches and the cached output is reused.
  auto r1 = panes.RefreshPane(1, replot);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->render_reused);
  auto r2 = panes.RefreshPane(1, replot);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->render_reused);
  EXPECT_EQ(panes.render_digest_hits(), 1u);

  // Identical output either way.
  std::string direct = panes.RenderPane(1);
  EXPECT_TRUE(panes.render_digest_hits() >= 2u);
  EXPECT_NE(direct.find("pid ="), std::string::npos);
}

TEST_F(RenderDigestTest, ViewQlUpdateChangesDigestAndReRenders) {
  vision::PaneManager panes(debugger_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp_->Load(figure->viewcl).ok());
  auto graph = interp_->Run();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(panes.SetGraph(1, std::move(graph).value(), figure->viewcl).ok());

  (void)panes.RenderPane(1);
  uint64_t misses_before = panes.render_digest_misses();

  // Mutating display attributes through ViewQL changes the digest: the next
  // render must not serve the stale cached output.
  ASSERT_TRUE(panes
                  .ApplyViewQl(1,
                               "a = SELECT task_struct FROM * WHERE pid == 1\n"
                               "UPDATE a WITH collapsed: true")
                  .ok());
  (void)panes.RenderPane(1);
  EXPECT_EQ(panes.render_digest_misses(), misses_before + 1);

  // Unchanged again: cached.
  uint64_t hits_before = panes.render_digest_hits();
  (void)panes.RenderPane(1);
  EXPECT_EQ(panes.render_digest_hits(), hits_before + 1);
}

TEST_F(RenderDigestTest, DifferentBackendsAndOptionsCacheSeparately) {
  vision::PaneManager panes(debugger_.get());
  const vision::FigureDef* figure = vision::FindFigure("fig3_4");
  ASSERT_NE(figure, nullptr);
  ASSERT_TRUE(interp_->Load(figure->viewcl).ok());
  auto graph = interp_->Run();
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(panes.SetGraph(1, std::move(graph).value(), figure->viewcl).ok());

  std::string ascii = panes.RenderPane(1);
  std::string dot = panes.RenderPane(1, vision::RenderOptions{}, "dot");
  vision::RenderOptions with_addrs;
  with_addrs.show_addresses = true;
  std::string addrs = panes.RenderPane(1, with_addrs);
  EXPECT_EQ(panes.render_digest_misses(), 3u) << "three distinct cache keys";
  EXPECT_NE(ascii, dot);
  EXPECT_NE(ascii, addrs);

  // Each key replays from its own slot.
  EXPECT_EQ(panes.RenderPane(1), ascii);
  EXPECT_EQ(panes.RenderPane(1, vision::RenderOptions{}, "dot"), dot);
  EXPECT_EQ(panes.render_digest_hits(), 2u);
}

}  // namespace
}  // namespace dbg
