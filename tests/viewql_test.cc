// ViewQL tests: SELECT/UPDATE semantics over live ViewCL graphs, including
// every query shape the paper's examples use (§2.3, §3.1, §5.2, §5.3).

#include <gtest/gtest.h>

#include "src/viewcl/interp.h"
#include "src/viewql/query.h"
#include "tests/test_util.h"

namespace viewql {
namespace {

class ViewQlTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    interp_ = std::make_unique<viewcl::Interpreter>(debugger_.get());
    // A task graph: every task on the global list, with its mm distilled.
    graph_ = Must(interp_->RunProgram(R"(
      define Vma as Box<vm_area_struct> [
        Text<u64:x> vm_start, vm_end
        Text<bool> is_writable: ${(@this.vm_flags & VM_WRITE) != 0}
      ]
      define Task as Box<task_struct> {
        :default [
          Text pid, comm
          Text ppid: ${@this.parent != NULL ? @this.parent->pid : 0}
        ]
        :default => :show_mm [
          Container vmas: Array.selectFrom(${&@this.mm->mm_mt}, Vma)
        ]
      }
      tasks = List(${&init_task.tasks}).forEach |node| {
        yield Task<task_struct.tasks>(@node)
      }
      plot @tasks
    )"));
    engine_ = std::make_unique<QueryEngine>(graph_.get(), debugger_.get());
  }

  std::unique_ptr<viewcl::ViewGraph> Must(
      vl::StatusOr<std::unique_ptr<viewcl::ViewGraph>> graph) {
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return std::move(graph).value();
  }

  void MustExec(std::string_view program) {
    vl::Status status = engine_->Execute(program);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  size_t SetSize(const std::string& name) {
    const BoxSet* set = engine_->FindSet(name);
    return set != nullptr ? set->size() : 0;
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
  std::unique_ptr<viewcl::Interpreter> interp_;
  std::unique_ptr<viewcl::ViewGraph> graph_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ViewQlTest, SelectByType) {
  MustExec("all_tasks = SELECT task_struct FROM *");
  // The workload list excludes init_task itself (list anchor) but includes
  // everything else.
  EXPECT_EQ(SetSize("all_tasks"),
            static_cast<size_t>(kernel_->procs().task_count() - 1));
}

TEST_F(ViewQlTest, SelectStarFromSet) {
  MustExec(R"(
    a = SELECT task_struct FROM *
    b = SELECT * FROM a
  )");
  EXPECT_EQ(SetSize("a"), SetSize("b"));
}

TEST_F(ViewQlTest, WhereOnEvaluatedMember) {
  MustExec(R"(
    init_only = SELECT task_struct FROM * WHERE pid == 1
  )");
  ASSERT_EQ(SetSize("init_only"), 1u);
  const viewcl::VBox* box = graph_->box(*engine_->FindSet("init_only")->begin());
  EXPECT_EQ(box->members().at("comm").str, "init");
}

TEST_F(ViewQlTest, WhereStringCompare) {
  MustExec(R"(
    rcu = SELECT task_struct FROM * WHERE comm == "rcu_sched"
    benches = SELECT task_struct FROM * WHERE comm contains "bench"
  )");
  EXPECT_EQ(SetSize("rcu"), 1u);
  EXPECT_EQ(SetSize("benches"), 10u);  // 5 procs x 2 threads
}

TEST_F(ViewQlTest, WhereOrComposition) {
  MustExec(R"(
    pair = SELECT task_struct FROM * WHERE pid == 1 OR ppid == 1
  )");
  // init + the 5 bench leaders (children of init).
  EXPECT_EQ(SetSize("pair"), 6u);
}

TEST_F(ViewQlTest, WhereAndComposition) {
  MustExec(R"(
    none = SELECT task_struct FROM * WHERE pid == 1 AND ppid == 1
    one = SELECT task_struct FROM * WHERE pid >= 1 AND pid <= 1
  )");
  EXPECT_EQ(SetSize("none"), 0u);
  EXPECT_EQ(SetSize("one"), 1u);
}

TEST_F(ViewQlTest, WhereRawFieldFallback) {
  // `mm` is not a displayed item; it resolves through the debugger (§2.3's
  // "tasks with a non-null mm" example).
  MustExec(R"(
    user_threads = SELECT task_struct FROM * WHERE mm != NULL
  )");
  int expected = 0;
  VKERN_LIST_FOR_EACH(pos, &kernel_->procs().init_task()->tasks) {
    if (VKERN_CONTAINER_OF(pos, vkern::task_struct, tasks)->mm != nullptr) {
      ++expected;
    }
  }
  EXPECT_EQ(SetSize("user_threads"), static_cast<size_t>(expected));
  EXPECT_GT(expected, 10);
}

TEST_F(ViewQlTest, WhereRawDottedPath) {
  MustExec(R"(
    sleepers = SELECT task_struct FROM * WHERE se.vruntime > 0
  )");
  EXPECT_GT(SetSize("sleepers"), 0u);
}

TEST_F(ViewQlTest, UpdateSetsViewAttribute) {
  MustExec(R"(
    user_threads = SELECT task_struct FROM * WHERE mm != NULL
    UPDATE user_threads WITH view: show_mm
  )");
  const BoxSet* set = engine_->FindSet("user_threads");
  ASSERT_NE(set, nullptr);
  ASSERT_FALSE(set->empty());
  for (uint64_t id : *set) {
    const viewcl::VBox* box = graph_->box(id);
    EXPECT_EQ(box->attrs().at("view"), "show_mm");
    EXPECT_EQ(box->ActiveView()->name, "show_mm");
  }
  EXPECT_EQ(engine_->stats().boxes_updated, set->size());
}

TEST_F(ViewQlTest, PaperNonWritableVmaExample) {
  // §2.3: collapse the non-writable memory areas.
  MustExec(R"(
    non_writable_vmas = SELECT vm_area_struct
        FROM *
        WHERE is_writable != true
    UPDATE non_writable_vmas WITH collapsed: true
  )");
  size_t collapsed = 0;
  size_t total = 0;
  graph_->ForEachBox([&](const viewcl::VBox& box) {
    if (box.kernel_type() != "vm_area_struct") {
      return;
    }
    ++total;
    bool writable = box.members().at("is_writable").num != 0;
    if (box.AttrBool("collapsed")) {
      ++collapsed;
      EXPECT_FALSE(writable);
    } else {
      EXPECT_TRUE(writable);
    }
  });
  EXPECT_GT(collapsed, 0u);
  EXPECT_GT(total, collapsed);
}

TEST_F(ViewQlTest, SetDifferenceOperator) {
  // §1's example: collapse everything except process #1 and its children.
  MustExec(R"(
    task_all = SELECT task_struct FROM *
    task_1 = SELECT task_struct FROM task_all WHERE pid == 1 OR ppid == 1
    UPDATE task_all \ task_1 WITH collapsed: true
  )");
  size_t collapsed = 0;
  graph_->ForEachBox([&](const viewcl::VBox& box) {
    if (box.kernel_type() == "task_struct" && box.AttrBool("collapsed")) {
      ++collapsed;
    }
  });
  EXPECT_EQ(collapsed, SetSize("task_all") - SetSize("task_1"));
  EXPECT_GT(collapsed, 0u);
}

TEST_F(ViewQlTest, SetIntersectionAndUnion) {
  MustExec(R"(
    a = SELECT task_struct FROM * WHERE pid <= 5
    b = SELECT task_struct FROM * WHERE pid >= 5
    both = SELECT * FROM a & b
    any = SELECT * FROM a | b
  )");
  EXPECT_EQ(SetSize("both"), 1u);  // pid == 5 exactly
  EXPECT_EQ(SetSize("any"), SetSize("a") + SetSize("b") - 1);
}

TEST_F(ViewQlTest, ReachableBuiltin) {
  MustExec(R"(
    init_set = SELECT task_struct FROM * WHERE pid == 1
    closure = SELECT * FROM REACHABLE(init_set)
  )");
  // init's box has no outgoing links in this program (vmas only shown in
  // show_mm container which *is* part of the views) — the closure includes
  // the vma container members.
  EXPECT_GE(SetSize("closure"), 1u);
}

TEST_F(ViewQlTest, ItemPathSelection) {
  // §3.1's "SELECT maple_node.slots" shape: select the boxes referenced by a
  // named item of a type.
  MustExec(R"(
    vma_containers = SELECT Task.vmas FROM *
  )");
  // Every user thread's Task box exposes a 'vmas' container whose members are
  // vm_area_struct boxes.
  const BoxSet* set = engine_->FindSet("vma_containers");
  ASSERT_NE(set, nullptr);
  EXPECT_GT(set->size(), 0u);
  for (uint64_t id : *set) {
    EXPECT_EQ(graph_->box(id)->kernel_type(), "vm_area_struct");
  }
}

TEST_F(ViewQlTest, AliasComparesObjectAddress) {
  // §3.2's LLM-generated query: pin one VMA by address.
  uint64_t target = 0;
  graph_->ForEachBox([&](const viewcl::VBox& box) {
    if (target == 0 && box.kernel_type() == "vm_area_struct") {
      target = box.addr();
    }
  });
  ASSERT_NE(target, 0u);
  char program[256];
  std::snprintf(program, sizeof(program), R"(
    a = SELECT vm_area_struct FROM * AS vma WHERE vma != 0x%llx
    UPDATE a WITH trimmed: true
  )",
                static_cast<unsigned long long>(target));
  MustExec(program);
  size_t trimmed = 0;
  size_t kept = 0;
  graph_->ForEachBox([&](const viewcl::VBox& box) {
    if (box.kernel_type() != "vm_area_struct") {
      return;
    }
    if (box.AttrBool("trimmed")) {
      ++trimmed;
      EXPECT_NE(box.addr(), target);
    } else {
      ++kept;
      EXPECT_EQ(box.addr(), target);
    }
  });
  EXPECT_EQ(kept, 1u);
  EXPECT_GT(trimmed, 0u);
}

TEST_F(ViewQlTest, UpdateDirectionAttribute) {
  MustExec(R"(
    all = SELECT * FROM *
    UPDATE all WITH direction: vertical
  )");
  graph_->ForEachBox([&](const viewcl::VBox& box) {
    EXPECT_EQ(box.attrs().at("direction"), "vertical");
  });
}

TEST_F(ViewQlTest, MultipleAttrsInOneUpdate) {
  MustExec(R"(
    t = SELECT task_struct FROM * WHERE pid == 1
    UPDATE t WITH collapsed: true, view: show_mm
  )");
  const viewcl::VBox* box = graph_->box(*engine_->FindSet("t")->begin());
  EXPECT_TRUE(box->AttrBool("collapsed"));
  EXPECT_EQ(box->attrs().at("view"), "show_mm");
}

TEST_F(ViewQlTest, ParseErrorsSurface) {
  EXPECT_FALSE(engine_->Execute("SELECT FROM").ok());
  EXPECT_FALSE(engine_->Execute("x = SELECT task_struct").ok());
  EXPECT_FALSE(engine_->Execute("UPDATE x WITH").ok());
  EXPECT_FALSE(engine_->Execute("x = SELECT t FROM * WHERE a ==").ok());
  // Unknown set names are runtime errors.
  EXPECT_FALSE(engine_->Execute("UPDATE no_such_set WITH collapsed: true").ok());
}

TEST_F(ViewQlTest, CheckOnlyValidation) {
  EXPECT_TRUE(CheckViewQl("a = SELECT x FROM * WHERE y == 1 UPDATE a WITH v: w").ok());
  EXPECT_FALSE(CheckViewQl("definitely not viewql ((").ok());
}

TEST_F(ViewQlTest, KeywordsAreCaseInsensitive) {
  MustExec("a = select task_struct from * where pid == 1");
  EXPECT_EQ(SetSize("a"), 1u);
}

}  // namespace
}  // namespace viewql
