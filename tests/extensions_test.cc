// Tests for the extension features: naive ViewCL synthesis (paper §4's
// "vplot can synthesize naive ViewCL code"), the ViewQL MEMBERS() operator,
// Table 1 decorator coverage, and debugger failure injection.

#include <gtest/gtest.h>

#include <cstring>

#include "src/viewcl/decorate.h"
#include "src/viewcl/interp.h"
#include "src/viewcl/synthesize.h"
#include "src/viewql/query.h"
#include "src/vision/shell.h"
#include "tests/test_util.h"

namespace {

class ExtensionsTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
};

// --- naive ViewCL synthesis ---

TEST_F(ExtensionsTest, SynthesizeGeneratesValidProgram) {
  auto program =
      viewcl::SynthesizeViewCl(debugger_->types(), "task_struct", "&init_task");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_NE(program->find("define Auto_task_struct as Box<task_struct>"), std::string::npos);
  EXPECT_NE(program->find("Text<string> comm"), std::string::npos);
  EXPECT_NE(program->find("Text pid"), std::string::npos);
  EXPECT_NE(program->find("plot Auto_task_struct(${&init_task})"), std::string::npos);

  viewcl::Interpreter interp(debugger_.get());
  auto graph = interp.RunProgram(*program);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ((*graph)->roots().size(), 1u);
  const viewcl::VBox* box = (*graph)->box((*graph)->roots()[0]);
  EXPECT_EQ(box->members().at("comm").str, "swapper/0");
  EXPECT_EQ(box->members().at("pid").num, 0);
}

TEST_F(ExtensionsTest, SynthesizeHonorsFieldLimit) {
  viewcl::SynthesisOptions options;
  options.max_fields = 3;
  auto program =
      viewcl::SynthesizeViewCl(debugger_->types(), "task_struct", "&init_task", options);
  ASSERT_TRUE(program.ok());
  // Count Text items.
  int texts = 0;
  size_t pos = 0;
  while ((pos = program->find("Text", pos)) != std::string::npos) {
    ++texts;
    pos += 4;
  }
  EXPECT_EQ(texts, 3);
}

TEST_F(ExtensionsTest, SynthesizeRejectsUnknownAndOpaqueTypes) {
  EXPECT_FALSE(viewcl::SynthesizeViewCl(debugger_->types(), "no_such_type", "0").ok());
  EXPECT_FALSE(viewcl::SynthesizeViewCl(debugger_->types(), "unsigned long", "0").ok());
}

TEST_F(ExtensionsTest, ShellAutoPlot) {
  vision::DebuggerShell shell(debugger_.get());
  std::string out = shell.Execute("vplot 1 --auto rq cpu_rq(1)");
  EXPECT_NE(out.find("synthesized ViewCL"), std::string::npos) << out;
  EXPECT_NE(out.find("plotted"), std::string::npos) << out;
  std::string view = shell.Execute("vctrl view 1");
  EXPECT_NE(view.find("cpu = 1"), std::string::npos) << view;
  // Usage errors.
  EXPECT_NE(shell.Execute("vplot 1 --auto").find("usage"), std::string::npos);
  EXPECT_NE(shell.Execute("vplot 1 --auto nothere 0").find("error"), std::string::npos);
}

// --- ViewQL MEMBERS() ---

TEST_F(ExtensionsTest, MembersOperatorIsOneHop) {
  viewcl::Interpreter interp(debugger_.get());
  vkern::task_struct* thread = workload_->user_tasks()[1];
  char program[256];
  std::snprintf(program, sizeof(program), R"(
    define Task as Box<task_struct> [
      Text pid
      Link parent -> Task(${@this.parent})
    ]
    plot Task(${(task_struct*)0x%llx})
  )",
                static_cast<unsigned long long>(reinterpret_cast<uint64_t>(thread)));
  auto g = interp.RunProgram(program);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Chain: thread -> leader -> init -> swapper (4 boxes).
  ASSERT_EQ((*g)->size(), 4u);

  viewql::QueryEngine engine(g->get(), debugger_.get());
  ASSERT_TRUE(engine
                  .Execute("root = SELECT task_struct FROM * WHERE pid == " +
                           std::to_string(thread->pid) +
                           "\n"
                           "hop1 = SELECT * FROM MEMBERS(root)\n"
                           "hop2 = SELECT * FROM MEMBERS(hop1)\n"
                           "all = SELECT * FROM REACHABLE(root)")
                  .ok());
  EXPECT_EQ(engine.FindSet("root")->size(), 1u);
  EXPECT_EQ(engine.FindSet("hop1")->size(), 1u);  // the leader only
  EXPECT_EQ(engine.FindSet("hop2")->size(), 1u);  // init only
  EXPECT_EQ(engine.FindSet("all")->size(), 4u);   // transitive closure
}

// --- Table 1 decorator coverage (direct) ---

class DecoratorTest : public ExtensionsTest {
 protected:
  vl::StatusOr<viewcl::DecoratedText> Fmt(const std::string& spec, dbg::Value value) {
    return viewcl::FormatDecorated(&debugger_->context(), &emoji_, spec, value);
  }
  dbg::Value U64(uint64_t v) { return dbg::Value::MakeInt(debugger_->types().u64(), v); }

  viewcl::EmojiRegistry emoji_;
};

TEST_F(DecoratorTest, IntBases) {
  EXPECT_EQ(Fmt("u64:x", U64(255))->display, "0xff");
  EXPECT_EQ(Fmt("u64:o", U64(8))->display, "010");
  EXPECT_EQ(Fmt("u64:b", U64(5))->display, "0b101");
  EXPECT_EQ(Fmt("u64", U64(123))->display, "123");
  EXPECT_EQ(Fmt("u8:x", U64(0x1ff))->display, "0xff");  // width truncation
  EXPECT_EQ(Fmt("s32", U64(static_cast<uint64_t>(-5) & 0xffffffff))->display, "-5");
}

TEST_F(DecoratorTest, BoolCharRawPtr) {
  EXPECT_EQ(Fmt("bool", U64(1))->display, "true");
  EXPECT_EQ(Fmt("bool", U64(0))->display, "false");
  EXPECT_EQ(Fmt("char", U64('q'))->display, "'q'");
  EXPECT_EQ(Fmt("raw_ptr", U64(0xdead))->display, "0xdead");
}

TEST_F(DecoratorTest, EnumAndFlag) {
  EXPECT_EQ(Fmt("enum:maple_type", U64(vkern::maple_leaf_64))->display, "maple_leaf_64");
  EXPECT_EQ(Fmt("enum:maple_type", U64(99))->display, "99");  // unknown falls back
  auto flags = Fmt("flag:vm_flags_bits", U64(vkern::VM_READ | vkern::VM_WRITE));
  EXPECT_NE(flags->display.find("VM_READ"), std::string::npos);
  EXPECT_NE(flags->display.find("VM_WRITE"), std::string::npos);
  EXPECT_EQ(Fmt("flag:vm_flags_bits", U64(0))->display, "0");
}

TEST_F(DecoratorTest, FunPtrSymbolizes) {
  // Find the address registered for mt_free_rcu.
  uint64_t addr = 0;
  for (const auto& [a, name] : kernel_->function_symbols()) {
    if (name == "mt_free_rcu") {
      addr = a;
    }
  }
  ASSERT_NE(addr, 0u);
  EXPECT_EQ(Fmt("fptr", U64(addr))->display, "mt_free_rcu");
  EXPECT_EQ(Fmt("fptr", U64(0))->display, "SIG_DFL");  // null maps to SIG_DFL
}

TEST_F(DecoratorTest, EmojiSets) {
  EXPECT_NE(Fmt("emoji:lock", U64(1))->display.find("held"), std::string::npos);
  EXPECT_NE(Fmt("emoji:lock", U64(0))->display.find("free"), std::string::npos);
  EXPECT_NE(Fmt("emoji:state", U64(0))->display.find("R"), std::string::npos);
  EXPECT_FALSE(Fmt("emoji:nonexistent", U64(0)).ok());
}

TEST_F(DecoratorTest, StringReadsTarget) {
  vkern::task_struct* init = kernel_->procs().init_task();
  dbg::Value comm = dbg::Value::MakeLValue(
      debugger_->types().ArrayOf(debugger_->types().char_type(), vkern::kTaskCommLen),
      reinterpret_cast<uint64_t>(init->comm));
  EXPECT_EQ(Fmt("string", comm)->display, "swapper/0");
}

TEST_F(DecoratorTest, UnknownSpecErrors) {
  EXPECT_FALSE(Fmt("no_such_decorator", U64(1)).ok());
}

// --- failure injection on the debugger target ---

class FlakyMemory : public dbg::MemoryDomain {
 public:
  FlakyMemory(vkern::Arena* arena, uint64_t poison_addr, size_t poison_len)
      : arena_(arena), poison_addr_(poison_addr), poison_len_(poison_len) {}

  bool ReadBytes(uint64_t addr, void* out, size_t len) const override {
    if (addr < poison_addr_ + poison_len_ && poison_addr_ < addr + len) {
      return false;  // simulated bus error / unmapped page
    }
    if (!arena_->Contains(addr, len)) {
      return false;
    }
    std::memcpy(out, arena_->AtAddr(addr), len);
    return true;
  }

 private:
  vkern::Arena* arena_;
  uint64_t poison_addr_;
  size_t poison_len_;
};

TEST_F(ExtensionsTest, TargetSurfacesMemoryFaults) {
  vkern::task_struct* init = kernel_->procs().init_task();
  FlakyMemory memory(&kernel_->arena(), reinterpret_cast<uint64_t>(init),
                     sizeof(vkern::task_struct));
  dbg::Target target(&memory, dbg::LatencyModel::Free());
  auto bad = target.ReadUnsigned(reinterpret_cast<uint64_t>(init), 8);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), vl::StatusCode::kMemoryFault);
  // Reads elsewhere still work.
  auto good = target.ReadUnsigned(reinterpret_cast<uint64_t>(kernel_->runqueues()), 8);
  EXPECT_TRUE(good.ok());
}

TEST_F(ExtensionsTest, ExpressionErrorsOnFaultedMemory) {
  // Evaluating through a faulted object yields an error, not garbage.
  vkern::task_struct* init = kernel_->procs().init_task();
  FlakyMemory memory(&kernel_->arena(), reinterpret_cast<uint64_t>(init),
                     sizeof(vkern::task_struct));
  dbg::Target target(&memory, dbg::LatencyModel::Free());
  dbg::ReadSession session(&target);
  dbg::EvalContext ctx(&debugger_->types(), &session, &debugger_->symbols(),
                       &debugger_->helpers());
  auto result = dbg::EvalCExpression(&ctx, "init_task.pid", nullptr);
  ASSERT_TRUE(result.ok());  // the lvalue forms fine...
  auto loaded = result->Load(&session);
  EXPECT_FALSE(loaded.ok());  // ...but loading it faults
}

}  // namespace
