// Tests for the smaller subsystems: timers, IRQs, workqueues, sockets,
// System-V IPC, the device model, and swap.

#include <gtest/gtest.h>

#include <cstring>

#include "src/vkern/kernel.h"
#include "tests/test_util.h"

namespace vkern {
namespace {

using vltest::KernelTest;

// --- timers ---

class TimerTest : public KernelTest {};

namespace timer_detail {
int g_fired = 0;
void CountFire(timer_list* timer) {
  (void)timer;
  ++g_fired;
}
}  // namespace timer_detail

TEST_F(TimerTest, FiresAtExpiry) {
  timer_detail::g_fired = 0;
  timer_list* t = kernel_->timers().AllocTimer();
  uint64_t now = kernel_->timer_bases()[0].clk;
  kernel_->timers().AddTimer(0, t, now + 5, &timer_detail::CountFire);
  EXPECT_EQ(kernel_->timers().Advance(0, 4), 0u);
  EXPECT_EQ(timer_detail::g_fired, 0);
  EXPECT_EQ(kernel_->timers().Advance(0, 1), 1u);
  EXPECT_EQ(timer_detail::g_fired, 1);
  EXPECT_EQ(kernel_->timers().pending_count(0), 0u);
}

TEST_F(TimerTest, FarTimersLandInHigherLevels) {
  timer_detail::g_fired = 0;
  timer_list* near = kernel_->timers().AllocTimer();
  timer_list* far = kernel_->timers().AllocTimer();
  uint64_t now = kernel_->timer_bases()[0].clk;
  kernel_->timers().AddTimer(0, near, now + 10, &timer_detail::CountFire);
  kernel_->timers().AddTimer(0, far, now + 3000, &timer_detail::CountFire);
  uint32_t near_idx = TimerSubsystem::CalcWheelIndex(now + 10, now);
  uint32_t far_idx = TimerSubsystem::CalcWheelIndex(now + 3000, now);
  EXPECT_LT(near_idx, static_cast<uint32_t>(kTimerWheelSlotsPerLevel));
  EXPECT_GE(far_idx, static_cast<uint32_t>(kTimerWheelSlotsPerLevel));
  kernel_->timers().Advance(0, 3200);
  EXPECT_EQ(timer_detail::g_fired, 2);
}

TEST_F(TimerTest, DelTimerCancels) {
  timer_detail::g_fired = 0;
  timer_list* t = kernel_->timers().AllocTimer();
  uint64_t now = kernel_->timer_bases()[0].clk;
  kernel_->timers().AddTimer(0, t, now + 3, &timer_detail::CountFire);
  kernel_->timers().DelTimer(t);
  kernel_->timers().Advance(0, 10);
  EXPECT_EQ(timer_detail::g_fired, 0);
}

TEST_F(TimerTest, PerCpuBasesIndependent) {
  timer_detail::g_fired = 0;
  timer_list* t = kernel_->timers().AllocTimer();
  uint64_t now = kernel_->timer_bases()[1].clk;
  kernel_->timers().AddTimer(1, t, now + 2, &timer_detail::CountFire);
  kernel_->timers().Advance(0, 10);  // wrong CPU
  EXPECT_EQ(timer_detail::g_fired, 0);
  kernel_->timers().Advance(1, 3);
  EXPECT_EQ(timer_detail::g_fired, 1);
}

// --- IRQs ---

class IrqTest : public KernelTest {};

namespace irq_detail {
int g_hits = 0;
void Handler(int irq, void* dev) {
  (void)irq;
  (void)dev;
  ++g_hits;
}
}  // namespace irq_detail

TEST_F(IrqTest, BootInstalledSharedChain) {
  // IRQ 14 was registered twice at boot (sda + sdb share it).
  EXPECT_EQ(kernel_->irqs().action_count(14), 2u);
  irq_desc* desc = kernel_->irqs().desc(14);
  ASSERT_NE(desc->action, nullptr);
  ASSERT_NE(desc->action->next, nullptr);
  EXPECT_STREQ(desc->action->name, "ata_piix");
}

TEST_F(IrqTest, RaiseInvokesAllHandlers) {
  irq_detail::g_hits = 0;
  kernel_->irqs().RequestIrq(20, "test-a", &irq_detail::Handler, nullptr, 0);
  kernel_->irqs().RequestIrq(20, "test-b", &irq_detail::Handler, &irq_detail::g_hits, 0);
  kernel_->irqs().Raise(20);
  EXPECT_EQ(irq_detail::g_hits, 2);
  EXPECT_EQ(kernel_->irqs().desc(20)->tot_count, 1u);
}

TEST_F(IrqTest, DisabledIrqDoesNotFire) {
  irq_detail::g_hits = 0;
  EXPECT_EQ(kernel_->irqs().Raise(25), 0u);  // no action installed => depth 1
  EXPECT_EQ(irq_detail::g_hits, 0);
}

TEST_F(IrqTest, FreeIrqRemovesFromChain) {
  irq_detail::g_hits = 0;
  int cookie_a = 0;
  int cookie_b = 0;
  kernel_->irqs().RequestIrq(21, "x", &irq_detail::Handler, &cookie_a, 0);
  kernel_->irqs().RequestIrq(21, "y", &irq_detail::Handler, &cookie_b, 0);
  kernel_->irqs().FreeIrq(21, &cookie_a);
  EXPECT_EQ(kernel_->irqs().action_count(21), 1u);
  kernel_->irqs().Raise(21);
  EXPECT_EQ(irq_detail::g_hits, 1);
}

// --- workqueues ---

class WorkqueueTest : public KernelTest {};

TEST_F(WorkqueueTest, BootQueuedHeterogeneousItems) {
  // Three items per CPU were queued on mm_percpu_wq at boot.
  EXPECT_EQ(kernel_->wqs().pending_count(0), 3u);
  EXPECT_EQ(kernel_->wqs().pending_count(1), 3u);
  // The three containing types resolve via distinct func pointers.
  worker_pool* pool = kernel_->wqs().pool(0);
  std::set<uint64_t> funcs;
  VKERN_LIST_FOR_EACH(pos, &pool->worklist) {
    work_struct* w = VKERN_CONTAINER_OF(pos, work_struct, entry);
    funcs.insert(reinterpret_cast<uint64_t>(w->func));
    EXPECT_FALSE(kernel_->SymbolizeFunction(reinterpret_cast<uint64_t>(w->func)).empty());
  }
  EXPECT_EQ(funcs.size(), 3u);
}

TEST_F(WorkqueueTest, ProcessPendingRunsHandlers) {
  uint64_t ran = kernel_->wqs().ProcessPending(0);
  EXPECT_EQ(ran, 3u);
  EXPECT_EQ(kernel_->wqs().pending_count(0), 0u);
}

TEST_F(WorkqueueTest, WorkDataPacksPwqPointer) {
  worker_pool* pool = kernel_->wqs().pool(0);
  work_struct* w = VKERN_CONTAINER_OF(pool->worklist.next, work_struct, entry);
  EXPECT_EQ(w->data & 1u, 1u);  // PENDING bit
  auto* pwq = reinterpret_cast<pool_workqueue*>(w->data & ~uint64_t{1});
  EXPECT_EQ(pwq->wq, kernel_->mm_percpu_wq());
  EXPECT_EQ(pwq->pool, pool);
}

TEST_F(WorkqueueTest, DoubleQueueRejected) {
  kernel_->wqs().ProcessPending(0);
  auto* item = static_cast<lru_drain_item*>(
      kernel_->slabs().Alloc(kernel_->slabs().FindCache("mm_percpu_wq_item")));
  kernel_->wqs().InitWork(&item->work, nullptr);
  EXPECT_TRUE(kernel_->wqs().QueueWork(kernel_->mm_percpu_wq(), 0, &item->work));
  EXPECT_FALSE(kernel_->wqs().QueueWork(kernel_->mm_percpu_wq(), 0, &item->work));
}

// --- sockets ---

class NetTest : public KernelTest {};

TEST_F(NetTest, SocketPairConnectsPeers) {
  file* a = nullptr;
  file* b = nullptr;
  ASSERT_TRUE(kernel_->net().SocketPair(&a, &b));
  socket* sa = NetSubsystem::FromFile(a);
  socket* sb = NetSubsystem::FromFile(b);
  EXPECT_EQ(sa->sk->sk_peer, sb->sk);
  EXPECT_EQ(sb->sk->sk_peer, sa->sk);
  EXPECT_EQ(sa->state, SS_CONNECTED);
  EXPECT_EQ((a->f_inode->i_mode & 0170000u), kSIfSock);
}

TEST_F(NetTest, SendLandsOnPeerReceiveQueue) {
  file* a = nullptr;
  file* b = nullptr;
  kernel_->net().SocketPair(&a, &b);
  socket* sa = NetSubsystem::FromFile(a);
  socket* sb = NetSubsystem::FromFile(b);
  ASSERT_TRUE(kernel_->net().SendBytes(sa, 500));
  ASSERT_TRUE(kernel_->net().SendBytes(sa, 300));
  EXPECT_EQ(sb->sk->sk_receive_queue.qlen, 2u);
  EXPECT_EQ(kernel_->net().ReceiveOne(sb), 500u);  // FIFO
  EXPECT_EQ(kernel_->net().ReceiveOne(sb), 300u);
  EXPECT_EQ(kernel_->net().ReceiveOne(sb), 0u);
}

// --- SysV IPC ---

class IpcTest : public KernelTest {};

TEST_F(IpcTest, SemaphoreOps) {
  sem_array* sma = kernel_->ipc().SemGet(0x1234, 3);
  ASSERT_NE(sma, nullptr);
  EXPECT_EQ(sma->sem_nsems, 3);
  EXPECT_TRUE(kernel_->ipc().SemOp(sma, 0, 2, 100));
  EXPECT_TRUE(kernel_->ipc().SemOp(sma, 0, -1, 101));
  EXPECT_EQ(sma->sems[0].semval, 1);
  EXPECT_EQ(sma->sems[0].sempid, 101);
  EXPECT_FALSE(kernel_->ipc().SemOp(sma, 0, -5, 102));  // would go negative
  EXPECT_FALSE(kernel_->ipc().SemOp(sma, 9, 1, 102));   // out of range
}

TEST_F(IpcTest, MessageQueueFifo) {
  msg_queue* q = kernel_->ipc().MsgGet(0x777);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(kernel_->ipc().MsgSend(q, 1, 128));
  EXPECT_TRUE(kernel_->ipc().MsgSend(q, 2, 256));
  EXPECT_EQ(q->q_qnum, 2u);
  EXPECT_EQ(q->q_cbytes, 384u);
  EXPECT_EQ(kernel_->ipc().MsgReceive(q), 128u);
  EXPECT_EQ(kernel_->ipc().MsgReceive(q), 256u);
  EXPECT_EQ(kernel_->ipc().MsgReceive(q), 0u);
}

TEST_F(IpcTest, QueueByteLimitEnforced) {
  msg_queue* q = kernel_->ipc().MsgGet(0x778);
  ASSERT_TRUE(kernel_->ipc().MsgSend(q, 1, q->q_qbytes));
  EXPECT_FALSE(kernel_->ipc().MsgSend(q, 1, 1));
}

TEST_F(IpcTest, IdsRegisterInNamespace) {
  int before = kernel_->ipc().sem_count();
  sem_array* sma = kernel_->ipc().SemGet(0x9, 1);
  EXPECT_EQ(kernel_->ipc().sem_count(), before + 1);
  EXPECT_EQ(kernel_->init_ipc_ns()->ids[kIpcSemIds].entries[sma->sem_perm.id], &sma->sem_perm);
}

// --- device model ---

class DeviceTest : public KernelTest {};

TEST_F(DeviceTest, BootPlatformBusPopulated) {
  bus_type* bus = kernel_->platform_bus();
  ASSERT_NE(bus, nullptr);
  EXPECT_EQ(kernel_->devices().device_count(bus), 3u);
  EXPECT_EQ(kernel_->devices().driver_count(bus), 3u);
}

TEST_F(DeviceTest, DeviceKobjectParenting) {
  bus_type* bus = kernel_->platform_bus();
  // Find ttyS0; its parent device is serial8250 and its driver is bound.
  device* tty = nullptr;
  VKERN_LIST_FOR_EACH(pos, &bus->devices_list) {
    device* dev = VKERN_CONTAINER_OF(pos, device, bus_node);
    if (std::strcmp(dev->init_name, "ttyS0") == 0) {
      tty = dev;
    }
  }
  ASSERT_NE(tty, nullptr);
  ASSERT_NE(tty->parent, nullptr);
  EXPECT_STREQ(tty->parent->init_name, "serial8250");
  EXPECT_EQ(tty->kobj.parent, &tty->parent->kobj);
  ASSERT_NE(tty->driver, nullptr);
  EXPECT_STREQ(tty->driver->name, "serial8250");
}

// --- swap ---

class SwapTest : public KernelTest {};

TEST_F(SwapTest, BootActivatedSwapArea) {
  ASSERT_EQ(kernel_->swap().nr_swapfiles(), 1);
  swap_info_struct* si = kernel_->swap().info(0);
  EXPECT_TRUE(si->flags & SWP_USED);
  EXPECT_TRUE(si->flags & SWP_WRITEOK);
  EXPECT_EQ(si->inuse_pages, 37u);
  ASSERT_NE(si->swap_file, nullptr);
  EXPECT_EQ(si->bdev, kernel_->sda());
}

TEST_F(SwapTest, SlotAllocationCounts) {
  swap_info_struct* si = kernel_->swap().info(0);
  uint32_t before = si->inuse_pages;
  int64_t slot = kernel_->swap().AllocSlot(si);
  ASSERT_GT(slot, 0);
  EXPECT_EQ(si->inuse_pages, before + 1);
  EXPECT_EQ(si->swap_map[slot], 1);
  kernel_->swap().FreeSlot(si, static_cast<uint32_t>(slot));
  EXPECT_EQ(si->inuse_pages, before);
}

}  // namespace
}  // namespace vkern
