// Renderer unit tests on hand-built graphs (no kernel): exact-output checks
// for the visibility semantics (trimmed/collapsed/view/direction), cycle
// handling, container previews, and edge cases the integration tests cannot
// pin down deterministically.

#include "src/vision/render.h"

#include <gtest/gtest.h>

namespace vision {
namespace {

using viewcl::ContainerItem;
using viewcl::kNoBox;
using viewcl::LinkItem;
using viewcl::TextItem;
using viewcl::VBox;
using viewcl::ViewGraph;
using viewcl::ViewInstance;

// A tiny deterministic graph:
//   root(task_struct) --child--> kid(task_struct)
//   kid --back--> root   (cycle)
//   root has a container of two value boxes.
class RenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = graph_.NewBox("Task", "task_struct", 0x1000, 64);
    kid_ = graph_.NewBox("Task", "task_struct", 0x2000, 64);
    v1_ = graph_.NewBox("<value>", "", 0, 0);
    v2_ = graph_.NewBox("<value>", "", 0, 0);

    ViewInstance root_default;
    root_default.name = "default";
    root_default.texts.push_back(TextItem{"pid", "1"});
    root_default.links.push_back(LinkItem{"child", kid_->id()});
    root_default.links.push_back(LinkItem{"mm", kNoBox});
    root_default.containers.push_back(ContainerItem{"vals", {v1_->id(), v2_->id()}});
    root_->views().push_back(std::move(root_default));

    ViewInstance root_alt;
    root_alt.name = "tiny";
    root_alt.texts.push_back(TextItem{"pid", "1"});
    root_->views().push_back(std::move(root_alt));

    ViewInstance kid_default;
    kid_default.name = "default";
    kid_default.texts.push_back(TextItem{"pid", "2"});
    kid_default.links.push_back(LinkItem{"back", root_->id()});
    kid_->views().push_back(std::move(kid_default));

    for (VBox* v : {v1_, v2_}) {
      ViewInstance view;
      view.name = "default";
      view.texts.push_back(TextItem{"v", v == v1_ ? "10" : "20"});
      v->views().push_back(std::move(view));
    }
    graph_.roots().push_back(root_->id());
  }

  ViewGraph graph_;
  VBox* root_ = nullptr;
  VBox* kid_ = nullptr;
  VBox* v1_ = nullptr;
  VBox* v2_ = nullptr;
};

TEST_F(RenderTest, AsciiFullGraph) {
  std::string out = AsciiRenderer().Render(graph_);
  EXPECT_NE(out.find("#0 task_struct"), std::string::npos);
  EXPECT_NE(out.find("| pid = 1"), std::string::npos);
  EXPECT_NE(out.find("* child ->"), std::string::npos);
  EXPECT_NE(out.find("* mm -> (null)"), std::string::npos);
  EXPECT_NE(out.find("# vals (2 horizontal)"), std::string::npos);
  // The cycle back-edge renders as a reference, not a re-expansion.
  EXPECT_NE(out.find("(see box #0"), std::string::npos);
}

TEST_F(RenderTest, VisibilityComputation) {
  EXPECT_EQ(VisibleBoxes(graph_).size(), 4u);
  kid_->attrs()["trimmed"] = "true";
  EXPECT_EQ(VisibleBoxes(graph_).count(kid_->id()), 0u);
  EXPECT_EQ(VisibleBoxes(graph_).size(), 3u);
  kid_->attrs().erase("trimmed");

  // Collapsing the root hides everything beneath it.
  root_->attrs()["collapsed"] = "true";
  std::set<uint64_t> visible = VisibleBoxes(graph_);
  EXPECT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible.count(root_->id()), 1u);
  root_->attrs().erase("collapsed");

  // Switching the root to a link-less view hides the subtree too.
  root_->attrs()["view"] = "tiny";
  EXPECT_EQ(VisibleBoxes(graph_).size(), 1u);
}

TEST_F(RenderTest, TrimmedRootVanishes) {
  root_->attrs()["trimmed"] = "true";
  EXPECT_TRUE(VisibleBoxes(graph_).empty());
  std::string out = AsciiRenderer().Render(graph_);
  EXPECT_EQ(out.find("pid ="), std::string::npos);
}

TEST_F(RenderTest, CollapsedRendersStub) {
  kid_->attrs()["collapsed"] = "true";
  std::string out = AsciiRenderer().Render(graph_);
  EXPECT_NE(out.find("[+] task_struct (collapsed)"), std::string::npos);
  // The kid's own text must not render.
  EXPECT_EQ(out.find("| pid = 2"), std::string::npos);
}

TEST_F(RenderTest, DirectionAttributeChangesContainerLabel) {
  root_->attrs()["direction"] = "vertical";
  std::string out = AsciiRenderer().Render(graph_);
  EXPECT_NE(out.find("# vals (2 vertical)"), std::string::npos);
}

TEST_F(RenderTest, ContainerPreviewLimit) {
  // Add many members; the renderer elides beyond the preview limit.
  ContainerItem big;
  big.name = "many";
  for (int i = 0; i < 30; ++i) {
    VBox* extra = graph_.NewBox("<value>", "", 0, 0);
    ViewInstance view;
    view.name = "default";
    view.texts.push_back(TextItem{"i", std::to_string(i)});
    extra->views().push_back(std::move(view));
    big.members.push_back(extra->id());
  }
  root_->views()[0].containers.push_back(std::move(big));
  RenderOptions options;
  options.max_container_preview = 5;
  std::string out = AsciiRenderer(options).Render(graph_);
  EXPECT_NE(out.find("... (+25 more)"), std::string::npos);
}

TEST_F(RenderTest, ShowAddressesOption) {
  RenderOptions options;
  options.show_addresses = true;
  std::string out = AsciiRenderer(options).Render(graph_);
  EXPECT_NE(out.find("task_struct @0x1000"), std::string::npos);
}

TEST_F(RenderTest, DotRespectsVisibility) {
  kid_->attrs()["trimmed"] = "true";
  std::string dot = DotRenderer().Render(graph_);
  EXPECT_EQ(dot.find("b1 ["), std::string::npos);     // kid not emitted
  EXPECT_EQ(dot.find("-> b1"), std::string::npos);    // no edge to it
  EXPECT_NE(dot.find("b0 ["), std::string::npos);
}

TEST_F(RenderTest, DotEscapesRecordCharacters) {
  root_->views()[0].texts.push_back(TextItem{"tricky", "a{b}|<c>"});
  std::string dot = DotRenderer().Render(graph_);
  EXPECT_NE(dot.find("a\\{b\\}\\|\\<c\\>"), std::string::npos);
}

TEST_F(RenderTest, JsonCarriesAttrsAndNullLinks) {
  root_->attrs()["collapsed"] = "true";
  vl::Json json = JsonRenderer().ToJson(graph_);
  const vl::Json& boxes = *json.Find("boxes");
  const vl::Json& jroot = boxes.at(0);
  EXPECT_EQ(jroot.Find("attrs")->Find("collapsed")->AsString(), "true");
  // The null mm link serializes as JSON null.
  const vl::Json& links = *jroot.Find("views")->at(0).Find("links");
  bool saw_null = false;
  for (const vl::Json& link : links.items()) {
    if (link.Find("name")->AsString() == "mm") {
      saw_null = link.Find("target")->is_null();
    }
  }
  EXPECT_TRUE(saw_null);
}

TEST_F(RenderTest, EmptyGraphRenders) {
  ViewGraph empty;
  EXPECT_EQ(AsciiRenderer().Render(empty), "");
  EXPECT_EQ(DotRenderer().Render(empty), "digraph kernel_state {\n  rankdir=LR;\n  node [shape=record];\n}\n");
  EXPECT_EQ(JsonRenderer().ToJson(empty).Find("boxes")->size(), 0u);
}

}  // namespace
}  // namespace vision
