// Integration tests: boot + the paper's workload, with cross-subsystem
// invariants checked over the resulting live object graph.

#include "src/vkern/kernel.h"

#include <gtest/gtest.h>

#include <set>

#include "src/vkern/workload.h"
#include "tests/test_util.h"

namespace vkern {
namespace {

using vltest::KernelTest;
using vltest::WorkloadKernelTest;

TEST_F(KernelTest, BootPopulatesGlobals) {
  EXPECT_NE(kernel_->procs().init_task(), nullptr);
  EXPECT_NE(kernel_->mm_percpu_wq(), nullptr);
  EXPECT_NE(kernel_->ext4_sb(), nullptr);
  EXPECT_GE(kernel_->procs().task_count(), 8);  // idles + init + kthreads
  // Everything visualizable lives inside the arena.
  EXPECT_TRUE(kernel_->arena().ContainsPtr(kernel_->procs().init_task()));
  EXPECT_TRUE(kernel_->arena().ContainsPtr(kernel_->runqueues()));
  EXPECT_TRUE(kernel_->arena().ContainsPtr(kernel_->mm_percpu_wq()));
  EXPECT_TRUE(kernel_->arena().ContainsPtr(kernel_->ext4_sb()));
}

TEST_F(KernelTest, FunctionSymbolsRegistered) {
  EXPECT_FALSE(kernel_->function_symbols().empty());
  // mt_free_rcu must be symbolized (the StackRot figure labels it).
  bool found = false;
  for (const auto& [addr, name] : kernel_->function_symbols()) {
    if (name == "mt_free_rcu") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(kernel_->SymbolizeFunction(0xdeadbeef), "");
}

TEST_F(KernelTest, TickAdvancesSubsystems) {
  uint64_t j0 = kernel_->jiffies();
  for (int i = 0; i < 10; ++i) {
    kernel_->TickCpu(0);
    kernel_->TickCpu(1);
  }
  EXPECT_EQ(kernel_->jiffies(), j0 + 10);
}

TEST_F(WorkloadKernelTest, PopulationMatchesPaperSetup) {
  EXPECT_EQ(workload_->nr_processes(), 5);
  EXPECT_EQ(workload_->user_tasks().size(), 10u);  // 5 procs x 2 threads
  for (task_struct* t : workload_->user_tasks()) {
    EXPECT_NE(t->mm, nullptr);
    EXPECT_EQ(kernel_->procs().FindTaskByPid(t->pid), t);
  }
}

TEST_F(WorkloadKernelTest, ThreadsShareLeaderMm) {
  for (int p = 0; p < workload_->nr_processes(); ++p) {
    task_struct* leader = workload_->process(p);
    EXPECT_EQ(leader->signal->nr_threads, 2);
    EXPECT_GE(leader->mm->mm_users.counter, 2);
  }
}

TEST_F(WorkloadKernelTest, VmaTreesStayValid) {
  for (int p = 0; p < workload_->nr_processes(); ++p) {
    mm_struct* mm = workload_->process(p)->mm;
    std::string why;
    EXPECT_TRUE(kernel_->maple().Validate(&mm->mm_mt, &why)) << "proc " << p << ": " << why;
    EXPECT_EQ(kernel_->maple().CountEntries(&mm->mm_mt),
              static_cast<uint64_t>(mm->map_count));
  }
}

TEST_F(WorkloadKernelTest, MapCountsAreSubstantial) {
  // The workload must leave enough state for meaningful figures.
  int total_vmas = 0;
  for (int p = 0; p < workload_->nr_processes(); ++p) {
    total_vmas += workload_->process(p)->mm->map_count;
  }
  EXPECT_GT(total_vmas, 30);
}

TEST_F(WorkloadKernelTest, SchedulerStateConsistent) {
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    rq* q = kernel_->sched().cpu_rq(cpu);
    EXPECT_GE(rb_validate(&q->cfs.tasks_timeline.rb_root_), 0) << "cpu " << cpu;
    uint32_t counted = 0;
    kernel_->sched().ForEachQueued(cpu, [&counted](task_struct*) { ++counted; });
    EXPECT_EQ(counted, q->cfs.nr_running);
  }
}

TEST_F(WorkloadKernelTest, BuddyAndSlabStayConsistent) {
  EXPECT_TRUE(kernel_->buddy().Validate());
  EXPECT_GT(kernel_->slabs().total_active_objects(), 100u);
}

TEST_F(WorkloadKernelTest, PageCacheHasPages) {
  uint64_t pages = 0;
  VKERN_LIST_FOR_EACH(pos, &kernel_->ext4_sb()->s_inodes) {
    inode* ino = VKERN_CONTAINER_OF(pos, inode, i_sb_list);
    pages += ino->i_data.nrpages;
  }
  EXPECT_GT(pages, 20u);
}

TEST_F(WorkloadKernelTest, RcuMadeProgress) {
  // The workload's maple-tree churn must have exercised deferred frees.
  uint64_t invoked = 0;
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    invoked += kernel_->rcu_data_array()[cpu].invoked;
  }
  EXPECT_GT(invoked, 10u);
}

TEST_F(WorkloadKernelTest, DeterministicAcrossRuns) {
  // A second kernel with the same seed produces the same topology.
  vkern::Kernel other;
  vkern::WorkloadConfig config;
  config.steps = 60;
  vkern::Workload workload2(&other, config);
  workload2.Run();
  ASSERT_EQ(workload2.user_tasks().size(), workload_->user_tasks().size());
  for (size_t i = 0; i < workload2.user_tasks().size(); ++i) {
    task_struct* a = workload_->user_tasks()[i];
    task_struct* b = workload2.user_tasks()[i];
    EXPECT_EQ(a->pid, b->pid);
    EXPECT_EQ(a->mm->map_count, b->mm->map_count);
    EXPECT_EQ(std::string(a->comm), std::string(b->comm));
  }
}

TEST_F(WorkloadKernelTest, PidsAreUniqueAcrossTaskList) {
  std::set<int> pids;
  task_struct* init_task = kernel_->procs().init_task();
  pids.insert(init_task->pid);
  VKERN_LIST_FOR_EACH(pos, &init_task->tasks) {
    task_struct* t = VKERN_CONTAINER_OF(pos, task_struct, tasks);
    if (t->pid != 0) {  // idle tasks share pid 0
      EXPECT_TRUE(pids.insert(t->pid).second) << "duplicate pid " << t->pid;
    }
  }
  EXPECT_GT(pids.size(), 10u);
}

}  // namespace
}  // namespace vkern
