// Evaluation-corpus tests: every Table 2 figure program must plot a
// non-trivial graph from the live kernel, and every Table 3 objective must
// work both as hand-written ViewQL and as vchat-synthesized ViewQL with the
// same effect (paper §5.1/§5.2's claims C1 and C2).

#include "src/vision/figures.h"

#include <gtest/gtest.h>

#include "src/viewcl/interp.h"
#include "src/viewcl/lexer.h"
#include "src/viewql/query.h"
#include "src/vision/vchat.h"
#include "tests/test_util.h"

namespace vision {
namespace {

class FiguresTest : public vltest::WorkloadKernelTest {
 protected:
  void SetUp() override {
    vltest::WorkloadKernelTest::SetUp();
    debugger_ = std::make_unique<dbg::KernelDebugger>(kernel_.get());
    RegisterFigureSymbols(debugger_.get(), workload_.get());
  }

  std::unique_ptr<viewcl::ViewGraph> PlotFigure(const std::string& id,
                                                std::vector<std::string>* warnings = nullptr) {
    const FigureDef* figure = FindFigure(id);
    EXPECT_NE(figure, nullptr) << id;
    if (figure == nullptr) {
      return nullptr;
    }
    viewcl::Interpreter interp(debugger_.get());
    auto graph = interp.RunProgram(figure->viewcl);
    EXPECT_TRUE(graph.ok()) << id << ": " << graph.status().ToString();
    if (!graph.ok()) {
      return nullptr;
    }
    if (warnings != nullptr) {
      *warnings = interp.warnings();
    }
    return std::move(graph).value();
  }

  static size_t CountType(const viewcl::ViewGraph& graph, std::string_view type) {
    size_t n = 0;
    graph.ForEachBox([&](const viewcl::VBox& box) {
      if (box.kernel_type() == type) {
        ++n;
      }
    });
    return n;
  }

  std::unique_ptr<dbg::KernelDebugger> debugger_;
};

TEST_F(FiguresTest, CorpusShape) {
  EXPECT_EQ(AllFigures().size(), 21u);   // Table 2 rows
  EXPECT_EQ(AllObjectives().size(), 10u);  // Table 3 rows
  // Every objective refers to an existing figure and has <10 ViewQL lines
  // (the paper's usability claim).
  for (const ObjectiveDef& objective : AllObjectives()) {
    EXPECT_NE(FindFigure(objective.figure_id), nullptr) << objective.figure_id;
    EXPECT_LT(viewcl::CountCodeLines(objective.viewql), 10) << objective.description;
  }
}

// Every figure plots successfully and yields a graph of its expected types.
class FigureSweep : public FiguresTest, public ::testing::WithParamInterface<const char*> {};

TEST_P(FigureSweep, PlotsNonTrivialGraph) {
  std::vector<std::string> warnings;
  auto graph = PlotFigure(GetParam(), &warnings);
  ASSERT_NE(graph, nullptr);
  EXPECT_FALSE(graph->roots().empty()) << GetParam();
  EXPECT_GE(graph->size(), 2u) << GetParam();
  for (const std::string& warning : warnings) {
    ADD_FAILURE() << GetParam() << " warning: " << warning;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFigures, FigureSweep,
                         ::testing::Values("fig3_4", "fig3_6", "fig4_5", "fig6_1", "fig7_1",
                                           "fig8_2", "fig8_4", "fig9_2", "fig11_1", "fig12_3",
                                           "fig13_3", "fig14_3", "fig15_1", "fig16_2",
                                           "fig17_1", "fig17_6", "fig19_1", "fig19_2",
                                           "workqueue", "proc2vfs", "socketconn"));

TEST_F(FiguresTest, ProcessTreeMatchesKernel) {
  auto graph = PlotFigure("fig3_4");
  ASSERT_NE(graph, nullptr);
  // Every task except the secondary CPU's idle thread descends from
  // init_task (swapper/1 parents nothing and has no parent link).
  EXPECT_EQ(CountType(*graph, "task_struct"),
            static_cast<size_t>(kernel_->procs().task_count() - 1));
}

TEST_F(FiguresTest, PidHashMatchesKernel) {
  auto graph = PlotFigure("fig3_6");
  ASSERT_NE(graph, nullptr);
  size_t expected = 0;
  for (int i = 0; i < vkern::kPidHashSize; ++i) {
    expected += vkern::hlist_count(&kernel_->procs().pid_hash()[i]);
  }
  EXPECT_EQ(CountType(*graph, "pid"), expected);
}

TEST_F(FiguresTest, IrqFigureShowsSharedChain) {
  auto graph = PlotFigure("fig4_5");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "irq_desc"), static_cast<size_t>(vkern::kNrIrqs));
  // Boot registered 5 irqactions (IRQ 14 shared by two).
  EXPECT_GE(CountType(*graph, "irqaction"), 5u);
}

TEST_F(FiguresTest, SchedulerFigureMatchesRunqueues) {
  auto graph = PlotFigure("fig7_1");
  ASSERT_NE(graph, nullptr);
  size_t queued = kernel_->sched().cpu_rq(0)->cfs.nr_running +
                  kernel_->sched().cpu_rq(1)->cfs.nr_running;
  // Tasks on the timeline, plus possibly the two curr tasks.
  EXPECT_GE(CountType(*graph, "task_struct"), queued);
  EXPECT_EQ(CountType(*graph, "rq"), 2u);
  EXPECT_EQ(CountType(*graph, "cfs_rq"), 2u);
}

TEST_F(FiguresTest, MapleFigureWalksTheRealTree) {
  auto graph = PlotFigure("fig9_2");
  ASSERT_NE(graph, nullptr);
  const vkern::task_struct* target = nullptr;
  dbg::Value symbol;
  ASSERT_TRUE(debugger_->symbols().FindGlobal("target_task", &symbol));
  target = reinterpret_cast<const vkern::task_struct*>(symbol.addr());
  // VMAs counted twice (tree leaves and the distilled address-space list are
  // interned to the same boxes), so the count matches map_count exactly.
  EXPECT_EQ(CountType(*graph, "vm_area_struct"),
            static_cast<size_t>(target->mm->map_count));
  EXPECT_GE(CountType(*graph, "maple_node"), 1u);
  EXPECT_EQ(CountType(*graph, "maple_tree"), 1u);
}

TEST_F(FiguresTest, SignalFigureShows64Actions) {
  auto graph = PlotFigure("fig11_1");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(CountType(*graph, "k_sigaction"), static_cast<size_t>(vkern::kNsig));
}

TEST_F(FiguresTest, WorkqueueFigureResolvesHeterogeneousTypes) {
  // Re-queue fresh items so the worklist is populated at plot time.
  kernel_->QueueMmPercpuWork(0);
  kernel_->QueueMmPercpuWork(1);
  auto graph = PlotFigure("workqueue");
  ASSERT_NE(graph, nullptr);
  EXPECT_GE(CountType(*graph, "vmstat_work_item"), 1u);
  EXPECT_GE(CountType(*graph, "lru_drain_item"), 1u);
  EXPECT_GE(CountType(*graph, "drain_pages_item"), 1u);
  EXPECT_EQ(CountType(*graph, "workqueue_struct"), 1u);
  EXPECT_EQ(CountType(*graph, "worker_pool"), 2u);
}

TEST_F(FiguresTest, SuperblockFigureListsBootMounts) {
  auto graph = PlotFigure("fig14_3");
  ASSERT_NE(graph, nullptr);
  EXPECT_GE(CountType(*graph, "super_block"), 4u);
  EXPECT_GE(CountType(*graph, "block_device"), 1u);
}

TEST_F(FiguresTest, SocketFigureFindsConnectedPairs) {
  auto graph = PlotFigure("socketconn");
  ASSERT_NE(graph, nullptr);
  EXPECT_GE(CountType(*graph, "socket"), 1u);
  EXPECT_GE(CountType(*graph, "sock"), 2u);  // a socket and its peer
}

// --- Table 3: objectives, hand-written and via vchat ---

class ObjectiveSweep : public FiguresTest, public ::testing::WithParamInterface<int> {};

TEST_P(ObjectiveSweep, HandWrittenViewQlApplies) {
  const ObjectiveDef& objective = AllObjectives()[static_cast<size_t>(GetParam())];
  auto graph = PlotFigure(objective.figure_id);
  ASSERT_NE(graph, nullptr);
  viewql::QueryEngine engine(graph.get(), debugger_.get());
  vl::Status status = engine.Execute(objective.viewql);
  ASSERT_TRUE(status.ok()) << objective.description << ": " << status.ToString();
  EXPECT_GT(engine.stats().boxes_updated, 0u)
      << objective.description << ": the reference ViewQL must affect the plot";
}

TEST_P(ObjectiveSweep, VchatSynthesizesEquivalentProgram) {
  const ObjectiveDef& objective = AllObjectives()[static_cast<size_t>(GetParam())];

  VchatSynthesizer vchat;
  auto synthesized = vchat.Synthesize(objective.nl_request);
  ASSERT_TRUE(synthesized.ok()) << objective.nl_request << ": "
                                << synthesized.status().ToString();
  ASSERT_TRUE(viewql::CheckViewQl(*synthesized).ok()) << *synthesized;

  // Apply the reference and the synthesized program to two fresh plots; the
  // resulting attribute assignments must be identical box-for-box.
  auto graph_ref = PlotFigure(objective.figure_id);
  auto graph_syn = PlotFigure(objective.figure_id);
  ASSERT_NE(graph_ref, nullptr);
  ASSERT_NE(graph_syn, nullptr);
  ASSERT_EQ(graph_ref->size(), graph_syn->size());

  viewql::QueryEngine ref(graph_ref.get(), debugger_.get());
  ASSERT_TRUE(ref.Execute(objective.viewql).ok());
  viewql::QueryEngine syn(graph_syn.get(), debugger_.get());
  vl::Status status = syn.Execute(*synthesized);
  ASSERT_TRUE(status.ok()) << *synthesized << "\n" << status.ToString();

  for (uint64_t id = 0; id < graph_ref->size(); ++id) {
    EXPECT_EQ(graph_ref->box(id)->attrs(), graph_syn->box(id)->attrs())
        << objective.description << " diverges at box " << id << "\nsynthesized:\n"
        << *synthesized;
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, ObjectiveSweep,
                         ::testing::Range(0, static_cast<int>(10)));

}  // namespace
}  // namespace vision
