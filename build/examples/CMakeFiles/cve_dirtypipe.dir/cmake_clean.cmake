file(REMOVE_RECURSE
  "CMakeFiles/cve_dirtypipe.dir/cve_dirtypipe.cpp.o"
  "CMakeFiles/cve_dirtypipe.dir/cve_dirtypipe.cpp.o.d"
  "cve_dirtypipe"
  "cve_dirtypipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_dirtypipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
