# Empty compiler generated dependencies file for cve_dirtypipe.
# This may be replaced when dependencies are built.
