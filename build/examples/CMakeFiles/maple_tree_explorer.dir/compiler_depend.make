# Empty compiler generated dependencies file for maple_tree_explorer.
# This may be replaced when dependencies are built.
