file(REMOVE_RECURSE
  "CMakeFiles/maple_tree_explorer.dir/maple_tree_explorer.cpp.o"
  "CMakeFiles/maple_tree_explorer.dir/maple_tree_explorer.cpp.o.d"
  "maple_tree_explorer"
  "maple_tree_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maple_tree_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
