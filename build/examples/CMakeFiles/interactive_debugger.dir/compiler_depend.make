# Empty compiler generated dependencies file for interactive_debugger.
# This may be replaced when dependencies are built.
