file(REMOVE_RECURSE
  "CMakeFiles/interactive_debugger.dir/interactive_debugger.cpp.o"
  "CMakeFiles/interactive_debugger.dir/interactive_debugger.cpp.o.d"
  "interactive_debugger"
  "interactive_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
