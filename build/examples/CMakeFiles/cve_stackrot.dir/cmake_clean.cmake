file(REMOVE_RECURSE
  "CMakeFiles/cve_stackrot.dir/cve_stackrot.cpp.o"
  "CMakeFiles/cve_stackrot.dir/cve_stackrot.cpp.o.d"
  "cve_stackrot"
  "cve_stackrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cve_stackrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
