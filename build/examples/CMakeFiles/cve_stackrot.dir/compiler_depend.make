# Empty compiler generated dependencies file for cve_stackrot.
# This may be replaced when dependencies are built.
