# Empty dependencies file for workqueue_inspect.
# This may be replaced when dependencies are built.
