file(REMOVE_RECURSE
  "CMakeFiles/workqueue_inspect.dir/workqueue_inspect.cpp.o"
  "CMakeFiles/workqueue_inspect.dir/workqueue_inspect.cpp.o.d"
  "workqueue_inspect"
  "workqueue_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workqueue_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
