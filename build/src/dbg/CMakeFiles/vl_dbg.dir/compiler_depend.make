# Empty compiler generated dependencies file for vl_dbg.
# This may be replaced when dependencies are built.
