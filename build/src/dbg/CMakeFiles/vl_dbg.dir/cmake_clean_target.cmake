file(REMOVE_RECURSE
  "libvl_dbg.a"
)
