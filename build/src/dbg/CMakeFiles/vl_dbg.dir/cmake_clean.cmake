file(REMOVE_RECURSE
  "CMakeFiles/vl_dbg.dir/expr.cc.o"
  "CMakeFiles/vl_dbg.dir/expr.cc.o.d"
  "CMakeFiles/vl_dbg.dir/kernel_introspect.cc.o"
  "CMakeFiles/vl_dbg.dir/kernel_introspect.cc.o.d"
  "CMakeFiles/vl_dbg.dir/target.cc.o"
  "CMakeFiles/vl_dbg.dir/target.cc.o.d"
  "CMakeFiles/vl_dbg.dir/type.cc.o"
  "CMakeFiles/vl_dbg.dir/type.cc.o.d"
  "CMakeFiles/vl_dbg.dir/value.cc.o"
  "CMakeFiles/vl_dbg.dir/value.cc.o.d"
  "libvl_dbg.a"
  "libvl_dbg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_dbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
