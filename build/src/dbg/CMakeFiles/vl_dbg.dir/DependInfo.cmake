
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbg/expr.cc" "src/dbg/CMakeFiles/vl_dbg.dir/expr.cc.o" "gcc" "src/dbg/CMakeFiles/vl_dbg.dir/expr.cc.o.d"
  "/root/repo/src/dbg/kernel_introspect.cc" "src/dbg/CMakeFiles/vl_dbg.dir/kernel_introspect.cc.o" "gcc" "src/dbg/CMakeFiles/vl_dbg.dir/kernel_introspect.cc.o.d"
  "/root/repo/src/dbg/target.cc" "src/dbg/CMakeFiles/vl_dbg.dir/target.cc.o" "gcc" "src/dbg/CMakeFiles/vl_dbg.dir/target.cc.o.d"
  "/root/repo/src/dbg/type.cc" "src/dbg/CMakeFiles/vl_dbg.dir/type.cc.o" "gcc" "src/dbg/CMakeFiles/vl_dbg.dir/type.cc.o.d"
  "/root/repo/src/dbg/value.cc" "src/dbg/CMakeFiles/vl_dbg.dir/value.cc.o" "gcc" "src/dbg/CMakeFiles/vl_dbg.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vkern/CMakeFiles/vl_vkern.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
