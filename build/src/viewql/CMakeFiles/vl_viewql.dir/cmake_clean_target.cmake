file(REMOVE_RECURSE
  "libvl_viewql.a"
)
