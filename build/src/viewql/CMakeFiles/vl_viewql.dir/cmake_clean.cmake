file(REMOVE_RECURSE
  "CMakeFiles/vl_viewql.dir/query.cc.o"
  "CMakeFiles/vl_viewql.dir/query.cc.o.d"
  "libvl_viewql.a"
  "libvl_viewql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_viewql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
