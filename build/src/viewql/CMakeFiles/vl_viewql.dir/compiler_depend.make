# Empty compiler generated dependencies file for vl_viewql.
# This may be replaced when dependencies are built.
