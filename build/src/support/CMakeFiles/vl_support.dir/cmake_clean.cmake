file(REMOVE_RECURSE
  "CMakeFiles/vl_support.dir/json.cc.o"
  "CMakeFiles/vl_support.dir/json.cc.o.d"
  "CMakeFiles/vl_support.dir/status.cc.o"
  "CMakeFiles/vl_support.dir/status.cc.o.d"
  "CMakeFiles/vl_support.dir/str.cc.o"
  "CMakeFiles/vl_support.dir/str.cc.o.d"
  "libvl_support.a"
  "libvl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
