file(REMOVE_RECURSE
  "libvl_support.a"
)
