# Empty dependencies file for vl_support.
# This may be replaced when dependencies are built.
