file(REMOVE_RECURSE
  "libvl_viewcl.a"
)
