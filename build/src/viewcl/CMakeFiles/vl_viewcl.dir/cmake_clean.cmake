file(REMOVE_RECURSE
  "CMakeFiles/vl_viewcl.dir/decorate.cc.o"
  "CMakeFiles/vl_viewcl.dir/decorate.cc.o.d"
  "CMakeFiles/vl_viewcl.dir/graph.cc.o"
  "CMakeFiles/vl_viewcl.dir/graph.cc.o.d"
  "CMakeFiles/vl_viewcl.dir/interp.cc.o"
  "CMakeFiles/vl_viewcl.dir/interp.cc.o.d"
  "CMakeFiles/vl_viewcl.dir/lexer.cc.o"
  "CMakeFiles/vl_viewcl.dir/lexer.cc.o.d"
  "CMakeFiles/vl_viewcl.dir/parser.cc.o"
  "CMakeFiles/vl_viewcl.dir/parser.cc.o.d"
  "CMakeFiles/vl_viewcl.dir/synthesize.cc.o"
  "CMakeFiles/vl_viewcl.dir/synthesize.cc.o.d"
  "libvl_viewcl.a"
  "libvl_viewcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_viewcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
