
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viewcl/decorate.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/decorate.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/decorate.cc.o.d"
  "/root/repo/src/viewcl/graph.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/graph.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/graph.cc.o.d"
  "/root/repo/src/viewcl/interp.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/interp.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/interp.cc.o.d"
  "/root/repo/src/viewcl/lexer.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/lexer.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/lexer.cc.o.d"
  "/root/repo/src/viewcl/parser.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/parser.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/parser.cc.o.d"
  "/root/repo/src/viewcl/synthesize.cc" "src/viewcl/CMakeFiles/vl_viewcl.dir/synthesize.cc.o" "gcc" "src/viewcl/CMakeFiles/vl_viewcl.dir/synthesize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbg/CMakeFiles/vl_dbg.dir/DependInfo.cmake"
  "/root/repo/build/src/vkern/CMakeFiles/vl_vkern.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
