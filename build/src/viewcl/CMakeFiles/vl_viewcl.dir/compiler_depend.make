# Empty compiler generated dependencies file for vl_viewcl.
# This may be replaced when dependencies are built.
