file(REMOVE_RECURSE
  "libvl_vkern.a"
)
