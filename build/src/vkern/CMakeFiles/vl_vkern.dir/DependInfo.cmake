
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vkern/arena.cc" "src/vkern/CMakeFiles/vl_vkern.dir/arena.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/arena.cc.o.d"
  "/root/repo/src/vkern/buddy.cc" "src/vkern/CMakeFiles/vl_vkern.dir/buddy.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/buddy.cc.o.d"
  "/root/repo/src/vkern/faults.cc" "src/vkern/CMakeFiles/vl_vkern.dir/faults.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/faults.cc.o.d"
  "/root/repo/src/vkern/fs.cc" "src/vkern/CMakeFiles/vl_vkern.dir/fs.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/fs.cc.o.d"
  "/root/repo/src/vkern/ipc.cc" "src/vkern/CMakeFiles/vl_vkern.dir/ipc.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/ipc.cc.o.d"
  "/root/repo/src/vkern/irq.cc" "src/vkern/CMakeFiles/vl_vkern.dir/irq.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/irq.cc.o.d"
  "/root/repo/src/vkern/kernel.cc" "src/vkern/CMakeFiles/vl_vkern.dir/kernel.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/kernel.cc.o.d"
  "/root/repo/src/vkern/kobject.cc" "src/vkern/CMakeFiles/vl_vkern.dir/kobject.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/kobject.cc.o.d"
  "/root/repo/src/vkern/maple.cc" "src/vkern/CMakeFiles/vl_vkern.dir/maple.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/maple.cc.o.d"
  "/root/repo/src/vkern/net.cc" "src/vkern/CMakeFiles/vl_vkern.dir/net.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/net.cc.o.d"
  "/root/repo/src/vkern/process.cc" "src/vkern/CMakeFiles/vl_vkern.dir/process.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/process.cc.o.d"
  "/root/repo/src/vkern/radix.cc" "src/vkern/CMakeFiles/vl_vkern.dir/radix.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/radix.cc.o.d"
  "/root/repo/src/vkern/rbtree.cc" "src/vkern/CMakeFiles/vl_vkern.dir/rbtree.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/rbtree.cc.o.d"
  "/root/repo/src/vkern/rcu.cc" "src/vkern/CMakeFiles/vl_vkern.dir/rcu.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/rcu.cc.o.d"
  "/root/repo/src/vkern/sched.cc" "src/vkern/CMakeFiles/vl_vkern.dir/sched.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/sched.cc.o.d"
  "/root/repo/src/vkern/slab.cc" "src/vkern/CMakeFiles/vl_vkern.dir/slab.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/slab.cc.o.d"
  "/root/repo/src/vkern/swap.cc" "src/vkern/CMakeFiles/vl_vkern.dir/swap.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/swap.cc.o.d"
  "/root/repo/src/vkern/timer.cc" "src/vkern/CMakeFiles/vl_vkern.dir/timer.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/timer.cc.o.d"
  "/root/repo/src/vkern/workload.cc" "src/vkern/CMakeFiles/vl_vkern.dir/workload.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/workload.cc.o.d"
  "/root/repo/src/vkern/workqueue.cc" "src/vkern/CMakeFiles/vl_vkern.dir/workqueue.cc.o" "gcc" "src/vkern/CMakeFiles/vl_vkern.dir/workqueue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
