# Empty compiler generated dependencies file for vl_vkern.
# This may be replaced when dependencies are built.
