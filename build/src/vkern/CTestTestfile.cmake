# CMake generated Testfile for 
# Source directory: /root/repo/src/vkern
# Build directory: /root/repo/build/src/vkern
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
