file(REMOVE_RECURSE
  "libvl_vision.a"
)
