file(REMOVE_RECURSE
  "CMakeFiles/vl_vision.dir/figures.cc.o"
  "CMakeFiles/vl_vision.dir/figures.cc.o.d"
  "CMakeFiles/vl_vision.dir/panes.cc.o"
  "CMakeFiles/vl_vision.dir/panes.cc.o.d"
  "CMakeFiles/vl_vision.dir/render.cc.o"
  "CMakeFiles/vl_vision.dir/render.cc.o.d"
  "CMakeFiles/vl_vision.dir/shell.cc.o"
  "CMakeFiles/vl_vision.dir/shell.cc.o.d"
  "CMakeFiles/vl_vision.dir/vchat.cc.o"
  "CMakeFiles/vl_vision.dir/vchat.cc.o.d"
  "libvl_vision.a"
  "libvl_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
