# Empty compiler generated dependencies file for vl_vision.
# This may be replaced when dependencies are built.
