file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dirtypipe.dir/bench/bench_fig7_dirtypipe.cc.o"
  "CMakeFiles/bench_fig7_dirtypipe.dir/bench/bench_fig7_dirtypipe.cc.o.d"
  "bench/bench_fig7_dirtypipe"
  "bench/bench_fig7_dirtypipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dirtypipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
