# Empty dependencies file for bench_fig4_maple.
# This may be replaced when dependencies are built.
