file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_maple.dir/bench/bench_fig4_maple.cc.o"
  "CMakeFiles/bench_fig4_maple.dir/bench/bench_fig4_maple.cc.o.d"
  "bench/bench_fig4_maple"
  "bench/bench_fig4_maple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_maple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
