# Empty dependencies file for bench_fig2_focus.
# This may be replaced when dependencies are built.
