file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_focus.dir/bench/bench_fig2_focus.cc.o"
  "CMakeFiles/bench_fig2_focus.dir/bench/bench_fig2_focus.cc.o.d"
  "bench/bench_fig2_focus"
  "bench/bench_fig2_focus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_focus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
