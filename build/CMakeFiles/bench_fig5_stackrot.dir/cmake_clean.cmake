file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stackrot.dir/bench/bench_fig5_stackrot.cc.o"
  "CMakeFiles/bench_fig5_stackrot.dir/bench/bench_fig5_stackrot.cc.o.d"
  "bench/bench_fig5_stackrot"
  "bench/bench_fig5_stackrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stackrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
