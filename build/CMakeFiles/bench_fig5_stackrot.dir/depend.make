# Empty dependencies file for bench_fig5_stackrot.
# This may be replaced when dependencies are built.
