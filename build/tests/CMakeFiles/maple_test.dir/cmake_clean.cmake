file(REMOVE_RECURSE
  "CMakeFiles/maple_test.dir/maple_test.cc.o"
  "CMakeFiles/maple_test.dir/maple_test.cc.o.d"
  "maple_test"
  "maple_test.pdb"
  "maple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
