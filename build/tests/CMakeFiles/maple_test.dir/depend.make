# Empty dependencies file for maple_test.
# This may be replaced when dependencies are built.
