# Empty dependencies file for subsys_test.
# This may be replaced when dependencies are built.
