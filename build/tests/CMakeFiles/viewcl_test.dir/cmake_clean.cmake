file(REMOVE_RECURSE
  "CMakeFiles/viewcl_test.dir/viewcl_test.cc.o"
  "CMakeFiles/viewcl_test.dir/viewcl_test.cc.o.d"
  "viewcl_test"
  "viewcl_test.pdb"
  "viewcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
