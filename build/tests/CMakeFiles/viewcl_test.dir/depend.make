# Empty dependencies file for viewcl_test.
# This may be replaced when dependencies are built.
