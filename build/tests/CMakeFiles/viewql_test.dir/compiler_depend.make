# Empty compiler generated dependencies file for viewql_test.
# This may be replaced when dependencies are built.
