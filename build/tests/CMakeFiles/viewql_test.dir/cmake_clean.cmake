file(REMOVE_RECURSE
  "CMakeFiles/viewql_test.dir/viewql_test.cc.o"
  "CMakeFiles/viewql_test.dir/viewql_test.cc.o.d"
  "viewql_test"
  "viewql_test.pdb"
  "viewql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
