# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/rbtree_test[1]_include.cmake")
include("/root/repo/build/tests/buddy_test[1]_include.cmake")
include("/root/repo/build/tests/slab_test[1]_include.cmake")
include("/root/repo/build/tests/radix_test[1]_include.cmake")
include("/root/repo/build/tests/rcu_test[1]_include.cmake")
include("/root/repo/build/tests/maple_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/subsys_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/dbg_test[1]_include.cmake")
include("/root/repo/build/tests/viewcl_test[1]_include.cmake")
include("/root/repo/build/tests/viewql_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/vision_test[1]_include.cmake")
include("/root/repo/build/tests/list_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/expr_fuzz_test[1]_include.cmake")
