#include "src/vkern/radix.h"

#include <cassert>
#include <cstring>

namespace vkern {

namespace {

// Maximum index representable by a tree whose root has the given shift.
uint64_t ShiftMaxIndex(uint32_t shift) {
  if (shift + kRadixTreeMapShift >= 64) {
    return ~0ull;
  }
  return (1ull << (shift + kRadixTreeMapShift)) - 1;
}

}  // namespace

RadixTreeOps::RadixTreeOps(SlabAllocator* slabs) : slabs_(slabs) {
  node_cache_ = slabs_->FindCache("radix_tree_node");
  if (node_cache_ == nullptr) {
    node_cache_ = slabs_->CreateCache("radix_tree_node", sizeof(radix_tree_node), 64);
  }
}

radix_tree_node* RadixTreeOps::NewNode(uint8_t shift, uint8_t offset, radix_tree_node* parent) {
  auto* node = slabs_->AllocAs<radix_tree_node>(node_cache_);
  if (node == nullptr) {
    return nullptr;
  }
  node->shift = shift;
  node->offset = offset;
  node->count = 0;
  node->parent = parent;
  return node;
}

bool RadixTreeOps::Insert(radix_tree_root* root, uint64_t index, void* item) {
  // Grow the tree until the root covers `index`.
  if (root->rnode == nullptr) {
    radix_tree_node* node = NewNode(0, 0, nullptr);
    if (node == nullptr) {
      return false;
    }
    root->rnode = node;
    root->height = 1;
  }
  while (index > ShiftMaxIndex(root->rnode->shift)) {
    radix_tree_node* new_root =
        NewNode(static_cast<uint8_t>(root->rnode->shift + kRadixTreeMapShift), 0, nullptr);
    if (new_root == nullptr) {
      return false;
    }
    new_root->slots[0] = root->rnode;
    new_root->count = root->rnode->count > 0 ? 1 : 0;
    root->rnode->parent = new_root;
    root->rnode = new_root;
    root->height++;
  }
  // Descend, materializing interior nodes.
  radix_tree_node* node = root->rnode;
  while (node->shift > 0) {
    uint32_t slot = (index >> node->shift) & (kRadixTreeMapSize - 1);
    auto* child = static_cast<radix_tree_node*>(node->slots[slot]);
    if (child == nullptr) {
      child = NewNode(static_cast<uint8_t>(node->shift - kRadixTreeMapShift),
                      static_cast<uint8_t>(slot), node);
      if (child == nullptr) {
        return false;
      }
      node->slots[slot] = child;
      node->count++;
    }
    node = child;
  }
  uint32_t slot = index & (kRadixTreeMapSize - 1);
  if (node->slots[slot] == nullptr) {
    node->count++;
  }
  node->slots[slot] = item;
  return true;
}

void* RadixTreeOps::Lookup(const radix_tree_root* root, uint64_t index) const {
  const radix_tree_node* node = root->rnode;
  if (node == nullptr || index > ShiftMaxIndex(node->shift)) {
    return nullptr;
  }
  while (node->shift > 0) {
    uint32_t slot = (index >> node->shift) & (kRadixTreeMapSize - 1);
    node = static_cast<const radix_tree_node*>(node->slots[slot]);
    if (node == nullptr) {
      return nullptr;
    }
  }
  return node->slots[index & (kRadixTreeMapSize - 1)];
}

void* RadixTreeOps::Delete(radix_tree_root* root, uint64_t index) {
  radix_tree_node* node = root->rnode;
  if (node == nullptr || index > ShiftMaxIndex(node->shift)) {
    return nullptr;
  }
  while (node->shift > 0) {
    uint32_t slot = (index >> node->shift) & (kRadixTreeMapSize - 1);
    node = static_cast<radix_tree_node*>(node->slots[slot]);
    if (node == nullptr) {
      return nullptr;
    }
  }
  uint32_t slot = index & (kRadixTreeMapSize - 1);
  void* item = node->slots[slot];
  if (item != nullptr) {
    node->slots[slot] = nullptr;
    node->count--;
  }
  return item;
}

void RadixTreeOps::ForEachNode(const radix_tree_node* node, uint64_t prefix,
                               const std::function<void(uint64_t, void*)>& fn) const {
  for (uint32_t i = 0; i < kRadixTreeMapSize; ++i) {
    void* entry = node->slots[i];
    if (entry == nullptr) {
      continue;
    }
    uint64_t index = prefix | (static_cast<uint64_t>(i) << node->shift);
    if (node->shift == 0) {
      fn(index, entry);
    } else {
      ForEachNode(static_cast<const radix_tree_node*>(entry), index, fn);
    }
  }
}

void RadixTreeOps::ForEach(const radix_tree_root* root,
                           const std::function<void(uint64_t, void*)>& fn) const {
  if (root->rnode != nullptr) {
    ForEachNode(root->rnode, 0, fn);
  }
}

uint64_t RadixTreeOps::CountEntries(const radix_tree_root* root) const {
  uint64_t n = 0;
  ForEach(root, [&n](uint64_t, void*) { ++n; });
  return n;
}

}  // namespace vkern
