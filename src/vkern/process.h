// Process management: task creation (fork/clone), the process tree, the PID
// hash, memory descriptors with maple-tree VMAs, anonymous reverse mapping,
// and signal delivery.
//
// Covers ULK Figures 3-4 (parenthood tree), 3-6 (PID hash), 9-2 (address
// space), 11-1 (signal handling), 17-1 (anon rmap), plus the mm substrate the
// paper's maple-tree figures (3/4) and StackRot case study visualize.

#ifndef SRC_VKERN_PROCESS_H_
#define SRC_VKERN_PROCESS_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/buddy.h"
#include "src/vkern/fs.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/maple.h"
#include "src/vkern/sched.h"
#include "src/vkern/slab.h"

namespace vkern {

// clone() flag subset.
inline constexpr uint64_t kCloneVm = 0x00000100;
inline constexpr uint64_t kCloneFiles = 0x00000400;
inline constexpr uint64_t kCloneSighand = 0x00000800;
inline constexpr uint64_t kCloneThread = 0x00010000;

// Default user address-space layout.
inline constexpr uint64_t kTaskSize = 0x0000800000000000ull;   // 128 TiB
inline constexpr uint64_t kMmapBase = 0x00007f0000000000ull;
inline constexpr uint64_t kStackTop = 0x00007ffffffff000ull;
inline constexpr uint64_t kCodeStart = 0x0000000000400000ull;

class ProcessManager {
 public:
  ProcessManager(SlabAllocator* slabs, BuddyAllocator* buddy, MapleTreeOps* maple,
                 Scheduler* sched, FsManager* fs);

  // Boot: creates the per-CPU idle tasks ("swapper/N", pid 0) and init (pid 1)
  // and installs them on the run queues.
  void Boot();

  // fork()/clone(): creates a task as a child of `parent`. Without kCloneVm a
  // fresh mm with the standard layout is built. The task is enqueued on `cpu`.
  task_struct* CreateTask(std::string_view name, task_struct* parent, uint64_t clone_flags,
                          int cpu);
  // pthread_create-style thread in `leader`'s group.
  task_struct* CreateThread(task_struct* leader, std::string_view name, int cpu);
  // A kernel thread (no mm).
  task_struct* CreateKthread(std::string_view name, int cpu);

  // exit(): detaches the task (zombie until reaped); children reparent to init.
  void ExitTask(task_struct* task, int exit_code);
  // wait()/release_task: frees the zombie's resources.
  void ReapTask(task_struct* task);

  task_struct* FindTaskByPid(int pid) const;

  // --- memory descriptor operations ---
  mm_struct* CreateMm(task_struct* owner);
  // Standard exec layout: code, data, heap and stack VMAs.
  void SetupStandardLayout(mm_struct* mm, file* exe);
  // mmap: picks a free range (or uses `fixed_addr` when nonzero). Returns the
  // new VMA or nullptr.
  vm_area_struct* Mmap(mm_struct* mm, uint64_t len, uint64_t vm_flags, file* f, uint64_t pgoff,
                       uint64_t fixed_addr = 0);
  // munmap of the VMA containing `addr`. Returns true if one was removed.
  bool Munmap(mm_struct* mm, uint64_t addr);
  vm_area_struct* FindVma(mm_struct* mm, uint64_t addr) const;
  // Simulated anonymous page fault: allocates a page, wires it to the VMA's
  // anon_vma through the reverse map (ULK Figure 17-1).
  page* FaultAnonPage(vm_area_struct* vma, uint64_t addr);

  // --- signals (ULK Figure 11-1) ---
  void SetSigaction(task_struct* task, int sig, sighandler_t handler, uint64_t flags);
  bool SendSignal(task_struct* task, int sig, int from_pid);
  // Delivers (consumes) one pending signal; returns its number or 0.
  int DequeueSignal(task_struct* task);

  task_struct* init_task() { return init_task_; }
  task_struct* idle_task(int cpu) { return idle_[cpu]; }
  hlist_head* pid_hash() { return pid_hash_; }
  list_head* task_list_head() { return &init_task_->tasks; }
  int task_count() const;

  kmem_cache* task_cache() { return task_cache_; }
  kmem_cache* vma_cache() { return vma_cache_; }
  kmem_cache* mm_cache() { return mm_cache_; }

  static uint32_t PidHashFn(int pid) { return static_cast<uint32_t>(pid) & (kPidHashSize - 1); }

 private:
  task_struct* AllocTaskCommon(std::string_view name, uint32_t pf_flags);
  void AttachPid(task_struct* task, int nr);
  void DetachPid(task_struct* task);
  signal_struct* AllocSignalStruct(task_struct* for_task);
  sighand_struct* AllocSighand();
  anon_vma* AnonVmaPrepare(vm_area_struct* vma);
  void FreeVma(vm_area_struct* vma);
  void DestroyMm(mm_struct* mm);

  SlabAllocator* slabs_;
  BuddyAllocator* buddy_;
  MapleTreeOps* maple_;
  Scheduler* sched_;
  FsManager* fs_;

  kmem_cache* task_cache_;
  kmem_cache* mm_cache_;
  kmem_cache* vma_cache_;
  kmem_cache* signal_cache_;
  kmem_cache* sighand_cache_;
  kmem_cache* pid_cache_;
  kmem_cache* sigqueue_cache_;
  kmem_cache* anon_vma_cache_;
  kmem_cache* avc_cache_;

  hlist_head* pid_hash_;       // in-arena bucket array [kPidHashSize]
  task_struct* init_task_ = nullptr;
  task_struct* idle_[kNrCpus] = {};
  int next_pid_ = 1;
};

}  // namespace vkern

#endif  // SRC_VKERN_PROCESS_H_
