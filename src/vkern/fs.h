// VFS substrate: superblocks, inodes, dentries, files, fd tables, the
// radix-tree page cache, block devices, and pipes.
//
// Covers the object graphs of ULK Figures 12-3 (fd array), 14-3 (block device
// descriptors), 15-1 (page cache radix tree), 16-2 (file memory mapping), and
// the pipe machinery of the Dirty Pipe case study (paper Figure 7).

#ifndef SRC_VKERN_FS_H_
#define SRC_VKERN_FS_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/buddy.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/radix.h"
#include "src/vkern/slab.h"

namespace vkern {

// i_mode type bits (matching the real S_IF* values).
inline constexpr uint32_t kSIfReg = 0100000;
inline constexpr uint32_t kSIfDir = 0040000;
inline constexpr uint32_t kSIfIfo = 0010000;
inline constexpr uint32_t kSIfSock = 0140000;
inline constexpr uint32_t kSIfBlk = 0060000;

class FsManager {
 public:
  FsManager(SlabAllocator* slabs, BuddyAllocator* buddy, RadixTreeOps* radix);

  // --- filesystems and superblocks ---
  file_system_type* RegisterFilesystem(std::string_view name);
  super_block* CreateSuperBlock(file_system_type* fs_type, std::string_view id,
                                block_device* bdev);
  block_device* CreateBlockDevice(std::string_view disk_name, uint64_t dev, uint64_t nr_sectors);

  // --- inodes / dentries / files ---
  inode* CreateInode(super_block* sb, uint32_t mode, int64_t size);
  dentry* CreateDentry(std::string_view name, inode* ino, dentry* parent);
  file* OpenFile(dentry* dent, uint32_t flags);
  void CloseFile(file* f);

  // --- the page cache ---
  // Reads page `pgoff` of the file into the page cache (allocating and filling
  // a page on miss); mirrors filemap_grab_page.
  page* PageCacheGrab(inode* ino, uint64_t pgoff);
  page* PageCacheLookup(inode* ino, uint64_t pgoff) const;

  // --- fd tables ---
  files_struct* CreateFilesStruct();
  int InstallFd(files_struct* files, file* f);
  file* FdGet(files_struct* files, int fd) const;
  void CloseFd(files_struct* files, int fd);

  // --- pipes (CVE-2022-0847 substrate) ---
  // Creates a pipe: an inode with pipe_inode_info and two file descriptors'
  // backing file objects (read end, write end).
  pipe_inode_info* CreatePipe(super_block* pipefs_sb, file** read_end, file** write_end);

  // pipe_write: copies `len` bytes into the pipe. When the head buffer has the
  // CAN_MERGE flag, bytes are appended *into its existing page* — the Dirty
  // Pipe corruption vector.
  bool PipeWrite(pipe_inode_info* pipe, const void* data, uint32_t len);

  // pipe_read: consumes up to `len` bytes; returns bytes read. Released ring
  // slots keep their stale flags, as in Linux.
  uint32_t PipeRead(pipe_inode_info* pipe, uint32_t len);

  // splice(file -> pipe): zero-copy moves a page-cache page into a pipe buffer
  // (copy_page_to_iter_pipe). `init_flags_bug` reproduces CVE-2022-0847: the
  // buffer's flags are left uninitialized instead of being cleared, so a stale
  // PIPE_BUF_FLAG_CAN_MERGE survives.
  bool SpliceFileToPipe(file* src, uint64_t pgoff, pipe_inode_info* pipe, uint32_t len,
                        bool init_flags_bug);

  list_head* super_blocks() { return super_blocks_; }
  list_head* filesystems() { return filesystems_; }

  kmem_cache* inode_cache() { return inode_cache_; }
  kmem_cache* file_cache() { return file_cache_; }
  kmem_cache* dentry_cache() { return dentry_cache_; }

  const file_operations_stub* pipefifo_fops() const { return pipefifo_fops_; }
  const pipe_buf_operations_stub* anon_pipe_buf_ops() const { return anon_pipe_buf_ops_; }
  const pipe_buf_operations_stub* page_cache_pipe_buf_ops() const {
    return page_cache_pipe_buf_ops_;
  }

 private:
  SlabAllocator* slabs_;
  BuddyAllocator* buddy_;
  RadixTreeOps* radix_;

  list_head* super_blocks_;   // global super_blocks list (arena)
  list_head* filesystems_;    // registered file_system_types (arena)

  kmem_cache* sb_cache_;
  kmem_cache* inode_cache_;
  kmem_cache* dentry_cache_;
  kmem_cache* file_cache_;
  kmem_cache* files_cache_;
  kmem_cache* bdev_cache_;
  kmem_cache* fstype_cache_;
  kmem_cache* pipe_cache_;
  kmem_cache* pipe_buf_cache_;

  // Ops tables allocated inside the arena (a real kernel's .rodata).
  file_operations_stub* pipefifo_fops_;
  file_operations_stub* def_file_fops_;
  pipe_buf_operations_stub* anon_pipe_buf_ops_;
  pipe_buf_operations_stub* page_cache_pipe_buf_ops_;

  uint64_t next_ino_ = 1;
};

}  // namespace vkern

#endif  // SRC_VKERN_FS_H_
