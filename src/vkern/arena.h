// Simulated kernel physical memory.
//
// Every object in the simulated kernel lives inside one fixed, non-moving byte
// arena, so an object reference *is* a stable address that the debugger layer
// can read back as raw bytes — exactly how GDB sees a live kernel. The arena
// never reallocates.

#ifndef SRC_VKERN_ARENA_H_
#define SRC_VKERN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace vkern {

class Arena {
 public:
  // Size must be a multiple of the page size (4 KiB).
  explicit Arena(size_t size_bytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  uint8_t* base() { return mem_.get(); }
  const uint8_t* base() const { return mem_.get(); }
  size_t size() const { return size_; }

  uint64_t base_addr() const { return reinterpret_cast<uint64_t>(mem_.get()); }
  uint64_t end_addr() const { return base_addr() + size_; }

  // True if [addr, addr+len) lies wholly inside the arena.
  bool Contains(uint64_t addr, size_t len) const {
    return addr >= base_addr() && len <= size_ && addr - base_addr() <= size_ - len;
  }

  bool ContainsPtr(const void* ptr, size_t len = 1) const {
    return Contains(reinterpret_cast<uint64_t>(ptr), len);
  }

  void* AtAddr(uint64_t addr) { return mem_.get() + (addr - base_addr()); }
  const void* AtAddr(uint64_t addr) const { return mem_.get() + (addr - base_addr()); }

 private:
  size_t size_;
  std::unique_ptr<uint8_t[]> mem_;
};

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageShift = 12;

}  // namespace vkern

#endif  // SRC_VKERN_ARENA_H_
