// Kernel-style intrusive containers: list_head and hlist, plus container_of.
//
// These mirror include/linux/list.h so that the object graphs the debugger
// extracts have the same shape (embedded nodes, container_of indirection) as a
// real kernel — which is precisely the complication ViewCL's Container
// adapters exist to handle.

#ifndef SRC_VKERN_LIST_H_
#define SRC_VKERN_LIST_H_

#include <cstddef>
#include <cstdint>

namespace vkern {

struct list_head {
  list_head* next;
  list_head* prev;
};

// container_of: recover the enclosing object from a pointer to its member.
#define VKERN_CONTAINER_OF(ptr, type, member) \
  (reinterpret_cast<type*>(reinterpret_cast<char*>(ptr) - offsetof(type, member)))

inline void INIT_LIST_HEAD(list_head* head) {
  head->next = head;
  head->prev = head;
}

inline void __list_add(list_head* entry, list_head* prev, list_head* next) {
  next->prev = entry;
  entry->next = next;
  entry->prev = prev;
  prev->next = entry;
}

inline void list_add(list_head* entry, list_head* head) { __list_add(entry, head, head->next); }

inline void list_add_tail(list_head* entry, list_head* head) {
  __list_add(entry, head->prev, head);
}

inline void list_del(list_head* entry) {
  entry->next->prev = entry->prev;
  entry->prev->next = entry->next;
  entry->next = nullptr;
  entry->prev = nullptr;
}

inline void list_del_init(list_head* entry) {
  entry->next->prev = entry->prev;
  entry->prev->next = entry->next;
  INIT_LIST_HEAD(entry);
}

inline bool list_empty(const list_head* head) { return head->next == head; }

inline void list_move_tail(list_head* entry, list_head* head) {
  entry->next->prev = entry->prev;
  entry->prev->next = entry->next;
  list_add_tail(entry, head);
}

inline size_t list_count(const list_head* head) {
  size_t n = 0;
  for (const list_head* p = head->next; p != head; p = p->next) {
    ++n;
  }
  return n;
}

// Iterates `pos` (a list_head*) over the list; body must not delete `pos`.
#define VKERN_LIST_FOR_EACH(pos, head) \
  for (::vkern::list_head* pos = (head)->next; pos != (head); pos = pos->next)

// hlist: singly-headed doubly-linked list for hash buckets (half the head size).
struct hlist_node {
  hlist_node* next;
  hlist_node** pprev;
};

struct hlist_head {
  hlist_node* first;
};

inline void INIT_HLIST_HEAD(hlist_head* head) { head->first = nullptr; }

inline void INIT_HLIST_NODE(hlist_node* node) {
  node->next = nullptr;
  node->pprev = nullptr;
}

inline void hlist_add_head(hlist_node* node, hlist_head* head) {
  hlist_node* first = head->first;
  node->next = first;
  if (first != nullptr) {
    first->pprev = &node->next;
  }
  head->first = node;
  node->pprev = &head->first;
}

inline bool hlist_unhashed(const hlist_node* node) { return node->pprev == nullptr; }

inline void hlist_del(hlist_node* node) {
  if (hlist_unhashed(node)) {
    return;
  }
  hlist_node* next = node->next;
  hlist_node** pprev = node->pprev;
  *pprev = next;
  if (next != nullptr) {
    next->pprev = pprev;
  }
  node->next = nullptr;
  node->pprev = nullptr;
}

inline bool hlist_empty(const hlist_head* head) { return head->first == nullptr; }

inline size_t hlist_count(const hlist_head* head) {
  size_t n = 0;
  for (const hlist_node* p = head->first; p != nullptr; p = p->next) {
    ++n;
  }
  return n;
}

}  // namespace vkern

#endif  // SRC_VKERN_LIST_H_
