#include "src/vkern/buddy.h"

#include <cassert>
#include <cstring>

namespace vkern {

BuddyAllocator::BuddyAllocator(Arena* arena) : arena_(arena) {
  // Carve the arena: zone descriptor first, then mem_map, then the pool.
  uint8_t* cursor = arena->base();
  zone_ = reinterpret_cast<zone*>(cursor);
  cursor += (sizeof(zone) + 63) & ~size_t{63};

  // Estimate pool size: everything after the metadata, in whole pages. The
  // mem_map must describe exactly the pool pages.
  size_t remaining = arena->size() - static_cast<size_t>(cursor - arena->base());
  // Solve n * (sizeof(page) + kPageSize) <= remaining (approximately).
  size_t n = remaining / (sizeof(page) + kPageSize);
  // Leave slack for page alignment of the pool base.
  while (n > 0) {
    uint8_t* map_end = cursor + n * sizeof(page);
    uint64_t pool = (reinterpret_cast<uint64_t>(map_end) + kPageSize - 1) & ~uint64_t{kPageSize - 1};
    if (pool + n * kPageSize <= arena->end_addr()) {
      break;
    }
    --n;
  }
  assert(n > 8 && "arena too small");

  mem_map_ = reinterpret_cast<page*>(cursor);
  uint8_t* map_end = cursor + n * sizeof(page);
  pool_base_ = reinterpret_cast<uint8_t*>(
      (reinterpret_cast<uint64_t>(map_end) + kPageSize - 1) & ~uint64_t{kPageSize - 1});
  nr_pool_pages_ = n;
  pool_start_pfn_ = reinterpret_cast<uint64_t>(pool_base_) >> kPageShift;

  std::memset(zone_, 0, sizeof(zone));
  std::memcpy(zone_->name, "Normal", 7);
  zone_->zone_start_pfn = pool_start_pfn_;
  zone_->spanned_pages = n;
  for (int order = 0; order < kMaxOrder; ++order) {
    INIT_LIST_HEAD(&zone_->free_area_[order].free_list);
    zone_->free_area_[order].nr_free = 0;
  }

  for (size_t i = 0; i < n; ++i) {
    page* pg = &mem_map_[i];
    std::memset(pg, 0, sizeof(page));
    pg->flags = PG_reserved;
    INIT_LIST_HEAD(&pg->lru);
  }

  // Seed the free lists with maximal aligned blocks.
  size_t pfn = 0;
  while (pfn < n) {
    int order = kMaxOrder - 1;
    while (order > 0 &&
           (((pool_start_pfn_ + pfn) & ((1ull << order) - 1)) != 0 ||
            pfn + (1ull << order) > n)) {
      --order;
    }
    page* pg = &mem_map_[pfn];
    pg->flags = PG_buddy;
    pg->order = order;
    list_add_tail(&pg->lru, &zone_->free_area_[order].free_list);
    zone_->free_area_[order].nr_free++;
    zone_->free_pages += 1ull << order;
    pfn += 1ull << order;
  }
}

void* BuddyAllocator::PageAddress(const page* pg) const {
  size_t idx = static_cast<size_t>(pg - mem_map_);
  return const_cast<uint8_t*>(pool_base_) + idx * kPageSize;
}

page* BuddyAllocator::VirtToPage(const void* addr) const {
  uint64_t off = reinterpret_cast<uint64_t>(addr) - reinterpret_cast<uint64_t>(pool_base_);
  size_t idx = static_cast<size_t>(off >> kPageShift);
  assert(idx < nr_pool_pages_);
  return &mem_map_[idx];
}

uint64_t BuddyAllocator::PageToPfn(const page* pg) const {
  return pool_start_pfn_ + static_cast<uint64_t>(pg - mem_map_);
}

page* BuddyAllocator::PfnToPage(uint64_t pfn) const {
  assert(pfn >= pool_start_pfn_ && pfn < pool_start_pfn_ + nr_pool_pages_);
  return &mem_map_[pfn - pool_start_pfn_];
}

page* BuddyAllocator::BuddyOf(page* pg, int order) const {
  uint64_t pfn = PageToPfn(pg);
  uint64_t buddy_pfn = pfn ^ (1ull << order);
  if (buddy_pfn < pool_start_pfn_ || buddy_pfn >= pool_start_pfn_ + nr_pool_pages_) {
    return nullptr;
  }
  return PfnToPage(buddy_pfn);
}

void BuddyAllocator::SplitAndTake(page* pg, int high_order, int want_order) {
  // Split the block down to want_order, returning halves to the free lists.
  while (high_order > want_order) {
    --high_order;
    page* half = pg + (1ull << high_order);
    half->flags = PG_buddy;
    half->order = high_order;
    list_add(&half->lru, &zone_->free_area_[high_order].free_list);
    zone_->free_area_[high_order].nr_free++;
  }
}

page* BuddyAllocator::AllocPages(int order) {
  assert(order >= 0 && order < kMaxOrder);
  for (int o = order; o < kMaxOrder; ++o) {
    free_area* area = &zone_->free_area_[o];
    if (list_empty(&area->free_list)) {
      continue;
    }
    page* pg = VKERN_CONTAINER_OF(area->free_list.next, page, lru);
    list_del_init(&pg->lru);
    area->nr_free--;
    SplitAndTake(pg, o, order);
    zone_->free_pages -= 1ull << order;
    // Mark the whole allocated block in-use.
    for (uint64_t i = 0; i < (1ull << order); ++i) {
      page* p = pg + i;
      p->flags = 0;
      p->order = 0;
      p->refcount = 1;
      p->mapcount = 0;
      p->mapping = nullptr;
      p->index = 0;
      p->private_data = nullptr;
      INIT_LIST_HEAD(&p->lru);
    }
    pg->order = order;
    if (order > 0) {
      pg->flags |= PG_head;
    }
    return pg;
  }
  return nullptr;
}

void BuddyAllocator::FreePages(page* pg, int order) {
  assert(order >= 0 && order < kMaxOrder);
  assert((pg->flags & PG_buddy) == 0 && "double free");
  pg->refcount = 0;
  zone_->free_pages += 1ull << order;
  // Coalesce with free buddies.
  while (order < kMaxOrder - 1) {
    page* buddy = BuddyOf(pg, order);
    if (buddy == nullptr || (buddy->flags & PG_buddy) == 0 || buddy->order != order) {
      break;
    }
    list_del_init(&buddy->lru);
    zone_->free_area_[order].nr_free--;
    buddy->flags = 0;
    if (buddy < pg) {
      pg = buddy;
    }
    ++order;
  }
  pg->flags = PG_buddy;
  pg->order = order;
  list_add(&pg->lru, &zone_->free_area_[order].free_list);
  zone_->free_area_[order].nr_free++;
}

bool BuddyAllocator::Validate() const {
  uint64_t counted = 0;
  for (int order = 0; order < kMaxOrder; ++order) {
    const free_area* area = &zone_->free_area_[order];
    uint64_t entries = 0;
    for (const list_head* p = area->free_list.next; p != &area->free_list; p = p->next) {
      const page* pg = VKERN_CONTAINER_OF(const_cast<list_head*>(p), page, lru);
      if ((pg->flags & PG_buddy) == 0 || pg->order != order) {
        return false;
      }
      uint64_t pfn = PageToPfn(pg);
      if ((pfn & ((1ull << order) - 1)) != 0 && order > 0) {
        return false;  // misaligned block
      }
      counted += 1ull << order;
      ++entries;
    }
    if (entries != area->nr_free) {
      return false;
    }
  }
  return counted == zone_->free_pages;
}

}  // namespace vkern
