// Classic slab allocator (ULK Figure 8-4) on top of the buddy allocator.
//
// Each kmem_cache keeps three slab lists (partial/full/free); a slab is one or
// more buddy pages whose head holds the slab descriptor, followed by the
// objects. Free objects form an embedded index list and are poisoned with
// 0x6b, which is how the CVE case studies detect use-after-free reads.

#ifndef SRC_VKERN_SLAB_H_
#define SRC_VKERN_SLAB_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/buddy.h"
#include "src/vkern/kstructs.h"

namespace vkern {

inline constexpr uint8_t kSlabPoison = 0x6b;  // POISON_FREE
inline constexpr uint32_t kSlabFreeEnd = 0xffffffffu;

class SlabAllocator {
 public:
  explicit SlabAllocator(BuddyAllocator* buddy);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Creates a named cache. `align` must be a power of two (0 => 8).
  kmem_cache* CreateCache(std::string_view name, uint32_t object_size, uint32_t align = 0);

  void* Alloc(kmem_cache* cache);

  // Frees an object back to its cache (static: the slab descriptor is found
  // by masking the object address to the slab block boundary, so no allocator
  // state is needed — which lets RCU callbacks free nodes without a handle).
  static void Free(kmem_cache* cache, void* obj);

  // Typed helpers (zero-initialized allocation).
  template <typename T>
  T* AllocAs(kmem_cache* cache) {
    return static_cast<T*>(Alloc(cache));
  }

  // True if the whole object still carries free-poison (excluding the
  // embedded freelist word) — i.e. a freed object was dereferenced.
  static bool IsPoisoned(const void* obj, uint32_t object_size);

  kmem_cache* FindCache(std::string_view name) const;
  list_head* cache_chain() { return cache_chain_; }

  // Allocates raw metadata memory (for kmem_cache descriptors and globals)
  // from dedicated buddy pages. Never freed; address-stable.
  void* AllocMeta(size_t size, size_t align = 8);

  // Cross-cache accounting for tests.
  uint64_t total_active_objects() const;

 private:
  slab* GrowCache(kmem_cache* cache);
  static uint32_t* FreeIndexSlot(kmem_cache* cache, slab* sl, uint32_t idx);
  static void* ObjectAt(kmem_cache* cache, slab* sl, uint32_t idx);
  static uint32_t IndexOf(kmem_cache* cache, slab* sl, const void* obj);

  BuddyAllocator* buddy_;
  list_head* cache_chain_;   // global cache list head (lives in the arena)
  uint8_t* meta_cursor_;     // bump allocator for metadata
  uint8_t* meta_end_;
};

}  // namespace vkern

#endif  // SRC_VKERN_SLAB_H_
