// CFS scheduler over per-CPU run queues (paper §1's motivating example,
// ULK Figure 7-1).
//
// Tasks are kept in a vruntime-ordered red-black tree (cfs_rq.tasks_timeline)
// with a cached leftmost node; ticks advance the current task's vruntime and
// preempt when a smaller vruntime is runnable — enough dynamics to keep the
// runqueue plot changing across breakpoints.

#ifndef SRC_VKERN_SCHED_H_
#define SRC_VKERN_SCHED_H_

#include <cstdint>

#include "src/vkern/kstructs.h"

namespace vkern {

inline constexpr uint64_t kNiceZeroWeight = 1024;
inline constexpr uint64_t kSchedTickNs = 1'000'000;  // 1 ms per tick

class Scheduler {
 public:
  // `runqueues` must be an in-arena array of kNrCpus run queues.
  explicit Scheduler(rq* runqueues);

  void InitRq(int cpu, task_struct* idle);

  // Adds a runnable task to a CPU's CFS run queue.
  void Enqueue(int cpu, task_struct* task);
  // Removes a task (e.g. it blocked or exited).
  void Dequeue(int cpu, task_struct* task);

  // One scheduler tick on `cpu`: charges vruntime to the current task and
  // switches to the leftmost entity when it is due. Returns the task that is
  // current after the tick.
  task_struct* Tick(int cpu);

  task_struct* PickNext(int cpu);
  rq* cpu_rq(int cpu) { return &runqueues_[cpu]; }
  const rq* cpu_rq(int cpu) const { return &runqueues_[cpu]; }

  uint32_t nr_running(int cpu) const { return runqueues_[cpu].cfs.nr_running; }

  // Tree-order traversal of the runqueue for tests.
  template <typename Fn>
  void ForEachQueued(int cpu, Fn&& fn) const {
    const cfs_rq* cfs = &runqueues_[cpu].cfs;
    for (rb_node* node = rb_first_cached(&cfs->tasks_timeline); node != nullptr;
         node = rb_next(node)) {
      sched_entity* se = VKERN_CONTAINER_OF(node, sched_entity, run_node);
      fn(VKERN_CONTAINER_OF(se, task_struct, se));
    }
  }

 private:
  void EnqueueEntity(cfs_rq* cfs, sched_entity* se);
  void DequeueEntity(cfs_rq* cfs, sched_entity* se);
  void UpdateMinVruntime(cfs_rq* cfs);

  rq* runqueues_;
};

}  // namespace vkern

#endif  // SRC_VKERN_SCHED_H_
