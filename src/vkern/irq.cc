#include "src/vkern/irq.h"

#include <cstdio>
#include <cstring>

namespace vkern {

namespace {

// The generic flow handler every descriptor points at (symbolized).
void HandleEdgeIrq(irq_desc* desc) {
  for (irqaction* action = desc->action; action != nullptr; action = action->next) {
    if (action->handler != nullptr) {
      action->handler(static_cast<int>(action->irq), action->dev_id);
    }
  }
}

}  // namespace

IrqSubsystem::IrqSubsystem(irq_desc* descs, SlabAllocator* slabs)
    : descs_(descs), slabs_(slabs) {
  action_cache_ = slabs_->CreateCache("irqaction", sizeof(irqaction));
  chip_ = static_cast<irq_chip*>(slabs_->AllocMeta(sizeof(irq_chip)));
  std::memcpy(chip_->name, "IO-APIC", 8);
  for (uint32_t i = 0; i < kNrIrqs; ++i) {
    irq_desc* desc = &descs_[i];
    std::memset(desc, 0, sizeof(irq_desc));
    desc->irq_data_.irq = i;
    desc->irq_data_.hwirq = i;
    desc->irq_data_.chip = chip_;
    desc->handle_irq = &HandleEdgeIrq;
    desc->depth = 1;  // disabled until an action is installed
    std::snprintf(desc->name, sizeof(desc->name), "irq%u", i);
  }
}

irqaction* IrqSubsystem::RequestIrq(uint32_t irq, std::string_view name,
                                    void (*handler)(int, void*), void* dev_id, uint32_t flags) {
  if (irq >= kNrIrqs) {
    return nullptr;
  }
  auto* action = slabs_->AllocAs<irqaction>(action_cache_);
  if (action == nullptr) {
    return nullptr;
  }
  action->handler = handler;
  action->dev_id = dev_id;
  action->irq = irq;
  action->flags = flags;
  size_t len = name.size() < sizeof(action->name) - 1 ? name.size() : sizeof(action->name) - 1;
  std::memcpy(action->name, name.data(), len);

  irq_desc* desc = &descs_[irq];
  irqaction** tail = &desc->action;
  while (*tail != nullptr) {
    tail = &(*tail)->next;
  }
  *tail = action;
  desc->depth = 0;  // enabled
  return action;
}

void IrqSubsystem::FreeIrq(uint32_t irq, void* dev_id) {
  if (irq >= kNrIrqs) {
    return;
  }
  irq_desc* desc = &descs_[irq];
  irqaction** link = &desc->action;
  while (*link != nullptr) {
    if ((*link)->dev_id == dev_id) {
      irqaction* victim = *link;
      *link = victim->next;
      slabs_->Free(action_cache_, victim);
    } else {
      link = &(*link)->next;
    }
  }
  if (desc->action == nullptr) {
    desc->depth = 1;
  }
}

uint64_t IrqSubsystem::Raise(uint32_t irq) {
  if (irq >= kNrIrqs || descs_[irq].depth > 0) {
    return 0;
  }
  irq_desc* desc = &descs_[irq];
  desc->tot_count++;
  if (desc->handle_irq != nullptr) {
    desc->handle_irq(desc);
  }
  return desc->tot_count;
}

uint32_t IrqSubsystem::action_count(uint32_t irq) const {
  uint32_t n = 0;
  for (irqaction* action = descs_[irq].action; action != nullptr; action = action->next) {
    ++n;
  }
  return n;
}

}  // namespace vkern
