#include "src/vkern/slab.h"

#include <cassert>
#include <cstring>

namespace vkern {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t align) { return (value + align - 1) & ~(align - 1); }

}  // namespace

SlabAllocator::SlabAllocator(BuddyAllocator* buddy)
    : buddy_(buddy), meta_cursor_(nullptr), meta_end_(nullptr) {
  cache_chain_ = static_cast<list_head*>(AllocMeta(sizeof(list_head), 8));
  INIT_LIST_HEAD(cache_chain_);
}

void* SlabAllocator::AllocMeta(size_t size, size_t align) {
  uint8_t* aligned = reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uint64_t>(meta_cursor_), align));
  if (meta_cursor_ == nullptr || aligned + size > meta_end_) {
    page* pg = buddy_->AllocPages(3);  // 32 KiB metadata chunk
    assert(pg != nullptr && "out of arena memory for metadata");
    meta_cursor_ = static_cast<uint8_t*>(buddy_->PageAddress(pg));
    meta_end_ = meta_cursor_ + (kPageSize << 3);
    aligned = meta_cursor_;
  }
  meta_cursor_ = aligned + size;
  std::memset(aligned, 0, size);
  return aligned;
}

kmem_cache* SlabAllocator::CreateCache(std::string_view name, uint32_t object_size,
                                       uint32_t align) {
  if (align == 0) {
    align = 8;
  }
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");

  auto* cache = static_cast<kmem_cache*>(AllocMeta(sizeof(kmem_cache), alignof(kmem_cache)));
  size_t len = name.size() < sizeof(cache->name) - 1 ? name.size() : sizeof(cache->name) - 1;
  std::memcpy(cache->name, name.data(), len);
  cache->object_size = object_size;
  uint32_t stride = static_cast<uint32_t>(AlignUp(object_size < 8 ? 8 : object_size, align));
  cache->size = stride;
  cache->align = align;

  // Pick pages-per-slab so at least four objects fit (or one for big objects).
  uint32_t pages = 1;
  while (pages < 8) {
    uint64_t usable = pages * kPageSize - AlignUp(sizeof(slab), align);
    if (usable / stride >= 4 || (usable / stride >= 1 && stride > kPageSize)) {
      break;
    }
    pages <<= 1;
  }
  uint64_t usable = pages * kPageSize - AlignUp(sizeof(slab), align);
  cache->pages_per_slab = pages;
  cache->num = static_cast<uint32_t>(usable / stride);
  assert(cache->num >= 1);

  INIT_LIST_HEAD(&cache->slabs_partial);
  INIT_LIST_HEAD(&cache->slabs_full);
  INIT_LIST_HEAD(&cache->slabs_free);
  list_add_tail(&cache->cache_list, cache_chain_);
  return cache;
}

kmem_cache* SlabAllocator::FindCache(std::string_view name) const {
  for (list_head* p = cache_chain_->next; p != cache_chain_; p = p->next) {
    kmem_cache* cache = VKERN_CONTAINER_OF(p, kmem_cache, cache_list);
    if (name == cache->name) {
      return cache;
    }
  }
  return nullptr;
}

void* SlabAllocator::ObjectAt(kmem_cache* cache, slab* sl, uint32_t idx) {
  return static_cast<uint8_t*>(sl->s_mem) + static_cast<uint64_t>(idx) * cache->size;
}

uint32_t SlabAllocator::IndexOf(kmem_cache* cache, slab* sl, const void* obj) {
  uint64_t off = reinterpret_cast<uint64_t>(obj) - reinterpret_cast<uint64_t>(sl->s_mem);
  assert(off % cache->size == 0);
  return static_cast<uint32_t>(off / cache->size);
}

uint32_t* SlabAllocator::FreeIndexSlot(kmem_cache* cache, slab* sl, uint32_t idx) {
  return static_cast<uint32_t*>(ObjectAt(cache, sl, idx));
}

slab* SlabAllocator::GrowCache(kmem_cache* cache) {
  int order = 0;
  while ((1u << order) < cache->pages_per_slab) {
    ++order;
  }
  page* pg = buddy_->AllocPages(order);
  if (pg == nullptr) {
    return nullptr;
  }
  for (uint32_t i = 0; i < cache->pages_per_slab; ++i) {
    (pg + i)->flags |= PG_slab;
    (pg + i)->private_data = cache;  // page -> cache back-reference
  }
  auto* base = static_cast<uint8_t*>(buddy_->PageAddress(pg));
  auto* sl = reinterpret_cast<slab*>(base);
  std::memset(sl, 0, sizeof(slab));
  sl->cache = cache;
  sl->pg = pg;
  sl->s_mem = reinterpret_cast<void*>(
      AlignUp(reinterpret_cast<uint64_t>(base) + sizeof(slab), cache->align));
  sl->inuse = 0;
  // Build the embedded free-index chain and poison the objects.
  sl->free_idx = 0;
  for (uint32_t i = 0; i < cache->num; ++i) {
    void* obj = ObjectAt(cache, sl, i);
    std::memset(obj, kSlabPoison, cache->size);
    *static_cast<uint32_t*>(obj) = (i + 1 < cache->num) ? i + 1 : kSlabFreeEnd;
  }
  list_add_tail(&sl->list, &cache->slabs_free);
  cache->total_objects += cache->num;
  return sl;
}

void* SlabAllocator::Alloc(kmem_cache* cache) {
  slab* sl = nullptr;
  if (!list_empty(&cache->slabs_partial)) {
    sl = VKERN_CONTAINER_OF(cache->slabs_partial.next, slab, list);
  } else if (!list_empty(&cache->slabs_free)) {
    sl = VKERN_CONTAINER_OF(cache->slabs_free.next, slab, list);
  } else {
    sl = GrowCache(cache);
    if (sl == nullptr) {
      return nullptr;
    }
  }
  uint32_t idx = sl->free_idx;
  assert(idx != kSlabFreeEnd);
  void* obj = ObjectAt(cache, sl, idx);
  sl->free_idx = *static_cast<uint32_t*>(obj);
  sl->inuse++;
  cache->active_objects++;
  std::memset(obj, 0, cache->size);

  list_del_init(&sl->list);
  if (sl->inuse == cache->num) {
    list_add_tail(&sl->list, &cache->slabs_full);
  } else {
    list_add_tail(&sl->list, &cache->slabs_partial);
  }
  return obj;
}

void SlabAllocator::Free(kmem_cache* cache, void* obj) {
  // Slab blocks are buddy allocations aligned to their own size (buddy blocks
  // are naturally aligned in pfn space), so masking the object address down to
  // the block boundary yields the slab descriptor at the block head.
  uint64_t block_bytes = static_cast<uint64_t>(cache->pages_per_slab) * kPageSize;
  auto* sl = reinterpret_cast<slab*>(reinterpret_cast<uint64_t>(obj) & ~(block_bytes - 1));
  assert(sl->cache == cache && "object freed to the wrong cache");
  uint32_t idx = IndexOf(cache, sl, obj);

  std::memset(obj, kSlabPoison, cache->size);
  *FreeIndexSlot(cache, sl, idx) = sl->free_idx;
  sl->free_idx = idx;
  sl->inuse--;
  cache->active_objects--;

  list_del_init(&sl->list);
  if (sl->inuse == 0) {
    list_add_tail(&sl->list, &cache->slabs_free);
  } else {
    list_add_tail(&sl->list, &cache->slabs_partial);
  }
}

bool SlabAllocator::IsPoisoned(const void* obj, uint32_t object_size) {
  const auto* bytes = static_cast<const uint8_t*>(obj);
  // Skip the freelist word at the front.
  for (uint32_t i = sizeof(uint32_t); i < object_size; ++i) {
    if (bytes[i] != kSlabPoison) {
      return false;
    }
  }
  return object_size > sizeof(uint32_t);
}

uint64_t SlabAllocator::total_active_objects() const {
  uint64_t total = 0;
  for (list_head* p = cache_chain_->next; p != cache_chain_; p = p->next) {
    total += VKERN_CONTAINER_OF(p, kmem_cache, cache_list)->active_objects;
  }
  return total;
}

}  // namespace vkern
