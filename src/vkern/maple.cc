#include "src/vkern/maple.h"

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

namespace vkern {

namespace {

// Canonical node content: entry i covers (items[i-1].max, items[i].max],
// starting from the node's min. For internal nodes, entry is a maple_enode.
struct Item {
  void* entry;
  uint64_t max;
};

const uint64_t* NodePivots(const maple_node* node, maple_type type) {
  return type == maple_arange_64 ? node->ma64.pivot : node->mr64.pivot;
}

uint64_t* NodePivots(maple_node* node, maple_type type) {
  return type == maple_arange_64 ? node->ma64.pivot : node->mr64.pivot;
}

void* const* NodeSlots(const maple_node* node, maple_type type) {
  return type == maple_arange_64 ? node->ma64.slot : node->mr64.slot;
}

void** NodeSlots(maple_node* node, maple_type type) {
  return type == maple_arange_64 ? node->ma64.slot : node->mr64.slot;
}

// Length of [min, max] with saturation at UINT64_MAX.
uint64_t RangeLen(uint64_t min, uint64_t max) {
  uint64_t span = max - min;
  return span == kMtMaxIndex ? kMtMaxIndex : span + 1;
}

// Reads node content into items (entries with their covering max).
void ReadContent(const maple_node* node, maple_type type, uint64_t max, std::vector<Item>* out) {
  uint32_t end = ma_data_end(node, type, max);
  const uint64_t* pivots = NodePivots(node, type);
  void* const* slots = NodeSlots(node, type);
  out->clear();
  for (uint32_t i = 0; i <= end; ++i) {
    uint64_t item_max = (i < end) ? pivots[i] : max;
    out->push_back(Item{slots[i], item_max});
  }
}

// Merges adjacent null entries (leaf normalization).
void MergeNullRuns(std::vector<Item>* items) {
  std::vector<Item> merged;
  for (const Item& item : *items) {
    if (!merged.empty() && merged.back().entry == nullptr && item.entry == nullptr) {
      merged.back().max = item.max;
    } else {
      merged.push_back(item);
    }
  }
  *items = std::move(merged);
}

}  // namespace

uint32_t ma_data_end(const maple_node* node, maple_type type, uint64_t max) {
  uint32_t pivots = mt_pivots(type);
  const uint64_t* pv = NodePivots(node, type);
  for (uint32_t i = 0; i < pivots; ++i) {
    if (pv[i] == 0 || pv[i] >= max) {
      return i;
    }
  }
  return pivots;
}

MapleTreeOps::MapleTreeOps(SlabAllocator* slabs, RcuSubsystem* rcu) : slabs_(slabs), rcu_(rcu) {
  node_cache_ = slabs_->FindCache("maple_node");
  if (node_cache_ == nullptr) {
    node_cache_ = slabs_->CreateCache("maple_node", sizeof(maple_node), 256);
  }
  // MtFreeRcu recovers the slab descriptor by masking the node address to the
  // page boundary, which requires single-page slabs.
  assert(node_cache_->pages_per_slab == 1);
}

void MapleTreeOps::Init(maple_tree* mt, uint32_t flags) {
  mt->ma_root = nullptr;
  mt->ma_flags = flags;
  mt->ma_lock = 0;
}

maple_node* MapleTreeOps::AllocNode() {
  auto* node = slabs_->AllocAs<maple_node>(node_cache_);
  return node;
}

void MapleTreeOps::MtFreeRcu(rcu_head* head) {
  maple_node* node = VKERN_CONTAINER_OF(head, maple_node, rcu);
  auto* sl = reinterpret_cast<slab*>(reinterpret_cast<uint64_t>(node) & ~uint64_t{kPageSize - 1});
  SlabAllocator::Free(sl->cache, node);
}

void MapleTreeOps::FreeNodeRcu(maple_node* node) {
  // ma_free_rcu(): the node stays readable (and reachable by stale pointers)
  // until a grace period elapses — the CVE-2023-3269 window.
  rcu_->CallRcu(write_cpu_, &node->rcu, &MapleTreeOps::MtFreeRcu);
}

void MapleTreeOps::SetChildParent(maple_enode child, maple_node* parent, uint32_t slot,
                                  maple_type ptype) {
  mte_to_node(child)->parent = ma_encode_parent(parent, slot, ptype);
}

namespace {

struct PathEntry {
  maple_node* node;
  maple_type type;
  uint64_t min;
  uint64_t max;
  uint32_t child_slot;  // slot descended into (meaningless at the leaf)
};

}  // namespace

void* MapleTreeOps::Find(const maple_tree* mt, uint64_t index) const {
  const void* root = mt->ma_root;
  if (root == nullptr) {
    return nullptr;
  }
  if (!xa_is_node(root)) {
    return index == 0 ? const_cast<void*>(root) : nullptr;
  }
  maple_enode enode = reinterpret_cast<uintptr_t>(root);
  uint64_t max = kMtMaxIndex;
  while (true) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    uint32_t i = 0;
    while (i < end && pivots[i] < index) {
      ++i;
    }
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    if (ma_is_leaf(type)) {
      return slots[i];
    }
    enode = reinterpret_cast<maple_enode>(slots[i]);
    max = slot_max;
    if (enode == 0) {
      return nullptr;  // corrupt tree; defensive
    }
  }
}

maple_node* MapleTreeOps::LeafContaining(const maple_tree* mt, uint64_t index) const {
  const void* root = mt->ma_root;
  if (root == nullptr || !xa_is_node(root)) {
    return nullptr;
  }
  maple_enode enode = reinterpret_cast<uintptr_t>(root);
  uint64_t max = kMtMaxIndex;
  while (true) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    if (ma_is_leaf(type)) {
      return node;
    }
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    uint32_t i = 0;
    while (i < end && pivots[i] < index) {
      ++i;
    }
    max = (i < end) ? pivots[i] : max;
    enode = reinterpret_cast<maple_enode>(slots[i]);
    if (enode == 0) {
      return nullptr;
    }
  }
}

namespace {

void ForEachNodeRec(const maple_node* node, maple_type type, uint64_t min, uint64_t max,
                    const std::function<void(uint64_t, uint64_t, void*)>& fn) {
  uint32_t end = ma_data_end(node, type, max);
  const uint64_t* pivots = NodePivots(node, type);
  void* const* slots = NodeSlots(node, type);
  uint64_t slot_min = min;
  for (uint32_t i = 0; i <= end; ++i) {
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    void* entry = slots[i];
    if (ma_is_leaf(type)) {
      if (entry != nullptr) {
        fn(slot_min, slot_max, entry);
      }
    } else if (entry != nullptr) {
      maple_enode child = reinterpret_cast<maple_enode>(entry);
      ForEachNodeRec(mte_to_node(child), mte_node_type(child), slot_min, slot_max, fn);
    }
    slot_min = slot_max + 1;
  }
}

}  // namespace

void MapleTreeOps::ForEach(
    const maple_tree* mt,
    const std::function<void(uint64_t start, uint64_t last, void* entry)>& fn) const {
  const void* root = mt->ma_root;
  if (root == nullptr) {
    return;
  }
  if (!xa_is_node(root)) {
    fn(0, 0, const_cast<void*>(root));
    return;
  }
  maple_enode enode = reinterpret_cast<uintptr_t>(root);
  ForEachNodeRec(mte_to_node(enode), mte_node_type(enode), 0, kMtMaxIndex, fn);
}

uint64_t MapleTreeOps::CountEntries(const maple_tree* mt) const {
  uint64_t n = 0;
  ForEach(mt, [&n](uint64_t, uint64_t, void*) { ++n; });
  return n;
}

int MapleTreeOps::Height(const maple_tree* mt) const {
  const void* root = mt->ma_root;
  if (root == nullptr || !xa_is_node(root)) {
    return 0;
  }
  int height = 1;
  maple_enode enode = reinterpret_cast<uintptr_t>(root);
  uint64_t max = kMtMaxIndex;
  while (!mte_is_leaf(enode)) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    max = (end > 0) ? pivots[0] : max;
    enode = reinterpret_cast<maple_enode>(NodeSlots(node, type)[0]);
    ++height;
  }
  return height;
}

namespace {

// Writes items into a node of the given type covering [min, max].
void WriteNode(maple_node* node, maple_type type, uint64_t max, const std::vector<Item>& items) {
  uint32_t nslots = mt_slots(type);
  uint32_t npivots = mt_pivots(type);
  assert(items.size() <= nslots && !items.empty());
  assert(items.back().max == max);
  uint64_t* pivots = NodePivots(node, type);
  void** slots = NodeSlots(node, type);
  for (uint32_t i = 0; i < nslots; ++i) {
    slots[i] = nullptr;
  }
  for (uint32_t i = 0; i < npivots; ++i) {
    pivots[i] = 0;
  }
  for (uint32_t i = 0; i < items.size(); ++i) {
    slots[i] = items[i].entry;
    if (i < items.size() - 1) {
      pivots[i] = items[i].max;
    } else if (i < npivots) {
      // A last pivot equal to the node max is also how the kernel encodes a
      // short node; our ma_data_end treats pivot >= max as the end marker.
      pivots[i] = (max == kMtMaxIndex) ? 0 : max;
    }
  }
}

}  // namespace

uint64_t MapleTreeOps::SubtreeMaxGap(maple_enode enode, uint64_t min, uint64_t max) const {
  maple_node* node = mte_to_node(enode);
  maple_type type = mte_node_type(enode);
  uint32_t end = ma_data_end(node, type, max);
  const uint64_t* pivots = NodePivots(node, type);
  void* const* slots = NodeSlots(node, type);
  uint64_t best = 0;
  uint64_t slot_min = min;
  for (uint32_t i = 0; i <= end; ++i) {
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    if (ma_is_leaf(type)) {
      if (slots[i] == nullptr) {
        uint64_t len = RangeLen(slot_min, slot_max);
        best = len > best ? len : best;
      }
    } else if (slots[i] != nullptr) {
      if (type == maple_arange_64) {
        best = node->ma64.gap[i] > best ? node->ma64.gap[i] : best;
      } else {
        uint64_t len = SubtreeMaxGap(reinterpret_cast<maple_enode>(slots[i]), slot_min, slot_max);
        best = len > best ? len : best;
      }
    }
    slot_min = slot_max + 1;
  }
  return best;
}

namespace {

// Max gap directly beneath a child: for leaves scan the null runs; for arange
// internals trust the child's own (already up-to-date) gap array.
uint64_t ChildMaxGap(maple_enode child, uint64_t min, uint64_t max) {
  maple_node* node = mte_to_node(child);
  maple_type type = mte_node_type(child);
  uint32_t end = ma_data_end(node, type, max);
  const uint64_t* pivots = NodePivots(node, type);
  void* const* slots = NodeSlots(node, type);
  uint64_t best = 0;
  uint64_t slot_min = min;
  for (uint32_t i = 0; i <= end; ++i) {
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    if (ma_is_leaf(type)) {
      if (slots[i] == nullptr) {
        uint64_t len = RangeLen(slot_min, slot_max);
        best = len > best ? len : best;
      }
    } else if (type == maple_arange_64) {
      best = node->ma64.gap[i] > best ? node->ma64.gap[i] : best;
    }
    slot_min = slot_max + 1;
  }
  return best;
}

}  // namespace

bool MapleTreeOps::StoreInLeaf(maple_node* leaf, maple_type type, uint64_t min, uint64_t max,
                               uint64_t start, uint64_t last, void* entry, SplitResult* result) {
  std::vector<Item> items;
  ReadContent(leaf, type, max, &items);
  std::vector<Item> out;
  uint64_t slot_min = min;
  bool placed = false;
  for (const Item& item : items) {
    uint64_t slot_max = item.max;
    bool overlaps = !(slot_max < start || slot_min > last);
    if (!overlaps) {
      out.push_back(item);
    } else {
      if (item.entry != nullptr) {
        return false;  // VMA stores target empty ranges only
      }
      if (slot_min < start && !placed) {
        out.push_back(Item{nullptr, start - 1});
      }
      if (!placed) {
        out.push_back(Item{entry, last});
        placed = true;
      }
      if (slot_max > last) {
        out.push_back(Item{nullptr, slot_max});
      }
    }
    slot_min = slot_max + 1;
  }
  if (!placed) {
    return false;
  }
  MergeNullRuns(&out);

  uint32_t nslots = mt_slots(type);
  if (out.size() <= nslots) {
    maple_node* fresh = AllocNode();
    if (fresh == nullptr) {
      return false;
    }
    WriteNode(fresh, type, max, out);
    result->left = mt_mk_node(fresh, type);
    result->right = 0;
    return true;
  }
  // Split into two leaves.
  size_t half = out.size() / 2;
  std::vector<Item> left_items(out.begin(), out.begin() + static_cast<long>(half));
  std::vector<Item> right_items(out.begin() + static_cast<long>(half), out.end());
  maple_node* left = AllocNode();
  maple_node* right = AllocNode();
  if (left == nullptr || right == nullptr) {
    return false;
  }
  uint64_t split_pivot = left_items.back().max;
  WriteNode(left, type, split_pivot, left_items);
  WriteNode(right, type, max, right_items);
  result->left = mt_mk_node(left, type);
  result->right = mt_mk_node(right, type);
  result->split_pivot = split_pivot;
  return true;
}

bool MapleTreeOps::StoreRange(maple_tree* mt, uint64_t start, uint64_t last, void* entry) {
  assert(entry != nullptr && !xa_is_node(entry));
  assert(start <= last);

  if (mt->ma_root == nullptr) {
    maple_node* leaf = AllocNode();
    if (leaf == nullptr) {
      return false;
    }
    std::vector<Item> items;
    if (start > 0) {
      items.push_back(Item{nullptr, start - 1});
    }
    items.push_back(Item{entry, last});
    if (last < kMtMaxIndex) {
      items.push_back(Item{nullptr, kMtMaxIndex});
    }
    WriteNode(leaf, maple_leaf_64, kMtMaxIndex, items);
    leaf->parent = ma_encode_root_parent(mt);
    mt->ma_root = reinterpret_cast<void*>(mt_mk_node(leaf, maple_leaf_64));
    return true;
  }

  if (!xa_is_node(mt->ma_root)) {
    // A direct root entry covers [0, 0]; expand it into a leaf first.
    void* old_entry = mt->ma_root;
    mt->ma_root = nullptr;
    if (!StoreRange(mt, 0, 0, old_entry)) {
      return false;
    }
    return StoreRange(mt, start, last, entry);
  }

  // Descend, recording the path.
  std::vector<PathEntry> path;
  maple_enode enode = reinterpret_cast<uintptr_t>(mt->ma_root);
  uint64_t min = 0;
  uint64_t max = kMtMaxIndex;
  while (true) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    path.push_back(PathEntry{node, type, min, max, 0});
    if (ma_is_leaf(type)) {
      break;
    }
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    uint32_t i = 0;
    uint64_t slot_min = min;
    while (i < end && pivots[i] < start) {
      slot_min = pivots[i] + 1;
      ++i;
    }
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    if (last > slot_max) {
      // Spanning store: the target range crosses a subtree boundary. The
      // kernel rewrites the affected subtree; we take the equivalent (if
      // heavier) route of rebuilding the whole tree — every replaced node
      // still goes through the RCU-deferred free path.
      return StoreSpanning(mt, start, last, entry);
    }
    path.back().child_slot = i;
    enode = reinterpret_cast<maple_enode>(slots[i]);
    min = slot_min;
    max = slot_max;
    if (enode == 0) {
      return false;
    }
  }

  PathEntry& leaf_entry = path.back();
  SplitResult repl;
  if (!StoreInLeaf(leaf_entry.node, leaf_entry.type, leaf_entry.min, leaf_entry.max, start, last,
                   entry, &repl)) {
    return false;
  }
  FreeNodeRcu(leaf_entry.node);

  // Replace upward through the recorded path.
  size_t level = path.size() - 1;
  while (true) {
    if (level == 0) {
      // Replacing the root.
      if (repl.right == 0) {
        maple_node* new_root = mte_to_node(repl.left);
        new_root->parent = ma_encode_root_parent(mt);
        mt->ma_root = reinterpret_cast<void*>(repl.left);
        path[0].node = new_root;
        path[0].type = mte_node_type(repl.left);
      } else {
        maple_type itype =
            (mt->ma_flags & MT_FLAGS_ALLOC_RANGE) != 0 ? maple_arange_64 : maple_range_64;
        maple_node* new_root = AllocNode();
        if (new_root == nullptr) {
          return false;
        }
        std::vector<Item> items = {
            Item{reinterpret_cast<void*>(repl.left), repl.split_pivot},
            Item{reinterpret_cast<void*>(repl.right), kMtMaxIndex},
        };
        WriteNode(new_root, itype, kMtMaxIndex, items);
        SetChildParent(repl.left, new_root, 0, itype);
        SetChildParent(repl.right, new_root, 1, itype);
        if (itype == maple_arange_64) {
          new_root->ma64.gap[0] = ChildMaxGap(repl.left, 0, repl.split_pivot);
          new_root->ma64.gap[1] = ChildMaxGap(repl.right, repl.split_pivot + 1, kMtMaxIndex);
        }
        new_root->parent = ma_encode_root_parent(mt);
        mt->ma_root = reinterpret_cast<void*>(mt_mk_node(new_root, itype));
        // The path gained a level; prepend it for gap recomputation below.
        path.insert(path.begin(), PathEntry{new_root, itype, 0, kMtMaxIndex, 0});
      }
      break;
    }

    PathEntry& parent_entry = path[level - 1];
    maple_node* parent = parent_entry.node;
    maple_type ptype = parent_entry.type;
    uint32_t slot = parent_entry.child_slot;

    if (repl.right == 0) {
      // Atomic single-slot pointer replacement; no structural change.
      NodeSlots(parent, ptype)[slot] = reinterpret_cast<void*>(repl.left);
      SetChildParent(repl.left, parent, slot, ptype);
      path[level].node = mte_to_node(repl.left);
      break;
    }

    // The child split: rewrite the parent with one extra child.
    std::vector<Item> items;
    ReadContent(parent, ptype, parent_entry.max, &items);
    std::vector<Item> out;
    for (uint32_t i = 0; i < items.size(); ++i) {
      if (i == slot) {
        out.push_back(Item{reinterpret_cast<void*>(repl.left), repl.split_pivot});
        out.push_back(Item{reinterpret_cast<void*>(repl.right), items[i].max});
      } else {
        out.push_back(items[i]);
      }
    }
    FreeNodeRcu(parent);

    uint32_t nslots = mt_slots(ptype);
    if (out.size() <= nslots) {
      maple_node* fresh = AllocNode();
      if (fresh == nullptr) {
        return false;
      }
      WriteNode(fresh, ptype, parent_entry.max, out);
      uint64_t slot_min = parent_entry.min;
      for (uint32_t i = 0; i < out.size(); ++i) {
        maple_enode child = reinterpret_cast<maple_enode>(out[i].entry);
        SetChildParent(child, fresh, i, ptype);
        if (ptype == maple_arange_64) {
          fresh->ma64.gap[i] = ChildMaxGap(child, slot_min, out[i].max);
        }
        slot_min = out[i].max + 1;
      }
      repl.left = mt_mk_node(fresh, ptype);
      repl.right = 0;
      path[level - 1].node = fresh;
      --level;
      continue;
    }

    // The parent overflows too: split it.
    size_t half = out.size() / 2;
    std::vector<Item> left_items(out.begin(), out.begin() + static_cast<long>(half));
    std::vector<Item> right_items(out.begin() + static_cast<long>(half), out.end());
    maple_node* left = AllocNode();
    maple_node* right = AllocNode();
    if (left == nullptr || right == nullptr) {
      return false;
    }
    uint64_t split_pivot = left_items.back().max;
    WriteNode(left, ptype, split_pivot, left_items);
    WriteNode(right, ptype, parent_entry.max, right_items);
    uint64_t slot_min = parent_entry.min;
    for (uint32_t i = 0; i < left_items.size(); ++i) {
      maple_enode child = reinterpret_cast<maple_enode>(left_items[i].entry);
      SetChildParent(child, left, i, ptype);
      if (ptype == maple_arange_64) {
        left->ma64.gap[i] = ChildMaxGap(child, slot_min, left_items[i].max);
      }
      slot_min = left_items[i].max + 1;
    }
    for (uint32_t i = 0; i < right_items.size(); ++i) {
      maple_enode child = reinterpret_cast<maple_enode>(right_items[i].entry);
      SetChildParent(child, right, i, ptype);
      if (ptype == maple_arange_64) {
        right->ma64.gap[i] = ChildMaxGap(child, slot_min, right_items[i].max);
      }
      slot_min = right_items[i].max + 1;
    }
    repl.left = mt_mk_node(left, ptype);
    repl.right = mt_mk_node(right, ptype);
    repl.split_pivot = split_pivot;
    path[level - 1].node = left;  // approximate; gaps refreshed below
    --level;
  }

  // Refresh gap metadata along the (new) path, bottom-up.
  if ((mt->ma_flags & MT_FLAGS_ALLOC_RANGE) != 0) {
    RefreshGapsAlongPath(mt, start);
  }
  return true;
}

void MapleTreeOps::RefreshGapsAlongPath(maple_tree* mt, uint64_t index) {
  if (mt->ma_root == nullptr || !xa_is_node(mt->ma_root)) {
    return;
  }
  // Re-descend toward `index`, collecting the path with exact bounds, then
  // update each arange ancestor's gap entry for the descended slot bottom-up.
  struct Hop {
    maple_node* node;
    maple_type type;
    uint64_t min, max;
    uint32_t slot;
    uint64_t child_min, child_max;
  };
  std::vector<Hop> hops;
  maple_enode enode = reinterpret_cast<uintptr_t>(mt->ma_root);
  uint64_t min = 0;
  uint64_t max = kMtMaxIndex;
  while (!mte_is_leaf(enode)) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    uint32_t i = 0;
    uint64_t slot_min = min;
    while (i < end && pivots[i] < index) {
      slot_min = pivots[i] + 1;
      ++i;
    }
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    hops.push_back(Hop{node, type, min, max, i, slot_min, slot_max});
    enode = reinterpret_cast<maple_enode>(slots[i]);
    min = slot_min;
    max = slot_max;
    if (enode == 0) {
      return;
    }
  }
  for (size_t i = hops.size(); i-- > 0;) {
    Hop& hop = hops[i];
    if (hop.type != maple_arange_64) {
      continue;
    }
    void* child = NodeSlots(hop.node, hop.type)[hop.slot];
    hop.node->ma64.gap[hop.slot] =
        ChildMaxGap(reinterpret_cast<maple_enode>(child), hop.child_min, hop.child_max);
  }
}

bool MapleTreeOps::StoreSpanning(maple_tree* mt, uint64_t start, uint64_t last, void* entry) {
  // Collect the existing ranges; reject overlap with the target.
  struct Range {
    uint64_t start, last;
    void* entry;
  };
  std::vector<Range> ranges;
  bool overlap = false;
  ForEach(mt, [&](uint64_t s, uint64_t l, void* e) {
    if (!(l < start || s > last)) {
      overlap = true;
    }
    ranges.push_back(Range{s, l, e});
  });
  if (overlap) {
    return false;
  }
  // Insert the new range in sorted position.
  auto it = ranges.begin();
  while (it != ranges.end() && it->start < start) {
    ++it;
  }
  ranges.insert(it, Range{start, last, entry});

  // Free the old tree through RCU and rebuild in ascending order: each
  // insertion targets the rightmost gap, which always lies within one leaf.
  Destroy(mt);
  for (const Range& range : ranges) {
    if (!StoreRange(mt, range.start, range.last, range.entry)) {
      return false;
    }
  }
  return true;
}

void* MapleTreeOps::Erase(maple_tree* mt, uint64_t index) {
  if (mt->ma_root == nullptr) {
    return nullptr;
  }
  if (!xa_is_node(mt->ma_root)) {
    if (index == 0) {
      void* old = mt->ma_root;
      mt->ma_root = nullptr;
      return old;
    }
    return nullptr;
  }

  // Descend to the leaf, recording the parent path.
  std::vector<PathEntry> path;
  maple_enode enode = reinterpret_cast<uintptr_t>(mt->ma_root);
  uint64_t min = 0;
  uint64_t max = kMtMaxIndex;
  while (true) {
    maple_node* node = mte_to_node(enode);
    maple_type type = mte_node_type(enode);
    path.push_back(PathEntry{node, type, min, max, 0});
    if (ma_is_leaf(type)) {
      break;
    }
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    uint32_t i = 0;
    uint64_t slot_min = min;
    while (i < end && pivots[i] < index) {
      slot_min = pivots[i] + 1;
      ++i;
    }
    path.back().child_slot = i;
    max = (i < end) ? pivots[i] : max;
    min = slot_min;
    enode = reinterpret_cast<maple_enode>(slots[i]);
    if (enode == 0) {
      return nullptr;
    }
  }

  PathEntry& leaf_entry = path.back();
  std::vector<Item> items;
  ReadContent(leaf_entry.node, leaf_entry.type, leaf_entry.max, &items);
  void* old_entry = nullptr;
  uint64_t slot_min = leaf_entry.min;
  for (Item& item : items) {
    if (index >= slot_min && index <= item.max && item.entry != nullptr) {
      old_entry = item.entry;
      item.entry = nullptr;
      break;
    }
    slot_min = item.max + 1;
  }
  if (old_entry == nullptr) {
    return nullptr;
  }
  MergeNullRuns(&items);

  // COW the leaf (the RCU-safe store path).
  maple_node* fresh = AllocNode();
  if (fresh == nullptr) {
    return nullptr;
  }
  WriteNode(fresh, leaf_entry.type, leaf_entry.max, items);
  maple_enode fresh_enode = mt_mk_node(fresh, leaf_entry.type);
  FreeNodeRcu(leaf_entry.node);

  if (path.size() == 1) {
    if (items.size() == 1 && items[0].entry == nullptr) {
      // The tree is empty again.
      FreeNodeRcu(fresh);
      mt->ma_root = nullptr;
      return old_entry;
    }
    fresh->parent = ma_encode_root_parent(mt);
    mt->ma_root = reinterpret_cast<void*>(fresh_enode);
  } else {
    PathEntry& parent_entry = path[path.size() - 2];
    NodeSlots(parent_entry.node, parent_entry.type)[parent_entry.child_slot] =
        reinterpret_cast<void*>(fresh_enode);
    SetChildParent(fresh_enode, parent_entry.node, parent_entry.child_slot, parent_entry.type);
  }

  if ((mt->ma_flags & MT_FLAGS_ALLOC_RANGE) != 0) {
    RefreshGapsAlongPath(mt, index);
  }
  return old_entry;
}

maple_node* MapleTreeOps::RebuildLeaf(maple_tree* mt, uint64_t index) {
  maple_node* leaf = LeafContaining(mt, index);
  if (leaf == nullptr) {
    return nullptr;
  }
  maple_node* fresh = AllocNode();
  if (fresh == nullptr) {
    return nullptr;
  }
  std::memcpy(fresh, leaf, sizeof(maple_node));
  fresh->rcu.next = nullptr;
  fresh->rcu.func = nullptr;
  maple_enode fresh_enode = mt_mk_node(fresh, maple_leaf_64);
  if (ma_is_root(leaf)) {
    fresh->parent = ma_encode_root_parent(mt);
    mt->ma_root = reinterpret_cast<void*>(fresh_enode);
  } else {
    maple_node* parent = ma_parent_node(leaf);
    uint32_t slot = ma_parent_slot(leaf);
    maple_type ptype = ma_parent_type(leaf);
    NodeSlots(parent, ptype)[slot] = reinterpret_cast<void*>(fresh_enode);
    SetChildParent(fresh_enode, parent, slot, ptype);
  }
  FreeNodeRcu(leaf);
  return leaf;
}

namespace {

void DestroyRec(MapleTreeOps* ops, maple_enode enode, uint64_t max,
                std::vector<maple_node*>* nodes) {
  maple_node* node = mte_to_node(enode);
  maple_type type = mte_node_type(enode);
  if (!ma_is_leaf(type)) {
    uint32_t end = ma_data_end(node, type, max);
    const uint64_t* pivots = NodePivots(node, type);
    void* const* slots = NodeSlots(node, type);
    for (uint32_t i = 0; i <= end; ++i) {
      if (slots[i] != nullptr) {
        uint64_t child_max = (i < end) ? pivots[i] : max;
        DestroyRec(ops, reinterpret_cast<maple_enode>(slots[i]), child_max, nodes);
      }
    }
  }
  nodes->push_back(node);
}

}  // namespace

void MapleTreeOps::Destroy(maple_tree* mt) {
  if (mt->ma_root != nullptr && xa_is_node(mt->ma_root)) {
    std::vector<maple_node*> nodes;
    DestroyRec(this, reinterpret_cast<uintptr_t>(mt->ma_root), kMtMaxIndex, &nodes);
    for (maple_node* node : nodes) {
      FreeNodeRcu(node);
    }
  }
  mt->ma_root = nullptr;
}

bool MapleTreeOps::FindEmptyArea(const maple_tree* mt, uint64_t lo, uint64_t hi, uint64_t size,
                                 uint64_t* out_start) const {
  if (size == 0 || lo > hi) {
    return false;
  }
  if (mt->ma_root == nullptr) {
    *out_start = lo;
    return RangeLen(lo, hi) >= size;
  }
  if (!xa_is_node(mt->ma_root)) {
    uint64_t start = lo == 0 ? 1 : lo;
    if (start > hi || RangeLen(start, hi) < size) {
      return false;
    }
    *out_start = start;
    return true;
  }
  // Recursive first-fit descent.
  struct Walker {
    const MapleTreeOps* ops;
    uint64_t lo, hi, size;
    uint64_t found = 0;
    bool ok = false;

    bool Visit(maple_enode enode, uint64_t min, uint64_t max) {
      maple_node* node = mte_to_node(enode);
      maple_type type = mte_node_type(enode);
      uint32_t end = ma_data_end(node, type, max);
      const uint64_t* pivots = NodePivots(node, type);
      void* const* slots = NodeSlots(node, type);
      uint64_t slot_min = min;
      for (uint32_t i = 0; i <= end; ++i) {
        uint64_t slot_max = (i < end) ? pivots[i] : max;
        if (slot_max >= lo && slot_min <= hi) {
          if (ma_is_leaf(type)) {
            if (slots[i] == nullptr) {
              uint64_t s = slot_min > lo ? slot_min : lo;
              uint64_t e = slot_max < hi ? slot_max : hi;
              if (s <= e && RangeLen(s, e) >= size) {
                found = s;
                ok = true;
                return true;
              }
            }
          } else if (slots[i] != nullptr) {
            // Prune using gap metadata when available.
            if (type != maple_arange_64 || node->ma64.gap[i] >= size) {
              if (Visit(reinterpret_cast<maple_enode>(slots[i]), slot_min, slot_max)) {
                return true;
              }
            }
          }
        }
        slot_min = slot_max + 1;
      }
      return false;
    }
  };
  Walker walker{this, lo, hi, size};
  if (walker.Visit(reinterpret_cast<uintptr_t>(mt->ma_root), 0, kMtMaxIndex)) {
    *out_start = walker.found;
    return true;
  }
  return false;
}

namespace {

struct ValidateCtx {
  const maple_tree* mt;
  std::string* why;
  int leaf_depth = -1;
  bool ok = true;

  void Fail(const std::string& reason) {
    ok = false;
    if (why != nullptr && why->empty()) {
      *why = reason;
    }
  }
};

void ValidateNode(ValidateCtx* ctx, maple_enode enode, uint64_t min, uint64_t max, int depth,
                  const maple_node* parent, uint32_t slot_in_parent, maple_type ptype) {
  maple_node* node = mte_to_node(enode);
  maple_type type = mte_node_type(enode);

  if (parent == nullptr) {
    if (!ma_is_root(node)) {
      ctx->Fail("root node lacks the root parent marker");
      return;
    }
  } else {
    if (ma_is_root(node)) {
      ctx->Fail("non-root node carries the root marker");
      return;
    }
    if (ma_parent_node(node) != parent || ma_parent_slot(node) != slot_in_parent ||
        ma_parent_type(node) != ptype) {
      ctx->Fail("parent encoding mismatch");
      return;
    }
  }

  uint32_t end = ma_data_end(node, type, max);
  const uint64_t* pivots = NodePivots(node, type);
  void* const* slots = NodeSlots(node, type);

  uint64_t prev = min;
  for (uint32_t i = 0; i < end; ++i) {
    if (pivots[i] < prev || pivots[i] > max) {
      ctx->Fail("pivots not monotonically increasing within bounds");
      return;
    }
    prev = pivots[i] + 1;
  }

  if (ma_is_leaf(type)) {
    if (type != maple_leaf_64) {
      ctx->Fail("leaf node has a non-leaf type");
      return;
    }
    if (ctx->leaf_depth < 0) {
      ctx->leaf_depth = depth;
    } else if (ctx->leaf_depth != depth) {
      ctx->Fail("leaves at different depths");
    }
    for (uint32_t i = 0; i <= end; ++i) {
      if (slots[i] != nullptr && xa_is_node(slots[i])) {
        ctx->Fail("leaf slot holds an internal node pointer");
        return;
      }
    }
    return;
  }

  uint64_t slot_min = min;
  for (uint32_t i = 0; i <= end; ++i) {
    uint64_t slot_max = (i < end) ? pivots[i] : max;
    void* child = slots[i];
    if (child == nullptr || !xa_is_node(child)) {
      ctx->Fail("internal slot does not hold a node");
      return;
    }
    if (type == maple_arange_64) {
      uint64_t expect = 0;
      maple_enode child_enode = reinterpret_cast<maple_enode>(child);
      if (mte_is_leaf(child_enode)) {
        expect = ChildMaxGap(child_enode, slot_min, slot_max);
      } else {
        expect = ChildMaxGap(child_enode, slot_min, slot_max);
      }
      if (node->ma64.gap[i] != expect) {
        ctx->Fail("arange gap entry is stale");
        return;
      }
    }
    ValidateNode(ctx, reinterpret_cast<maple_enode>(child), slot_min, slot_max, depth + 1, node,
                 i, type);
    if (!ctx->ok) {
      return;
    }
    slot_min = slot_max + 1;
  }
}

}  // namespace

bool MapleTreeOps::Validate(const maple_tree* mt, std::string* why) const {
  if (mt->ma_root == nullptr || !xa_is_node(mt->ma_root)) {
    return true;
  }
  ValidateCtx ctx{mt, why};
  ValidateNode(&ctx, reinterpret_cast<uintptr_t>(mt->ma_root), 0, kMtMaxIndex, 0, nullptr, 0,
               maple_range_64);
  return ctx.ok;
}

}  // namespace vkern
