#include "src/vkern/timer.h"

#include <cassert>

namespace vkern {

TimerSubsystem::TimerSubsystem(timer_base* bases, SlabAllocator* slabs)
    : bases_(bases), slabs_(slabs) {
  timer_cache_ = slabs_->FindCache("timer_list");
  if (timer_cache_ == nullptr) {
    timer_cache_ = slabs_->CreateCache("timer_list", sizeof(timer_list));
  }
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    bases_[cpu].clk = 0;
    bases_[cpu].next_expiry = ~0ull;
    bases_[cpu].cpu = static_cast<uint32_t>(cpu);
    for (int i = 0; i < kTimerWheelLevels * kTimerWheelSlotsPerLevel; ++i) {
      INIT_HLIST_HEAD(&bases_[cpu].vectors[i]);
    }
  }
}

timer_list* TimerSubsystem::AllocTimer() {
  auto* timer = slabs_->AllocAs<timer_list>(timer_cache_);
  INIT_HLIST_NODE(&timer->entry);
  return timer;
}

void TimerSubsystem::FreeTimer(timer_list* timer) {
  DelTimer(timer);
  slabs_->Free(timer_cache_, timer);
}

uint32_t TimerSubsystem::CalcWheelIndex(uint64_t expires, uint64_t clk) {
  uint64_t delta = expires > clk ? expires - clk : 0;
  for (int level = 0; level < kTimerWheelLevels; ++level) {
    uint64_t level_span = 1ull << (kTimerLevelShift * (level + 1));
    if (delta < level_span || level == kTimerWheelLevels - 1) {
      uint64_t granularity = 1ull << (kTimerLevelShift * level);
      uint64_t slot = (expires / granularity) & (kTimerWheelSlotsPerLevel - 1);
      return static_cast<uint32_t>(level * kTimerWheelSlotsPerLevel + slot);
    }
  }
  return kTimerWheelLevels * kTimerWheelSlotsPerLevel - 1;
}

void TimerSubsystem::AddTimer(int cpu, timer_list* timer, uint64_t expires,
                              void (*fn)(timer_list*)) {
  DelTimer(timer);
  timer->expires = expires;
  timer->function = fn;
  timer->flags = static_cast<uint32_t>(cpu);
  timer_base* base = &bases_[cpu];
  uint32_t idx = CalcWheelIndex(expires, base->clk);
  hlist_add_head(&timer->entry, &base->vectors[idx]);
  if (expires < base->next_expiry) {
    base->next_expiry = expires;
  }
}

void TimerSubsystem::DelTimer(timer_list* timer) {
  if (!hlist_unhashed(&timer->entry)) {
    hlist_del(&timer->entry);
  }
}

uint64_t TimerSubsystem::Advance(int cpu, uint64_t jiffies) {
  timer_base* base = &bases_[cpu];
  uint64_t fired = 0;
  for (uint64_t j = 0; j < jiffies; ++j) {
    base->clk++;
    // Collect and run every due timer; re-bucket early cascaded entries.
    for (int level = 0; level < kTimerWheelLevels; ++level) {
      uint64_t granularity = 1ull << (kTimerLevelShift * level);
      if (level > 0 && (base->clk % granularity) != 0) {
        continue;
      }
      uint64_t slot = (base->clk / granularity) & (kTimerWheelSlotsPerLevel - 1);
      hlist_head* bucket = &base->vectors[level * kTimerWheelSlotsPerLevel + slot];
      hlist_node* node = bucket->first;
      while (node != nullptr) {
        hlist_node* next = node->next;
        timer_list* timer = VKERN_CONTAINER_OF(node, timer_list, entry);
        if (timer->expires <= base->clk) {
          hlist_del(&timer->entry);
          ++fired;
          if (timer->function != nullptr) {
            timer->function(timer);
          }
        } else if (level > 0) {
          // Cascade down to a finer level.
          hlist_del(&timer->entry);
          uint32_t idx = CalcWheelIndex(timer->expires, base->clk);
          hlist_add_head(&timer->entry, &base->vectors[idx]);
        }
        node = next;
      }
    }
  }
  return fired;
}

uint64_t TimerSubsystem::pending_count(int cpu) const {
  uint64_t n = 0;
  for (int i = 0; i < kTimerWheelLevels * kTimerWheelSlotsPerLevel; ++i) {
    n += hlist_count(&bases_[cpu].vectors[i]);
  }
  return n;
}

}  // namespace vkern
