// Fault-injection scenarios reproducing the paper's two CVE case studies
// (§3.2/§5.3). Each scenario drives the real subsystem code into the corrupted
// state the CVE exposes and returns a report of the relevant addresses so the
// visualization layer (and tests) can inspect them.

#ifndef SRC_VKERN_FAULTS_H_
#define SRC_VKERN_FAULTS_H_

#include <cstdint>

#include "src/vkern/kernel.h"

namespace vkern {

// CVE-2023-3269 "StackRot": a maple-tree node is freed through call_rcu while
// another CPU still holds a raw pointer obtained under mmap_lock (which does
// not block the RCU grace period).
struct StackRotReport {
  task_struct* victim_task = nullptr;
  mm_struct* mm = nullptr;
  maple_node* fetched_node = nullptr;   // the node CPU#1 fetched
  uint64_t fetched_addr = 0;
  bool node_was_on_cblist = false;      // observed on the RCU waiting list
  uint64_t cblist_len_at_free = 0;      // pending callbacks right after free
  bool grace_period_completed = false;
  bool uaf_detected = false;            // the freed node reads as slab poison
  uint8_t first_poison_byte = 0;
};

// Runs the race: CPU#0 performs expand_stack-style store (rebuilding the leaf
// and RCU-freeing the old one) while CPU#1 keeps its stale pointer; the grace
// period then completes because the reader holds only mmap_lock, not the RCU
// read lock. Returns the report; the kernel state afterwards shows the freed
// (poisoned) node still referenced.
StackRotReport RunStackRotScenario(Kernel* kernel, task_struct* victim);

// CVE-2022-0847 "Dirty Pipe": splicing a page-cache page into a pipe reuses a
// ring slot whose stale PIPE_BUF_FLAG_CAN_MERGE survives because
// copy_page_to_iter_pipe forgets to initialize flags; a subsequent pipe write
// then merges into — and corrupts — the shared page-cache page.
struct DirtyPipeReport {
  file* victim_file = nullptr;
  pipe_inode_info* pipe = nullptr;
  page* shared_page = nullptr;          // page owned by the file, in the pipe
  uint32_t buggy_buf_index = 0;
  uint32_t buggy_buf_flags = 0;         // contains CAN_MERGE when vulnerable
  bool can_merge_leaked = false;
  bool file_content_corrupted = false;  // page bytes changed by the pipe write
  uint8_t corrupted_byte = 0;
  uint8_t original_byte = 0;
};

// `vulnerable` selects the pre-fix (true) or post-fix (false) splice path.
DirtyPipeReport RunDirtyPipeScenario(Kernel* kernel, task_struct* attacker, bool vulnerable);

}  // namespace vkern

#endif  // SRC_VKERN_FAULTS_H_
