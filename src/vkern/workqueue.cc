#include "src/vkern/workqueue.h"

#include <cstring>

namespace vkern {

WorkqueueSubsystem::WorkqueueSubsystem(SlabAllocator* slabs, list_head* workqueues_head,
                                       worker_pool* cpu_pools)
    : slabs_(slabs), workqueues_head_(workqueues_head), cpu_pools_(cpu_pools) {
  wq_cache_ = slabs_->CreateCache("workqueue_struct", sizeof(workqueue_struct));
  pwq_cache_ = slabs_->CreateCache("pool_workqueue", sizeof(pool_workqueue));
  INIT_LIST_HEAD(workqueues_head_);
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    worker_pool* pool = &cpu_pools_[cpu];
    pool->cpu = cpu;
    pool->id = cpu;
    pool->nr_workers = 1;
    pool->nr_running = 0;
    INIT_LIST_HEAD(&pool->worklist);
    INIT_LIST_HEAD(&pool->workers);
  }
}

workqueue_struct* WorkqueueSubsystem::AllocWorkqueue(std::string_view name, uint32_t flags) {
  auto* wq = slabs_->AllocAs<workqueue_struct>(wq_cache_);
  size_t len = name.size() < sizeof(wq->name) - 1 ? name.size() : sizeof(wq->name) - 1;
  std::memcpy(wq->name, name.data(), len);
  wq->flags = flags;
  INIT_LIST_HEAD(&wq->pwqs);
  list_add_tail(&wq->list, workqueues_head_);
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    auto* pwq = slabs_->AllocAs<pool_workqueue>(pwq_cache_);
    pwq->pool = &cpu_pools_[cpu];
    pwq->wq = wq;
    pwq->refcnt = 1;
    INIT_LIST_HEAD(&pwq->inactive_works);
    list_add_tail(&pwq->pwqs_node, &wq->pwqs);
  }
  return wq;
}

void WorkqueueSubsystem::InitWork(work_struct* work, void (*fn)(work_struct*)) {
  work->data = 0;
  work->func = fn;
  INIT_LIST_HEAD(&work->entry);
}

bool WorkqueueSubsystem::QueueWork(workqueue_struct* wq, int cpu, work_struct* work) {
  if ((work->data & 1u) != 0) {
    return false;  // WORK_STRUCT_PENDING already set
  }
  // Find this wq's pool_workqueue for the CPU (data compaction: Linux packs
  // the pwq pointer into work->data; we mirror that).
  pool_workqueue* target = nullptr;
  VKERN_LIST_FOR_EACH(pos, &wq->pwqs) {
    pool_workqueue* pwq = VKERN_CONTAINER_OF(pos, pool_workqueue, pwqs_node);
    if (pwq->pool->cpu == cpu) {
      target = pwq;
      break;
    }
  }
  if (target == nullptr) {
    return false;
  }
  work->data = reinterpret_cast<uint64_t>(target) | 1u;  // pwq ptr | PENDING
  list_add_tail(&work->entry, &target->pool->worklist);
  return true;
}

uint64_t WorkqueueSubsystem::ProcessPending(int cpu, uint64_t max) {
  worker_pool* pool = &cpu_pools_[cpu];
  uint64_t ran = 0;
  while (ran < max && !list_empty(&pool->worklist)) {
    work_struct* work = VKERN_CONTAINER_OF(pool->worklist.next, work_struct, entry);
    list_del_init(&work->entry);
    work->data &= ~uint64_t{1};  // clear PENDING
    pool->nr_running++;
    if (work->func != nullptr) {
      work->func(work);
    }
    pool->nr_running--;
    ++ran;
  }
  return ran;
}

}  // namespace vkern
