// Read-copy-update machinery (paper §3.2, Figure 5).
//
// A deliberately small but behaviourally faithful RCU: per-CPU callback lists
// populated by call_rcu, a global grace-period sequence, and rcu_do_batch that
// invokes callbacks only after every CPU has passed a quiescent state since
// the callbacks were queued. The StackRot case study drives this machinery to
// reproduce the CVE-2023-3269 use-after-free window.

#ifndef SRC_VKERN_RCU_H_
#define SRC_VKERN_RCU_H_

#include <cstdint>
#include <vector>

#include "src/vkern/kstructs.h"

namespace vkern {

class RcuSubsystem {
 public:
  // `state` and `data[cpu]` must live in the arena (registered as symbols).
  RcuSubsystem(rcu_state* state, rcu_data* data, int nr_cpus);

  // Reader-side critical section on `cpu` (nestable).
  void ReadLock(int cpu);
  void ReadUnlock(int cpu);
  bool InReadSection(int cpu) const;

  // Queues `head` for invocation after the current grace period.
  void CallRcu(int cpu, rcu_head* head, void (*func)(rcu_head*));

  // Marks a quiescent state for `cpu` (a context switch / idle pass).
  void QuiescentState(int cpu);

  // Tries to complete a grace period: if every CPU has passed a quiescent
  // state since the GP began and none is inside a read-side critical section,
  // advances gp_seq and runs pending callbacks (rcu_do_batch). Returns the
  // number of callbacks invoked.
  uint64_t TryAdvanceGracePeriod();

  // Drives grace periods until all queued callbacks ran, reporting quiescent
  // states for all CPUs that are not in a read section. Returns callbacks run.
  // CPUs inside read sections block completion, as in a real kernel.
  uint64_t Synchronize();

  uint64_t pending_callbacks() const;
  rcu_data* cpu_data(int cpu) { return &data_[cpu]; }
  rcu_state* state() { return state_; }

 private:
  uint64_t DoBatch(int cpu);

  rcu_state* state_;
  rcu_data* data_;
  int nr_cpus_;
  // Grace-period bookkeeping (host-side, not visualized).
  uint64_t qs_mask_ = 0;   // CPUs that have passed a QS this GP
  uint64_t gp_start_seq_ = 0;
  std::vector<uint64_t> wait_len_;  // per-CPU "wait" segment length
};

}  // namespace vkern

#endif  // SRC_VKERN_RCU_H_
