// The paper's evaluation workload (§5.4): five processes, each with two
// threads, repeatedly performing IPC, mapping/unmapping files and anonymous
// pages, opening files/pipes/sockets, arming timers, sending signals, and
// scheduling — producing the live object graphs all figures are plotted from.
// Fully deterministic for a given seed.

#ifndef SRC_VKERN_WORKLOAD_H_
#define SRC_VKERN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/support/rng.h"
#include "src/vkern/kernel.h"

namespace vkern {

struct WorkloadConfig {
  int nr_processes = 5;
  int threads_per_process = 2;  // threads in addition to the group leader? No:
                                // total threads per process (leader included)
  int steps = 200;              // operations per thread
  uint64_t seed = 42;
};

class Workload {
 public:
  Workload(Kernel* kernel, const WorkloadConfig& config = WorkloadConfig{});

  // Creates the process/thread population and runs `config.steps` rounds.
  void Run();

  // One extra round of random operations across all live threads.
  void Step();

  const std::vector<task_struct*>& user_tasks() const { return threads_; }
  task_struct* process(int i) const { return leaders_[static_cast<size_t>(i)]; }
  int nr_processes() const { return static_cast<int>(leaders_.size()); }

 private:
  struct ThreadState {
    task_struct* task = nullptr;
    std::vector<uint64_t> anon_vmas;  // start addresses
    std::vector<uint64_t> file_vmas;
    std::vector<int> fds;
    std::vector<pipe_inode_info*> pipes;
    std::vector<socket*> sockets;
    std::vector<timer_list*> timers;
  };

  void SpawnPopulation();
  void DoRandomOp(ThreadState* ts);
  file* OpenScratchFile(const char* prefix, int idx);

  Kernel* kernel_;
  WorkloadConfig config_;
  vl::Rng rng_;
  std::vector<task_struct*> leaders_;
  std::vector<task_struct*> threads_;
  std::vector<ThreadState> states_;
  sem_array* shared_sem_ = nullptr;
  msg_queue* shared_msq_ = nullptr;
  int file_seq_ = 0;
};

}  // namespace vkern

#endif  // SRC_VKERN_WORKLOAD_H_
