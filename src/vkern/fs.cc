#include "src/vkern/fs.h"

#include <cassert>
#include <cstring>

namespace vkern {

namespace {

void CopyName(char* dst, size_t cap, std::string_view name) {
  size_t len = name.size() < cap - 1 ? name.size() : cap - 1;
  std::memcpy(dst, name.data(), len);
  dst[len] = '\0';
}

}  // namespace

FsManager::FsManager(SlabAllocator* slabs, BuddyAllocator* buddy, RadixTreeOps* radix)
    : slabs_(slabs), buddy_(buddy), radix_(radix) {
  super_blocks_ = static_cast<list_head*>(slabs_->AllocMeta(sizeof(list_head)));
  INIT_LIST_HEAD(super_blocks_);
  filesystems_ = static_cast<list_head*>(slabs_->AllocMeta(sizeof(list_head)));
  INIT_LIST_HEAD(filesystems_);

  sb_cache_ = slabs_->CreateCache("super_block", sizeof(super_block));
  inode_cache_ = slabs_->CreateCache("inode_cache", sizeof(inode));
  dentry_cache_ = slabs_->CreateCache("dentry", sizeof(dentry));
  file_cache_ = slabs_->CreateCache("filp", sizeof(file));
  files_cache_ = slabs_->CreateCache("files_cache", sizeof(files_struct));
  bdev_cache_ = slabs_->CreateCache("bdev_cache", sizeof(block_device));
  fstype_cache_ = slabs_->CreateCache("file_system_type", sizeof(file_system_type));
  pipe_cache_ = slabs_->CreateCache("pipe_inode_info", sizeof(pipe_inode_info));
  pipe_buf_cache_ =
      slabs_->CreateCache("pipe_buffer[]", sizeof(pipe_buffer) * kPipeDefBuffers);

  // Ops tables live in the arena (a real kernel keeps them in .rodata, which
  // GDB can read; our debugger can only read the arena).
  pipefifo_fops_ = static_cast<file_operations_stub*>(
      slabs_->AllocMeta(sizeof(file_operations_stub)));
  CopyName(pipefifo_fops_->name, sizeof(pipefifo_fops_->name), "pipefifo_fops");
  def_file_fops_ = static_cast<file_operations_stub*>(
      slabs_->AllocMeta(sizeof(file_operations_stub)));
  CopyName(def_file_fops_->name, sizeof(def_file_fops_->name), "def_file_fops");
  anon_pipe_buf_ops_ = static_cast<pipe_buf_operations_stub*>(
      slabs_->AllocMeta(sizeof(pipe_buf_operations_stub)));
  CopyName(anon_pipe_buf_ops_->name, sizeof(anon_pipe_buf_ops_->name), "anon_pipe_buf_ops");
  page_cache_pipe_buf_ops_ = static_cast<pipe_buf_operations_stub*>(
      slabs_->AllocMeta(sizeof(pipe_buf_operations_stub)));
  CopyName(page_cache_pipe_buf_ops_->name, sizeof(page_cache_pipe_buf_ops_->name),
           "page_cache_pipe_buf_ops");
}

file_system_type* FsManager::RegisterFilesystem(std::string_view name) {
  auto* fs_type = slabs_->AllocAs<file_system_type>(fstype_cache_);
  CopyName(fs_type->name, sizeof(fs_type->name), name);
  INIT_LIST_HEAD(&fs_type->fs_supers);
  return fs_type;
}

block_device* FsManager::CreateBlockDevice(std::string_view disk_name, uint64_t dev,
                                           uint64_t nr_sectors) {
  auto* bdev = slabs_->AllocAs<block_device>(bdev_cache_);
  bdev->bd_dev = dev;
  CopyName(bdev->bd_disk_name, sizeof(bdev->bd_disk_name), disk_name);
  bdev->bd_nr_sectors = nr_sectors;
  return bdev;
}

super_block* FsManager::CreateSuperBlock(file_system_type* fs_type, std::string_view id,
                                         block_device* bdev) {
  auto* sb = slabs_->AllocAs<super_block>(sb_cache_);
  sb->s_dev = bdev != nullptr ? bdev->bd_dev : 0;
  sb->s_magic = 0x58465342;  // arbitrary but stable
  sb->s_type = fs_type;
  sb->s_bdev = bdev;
  sb->s_count = 1;
  CopyName(sb->s_id, sizeof(sb->s_id), id);
  INIT_LIST_HEAD(&sb->s_inodes);
  list_add_tail(&sb->s_list, super_blocks_);
  if (bdev != nullptr) {
    bdev->bd_super = sb;
  }
  // Root dentry "/" with a directory inode.
  inode* root_ino = CreateInode(sb, kSIfDir | 0755, 0);
  sb->s_root = CreateDentry("/", root_ino, nullptr);
  return sb;
}

inode* FsManager::CreateInode(super_block* sb, uint32_t mode, int64_t size) {
  auto* ino = slabs_->AllocAs<inode>(inode_cache_);
  ino->i_ino = next_ino_++;
  ino->i_mode = mode;
  ino->i_nlink = 1;
  ino->i_size = size;
  ino->i_sb = sb;
  ino->i_data.host = ino;
  ino->i_data.i_pages.height = 0;
  ino->i_data.i_pages.rnode = nullptr;
  ino->i_data.nrpages = 0;
  INIT_LIST_HEAD(&ino->i_data.i_mmap);
  ino->i_mapping = &ino->i_data;
  if (sb != nullptr) {
    list_add_tail(&ino->i_sb_list, &sb->s_inodes);
  } else {
    INIT_LIST_HEAD(&ino->i_sb_list);
  }
  return ino;
}

dentry* FsManager::CreateDentry(std::string_view name, inode* ino, dentry* parent) {
  auto* dent = slabs_->AllocAs<dentry>(dentry_cache_);
  CopyName(dent->d_name, sizeof(dent->d_name), name);
  dent->d_inode = ino;
  dent->d_parent = parent != nullptr ? parent : dent;
  dent->d_count = 1;
  INIT_LIST_HEAD(&dent->d_subdirs);
  if (parent != nullptr) {
    list_add_tail(&dent->d_child, &parent->d_subdirs);
  } else {
    INIT_LIST_HEAD(&dent->d_child);
  }
  return dent;
}

file* FsManager::OpenFile(dentry* dent, uint32_t flags) {
  auto* f = slabs_->AllocAs<file>(file_cache_);
  f->f_dentry = dent;
  f->f_inode = dent->d_inode;
  f->f_mapping = dent->d_inode != nullptr ? dent->d_inode->i_mapping : nullptr;
  f->f_op = def_file_fops_;
  f->f_flags = flags;
  f->f_mode = 0;
  f->f_pos = 0;
  f->f_count.counter = 1;
  if (dent->d_inode != nullptr) {
    dent->d_count++;
  }
  return f;
}

void FsManager::CloseFile(file* f) {
  if (--f->f_count.counter > 0) {
    return;
  }
  slabs_->Free(file_cache_, f);
}

page* FsManager::PageCacheLookup(inode* ino, uint64_t pgoff) const {
  return static_cast<page*>(radix_->Lookup(&ino->i_data.i_pages, pgoff));
}

page* FsManager::PageCacheGrab(inode* ino, uint64_t pgoff) {
  page* pg = PageCacheLookup(ino, pgoff);
  if (pg != nullptr) {
    return pg;
  }
  pg = buddy_->AllocPage();
  if (pg == nullptr) {
    return nullptr;
  }
  pg->mapping = &ino->i_data;
  pg->index = pgoff;
  pg->flags |= PG_uptodate;
  // "Read" deterministic file content into the page.
  auto* data = static_cast<uint8_t*>(buddy_->PageAddress(pg));
  for (size_t i = 0; i < kPageSize; ++i) {
    data[i] = static_cast<uint8_t>('A' + ((ino->i_ino + pgoff * 7 + i) % 26));
  }
  if (!radix_->Insert(&ino->i_data.i_pages, pgoff, pg)) {
    buddy_->FreePage(pg);
    return nullptr;
  }
  ino->i_data.nrpages++;
  return pg;
}

files_struct* FsManager::CreateFilesStruct() {
  auto* files = slabs_->AllocAs<files_struct>(files_cache_);
  files->count.counter = 1;
  files->fdt_embedded.max_fds = kNrOpenDefault;
  files->fdt_embedded.fd = files->fd_array;
  files->fdt_embedded.open_fds = &files->open_fds_init;
  files->fdt_embedded.close_on_exec = &files->close_on_exec_init;
  files->fdt = &files->fdt_embedded;
  files->next_fd = 0;
  return files;
}

int FsManager::InstallFd(files_struct* files, file* f) {
  fdtable* fdt = files->fdt;
  for (uint32_t fd = static_cast<uint32_t>(files->next_fd); fd < fdt->max_fds; ++fd) {
    if ((*fdt->open_fds & (1ull << fd)) == 0) {
      *fdt->open_fds |= 1ull << fd;
      fdt->fd[fd] = f;
      files->next_fd = static_cast<int>(fd) + 1;
      return static_cast<int>(fd);
    }
  }
  return -1;
}

file* FsManager::FdGet(files_struct* files, int fd) const {
  fdtable* fdt = files->fdt;
  if (fd < 0 || static_cast<uint32_t>(fd) >= fdt->max_fds) {
    return nullptr;
  }
  if ((*fdt->open_fds & (1ull << fd)) == 0) {
    return nullptr;
  }
  return fdt->fd[fd];
}

void FsManager::CloseFd(files_struct* files, int fd) {
  file* f = FdGet(files, fd);
  if (f == nullptr) {
    return;
  }
  fdtable* fdt = files->fdt;
  *fdt->open_fds &= ~(1ull << fd);
  fdt->fd[fd] = nullptr;
  if (fd < files->next_fd) {
    files->next_fd = fd;
  }
  CloseFile(f);
}

pipe_inode_info* FsManager::CreatePipe(super_block* pipefs_sb, file** read_end,
                                       file** write_end) {
  inode* ino = CreateInode(pipefs_sb, kSIfIfo | 0600, 0);
  auto* pipe = slabs_->AllocAs<pipe_inode_info>(pipe_cache_);
  pipe->head = 0;
  pipe->tail = 0;
  pipe->ring_size = kPipeDefBuffers;
  pipe->readers = 1;
  pipe->writers = 1;
  pipe->bufs = static_cast<pipe_buffer*>(slabs_->Alloc(pipe_buf_cache_));
  pipe->inode_ = ino;
  ino->i_pipe = pipe;

  dentry* dent = CreateDentry("pipe:", ino, nullptr);
  file* rf = OpenFile(dent, 0 /* O_RDONLY */);
  rf->f_op = pipefifo_fops_;
  rf->private_data = pipe;
  file* wf = OpenFile(dent, 1 /* O_WRONLY */);
  wf->f_op = pipefifo_fops_;
  wf->private_data = pipe;
  *read_end = rf;
  *write_end = wf;
  return pipe;
}

bool FsManager::PipeWrite(pipe_inode_info* pipe, const void* data, uint32_t len) {
  const auto* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    uint32_t used = pipe->head - pipe->tail;
    // Try appending to the head buffer when it allows merging.
    if (used > 0) {
      pipe_buffer* buf = &pipe->bufs[(pipe->head - 1) & (pipe->ring_size - 1)];
      if ((buf->flags & PIPE_BUF_FLAG_CAN_MERGE) != 0 && buf->offset + buf->len < kPageSize) {
        uint32_t space = static_cast<uint32_t>(kPageSize) - (buf->offset + buf->len);
        uint32_t chunk = len < space ? len : space;
        auto* dst = static_cast<uint8_t*>(buddy_->PageAddress(buf->page_));
        // NOTE: for a page-cache-backed buffer this writes *into the shared
        // page*, corrupting the file's cached content — CVE-2022-0847.
        std::memcpy(dst + buf->offset + buf->len, src, chunk);
        buf->len += chunk;
        src += chunk;
        len -= chunk;
        continue;
      }
    }
    if (used >= pipe->ring_size) {
      return false;  // pipe full
    }
    page* pg = buddy_->AllocPage();
    if (pg == nullptr) {
      return false;
    }
    pipe_buffer* buf = &pipe->bufs[pipe->head & (pipe->ring_size - 1)];
    buf->page_ = pg;
    buf->offset = 0;
    buf->len = 0;
    buf->ops = anon_pipe_buf_ops_;
    // Anonymous pipe buffers are mergeable (Linux 5.8+ behaviour).
    buf->flags = PIPE_BUF_FLAG_CAN_MERGE;
    pipe->head++;
    uint32_t chunk = len < kPageSize ? len : static_cast<uint32_t>(kPageSize);
    std::memcpy(buddy_->PageAddress(pg), src, chunk);
    buf->len = chunk;
    src += chunk;
    len -= chunk;
  }
  return true;
}

uint32_t FsManager::PipeRead(pipe_inode_info* pipe, uint32_t len) {
  uint32_t total = 0;
  while (len > 0 && pipe->tail != pipe->head) {
    pipe_buffer* buf = &pipe->bufs[pipe->tail & (pipe->ring_size - 1)];
    uint32_t chunk = len < buf->len ? len : buf->len;
    buf->offset += chunk;
    buf->len -= chunk;
    total += chunk;
    len -= chunk;
    if (buf->len == 0) {
      // Release the buffer. Linux leaves buf->flags as-is in the ring — the
      // stale-flag reuse at the heart of Dirty Pipe.
      if (buf->ops == anon_pipe_buf_ops_ && buf->page_ != nullptr) {
        buddy_->FreePage(buf->page_);
      }
      buf->page_ = nullptr;
      buf->ops = nullptr;
      buf->offset = 0;
      pipe->tail++;
    }
  }
  return total;
}

bool FsManager::SpliceFileToPipe(file* src, uint64_t pgoff, pipe_inode_info* pipe, uint32_t len,
                                 bool init_flags_bug) {
  if (pipe->head - pipe->tail >= pipe->ring_size) {
    return false;
  }
  page* pg = PageCacheGrab(src->f_inode, pgoff);
  if (pg == nullptr) {
    return false;
  }
  pipe_buffer* buf = &pipe->bufs[pipe->head & (pipe->ring_size - 1)];
  buf->page_ = pg;
  buf->offset = 0;
  buf->len = len;
  buf->ops = page_cache_pipe_buf_ops_;
  if (!init_flags_bug) {
    buf->flags = 0;  // the post-CVE fix: copy_page_to_iter_pipe clears flags
  }
  // With the bug, buf->flags keeps whatever the previous occupant of this ring
  // slot left behind — possibly PIPE_BUF_FLAG_CAN_MERGE.
  pg->refcount++;
  pipe->head++;
  return true;
}

}  // namespace vkern
