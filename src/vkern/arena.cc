#include "src/vkern/arena.h"

#include <cassert>
#include <cstring>

namespace vkern {

Arena::Arena(size_t size_bytes) : size_(size_bytes), mem_(new uint8_t[size_bytes]) {
  assert(size_bytes % kPageSize == 0 && "arena size must be page aligned");
  std::memset(mem_.get(), 0, size_bytes);
}

}  // namespace vkern
