// Page-hash journal over an Arena: the dirty-page log primitive behind
// incremental refresh (docs/caching.md#incremental-invalidation).
//
// QEMU's live-migration dirty log flags guest pages written since the last
// sync; debuggers can query it instead of re-reading everything. The
// simulated kernel has no write interception, so we model the same contract
// with lazy per-page checksums: a scan hashes every 4 KiB page at most once
// per generation and stamps pages whose hash moved with the scanning
// generation. Writes that landed between two scans are attributed to the
// later scan's generation — conservative (a page is never reported clean
// while holding unseen writes), which is exactly what cache invalidation
// and memoization need.

#ifndef SRC_VKERN_PAGE_JOURNAL_H_
#define SRC_VKERN_PAGE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/vkern/arena.h"

namespace vkern {

class PageJournal {
 public:
  // Baselines every page's hash at `generation`. Every page starts marked
  // "changed at `generation`", so a first query against an older epoch
  // degenerates to all-dirty (safe) rather than all-clean (wrong).
  PageJournal(const Arena* arena, uint64_t generation);

  PageJournal(const PageJournal&) = delete;
  PageJournal& operator=(const PageJournal&) = delete;

  // Indices of pages whose content changed after `since_generation`
  // (page base = arena base + index * kPageSize; the arena base itself need
  // not be host-page-aligned, pages are arena-relative). Lazily rescans when
  // `current_generation` differs from the last scanned generation, so
  // repeated queries within one generation are free.
  std::vector<uint32_t> DirtyPagesSince(uint64_t since_generation,
                                        uint64_t current_generation);

  size_t page_count() const { return last_changed_.size(); }
  // Generation the page hashes are current for.
  uint64_t scanned_generation() const { return scanned_gen_; }
  // Generation at which `page` was last seen to change (the baseline
  // generation if it never changed under this journal).
  uint64_t last_changed(size_t page) const { return last_changed_[page]; }

  // Host-side scan work: full-arena scans run and pages hashed in total.
  uint64_t scans() const { return scans_; }
  uint64_t pages_hashed() const { return pages_hashed_; }

 private:
  void Rescan(uint64_t current_generation);

  const Arena* arena_;
  uint64_t scanned_gen_;
  std::vector<uint64_t> hashes_;        // per-page content hash
  std::vector<uint64_t> last_changed_;  // per-page last-changed generation
  uint64_t scans_ = 0;
  uint64_t pages_hashed_ = 0;
};

}  // namespace vkern

#endif  // SRC_VKERN_PAGE_JOURNAL_H_
