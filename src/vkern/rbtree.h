// Kernel-style red-black tree (lib/rbtree.c port).
//
// The caller performs the ordered descent and links the node with rb_link_node;
// rb_insert_color/rb_erase restore the red-black invariants. The parent pointer
// and the node colour share one word (__rb_parent_color), matching Linux — the
// debugger layer must decode this compaction, which is one of the paper's
// "handling data compaction" scenarios.

#ifndef SRC_VKERN_RBTREE_H_
#define SRC_VKERN_RBTREE_H_

#include <cstdint>

namespace vkern {

struct rb_node {
  uintptr_t __rb_parent_color;  // parent pointer | colour in bit 0 (0=red, 1=black)
  rb_node* rb_right;
  rb_node* rb_left;
};

struct rb_root {
  rb_node* rb_node_;
};

// Root plus a cached leftmost pointer; used by CFS (tasks_timeline).
struct rb_root_cached {
  rb_root rb_root_;
  rb_node* rb_leftmost;
};

inline constexpr uintptr_t kRbRed = 0;
inline constexpr uintptr_t kRbBlack = 1;

inline rb_node* rb_parent(const rb_node* node) {
  return reinterpret_cast<rb_node*>(node->__rb_parent_color & ~3ull);
}
inline bool rb_is_black(const rb_node* node) { return (node->__rb_parent_color & 1) != 0; }
inline bool rb_is_red(const rb_node* node) { return !rb_is_black(node); }

// Links a new node below `parent` at `link` (coloured red, not yet balanced).
inline void rb_link_node(rb_node* node, rb_node* parent, rb_node** link) {
  node->__rb_parent_color = reinterpret_cast<uintptr_t>(parent);
  node->rb_left = nullptr;
  node->rb_right = nullptr;
  *link = node;
}

void rb_insert_color(rb_node* node, rb_root* root);
void rb_erase(rb_node* node, rb_root* root);

// Cached-leftmost variants.
void rb_insert_color_cached(rb_node* node, rb_root_cached* root, bool leftmost);
void rb_erase_cached(rb_node* node, rb_root_cached* root);

rb_node* rb_first(const rb_root* root);
rb_node* rb_last(const rb_root* root);
rb_node* rb_next(const rb_node* node);
rb_node* rb_prev(const rb_node* node);

inline rb_node* rb_first_cached(const rb_root_cached* root) { return root->rb_leftmost; }

// Structural validation (used by tests): returns the black-height if the tree
// rooted at `root` satisfies every red-black invariant, or -1 if violated.
int rb_validate(const rb_root* root);

}  // namespace vkern

#endif  // SRC_VKERN_RBTREE_H_
