#include "src/vkern/page_journal.h"

#include <cstring>

namespace vkern {

namespace {

// SplitMix64 finalizer (same constants as vl::Rng) folded over the page's
// 64-bit words: deterministic, seed-free, and cheap enough to hash the whole
// arena in one pass.
inline uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashPage(const uint8_t* page) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < kPageSize; i += sizeof(uint64_t)) {
    uint64_t word;
    std::memcpy(&word, page + i, sizeof(word));
    h = Mix(h ^ (word + 0x9e3779b97f4a7c15ull));
  }
  return h;
}

}  // namespace

PageJournal::PageJournal(const Arena* arena, uint64_t generation)
    : arena_(arena), scanned_gen_(generation) {
  size_t pages = arena_->size() / kPageSize;  // arena size is page-aligned
  hashes_.resize(pages);
  last_changed_.assign(pages, generation);
  for (size_t p = 0; p < pages; ++p) {
    hashes_[p] = HashPage(arena_->base() + p * kPageSize);
  }
  scans_ = 1;
  pages_hashed_ = pages;
}

void PageJournal::Rescan(uint64_t current_generation) {
  const uint8_t* base = arena_->base();
  for (size_t p = 0; p < hashes_.size(); ++p) {
    uint64_t h = HashPage(base + p * kPageSize);
    if (h != hashes_[p]) {
      hashes_[p] = h;
      last_changed_[p] = current_generation;
    }
  }
  scanned_gen_ = current_generation;
  scans_++;
  pages_hashed_ += hashes_.size();
}

std::vector<uint32_t> PageJournal::DirtyPagesSince(uint64_t since_generation,
                                                   uint64_t current_generation) {
  if (current_generation != scanned_gen_) {
    Rescan(current_generation);
  }
  std::vector<uint32_t> dirty;
  for (size_t p = 0; p < last_changed_.size(); ++p) {
    if (last_changed_[p] > since_generation) {
      dirty.push_back(static_cast<uint32_t>(p));
    }
  }
  return dirty;
}

}  // namespace vkern
