#include "src/vkern/kernel.h"

#include <cstdio>
#include <cstring>

namespace vkern {

namespace {

// Work handlers — their addresses tag the containing type of each work item
// (Figure 6's "types determined by a function pointer field").
void VmstatUpdate(work_struct* work) {
  auto* dw = VKERN_CONTAINER_OF(work, delayed_work, work);
  auto* item = VKERN_CONTAINER_OF(dw, vmstat_work_item, dw);
  item->nr_updates++;
}

void LruAddDrainPerCpu(work_struct* work) {
  auto* item = VKERN_CONTAINER_OF(work, lru_drain_item, work);
  (void)item;
}

void DrainLocalPagesWq(work_struct* work) {
  auto* item = VKERN_CONTAINER_OF(work, drain_pages_item, work);
  item->drained++;
}

// Timer callbacks.
void ProcessTimeoutFn(timer_list* timer) { (void)timer; }
void DelayedWorkTimerFn(timer_list* timer) { (void)timer; }

// IRQ handlers.
void TimerInterrupt(int irq, void* dev) {
  (void)irq;
  (void)dev;
}
void AtaInterrupt(int irq, void* dev) {
  (void)irq;
  (void)dev;
}
void EthInterrupt(int irq, void* dev) {
  (void)irq;
  (void)dev;
}

// Stand-in user signal handlers (only their addresses matter).
void UserSigHandler1(int sig) { (void)sig; }
void UserSigHandler2(int sig) { (void)sig; }

}  // namespace

Kernel::Kernel(const KernelConfig& config) {
  arena_ = std::make_unique<Arena>(config.arena_bytes);
  buddy_ = std::make_unique<BuddyAllocator>(arena_.get());
  slabs_ = std::make_unique<SlabAllocator>(buddy_.get());
  radix_ = std::make_unique<RadixTreeOps>(slabs_.get());

  // In-arena globals.
  runqueues_ = static_cast<rq*>(slabs_->AllocMeta(sizeof(rq) * kNrCpus, 64));
  rcu_state_ = static_cast<rcu_state*>(slabs_->AllocMeta(sizeof(rcu_state), 64));
  rcu_data_ = static_cast<rcu_data*>(slabs_->AllocMeta(sizeof(rcu_data) * kNrCpus, 64));
  timer_bases_ = static_cast<timer_base*>(slabs_->AllocMeta(sizeof(timer_base) * kNrCpus, 64));
  irq_descs_ = static_cast<irq_desc*>(slabs_->AllocMeta(sizeof(irq_desc) * kNrIrqs, 64));
  worker_pools_ =
      static_cast<worker_pool*>(slabs_->AllocMeta(sizeof(worker_pool) * kNrCpus, 64));
  workqueues_head_ = static_cast<list_head*>(slabs_->AllocMeta(sizeof(list_head)));
  init_ipc_ns_ = static_cast<ipc_namespace*>(slabs_->AllocMeta(sizeof(ipc_namespace), 64));
  swap_info_ = static_cast<swap_info_struct**>(
      slabs_->AllocMeta(sizeof(swap_info_struct*) * kMaxSwapFiles, 8));

  rcu_ = std::make_unique<RcuSubsystem>(rcu_state_, rcu_data_, kNrCpus);
  maple_ = std::make_unique<MapleTreeOps>(slabs_.get(), rcu_.get());
  sched_ = std::make_unique<Scheduler>(runqueues_);
  fs_ = std::make_unique<FsManager>(slabs_.get(), buddy_.get(), radix_.get());
  procs_ = std::make_unique<ProcessManager>(slabs_.get(), buddy_.get(), maple_.get(),
                                            sched_.get(), fs_.get());
  timers_ = std::make_unique<TimerSubsystem>(timer_bases_, slabs_.get());
  irqs_ = std::make_unique<IrqSubsystem>(irq_descs_, slabs_.get());
  wqs_ = std::make_unique<WorkqueueSubsystem>(slabs_.get(), workqueues_head_, worker_pools_);
  ipc_ = std::make_unique<IpcSubsystem>(init_ipc_ns_, slabs_.get());
  devices_ = std::make_unique<DeviceModel>(slabs_.get());
  swap_ = std::make_unique<SwapSubsystem>(swap_info_, slabs_.get());

  wq_item_cache_ = slabs_->CreateCache("mm_percpu_wq_item", sizeof(vmstat_work_item));

  BootFilesystems();
  net_ = std::make_unique<NetSubsystem>(slabs_.get(), fs_.get(), sockfs_sb_);
  procs_->Boot();
  BootDeviceModel();
  BootWorkqueues();
  BootIrqs();
  BootSwap();
  BootKthreads();
  RegisterWellKnownFunctions();
}

Kernel::~Kernel() = default;

void Kernel::BootFilesystems() {
  file_system_type* ext4 = fs_->RegisterFilesystem("ext4");
  file_system_type* tmpfs = fs_->RegisterFilesystem("tmpfs");
  file_system_type* pipefs = fs_->RegisterFilesystem("pipefs");
  file_system_type* sockfs = fs_->RegisterFilesystem("sockfs");
  fs_->RegisterFilesystem("proc");

  sda_ = fs_->CreateBlockDevice("sda", (8ull << 20) | 0, 1 << 21);
  sdb_ = fs_->CreateBlockDevice("sdb", (8ull << 20) | 16, 1 << 20);
  ext4_sb_ = fs_->CreateSuperBlock(ext4, "sda1", sda_);
  tmpfs_sb_ = fs_->CreateSuperBlock(tmpfs, "tmpfs", nullptr);
  pipefs_sb_ = fs_->CreateSuperBlock(pipefs, "pipefs", nullptr);
  sockfs_sb_ = fs_->CreateSuperBlock(sockfs, "sockfs", nullptr);
}

void Kernel::BootDeviceModel() {
  platform_bus_ = devices_->RegisterBus("platform");
  device_driver* serial_drv = devices_->RegisterDriver(platform_bus_, "serial8250");
  device_driver* rtc_drv = devices_->RegisterDriver(platform_bus_, "rtc_cmos");
  devices_->RegisterDriver(platform_bus_, "i8042");
  device* serial = devices_->RegisterDevice(platform_bus_, "serial8250", nullptr, 0);
  device* rtc = devices_->RegisterDevice(platform_bus_, "rtc_cmos", nullptr, 0);
  device* port0 = devices_->RegisterDevice(platform_bus_, "ttyS0", serial, (4ull << 20) | 64);
  devices_->BindDevice(serial, serial_drv);
  devices_->BindDevice(rtc, rtc_drv);
  devices_->BindDevice(port0, serial_drv);
}

void Kernel::BootWorkqueues() {
  events_wq_ = wqs_->AllocWorkqueue("events", 0);
  mm_percpu_wq_ = wqs_->AllocWorkqueue("mm_percpu_wq", 0x20000 /* WQ_MEM_RECLAIM */);
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    QueueMmPercpuWork(cpu);
  }
}

void Kernel::QueueMmPercpuWork(int cpu) {
  BumpGeneration();
  auto* vw = slabs_->AllocAs<vmstat_work_item>(wq_item_cache_);
  vw->cpu = cpu;
  wqs_->InitWork(&vw->dw.work, &VmstatUpdate);
  vw->dw.cpu = cpu;
  wqs_->QueueWork(mm_percpu_wq_, cpu, &vw->dw.work);

  auto* lw = slabs_->AllocAs<lru_drain_item>(wq_item_cache_);
  lw->cpu = cpu;
  wqs_->InitWork(&lw->work, &LruAddDrainPerCpu);
  wqs_->QueueWork(mm_percpu_wq_, cpu, &lw->work);

  auto* dw = slabs_->AllocAs<drain_pages_item>(wq_item_cache_);
  dw->cpu = cpu;
  wqs_->InitWork(&dw->work, &DrainLocalPagesWq);
  wqs_->QueueWork(mm_percpu_wq_, cpu, &dw->work);
}

void Kernel::BootIrqs() {
  irqs_->RequestIrq(0, "timer", &TimerInterrupt, runqueues_, 0);
  irqs_->RequestIrq(1, "i8042", &TimerInterrupt, nullptr, 0);
  irqs_->RequestIrq(14, "ata_piix", &AtaInterrupt, sda_, 0);
  irqs_->RequestIrq(14, "ata_piix", &AtaInterrupt, sdb_, 0x80 /* IRQF_SHARED */);
  irqs_->RequestIrq(11, "eth0", &EthInterrupt, nullptr, 0);
}

void Kernel::BootSwap() {
  inode* swap_ino = fs_->CreateInode(ext4_sb_, kSIfReg | 0600, 64 << 20);
  dentry* swap_dent = fs_->CreateDentry("swapfile", swap_ino, ext4_sb_->s_root);
  file* swap_file = fs_->OpenFile(swap_dent, 2);
  swap_info_struct* si = swap_->SwapOn(swap_file, sda_, 16384, -2);
  // Pre-populate a little usage so the figure is non-trivial.
  for (int i = 0; i < 37; ++i) {
    swap_->AllocSlot(si);
  }
}

void Kernel::BootKthreads() {
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    char name[16];
    std::snprintf(name, sizeof(name), "kworker/%d:0", cpu);
    procs_->CreateKthread(name, cpu);
    std::snprintf(name, sizeof(name), "ksoftirqd/%d", cpu);
    procs_->CreateKthread(name, cpu);
  }
  procs_->CreateKthread("rcu_sched", 0);
  procs_->CreateKthread("kswapd0", 1);
}

void Kernel::TickCpu(int cpu) {
  BumpGeneration();
  sched_->Tick(cpu);
  timers_->Advance(cpu, 1);
  wqs_->ProcessPending(cpu, 1);
  rcu_->QuiescentState(cpu);
  rcu_->TryAdvanceGracePeriod();
}

void Kernel::RegisterFunction(const void* fn, std::string name) {
  func_symbols_[reinterpret_cast<uint64_t>(fn)] = std::move(name);
}

std::string Kernel::SymbolizeFunction(uint64_t addr) const {
  auto it = func_symbols_.find(addr);
  return it != func_symbols_.end() ? it->second : std::string();
}

void Kernel::RegisterWellKnownFunctions() {
  RegisterFunction(reinterpret_cast<const void*>(&VmstatUpdate), "vmstat_update");
  RegisterFunction(reinterpret_cast<const void*>(&LruAddDrainPerCpu), "lru_add_drain_per_cpu");
  RegisterFunction(reinterpret_cast<const void*>(&DrainLocalPagesWq), "drain_local_pages_wq");
  RegisterFunction(reinterpret_cast<const void*>(&ProcessTimeoutFn), "process_timeout");
  RegisterFunction(reinterpret_cast<const void*>(&DelayedWorkTimerFn), "delayed_work_timer_fn");
  RegisterFunction(reinterpret_cast<const void*>(&TimerInterrupt), "timer_interrupt");
  RegisterFunction(reinterpret_cast<const void*>(&AtaInterrupt), "ata_bmdma_interrupt");
  RegisterFunction(reinterpret_cast<const void*>(&EthInterrupt), "e1000_intr");
  RegisterFunction(reinterpret_cast<const void*>(&MapleTreeOps::MtFreeRcu), "mt_free_rcu");
  RegisterFunction(reinterpret_cast<const void*>(&UserSigHandler1), "user_sigint_handler");
  RegisterFunction(reinterpret_cast<const void*>(&UserSigHandler2), "user_sigusr1_handler");
  RegisterFunction(nullptr, "SIG_DFL");
  RegisterFunction(reinterpret_cast<const void*>(uintptr_t{1}), "SIG_IGN");
}

// Exposed for workloads that want to install "user" handlers.
sighandler_t KernelTestSigHandler1() { return &UserSigHandler1; }
sighandler_t KernelTestSigHandler2() { return &UserSigHandler2; }
void (*KernelProcessTimeoutFn())(timer_list*) { return &ProcessTimeoutFn; }

}  // namespace vkern
