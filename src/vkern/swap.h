// Swap area descriptors (ULK Figure 17-6).

#ifndef SRC_VKERN_SWAP_H_
#define SRC_VKERN_SWAP_H_

#include <cstdint>

#include "src/vkern/fs.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class SwapSubsystem {
 public:
  // `swap_info` is the in-arena array of swap_info_struct* [kMaxSwapFiles].
  SwapSubsystem(swap_info_struct** swap_info, SlabAllocator* slabs);

  // swapon(): activates a swap area of `pages` slots backed by `backing`.
  swap_info_struct* SwapOn(file* backing, block_device* bdev, uint32_t pages, int16_t prio);

  // Allocates/free a swap slot (adjusting swap_map usage counts).
  int64_t AllocSlot(swap_info_struct* si);
  void FreeSlot(swap_info_struct* si, uint32_t slot);

  swap_info_struct* info(int type) { return swap_info_[type]; }
  int nr_swapfiles() const { return nr_swapfiles_; }

 private:
  swap_info_struct** swap_info_;
  SlabAllocator* slabs_;
  kmem_cache* si_cache_;
  int nr_swapfiles_ = 0;
};

}  // namespace vkern

#endif  // SRC_VKERN_SWAP_H_
