// Sockets with send/receive sk_buff queues (paper Table 2 #21).

#ifndef SRC_VKERN_NET_H_
#define SRC_VKERN_NET_H_

#include <cstdint>

#include "src/vkern/fs.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

// Socket states (SS_*) and families.
inline constexpr uint32_t SS_UNCONNECTED = 1;
inline constexpr uint32_t SS_CONNECTED = 3;
inline constexpr uint16_t AF_UNIX = 1;
inline constexpr uint16_t AF_INET = 2;
inline constexpr uint32_t SOCK_STREAM = 1;

class NetSubsystem {
 public:
  NetSubsystem(SlabAllocator* slabs, FsManager* fs, super_block* sockfs_sb);

  // socketpair(): two connected AF_UNIX stream sockets with backing files.
  bool SocketPair(file** a, file** b);

  // Queues `len` bytes from one peer; the skb lands on the receiver's
  // sk_receive_queue (and is mirrored briefly on the sender's write queue).
  bool SendBytes(socket* from, uint32_t len);
  // Dequeues one skb from the receive queue; returns its length or 0.
  uint32_t ReceiveOne(socket* sock_);

  static socket* FromFile(file* f) { return static_cast<socket*>(f->private_data); }

  kmem_cache* sock_cache() { return sock_cache_; }

 private:
  socket* CreateSocket();
  sk_buff* AllocSkb(uint32_t len);
  static void SkbQueueTail(sk_buff_head* head, sk_buff* skb);
  static sk_buff* SkbDequeue(sk_buff_head* head);

  SlabAllocator* slabs_;
  FsManager* fs_;
  super_block* sockfs_sb_;
  kmem_cache* socket_cache_;
  kmem_cache* sock_cache_;
  kmem_cache* skb_cache_;
};

}  // namespace vkern

#endif  // SRC_VKERN_NET_H_
