#include "src/vkern/workload.h"

#include <cstdio>
#include <cstring>

namespace vkern {

Workload::Workload(Kernel* kernel, const WorkloadConfig& config)
    : kernel_(kernel), config_(config), rng_(config.seed) {}

file* Workload::OpenScratchFile(const char* prefix, int idx) {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%d.txt", prefix, idx);
  inode* ino = kernel_->fs().CreateInode(kernel_->ext4_sb(), kSIfReg | 0644,
                                         static_cast<int64_t>(8 * kPageSize));
  dentry* dent = kernel_->fs().CreateDentry(name, ino, kernel_->ext4_sb()->s_root);
  return kernel_->fs().OpenFile(dent, 2 /* O_RDWR */);
}

void Workload::SpawnPopulation() {
  Kernel::MutationBatch batch(kernel_);
  task_struct* init = kernel_->procs().FindTaskByPid(1);
  shared_sem_ = kernel_->ipc().SemGet(0x5eed, 4);
  shared_msq_ = kernel_->ipc().MsgGet(0xfeed);

  for (int p = 0; p < config_.nr_processes; ++p) {
    char name[32];
    std::snprintf(name, sizeof(name), "bench-%d", p);
    int cpu = p % kNrCpus;
    task_struct* leader = kernel_->procs().CreateTask(name, init, 0, cpu);
    leaders_.push_back(leader);
    threads_.push_back(leader);
    ThreadState ls;
    ls.task = leader;
    states_.push_back(std::move(ls));
    for (int t = 1; t < config_.threads_per_process; ++t) {
      std::snprintf(name, sizeof(name), "bench-%d.%d", p, t);
      task_struct* thread = kernel_->procs().CreateThread(leader, name, (cpu + t) % kNrCpus);
      threads_.push_back(thread);
      ThreadState tss;
      tss.task = thread;
      states_.push_back(std::move(tss));
    }
    // Give each process some initial handlers, pages, and descriptors.
    kernel_->procs().SetSigaction(leader, 2 /* SIGINT */, KernelTestSigHandler1(), 0);
    kernel_->procs().SetSigaction(leader, 10 /* SIGUSR1 */, KernelTestSigHandler2(), 0);
    file* f = OpenScratchFile("data", file_seq_++);
    kernel_->fs().InstallFd(leader->files, f);
    for (uint64_t pg = 0; pg < 4; ++pg) {
      kernel_->fs().PageCacheGrab(f->f_inode, pg);
    }
  }
}

void Workload::DoRandomOp(ThreadState* ts) {
  task_struct* task = ts->task;
  mm_struct* mm = task->mm;
  ProcessManager& procs = kernel_->procs();
  FsManager& fs = kernel_->fs();

  switch (rng_.NextBelow(12)) {
    case 0: {  // mmap anonymous
      uint64_t pages = rng_.NextInRange(1, 32);
      vm_area_struct* vma =
          procs.Mmap(mm, pages * kPageSize, VM_READ | VM_WRITE | VM_ANON, nullptr, 0);
      if (vma != nullptr) {
        ts->anon_vmas.push_back(vma->vm_start);
        // Fault in a page or two (populates the reverse map).
        procs.FaultAnonPage(vma, vma->vm_start);
        if (pages > 1) {
          procs.FaultAnonPage(vma, vma->vm_start + kPageSize);
        }
      }
      break;
    }
    case 1: {  // mmap a file
      file* f = OpenScratchFile("map", file_seq_++);
      uint64_t pages = rng_.NextInRange(1, 16);
      vm_area_struct* vma = procs.Mmap(mm, pages * kPageSize,
                                       VM_READ | (rng_.NextChance(1, 2) ? uint64_t{VM_WRITE} : 0), f, 0);
      if (vma != nullptr) {
        ts->file_vmas.push_back(vma->vm_start);
        fs.PageCacheGrab(f->f_inode, 0);
      }
      fs.CloseFile(f);  // the VMA holds its own reference
      break;
    }
    case 2: {  // munmap something
      std::vector<uint64_t>* pool = rng_.NextChance(1, 2) ? &ts->anon_vmas : &ts->file_vmas;
      if (!pool->empty()) {
        size_t idx = rng_.NextBelow(pool->size());
        procs.Munmap(mm, (*pool)[idx]);
        pool->erase(pool->begin() + static_cast<long>(idx));
      }
      break;
    }
    case 3: {  // open a file and read some pages
      file* f = OpenScratchFile("tmp", file_seq_++);
      int fd = fs.InstallFd(task->files, f);
      if (fd >= 0) {
        ts->fds.push_back(fd);
        uint64_t nr_pages = rng_.NextInRange(1, 6);
        for (uint64_t pg = 0; pg < nr_pages; ++pg) {
          fs.PageCacheGrab(f->f_inode, pg);
        }
      } else {
        fs.CloseFile(f);
      }
      break;
    }
    case 4: {  // close an fd
      if (!ts->fds.empty()) {
        size_t idx = rng_.NextBelow(ts->fds.size());
        fs.CloseFd(task->files, ts->fds[idx]);
        ts->fds.erase(ts->fds.begin() + static_cast<long>(idx));
      }
      break;
    }
    case 5: {  // create a pipe and push bytes through it
      file* rd = nullptr;
      file* wr = nullptr;
      pipe_inode_info* pipe = fs.CreatePipe(kernel_->pipefs_sb(), &rd, &wr);
      int rfd = fs.InstallFd(task->files, rd);
      int wfd = fs.InstallFd(task->files, wr);
      if (rfd >= 0 && wfd >= 0) {
        ts->fds.push_back(rfd);
        ts->fds.push_back(wfd);
        ts->pipes.push_back(pipe);
        char buf[256];
        std::memset(buf, 'x', sizeof(buf));
        fs.PipeWrite(pipe, buf, sizeof(buf));
        if (rng_.NextChance(1, 2)) {
          fs.PipeRead(pipe, 128);
        }
      } else {
        // The fd table filled up mid-pair: release through the table for the
        // end that made it in, directly for the one that did not.
        if (rfd >= 0) {
          fs.CloseFd(task->files, rfd);
        } else {
          fs.CloseFile(rd);
        }
        if (wfd >= 0) {
          fs.CloseFd(task->files, wfd);
        } else {
          fs.CloseFile(wr);
        }
      }
      break;
    }
    case 6: {  // socketpair and a message
      file* a = nullptr;
      file* b = nullptr;
      kernel_->net().SocketPair(&a, &b);
      int fa = fs.InstallFd(task->files, a);
      int fb = fs.InstallFd(task->files, b);
      if (fa >= 0 && fb >= 0) {
        ts->fds.push_back(fa);
        ts->fds.push_back(fb);
        socket* sa = NetSubsystem::FromFile(a);
        ts->sockets.push_back(sa);
        kernel_->net().SendBytes(sa, static_cast<uint32_t>(rng_.NextInRange(64, 1024)));
      } else {
        if (fa >= 0) {
          fs.CloseFd(task->files, fa);
        } else {
          fs.CloseFile(a);
        }
        if (fb >= 0) {
          fs.CloseFd(task->files, fb);
        } else {
          fs.CloseFile(b);
        }
      }
      break;
    }
    case 7: {  // SysV IPC traffic
      int pid = task->pid;
      if (rng_.NextChance(1, 2)) {
        kernel_->ipc().SemOp(shared_sem_, static_cast<int>(rng_.NextBelow(4)),
                             rng_.NextChance(1, 2) ? 1 : -1, pid);
      } else if (rng_.NextChance(1, 2)) {
        kernel_->ipc().MsgSend(shared_msq_, static_cast<int64_t>(rng_.NextInRange(1, 5)),
                               rng_.NextInRange(16, 512));
      } else {
        kernel_->ipc().MsgReceive(shared_msq_);
      }
      break;
    }
    case 8: {  // arm a timer
      timer_list* timer = kernel_->timers().AllocTimer();
      int cpu = task->on_cpu;
      kernel_->timers().AddTimer(cpu, timer,
                                 kernel_->timer_bases()[cpu].clk + rng_.NextInRange(2, 600),
                                 KernelProcessTimeoutFn());
      ts->timers.push_back(timer);
      break;
    }
    case 9: {  // send a signal to a sibling thread or to self
      task_struct* target = threads_[rng_.NextBelow(threads_.size())];
      procs.SendSignal(target, rng_.NextChance(1, 2) ? 2 : 10, task->pid);
      break;
    }
    case 10: {  // drain a signal
      procs.DequeueSignal(task);
      break;
    }
    case 11: {  // queue background mm work
      if (rng_.NextChance(1, 4)) {
        kernel_->QueueMmPercpuWork(task->on_cpu);
      }
      break;
    }
  }
}

void Workload::Step() {
  // One step = one mutation batch = one epoch: the batch absorbs the bumps
  // the per-CPU TickCpu calls would otherwise each take.
  Kernel::MutationBatch batch(kernel_);
  for (ThreadState& ts : states_) {
    DoRandomOp(&ts);
  }
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    kernel_->TickCpu(cpu);
  }
}

void Workload::Run() {
  SpawnPopulation();
  for (int step = 0; step < config_.steps; ++step) {
    Step();
  }
}

}  // namespace vkern
