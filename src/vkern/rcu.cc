#include "src/vkern/rcu.h"

#include <cassert>

namespace vkern {

RcuSubsystem::RcuSubsystem(rcu_state* state, rcu_data* data, int nr_cpus)
    : state_(state), data_(data), nr_cpus_(nr_cpus) {
  state_->gp_seq = 0;
  state_->gp_in_progress = 0;
  for (int cpu = 0; cpu < nr_cpus; ++cpu) {
    data_[cpu].cpu = cpu;
    data_[cpu].gp_seq = 0;
    data_[cpu].nesting = 0;
    data_[cpu].cblist_head = nullptr;
    data_[cpu].cblist_tail = &data_[cpu].cblist_head;
    data_[cpu].cblist_len = 0;
    data_[cpu].invoked = 0;
  }
  wait_len_.assign(static_cast<size_t>(nr_cpus), 0);
}

void RcuSubsystem::ReadLock(int cpu) { data_[cpu].nesting++; }

void RcuSubsystem::ReadUnlock(int cpu) {
  assert(data_[cpu].nesting > 0);
  data_[cpu].nesting--;
}

bool RcuSubsystem::InReadSection(int cpu) const { return data_[cpu].nesting > 0; }

void RcuSubsystem::CallRcu(int cpu, rcu_head* head, void (*func)(rcu_head*)) {
  head->func = func;
  head->next = nullptr;
  *data_[cpu].cblist_tail = head;
  data_[cpu].cblist_tail = &head->next;
  data_[cpu].cblist_len++;
}

void RcuSubsystem::QuiescentState(int cpu) {
  if (data_[cpu].nesting > 0) {
    return;  // still inside a read-side critical section
  }
  data_[cpu].gp_seq = state_->gp_seq;
  qs_mask_ |= 1ull << cpu;
}

uint64_t RcuSubsystem::DoBatch(int cpu) {
  // Invokes the callbacks that were already queued when the grace period
  // started (the "wait" segment of the cblist).
  rcu_data* rdp = &data_[cpu];
  uint64_t to_run = wait_len_[static_cast<size_t>(cpu)];
  uint64_t ran = 0;
  while (ran < to_run && rdp->cblist_head != nullptr) {
    rcu_head* head = rdp->cblist_head;
    rdp->cblist_head = head->next;
    if (rdp->cblist_head == nullptr) {
      rdp->cblist_tail = &rdp->cblist_head;
    }
    rdp->cblist_len--;
    rdp->invoked++;
    ++ran;
    head->next = nullptr;
    head->func(head);
  }
  wait_len_[static_cast<size_t>(cpu)] = 0;
  return ran;
}

uint64_t RcuSubsystem::TryAdvanceGracePeriod() {
  if (state_->gp_in_progress == 0) {
    if (pending_callbacks() == 0) {
      return 0;
    }
    // Start a new grace period: snapshot the callbacks that must wait for it.
    state_->gp_in_progress = 1;
    gp_start_seq_ = ++state_->gp_seq;
    qs_mask_ = 0;
    for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
      wait_len_[static_cast<size_t>(cpu)] = data_[cpu].cblist_len;
    }
    return 0;
  }
  // A grace period is in flight: it completes once every CPU has reported a
  // quiescent state and no CPU sits inside a read-side critical section.
  uint64_t all = (nr_cpus_ >= 64) ? ~0ull : ((1ull << nr_cpus_) - 1);
  for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
    if (data_[cpu].nesting > 0) {
      return 0;
    }
  }
  if ((qs_mask_ & all) != all) {
    return 0;
  }
  state_->gp_in_progress = 0;
  uint64_t ran = 0;
  for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
    ran += DoBatch(cpu);
  }
  return ran;
}

uint64_t RcuSubsystem::Synchronize() {
  uint64_t total = 0;
  for (int round = 0; round < 8 && pending_callbacks() > 0; ++round) {
    // A CPU inside a read-side critical section pins every grace period; no
    // amount of driving makes progress until it unlocks.
    bool reader_active = false;
    for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
      if (data_[cpu].nesting > 0) {
        reader_active = true;
      }
    }
    if (reader_active) {
      break;
    }
    TryAdvanceGracePeriod();  // starts a GP if none is in flight
    for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
      QuiescentState(cpu);
    }
    total += TryAdvanceGracePeriod();  // completes the GP
  }
  return total;
}

uint64_t RcuSubsystem::pending_callbacks() const {
  uint64_t n = 0;
  for (int cpu = 0; cpu < nr_cpus_; ++cpu) {
    n += data_[cpu].cblist_len;
  }
  return n;
}

}  // namespace vkern
