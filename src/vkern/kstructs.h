// The simulated kernel's object model.
//
// These structs mirror the Linux 6.1 layouts that the paper's evaluation
// visualizes (trimmed to the fields those figures show, plus enough state to
// make the subsystems actually function). They intentionally preserve the
// kernel's awkward idioms — embedded list nodes resolved via container_of,
// unions with runtime-discriminated types, pointer/colour compaction, function
// pointers as type tags — because handling those idioms is the core challenge
// the ViewCL language addresses.
//
// Everything here is allocated from the slab layer inside the Arena, so the
// debugger substrate can read any of it back as raw target memory.

#ifndef SRC_VKERN_KSTRUCTS_H_
#define SRC_VKERN_KSTRUCTS_H_

#include <cstddef>
#include <cstdint>

#include "src/vkern/list.h"
#include "src/vkern/rbtree.h"

namespace vkern {

// ---------------------------------------------------------------------------
// Global configuration constants.
// ---------------------------------------------------------------------------

inline constexpr int kNrCpus = 2;           // Paper's QEMU setup uses two vCPUs.
inline constexpr int kTaskCommLen = 16;     // TASK_COMM_LEN
inline constexpr int kPidHashSize = 64;     // pid_hash buckets
inline constexpr int kNsig = 64;            // _NSIG
inline constexpr int kMaxOrder = 11;        // MAX_ORDER (buddy)
inline constexpr int kRadixTreeMapShift = 6;
inline constexpr int kRadixTreeMapSize = 1 << kRadixTreeMapShift;  // 64 slots/node
inline constexpr int kMapleRange64Slots = 16;  // MAPLE_RANGE64_SLOTS
inline constexpr int kMapleArange64Slots = 10; // MAPLE_ARANGE64_SLOTS
inline constexpr int kNrOpenDefault = 64;   // NR_OPEN_DEFAULT
inline constexpr int kPipeDefBuffers = 16;  // PIPE_DEF_BUFFERS
inline constexpr int kNrIrqs = 32;
inline constexpr int kTimerWheelLevels = 4;
inline constexpr int kTimerWheelSlotsPerLevel = 64;
inline constexpr int kTimerLevelShift = 6;  // each level covers 64x the previous
inline constexpr int kSemsMax = 8;          // max semaphores per set (simulated)
inline constexpr int kMaxSwapFiles = 4;

// ---------------------------------------------------------------------------
// Memory: pages, buddy, slab.
// ---------------------------------------------------------------------------

// Page flag bits (subset of include/linux/page-flags.h).
enum PageFlagBits : uint64_t {
  PG_locked = 1ull << 0,
  PG_referenced = 1ull << 1,
  PG_uptodate = 1ull << 2,
  PG_dirty = 1ull << 3,
  PG_lru = 1ull << 4,
  PG_slab = 1ull << 5,
  PG_reserved = 1ull << 6,
  PG_private = 1ull << 7,
  PG_writeback = 1ull << 8,
  PG_head = 1ull << 9,
  PG_swapcache = 1ull << 10,
  PG_anon = 1ull << 11,  // stand-in for PageAnon (mapping low bit in Linux)
  PG_buddy = 1ull << 12,
};

struct address_space;  // forward

// struct page: the page descriptor (mem_map entry).
struct page {
  uint64_t flags;           // PG_* bits
  int refcount;             // _refcount
  int mapcount;             // _mapcount
  // mapping: address_space* for file pages, or (anon_vma* | 1) for anonymous
  // pages — the PAGE_MAPPING_ANON low-bit tag, preserved from Linux.
  void* mapping;
  uint64_t index;           // page offset within the mapping
  list_head lru;            // buddy free list / LRU linkage
  void* private_data;       // buddy: order while free; pipe: buffer back-ref
  int order;                // buddy order while free (simulation aid)
};

// Buddy allocator free area (ULK Figure 8-2).
struct free_area {
  list_head free_list;
  uint64_t nr_free;
};

struct zone {
  char name[16];
  uint64_t zone_start_pfn;
  uint64_t spanned_pages;
  uint64_t free_pages;
  free_area free_area_[kMaxOrder];
};

// Classic slab allocator (ULK Figure 8-4).
struct kmem_cache;

struct slab {
  list_head list;            // linkage in the cache's partial/full/free list
  kmem_cache* cache;
  void* s_mem;               // first object
  uint32_t inuse;            // objects in use
  uint32_t free_idx;         // head of the embedded free-index list
  page* pg;                  // backing page(s)
};

struct kmem_cache {
  char name[32];
  uint32_t object_size;      // requested object size
  uint32_t size;             // aligned object stride
  uint32_t align;
  uint32_t num;              // objects per slab
  uint32_t pages_per_slab;
  list_head slabs_partial;
  list_head slabs_full;
  list_head slabs_free;
  uint64_t total_objects;
  uint64_t active_objects;
  list_head cache_list;      // linkage in the global cache chain
};

// ---------------------------------------------------------------------------
// RCU (paper §3.2, Figure 5).
// ---------------------------------------------------------------------------

struct rcu_head {
  rcu_head* next;
  void (*func)(rcu_head*);
};

// Per-CPU RCU state: pending callbacks awaiting a grace period.
struct rcu_data {
  int cpu;
  uint64_t gp_seq;            // last grace period this CPU has seen
  int nesting;                // rcu_read_lock depth
  rcu_head* cblist_head;      // callbacks queued by call_rcu (FIFO)
  rcu_head** cblist_tail;
  uint64_t cblist_len;
  uint64_t invoked;           // total callbacks invoked (rcu_do_batch)
};

struct rcu_state {
  uint64_t gp_seq;            // global grace-period sequence
  int gp_in_progress;
};

// ---------------------------------------------------------------------------
// Maple tree (Linux 6.1 lib/maple_tree.c, trimmed).
// ---------------------------------------------------------------------------

// Node types, encoded in bits 3..6 of a maple_enode.
enum maple_type : uint32_t {
  maple_dense = 0,
  maple_leaf_64 = 1,
  maple_range_64 = 2,
  maple_arange_64 = 3,
};

struct maple_node;

// A "maple_pnode": pointer to the parent node with the slot offset and a
// root marker compacted into the low byte (nodes are 256-byte aligned):
//   bit 0    : 1 => this node is the root (pointer is the maple_tree itself)
//   bits 1..5: slot index within the parent
using maple_pnode = uintptr_t;

// A "maple_enode": pointer to a maple_node with the node type compacted in:
//   bit 1    : set => this entry is an internal node (xa_is_node)
//   bits 3..6: maple_type
using maple_enode = uintptr_t;

struct maple_range_64_s {
  maple_pnode parent;
  uint64_t pivot[kMapleRange64Slots - 1];
  void* slot[kMapleRange64Slots];
};

struct maple_arange_64_s {
  maple_pnode parent;
  uint64_t pivot[kMapleArange64Slots - 1];
  void* slot[kMapleArange64Slots];
  uint64_t gap[kMapleArange64Slots];
};

// The node union: the active arm depends on the type encoded in the parent's
// slot entry — exactly the indirection the paper's Figure 3 unwraps.
struct maple_node {
  union {
    struct {
      maple_pnode parent;
      void* slot[kMapleRange64Slots];
    };
    maple_range_64_s mr64;
    maple_arange_64_s ma64;
  };
  rcu_head rcu;          // deferred free linkage (shares space in Linux; kept
                         // separate here so freed nodes remain inspectable)
  uint32_t ma_flags;
};

struct maple_tree {
  void* ma_root;         // maple_enode, or a direct entry, or null
  uint32_t ma_flags;
  uint32_t ma_lock;      // spinlock stand-in (0 = free)
};

// maple_tree.ma_flags bits.
inline constexpr uint32_t MT_FLAGS_ALLOC_RANGE = 0x01;  // track gaps (arange nodes)

// ---------------------------------------------------------------------------
// Radix tree / page cache (ULK Figure 15-1).
// ---------------------------------------------------------------------------

struct radix_tree_node {
  uint8_t shift;          // bits to shift off at this level
  uint8_t offset;         // slot index within the parent
  uint16_t count;         // occupied slots
  radix_tree_node* parent;
  void* slots[kRadixTreeMapSize];
};

struct radix_tree_root {
  uint32_t height;        // levels below (0 = single direct entry)
  radix_tree_node* rnode;
};

// ---------------------------------------------------------------------------
// Scheduler (CFS; paper §1 motivating example, ULK Figure 7-1).
// ---------------------------------------------------------------------------

struct load_weight {
  uint64_t weight;
  uint32_t inv_weight;
};

struct sched_entity {
  load_weight load;
  rb_node run_node;       // linkage in cfs_rq.tasks_timeline
  uint32_t on_rq;
  uint64_t exec_start;
  uint64_t sum_exec_runtime;
  uint64_t vruntime;
};

struct cfs_rq {
  load_weight load;
  uint32_t nr_running;
  uint64_t min_vruntime;
  rb_root_cached tasks_timeline;
  sched_entity* curr;
};

struct task_struct;  // forward

struct rq {
  uint32_t cpu;
  uint32_t nr_running;
  uint64_t clock;         // rq clock in nanoseconds
  cfs_rq cfs;
  task_struct* curr;
  task_struct* idle;
};

// ---------------------------------------------------------------------------
// Signals (ULK Figure 11-1).
// ---------------------------------------------------------------------------

using sighandler_t = void (*)(int);

struct sigset_t_sim {
  uint64_t sig;           // 64 signals in one word
};

struct sigaction_k {
  sighandler_t sa_handler_fn;   // SIG_DFL(0)/SIG_IGN(1)/user fn
  uint64_t sa_flags;
  sigset_t_sim sa_mask;
};

struct k_sigaction {
  sigaction_k sa;
};

struct sigqueue {
  list_head list;
  int signo;
  int errno_;
  int pid_from;
};

struct sigpending {
  list_head list;          // of sigqueue
  sigset_t_sim signal;
};

struct sighand_struct {
  int count;               // refcount (shared by CLONE_SIGHAND threads)
  k_sigaction action[kNsig];
};

struct signal_struct {
  int sig_cnt;             // refcount
  int nr_threads;
  list_head thread_head;   // task_struct.thread_node list
  sigpending shared_pending;
  int group_exit_code;
  task_struct* group_leader_task;
};

// ---------------------------------------------------------------------------
// Memory descriptor and VMAs (ULK Figure 9-2, paper Figures 3/4).
// ---------------------------------------------------------------------------

// vm_flags bits (subset of include/linux/mm.h).
enum VmFlagBits : uint64_t {
  VM_READ = 1ull << 0,
  VM_WRITE = 1ull << 1,
  VM_EXEC = 1ull << 2,
  VM_SHARED = 1ull << 3,
  VM_MAYREAD = 1ull << 4,
  VM_MAYWRITE = 1ull << 5,
  VM_GROWSDOWN = 1ull << 8,
  VM_ANON = 1ull << 16,     // simulation tag: anonymous mapping
  VM_STACK = 1ull << 17,    // simulation tag: stack VMA
};

struct mm_struct;
struct file;
struct anon_vma;

struct vm_area_struct {
  uint64_t vm_start;
  uint64_t vm_end;
  mm_struct* vm_mm;
  uint64_t vm_flags;
  uint64_t vm_pgoff;
  file* vm_file;
  anon_vma* anon_vma_;
  list_head anon_vma_chain;  // list of anon_vma_chain.same_vma
};

struct atomic_t {
  int counter;
};

struct mm_struct {
  maple_tree mm_mt;          // the VMA tree (Linux 6.1 replaced the rbtree)
  uint64_t mmap_base;
  uint64_t task_size;
  atomic_t mm_users;
  atomic_t mm_count;
  int map_count;
  uint64_t total_vm;
  uint64_t start_code, end_code;
  uint64_t start_data, end_data;
  uint64_t start_brk, brk;
  uint64_t start_stack;
  uint64_t pgd;              // opaque page-table root (not walked)
  task_struct* owner;
};

// Reverse mapping of anonymous pages (ULK Figure 17-1).
struct anon_vma {
  anon_vma* root;
  atomic_t refcount;
  uint32_t num_children;
  uint32_t num_active_vmas;
  rb_root_cached rb_root_;   // interval tree of anon_vma_chain
};

struct anon_vma_chain {
  vm_area_struct* vma;
  anon_vma* av;              // "anon_vma" in Linux; renamed to avoid the type
  list_head same_vma;        // linkage in vma->anon_vma_chain
  rb_node rb;                // linkage in av->rb_root_
  uint64_t rb_subtree_last;
};

// ---------------------------------------------------------------------------
// VFS (ULK Figures 12-3, 14-3, 16-2; paper Table 2 #20).
// ---------------------------------------------------------------------------

struct super_block;
struct inode;
struct dentry;

struct address_space {
  inode* host;
  radix_tree_root i_pages;   // the page cache (Linux: xarray; ULK: radix tree)
  uint64_t nrpages;
  list_head i_mmap;          // VMAs mapping this file (simplified to a list)
};

struct inode {
  uint64_t i_ino;
  uint32_t i_mode;           // kSIfReg / kSIfDir / kSIfIfo / kSIfSock | perms
  uint32_t i_nlink;
  int64_t i_size;
  super_block* i_sb;
  address_space i_data;
  address_space* i_mapping;
  list_head i_sb_list;       // linkage in super_block.s_inodes
  void* i_pipe;              // pipe_inode_info* for FIFOs
};

struct dentry {
  char d_name[32];
  inode* d_inode;
  dentry* d_parent;
  list_head d_child;         // linkage in parent's d_subdirs
  list_head d_subdirs;
  int d_count;
};

struct file_operations_stub {
  char name[24];             // identifies the ops table ("pipefifo_fops", ...)
};

struct file {
  dentry* f_dentry;          // Linux has struct path; flattened for clarity
  inode* f_inode;
  address_space* f_mapping;
  const file_operations_stub* f_op;
  uint32_t f_flags;
  uint32_t f_mode;
  int64_t f_pos;
  atomic_t f_count;
  void* private_data;        // pipe_inode_info*, socket*, ...
};

struct fdtable {
  uint32_t max_fds;
  file** fd;                 // current fd array
  uint64_t* open_fds;        // bitmap
  uint64_t* close_on_exec;
};

struct files_struct {
  atomic_t count;
  fdtable fdt_embedded;      // Linux: fdtab
  fdtable* fdt;              // points at fdt_embedded until expanded
  file* fd_array[kNrOpenDefault];
  uint64_t open_fds_init;
  uint64_t close_on_exec_init;
  int next_fd;
};

struct file_system_type {
  char name[16];
  list_head fs_supers;
};

struct block_device {
  uint64_t bd_dev;           // MAJOR:MINOR
  char bd_disk_name[24];
  uint64_t bd_nr_sectors;
  super_block* bd_super;
};

struct super_block {
  list_head s_list;          // linkage in the global super_blocks list
  uint64_t s_dev;
  uint64_t s_magic;
  file_system_type* s_type;
  block_device* s_bdev;
  dentry* s_root;
  list_head s_inodes;
  uint32_t s_count;
  char s_id[32];
};

// ---------------------------------------------------------------------------
// Pipes (CVE-2022-0847, paper Figure 7).
// ---------------------------------------------------------------------------

// pipe_buffer.flags bits.
enum PipeBufFlagBits : uint32_t {
  PIPE_BUF_FLAG_LRU = 1u << 0,
  PIPE_BUF_FLAG_ATOMIC = 1u << 1,
  PIPE_BUF_FLAG_GIFT = 1u << 2,
  PIPE_BUF_FLAG_PACKET = 1u << 3,
  PIPE_BUF_FLAG_CAN_MERGE = 1u << 4,  // the Dirty Pipe culprit
};

struct pipe_buf_operations_stub {
  char name[24];
};

struct pipe_buffer {
  page* page_;
  uint32_t offset;
  uint32_t len;
  const pipe_buf_operations_stub* ops;
  uint32_t flags;
};

struct pipe_inode_info {
  uint32_t head;
  uint32_t tail;
  uint32_t ring_size;        // power of two
  uint32_t readers;
  uint32_t writers;
  pipe_buffer* bufs;
  inode* inode_;
};

// ---------------------------------------------------------------------------
// Sockets (paper Table 2 #21).
// ---------------------------------------------------------------------------

struct sk_buff {
  sk_buff* next;             // sk_buff_head ring linkage
  sk_buff* prev;
  uint32_t len;
  uint32_t data_len;
  void* data;
};

struct sk_buff_head {
  sk_buff* next;             // must alias sk_buff linkage (kernel layout)
  sk_buff* prev;
  uint32_t qlen;
};

struct sock;

struct socket {
  uint32_t state;            // SS_CONNECTED etc.
  uint32_t type;             // SOCK_STREAM...
  sock* sk;
  file* file_;
};

struct sock {
  uint16_t skc_family;       // AF_UNIX / AF_INET
  uint8_t skc_state;         // TCP_ESTABLISHED...
  uint32_t sk_rcvbuf;
  uint32_t sk_sndbuf;
  sk_buff_head sk_receive_queue;
  sk_buff_head sk_write_queue;
  socket* sk_socket;
  sock* sk_peer;             // connected peer (unix socketpair)
};

// ---------------------------------------------------------------------------
// Timers (ULK Figure 6-1): hierarchical timer wheel.
// ---------------------------------------------------------------------------

struct timer_list {
  hlist_node entry;
  uint64_t expires;
  void (*function)(timer_list*);
  uint32_t flags;
};

struct timer_base {
  uint64_t clk;              // current jiffies for this base
  uint64_t next_expiry;
  uint32_t cpu;
  hlist_head vectors[kTimerWheelLevels * kTimerWheelSlotsPerLevel];
};

// ---------------------------------------------------------------------------
// IRQs (ULK Figure 4-5).
// ---------------------------------------------------------------------------

struct irqaction;

struct irq_chip {
  char name[16];
};

struct irq_data {
  uint32_t irq;
  uint64_t hwirq;
  irq_chip* chip;
};

struct irq_desc {
  irq_data irq_data_;
  void (*handle_irq)(irq_desc*);
  irqaction* action;         // chain of handlers
  uint32_t depth;            // disable depth
  uint32_t status_use_accessors;
  uint64_t tot_count;
  char name[16];
};

struct irqaction {
  void (*handler)(int, void*);
  void* dev_id;
  irqaction* next;
  uint32_t irq;
  uint32_t flags;
  char name[16];
};

// ---------------------------------------------------------------------------
// Workqueues (paper Figure 6).
// ---------------------------------------------------------------------------

struct work_struct {
  uint64_t data;             // pending bit and pwq pointer compaction in Linux
  list_head entry;
  void (*func)(work_struct*);
};

struct delayed_work {
  work_struct work;
  timer_list timer;
  int cpu;
};

struct worker_pool;
struct workqueue_struct;

struct pool_workqueue {
  worker_pool* pool;
  workqueue_struct* wq;
  int refcnt;
  list_head pwqs_node;       // linkage in wq->pwqs
  list_head inactive_works;
};

struct worker {
  list_head node;            // linkage in pool->workers
  work_struct* current_work;
  task_struct* task;
  char desc[24];
};

struct worker_pool {
  int cpu;
  int id;
  uint32_t nr_workers;
  uint32_t nr_running;
  list_head worklist;        // pending work_structs
  list_head workers;
};

struct workqueue_struct {
  char name[24];
  uint32_t flags;
  list_head pwqs;            // pool_workqueues
  list_head list;            // linkage in the global workqueues list
};

// ---------------------------------------------------------------------------
// System-V IPC (ULK Figures 19-1/19-2).
// ---------------------------------------------------------------------------

struct kern_ipc_perm {
  int id;
  uint64_t key;
  uint32_t uid, gid;
  uint32_t mode;
  uint64_t seq;
};

struct sem_sim {
  int semval;
  int sempid;
  list_head pending_alter;
  list_head pending_const;
};

struct sem_array {
  kern_ipc_perm sem_perm;
  uint64_t sem_ctime;
  int sem_nsems;
  list_head pending_alter;
  list_head pending_const;
  sem_sim sems[kSemsMax];
};

struct msg_msg {
  list_head m_list;          // linkage in msg_queue.q_messages
  int64_t m_type;
  uint64_t m_ts;             // message text size
  void* m_text;
};

struct msg_queue {
  kern_ipc_perm q_perm;
  uint64_t q_stime, q_rtime, q_ctime;
  uint64_t q_cbytes;
  uint64_t q_qnum;
  uint64_t q_qbytes;
  list_head q_messages;
  list_head q_receivers;
  list_head q_senders;
};

struct ipc_ids {
  int in_use;
  int max_idx;
  kern_ipc_perm* entries[32];  // Linux uses an IDR; a fixed table suffices
};

struct ipc_namespace {
  ipc_ids ids[3];              // 0=sem, 1=msg, 2=shm
};

// ---------------------------------------------------------------------------
// Device model / kobjects (ULK Figure 13-3).
// ---------------------------------------------------------------------------

struct kref {
  atomic_t refcount;
};

struct kset;

struct kobject {
  char name[32];
  list_head entry;           // linkage in kset->list
  kobject* parent;
  kset* kset_;
  kref kref_;
  int state_initialized;
};

struct kset {
  list_head list;            // children kobjects
  kobject kobj;
};

struct bus_type;
struct device_driver;

struct device {
  kobject kobj;
  device* parent;
  bus_type* bus;
  device_driver* driver;
  char init_name[32];
  uint64_t devt;
  list_head bus_node;        // linkage in the bus device list
};

struct device_driver {
  char name[32];
  bus_type* bus;
  list_head bus_node;        // linkage in the bus driver list
  list_head devices;         // bound devices (simplified)
};

struct bus_type {
  char name[32];
  kset* devices_kset;
  kset* drivers_kset;
  list_head devices_list;
  list_head drivers_list;
};

// ---------------------------------------------------------------------------
// Swap (ULK Figure 17-6).
// ---------------------------------------------------------------------------

enum SwapFlagBits : uint64_t {
  SWP_USED = 1ull << 0,
  SWP_WRITEOK = 1ull << 1,
  SWP_DISCARDABLE = 1ull << 2,
};

struct swap_info_struct {
  uint64_t flags;
  int16_t prio;
  uint8_t type;
  uint32_t max;              // total slots
  uint8_t* swap_map;         // usage counts per slot
  uint32_t pages;
  uint32_t inuse_pages;
  file* swap_file;
  block_device* bdev;
};

// ---------------------------------------------------------------------------
// PIDs and the task structure.
// ---------------------------------------------------------------------------

// Task states (subset of include/linux/sched.h).
enum TaskStateBits : uint32_t {
  TASK_RUNNING = 0x0000,
  TASK_INTERRUPTIBLE = 0x0001,
  TASK_UNINTERRUPTIBLE = 0x0002,
  TASK_STOPPED = 0x0004,
  TASK_DEAD = 0x0080,
  TASK_IDLE_STATE = 0x0402,
};

// struct pid: hashed pid bookkeeping (ULK Figure 3-6 topology).
struct pid_struct {
  int nr;
  hlist_node pid_chain;      // linkage in the pid hash bucket
  hlist_head tasks_head;     // tasks using this pid (pid_link chains)
  atomic_t count;
};

struct pid_link {
  hlist_node node;
  pid_struct* pid;
};

struct task_struct {
  // Scheduling.
  uint32_t __state;          // TASK_* (Linux 6.x renamed state -> __state)
  int prio;
  int static_prio;
  uint32_t policy;
  sched_entity se;
  int on_cpu;
  int recent_used_cpu;
  uint64_t utime, stime;

  // Identity.
  int pid;
  int tgid;
  uint32_t flags;            // PF_*
  char comm[kTaskCommLen];

  // Process tree (ULK Figure 3-4).
  task_struct* real_parent;
  task_struct* parent;
  list_head children;        // list of children (via sibling)
  list_head sibling;         // linkage in parent's children list
  task_struct* group_leader;
  list_head thread_node;     // linkage in signal->thread_head
  list_head tasks;           // linkage in the global task list

  // PID hash (ULK Figure 3-6).
  pid_link pids[1];          // PIDTYPE_PID only
  pid_struct* thread_pid;

  // Subsystem attachments.
  mm_struct* mm;
  mm_struct* active_mm;
  files_struct* files;
  signal_struct* signal;
  sighand_struct* sighand;
  sigpending pending;
  sigset_t_sim blocked;

  // Misc accounting.
  uint64_t start_time;
  int exit_state;
  int exit_code;
};

// PF_* flags.
enum TaskPfBits : uint32_t {
  PF_IDLE = 0x00000002,
  PF_EXITING = 0x00000004,
  PF_WQ_WORKER = 0x00000020,
  PF_KTHREAD = 0x00200000,
};

}  // namespace vkern

#endif  // SRC_VKERN_KSTRUCTS_H_
