// Workqueues with heterogeneous work lists (paper Figure 6).
//
// Work items are embedded in arbitrary containing structures and chained on
// the per-pool worklist through work_struct.entry; the containing type is only
// recoverable from the func pointer — the exact heterogeneous-list puzzle
// ViewCL's Container + switch-case combination solves.

#ifndef SRC_VKERN_WORKQUEUE_H_
#define SRC_VKERN_WORKQUEUE_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class WorkqueueSubsystem {
 public:
  WorkqueueSubsystem(SlabAllocator* slabs, list_head* workqueues_head,
                     worker_pool* cpu_pools /* [kNrCpus] in the arena */);

  // alloc_workqueue: creates a workqueue with one pool_workqueue per CPU.
  workqueue_struct* AllocWorkqueue(std::string_view name, uint32_t flags);

  // INIT_WORK + queue_work_on.
  void InitWork(work_struct* work, void (*fn)(work_struct*));
  bool QueueWork(workqueue_struct* wq, int cpu, work_struct* work);

  // Runs up to `max` queued items on a CPU's pool (worker thread pass).
  uint64_t ProcessPending(int cpu, uint64_t max = ~0ull);

  worker_pool* pool(int cpu) { return &cpu_pools_[cpu]; }
  list_head* workqueues_head() { return workqueues_head_; }
  uint64_t pending_count(int cpu) const { return list_count(&cpu_pools_[cpu].worklist); }

 private:
  SlabAllocator* slabs_;
  list_head* workqueues_head_;
  worker_pool* cpu_pools_;
  kmem_cache* wq_cache_;
  kmem_cache* pwq_cache_;
};

}  // namespace vkern

#endif  // SRC_VKERN_WORKQUEUE_H_
