// The composed simulated kernel.
//
// Kernel boots every subsystem inside one Arena, creates the well-known global
// objects a real Linux boot would (runqueues, pid hash, superblocks, the
// mm_percpu_wq workqueue, the platform bus, swap areas, IRQ descriptors,
// kthreads, init), and exposes their in-arena addresses so the debugger layer
// can register them as symbols. A function-symbol table maps host function
// pointers (work handlers, timer callbacks, RCU callbacks, signal handlers)
// to kernel-style names for the FunPtr text decorator.

#ifndef SRC_VKERN_KERNEL_H_
#define SRC_VKERN_KERNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/vkern/arena.h"
#include "src/vkern/buddy.h"
#include "src/vkern/fs.h"
#include "src/vkern/ipc.h"
#include "src/vkern/irq.h"
#include "src/vkern/kobject.h"
#include "src/vkern/kstructs.h"
#include "src/vkern/maple.h"
#include "src/vkern/net.h"
#include "src/vkern/process.h"
#include "src/vkern/radix.h"
#include "src/vkern/rcu.h"
#include "src/vkern/sched.h"
#include "src/vkern/slab.h"
#include "src/vkern/swap.h"
#include "src/vkern/timer.h"
#include "src/vkern/workqueue.h"

namespace vkern {

// Work items queued on mm_percpu_wq, in three distinct containing types — the
// heterogeneous work list of the paper's Figure 6.
struct vmstat_work_item {
  delayed_work dw;
  int cpu;
  uint64_t nr_updates;
};

struct lru_drain_item {
  work_struct work;
  int cpu;
};

struct drain_pages_item {
  work_struct work;
  int cpu;
  uint64_t drained;
};

struct KernelConfig {
  size_t arena_bytes = 96ull << 20;  // 96 MiB of simulated physical memory
  uint64_t seed = 42;
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config = KernelConfig{});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- subsystems ---
  Arena& arena() { return *arena_; }
  BuddyAllocator& buddy() { return *buddy_; }
  SlabAllocator& slabs() { return *slabs_; }
  RadixTreeOps& radix() { return *radix_; }
  RcuSubsystem& rcu() { return *rcu_; }
  MapleTreeOps& maple() { return *maple_; }
  Scheduler& sched() { return *sched_; }
  FsManager& fs() { return *fs_; }
  ProcessManager& procs() { return *procs_; }
  TimerSubsystem& timers() { return *timers_; }
  IrqSubsystem& irqs() { return *irqs_; }
  WorkqueueSubsystem& wqs() { return *wqs_; }
  NetSubsystem& net() { return *net_; }
  IpcSubsystem& ipc() { return *ipc_; }
  DeviceModel& devices() { return *devices_; }
  SwapSubsystem& swap() { return *swap_; }

  // --- in-arena globals (exported as debugger symbols) ---
  rq* runqueues() { return runqueues_; }
  rcu_state* rcu_state_ptr() { return rcu_state_; }
  rcu_data* rcu_data_array() { return rcu_data_; }
  timer_base* timer_bases() { return timer_bases_; }
  irq_desc* irq_descs() { return irq_descs_; }
  worker_pool* cpu_worker_pools() { return worker_pools_; }
  list_head* workqueues_head() { return workqueues_head_; }
  ipc_namespace* init_ipc_ns() { return init_ipc_ns_; }
  swap_info_struct** swap_info() { return swap_info_; }

  // --- well-known boot-time objects ---
  workqueue_struct* mm_percpu_wq() { return mm_percpu_wq_; }
  workqueue_struct* events_wq() { return events_wq_; }
  super_block* ext4_sb() { return ext4_sb_; }
  super_block* pipefs_sb() { return pipefs_sb_; }
  super_block* sockfs_sb() { return sockfs_sb_; }
  super_block* tmpfs_sb() { return tmpfs_sb_; }
  block_device* sda() { return sda_; }
  bus_type* platform_bus() { return platform_bus_; }

  // Queues one of each heterogeneous mm_percpu_wq item on `cpu` (Figure 6).
  void QueueMmPercpuWork(int cpu);

  // One "jiffy" of kernel life on a CPU: scheduler tick, timer-wheel advance,
  // a workqueue pass, an RCU quiescent state, and a grace-period attempt.
  void TickCpu(int cpu);

  // --- function symbolization (FunPtr decorator support) ---
  void RegisterFunction(const void* fn, std::string name);
  // Returns the symbol for a host function address, or "" if unknown.
  std::string SymbolizeFunction(uint64_t addr) const;
  const std::map<uint64_t, std::string>& function_symbols() const { return func_symbols_; }

  // Total jiffies ticked so far (per CPU 0's base).
  uint64_t jiffies() const { return timer_bases_[0].clk; }

  // --- memory mutation epoch ---
  // Monotonic counter bumped on every mutation entry point (TickCpu, workload
  // steps, QueueMmPercpuWork). Debugger-side caches (dbg::ReadSession) compare
  // it between reads and drop stale blocks when it moves. Code that mutates
  // kernel memory through subsystem internals (tests poking allocators
  // directly) must call BumpGeneration() — or the reader must invalidate —
  // for cached sessions to notice. See docs/caching.md.
  uint64_t generation() const { return generation_; }
  void BumpGeneration() {
    if (batch_depth_ == 0) {
      ++generation_;
    }
  }

  // Coalesces every BumpGeneration() inside its scope into the single bump
  // taken on entry, so one logical mutation batch (e.g. a Workload step that
  // runs many ops and then ticks every CPU) costs one epoch instead of one
  // per entry point. Nests: only the outermost batch bumps.
  class MutationBatch {
   public:
    explicit MutationBatch(Kernel* kernel) : kernel_(kernel) {
      if (kernel_->batch_depth_++ == 0) {
        ++kernel_->generation_;
      }
    }
    ~MutationBatch() { --kernel_->batch_depth_; }
    MutationBatch(const MutationBatch&) = delete;
    MutationBatch& operator=(const MutationBatch&) = delete;

   private:
    Kernel* kernel_;
  };

 private:
  void BootFilesystems();
  void BootDeviceModel();
  void BootWorkqueues();
  void BootIrqs();
  void BootSwap();
  void BootKthreads();
  void RegisterWellKnownFunctions();

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<SlabAllocator> slabs_;
  std::unique_ptr<RadixTreeOps> radix_;
  std::unique_ptr<RcuSubsystem> rcu_;
  std::unique_ptr<MapleTreeOps> maple_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<FsManager> fs_;
  std::unique_ptr<ProcessManager> procs_;
  std::unique_ptr<TimerSubsystem> timers_;
  std::unique_ptr<IrqSubsystem> irqs_;
  std::unique_ptr<WorkqueueSubsystem> wqs_;
  std::unique_ptr<NetSubsystem> net_;
  std::unique_ptr<IpcSubsystem> ipc_;
  std::unique_ptr<DeviceModel> devices_;
  std::unique_ptr<SwapSubsystem> swap_;

  rq* runqueues_ = nullptr;
  rcu_state* rcu_state_ = nullptr;
  rcu_data* rcu_data_ = nullptr;
  timer_base* timer_bases_ = nullptr;
  irq_desc* irq_descs_ = nullptr;
  worker_pool* worker_pools_ = nullptr;
  list_head* workqueues_head_ = nullptr;
  ipc_namespace* init_ipc_ns_ = nullptr;
  swap_info_struct** swap_info_ = nullptr;

  workqueue_struct* mm_percpu_wq_ = nullptr;
  workqueue_struct* events_wq_ = nullptr;
  super_block* ext4_sb_ = nullptr;
  super_block* pipefs_sb_ = nullptr;
  super_block* sockfs_sb_ = nullptr;
  super_block* tmpfs_sb_ = nullptr;
  block_device* sda_ = nullptr;
  block_device* sdb_ = nullptr;
  bus_type* platform_bus_ = nullptr;

  kmem_cache* wq_item_cache_ = nullptr;  // heterogeneous mm_percpu_wq items

  std::map<uint64_t, std::string> func_symbols_;

  uint64_t generation_ = 0;
  int batch_depth_ = 0;  // >0 while a MutationBatch is open
};

// Well-known host functions usable as "user" callbacks by workloads; their
// addresses are registered in the kernel's function-symbol table.
sighandler_t KernelTestSigHandler1();
sighandler_t KernelTestSigHandler2();
void (*KernelProcessTimeoutFn())(timer_list*);

}  // namespace vkern

#endif  // SRC_VKERN_KERNEL_H_
