#include "src/vkern/swap.h"

namespace vkern {

SwapSubsystem::SwapSubsystem(swap_info_struct** swap_info, SlabAllocator* slabs)
    : swap_info_(swap_info), slabs_(slabs) {
  si_cache_ = slabs_->CreateCache("swap_info_struct", sizeof(swap_info_struct));
  for (int i = 0; i < kMaxSwapFiles; ++i) {
    swap_info_[i] = nullptr;
  }
}

swap_info_struct* SwapSubsystem::SwapOn(file* backing, block_device* bdev, uint32_t pages,
                                        int16_t prio) {
  if (nr_swapfiles_ >= kMaxSwapFiles) {
    return nullptr;
  }
  auto* si = slabs_->AllocAs<swap_info_struct>(si_cache_);
  if (si == nullptr) {
    return nullptr;
  }
  si->flags = SWP_USED | SWP_WRITEOK;
  si->prio = prio;
  si->type = static_cast<uint8_t>(nr_swapfiles_);
  si->max = pages;
  si->pages = pages;
  si->inuse_pages = 0;
  si->swap_file = backing;
  si->bdev = bdev;
  si->swap_map = static_cast<uint8_t*>(slabs_->AllocMeta(pages, 8));
  swap_info_[nr_swapfiles_++] = si;
  return si;
}

int64_t SwapSubsystem::AllocSlot(swap_info_struct* si) {
  for (uint32_t i = 1; i < si->max; ++i) {  // slot 0 is reserved (header)
    if (si->swap_map[i] == 0) {
      si->swap_map[i] = 1;
      si->inuse_pages++;
      return i;
    }
  }
  return -1;
}

void SwapSubsystem::FreeSlot(swap_info_struct* si, uint32_t slot) {
  if (slot < si->max && si->swap_map[slot] > 0) {
    if (--si->swap_map[slot] == 0) {
      si->inuse_pages--;
    }
  }
}

}  // namespace vkern
