// Dynamic timers on a hierarchical timer wheel (ULK Figure 6-1).

#ifndef SRC_VKERN_TIMER_H_
#define SRC_VKERN_TIMER_H_

#include <cstdint>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class TimerSubsystem {
 public:
  // `bases` is an in-arena array of kNrCpus timer_base structures.
  TimerSubsystem(timer_base* bases, SlabAllocator* slabs);

  // Allocates a timer from the "timer_list" cache.
  timer_list* AllocTimer();
  void FreeTimer(timer_list* timer);

  // mod_timer: (re)arms `timer` to fire at absolute jiffy `expires` on `cpu`.
  void AddTimer(int cpu, timer_list* timer, uint64_t expires, void (*fn)(timer_list*));
  void DelTimer(timer_list* timer);

  // Advances the CPU's wheel clock by `jiffies`, expiring due timers (their
  // callbacks run). Returns the number fired.
  uint64_t Advance(int cpu, uint64_t jiffies);

  timer_base* base(int cpu) { return &bases_[cpu]; }
  uint64_t pending_count(int cpu) const;

  // Wheel geometry: which vector slot an expiry lands in, given base clk.
  static uint32_t CalcWheelIndex(uint64_t expires, uint64_t clk);

 private:
  timer_base* bases_;
  SlabAllocator* slabs_;
  kmem_cache* timer_cache_;
};

}  // namespace vkern

#endif  // SRC_VKERN_TIMER_H_
