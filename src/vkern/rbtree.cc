#include "src/vkern/rbtree.h"

namespace vkern {

namespace {

void rb_set_parent(rb_node* node, rb_node* parent) {
  node->__rb_parent_color =
      (node->__rb_parent_color & 3ull) | reinterpret_cast<uintptr_t>(parent);
}

void rb_set_parent_color(rb_node* node, rb_node* parent, uintptr_t color) {
  node->__rb_parent_color = reinterpret_cast<uintptr_t>(parent) | color;
}

void rb_set_black(rb_node* node) { node->__rb_parent_color |= kRbBlack; }

// Replaces `old_node` with `new_node` in the parent's child slot.
void rb_change_child(rb_node* old_node, rb_node* new_node, rb_node* parent, rb_root* root) {
  if (parent != nullptr) {
    if (parent->rb_left == old_node) {
      parent->rb_left = new_node;
    } else {
      parent->rb_right = new_node;
    }
  } else {
    root->rb_node_ = new_node;
  }
}

void rb_rotate_set_parents(rb_node* old_node, rb_node* new_node, rb_root* root, uintptr_t color) {
  rb_node* parent = rb_parent(old_node);
  new_node->__rb_parent_color = old_node->__rb_parent_color;
  rb_set_parent_color(old_node, new_node, color);
  rb_change_child(old_node, new_node, parent, root);
}

}  // namespace

void rb_insert_color(rb_node* node, rb_root* root) {
  rb_node* parent = rb_parent(node);
  while (true) {
    if (parent == nullptr) {
      // Inserted at the root: colour it black.
      rb_set_parent_color(node, nullptr, kRbBlack);
      break;
    }
    if (rb_is_black(parent)) {
      break;
    }
    rb_node* gparent = rb_parent(parent);
    rb_node* tmp = gparent->rb_right;
    if (parent != tmp) {  // parent == gparent->rb_left
      if (tmp != nullptr && rb_is_red(tmp)) {
        // Case 1: uncle is red — flip colours and ascend.
        rb_set_parent_color(tmp, gparent, kRbBlack);
        rb_set_parent_color(parent, gparent, kRbBlack);
        node = gparent;
        parent = rb_parent(node);
        rb_set_parent_color(node, parent, kRbRed);
        continue;
      }
      tmp = parent->rb_right;
      if (node == tmp) {
        // Case 2: left-rotate at parent to transform into case 3.
        tmp = node->rb_left;
        parent->rb_right = tmp;
        node->rb_left = parent;
        if (tmp != nullptr) {
          rb_set_parent_color(tmp, parent, kRbBlack);
        }
        rb_set_parent_color(parent, node, kRbRed);
        parent = node;
        tmp = node->rb_right;
      }
      // Case 3: right-rotate at gparent.
      gparent->rb_left = tmp;
      parent->rb_right = gparent;
      if (tmp != nullptr) {
        rb_set_parent_color(tmp, gparent, kRbBlack);
      }
      rb_rotate_set_parents(gparent, parent, root, kRbRed);
      break;
    } else {  // parent == gparent->rb_right (mirror image)
      tmp = gparent->rb_left;
      if (tmp != nullptr && rb_is_red(tmp)) {
        rb_set_parent_color(tmp, gparent, kRbBlack);
        rb_set_parent_color(parent, gparent, kRbBlack);
        node = gparent;
        parent = rb_parent(node);
        rb_set_parent_color(node, parent, kRbRed);
        continue;
      }
      tmp = parent->rb_left;
      if (node == tmp) {
        tmp = node->rb_right;
        parent->rb_left = tmp;
        node->rb_right = parent;
        if (tmp != nullptr) {
          rb_set_parent_color(tmp, parent, kRbBlack);
        }
        rb_set_parent_color(parent, node, kRbRed);
        parent = node;
        tmp = node->rb_left;
      }
      gparent->rb_right = tmp;
      parent->rb_left = gparent;
      if (tmp != nullptr) {
        rb_set_parent_color(tmp, gparent, kRbBlack);
      }
      rb_rotate_set_parents(gparent, parent, root, kRbRed);
      break;
    }
  }
}

namespace {

// Rebalances after removing a black node; `parent` is the parent of the
// (possibly null) replacement node.
void rb_erase_color(rb_node* parent, rb_root* root) {
  rb_node* node = nullptr;
  while (true) {
    rb_node* sibling = parent->rb_right;
    if (node != sibling) {  // node == parent->rb_left
      if (rb_is_red(sibling)) {
        // Case 1: red sibling — left-rotate at parent.
        rb_node* tmp1 = sibling->rb_left;
        parent->rb_right = tmp1;
        sibling->rb_left = parent;
        rb_set_parent_color(tmp1, parent, kRbBlack);
        rb_rotate_set_parents(parent, sibling, root, kRbRed);
        sibling = tmp1;
      }
      rb_node* tmp1 = sibling->rb_right;
      if (tmp1 == nullptr || rb_is_black(tmp1)) {
        rb_node* tmp2 = sibling->rb_left;
        if (tmp2 == nullptr || rb_is_black(tmp2)) {
          // Case 2: sibling and both nephews black — recolour and ascend.
          rb_set_parent_color(sibling, parent, kRbRed);
          if (rb_is_red(parent)) {
            rb_set_black(parent);
          } else {
            node = parent;
            parent = rb_parent(node);
            if (parent != nullptr) {
              continue;
            }
          }
          break;
        }
        // Case 3: right-rotate at sibling.
        tmp1 = tmp2->rb_right;
        sibling->rb_left = tmp1;
        tmp2->rb_right = sibling;
        parent->rb_right = tmp2;
        if (tmp1 != nullptr) {
          rb_set_parent_color(tmp1, sibling, kRbBlack);
        }
        tmp1 = sibling;
        sibling = tmp2;
      }
      // Case 4: left-rotate at parent.
      rb_node* tmp2 = sibling->rb_left;
      parent->rb_right = tmp2;
      sibling->rb_left = parent;
      rb_set_parent_color(tmp1, sibling, kRbBlack);
      if (tmp2 != nullptr) {
        rb_set_parent(tmp2, parent);
      }
      rb_rotate_set_parents(parent, sibling, root, kRbBlack);
      break;
    } else {  // node == parent->rb_right (mirror image)
      sibling = parent->rb_left;
      if (rb_is_red(sibling)) {
        rb_node* tmp1 = sibling->rb_right;
        parent->rb_left = tmp1;
        sibling->rb_right = parent;
        rb_set_parent_color(tmp1, parent, kRbBlack);
        rb_rotate_set_parents(parent, sibling, root, kRbRed);
        sibling = tmp1;
      }
      rb_node* tmp1 = sibling->rb_left;
      if (tmp1 == nullptr || rb_is_black(tmp1)) {
        rb_node* tmp2 = sibling->rb_right;
        if (tmp2 == nullptr || rb_is_black(tmp2)) {
          rb_set_parent_color(sibling, parent, kRbRed);
          if (rb_is_red(parent)) {
            rb_set_black(parent);
          } else {
            node = parent;
            parent = rb_parent(node);
            if (parent != nullptr) {
              continue;
            }
          }
          break;
        }
        tmp1 = tmp2->rb_left;
        sibling->rb_right = tmp1;
        tmp2->rb_left = sibling;
        parent->rb_left = tmp2;
        if (tmp1 != nullptr) {
          rb_set_parent_color(tmp1, sibling, kRbBlack);
        }
        tmp1 = sibling;
        sibling = tmp2;
      }
      rb_node* tmp2 = sibling->rb_right;
      parent->rb_left = tmp2;
      sibling->rb_right = parent;
      rb_set_parent_color(tmp1, sibling, kRbBlack);
      if (tmp2 != nullptr) {
        rb_set_parent(tmp2, parent);
      }
      rb_rotate_set_parents(parent, sibling, root, kRbBlack);
      break;
    }
  }
}

}  // namespace

void rb_erase(rb_node* node, rb_root* root) {
  rb_node* child = node->rb_right;
  rb_node* tmp = node->rb_left;
  rb_node* parent;
  rb_node* rebalance = nullptr;
  uintptr_t pc;

  if (tmp == nullptr) {
    // Case 1: at most one (right) child.
    pc = node->__rb_parent_color;
    parent = reinterpret_cast<rb_node*>(pc & ~3ull);
    rb_change_child(node, child, parent, root);
    if (child != nullptr) {
      child->__rb_parent_color = pc;
    } else if ((pc & 1) == kRbBlack) {
      rebalance = parent;
    }
  } else if (child == nullptr) {
    // Case 1 mirrored: only a left child; the child must be red, node black.
    pc = node->__rb_parent_color;
    tmp->__rb_parent_color = pc;
    parent = reinterpret_cast<rb_node*>(pc & ~3ull);
    rb_change_child(node, tmp, parent, root);
  } else {
    // Two children: splice in the successor.
    rb_node* successor = child;
    rb_node* child2;
    tmp = child->rb_left;
    if (tmp == nullptr) {
      // The right child is the successor.
      parent = successor;
      child2 = successor->rb_right;
    } else {
      do {
        parent = successor;
        successor = tmp;
        tmp = tmp->rb_left;
      } while (tmp != nullptr);
      child2 = successor->rb_right;
      parent->rb_left = child2;
      successor->rb_right = child;
      rb_set_parent(child, successor);
    }
    rb_node* left = node->rb_left;
    successor->rb_left = left;
    rb_set_parent(left, successor);

    pc = node->__rb_parent_color;
    tmp = reinterpret_cast<rb_node*>(pc & ~3ull);
    rb_change_child(node, successor, tmp, root);

    if (child2 != nullptr) {
      rb_set_parent_color(child2, parent, kRbBlack);
    } else if (rb_is_black(successor)) {
      rebalance = parent;
    }
    successor->__rb_parent_color = pc;
  }

  if (rebalance != nullptr) {
    rb_erase_color(rebalance, root);
  }
}

void rb_insert_color_cached(rb_node* node, rb_root_cached* root, bool leftmost) {
  if (leftmost) {
    root->rb_leftmost = node;
  }
  rb_insert_color(node, &root->rb_root_);
}

void rb_erase_cached(rb_node* node, rb_root_cached* root) {
  if (root->rb_leftmost == node) {
    root->rb_leftmost = rb_next(node);
  }
  rb_erase(node, &root->rb_root_);
}

rb_node* rb_first(const rb_root* root) {
  rb_node* n = root->rb_node_;
  if (n == nullptr) {
    return nullptr;
  }
  while (n->rb_left != nullptr) {
    n = n->rb_left;
  }
  return n;
}

rb_node* rb_last(const rb_root* root) {
  rb_node* n = root->rb_node_;
  if (n == nullptr) {
    return nullptr;
  }
  while (n->rb_right != nullptr) {
    n = n->rb_right;
  }
  return n;
}

rb_node* rb_next(const rb_node* node) {
  if (node->rb_right != nullptr) {
    const rb_node* n = node->rb_right;
    while (n->rb_left != nullptr) {
      n = n->rb_left;
    }
    return const_cast<rb_node*>(n);
  }
  rb_node* parent;
  while ((parent = rb_parent(node)) != nullptr && node == parent->rb_right) {
    node = parent;
  }
  return parent;
}

rb_node* rb_prev(const rb_node* node) {
  if (node->rb_left != nullptr) {
    const rb_node* n = node->rb_left;
    while (n->rb_right != nullptr) {
      n = n->rb_right;
    }
    return const_cast<rb_node*>(n);
  }
  rb_node* parent;
  while ((parent = rb_parent(node)) != nullptr && node == parent->rb_left) {
    node = parent;
  }
  return parent;
}

namespace {

// Returns black-height, or -1 on violation.
int ValidateSubtree(const rb_node* node, const rb_node* parent) {
  if (node == nullptr) {
    return 0;
  }
  if (rb_parent(node) != parent) {
    return -1;
  }
  if (rb_is_red(node)) {
    if ((node->rb_left != nullptr && rb_is_red(node->rb_left)) ||
        (node->rb_right != nullptr && rb_is_red(node->rb_right))) {
      return -1;  // Red node with a red child.
    }
  }
  int lh = ValidateSubtree(node->rb_left, node);
  int rh = ValidateSubtree(node->rb_right, node);
  if (lh < 0 || rh < 0 || lh != rh) {
    return -1;
  }
  return lh + (rb_is_black(node) ? 1 : 0);
}

}  // namespace

int rb_validate(const rb_root* root) {
  if (root->rb_node_ != nullptr && rb_is_red(root->rb_node_)) {
    return -1;
  }
  return ValidateSubtree(root->rb_node_, nullptr);
}

}  // namespace vkern
