#include "src/vkern/kobject.h"

#include <cstring>

namespace vkern {

namespace {

void CopyName(char* dst, size_t cap, std::string_view name) {
  size_t len = name.size() < cap - 1 ? name.size() : cap - 1;
  std::memcpy(dst, name.data(), len);
  dst[len] = '\0';
}

}  // namespace

DeviceModel::DeviceModel(SlabAllocator* slabs) : slabs_(slabs) {
  kset_cache_ = slabs_->CreateCache("kset", sizeof(kset));
  bus_cache_ = slabs_->CreateCache("bus_type", sizeof(bus_type));
  driver_cache_ = slabs_->CreateCache("device_driver", sizeof(device_driver));
  device_cache_ = slabs_->CreateCache("device", sizeof(device));
  devices_root_ = CreateKset("devices", nullptr);
}

void DeviceModel::KobjectInit(kobject* kobj, std::string_view name, kobject* parent,
                              kset* owner) {
  CopyName(kobj->name, sizeof(kobj->name), name);
  kobj->parent = parent;
  kobj->kset_ = owner;
  kobj->kref_.refcount.counter = 1;
  kobj->state_initialized = 1;
  if (owner != nullptr) {
    list_add_tail(&kobj->entry, &owner->list);
  } else {
    INIT_LIST_HEAD(&kobj->entry);
  }
}

kset* DeviceModel::CreateKset(std::string_view name, kobject* parent) {
  auto* set = slabs_->AllocAs<kset>(kset_cache_);
  INIT_LIST_HEAD(&set->list);
  KobjectInit(&set->kobj, name, parent, nullptr);
  return set;
}

bus_type* DeviceModel::RegisterBus(std::string_view name) {
  auto* bus = slabs_->AllocAs<bus_type>(bus_cache_);
  CopyName(bus->name, sizeof(bus->name), name);
  bus->devices_kset = CreateKset(name, &devices_root_->kobj);
  bus->drivers_kset = CreateKset("drivers", &bus->devices_kset->kobj);
  INIT_LIST_HEAD(&bus->devices_list);
  INIT_LIST_HEAD(&bus->drivers_list);
  return bus;
}

device_driver* DeviceModel::RegisterDriver(bus_type* bus, std::string_view name) {
  auto* drv = slabs_->AllocAs<device_driver>(driver_cache_);
  CopyName(drv->name, sizeof(drv->name), name);
  drv->bus = bus;
  INIT_LIST_HEAD(&drv->devices);
  list_add_tail(&drv->bus_node, &bus->drivers_list);
  return drv;
}

device* DeviceModel::RegisterDevice(bus_type* bus, std::string_view name, device* parent,
                                    uint64_t devt) {
  auto* dev = slabs_->AllocAs<device>(device_cache_);
  CopyName(dev->init_name, sizeof(dev->init_name), name);
  dev->parent = parent;
  dev->bus = bus;
  dev->devt = devt;
  KobjectInit(&dev->kobj, name, parent != nullptr ? &parent->kobj : &bus->devices_kset->kobj,
              bus->devices_kset);
  list_add_tail(&dev->bus_node, &bus->devices_list);
  return dev;
}

void DeviceModel::BindDevice(device* dev, device_driver* drv) {
  dev->driver = drv;
}

}  // namespace vkern
