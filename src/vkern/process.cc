#include "src/vkern/process.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <vector>

namespace vkern {

namespace {

void CopyComm(char* dst, std::string_view name) {
  size_t len = name.size() < kTaskCommLen - 1 ? name.size() : kTaskCommLen - 1;
  std::memcpy(dst, name.data(), len);
  dst[len] = '\0';
}

}  // namespace

ProcessManager::ProcessManager(SlabAllocator* slabs, BuddyAllocator* buddy, MapleTreeOps* maple,
                               Scheduler* sched, FsManager* fs)
    : slabs_(slabs), buddy_(buddy), maple_(maple), sched_(sched), fs_(fs) {
  task_cache_ = slabs_->CreateCache("task_struct", sizeof(task_struct), 64);
  mm_cache_ = slabs_->CreateCache("mm_struct", sizeof(mm_struct), 64);
  vma_cache_ = slabs_->CreateCache("vm_area_struct", sizeof(vm_area_struct));
  signal_cache_ = slabs_->CreateCache("signal_cache", sizeof(signal_struct));
  sighand_cache_ = slabs_->CreateCache("sighand_cache", sizeof(sighand_struct));
  pid_cache_ = slabs_->CreateCache("pid", sizeof(pid_struct));
  sigqueue_cache_ = slabs_->CreateCache("sigqueue", sizeof(sigqueue));
  anon_vma_cache_ = slabs_->CreateCache("anon_vma", sizeof(anon_vma));
  avc_cache_ = slabs_->CreateCache("anon_vma_chain", sizeof(anon_vma_chain));

  pid_hash_ =
      static_cast<hlist_head*>(slabs_->AllocMeta(sizeof(hlist_head) * kPidHashSize, 64));
  for (int i = 0; i < kPidHashSize; ++i) {
    INIT_HLIST_HEAD(&pid_hash_[i]);
  }
}

task_struct* ProcessManager::AllocTaskCommon(std::string_view name, uint32_t pf_flags) {
  auto* task = slabs_->AllocAs<task_struct>(task_cache_);
  if (task == nullptr) {
    return nullptr;
  }
  CopyComm(task->comm, name);
  task->__state = TASK_RUNNING;
  task->flags = pf_flags;
  task->prio = 120;
  task->static_prio = 120;
  task->se.load.weight = kNiceZeroWeight;
  INIT_LIST_HEAD(&task->children);
  INIT_LIST_HEAD(&task->sibling);
  INIT_LIST_HEAD(&task->thread_node);
  INIT_LIST_HEAD(&task->tasks);
  INIT_LIST_HEAD(&task->pending.list);
  INIT_HLIST_NODE(&task->pids[0].node);
  return task;
}

void ProcessManager::AttachPid(task_struct* task, int nr) {
  auto* pid = slabs_->AllocAs<pid_struct>(pid_cache_);
  pid->nr = nr;
  pid->count.counter = 1;
  INIT_HLIST_HEAD(&pid->tasks_head);
  hlist_add_head(&pid->pid_chain, &pid_hash_[PidHashFn(nr)]);
  task->pid = nr;
  task->pids[0].pid = pid;
  task->thread_pid = pid;
  hlist_add_head(&task->pids[0].node, &pid->tasks_head);
}

void ProcessManager::DetachPid(task_struct* task) {
  pid_struct* pid = task->pids[0].pid;
  if (pid == nullptr) {
    return;
  }
  hlist_del(&task->pids[0].node);
  if (hlist_empty(&pid->tasks_head)) {
    hlist_del(&pid->pid_chain);
    slabs_->Free(pid_cache_, pid);
  }
  task->pids[0].pid = nullptr;
  task->thread_pid = nullptr;
}

signal_struct* ProcessManager::AllocSignalStruct(task_struct* for_task) {
  auto* sig = slabs_->AllocAs<signal_struct>(signal_cache_);
  sig->sig_cnt = 1;
  sig->nr_threads = 1;
  INIT_LIST_HEAD(&sig->thread_head);
  INIT_LIST_HEAD(&sig->shared_pending.list);
  sig->group_leader_task = for_task;
  return sig;
}

sighand_struct* ProcessManager::AllocSighand() {
  auto* sighand = slabs_->AllocAs<sighand_struct>(sighand_cache_);
  sighand->count = 1;
  // All actions default to SIG_DFL (null handler).
  return sighand;
}

void ProcessManager::Boot() {
  for (int cpu = 0; cpu < kNrCpus; ++cpu) {
    char name[16];
    std::snprintf(name, sizeof(name), "swapper/%d", cpu);
    task_struct* idle = AllocTaskCommon(name, PF_KTHREAD | PF_IDLE);
    idle->pid = 0;
    idle->tgid = 0;
    idle->__state = TASK_RUNNING;
    idle->signal = AllocSignalStruct(idle);
    idle->sighand = AllocSighand();
    idle->group_leader = idle;
    idle_[cpu] = idle;
    sched_->InitRq(cpu, idle);
    if (cpu == 0) {
      // init_task anchors the global task list (Linux: init_task.tasks).
      init_task_ = idle;
    } else {
      list_add_tail(&idle->tasks, &init_task_->tasks);
    }
  }
  // pid 1: init.
  task_struct* init = CreateTask("init", init_task_, 0, 0);
  (void)init;
}

task_struct* ProcessManager::CreateTask(std::string_view name, task_struct* parent,
                                        uint64_t clone_flags, int cpu) {
  task_struct* task = AllocTaskCommon(name, 0);
  if (task == nullptr) {
    return nullptr;
  }
  AttachPid(task, next_pid_++);
  task->tgid = task->pid;
  task->group_leader = task;
  task->real_parent = parent;
  task->parent = parent;
  if (parent != nullptr) {
    list_add_tail(&task->sibling, &parent->children);
  }
  list_add_tail(&task->tasks, &init_task_->tasks);

  if ((clone_flags & kCloneVm) != 0 && parent != nullptr && parent->mm != nullptr) {
    task->mm = parent->mm;
    task->mm->mm_users.counter++;
  } else {
    task->mm = CreateMm(task);
    SetupStandardLayout(task->mm, nullptr);
  }
  task->active_mm = task->mm;

  if ((clone_flags & kCloneFiles) != 0 && parent != nullptr && parent->files != nullptr) {
    task->files = parent->files;
    task->files->count.counter++;
  } else {
    task->files = fs_->CreateFilesStruct();
  }

  if ((clone_flags & kCloneSighand) != 0 && parent != nullptr) {
    task->sighand = parent->sighand;
    task->sighand->count++;
  } else {
    task->sighand = AllocSighand();
  }

  if ((clone_flags & kCloneThread) != 0 && parent != nullptr) {
    task->signal = parent->signal;
    task->signal->sig_cnt++;
    task->signal->nr_threads++;
    task->tgid = parent->tgid;
    task->group_leader = parent->group_leader;
    list_add_tail(&task->thread_node, &task->signal->thread_head);
  } else {
    task->signal = AllocSignalStruct(task);
    list_add_tail(&task->thread_node, &task->signal->thread_head);
  }

  sched_->Enqueue(cpu, task);
  return task;
}

task_struct* ProcessManager::CreateThread(task_struct* leader, std::string_view name, int cpu) {
  return CreateTask(name, leader, kCloneVm | kCloneFiles | kCloneSighand | kCloneThread, cpu);
}

task_struct* ProcessManager::CreateKthread(std::string_view name, int cpu) {
  task_struct* task = AllocTaskCommon(name, PF_KTHREAD);
  if (task == nullptr) {
    return nullptr;
  }
  AttachPid(task, next_pid_++);
  task->tgid = task->pid;
  task->group_leader = task;
  task->real_parent = init_task_;
  task->parent = init_task_;
  list_add_tail(&task->sibling, &init_task_->children);
  list_add_tail(&task->tasks, &init_task_->tasks);
  task->mm = nullptr;
  task->active_mm = nullptr;
  task->files = fs_->CreateFilesStruct();
  task->sighand = AllocSighand();
  task->signal = AllocSignalStruct(task);
  list_add_tail(&task->thread_node, &task->signal->thread_head);
  sched_->Enqueue(cpu, task);
  return task;
}

void ProcessManager::ExitTask(task_struct* task, int exit_code) {
  assert(task != init_task_);
  sched_->Dequeue(task->on_cpu, task);
  task->__state = TASK_DEAD;
  task->exit_state = 16 /* EXIT_ZOMBIE */;
  task->exit_code = exit_code;
  task->flags |= PF_EXITING;

  // Reparent children to init (pid 1 if present, else init_task).
  task_struct* reaper = FindTaskByPid(1);
  if (reaper == nullptr || reaper == task) {
    reaper = init_task_;
  }
  while (!list_empty(&task->children)) {
    task_struct* child = VKERN_CONTAINER_OF(task->children.next, task_struct, sibling);
    list_del_init(&child->sibling);
    child->parent = reaper;
    child->real_parent = reaper;
    list_add_tail(&child->sibling, &reaper->children);
  }

  // Drop the mm.
  if (task->mm != nullptr) {
    if (--task->mm->mm_users.counter == 0) {
      DestroyMm(task->mm);
    }
    task->mm = nullptr;
    task->active_mm = nullptr;
  }
  // Drop files.
  if (task->files != nullptr) {
    if (--task->files->count.counter == 0) {
      fdtable* fdt = task->files->fdt;
      for (uint32_t fd = 0; fd < fdt->max_fds; ++fd) {
        if ((*fdt->open_fds & (1ull << fd)) != 0) {
          fs_->CloseFd(task->files, static_cast<int>(fd));
        }
      }
      slabs_->Free(slabs_->FindCache("files_cache"), task->files);
    }
    task->files = nullptr;
  }
  // Leave signal/sighand until reap (a zombie still has them in Linux).
}

void ProcessManager::ReapTask(task_struct* task) {
  assert(task->exit_state != 0 && "only zombies can be reaped");
  list_del_init(&task->sibling);
  list_del(&task->tasks);
  list_del_init(&task->thread_node);
  DetachPid(task);

  if (task->signal != nullptr) {
    task->signal->nr_threads--;
    if (--task->signal->sig_cnt == 0) {
      // Flush shared pending signals.
      while (!list_empty(&task->signal->shared_pending.list)) {
        sigqueue* q =
            VKERN_CONTAINER_OF(task->signal->shared_pending.list.next, sigqueue, list);
        list_del(&q->list);
        slabs_->Free(sigqueue_cache_, q);
      }
      slabs_->Free(signal_cache_, task->signal);
    }
    task->signal = nullptr;
  }
  if (task->sighand != nullptr) {
    if (--task->sighand->count == 0) {
      slabs_->Free(sighand_cache_, task->sighand);
    }
    task->sighand = nullptr;
  }
  while (!list_empty(&task->pending.list)) {
    sigqueue* q = VKERN_CONTAINER_OF(task->pending.list.next, sigqueue, list);
    list_del(&q->list);
    slabs_->Free(sigqueue_cache_, q);
  }
  slabs_->Free(task_cache_, task);
}

task_struct* ProcessManager::FindTaskByPid(int pid) const {
  const hlist_head* bucket = &pid_hash_[PidHashFn(pid)];
  for (hlist_node* node = bucket->first; node != nullptr; node = node->next) {
    pid_struct* p = VKERN_CONTAINER_OF(node, pid_struct, pid_chain);
    if (p->nr == pid && !hlist_empty(&p->tasks_head)) {
      pid_link* link = VKERN_CONTAINER_OF(p->tasks_head.first, pid_link, node);
      return VKERN_CONTAINER_OF(link, task_struct, pids[0]);
    }
  }
  return nullptr;
}

int ProcessManager::task_count() const {
  return static_cast<int>(list_count(&init_task_->tasks)) + 1;
}

// --- memory descriptors ---

mm_struct* ProcessManager::CreateMm(task_struct* owner) {
  auto* mm = slabs_->AllocAs<mm_struct>(mm_cache_);
  maple_->Init(&mm->mm_mt, MT_FLAGS_ALLOC_RANGE);
  mm->mmap_base = kMmapBase;
  mm->task_size = kTaskSize;
  mm->mm_users.counter = 1;
  mm->mm_count.counter = 1;
  mm->map_count = 0;
  mm->pgd = 0xffff888000100000ull;  // cosmetic
  mm->owner = owner;
  return mm;
}

void ProcessManager::SetupStandardLayout(mm_struct* mm, file* exe) {
  // Code, data, heap, stack — the canonical exec layout of ULK Figure 9-2.
  mm->start_code = kCodeStart;
  mm->end_code = kCodeStart + 0x8000;
  Mmap(mm, 0x8000, VM_READ | VM_EXEC, exe, 0, mm->start_code);
  mm->start_data = kCodeStart + 0x200000;
  mm->end_data = mm->start_data + 0x4000;
  Mmap(mm, 0x4000, VM_READ | VM_WRITE, exe, 8, mm->start_data);
  mm->start_brk = mm->end_data + 0x1000;
  mm->brk = mm->start_brk + 0x21000;
  Mmap(mm, 0x21000, VM_READ | VM_WRITE | VM_ANON, nullptr, 0, mm->start_brk);
  mm->start_stack = kStackTop - 0x21000;
  Mmap(mm, 0x21000, VM_READ | VM_WRITE | VM_ANON | VM_GROWSDOWN | VM_STACK, nullptr, 0,
       mm->start_stack);
}

vm_area_struct* ProcessManager::Mmap(mm_struct* mm, uint64_t len, uint64_t vm_flags, file* f,
                                     uint64_t pgoff, uint64_t fixed_addr) {
  len = (len + kPageSize - 1) & ~(kPageSize - 1);
  if (len == 0) {
    return nullptr;
  }
  uint64_t addr = fixed_addr;
  if (addr == 0) {
    if (!maple_->FindEmptyArea(&mm->mm_mt, mm->mmap_base, mm->task_size - 1, len, &addr)) {
      return nullptr;
    }
  }
  auto* vma = slabs_->AllocAs<vm_area_struct>(vma_cache_);
  if (vma == nullptr) {
    return nullptr;
  }
  vma->vm_start = addr;
  vma->vm_end = addr + len;
  vma->vm_mm = mm;
  vma->vm_flags = vm_flags | VM_MAYREAD | VM_MAYWRITE;
  vma->vm_pgoff = pgoff;
  vma->vm_file = f;
  INIT_LIST_HEAD(&vma->anon_vma_chain);
  if (f != nullptr) {
    f->f_count.counter++;
    if (f->f_mapping != nullptr) {
      // Track the mapping in the file's i_mmap (simplified to a list).
      // Reuse anon_vma_chain linkage for the file case would be wrong; we do
      // not link file VMAs into i_mmap to keep ownership simple.
    }
  }
  if ((vm_flags & VM_ANON) != 0) {
    AnonVmaPrepare(vma);
  }
  if (!maple_->StoreRange(&mm->mm_mt, vma->vm_start, vma->vm_end - 1, vma)) {
    FreeVma(vma);
    return nullptr;
  }
  mm->map_count++;
  mm->total_vm += len >> kPageShift;
  return vma;
}

bool ProcessManager::Munmap(mm_struct* mm, uint64_t addr) {
  void* entry = maple_->Erase(&mm->mm_mt, addr);
  if (entry == nullptr) {
    return false;
  }
  auto* vma = static_cast<vm_area_struct*>(entry);
  mm->map_count--;
  mm->total_vm -= (vma->vm_end - vma->vm_start) >> kPageShift;
  FreeVma(vma);
  return true;
}

vm_area_struct* ProcessManager::FindVma(mm_struct* mm, uint64_t addr) const {
  return static_cast<vm_area_struct*>(maple_->Find(&mm->mm_mt, addr));
}

anon_vma* ProcessManager::AnonVmaPrepare(vm_area_struct* vma) {
  if (vma->anon_vma_ != nullptr) {
    return vma->anon_vma_;
  }
  auto* av = slabs_->AllocAs<anon_vma>(anon_vma_cache_);
  av->root = av;
  av->refcount.counter = 1;
  av->num_active_vmas = 1;
  av->rb_root_.rb_root_.rb_node_ = nullptr;
  av->rb_root_.rb_leftmost = nullptr;

  auto* avc = slabs_->AllocAs<anon_vma_chain>(avc_cache_);
  avc->vma = vma;
  avc->av = av;
  avc->rb_subtree_last = vma->vm_end - 1;
  list_add_tail(&avc->same_vma, &vma->anon_vma_chain);

  // Insert into the anon_vma interval tree keyed by vm_start.
  rb_node** link = &av->rb_root_.rb_root_.rb_node_;
  rb_node* parent = nullptr;
  bool leftmost = true;
  while (*link != nullptr) {
    parent = *link;
    anon_vma_chain* other = VKERN_CONTAINER_OF(parent, anon_vma_chain, rb);
    if (vma->vm_start < other->vma->vm_start) {
      link = &parent->rb_left;
    } else {
      link = &parent->rb_right;
      leftmost = false;
    }
  }
  rb_link_node(&avc->rb, parent, link);
  rb_insert_color_cached(&avc->rb, &av->rb_root_, leftmost);

  vma->anon_vma_ = av;
  return av;
}

void ProcessManager::FreeVma(vm_area_struct* vma) {
  // Unlink reverse-map chains.
  while (!list_empty(&vma->anon_vma_chain)) {
    anon_vma_chain* avc =
        VKERN_CONTAINER_OF(vma->anon_vma_chain.next, anon_vma_chain, same_vma);
    list_del(&avc->same_vma);
    rb_erase_cached(&avc->rb, &avc->av->rb_root_);
    anon_vma* av = avc->av;
    slabs_->Free(avc_cache_, avc);
    if (--av->refcount.counter == 0) {
      slabs_->Free(anon_vma_cache_, av);
    }
  }
  if (vma->vm_file != nullptr) {
    fs_->CloseFile(vma->vm_file);
  }
  slabs_->Free(vma_cache_, vma);
}

void ProcessManager::DestroyMm(mm_struct* mm) {
  // Collect VMAs first (Erase mutates the tree during iteration).
  std::vector<vm_area_struct*> vmas;
  maple_->ForEach(&mm->mm_mt, [&vmas](uint64_t, uint64_t, void* entry) {
    vmas.push_back(static_cast<vm_area_struct*>(entry));
  });
  for (vm_area_struct* vma : vmas) {
    FreeVma(vma);
  }
  maple_->Destroy(&mm->mm_mt);
  if (--mm->mm_count.counter == 0) {
    slabs_->Free(mm_cache_, mm);
  }
}

page* ProcessManager::FaultAnonPage(vm_area_struct* vma, uint64_t addr) {
  assert(addr >= vma->vm_start && addr < vma->vm_end);
  anon_vma* av = AnonVmaPrepare(vma);
  page* pg = buddy_->AllocPage();
  if (pg == nullptr) {
    return nullptr;
  }
  // PAGE_MAPPING_ANON: the low bit of page->mapping tags an anon_vma pointer.
  pg->mapping = reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(av) | 1u);
  pg->index = (addr - vma->vm_start) >> kPageShift;
  pg->flags |= PG_anon | PG_uptodate;
  pg->mapcount = 1;
  return pg;
}

// --- signals ---

void ProcessManager::SetSigaction(task_struct* task, int sig, sighandler_t handler,
                                  uint64_t flags) {
  assert(sig >= 1 && sig <= kNsig);
  k_sigaction* ka = &task->sighand->action[sig - 1];
  ka->sa.sa_handler_fn = handler;
  ka->sa.sa_flags = flags;
}

bool ProcessManager::SendSignal(task_struct* task, int sig, int from_pid) {
  assert(sig >= 1 && sig <= kNsig);
  if ((task->blocked.sig & (1ull << (sig - 1))) != 0) {
    // Blocked: still queued, but kept pending.
  }
  auto* q = slabs_->AllocAs<sigqueue>(sigqueue_cache_);
  if (q == nullptr) {
    return false;
  }
  q->signo = sig;
  q->pid_from = from_pid;
  list_add_tail(&q->list, &task->pending.list);
  task->pending.signal.sig |= 1ull << (sig - 1);
  return true;
}

int ProcessManager::DequeueSignal(task_struct* task) {
  if (list_empty(&task->pending.list)) {
    return 0;
  }
  sigqueue* q = VKERN_CONTAINER_OF(task->pending.list.next, sigqueue, list);
  int sig = q->signo;
  list_del(&q->list);
  slabs_->Free(sigqueue_cache_, q);
  // Clear the bit if no other queued instance of this signal remains.
  bool more = false;
  VKERN_LIST_FOR_EACH(pos, &task->pending.list) {
    if (VKERN_CONTAINER_OF(pos, sigqueue, list)->signo == sig) {
      more = true;
      break;
    }
  }
  if (!more) {
    task->pending.signal.sig &= ~(1ull << (sig - 1));
  }
  return sig;
}

}  // namespace vkern
