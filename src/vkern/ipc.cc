#include "src/vkern/ipc.h"

namespace vkern {

IpcSubsystem::IpcSubsystem(ipc_namespace* ns, SlabAllocator* slabs) : ns_(ns), slabs_(slabs) {
  sem_cache_ = slabs_->CreateCache("sem_array", sizeof(sem_array));
  msq_cache_ = slabs_->CreateCache("msg_queue", sizeof(msg_queue));
  msg_cache_ = slabs_->CreateCache("msg_msg", sizeof(msg_msg));
  for (int i = 0; i < 3; ++i) {
    ns_->ids[i].in_use = 0;
    ns_->ids[i].max_idx = -1;
    for (auto& entry : ns_->ids[i].entries) {
      entry = nullptr;
    }
  }
}

int IpcSubsystem::AllocId(ipc_ids* ids, kern_ipc_perm* perm) {
  for (int i = 0; i < static_cast<int>(sizeof(ids->entries) / sizeof(ids->entries[0])); ++i) {
    if (ids->entries[i] == nullptr) {
      ids->entries[i] = perm;
      ids->in_use++;
      if (i > ids->max_idx) {
        ids->max_idx = i;
      }
      perm->id = i;
      perm->seq = seq_++;
      return i;
    }
  }
  return -1;
}

sem_array* IpcSubsystem::SemGet(uint64_t key, int nsems) {
  if (nsems <= 0 || nsems > kSemsMax) {
    return nullptr;
  }
  auto* sma = slabs_->AllocAs<sem_array>(sem_cache_);
  if (sma == nullptr) {
    return nullptr;
  }
  sma->sem_perm.key = key;
  sma->sem_perm.mode = 0600;
  sma->sem_nsems = nsems;
  INIT_LIST_HEAD(&sma->pending_alter);
  INIT_LIST_HEAD(&sma->pending_const);
  for (int i = 0; i < nsems; ++i) {
    sma->sems[i].semval = 0;
    sma->sems[i].sempid = 0;
    INIT_LIST_HEAD(&sma->sems[i].pending_alter);
    INIT_LIST_HEAD(&sma->sems[i].pending_const);
  }
  if (AllocId(&ns_->ids[kIpcSemIds], &sma->sem_perm) < 0) {
    slabs_->Free(sem_cache_, sma);
    return nullptr;
  }
  return sma;
}

bool IpcSubsystem::SemOp(sem_array* sma, int semnum, int delta, int pid) {
  if (semnum < 0 || semnum >= sma->sem_nsems) {
    return false;
  }
  sem_sim* sem = &sma->sems[semnum];
  int next = sem->semval + delta;
  if (next < 0) {
    return false;  // would block; the simulation treats it as EAGAIN
  }
  sem->semval = next;
  sem->sempid = pid;
  return true;
}

msg_queue* IpcSubsystem::MsgGet(uint64_t key) {
  auto* q = slabs_->AllocAs<msg_queue>(msq_cache_);
  if (q == nullptr) {
    return nullptr;
  }
  q->q_perm.key = key;
  q->q_perm.mode = 0600;
  q->q_qbytes = 16384;
  INIT_LIST_HEAD(&q->q_messages);
  INIT_LIST_HEAD(&q->q_receivers);
  INIT_LIST_HEAD(&q->q_senders);
  if (AllocId(&ns_->ids[kIpcMsgIds], &q->q_perm) < 0) {
    slabs_->Free(msq_cache_, q);
    return nullptr;
  }
  return q;
}

bool IpcSubsystem::MsgSend(msg_queue* q, int64_t type, uint64_t size) {
  if (q->q_cbytes + size > q->q_qbytes) {
    return false;
  }
  auto* msg = slabs_->AllocAs<msg_msg>(msg_cache_);
  if (msg == nullptr) {
    return false;
  }
  msg->m_type = type;
  msg->m_ts = size;
  list_add_tail(&msg->m_list, &q->q_messages);
  q->q_cbytes += size;
  q->q_qnum++;
  q->q_stime++;
  return true;
}

uint64_t IpcSubsystem::MsgReceive(msg_queue* q) {
  if (list_empty(&q->q_messages)) {
    return 0;
  }
  msg_msg* msg = VKERN_CONTAINER_OF(q->q_messages.next, msg_msg, m_list);
  uint64_t size = msg->m_ts;
  list_del(&msg->m_list);
  q->q_cbytes -= size;
  q->q_qnum--;
  q->q_rtime++;
  slabs_->Free(msg_cache_, msg);
  return size;
}

}  // namespace vkern
