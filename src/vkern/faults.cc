#include "src/vkern/faults.h"

#include <cstring>

namespace vkern {

StackRotReport RunStackRotScenario(Kernel* kernel, task_struct* victim) {
  StackRotReport report;
  report.victim_task = victim;
  mm_struct* mm = victim->mm;
  report.mm = mm;
  if (mm == nullptr) {
    return report;
  }
  MapleTreeOps& maple = kernel->maple();
  RcuSubsystem& rcu = kernel->rcu();

  // CPU#1: find_vma_prev() under mm_read_lock — mas_walk fetches a node
  // pointer. Crucially this is *not* an rcu_read_lock section; the mmap read
  // lock does not hold off the RCU grace period.
  uint64_t probe = mm->start_stack;
  maple_node* fetched = maple.LeafContaining(&mm->mm_mt, probe);
  if (fetched == nullptr) {
    return report;
  }
  report.fetched_node = fetched;
  report.fetched_addr = reinterpret_cast<uint64_t>(fetched);

  // CPU#0: expand_stack() -> mas_store_prealloc() rebuilds the leaf and frees
  // the old node via ma_free_rcu -> call_rcu.
  maple_node* freed = maple.RebuildLeaf(&mm->mm_mt, probe);
  (void)freed;

  // The node now sits on CPU#0's RCU callback list, awaiting a grace period.
  rcu_data* rdp = kernel->rcu_data_array();
  for (rcu_head* head = rdp[0].cblist_head; head != nullptr; head = head->next) {
    if (VKERN_CONTAINER_OF(head, maple_node, rcu) == fetched) {
      report.node_was_on_cblist = true;
      break;
    }
  }
  report.cblist_len_at_free = rcu.pending_callbacks();

  // CPU#0 drops its lock; both CPUs pass quiescent states (the reader on
  // CPU#1 never entered an RCU read-side critical section), so the grace
  // period completes and rcu_do_batch frees the node into the slab.
  rcu.Synchronize();
  report.grace_period_completed = (rcu.pending_callbacks() == 0);

  // CPU#1: mas_prev() dereferences its stale pointer — the memory now carries
  // slab free-poison: a use-after-free.
  report.first_poison_byte = reinterpret_cast<const uint8_t*>(fetched)[sizeof(uint32_t)];
  report.uaf_detected =
      SlabAllocator::IsPoisoned(fetched, kernel->maple().node_cache()->object_size);
  return report;
}

DirtyPipeReport RunDirtyPipeScenario(Kernel* kernel, task_struct* attacker, bool vulnerable) {
  DirtyPipeReport report;
  FsManager& fs = kernel->fs();

  // The victim: a read-only file whose pages sit in the page cache.
  inode* ino = fs.CreateInode(kernel->ext4_sb(), kSIfReg | 0444, 4096);
  dentry* dent = fs.CreateDentry("test.txt", ino, kernel->ext4_sb()->s_root);
  file* victim = fs.OpenFile(dent, 0 /* O_RDONLY */);
  report.victim_file = victim;
  if (attacker != nullptr && attacker->files != nullptr) {
    fs.InstallFd(attacker->files, victim);
  }
  page* cache_page = fs.PageCacheGrab(ino, 0);
  uint8_t original = static_cast<uint8_t*>(kernel->buddy().PageAddress(cache_page))[8];
  report.original_byte = original;

  // The attacker's pipe.
  file* rd = nullptr;
  file* wr = nullptr;
  pipe_inode_info* pipe = fs.CreatePipe(kernel->pipefs_sb(), &rd, &wr);
  report.pipe = pipe;
  if (attacker != nullptr && attacker->files != nullptr) {
    fs.InstallFd(attacker->files, rd);
    fs.InstallFd(attacker->files, wr);
  }

  // Phase 1: fill the whole ring with ordinary writes (every anon buffer gets
  // PIPE_BUF_FLAG_CAN_MERGE), then drain it — the flags stay behind in the
  // ring slots.
  char junk[kPageSize];
  std::memset(junk, 'j', sizeof(junk));
  for (uint32_t i = 0; i < pipe->ring_size; ++i) {
    fs.PipeWrite(pipe, junk, kPageSize);
  }
  for (uint32_t i = 0; i < pipe->ring_size; ++i) {
    fs.PipeRead(pipe, kPageSize);
  }

  // Phase 2: splice the file into the pipe. With the bug, the reused slot's
  // stale CAN_MERGE flag survives on a page-cache-backed buffer.
  fs.SpliceFileToPipe(victim, 0, pipe, 8, vulnerable);
  uint32_t idx = (pipe->head - 1) & (pipe->ring_size - 1);
  report.buggy_buf_index = idx;
  pipe_buffer* buf = &pipe->bufs[idx];
  report.shared_page = buf->page_;
  report.buggy_buf_flags = buf->flags;
  report.can_merge_leaked = (buf->flags & PIPE_BUF_FLAG_CAN_MERGE) != 0;

  // Phase 3: the attacker writes to the pipe. With CAN_MERGE set the bytes
  // merge into the *page-cache page*, corrupting the read-only file.
  const char payload[] = "0wned";
  fs.PipeWrite(pipe, payload, sizeof(payload) - 1);

  uint8_t now = static_cast<uint8_t*>(kernel->buddy().PageAddress(cache_page))[8];
  report.corrupted_byte = now;
  report.file_content_corrupted = (now != original);
  return report;
}

}  // namespace vkern
