// IRQ descriptors and action chains (ULK Figure 4-5).

#ifndef SRC_VKERN_IRQ_H_
#define SRC_VKERN_IRQ_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class IrqSubsystem {
 public:
  // `descs` is the in-arena irq_desc[kNrIrqs] array.
  IrqSubsystem(irq_desc* descs, SlabAllocator* slabs);

  // request_irq: appends a handler to the IRQ's action chain (shared IRQs
  // chain multiple irqaction entries).
  irqaction* RequestIrq(uint32_t irq, std::string_view name, void (*handler)(int, void*),
                        void* dev_id, uint32_t flags);
  void FreeIrq(uint32_t irq, void* dev_id);

  // Fires the IRQ: walks the action chain, invoking every handler.
  uint64_t Raise(uint32_t irq);

  irq_desc* desc(uint32_t irq) { return &descs_[irq]; }
  irq_chip* chip() { return chip_; }
  uint32_t action_count(uint32_t irq) const;

 private:
  irq_desc* descs_;
  SlabAllocator* slabs_;
  kmem_cache* action_cache_;
  irq_chip* chip_;  // a single "IO-APIC" style chip, in the arena
};

}  // namespace vkern

#endif  // SRC_VKERN_IRQ_H_
