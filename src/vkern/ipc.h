// System-V IPC: semaphore sets and message queues (ULK Figures 19-1/19-2).

#ifndef SRC_VKERN_IPC_H_
#define SRC_VKERN_IPC_H_

#include <cstdint>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

inline constexpr int kIpcSemIds = 0;
inline constexpr int kIpcMsgIds = 1;
inline constexpr int kIpcShmIds = 2;

class IpcSubsystem {
 public:
  // `ns` is the in-arena ipc_namespace.
  IpcSubsystem(ipc_namespace* ns, SlabAllocator* slabs);

  // semget(): a semaphore set with `nsems` semaphores (<= kSemsMax).
  sem_array* SemGet(uint64_t key, int nsems);
  // semop() on one semaphore: adjusts semval (never below zero; clamped).
  bool SemOp(sem_array* sma, int semnum, int delta, int pid);

  // msgget(): a message queue.
  msg_queue* MsgGet(uint64_t key);
  // msgsnd(): enqueues a message of `size` bytes with the given type.
  bool MsgSend(msg_queue* q, int64_t type, uint64_t size);
  // msgrcv(): dequeues the first message; returns its size or 0.
  uint64_t MsgReceive(msg_queue* q);

  ipc_namespace* ns() { return ns_; }
  int sem_count() const { return ns_->ids[kIpcSemIds].in_use; }
  int msg_count() const { return ns_->ids[kIpcMsgIds].in_use; }

 private:
  int AllocId(ipc_ids* ids, kern_ipc_perm* perm);

  ipc_namespace* ns_;
  SlabAllocator* slabs_;
  kmem_cache* sem_cache_;
  kmem_cache* msq_cache_;
  kmem_cache* msg_cache_;
  uint64_t seq_ = 0;
};

}  // namespace vkern

#endif  // SRC_VKERN_IPC_H_
