// Maple tree (Linux 6.1 lib/maple_tree.c, functional subset).
//
// A range-based B-tree storing non-overlapping [start, last] -> entry ranges;
// this is the structure that replaced the VMA rbtree and that the paper's
// Figures 3/4 visualize. We reproduce the aspects the visualization and the
// StackRot case study depend on:
//
//   * encoded node pointers (maple_enode): type bits compacted into the
//     pointer, decoded with mte_to_node / mte_node_type / xa_is_node;
//   * encoded parent pointers (maple_pnode): slot index + root marker + parent
//     type compacted into the pointer's low byte;
//   * two node widths: 16-slot leaves (maple_leaf_64) and, when the tree
//     tracks gaps (MT_FLAGS_ALLOC_RANGE), 10-slot maple_arange_64 internal
//     nodes with per-child gap arrays;
//   * copy-on-write stores: a modified node is replaced by a fresh copy and
//     the old node is released through call_rcu (ma_free_rcu), which is the
//     exact mechanism CVE-2023-3269 races against.
//
// Writers are assumed externally serialized (mmap_lock), as in Linux.

#ifndef SRC_VKERN_MAPLE_H_
#define SRC_VKERN_MAPLE_H_

#include <cstdint>
#include <functional>

#include "src/vkern/kstructs.h"
#include "src/vkern/rcu.h"
#include "src/vkern/slab.h"

namespace vkern {

// --- Pointer encoding helpers (mirrored into the debugger helper registry) ---

inline maple_enode mt_mk_node(const maple_node* node, maple_type type) {
  return reinterpret_cast<uintptr_t>(node) | (static_cast<uintptr_t>(type) << 3) | 2u;
}

inline maple_node* mte_to_node(maple_enode enode) {
  return reinterpret_cast<maple_node*>(enode & ~uintptr_t{0xff});
}

inline maple_type mte_node_type(maple_enode enode) {
  return static_cast<maple_type>((enode >> 3) & 0xf);
}

// True if the entry stored in a slot (or ma_root) is an internal node pointer
// rather than a user entry. User entries (slab objects) are 8-byte aligned, so
// bit 1 discriminates.
inline bool xa_is_node(const void* entry) {
  return entry != nullptr && (reinterpret_cast<uintptr_t>(entry) & 2u) != 0;
}

inline bool ma_is_leaf(maple_type type) { return type < maple_range_64; }

inline bool mte_is_leaf(maple_enode enode) { return ma_is_leaf(mte_node_type(enode)); }

// Parent encoding: bit 0 = root marker (the pointer is the maple_tree), bits
// 1..4 = slot in parent, bits 5..6 = parent maple_type - maple_range_64.
inline maple_pnode ma_encode_parent(const maple_node* parent, uint32_t slot, maple_type ptype) {
  return reinterpret_cast<uintptr_t>(parent) | (static_cast<uintptr_t>(slot) << 1) |
         (static_cast<uintptr_t>(ptype - maple_range_64) << 5);
}

inline maple_pnode ma_encode_root_parent(const maple_tree* tree) {
  return reinterpret_cast<uintptr_t>(tree) | 1u;
}

inline bool ma_is_root(const maple_node* node) { return (node->parent & 1u) != 0; }

inline maple_node* ma_parent_node(const maple_node* node) {
  return reinterpret_cast<maple_node*>(node->parent & ~uintptr_t{0xff});
}

inline uint32_t ma_parent_slot(const maple_node* node) {
  return static_cast<uint32_t>((node->parent >> 1) & 0xf);
}

inline maple_type ma_parent_type(const maple_node* node) {
  return static_cast<maple_type>(((node->parent >> 5) & 0x3) + maple_range_64);
}

// Slot/pivot counts per node type.
inline uint32_t mt_slots(maple_type type) {
  return type == maple_arange_64 ? kMapleArange64Slots : kMapleRange64Slots;
}
inline uint32_t mt_pivots(maple_type type) { return mt_slots(type) - 1; }

// Upper bound of the index space (ULONG_MAX).
inline constexpr uint64_t kMtMaxIndex = ~0ull;

// --- Tree operations ---

class MapleTreeOps {
 public:
  // Nodes come from a dedicated "maple_node" slab cache (256-byte aligned);
  // deferred frees go through `rcu` on behalf of `write_cpu`.
  MapleTreeOps(SlabAllocator* slabs, RcuSubsystem* rcu);

  void Init(maple_tree* mt, uint32_t flags);

  // Stores `entry` over [start, last]. The target range must currently be
  // empty (a gap) — VMA semantics. Returns false on overlap or OOM. A range
  // spanning several leaves takes the slow path (full rebuild with RCU-
  // deferred frees), mirroring the kernel's spanning-store subtree rewrite.
  bool StoreRange(maple_tree* mt, uint64_t start, uint64_t last, void* entry);

  // Erases the occupied range containing `index`; returns the old entry.
  void* Erase(maple_tree* mt, uint64_t index);

  // mas_walk: the entry whose range contains `index` (nullptr if a gap).
  void* Find(const maple_tree* mt, uint64_t index) const;

  // In-order traversal of occupied ranges.
  void ForEach(const maple_tree* mt,
               const std::function<void(uint64_t start, uint64_t last, void* entry)>& fn) const;

  // Finds the lowest gap of at least `size` within [lo, hi]; returns true and
  // sets *out_start on success (uses arange gap metadata when available).
  bool FindEmptyArea(const maple_tree* mt, uint64_t lo, uint64_t hi, uint64_t size,
                     uint64_t* out_start) const;

  uint64_t CountEntries(const maple_tree* mt) const;
  int Height(const maple_tree* mt) const;

  // Frees every node (not the entries); the tree becomes empty.
  void Destroy(maple_tree* mt);

  // The leaf node whose range covers `index` (nullptr for empty/direct root).
  maple_node* LeafContaining(const maple_tree* mt, uint64_t index) const;

  // Copy-on-write rebuild of the leaf covering `index`: a fresh node replaces
  // it and the old one is queued for RCU free — the mas_store_prealloc path
  // the StackRot CVE races with. Returns the *old* (now pending-free) node.
  maple_node* RebuildLeaf(maple_tree* mt, uint64_t index);

  // Structural invariants check; returns false with a reason for tests.
  bool Validate(const maple_tree* mt, std::string* why = nullptr) const;

  kmem_cache* node_cache() { return node_cache_; }

  // The RCU callback used for deferred node frees (symbolized as
  // "mt_free_rcu" in the kernel symbol table).
  static void MtFreeRcu(rcu_head* head);

 private:
  struct SplitResult {
    maple_enode left = 0;
    maple_enode right = 0;   // 0 when no split happened
    uint64_t split_pivot = 0;  // last index covered by `left`
  };

  maple_node* AllocNode();
  void FreeNodeRcu(maple_node* node);

  // Rewrites the leaf covering [start,last] (whose bounds are [min,max]) with
  // the new entry inserted; may split. Fills `result` with replacements.
  bool StoreInLeaf(maple_node* leaf, maple_type type, uint64_t min, uint64_t max, uint64_t start,
                   uint64_t last, void* entry, SplitResult* result);

  // Slow path for ranges that cross subtree boundaries: verifies the target
  // range is a gap, then rebuilds the tree with the new range included.
  bool StoreSpanning(maple_tree* mt, uint64_t start, uint64_t last, void* entry);

  void SetChildParent(maple_enode child, maple_node* parent, uint32_t slot, maple_type ptype);

  // Re-descends toward `index` refreshing arange gap entries bottom-up.
  void RefreshGapsAlongPath(maple_tree* mt, uint64_t index);

  // Full-descent max-gap computation (diagnostics; ChildMaxGap is the cheap
  // incremental variant used on the write paths).
  uint64_t SubtreeMaxGap(maple_enode enode, uint64_t min, uint64_t max) const;

  SlabAllocator* slabs_;
  RcuSubsystem* rcu_;
  kmem_cache* node_cache_;
  int write_cpu_ = 0;
};

// Number of used slots in the node: pivots are monotonically increasing and a
// zero pivot (beyond slot 0) terminates the data, as in ma_data_end().
uint32_t ma_data_end(const maple_node* node, maple_type type, uint64_t max);

}  // namespace vkern

#endif  // SRC_VKERN_MAPLE_H_
