#include "src/vkern/net.h"

namespace vkern {

NetSubsystem::NetSubsystem(SlabAllocator* slabs, FsManager* fs, super_block* sockfs_sb)
    : slabs_(slabs), fs_(fs), sockfs_sb_(sockfs_sb) {
  socket_cache_ = slabs_->CreateCache("sock_inode_cache", sizeof(socket));
  sock_cache_ = slabs_->CreateCache("UNIX", sizeof(sock));
  skb_cache_ = slabs_->CreateCache("skbuff_head_cache", sizeof(sk_buff));
}

void NetSubsystem::SkbQueueTail(sk_buff_head* head, sk_buff* skb) {
  // sk_buff_head aliases the first two pointers of sk_buff, forming a ring.
  auto* head_as_skb = reinterpret_cast<sk_buff*>(head);
  sk_buff* prev = head->prev != nullptr ? head->prev : head_as_skb;
  skb->next = head_as_skb;
  skb->prev = prev;
  prev->next = skb;
  head->prev = skb;
  if (head->next == nullptr) {
    head->next = skb;
  }
  head->qlen++;
}

sk_buff* NetSubsystem::SkbDequeue(sk_buff_head* head) {
  auto* head_as_skb = reinterpret_cast<sk_buff*>(head);
  sk_buff* skb = head->next;
  if (skb == nullptr || skb == head_as_skb) {
    return nullptr;
  }
  head->next = skb->next;
  if (skb->next == head_as_skb || skb->next == nullptr) {
    head->next = nullptr;
    head->prev = nullptr;
  } else {
    skb->next->prev = head_as_skb;
  }
  head->qlen--;
  skb->next = nullptr;
  skb->prev = nullptr;
  return skb;
}

socket* NetSubsystem::CreateSocket() {
  auto* sock_wrap = slabs_->AllocAs<socket>(socket_cache_);
  auto* sk = slabs_->AllocAs<sock>(sock_cache_);
  sock_wrap->state = SS_UNCONNECTED;
  sock_wrap->type = SOCK_STREAM;
  sock_wrap->sk = sk;
  sk->skc_family = AF_UNIX;
  sk->skc_state = 1;  // TCP_ESTABLISHED-ish once connected
  sk->sk_rcvbuf = 212992;
  sk->sk_sndbuf = 212992;
  sk->sk_receive_queue.next = nullptr;
  sk->sk_receive_queue.prev = nullptr;
  sk->sk_receive_queue.qlen = 0;
  sk->sk_write_queue.next = nullptr;
  sk->sk_write_queue.prev = nullptr;
  sk->sk_write_queue.qlen = 0;
  sk->sk_socket = sock_wrap;
  return sock_wrap;
}

bool NetSubsystem::SocketPair(file** a, file** b) {
  socket* sa = CreateSocket();
  socket* sb = CreateSocket();
  sa->sk->sk_peer = sb->sk;
  sb->sk->sk_peer = sa->sk;
  sa->state = SS_CONNECTED;
  sb->state = SS_CONNECTED;

  inode* ia = fs_->CreateInode(sockfs_sb_, kSIfSock | 0777, 0);
  inode* ib = fs_->CreateInode(sockfs_sb_, kSIfSock | 0777, 0);
  dentry* da = fs_->CreateDentry("socket:", ia, nullptr);
  dentry* db = fs_->CreateDentry("socket:", ib, nullptr);
  file* fa = fs_->OpenFile(da, 2 /* O_RDWR */);
  file* fb = fs_->OpenFile(db, 2 /* O_RDWR */);
  fa->private_data = sa;
  fb->private_data = sb;
  sa->file_ = fa;
  sb->file_ = fb;
  *a = fa;
  *b = fb;
  return true;
}

sk_buff* NetSubsystem::AllocSkb(uint32_t len) {
  auto* skb = slabs_->AllocAs<sk_buff>(skb_cache_);
  skb->len = len;
  skb->data_len = len;
  skb->data = nullptr;
  return skb;
}

bool NetSubsystem::SendBytes(socket* from, uint32_t len) {
  sock* sk = from->sk;
  if (sk == nullptr || sk->sk_peer == nullptr) {
    return false;
  }
  sk_buff* skb = AllocSkb(len);
  if (skb == nullptr) {
    return false;
  }
  SkbQueueTail(&sk->sk_peer->sk_receive_queue, skb);
  return true;
}

uint32_t NetSubsystem::ReceiveOne(socket* sock_) {
  sk_buff* skb = SkbDequeue(&sock_->sk->sk_receive_queue);
  if (skb == nullptr) {
    return 0;
  }
  uint32_t len = skb->len;
  slabs_->Free(skb_cache_, skb);
  return len;
}

}  // namespace vkern
