#include "src/vkern/sched.h"

#include <cassert>

namespace vkern {

Scheduler::Scheduler(rq* runqueues) : runqueues_(runqueues) {}

void Scheduler::InitRq(int cpu, task_struct* idle) {
  rq* q = &runqueues_[cpu];
  q->cpu = static_cast<uint32_t>(cpu);
  q->nr_running = 0;
  q->clock = 0;
  q->cfs.load.weight = 0;
  q->cfs.load.inv_weight = 0;
  q->cfs.nr_running = 0;
  q->cfs.min_vruntime = 0;
  q->cfs.tasks_timeline.rb_root_.rb_node_ = nullptr;
  q->cfs.tasks_timeline.rb_leftmost = nullptr;
  q->cfs.curr = nullptr;
  q->curr = idle;
  q->idle = idle;
  if (idle != nullptr) {
    idle->on_cpu = cpu;
    idle->__state = TASK_RUNNING;
  }
}

void Scheduler::EnqueueEntity(cfs_rq* cfs, sched_entity* se) {
  rb_node** link = &cfs->tasks_timeline.rb_root_.rb_node_;
  rb_node* parent = nullptr;
  bool leftmost = true;
  while (*link != nullptr) {
    parent = *link;
    sched_entity* other = VKERN_CONTAINER_OF(parent, sched_entity, run_node);
    if (se->vruntime < other->vruntime) {
      link = &parent->rb_left;
    } else {
      link = &parent->rb_right;
      leftmost = false;
    }
  }
  rb_link_node(&se->run_node, parent, link);
  rb_insert_color_cached(&se->run_node, &cfs->tasks_timeline, leftmost);
  se->on_rq = 1;
  cfs->nr_running++;
  cfs->load.weight += se->load.weight;
}

void Scheduler::DequeueEntity(cfs_rq* cfs, sched_entity* se) {
  assert(se->on_rq == 1);
  rb_erase_cached(&se->run_node, &cfs->tasks_timeline);
  se->on_rq = 0;
  cfs->nr_running--;
  cfs->load.weight -= se->load.weight;
}

void Scheduler::UpdateMinVruntime(cfs_rq* cfs) {
  uint64_t min = cfs->min_vruntime;
  if (cfs->curr != nullptr && cfs->curr->vruntime > min) {
    min = cfs->curr->vruntime;
  }
  rb_node* leftmost = rb_first_cached(&cfs->tasks_timeline);
  if (leftmost != nullptr) {
    sched_entity* se = VKERN_CONTAINER_OF(leftmost, sched_entity, run_node);
    if (se->vruntime < min) {
      min = se->vruntime;
    }
  }
  if (min > cfs->min_vruntime) {
    cfs->min_vruntime = min;
  }
}

void Scheduler::Enqueue(int cpu, task_struct* task) {
  rq* q = &runqueues_[cpu];
  if (task->se.load.weight == 0) {
    task->se.load.weight = kNiceZeroWeight;
  }
  // Place new arrivals near min_vruntime so they do not monopolize the CPU.
  if (task->se.vruntime < q->cfs.min_vruntime) {
    task->se.vruntime = q->cfs.min_vruntime;
  }
  EnqueueEntity(&q->cfs, &task->se);
  q->nr_running++;
  task->__state = TASK_RUNNING;
  task->on_cpu = cpu;
}

void Scheduler::Dequeue(int cpu, task_struct* task) {
  rq* q = &runqueues_[cpu];
  if (task->se.on_rq == 0) {
    if (q->curr == task) {
      q->curr = q->idle;
      q->cfs.curr = nullptr;
    }
    return;
  }
  DequeueEntity(&q->cfs, &task->se);
  q->nr_running--;
  if (q->curr == task) {
    q->curr = q->idle;
    q->cfs.curr = nullptr;
  }
}

task_struct* Scheduler::PickNext(int cpu) {
  rq* q = &runqueues_[cpu];
  rb_node* leftmost = rb_first_cached(&q->cfs.tasks_timeline);
  if (leftmost == nullptr) {
    return q->idle;
  }
  sched_entity* se = VKERN_CONTAINER_OF(leftmost, sched_entity, run_node);
  return VKERN_CONTAINER_OF(se, task_struct, se);
}

task_struct* Scheduler::Tick(int cpu) {
  rq* q = &runqueues_[cpu];
  q->clock += kSchedTickNs;

  task_struct* curr = q->curr;
  if (curr != nullptr && curr != q->idle) {
    // Charge the tick to the current task (nice-0: wall time == vruntime).
    curr->se.vruntime += kSchedTickNs * kNiceZeroWeight / curr->se.load.weight;
    curr->se.sum_exec_runtime += kSchedTickNs;
    curr->utime += kSchedTickNs;
  }

  // Preemption check: run the leftmost entity if it beats the current one.
  task_struct* next = PickNext(cpu);
  if (next != q->idle &&
      (curr == nullptr || curr == q->idle ||
       next->se.vruntime + kSchedTickNs < curr->se.vruntime)) {
    if (curr != nullptr && curr != q->idle && curr->se.on_rq == 0 &&
        curr->__state == TASK_RUNNING) {
      // The previous current is still runnable: requeue it.
      EnqueueEntity(&q->cfs, &curr->se);
    }
    DequeueEntity(&q->cfs, &next->se);
    q->curr = next;
    q->cfs.curr = &next->se;
    next->se.exec_start = q->clock;
  }
  UpdateMinVruntime(&q->cfs);
  return q->curr;
}

}  // namespace vkern
