// Buddy page allocator over the Arena (ULK Figure 8-2).
//
// The arena is carved into: [zone descriptor][mem_map page descriptors][pool].
// The zone and mem_map live inside the arena so the debugger can read them as
// target memory, just as GDB reads a kernel's mem_map.

#ifndef SRC_VKERN_BUDDY_H_
#define SRC_VKERN_BUDDY_H_

#include <cstddef>
#include <cstdint>

#include "src/vkern/arena.h"
#include "src/vkern/kstructs.h"

namespace vkern {

class BuddyAllocator {
 public:
  explicit BuddyAllocator(Arena* arena);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  // Allocates 2^order contiguous pages; returns the head page descriptor or
  // nullptr when the zone is exhausted.
  page* AllocPages(int order);
  void FreePages(page* pg, int order);

  // One-page conveniences.
  page* AllocPage() { return AllocPages(0); }
  void FreePage(page* pg) { FreePages(pg, 0); }

  void* PageAddress(const page* pg) const;
  page* VirtToPage(const void* addr) const;
  uint64_t PageToPfn(const page* pg) const;
  page* PfnToPage(uint64_t pfn) const;

  zone* zone_desc() { return zone_; }
  page* mem_map() { return mem_map_; }
  size_t nr_pool_pages() const { return nr_pool_pages_; }
  uint64_t free_pages() const { return zone_->free_pages; }

  // Validation for tests: every free list entry sane, totals consistent.
  bool Validate() const;

 private:
  void SplitAndTake(page* pg, int high_order, int want_order);
  page* BuddyOf(page* pg, int order) const;

  Arena* arena_;
  zone* zone_;
  page* mem_map_;
  uint8_t* pool_base_;       // first byte of the page pool
  size_t nr_pool_pages_;
  uint64_t pool_start_pfn_;  // pfn of pool_base_ (absolute, arena-based)
};

}  // namespace vkern

#endif  // SRC_VKERN_BUDDY_H_
