// kobject / kset hierarchy and a minimal device model (ULK Figure 13-3).

#ifndef SRC_VKERN_KOBJECT_H_
#define SRC_VKERN_KOBJECT_H_

#include <cstdint>
#include <string_view>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class DeviceModel {
 public:
  explicit DeviceModel(SlabAllocator* slabs);

  kset* CreateKset(std::string_view name, kobject* parent);
  void KobjectInit(kobject* kobj, std::string_view name, kobject* parent, kset* owner);

  bus_type* RegisterBus(std::string_view name);
  device_driver* RegisterDriver(bus_type* bus, std::string_view name);
  device* RegisterDevice(bus_type* bus, std::string_view name, device* parent, uint64_t devt);
  // Binds a device to a driver (probe success).
  void BindDevice(device* dev, device_driver* drv);

  kset* devices_root() { return devices_root_; }
  uint32_t device_count(const bus_type* bus) const { return count(&bus->devices_list); }
  uint32_t driver_count(const bus_type* bus) const { return count(&bus->drivers_list); }

 private:
  static uint32_t count(const list_head* head) { return static_cast<uint32_t>(list_count(head)); }

  SlabAllocator* slabs_;
  kmem_cache* kset_cache_;
  kmem_cache* bus_cache_;
  kmem_cache* driver_cache_;
  kmem_cache* device_cache_;
  kset* devices_root_;  // /sys/devices analogue
};

}  // namespace vkern

#endif  // SRC_VKERN_KOBJECT_H_
