// Radix tree (page-cache index, ULK Figure 15-1).
//
// Linux 6.x wraps this machinery in the XArray; ULK's figure and the paper's
// Table 2 entry #13 visualize the underlying radix-tree node structure, so we
// keep the classic radix_tree_node layout (64 slots per node).

#ifndef SRC_VKERN_RADIX_H_
#define SRC_VKERN_RADIX_H_

#include <cstdint>
#include <functional>

#include "src/vkern/kstructs.h"
#include "src/vkern/slab.h"

namespace vkern {

class RadixTreeOps {
 public:
  explicit RadixTreeOps(SlabAllocator* slabs);

  // Inserts `item` at `index`; replaces any existing entry. Returns false only
  // on allocation failure.
  bool Insert(radix_tree_root* root, uint64_t index, void* item);

  // Returns the entry at `index`, or nullptr.
  void* Lookup(const radix_tree_root* root, uint64_t index) const;

  // Removes and returns the entry at `index` (no node reclamation — matching
  // the lazy shrinking of the real tree closely enough for visualization).
  void* Delete(radix_tree_root* root, uint64_t index);

  // In-order traversal of all present entries.
  void ForEach(const radix_tree_root* root,
               const std::function<void(uint64_t index, void* item)>& fn) const;

  uint64_t CountEntries(const radix_tree_root* root) const;

  kmem_cache* node_cache() { return node_cache_; }

 private:
  radix_tree_node* NewNode(uint8_t shift, uint8_t offset, radix_tree_node* parent);
  void ForEachNode(const radix_tree_node* node, uint64_t prefix,
                   const std::function<void(uint64_t, void*)>& fn) const;

  SlabAllocator* slabs_;
  kmem_cache* node_cache_;
};

}  // namespace vkern

#endif  // SRC_VKERN_RADIX_H_
