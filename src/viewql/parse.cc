#include "src/viewql/parse.h"

#include <cctype>

#include "src/support/str.h"

namespace viewql {

vl::StatusOr<std::vector<Token>> LexViewQl(std::string_view src) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  size_t line_start = 0;  // byte offset of the current line's first character
  auto col_of = [&](size_t p) { return static_cast<int>(p - line_start) + 1; };
  size_t tok_start = 0;
  auto push = [&](Tok kind, std::string text, int64_t ival = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.ival = ival;
    t.line = line;
    t.col = col_of(tok_start);
    t.offset = tok_start;
    t.length = pos - tok_start;
    out.push_back(std::move(t));
  };
  while (pos < src.size()) {
    char c = src[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      line_start = pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < src.size() && src[pos + 1] == '/') {
      while (pos < src.size() && src[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (c == '-' && pos + 1 < src.size() && src[pos + 1] == '-') {  // SQL comment
      while (pos < src.size() && src[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    tok_start = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[pos])) || src[pos] == '_')) {
        ++pos;
      }
      push(Tok::kIdent, std::string(src.substr(start, pos - start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      int base = 10;
      if (c == '0' && pos + 1 < src.size() && (src[pos + 1] == 'x' || src[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
      }
      int64_t value = 0;
      while (pos < src.size()) {
        char d = static_cast<char>(std::tolower(static_cast<unsigned char>(src[pos])));
        int digit;
        if (d >= '0' && d <= '9') {
          digit = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          digit = d - 'a' + 10;
        } else {
          break;
        }
        value = value * base + digit;
        ++pos;
      }
      push(Tok::kInt, std::string(src.substr(start, pos - start)), value);
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      size_t start = pos;
      while (pos < src.size() && src[pos] != quote) {
        ++pos;
      }
      if (pos >= src.size()) {
        return vl::ParseError(vl::StrFormat("unterminated string at %d:%d", line,
                                            col_of(tok_start)));
      }
      std::string text(src.substr(start, pos - start));
      ++pos;  // closing quote (included in the token's span)
      push(Tok::kString, std::move(text));
      continue;
    }
    // Angle-bracket placeholders like <fetched_node_address> are template
    // holes; reject with a clear message.
    for (std::string_view two : {"==", "!=", "<=", ">=", "->"}) {
      if (src.substr(pos, 2) == two) {
        pos += 2;
        push(Tok::kPunct, std::string(two));
        goto next;
      }
    }
    {
      static const std::string_view kOne = "=<>*\\&|(),:.";
      if (kOne.find(c) == std::string_view::npos) {
        return vl::ParseError(vl::StrFormat("unexpected character '%c' at %d:%d", c, line,
                                            col_of(pos)));
      }
      ++pos;
      push(Tok::kPunct, std::string(1, c));
    }
  next:;
  }
  tok_start = pos;
  push(Tok::kEnd, "");
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  vl::StatusOr<std::vector<Statement>> Run() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (IsKeyword("UPDATE")) {
        Statement stmt;
        stmt.kind = Statement::Kind::kUpdate;
        VL_RETURN_IF_ERROR(ParseUpdate(&stmt.update));
        out.push_back(std::move(stmt));
      } else if (Cur().kind == Tok::kIdent && Peek(1).kind == Tok::kPunct &&
                 Peek(1).text == "=") {
        Statement stmt;
        stmt.kind = Statement::Kind::kSelect;
        stmt.select.result_name = Cur().text;
        stmt.select.result_span = Cur().span();
        Advance();
        Advance();  // '='
        VL_RETURN_IF_ERROR(ParseSelect(&stmt.select));
        out.push_back(std::move(stmt));
      } else {
        return Err("expected 'name = SELECT ...' or 'UPDATE ...'");
      }
    }
    return out;
  }

 private:
  const Token& Cur() const { return toks_[idx_]; }
  const Token& Peek(size_t n) const {
    size_t i = idx_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool AtEnd() const { return Cur().kind == Tok::kEnd; }
  void Advance() {
    if (!AtEnd()) {
      ++idx_;
    }
  }
  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == Tok::kIdent && vl::StrLower(Cur().text) == vl::StrLower(kw);
  }
  bool EatKeyword(std::string_view kw) {
    if (IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool IsPunct(std::string_view text) const {
    return Cur().kind == Tok::kPunct && Cur().text == text;
  }
  bool EatPunct(std::string_view text) {
    if (IsPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  vl::Status Err(std::string_view message) const {
    return vl::ParseError(vl::StrFormat("%.*s at %d:%d (near '%s')",
                                        static_cast<int>(message.size()), message.data(),
                                        Cur().line, Cur().col, Cur().text.c_str()));
  }

  // Extends `start` to cover everything up to the last consumed token.
  vl::Span SpanFrom(vl::Span start) const {
    if (idx_ > 0) {
      const Token& prev = toks_[idx_ - 1];
      size_t end = prev.offset + prev.length;
      if (end > start.offset) {
        start.length = end - start.offset;
      }
    }
    return start;
  }

  vl::Status ParseSelect(SelectStmt* stmt) {
    if (!EatKeyword("SELECT")) {
      return Err("expected SELECT");
    }
    stmt->type_span = Cur().span();
    if (EatPunct("*")) {
      // select everything from the source
    } else {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected a type name");
      }
      stmt->type_name = Cur().text;
      Advance();
      if (IsPunct(".") || IsPunct("->")) {
        stmt->item_span = Peek(1).span();
      }
      while (EatPunct(".") || EatPunct("->")) {
        if (Cur().kind != Tok::kIdent) {
          return Err("expected an item name");
        }
        stmt->item_path.push_back(Cur().text);
        Advance();
        stmt->item_span = SpanFrom(stmt->item_span);
      }
    }
    if (!EatKeyword("FROM")) {
      return Err("expected FROM");
    }
    VL_ASSIGN_OR_RETURN(stmt->source, ParseSetExpr());
    if (EatKeyword("AS")) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected an alias name");
      }
      stmt->alias = Cur().text;
      Advance();
    }
    if (EatKeyword("WHERE")) {
      stmt->has_where = true;
      VL_RETURN_IF_ERROR(ParseCondition(&stmt->where));
    }
    return vl::Status::Ok();
  }

  vl::Status ParseUpdate(UpdateStmt* stmt) {
    Advance();  // UPDATE
    VL_ASSIGN_OR_RETURN(stmt->target, ParseSetExpr());
    if (!EatKeyword("WITH")) {
      return Err("expected WITH");
    }
    while (true) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected an attribute name");
      }
      UpdateAttr attr;
      attr.name = Cur().text;
      attr.name_span = Cur().span();
      Advance();
      if (!EatPunct(":")) {
        return Err("expected ':' after attribute name");
      }
      attr.value_span = Cur().span();
      if (Cur().kind == Tok::kIdent || Cur().kind == Tok::kString) {
        attr.value = Cur().text;
        Advance();
      } else if (Cur().kind == Tok::kInt) {
        attr.value = Cur().text;
        Advance();
      } else {
        return Err("expected an attribute value");
      }
      stmt->attrs.push_back(std::move(attr));
      if (!EatPunct(",")) {
        break;
      }
    }
    return vl::Status::Ok();
  }

  vl::StatusOr<std::unique_ptr<SetExpr>> ParseSetExpr() {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> lhs, ParseSetTerm());
    while (IsPunct("\\") || IsPunct("&") || IsPunct("|")) {
      char op = Cur().text[0];
      vl::Span op_span = Cur().span();
      Advance();
      VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> rhs, ParseSetTerm());
      auto node = std::make_unique<SetExpr>();
      node->kind = SetExpr::Kind::kBinary;
      node->op = op;
      node->span = op_span;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  vl::StatusOr<std::unique_ptr<SetExpr>> ParseSetTerm() {
    auto node = std::make_unique<SetExpr>();
    node->span = Cur().span();
    if (EatPunct("*")) {
      node->kind = SetExpr::Kind::kAll;
      return node;
    }
    if (IsKeyword("REACHABLE") || IsKeyword("MEMBERS")) {
      bool reachable = IsKeyword("REACHABLE");
      Advance();
      if (!EatPunct("(")) {
        return Err("expected '(' after REACHABLE/MEMBERS");
      }
      node->kind = reachable ? SetExpr::Kind::kReachable : SetExpr::Kind::kMembers;
      VL_ASSIGN_OR_RETURN(node->arg, ParseSetExpr());
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return node;
    }
    if (EatPunct("(")) {
      VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> inner, ParseSetExpr());
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return inner;
    }
    if (Cur().kind != Tok::kIdent) {
      return Err("expected a set name");
    }
    node->kind = SetExpr::Kind::kName;
    node->name = Cur().text;
    Advance();
    return node;
  }

  vl::Status ParseCondition(Condition* cond) {
    // OR-of-ANDs; parentheses group sub-conditions which are inlined into DNF.
    VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> lhs, ParseAnd());
    cond->clauses = std::move(lhs);
    while (IsKeyword("OR")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> rhs, ParseAnd());
      for (auto& clause : rhs) {
        cond->clauses.push_back(std::move(clause));
      }
    }
    return vl::Status::Ok();
  }

  // Returns a DNF fragment (list of conjunctions).
  vl::StatusOr<std::vector<std::vector<CondExpr>>> ParseAnd() {
    VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> acc, ParsePrimaryCond());
    while (IsKeyword("AND")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> rhs, ParsePrimaryCond());
      // (A1|A2) AND (B1|B2) => distribute.
      std::vector<std::vector<CondExpr>> merged;
      for (const auto& a : acc) {
        for (const auto& b : rhs) {
          std::vector<CondExpr> clause = a;
          clause.insert(clause.end(), b.begin(), b.end());
          merged.push_back(std::move(clause));
        }
      }
      acc = std::move(merged);
    }
    return acc;
  }

  vl::StatusOr<std::vector<std::vector<CondExpr>>> ParsePrimaryCond() {
    if (EatPunct("(")) {
      Condition inner;
      VL_RETURN_IF_ERROR(ParseCondition(&inner));
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return inner.clauses;
    }
    CondExpr expr;
    if (Cur().kind != Tok::kIdent) {
      return Err("expected a member name");
    }
    expr.member.push_back(Cur().text);
    expr.member_span = Cur().span();
    Advance();
    while (EatPunct(".") || EatPunct("->")) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected a member name after '.'");
      }
      expr.member.push_back(Cur().text);
      Advance();
      expr.member_span = SpanFrom(expr.member_span);
    }
    if (IsKeyword("contains")) {
      expr.op = "contains";
      Advance();
    } else if (Cur().kind == Tok::kPunct &&
               (Cur().text == "==" || Cur().text == "!=" || Cur().text == "<" ||
                Cur().text == "<=" || Cur().text == ">" || Cur().text == ">=" ||
                Cur().text == "=")) {
      expr.op = Cur().text == "=" ? "==" : Cur().text;
      Advance();
    } else {
      return Err("expected a comparison operator");
    }
    // Value.
    expr.val_span = Cur().span();
    if (Cur().kind == Tok::kInt) {
      expr.val_kind = CondExpr::ValKind::kInt;
      expr.int_val = Cur().ival;
      Advance();
    } else if (Cur().kind == Tok::kString) {
      expr.val_kind = CondExpr::ValKind::kString;
      expr.str_val = Cur().text;
      Advance();
    } else if (IsKeyword("NULL")) {
      expr.val_kind = CondExpr::ValKind::kNull;
      Advance();
    } else if (IsKeyword("true") || IsKeyword("false")) {
      expr.val_kind = CondExpr::ValKind::kBool;
      expr.int_val = IsKeyword("true") ? 1 : 0;
      Advance();
    } else if (Cur().kind == Tok::kIdent) {
      expr.val_kind = CondExpr::ValKind::kIdent;  // enumerator, resolved at exec
      expr.str_val = Cur().text;
      Advance();
    } else {
      return Err("expected a comparison value");
    }
    std::vector<std::vector<CondExpr>> out;
    out.push_back({std::move(expr)});
    return out;
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

vl::StatusOr<std::vector<Statement>> ParseViewQlProgram(std::string_view source) {
  VL_ASSIGN_OR_RETURN(std::vector<Token> toks, LexViewQl(source));
  return Parser(std::move(toks)).Run();
}

}  // namespace viewql
