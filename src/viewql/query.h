// ViewQL (paper §2.3): an SQL-like language for customizing a ViewCL-produced
// object graph.
//
//   name = SELECT <type[.member]> FROM <set|*> [AS alias] [WHERE cond]
//   UPDATE <set-expr> WITH attr: value [, attr: value]
//
// Conditions are AND/OR compositions of `member op value` (no nested queries,
// per the paper). Set expressions support \ (difference), & (intersection),
// | (union), REACHABLE(set) (transitive closure), and MEMBERS(set) (the boxes
// directly contained in / linked from a set — the paper's is_inside-style
// containment operator). UPDATE mutates the display attributes the
// visualizer honours: view, trimmed, collapsed, direction.
//
// WHERE resolution: a member is looked up in the box's evaluated member map
// first (covering ViewCL-defined fields like is_writable); if absent, it is
// read from the underlying kernel object through the debugger — which is how
// `WHERE mm != NULL` works even when `mm` is not displayed.

#ifndef SRC_VIEWQL_QUERY_H_
#define SRC_VIEWQL_QUERY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/dbg/kernel_introspect.h"
#include "src/support/json.h"
#include "src/support/status.h"
#include "src/viewcl/graph.h"

namespace viewql {

using BoxSet = std::set<uint64_t>;

struct ExecStats {
  int statements = 0;
  int selects = 0;
  int updates = 0;
  uint64_t last_selected = 0;   // size of the most recent SELECT result
  uint64_t boxes_updated = 0;   // total boxes touched by UPDATEs
  // Virtual nanoseconds charged to the debugger target while executing
  // (raw-field WHERE fallbacks are the only ViewQL path that reads memory).
  uint64_t select_ns = 0;
  uint64_t update_ns = 0;

  // Folds another run's stats into this one (last_selected takes the newer).
  void Merge(const ExecStats& other) {
    statements += other.statements;
    selects += other.selects;
    updates += other.updates;
    last_selected = other.last_selected;
    boxes_updated += other.boxes_updated;
    select_ns += other.select_ns;
    update_ns += other.update_ns;
  }

  vl::Json ToJson() const;
};

class QueryEngine {
 public:
  // `debugger` may be null; raw-field WHERE fallback is then disabled.
  QueryEngine(viewcl::ViewGraph* graph, dbg::KernelDebugger* debugger)
      : graph_(graph), debugger_(debugger) {}

  // Executes a whole ViewQL program (multiple statements).
  vl::Status Execute(std::string_view program);

  // Named result sets created by SELECT statements.
  const BoxSet* FindSet(const std::string& name) const {
    auto it = sets_.find(name);
    return it != sets_.end() ? &it->second : nullptr;
  }

  const ExecStats& stats() const { return stats_; }
  viewcl::ViewGraph* graph() { return graph_; }

 private:
  friend class ExecState;

  viewcl::ViewGraph* graph_;
  dbg::KernelDebugger* debugger_;
  std::map<std::string, BoxSet> sets_;
  ExecStats stats_;
};

// Validates syntax without executing (used by vchat).
vl::Status CheckViewQl(std::string_view program);

}  // namespace viewql

#endif  // SRC_VIEWQL_QUERY_H_
