// ViewQL lexer, AST, and parser (paper §2.3's SQL-like refinement language),
// split out of the query engine so the static analyzer (vlint) can inspect
// programs without executing them. Every AST node carries a vl::Span.

#ifndef SRC_VIEWQL_PARSE_H_
#define SRC_VIEWQL_PARSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diag.h"
#include "src/support/status.h"

namespace viewql {

enum class Tok { kEnd, kIdent, kInt, kString, kPunct };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t ival = 0;
  // Start position of the token (1-based line/col) and its byte extent;
  // strings include the quotes.
  int line = 1;
  int col = 1;
  size_t offset = 0;
  size_t length = 0;

  vl::Span span() const { return vl::Span{line, col, offset, length}; }
};

// `//` and `--` comments run to end of line.
vl::StatusOr<std::vector<Token>> LexViewQl(std::string_view source);

struct CondExpr {  // member op value
  std::vector<std::string> member;  // path; may be the alias alone
  std::string op;
  enum class ValKind { kInt, kString, kNull, kBool, kIdent } val_kind = ValKind::kInt;
  int64_t int_val = 0;
  std::string str_val;
  vl::Span member_span;  // the full dotted member path
  vl::Span val_span;     // the comparison value
};

struct Condition {  // OR of ANDs of (possibly grouped) conditions
  // Disjunctive normal form: clauses[i] is a conjunction.
  std::vector<std::vector<CondExpr>> clauses;
};

struct SetExpr {
  enum class Kind { kName, kAll, kReachable, kMembers, kBinary };
  Kind kind = Kind::kName;
  std::string name;
  char op = 0;  // '\\', '&', '|'
  std::unique_ptr<SetExpr> lhs, rhs;
  std::unique_ptr<SetExpr> arg;  // REACHABLE / MEMBERS
  vl::Span span;                 // the head token (name, '*', or keyword)
};

struct SelectStmt {
  std::string result_name;
  std::string type_name;               // empty => '*'
  std::vector<std::string> item_path;  // maple_node.slots => {"slots"}
  std::unique_ptr<SetExpr> source;
  std::string alias;
  Condition where;
  bool has_where = false;
  vl::Span result_span;  // the bound result name
  vl::Span type_span;    // the selected type (or '*')
  vl::Span item_span;    // the dotted item path after the type, when present
};

struct UpdateAttr {
  std::string name;
  std::string value;
  vl::Span name_span;
  vl::Span value_span;
};

struct UpdateStmt {
  std::unique_ptr<SetExpr> target;
  std::vector<UpdateAttr> attrs;
};

struct Statement {
  enum class Kind { kSelect, kUpdate };
  Kind kind = Kind::kSelect;
  SelectStmt select;
  UpdateStmt update;
};

// Lex + parse; the building block behind QueryEngine::Execute, CheckViewQl,
// and the ViewQL half of vlint.
vl::StatusOr<std::vector<Statement>> ParseViewQlProgram(std::string_view source);

}  // namespace viewql

#endif  // SRC_VIEWQL_PARSE_H_
