#include "src/viewql/query.h"

#include "src/support/str.h"
#include "src/support/trace.h"
#include "src/viewql/parse.h"

namespace viewql {

vl::Json ExecStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["statements"] = vl::Json::Int(statements);
  j["selects"] = vl::Json::Int(selects);
  j["updates"] = vl::Json::Int(updates);
  j["last_selected"] = vl::Json::Int(static_cast<int64_t>(last_selected));
  j["boxes_updated"] = vl::Json::Int(static_cast<int64_t>(boxes_updated));
  j["select_ns"] = vl::Json::Int(static_cast<int64_t>(select_ns));
  j["update_ns"] = vl::Json::Int(static_cast<int64_t>(update_ns));
  return j;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

class ExecState {
 public:
  ExecState(QueryEngine* engine) : engine_(engine), graph_(engine->graph_) {}

  vl::Status Execute(const std::vector<Statement>& stmts) {
    for (const Statement& stmt : stmts) {
      engine_->stats_.statements++;
      uint64_t before = TargetNanos();
      if (stmt.kind == Statement::Kind::kSelect) {
        vl::ScopedSpan span("viewql.select");
        VL_RETURN_IF_ERROR(ExecSelect(stmt.select));
        engine_->stats_.select_ns += TargetNanos() - before;
      } else {
        vl::ScopedSpan span("viewql.update");
        VL_RETURN_IF_ERROR(ExecUpdate(stmt.update));
        engine_->stats_.update_ns += TargetNanos() - before;
      }
    }
    return vl::Status::Ok();
  }

 private:
  uint64_t TargetNanos() const {
    return engine_->debugger_ != nullptr
               ? engine_->debugger_->target().clock().nanos()
               : 0;
  }

  BoxSet AllBoxes() const {
    BoxSet out;
    for (uint64_t id = 0; id < graph_->size(); ++id) {
      out.insert(id);
    }
    return out;
  }

  vl::StatusOr<BoxSet> EvalSet(const SetExpr* expr) {
    switch (expr->kind) {
      case SetExpr::Kind::kAll:
        return AllBoxes();
      case SetExpr::Kind::kName: {
        const BoxSet* found = engine_->FindSet(expr->name);
        if (found == nullptr) {
          return vl::EvalError("unknown set '" + expr->name + "'");
        }
        return *found;
      }
      case SetExpr::Kind::kReachable: {
        VL_ASSIGN_OR_RETURN(BoxSet seed, EvalSet(expr->arg.get()));
        std::vector<uint64_t> from(seed.begin(), seed.end());
        std::vector<uint64_t> closure = graph_->Reachable(from);
        return BoxSet(closure.begin(), closure.end());
      }
      case SetExpr::Kind::kMembers: {
        // One hop only: the boxes directly referenced by items of the seed
        // set (the paper's is_inside-style containment operator).
        VL_ASSIGN_OR_RETURN(BoxSet seed, EvalSet(expr->arg.get()));
        BoxSet out;
        for (uint64_t id : seed) {
          for (uint64_t next : graph_->Neighbors(id)) {
            out.insert(next);
          }
        }
        return out;
      }
      case SetExpr::Kind::kBinary: {
        VL_ASSIGN_OR_RETURN(BoxSet lhs, EvalSet(expr->lhs.get()));
        VL_ASSIGN_OR_RETURN(BoxSet rhs, EvalSet(expr->rhs.get()));
        BoxSet out;
        if (expr->op == '\\') {
          for (uint64_t id : lhs) {
            if (rhs.count(id) == 0) {
              out.insert(id);
            }
          }
        } else if (expr->op == '&') {
          for (uint64_t id : lhs) {
            if (rhs.count(id) != 0) {
              out.insert(id);
            }
          }
        } else {
          out = lhs;
          out.insert(rhs.begin(), rhs.end());
        }
        return out;
      }
    }
    return vl::InternalError("unhandled set expression");
  }

  // Statement-level entry into set evaluation: one "viewql.set" span per
  // FROM/target clause so set algebra shows up as its own explain-tree node.
  vl::StatusOr<BoxSet> EvalSetRoot(const SetExpr* expr) {
    vl::ScopedSpan span("viewql.set");
    return EvalSet(expr);
  }

  vl::Status ExecSelect(const SelectStmt& stmt) {
    engine_->stats_.selects++;
    VL_ASSIGN_OR_RETURN(BoxSet source, EvalSetRoot(stmt.source.get()));
    BoxSet result;
    for (uint64_t id : source) {
      const viewcl::VBox* box = graph_->box(id);
      if (box == nullptr) {
        continue;
      }
      if (!stmt.type_name.empty() && box->kernel_type() != stmt.type_name &&
          box->decl_name() != stmt.type_name) {
        continue;
      }
      VL_ASSIGN_OR_RETURN(bool keep, MatchWhere(stmt, *box));
      if (!keep) {
        continue;
      }
      if (stmt.item_path.empty()) {
        result.insert(id);
      } else {
        // type.member selects the boxes referenced by the named item.
        CollectItemTargets(*box, stmt.item_path, &result);
      }
    }
    engine_->stats_.last_selected = result.size();
    engine_->sets_[stmt.result_name] = std::move(result);
    return vl::Status::Ok();
  }

  void CollectItemTargets(const viewcl::VBox& box, const std::vector<std::string>& path,
                          BoxSet* out) const {
    // Single-level item paths cover the paper's usage (slots, pagecache, bufs).
    const std::string& item_name = path.back();
    for (const viewcl::ViewInstance& view : box.views()) {
      for (const viewcl::LinkItem& link : view.links) {
        if (link.name == item_name && link.target != viewcl::kNoBox) {
          out->insert(link.target);
        }
      }
      for (const viewcl::ContainerItem& container : view.containers) {
        if (container.name == item_name) {
          for (uint64_t member : container.members) {
            out->insert(member);
          }
        }
      }
    }
  }

  vl::StatusOr<bool> MatchWhere(const SelectStmt& stmt, const viewcl::VBox& box) {
    if (!stmt.has_where) {
      return true;
    }
    // WHERE evaluation can fall back to raw-field target reads; its own span
    // separates that cost from the set algebra above it.
    vl::ScopedSpan span("viewql.where");
    for (const std::vector<CondExpr>& clause : stmt.where.clauses) {
      bool all = true;
      for (const CondExpr& expr : clause) {
        VL_ASSIGN_OR_RETURN(bool ok, MatchCond(stmt, expr, box));
        if (!ok) {
          all = false;
          break;
        }
      }
      if (all) {
        return true;
      }
    }
    return false;
  }

  vl::StatusOr<bool> MatchCond(const SelectStmt& stmt, const CondExpr& expr,
                               const viewcl::VBox& box) {
    // 1. Alias: `vma != 0x...` compares the box's own object address.
    if (expr.member.size() == 1 && !stmt.alias.empty() && expr.member[0] == stmt.alias) {
      return CompareInt(static_cast<int64_t>(box.addr()), expr);
    }
    // 2. Evaluated members (ViewCL-defined fields and displayed items).
    std::string joined = vl::StrJoin(expr.member, ".");
    auto it = box.members().find(joined);
    if (it != box.members().end()) {
      const viewcl::MemberValue& member = it->second;
      if (member.kind == viewcl::MemberValue::Kind::kString) {
        return CompareString(member.str, expr);
      }
      if (member.kind == viewcl::MemberValue::Kind::kNull) {
        return CompareInt(0, expr);
      }
      return CompareInt(member.num, expr);
    }
    // 3. Raw kernel field through the debugger.
    if (engine_->debugger_ != nullptr && !box.is_virtual()) {
      const dbg::Type* type = engine_->debugger_->types().FindByName(box.kernel_type());
      if (type != nullptr) {
        dbg::Environment env;
        env.emplace("this", dbg::Value::MakeLValue(type, box.addr()));
        std::string c_expr = "@this." + joined;
        auto value = engine_->debugger_->Eval(c_expr, &env);
        if (value.ok()) {
          auto loaded = value->Load(&engine_->debugger_->session());
          if (loaded.ok()) {
            if (loaded->is_lvalue() && loaded->type() != nullptr &&
                loaded->type()->kind == dbg::TypeKind::kArray &&
                loaded->type()->element->kind == dbg::TypeKind::kChar) {
              auto text = engine_->debugger_->session().ReadCString(
                  loaded->addr(), loaded->type()->array_len);
              if (text.ok()) {
                return CompareString(*text, expr);
              }
            }
            if (!loaded->is_lvalue()) {
              return CompareInt(static_cast<int64_t>(loaded->bits()), expr);
            }
          }
        }
      }
    }
    // Unresolvable member: no match (tolerant, like a debugger filter).
    return false;
  }

  vl::StatusOr<bool> CompareInt(int64_t lhs, const CondExpr& expr) {
    int64_t rhs = 0;
    switch (expr.val_kind) {
      case CondExpr::ValKind::kInt:
      case CondExpr::ValKind::kBool:
        rhs = expr.int_val;
        break;
      case CondExpr::ValKind::kNull:
        rhs = 0;
        break;
      case CondExpr::ValKind::kIdent: {
        int64_t enum_value = 0;
        if (engine_->debugger_ != nullptr &&
            engine_->debugger_->types().FindEnumerator(expr.str_val, &enum_value)) {
          rhs = enum_value;
        } else {
          return vl::EvalError("unknown value '" + expr.str_val + "'");
        }
        break;
      }
      case CondExpr::ValKind::kString:
        return false;  // numeric member vs string literal: never equal
    }
    if (expr.op == "==") return lhs == rhs;
    if (expr.op == "!=") return lhs != rhs;
    if (expr.op == "<") return lhs < rhs;
    if (expr.op == "<=") return lhs <= rhs;
    if (expr.op == ">") return lhs > rhs;
    if (expr.op == ">=") return lhs >= rhs;
    if (expr.op == "contains") return (lhs & rhs) == rhs;  // bitmask contains
    return vl::EvalError("bad operator " + expr.op);
  }

  vl::StatusOr<bool> CompareString(const std::string& lhs, const CondExpr& expr) {
    if (expr.val_kind == CondExpr::ValKind::kNull) {
      bool empty = lhs.empty() || lhs == "<null>";
      if (expr.op == "==") return empty;
      if (expr.op == "!=") return !empty;
      return false;
    }
    const std::string& rhs =
        expr.val_kind == CondExpr::ValKind::kString ? expr.str_val : expr.str_val;
    if (expr.op == "==") return lhs == rhs;
    if (expr.op == "!=") return lhs != rhs;
    if (expr.op == "contains") return lhs.find(rhs) != std::string::npos;
    if (expr.op == "<") return lhs < rhs;
    if (expr.op == ">") return lhs > rhs;
    if (expr.op == "<=") return lhs <= rhs;
    if (expr.op == ">=") return lhs >= rhs;
    return vl::EvalError("bad operator " + expr.op);
  }

  vl::Status ExecUpdate(const UpdateStmt& stmt) {
    engine_->stats_.updates++;
    VL_ASSIGN_OR_RETURN(BoxSet targets, EvalSetRoot(stmt.target.get()));
    for (uint64_t id : targets) {
      viewcl::VBox* box = graph_->box(id);
      if (box == nullptr) {
        continue;
      }
      for (const UpdateAttr& attr : stmt.attrs) {
        box->attrs()[attr.name] = attr.value;
      }
      engine_->stats_.boxes_updated++;
    }
    return vl::Status::Ok();
  }

  QueryEngine* engine_;
  viewcl::ViewGraph* graph_;
};

vl::Status QueryEngine::Execute(std::string_view program) {
  std::vector<Statement> stmts;
  {
    vl::ScopedSpan span("viewql.parse");
    VL_ASSIGN_OR_RETURN(stmts, ParseViewQlProgram(program));
  }
  ExecState state(this);
  return state.Execute(stmts);
}

vl::Status CheckViewQl(std::string_view program) {
  auto stmts = ParseViewQlProgram(program);
  return stmts.ok() ? vl::Status::Ok() : stmts.status();
}

}  // namespace viewql
