#include "src/viewql/query.h"

#include <cctype>

#include "src/support/str.h"
#include "src/support/trace.h"

namespace viewql {

vl::Json ExecStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["statements"] = vl::Json::Int(statements);
  j["selects"] = vl::Json::Int(selects);
  j["updates"] = vl::Json::Int(updates);
  j["last_selected"] = vl::Json::Int(static_cast<int64_t>(last_selected));
  j["boxes_updated"] = vl::Json::Int(static_cast<int64_t>(boxes_updated));
  j["select_ns"] = vl::Json::Int(static_cast<int64_t>(select_ns));
  j["update_ns"] = vl::Json::Int(static_cast<int64_t>(update_ns));
  return j;
}

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok { kEnd, kIdent, kInt, kString, kPunct };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t ival = 0;
  int line = 1;
};

vl::StatusOr<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t pos = 0;
  int line = 1;
  auto push = [&](Tok kind, std::string text, int64_t ival = 0) {
    out.push_back(Token{kind, std::move(text), ival, line});
  };
  while (pos < src.size()) {
    char c = src[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < src.size() && src[pos + 1] == '/') {
      while (pos < src.size() && src[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (c == '-' && pos + 1 < src.size() && src[pos + 1] == '-') {  // SQL comment
      while (pos < src.size() && src[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[pos])) || src[pos] == '_')) {
        ++pos;
      }
      push(Tok::kIdent, std::string(src.substr(start, pos - start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      int base = 10;
      if (c == '0' && pos + 1 < src.size() && (src[pos + 1] == 'x' || src[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
      }
      int64_t value = 0;
      while (pos < src.size()) {
        char d = static_cast<char>(std::tolower(static_cast<unsigned char>(src[pos])));
        int digit;
        if (d >= '0' && d <= '9') {
          digit = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          digit = d - 'a' + 10;
        } else {
          break;
        }
        value = value * base + digit;
        ++pos;
      }
      push(Tok::kInt, std::string(src.substr(start, pos - start)), value);
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      size_t start = pos;
      while (pos < src.size() && src[pos] != quote) {
        ++pos;
      }
      if (pos >= src.size()) {
        return vl::ParseError(vl::StrFormat("unterminated string on line %d", line));
      }
      push(Tok::kString, std::string(src.substr(start, pos - start)));
      ++pos;
      continue;
    }
    // Angle-bracket placeholders like <fetched_node_address> are template
    // holes; reject with a clear message.
    for (std::string_view two : {"==", "!=", "<=", ">=", "->"}) {
      if (src.substr(pos, 2) == two) {
        push(Tok::kPunct, std::string(two));
        pos += 2;
        goto next;
      }
    }
    {
      static const std::string_view kOne = "=<>*\\&|(),:.";
      if (kOne.find(c) == std::string_view::npos) {
        return vl::ParseError(vl::StrFormat("unexpected character '%c' on line %d", c, line));
      }
      push(Tok::kPunct, std::string(1, c));
      ++pos;
    }
  next:;
  }
  push(Tok::kEnd, "");
  return out;
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct CondExpr {  // member op value
  std::vector<std::string> member;  // path; may be the alias alone
  std::string op;
  enum class ValKind { kInt, kString, kNull, kBool, kIdent } val_kind = ValKind::kInt;
  int64_t int_val = 0;
  std::string str_val;
};

struct Condition {  // OR of ANDs of (possibly grouped) conditions
  // Disjunctive normal form: clauses[i] is a conjunction.
  std::vector<std::vector<CondExpr>> clauses;
};

struct SetExpr {
  enum class Kind { kName, kAll, kReachable, kMembers, kBinary };
  Kind kind = Kind::kName;
  std::string name;
  char op = 0;  // '\\', '&', '|'
  std::unique_ptr<SetExpr> lhs, rhs;
  std::unique_ptr<SetExpr> arg;  // REACHABLE / MEMBERS
};

struct SelectStmt {
  std::string result_name;
  std::string type_name;                 // empty => '*'
  std::vector<std::string> item_path;    // maple_node.slots => {"slots"}
  std::unique_ptr<SetExpr> source;
  std::string alias;
  Condition where;
  bool has_where = false;
};

struct UpdateStmt {
  std::unique_ptr<SetExpr> target;
  std::vector<std::pair<std::string, std::string>> attrs;
};

struct Statement {
  enum class Kind { kSelect, kUpdate };
  Kind kind;
  SelectStmt select;
  UpdateStmt update;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  vl::StatusOr<std::vector<Statement>> Run() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (IsKeyword("UPDATE")) {
        Statement stmt;
        stmt.kind = Statement::Kind::kUpdate;
        VL_RETURN_IF_ERROR(ParseUpdate(&stmt.update));
        out.push_back(std::move(stmt));
      } else if (Cur().kind == Tok::kIdent && Peek(1).kind == Tok::kPunct &&
                 Peek(1).text == "=") {
        Statement stmt;
        stmt.kind = Statement::Kind::kSelect;
        stmt.select.result_name = Cur().text;
        Advance();
        Advance();  // '='
        VL_RETURN_IF_ERROR(ParseSelect(&stmt.select));
        out.push_back(std::move(stmt));
      } else {
        return Err("expected 'name = SELECT ...' or 'UPDATE ...'");
      }
    }
    return out;
  }

 private:
  const Token& Cur() const { return toks_[idx_]; }
  const Token& Peek(size_t n) const {
    size_t i = idx_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool AtEnd() const { return Cur().kind == Tok::kEnd; }
  void Advance() {
    if (!AtEnd()) {
      ++idx_;
    }
  }
  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == Tok::kIdent && vl::StrLower(Cur().text) == vl::StrLower(kw);
  }
  bool EatKeyword(std::string_view kw) {
    if (IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool IsPunct(std::string_view text) const {
    return Cur().kind == Tok::kPunct && Cur().text == text;
  }
  bool EatPunct(std::string_view text) {
    if (IsPunct(text)) {
      Advance();
      return true;
    }
    return false;
  }
  vl::Status Err(std::string_view message) const {
    return vl::ParseError(vl::StrFormat("%.*s on line %d (near '%s')",
                                        static_cast<int>(message.size()), message.data(),
                                        Cur().line, Cur().text.c_str()));
  }

  vl::Status ParseSelect(SelectStmt* stmt) {
    if (!EatKeyword("SELECT")) {
      return Err("expected SELECT");
    }
    if (EatPunct("*")) {
      // select everything from the source
    } else {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected a type name");
      }
      stmt->type_name = Cur().text;
      Advance();
      while (EatPunct(".") || EatPunct("->")) {
        if (Cur().kind != Tok::kIdent) {
          return Err("expected an item name");
        }
        stmt->item_path.push_back(Cur().text);
        Advance();
      }
    }
    if (!EatKeyword("FROM")) {
      return Err("expected FROM");
    }
    VL_ASSIGN_OR_RETURN(stmt->source, ParseSetExpr());
    if (EatKeyword("AS")) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected an alias name");
      }
      stmt->alias = Cur().text;
      Advance();
    }
    if (EatKeyword("WHERE")) {
      stmt->has_where = true;
      VL_RETURN_IF_ERROR(ParseCondition(&stmt->where));
    }
    return vl::Status::Ok();
  }

  vl::Status ParseUpdate(UpdateStmt* stmt) {
    Advance();  // UPDATE
    VL_ASSIGN_OR_RETURN(stmt->target, ParseSetExpr());
    if (!EatKeyword("WITH")) {
      return Err("expected WITH");
    }
    while (true) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected an attribute name");
      }
      std::string attr = Cur().text;
      Advance();
      if (!EatPunct(":")) {
        return Err("expected ':' after attribute name");
      }
      std::string value;
      if (Cur().kind == Tok::kIdent || Cur().kind == Tok::kString) {
        value = Cur().text;
        Advance();
      } else if (Cur().kind == Tok::kInt) {
        value = Cur().text;
        Advance();
      } else {
        return Err("expected an attribute value");
      }
      stmt->attrs.emplace_back(std::move(attr), std::move(value));
      if (!EatPunct(",")) {
        break;
      }
    }
    return vl::Status::Ok();
  }

  vl::StatusOr<std::unique_ptr<SetExpr>> ParseSetExpr() {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> lhs, ParseSetTerm());
    while (IsPunct("\\") || IsPunct("&") || IsPunct("|")) {
      char op = Cur().text[0];
      Advance();
      VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> rhs, ParseSetTerm());
      auto node = std::make_unique<SetExpr>();
      node->kind = SetExpr::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  vl::StatusOr<std::unique_ptr<SetExpr>> ParseSetTerm() {
    auto node = std::make_unique<SetExpr>();
    if (EatPunct("*")) {
      node->kind = SetExpr::Kind::kAll;
      return node;
    }
    if (IsKeyword("REACHABLE") || IsKeyword("MEMBERS")) {
      bool reachable = IsKeyword("REACHABLE");
      Advance();
      if (!EatPunct("(")) {
        return Err("expected '(' after REACHABLE/MEMBERS");
      }
      node->kind = reachable ? SetExpr::Kind::kReachable : SetExpr::Kind::kMembers;
      VL_ASSIGN_OR_RETURN(node->arg, ParseSetExpr());
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return node;
    }
    if (EatPunct("(")) {
      VL_ASSIGN_OR_RETURN(std::unique_ptr<SetExpr> inner, ParseSetExpr());
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return inner;
    }
    if (Cur().kind != Tok::kIdent) {
      return Err("expected a set name");
    }
    node->kind = SetExpr::Kind::kName;
    node->name = Cur().text;
    Advance();
    return node;
  }

  vl::Status ParseCondition(Condition* cond) {
    // OR-of-ANDs; parentheses group sub-conditions which are inlined into DNF.
    VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> lhs, ParseAnd());
    cond->clauses = std::move(lhs);
    while (IsKeyword("OR")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> rhs, ParseAnd());
      for (auto& clause : rhs) {
        cond->clauses.push_back(std::move(clause));
      }
    }
    return vl::Status::Ok();
  }

  // Returns a DNF fragment (list of conjunctions).
  vl::StatusOr<std::vector<std::vector<CondExpr>>> ParseAnd() {
    VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> acc, ParsePrimaryCond());
    while (IsKeyword("AND")) {
      Advance();
      VL_ASSIGN_OR_RETURN(std::vector<std::vector<CondExpr>> rhs, ParsePrimaryCond());
      // (A1|A2) AND (B1|B2) => distribute.
      std::vector<std::vector<CondExpr>> merged;
      for (const auto& a : acc) {
        for (const auto& b : rhs) {
          std::vector<CondExpr> clause = a;
          clause.insert(clause.end(), b.begin(), b.end());
          merged.push_back(std::move(clause));
        }
      }
      acc = std::move(merged);
    }
    return acc;
  }

  vl::StatusOr<std::vector<std::vector<CondExpr>>> ParsePrimaryCond() {
    if (EatPunct("(")) {
      Condition inner;
      VL_RETURN_IF_ERROR(ParseCondition(&inner));
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return inner.clauses;
    }
    CondExpr expr;
    if (Cur().kind != Tok::kIdent) {
      return Err("expected a member name");
    }
    expr.member.push_back(Cur().text);
    Advance();
    while (EatPunct(".") || EatPunct("->")) {
      if (Cur().kind != Tok::kIdent) {
        return Err("expected a member name after '.'");
      }
      expr.member.push_back(Cur().text);
      Advance();
    }
    if (IsKeyword("contains")) {
      expr.op = "contains";
      Advance();
    } else if (Cur().kind == Tok::kPunct &&
               (Cur().text == "==" || Cur().text == "!=" || Cur().text == "<" ||
                Cur().text == "<=" || Cur().text == ">" || Cur().text == ">=" ||
                Cur().text == "=")) {
      expr.op = Cur().text == "=" ? "==" : Cur().text;
      Advance();
    } else {
      return Err("expected a comparison operator");
    }
    // Value.
    if (Cur().kind == Tok::kInt) {
      expr.val_kind = CondExpr::ValKind::kInt;
      expr.int_val = Cur().ival;
      Advance();
    } else if (Cur().kind == Tok::kString) {
      expr.val_kind = CondExpr::ValKind::kString;
      expr.str_val = Cur().text;
      Advance();
    } else if (IsKeyword("NULL")) {
      expr.val_kind = CondExpr::ValKind::kNull;
      Advance();
    } else if (IsKeyword("true") || IsKeyword("false")) {
      expr.val_kind = CondExpr::ValKind::kBool;
      expr.int_val = IsKeyword("true") ? 1 : 0;
      Advance();
    } else if (Cur().kind == Tok::kIdent) {
      expr.val_kind = CondExpr::ValKind::kIdent;  // enumerator, resolved at exec
      expr.str_val = Cur().text;
      Advance();
    } else {
      return Err("expected a comparison value");
    }
    std::vector<std::vector<CondExpr>> out;
    out.push_back({std::move(expr)});
    return out;
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

class ExecState {
 public:
  ExecState(QueryEngine* engine) : engine_(engine), graph_(engine->graph_) {}

  vl::Status Execute(const std::vector<Statement>& stmts) {
    for (const Statement& stmt : stmts) {
      engine_->stats_.statements++;
      uint64_t before = TargetNanos();
      if (stmt.kind == Statement::Kind::kSelect) {
        vl::ScopedSpan span("viewql.select");
        VL_RETURN_IF_ERROR(ExecSelect(stmt.select));
        engine_->stats_.select_ns += TargetNanos() - before;
      } else {
        vl::ScopedSpan span("viewql.update");
        VL_RETURN_IF_ERROR(ExecUpdate(stmt.update));
        engine_->stats_.update_ns += TargetNanos() - before;
      }
    }
    return vl::Status::Ok();
  }

 private:
  uint64_t TargetNanos() const {
    return engine_->debugger_ != nullptr
               ? engine_->debugger_->target().clock().nanos()
               : 0;
  }

  BoxSet AllBoxes() const {
    BoxSet out;
    for (uint64_t id = 0; id < graph_->size(); ++id) {
      out.insert(id);
    }
    return out;
  }

  vl::StatusOr<BoxSet> EvalSet(const SetExpr* expr) {
    switch (expr->kind) {
      case SetExpr::Kind::kAll:
        return AllBoxes();
      case SetExpr::Kind::kName: {
        const BoxSet* found = engine_->FindSet(expr->name);
        if (found == nullptr) {
          return vl::EvalError("unknown set '" + expr->name + "'");
        }
        return *found;
      }
      case SetExpr::Kind::kReachable: {
        VL_ASSIGN_OR_RETURN(BoxSet seed, EvalSet(expr->arg.get()));
        std::vector<uint64_t> from(seed.begin(), seed.end());
        std::vector<uint64_t> closure = graph_->Reachable(from);
        return BoxSet(closure.begin(), closure.end());
      }
      case SetExpr::Kind::kMembers: {
        // One hop only: the boxes directly referenced by items of the seed
        // set (the paper's is_inside-style containment operator).
        VL_ASSIGN_OR_RETURN(BoxSet seed, EvalSet(expr->arg.get()));
        BoxSet out;
        for (uint64_t id : seed) {
          for (uint64_t next : graph_->Neighbors(id)) {
            out.insert(next);
          }
        }
        return out;
      }
      case SetExpr::Kind::kBinary: {
        VL_ASSIGN_OR_RETURN(BoxSet lhs, EvalSet(expr->lhs.get()));
        VL_ASSIGN_OR_RETURN(BoxSet rhs, EvalSet(expr->rhs.get()));
        BoxSet out;
        if (expr->op == '\\') {
          for (uint64_t id : lhs) {
            if (rhs.count(id) == 0) {
              out.insert(id);
            }
          }
        } else if (expr->op == '&') {
          for (uint64_t id : lhs) {
            if (rhs.count(id) != 0) {
              out.insert(id);
            }
          }
        } else {
          out = lhs;
          out.insert(rhs.begin(), rhs.end());
        }
        return out;
      }
    }
    return vl::InternalError("unhandled set expression");
  }

  // Statement-level entry into set evaluation: one "viewql.set" span per
  // FROM/target clause so set algebra shows up as its own explain-tree node.
  vl::StatusOr<BoxSet> EvalSetRoot(const SetExpr* expr) {
    vl::ScopedSpan span("viewql.set");
    return EvalSet(expr);
  }

  vl::Status ExecSelect(const SelectStmt& stmt) {
    engine_->stats_.selects++;
    VL_ASSIGN_OR_RETURN(BoxSet source, EvalSetRoot(stmt.source.get()));
    BoxSet result;
    for (uint64_t id : source) {
      const viewcl::VBox* box = graph_->box(id);
      if (box == nullptr) {
        continue;
      }
      if (!stmt.type_name.empty() && box->kernel_type() != stmt.type_name &&
          box->decl_name() != stmt.type_name) {
        continue;
      }
      VL_ASSIGN_OR_RETURN(bool keep, MatchWhere(stmt, *box));
      if (!keep) {
        continue;
      }
      if (stmt.item_path.empty()) {
        result.insert(id);
      } else {
        // type.member selects the boxes referenced by the named item.
        CollectItemTargets(*box, stmt.item_path, &result);
      }
    }
    engine_->stats_.last_selected = result.size();
    engine_->sets_[stmt.result_name] = std::move(result);
    return vl::Status::Ok();
  }

  void CollectItemTargets(const viewcl::VBox& box, const std::vector<std::string>& path,
                          BoxSet* out) const {
    // Single-level item paths cover the paper's usage (slots, pagecache, bufs).
    const std::string& item_name = path.back();
    for (const viewcl::ViewInstance& view : box.views()) {
      for (const viewcl::LinkItem& link : view.links) {
        if (link.name == item_name && link.target != viewcl::kNoBox) {
          out->insert(link.target);
        }
      }
      for (const viewcl::ContainerItem& container : view.containers) {
        if (container.name == item_name) {
          for (uint64_t member : container.members) {
            out->insert(member);
          }
        }
      }
    }
  }

  vl::StatusOr<bool> MatchWhere(const SelectStmt& stmt, const viewcl::VBox& box) {
    if (!stmt.has_where) {
      return true;
    }
    // WHERE evaluation can fall back to raw-field target reads; its own span
    // separates that cost from the set algebra above it.
    vl::ScopedSpan span("viewql.where");
    for (const std::vector<CondExpr>& clause : stmt.where.clauses) {
      bool all = true;
      for (const CondExpr& expr : clause) {
        VL_ASSIGN_OR_RETURN(bool ok, MatchCond(stmt, expr, box));
        if (!ok) {
          all = false;
          break;
        }
      }
      if (all) {
        return true;
      }
    }
    return false;
  }

  vl::StatusOr<bool> MatchCond(const SelectStmt& stmt, const CondExpr& expr,
                               const viewcl::VBox& box) {
    // 1. Alias: `vma != 0x...` compares the box's own object address.
    if (expr.member.size() == 1 && !stmt.alias.empty() && expr.member[0] == stmt.alias) {
      return CompareInt(static_cast<int64_t>(box.addr()), expr);
    }
    // 2. Evaluated members (ViewCL-defined fields and displayed items).
    std::string joined = vl::StrJoin(expr.member, ".");
    auto it = box.members().find(joined);
    if (it != box.members().end()) {
      const viewcl::MemberValue& member = it->second;
      if (member.kind == viewcl::MemberValue::Kind::kString) {
        return CompareString(member.str, expr);
      }
      if (member.kind == viewcl::MemberValue::Kind::kNull) {
        return CompareInt(0, expr);
      }
      return CompareInt(member.num, expr);
    }
    // 3. Raw kernel field through the debugger.
    if (engine_->debugger_ != nullptr && !box.is_virtual()) {
      const dbg::Type* type = engine_->debugger_->types().FindByName(box.kernel_type());
      if (type != nullptr) {
        dbg::Environment env;
        env.emplace("this", dbg::Value::MakeLValue(type, box.addr()));
        std::string c_expr = "@this." + joined;
        auto value = engine_->debugger_->Eval(c_expr, &env);
        if (value.ok()) {
          auto loaded = value->Load(&engine_->debugger_->session());
          if (loaded.ok()) {
            if (loaded->is_lvalue() && loaded->type() != nullptr &&
                loaded->type()->kind == dbg::TypeKind::kArray &&
                loaded->type()->element->kind == dbg::TypeKind::kChar) {
              auto text = engine_->debugger_->session().ReadCString(
                  loaded->addr(), loaded->type()->array_len);
              if (text.ok()) {
                return CompareString(*text, expr);
              }
            }
            if (!loaded->is_lvalue()) {
              return CompareInt(static_cast<int64_t>(loaded->bits()), expr);
            }
          }
        }
      }
    }
    // Unresolvable member: no match (tolerant, like a debugger filter).
    return false;
  }

  vl::StatusOr<bool> CompareInt(int64_t lhs, const CondExpr& expr) {
    int64_t rhs = 0;
    switch (expr.val_kind) {
      case CondExpr::ValKind::kInt:
      case CondExpr::ValKind::kBool:
        rhs = expr.int_val;
        break;
      case CondExpr::ValKind::kNull:
        rhs = 0;
        break;
      case CondExpr::ValKind::kIdent: {
        int64_t enum_value = 0;
        if (engine_->debugger_ != nullptr &&
            engine_->debugger_->types().FindEnumerator(expr.str_val, &enum_value)) {
          rhs = enum_value;
        } else {
          return vl::EvalError("unknown value '" + expr.str_val + "'");
        }
        break;
      }
      case CondExpr::ValKind::kString:
        return false;  // numeric member vs string literal: never equal
    }
    if (expr.op == "==") return lhs == rhs;
    if (expr.op == "!=") return lhs != rhs;
    if (expr.op == "<") return lhs < rhs;
    if (expr.op == "<=") return lhs <= rhs;
    if (expr.op == ">") return lhs > rhs;
    if (expr.op == ">=") return lhs >= rhs;
    if (expr.op == "contains") return (lhs & rhs) == rhs;  // bitmask contains
    return vl::EvalError("bad operator " + expr.op);
  }

  vl::StatusOr<bool> CompareString(const std::string& lhs, const CondExpr& expr) {
    if (expr.val_kind == CondExpr::ValKind::kNull) {
      bool empty = lhs.empty() || lhs == "<null>";
      if (expr.op == "==") return empty;
      if (expr.op == "!=") return !empty;
      return false;
    }
    const std::string& rhs =
        expr.val_kind == CondExpr::ValKind::kString ? expr.str_val : expr.str_val;
    if (expr.op == "==") return lhs == rhs;
    if (expr.op == "!=") return lhs != rhs;
    if (expr.op == "contains") return lhs.find(rhs) != std::string::npos;
    if (expr.op == "<") return lhs < rhs;
    if (expr.op == ">") return lhs > rhs;
    if (expr.op == "<=") return lhs <= rhs;
    if (expr.op == ">=") return lhs >= rhs;
    return vl::EvalError("bad operator " + expr.op);
  }

  vl::Status ExecUpdate(const UpdateStmt& stmt) {
    engine_->stats_.updates++;
    VL_ASSIGN_OR_RETURN(BoxSet targets, EvalSetRoot(stmt.target.get()));
    for (uint64_t id : targets) {
      viewcl::VBox* box = graph_->box(id);
      if (box == nullptr) {
        continue;
      }
      for (const auto& [attr, value] : stmt.attrs) {
        box->attrs()[attr] = value;
      }
      engine_->stats_.boxes_updated++;
    }
    return vl::Status::Ok();
  }

  QueryEngine* engine_;
  viewcl::ViewGraph* graph_;
};

vl::Status QueryEngine::Execute(std::string_view program) {
  std::vector<Statement> stmts;
  {
    vl::ScopedSpan span("viewql.parse");
    VL_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(program));
    Parser parser(std::move(toks));
    VL_ASSIGN_OR_RETURN(stmts, parser.Run());
  }
  ExecState state(this);
  return state.Execute(stmts);
}

vl::Status CheckViewQl(std::string_view program) {
  VL_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(program));
  Parser parser(std::move(toks));
  auto stmts = parser.Run();
  return stmts.ok() ? vl::Status::Ok() : stmts.status();
}

}  // namespace viewql
