// vlint: a zero-read static analyzer for ViewCL and ViewQL programs.
//
// The analyzer resolves every field access, adapter application, decorator,
// and view/definition reference against the debugger's TypeRegistry, symbol
// table, and helper registry — without a single Target memory read. Bad
// programs are rejected before they charge any transport nanoseconds.
//
// Rule catalog (docs/linting.md has one example each):
//   ViewCL
//     VL001  unknown kernel type in a define
//     VL002  duplicate definition in one program
//     VL003  reference to an undefined Box
//     VL004  unknown field in a bare field path
//     VL005  bad anchored-constructor path (container_of anchor)
//     VL006  container adapter applied to a mismatched node type
//     VL007  unknown decorator head
//     VL008  bad decorator argument (non-enum enum:/flag: arg, unknown emoji)
//     VL009  view inherits an unknown parent view
//     VL010  duplicate view name in one box (warning)
//     VL011  unbound @ref
//     VL012  unknown identifier in a ${...} C-expression
//     VL013  C-expression syntax error
//     VL014  dead definition: box unreachable from any plot (warning)
//     VL015  container adapter arity error
//   ViewQL
//     VL101  unknown set name
//     VL102  duplicate set name (warning)
//     VL103  unknown SELECT type
//     VL104  UPDATE view: names an undeclared view
//     VL105  unknown display attribute (warning)
//     VL106  bad display-attribute value
//     VL107  unknown WHERE member (warning)
//     VL108  REACHABLE/MEMBERS over '*' is pointless (warning)
//     VL109  unknown enumerator in a comparison
//     VL110  unknown item path in SELECT type.item (warning)

#ifndef SRC_ANALYSIS_LINT_H_
#define SRC_ANALYSIS_LINT_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/dbg/expr.h"
#include "src/dbg/symbols.h"
#include "src/dbg/type.h"
#include "src/support/diag.h"
#include "src/viewcl/ast.h"
#include "src/viewcl/decorate.h"

namespace analysis {

// What the ViewQL checker needs to know about the ViewCL program behind a
// pane: which boxes exist, their kernel types, views, and displayed members.
struct BoxSummary {
  std::string kernel_type;           // empty => virtual box
  std::vector<std::string> views;    // declared view names
  std::vector<std::string> members;  // item names (Text/Link/Container)
};

struct ProgramSummary {
  bool valid = false;  // true when the source parsed cleanly
  std::map<std::string, BoxSummary> boxes;
};

struct LintResult {
  vl::DiagnosticList diagnostics;
  bool parse_ok = false;  // false => the single diagnostic is the parse error
};

// The analyzer. Holds registry pointers only — linting performs no reads, so
// the Target transport clock and byte counters are untouched by construction.
class Linter {
 public:
  Linter(const dbg::TypeRegistry* types, const dbg::SymbolTable* symbols,
         const dbg::HelperRegistry* helpers, const viewcl::EmojiRegistry* emoji)
      : types_(types), symbols_(symbols), helpers_(helpers), emoji_(emoji) {}

  // Checks a ViewCL program (VL001–VL015). Emits a "vlint" trace span and
  // bumps lint.* counters when tracing is enabled.
  LintResult LintViewCl(std::string_view source) const;

  // Checks an already-parsed program (the Interp::Load fail-fast hook re-uses
  // the parse Load just did).
  LintResult LintViewCl(const viewcl::Program& program, std::string_view source) const;

  // Checks a ViewQL program (VL101–VL110). `summary` supplies the declared
  // boxes/views/members (may be null: view/type checks degrade to registry
  // lookups); `known_sets` seeds set names defined by earlier statements
  // (e.g. a pane's ViewQL history).
  LintResult LintViewQl(std::string_view source, const ProgramSummary* summary = nullptr,
                        const std::vector<std::string>& known_sets = {}) const;

  // Summarizes a ViewCL program for LintViewQl. Invalid programs produce
  // {valid = false} and the ViewQL checker skips summary-dependent rules.
  ProgramSummary SummarizeViewCl(std::string_view source) const;

  // Adapts the analyzer into viewcl::Interpreter::SetLoadValidator — the
  // fail-fast lint mode. Any lint *error* refuses the chunk, with the
  // rendered diagnostics as the Status message; warnings pass. The Linter
  // must outlive the interpreter holding the validator.
  std::function<vl::Status(const viewcl::Program&, std::string_view)> MakeLoadValidator() const;

  const dbg::TypeRegistry* types() const { return types_; }

 private:
  class ViewClChecker;
  class ViewQlChecker;

  const dbg::TypeRegistry* types_;
  const dbg::SymbolTable* symbols_;
  const dbg::HelperRegistry* helpers_;
  const viewcl::EmojiRegistry* emoji_;
};

// Nearest-name suggestion (Levenshtein distance <= 2, lexicographic
// tie-break); empty when nothing is close. Exposed for tests.
std::string NearestName(const std::string& name, const std::vector<std::string>& candidates);

}  // namespace analysis

#endif  // SRC_ANALYSIS_LINT_H_
