#include "src/analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"
#include "src/viewcl/parser.h"
#include "src/viewql/parse.h"

namespace analysis {

namespace {

using dbg::Type;
using dbg::TypeKind;
using vl::Severity;
using vl::Span;

// Identifiers the C-expression evaluator understands without any registry:
// operators, casts, and literal keywords.
const char* const kCExprKeywords[] = {
    "sizeof", "struct", "union", "enum",  "NULL",     "null",   "true",
    "false",  "bool",   "void",  "char",  "short",    "int",    "long",
    "signed", "unsigned", "const",
};

bool IsCExprKeyword(const std::string& word) {
  for (const char* kw : kCExprKeywords) {
    if (word == kw) {
      return true;
    }
  }
  return false;
}

size_t EditDistance(const std::string& a, const std::string& b, size_t cap) {
  size_t la = a.size();
  size_t lb = b.size();
  size_t diff = la > lb ? la - lb : lb - la;
  if (diff > cap) {
    return cap + 1;
  }
  std::vector<size_t> prev(lb + 1);
  std::vector<size_t> cur(lb + 1);
  for (size_t j = 0; j <= lb; ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= la; ++i) {
    cur[0] = i;
    size_t row_min = cur[0];
    for (size_t j = 1; j <= lb; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > cap) {
      return cap + 1;
    }
    std::swap(prev, cur);
  }
  return prev[lb];
}

// Mirrors Value::Member: auto-derefs pointer chains, then looks the field up
// in the aggregate. Returns the field's type, or null with `bad_seg`/`owner`
// describing the first unresolvable segment.
const Type* WalkFieldPath(const Type* base, const std::vector<std::string>& path, size_t start,
                          size_t* bad_seg, const Type** owner) {
  const Type* t = base;
  for (size_t i = start; i < path.size(); ++i) {
    while (t != nullptr && t->kind == TypeKind::kPointer) {
      t = t->pointee;
    }
    if (t == nullptr || !t->IsAggregate()) {
      *bad_seg = i;
      *owner = t;
      return nullptr;
    }
    const dbg::Field* f = t->FindField(path[i]);
    if (f == nullptr) {
      *bad_seg = i;
      *owner = t;
      return nullptr;
    }
    t = f->type;
  }
  return t;
}

std::vector<std::string> FieldNames(const Type* t) {
  std::vector<std::string> names;
  if (t != nullptr) {
    for (const dbg::Field& f : t->fields) {
      names.push_back(f.name);
    }
  }
  return names;
}

// The node type a container adapter expects its (bare field path) argument to
// resolve to; empty predicate set means "no static shape opinion".
bool ContainerShapeOk(const std::string& kind, const Type* resolved) {
  const Type* t = resolved;
  while (t != nullptr && t->kind == TypeKind::kPointer) {
    t = t->pointee;
  }
  if (t == nullptr) {
    return true;
  }
  if (kind == "Array") {
    return resolved->kind == TypeKind::kArray || resolved->kind == TypeKind::kPointer;
  }
  const std::string& n = t->name;
  if (kind == "List") return n == "list_head";
  if (kind == "HList") return n == "hlist_head";
  if (kind == "RBTree") return n == "rb_root" || n == "rb_root_cached" || n == "rb_node";
  if (kind == "XArray" || kind == "RadixTree") return n == "xarray" || n == "radix_tree_root";
  if (kind == "MapleTree") return n == "maple_tree";
  return true;
}

const char* ContainerShapeName(const std::string& kind) {
  if (kind == "List") return "list_head";
  if (kind == "HList") return "hlist_head";
  if (kind == "RBTree") return "rb_root / rb_root_cached / rb_node";
  if (kind == "XArray" || kind == "RadixTree") return "xarray / radix_tree_root";
  if (kind == "MapleTree") return "maple_tree";
  return "array or pointer";
}

// Best-effort position extraction from a parser error message ("... at 3:14"
// or "... on line 7"); parse failures become a single VL000 diagnostic.
Span PosFromMessage(const std::string& message) {
  Span span;
  for (size_t i = message.size(); i-- > 0;) {
    if (message[i] == ':' && i > 0 && std::isdigit(static_cast<unsigned char>(message[i - 1]))) {
      size_t e = i + 1;
      size_t ce = e;
      while (ce < message.size() && std::isdigit(static_cast<unsigned char>(message[ce]))) {
        ++ce;
      }
      if (ce == e) {
        continue;
      }
      size_t ls = i;
      while (ls > 0 && std::isdigit(static_cast<unsigned char>(message[ls - 1]))) {
        --ls;
      }
      span.line = std::atoi(message.substr(ls, i - ls).c_str());
      span.col = std::atoi(message.substr(e, ce - e).c_str());
      return span;
    }
  }
  size_t p = message.find("line ");
  if (p != std::string::npos) {
    span.line = std::atoi(message.c_str() + p + 5);
    span.col = 1;
  }
  return span;
}

}  // namespace

std::string NearestName(const std::string& name, const std::vector<std::string>& candidates) {
  std::string best;
  size_t best_dist = 3;  // Levenshtein distance <= 2
  for (const std::string& c : candidates) {
    if (c == name || c.empty()) {
      continue;
    }
    size_t d = EditDistance(name, c, 2);
    if (d < best_dist || (d == best_dist && !best.empty() && c < best)) {
      best = c;
      best_dist = d;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// ViewCL checker
// ---------------------------------------------------------------------------

class Linter::ViewClChecker {
 public:
  ViewClChecker(const Linter& linter, const viewcl::Program& program, vl::DiagnosticList* diags)
      : lint_(linter), program_(program), diags_(diags) {
    BuildUniverse();
  }

  void Run() {
    // Every box declaration in the program, inline boxes included, so
    // kBoxCtor references resolve wherever the definition lives.
    for (const auto& decl : program_.defines) {
      CollectDecl(decl.get());
    }
    for (const viewcl::Binding& b : program_.bindings) {
      CollectExprDecls(b.value.get());
      toplevel_names_.insert(b.name);
    }
    for (const viewcl::ExprPtr& p : program_.plots) {
      CollectExprDecls(p.get());
    }

    // VL002: duplicate top-level definitions.
    std::map<std::string, Span> first_def;
    for (const auto& decl : program_.defines) {
      auto [it, inserted] = first_def.emplace(decl->name, decl->span);
      if (!inserted) {
        diags_->AddRule("VL002", Severity::kError, decl->span,
                        vl::StrFormat("duplicate definition of '%s' (first defined at line %d)",
                                      decl->name.c_str(), it->second.line));
      }
    }

    // Top-level bindings are evaluated in one root scope; names are visible
    // to each other and to every box instantiated beneath a plot.
    scopes_.push_back(toplevel_names_);
    for (const auto& decl : program_.defines) {
      CheckBox(*decl);
    }
    for (const viewcl::Binding& b : program_.bindings) {
      CheckExpr(b.value.get());
    }
    for (const viewcl::ExprPtr& p : program_.plots) {
      CheckExpr(p.get());
    }
    scopes_.pop_back();

    CheckReachability();
  }

 private:
  enum class ThisState { kNone, kUnknown, kKnown };

  void BuildUniverse() {
    if (lint_.symbols_ != nullptr) {
      for (const auto& [name, value] : lint_.symbols_->globals()) {
        universe_.insert(name);
      }
    }
    if (lint_.helpers_ != nullptr) {
      for (const std::string& name : lint_.helpers_->names()) {
        universe_.insert(name);
      }
    }
    if (lint_.types_ != nullptr) {
      for (const Type* t : lint_.types_->named_types()) {
        universe_.insert(t->name);
        for (const auto& [name, value] : t->enumerators) {
          universe_.insert(name);
        }
      }
    }
  }

  void CollectDecl(const viewcl::BoxDecl* decl) {
    if (decl == nullptr) {
      return;
    }
    boxes_.emplace(decl->name, decl);
    for (const viewcl::Binding& b : decl->where) {
      CollectExprDecls(b.value.get());
    }
    for (const viewcl::ViewDecl& view : decl->views) {
      for (const viewcl::Binding& b : view.where) {
        CollectExprDecls(b.value.get());
      }
      for (const viewcl::ItemDecl& item : view.items) {
        CollectExprDecls(item.value.get());
      }
    }
  }

  void CollectExprDecls(const viewcl::Expr* e) {
    if (e == nullptr) {
      return;
    }
    if (e->kind == viewcl::Expr::Kind::kInlineBox) {
      CollectDecl(e->inline_box.get());
    }
    for (const viewcl::ExprPtr& kid : e->kids) {
      CollectExprDecls(kid.get());
    }
    for (const viewcl::SwitchCase& sc : e->cases) {
      for (const viewcl::ExprPtr& label : sc.labels) {
        CollectExprDecls(label.get());
      }
      CollectExprDecls(sc.body.get());
    }
    CollectExprDecls(e->otherwise.get());
    if (e->for_each != nullptr) {
      for (const viewcl::Binding& b : e->for_each->bindings) {
        CollectExprDecls(b.value.get());
      }
      CollectExprDecls(e->for_each->yield.get());
    }
  }

  bool InScope(const std::string& name) const {
    for (const auto& frame : scopes_) {
      if (frame.count(name) != 0) {
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> ScopeNames() const {
    std::set<std::string> all;
    for (const auto& frame : scopes_) {
      all.insert(frame.begin(), frame.end());
    }
    return std::vector<std::string>(all.begin(), all.end());
  }

  void CheckBox(const viewcl::BoxDecl& box) {
    ThisState saved_state = this_state_;
    const Type* saved_type = this_type_;

    if (!box.kernel_type.empty()) {
      const Type* t =
          lint_.types_ != nullptr ? lint_.types_->FindByName(box.kernel_type) : nullptr;
      if (t == nullptr && lint_.types_ != nullptr) {
        std::vector<std::string> names;
        for (const Type* cand : lint_.types_->named_types()) {
          if (cand->IsAggregate()) {
            names.push_back(cand->name);
          }
        }
        Span span = box.type_span.valid() ? box.type_span : box.span;
        vl::Diagnostic& d = diags_->AddRule(
            "VL001", Severity::kError, span,
            vl::StrFormat("unknown kernel type '%s' in define '%s'", box.kernel_type.c_str(),
                          box.name.c_str()));
        AttachFixIt(&d, span, NearestName(box.kernel_type, names));
      }
      this_state_ = ThisState::kKnown;
      this_type_ = t;  // null when VL001 fired: field checks degrade silently
      if (t == nullptr) {
        this_state_ = ThisState::kUnknown;
      }
    } else if (this_state_ == ThisState::kNone && !IsToplevelDefine(box)) {
      // Virtual inline box with no enclosing concrete box: @this stays unbound.
    } else if (this_state_ == ThisState::kNone) {
      // A virtual top-level define may be instantiated under a caller that
      // has @this bound; its field paths can't be resolved statically.
      this_state_ = ThisState::kUnknown;
      this_type_ = nullptr;
    }

    // Box scope: box-level where names (order-independent, mutually visible).
    std::set<std::string> frame;
    for (const viewcl::Binding& b : box.where) {
      frame.insert(b.name);
    }
    scopes_.push_back(frame);
    for (const viewcl::Binding& b : box.where) {
      CheckExpr(b.value.get());
    }

    // VL010 duplicate views; VL009 unknown parents.
    std::set<std::string> view_names;
    for (const viewcl::ViewDecl& view : box.views) {
      view_names.insert(view.name);
    }
    std::set<std::string> seen_views;
    for (const viewcl::ViewDecl& view : box.views) {
      if (!seen_views.insert(view.name).second) {
        diags_->AddRule("VL010", Severity::kWarning, view.span,
                        vl::StrFormat("duplicate view '%s' in '%s' shadows the earlier one",
                                      view.name.c_str(), box.name.c_str()));
      }
      if (!view.parent.empty() && view_names.count(view.parent) == 0) {
        Span span = view.parent_span.valid() ? view.parent_span : view.span;
        vl::Diagnostic& d = diags_->AddRule(
            "VL009", Severity::kError, span,
            vl::StrFormat("view '%s' inherits unknown view '%s'", view.name.c_str(),
                          view.parent.c_str()));
        AttachFixIt(&d, span,
                    NearestName(view.parent, {view_names.begin(), view_names.end()}));
      }
    }

    for (const viewcl::ViewDecl& view : box.views) {
      CheckView(box, view);
    }

    scopes_.pop_back();
    this_state_ = saved_state;
    this_type_ = saved_type;
  }

  bool IsToplevelDefine(const viewcl::BoxDecl& box) const {
    for (const auto& decl : program_.defines) {
      if (decl.get() == &box) {
        return true;
      }
    }
    return false;
  }

  void CheckView(const viewcl::BoxDecl& box, const viewcl::ViewDecl& view) {
    // A view sees its parent chain's where bindings plus its own.
    std::set<std::string> frame;
    std::set<std::string> visited;
    const viewcl::ViewDecl* cur = &view;
    while (cur != nullptr && visited.insert(cur->name).second) {
      for (const viewcl::Binding& b : cur->where) {
        frame.insert(b.name);
      }
      const viewcl::ViewDecl* parent = nullptr;
      if (!cur->parent.empty()) {
        for (const viewcl::ViewDecl& v : box.views) {
          if (v.name == cur->parent) {
            parent = &v;
            break;
          }
        }
      }
      cur = parent;
    }
    scopes_.push_back(frame);
    for (const viewcl::Binding& b : view.where) {
      CheckExpr(b.value.get());
    }
    for (const viewcl::ItemDecl& item : view.items) {
      CheckDecorator(item);
      CheckExpr(item.value.get());
    }
    scopes_.pop_back();
  }

  void CheckDecorator(const viewcl::ItemDecl& item) {
    if (item.decorator.empty() || lint_.types_ == nullptr) {
      return;
    }
    std::string detail;
    viewcl::DecoratorIssue issue =
        viewcl::CheckDecoratorSpec(*lint_.types_, lint_.emoji_, item.decorator, &detail);
    Span span = item.decorator_span.valid() ? item.decorator_span : item.span;
    if (issue == viewcl::DecoratorIssue::kUnknownHead) {
      vl::Diagnostic& d = diags_->AddRule("VL007", Severity::kError, span, detail);
      std::vector<std::string> heads = {"string", "bool",  "char", "raw_ptr",
                                        "fptr",   "enum",  "flag", "emoji"};
      for (const Type* t : lint_.types_->named_types()) {
        if (t->IsScalar() && t->kind != TypeKind::kEnum) {
          heads.push_back(t->name);
        }
      }
      AttachFixIt(&d, span, NearestName(vl::StrSplit(item.decorator, ':')[0], heads));
    } else if (issue == viewcl::DecoratorIssue::kBadArgument) {
      // Unknown emoji sets are hard runtime errors; a non-enum enum:/flag:
      // argument silently degrades to a plain number, so only warn.
      bool is_emoji = item.decorator.rfind("emoji", 0) == 0;
      diags_->AddRule("VL008", is_emoji ? Severity::kError : Severity::kWarning, span, detail);
    }
  }

  void CheckExpr(const viewcl::Expr* e) {
    if (e == nullptr) {
      return;
    }
    switch (e->kind) {
      case viewcl::Expr::Kind::kInt:
      case viewcl::Expr::Kind::kNull:
        return;
      case viewcl::Expr::Kind::kCExpr:
        CheckCExpr(*e);
        return;
      case viewcl::Expr::Kind::kAtRef:
        CheckAtRef(e->text, e->span);
        return;
      case viewcl::Expr::Kind::kFieldPath:
        CheckFieldPath(*e);
        return;
      case viewcl::Expr::Kind::kSwitch: {
        for (const viewcl::ExprPtr& kid : e->kids) {
          CheckExpr(kid.get());
        }
        for (const viewcl::SwitchCase& sc : e->cases) {
          for (const viewcl::ExprPtr& label : sc.labels) {
            CheckExpr(label.get());
          }
          CheckExpr(sc.body.get());
        }
        CheckExpr(e->otherwise.get());
        return;
      }
      case viewcl::Expr::Kind::kBoxCtor: {
        if (boxes_.count(e->text) == 0) {
          std::vector<std::string> names;
          for (const auto& [name, decl] : boxes_) {
            names.push_back(name);
          }
          vl::Diagnostic& d =
              diags_->AddRule("VL003", Severity::kError, e->span,
                              vl::StrFormat("unknown Box '%s'", e->text.c_str()));
          AttachFixIt(&d, e->span, NearestName(e->text, names));
        }
        CheckAnchor(*e);
        for (const viewcl::ExprPtr& kid : e->kids) {
          CheckExpr(kid.get());
        }
        return;
      }
      case viewcl::Expr::Kind::kContainerCtor:
        CheckContainerCtor(*e);
        return;
      case viewcl::Expr::Kind::kSelectFrom: {
        CheckExpr(e->kids.empty() ? nullptr : e->kids[0].get());
        if (boxes_.count(e->text) == 0) {
          std::vector<std::string> names;
          for (const auto& [name, decl] : boxes_) {
            names.push_back(name);
          }
          vl::Diagnostic& d = diags_->AddRule(
              "VL003", Severity::kError, e->span,
              vl::StrFormat("selectFrom element Box '%s' is not defined", e->text.c_str()));
          AttachFixIt(&d, e->span, NearestName(e->text, names));
        }
        return;
      }
      case viewcl::Expr::Kind::kInlineBox:
        if (e->inline_box != nullptr) {
          CheckBox(*e->inline_box);
        }
        return;
    }
  }

  void CheckAtRef(const std::string& name, Span span) {
    if (name == "this") {
      if (this_state_ == ThisState::kNone) {
        diags_->AddRule("VL011", Severity::kError, span, "@this outside a box context");
      }
      return;
    }
    if (InScope(name)) {
      return;
    }
    vl::Diagnostic& d = diags_->AddRule("VL011", Severity::kError, span,
                                        vl::StrFormat("unbound @ref '@%s'", name.c_str()));
    AttachFixIt(&d, span, NearestName(name, ScopeNames()));
  }

  void CheckFieldPath(const viewcl::Expr& e) {
    if (this_state_ == ThisState::kNone) {
      diags_->AddRule("VL004", Severity::kError, e.span,
                      vl::StrFormat("field path '%s' outside a box context",
                                    vl::StrJoin(e.path, ".").c_str()));
      return;
    }
    ResolveFieldPath(e.path, e.span);
  }

  // Resolves `path` against the enclosing box type; reports VL004 and returns
  // null when a segment misses, returns null silently when @this is unknown.
  const Type* ResolveFieldPath(const std::vector<std::string>& path, Span span) {
    if (this_state_ != ThisState::kKnown || this_type_ == nullptr) {
      return nullptr;
    }
    size_t bad_seg = 0;
    const Type* owner = nullptr;
    const Type* t = WalkFieldPath(this_type_, path, 0, &bad_seg, &owner);
    if (t != nullptr) {
      return t;
    }
    if (owner != nullptr && owner->IsAggregate()) {
      vl::Diagnostic& d = diags_->AddRule(
          "VL004", Severity::kError, span,
          vl::StrFormat("'%s' has no field '%s'", owner->name.c_str(), path[bad_seg].c_str()));
      AttachFixIt(&d, span, NearestName(path[bad_seg], FieldNames(owner)));
    } else {
      const char* base = owner != nullptr ? owner->name.c_str() : "<scalar>";
      diags_->AddRule("VL004", Severity::kError, span,
                      vl::StrFormat("cannot access field '%s' of non-struct type '%s'",
                                    path[bad_seg].c_str(), base));
    }
    return nullptr;
  }

  void CheckAnchor(const viewcl::Expr& e) {
    if (e.path.empty() || lint_.types_ == nullptr) {
      return;
    }
    const Type* t = lint_.types_->FindByName(e.path[0]);
    if (t == nullptr) {
      std::vector<std::string> names;
      for (const Type* cand : lint_.types_->named_types()) {
        if (cand->IsAggregate()) {
          names.push_back(cand->name);
        }
      }
      vl::Diagnostic& d = diags_->AddRule(
          "VL005", Severity::kError, e.span,
          vl::StrFormat("unknown type '%s' in anchor path", e.path[0].c_str()));
      AttachFixIt(&d, e.span, NearestName(e.path[0], names));
      return;
    }
    // Anchor segments are offsets within the object: arrays decay to their
    // element, pointers must not be followed (the offset would escape the
    // containing object, and container_of arithmetic would be meaningless).
    for (size_t i = 1; i < e.path.size(); ++i) {
      while (t->kind == TypeKind::kArray) {
        t = t->element;
      }
      if (!t->IsAggregate()) {
        diags_->AddRule("VL005", Severity::kError, e.span,
                        vl::StrFormat("anchor segment '%s' is not inside a struct",
                                      e.path[i].c_str()));
        return;
      }
      const dbg::Field* f = t->FindField(e.path[i]);
      if (f == nullptr) {
        vl::Diagnostic& d = diags_->AddRule(
            "VL005", Severity::kError, e.span,
            vl::StrFormat("'%s' has no field '%s' in anchor path", t->name.c_str(),
                          e.path[i].c_str()));
        AttachFixIt(&d, e.span, NearestName(e.path[i], FieldNames(t)));
        return;
      }
      t = f->type;
    }
  }

  void CheckContainerCtor(const viewcl::Expr& e) {
    // VL015: Array takes (base [, count]); every other adapter takes exactly
    // the container head.
    size_t argc = e.kids.size();
    bool arity_ok = e.text == "Array" ? (argc == 1 || argc == 2) : argc == 1;
    if (!arity_ok) {
      const char* expect = e.text == "Array" ? "1 or 2 arguments" : "exactly 1 argument";
      diags_->AddRule("VL015", Severity::kError, e.span,
                      vl::StrFormat("%s takes %s, got %zu", e.text.c_str(), expect, argc));
    }
    for (const viewcl::ExprPtr& kid : e.kids) {
      CheckExpr(kid.get());
    }
    // VL006: when the head argument is a bare field path we can type it.
    if (!e.kids.empty() && e.kids[0]->kind == viewcl::Expr::Kind::kFieldPath &&
        this_state_ == ThisState::kKnown && this_type_ != nullptr) {
      size_t bad_seg = 0;
      const Type* owner = nullptr;
      const Type* resolved = WalkFieldPath(this_type_, e.kids[0]->path, 0, &bad_seg, &owner);
      if (resolved != nullptr && !ContainerShapeOk(e.text, resolved)) {
        diags_->AddRule(
            "VL006", Severity::kError, e.kids[0]->span,
            vl::StrFormat("%s expects a %s, but '%s' has type '%s'", e.text.c_str(),
                          ContainerShapeName(e.text),
                          vl::StrJoin(e.kids[0]->path, ".").c_str(),
                          resolved->ToString().c_str()));
      }
    }
    if (e.for_each != nullptr) {
      std::set<std::string> frame;
      frame.insert(e.for_each->var);
      for (const viewcl::Binding& b : e.for_each->bindings) {
        frame.insert(b.name);
      }
      scopes_.push_back(frame);
      for (const viewcl::Binding& b : e.for_each->bindings) {
        CheckExpr(b.value.get());
      }
      CheckExpr(e.for_each->yield.get());
      scopes_.pop_back();
    }
  }

  // VL012/VL013: syntax-check the ${...} text, then scan it for identifiers
  // that neither the scope chain nor any registry can resolve. Member names
  // after '.' or '->' are skipped — they belong to whatever the prefix
  // evaluates to, which the expression grammar resolves dynamically.
  void CheckCExpr(const viewcl::Expr& e) {
    vl::Status syntax = dbg::CheckCExpression(e.text);
    if (!syntax.ok()) {
      diags_->AddRule("VL013", Severity::kError, e.span,
                      vl::StrFormat("C-expression syntax error: %s",
                                    std::string(syntax.message()).c_str()));
      return;
    }
    const std::string& s = e.text;
    std::set<std::string> reported;
    char prev1 = 0;
    char prev2 = 0;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (c == '@') {
        size_t j = i + 1;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
          ++j;
        }
        if (j > i + 1) {
          CheckAtRef(s.substr(i + 1, j - i - 1), e.span);
        }
        prev2 = prev1;
        prev1 = 'a';
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
          ++j;
        }
        std::string word = s.substr(i, j - i);
        bool member = prev1 == '.' || (prev1 == '>' && prev2 == '-');
        if (!member && !IsCExprKeyword(word) && !InScope(word) &&
            universe_.count(word) == 0 && reported.insert(word).second) {
          std::vector<std::string> candidates = ScopeNames();
          candidates.insert(candidates.end(), universe_.begin(), universe_.end());
          vl::Diagnostic& d = diags_->AddRule(
              "VL012", Severity::kError, e.span,
              vl::StrFormat("unknown identifier '%s' in C-expression", word.c_str()));
          AttachFixIt(&d, e.span, NearestName(word, candidates));
        }
        prev2 = prev1;
        prev1 = 'a';
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < s.size() && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                                s[j] == '.' || s[j] == '_')) {
          ++j;
        }
        prev2 = prev1;
        prev1 = '0';
        i = j;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        prev2 = prev1;
        prev1 = c;
      }
      ++i;
    }
  }

  // VL014: a top-level define no plot can reach is dead weight. Roots are the
  // plot expressions; box references propagate through items, where clauses,
  // and top-level bindings pulled in by @refs.
  void CheckReachability() {
    if (program_.plots.empty()) {
      return;  // a prelude chunk: everything is intentionally "unused" so far
    }
    std::set<std::string> reached_boxes;
    std::set<std::string> reached_bindings;
    std::vector<const viewcl::Expr*> work;
    for (const viewcl::ExprPtr& p : program_.plots) {
      work.push_back(p.get());
    }
    while (!work.empty()) {
      const viewcl::Expr* e = work.back();
      work.pop_back();
      if (e == nullptr) {
        continue;
      }
      if (e->kind == viewcl::Expr::Kind::kBoxCtor ||
          e->kind == viewcl::Expr::Kind::kSelectFrom) {
        if (reached_boxes.insert(e->text).second) {
          EnqueueBox(e->text, &work);
        }
      }
      if (e->kind == viewcl::Expr::Kind::kInlineBox && e->inline_box != nullptr) {
        EnqueueDecl(e->inline_box.get(), &work);
      }
      if (e->kind == viewcl::Expr::Kind::kAtRef && toplevel_names_.count(e->text) != 0 &&
          reached_bindings.insert(e->text).second) {
        for (const viewcl::Binding& b : program_.bindings) {
          if (b.name == e->text) {
            work.push_back(b.value.get());
          }
        }
      }
      for (const viewcl::ExprPtr& kid : e->kids) {
        work.push_back(kid.get());
      }
      for (const viewcl::SwitchCase& sc : e->cases) {
        for (const viewcl::ExprPtr& label : sc.labels) {
          work.push_back(label.get());
        }
        work.push_back(sc.body.get());
      }
      work.push_back(e->otherwise.get());
      if (e->for_each != nullptr) {
        for (const viewcl::Binding& b : e->for_each->bindings) {
          work.push_back(b.value.get());
        }
        work.push_back(e->for_each->yield.get());
      }
    }
    for (const auto& decl : program_.defines) {
      if (reached_boxes.count(decl->name) == 0) {
        diags_->AddRule("VL014", Severity::kWarning, decl->span,
                        vl::StrFormat("'%s' is defined but unreachable from any plot",
                                      decl->name.c_str()));
      }
    }
  }

  void EnqueueBox(const std::string& name, std::vector<const viewcl::Expr*>* work) {
    auto it = boxes_.find(name);
    if (it != boxes_.end()) {
      EnqueueDecl(it->second, work);
    }
  }

  void EnqueueDecl(const viewcl::BoxDecl* decl, std::vector<const viewcl::Expr*>* work) {
    for (const viewcl::Binding& b : decl->where) {
      work->push_back(b.value.get());
    }
    for (const viewcl::ViewDecl& view : decl->views) {
      for (const viewcl::Binding& b : view.where) {
        work->push_back(b.value.get());
      }
      for (const viewcl::ItemDecl& item : view.items) {
        work->push_back(item.value.get());
      }
    }
  }

  void AttachFixIt(vl::Diagnostic* d, Span span, const std::string& suggestion) {
    if (suggestion.empty() || !span.valid() || span.length == 0) {
      return;
    }
    d->has_fixit = true;
    d->fixit.span = span;
    d->fixit.replacement = suggestion;
    d->message += vl::StrFormat(" (did you mean '%s'?)", suggestion.c_str());
  }

  const Linter& lint_;
  const viewcl::Program& program_;
  vl::DiagnosticList* diags_;

  std::map<std::string, const viewcl::BoxDecl*> boxes_;
  std::set<std::string> toplevel_names_;
  std::set<std::string> universe_;
  std::vector<std::set<std::string>> scopes_;
  ThisState this_state_ = ThisState::kNone;
  const Type* this_type_ = nullptr;
};

// ---------------------------------------------------------------------------
// ViewQL checker
// ---------------------------------------------------------------------------

class Linter::ViewQlChecker {
 public:
  ViewQlChecker(const Linter& linter, const ProgramSummary* summary,
                const std::vector<std::string>& known_sets, vl::DiagnosticList* diags)
      : lint_(linter), summary_(summary), diags_(diags) {
    sets_.insert(known_sets.begin(), known_sets.end());
  }

  void Run(const std::vector<viewql::Statement>& stmts) {
    for (const viewql::Statement& stmt : stmts) {
      if (stmt.kind == viewql::Statement::Kind::kSelect) {
        CheckSelect(stmt.select);
      } else {
        CheckUpdate(stmt.update);
      }
    }
  }

 private:
  bool HasSummary() const { return summary_ != nullptr && summary_->valid; }

  void CheckSelect(const viewql::SelectStmt& stmt) {
    CheckSetExpr(stmt.source.get());

    std::vector<const BoxSummary*> matched;
    if (!stmt.type_name.empty()) {
      CheckType(stmt, &matched);
    } else if (HasSummary()) {
      for (const auto& [name, box] : summary_->boxes) {
        matched.push_back(&box);
      }
    }

    if (!stmt.item_path.empty() && HasSummary() && !matched.empty()) {
      // VL110: the item must be displayed by at least one matching box.
      const std::string& item = stmt.item_path[0];
      bool found = false;
      std::vector<std::string> members;
      for (const BoxSummary* box : matched) {
        for (const std::string& m : box->members) {
          members.push_back(m);
          if (m == item) {
            found = true;
          }
        }
      }
      if (!found) {
        vl::Diagnostic& d = diags_->AddRule(
            "VL110", Severity::kWarning, stmt.item_span,
            vl::StrFormat("no '%s' box displays an item '%s'", stmt.type_name.c_str(),
                          item.c_str()));
        AttachFixIt(&d, stmt.item_span, NearestName(item, members));
      }
    }

    if (stmt.has_where) {
      for (const auto& clause : stmt.where.clauses) {
        for (const viewql::CondExpr& cond : clause) {
          CheckCondition(stmt, matched, cond);
        }
      }
    }

    // VL102 after the statement body: `a = SELECT ... FROM a` is checked
    // against the *previous* binding of `a`, matching the engine, which
    // rebinds the result name only after evaluating the source.
    if (sets_.count(stmt.result_name) != 0) {
      diags_->AddRule("VL102", Severity::kWarning, stmt.result_span,
                      vl::StrFormat("'%s' redefines an existing set", stmt.result_name.c_str()));
    }
    sets_.insert(stmt.result_name);
  }

  static bool IsContainerKind(const std::string& name) {
    return name == "List" || name == "HList" || name == "RBTree" || name == "Array" ||
           name == "XArray" || name == "MapleTree" || name == "RadixTree";
  }

  void CheckType(const viewql::SelectStmt& stmt, std::vector<const BoxSummary*>* matched) {
    const std::string& type = stmt.type_name;
    if (IsContainerKind(type)) {
      return;  // paper idiom: SELECT RBTree FROM * targets container panes
    }
    bool in_summary = false;
    if (HasSummary()) {
      for (const auto& [name, box] : summary_->boxes) {
        // The engine matches a box by its kernel type or its declared name.
        if (name == type || box.kernel_type == type) {
          matched->push_back(&box);
          in_summary = true;
        }
      }
    }
    if (in_summary) {
      return;
    }
    bool in_registry =
        lint_.types_ != nullptr && lint_.types_->FindByName(type) != nullptr;
    if (HasSummary()) {
      std::vector<std::string> names;
      for (const auto& [name, box] : summary_->boxes) {
        names.push_back(name);
        if (!box.kernel_type.empty()) {
          names.push_back(box.kernel_type);
        }
      }
      if (in_registry) {
        diags_->AddRule("VL103", Severity::kWarning, stmt.type_span,
                        vl::StrFormat("'%s' matches no box in this pane", type.c_str()));
      } else {
        vl::Diagnostic& d = diags_->AddRule(
            "VL103", Severity::kError, stmt.type_span,
            vl::StrFormat("unknown SELECT type '%s'", type.c_str()));
        AttachFixIt(&d, stmt.type_span, NearestName(type, names));
      }
    } else if (!in_registry) {
      // Without a program summary a miss may still be a declared box name.
      diags_->AddRule("VL103", Severity::kWarning, stmt.type_span,
                      vl::StrFormat("'%s' is not a registered kernel type", type.c_str()));
    }
  }

  void CheckCondition(const viewql::SelectStmt& stmt,
                      const std::vector<const BoxSummary*>& matched,
                      const viewql::CondExpr& cond) {
    // VL109: identifier comparison values must be enumerators.
    if (cond.val_kind == viewql::CondExpr::ValKind::kIdent && lint_.types_ != nullptr) {
      int64_t value = 0;
      if (!lint_.types_->FindEnumerator(cond.str_val, &value)) {
        diags_->AddRule("VL109", Severity::kError, cond.val_span,
                        vl::StrFormat("unknown enumerator '%s'", cond.str_val.c_str()));
      }
    }
    if (cond.member.empty()) {
      return;
    }
    // VL107: the member should be resolvable as the alias, a displayed item,
    // or a raw kernel field of the selected type.
    if (!stmt.alias.empty() && cond.member[0] == stmt.alias) {
      return;
    }
    std::vector<std::string> candidates;
    for (const BoxSummary* box : matched) {
      for (const std::string& m : box->members) {
        candidates.push_back(m);
        if (m == cond.member[0]) {
          return;
        }
      }
    }
    if (lint_.types_ != nullptr) {
      std::vector<const Type*> bases;
      if (!stmt.type_name.empty()) {
        if (const Type* t = lint_.types_->FindByName(stmt.type_name)) {
          bases.push_back(t);
        }
      }
      for (const BoxSummary* box : matched) {
        if (!box->kernel_type.empty()) {
          if (const Type* t = lint_.types_->FindByName(box->kernel_type)) {
            bases.push_back(t);
          }
        }
      }
      for (const Type* base : bases) {
        size_t bad_seg = 0;
        const Type* owner = nullptr;
        if (WalkFieldPath(base, cond.member, 0, &bad_seg, &owner) != nullptr) {
          return;
        }
        for (const std::string& f : FieldNames(base)) {
          candidates.push_back(f);
        }
      }
      if (bases.empty() && matched.empty()) {
        return;  // nothing to check against: '*' with no summary
      }
    } else if (matched.empty()) {
      return;
    }
    vl::Diagnostic& d = diags_->AddRule(
        "VL107", Severity::kWarning, cond.member_span,
        vl::StrFormat("WHERE member '%s' is neither a displayed item nor a kernel field",
                      vl::StrJoin(cond.member, ".").c_str()));
    AttachFixIt(&d, cond.member_span, NearestName(cond.member[0], candidates));
  }

  void CheckUpdate(const viewql::UpdateStmt& stmt) {
    CheckSetExpr(stmt.target.get());
    for (const viewql::UpdateAttr& attr : stmt.attrs) {
      if (attr.name == "view") {
        if (HasSummary()) {
          std::set<std::string> views;
          for (const auto& [name, box] : summary_->boxes) {
            views.insert(box.views.begin(), box.views.end());
          }
          if (views.count(attr.value) == 0) {
            vl::Diagnostic& d = diags_->AddRule(
                "VL104", Severity::kError, attr.value_span,
                vl::StrFormat("no box declares a view '%s'", attr.value.c_str()));
            AttachFixIt(&d, attr.value_span,
                        NearestName(attr.value, {views.begin(), views.end()}));
          }
        }
      } else if (attr.name == "collapsed" || attr.name == "trimmed") {
        if (attr.value != "true" && attr.value != "false") {
          diags_->AddRule("VL106", Severity::kError, attr.value_span,
                          vl::StrFormat("'%s' expects true or false, got '%s'",
                                        attr.name.c_str(), attr.value.c_str()));
        }
      } else if (attr.name == "direction") {
        if (attr.value != "horizontal" && attr.value != "vertical") {
          diags_->AddRule("VL106", Severity::kError, attr.value_span,
                          vl::StrFormat("direction expects horizontal or vertical, got '%s'",
                                        attr.value.c_str()));
        }
      } else {
        vl::Diagnostic& d = diags_->AddRule(
            "VL105", Severity::kWarning, attr.name_span,
            vl::StrFormat("unknown display attribute '%s'", attr.name.c_str()));
        AttachFixIt(&d, attr.name_span,
                    NearestName(attr.name, {"view", "collapsed", "trimmed", "direction"}));
      }
    }
  }

  void CheckSetExpr(const viewql::SetExpr* e) {
    if (e == nullptr) {
      return;
    }
    switch (e->kind) {
      case viewql::SetExpr::Kind::kAll:
        return;
      case viewql::SetExpr::Kind::kName: {
        if (sets_.count(e->name) == 0) {
          vl::Diagnostic& d = diags_->AddRule(
              "VL101", Severity::kError, e->span,
              vl::StrFormat("unknown set '%s'", e->name.c_str()));
          AttachFixIt(&d, e->span,
                      NearestName(e->name, {sets_.begin(), sets_.end()}));
        }
        return;
      }
      case viewql::SetExpr::Kind::kReachable:
      case viewql::SetExpr::Kind::kMembers: {
        const char* fn = e->kind == viewql::SetExpr::Kind::kReachable ? "REACHABLE" : "MEMBERS";
        if (e->arg != nullptr && e->arg->kind == viewql::SetExpr::Kind::kAll) {
          diags_->AddRule("VL108", Severity::kWarning, e->span,
                          vl::StrFormat("%s(*) is the whole graph; drop the wrapper", fn));
        }
        CheckSetExpr(e->arg.get());
        return;
      }
      case viewql::SetExpr::Kind::kBinary:
        CheckSetExpr(e->lhs.get());
        CheckSetExpr(e->rhs.get());
        return;
    }
  }

  void AttachFixIt(vl::Diagnostic* d, Span span, const std::string& suggestion) {
    if (suggestion.empty() || !span.valid() || span.length == 0) {
      return;
    }
    d->has_fixit = true;
    d->fixit.span = span;
    d->fixit.replacement = suggestion;
    d->message += vl::StrFormat(" (did you mean '%s'?)", suggestion.c_str());
  }

  const Linter& lint_;
  const ProgramSummary* summary_;
  vl::DiagnosticList* diags_;
  std::set<std::string> sets_;
};

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

namespace {

// Bumps the lint.* counters (tracing only, like every other subsystem).
void CountLint(const vl::DiagnosticList& diags) {
  if (!vl::Tracer::Instance().enabled()) {
    return;
  }
  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  metrics.GetCounter("lint.programs")->Add(1);
  metrics.GetCounter("lint.diagnostics.error")->Add(diags.errors());
  metrics.GetCounter("lint.diagnostics.warning")->Add(diags.warnings());
  metrics.GetCounter("lint.diagnostics.note")->Add(diags.Count(Severity::kNote));
}

vl::Diagnostic ParseFailure(const vl::Status& status) {
  vl::Diagnostic d;
  d.rule = "VL000";
  d.severity = Severity::kError;
  d.message = std::string(status.message());
  d.span = PosFromMessage(d.message);
  return d;
}

}  // namespace

LintResult Linter::LintViewCl(std::string_view source) const {
  vl::ScopedSpan span("vlint");
  LintResult result;
  vl::StatusOr<viewcl::Program> program = viewcl::ParseViewCl(source);
  if (!program.ok()) {
    result.diagnostics.Add(ParseFailure(program.status()));
    CountLint(result.diagnostics);
    return result;
  }
  result.parse_ok = true;
  ViewClChecker(*this, *program, &result.diagnostics).Run();
  result.diagnostics.Sort();
  CountLint(result.diagnostics);
  return result;
}

LintResult Linter::LintViewCl(const viewcl::Program& program, std::string_view source) const {
  vl::ScopedSpan span("vlint");
  (void)source;
  LintResult result;
  result.parse_ok = true;
  ViewClChecker(*this, program, &result.diagnostics).Run();
  result.diagnostics.Sort();
  CountLint(result.diagnostics);
  return result;
}

LintResult Linter::LintViewQl(std::string_view source, const ProgramSummary* summary,
                              const std::vector<std::string>& known_sets) const {
  vl::ScopedSpan span("vlint");
  LintResult result;
  vl::StatusOr<std::vector<viewql::Statement>> stmts = viewql::ParseViewQlProgram(source);
  if (!stmts.ok()) {
    result.diagnostics.Add(ParseFailure(stmts.status()));
    CountLint(result.diagnostics);
    return result;
  }
  result.parse_ok = true;
  ViewQlChecker(*this, summary, known_sets, &result.diagnostics).Run(*stmts);
  result.diagnostics.Sort();
  CountLint(result.diagnostics);
  return result;
}

std::function<vl::Status(const viewcl::Program&, std::string_view)>
Linter::MakeLoadValidator() const {
  return [this](const viewcl::Program& program, std::string_view source) -> vl::Status {
    LintResult result = LintViewCl(program, source);
    if (result.diagnostics.errors() == 0) {
      return vl::Status::Ok();
    }
    return vl::ParseError("lint failed:\n" + result.diagnostics.RenderText(source, "load"));
  };
}

ProgramSummary Linter::SummarizeViewCl(std::string_view source) const {
  ProgramSummary summary;
  vl::StatusOr<viewcl::Program> program = viewcl::ParseViewCl(source);
  if (!program.ok()) {
    return summary;
  }
  summary.valid = true;
  // Inline boxes count too: the engine matches boxes by declared name, and
  // inline declarations produce real boxes in the graph.
  std::vector<const viewcl::BoxDecl*> decls;
  std::vector<const viewcl::Expr*> work;
  for (const auto& decl : program->defines) {
    decls.push_back(decl.get());
  }
  auto push_decl_exprs = [&work](const viewcl::BoxDecl* decl) {
    for (const viewcl::Binding& b : decl->where) {
      work.push_back(b.value.get());
    }
    for (const viewcl::ViewDecl& view : decl->views) {
      for (const viewcl::Binding& b : view.where) {
        work.push_back(b.value.get());
      }
      for (const viewcl::ItemDecl& item : view.items) {
        work.push_back(item.value.get());
      }
    }
  };
  for (const viewcl::BoxDecl* decl : decls) {
    push_decl_exprs(decl);
  }
  for (const viewcl::Binding& b : program->bindings) {
    work.push_back(b.value.get());
  }
  for (const viewcl::ExprPtr& p : program->plots) {
    work.push_back(p.get());
  }
  while (!work.empty()) {
    const viewcl::Expr* e = work.back();
    work.pop_back();
    if (e == nullptr) {
      continue;
    }
    if (e->kind == viewcl::Expr::Kind::kInlineBox && e->inline_box != nullptr) {
      decls.push_back(e->inline_box.get());
      push_decl_exprs(e->inline_box.get());
    }
    for (const viewcl::ExprPtr& kid : e->kids) {
      work.push_back(kid.get());
    }
    for (const viewcl::SwitchCase& sc : e->cases) {
      for (const viewcl::ExprPtr& label : sc.labels) {
        work.push_back(label.get());
      }
      work.push_back(sc.body.get());
    }
    work.push_back(e->otherwise.get());
    if (e->for_each != nullptr) {
      for (const viewcl::Binding& b : e->for_each->bindings) {
        work.push_back(b.value.get());
      }
      work.push_back(e->for_each->yield.get());
    }
  }
  for (const viewcl::BoxDecl* decl : decls) {
    BoxSummary& box = summary.boxes[decl->name];
    box.kernel_type = decl->kernel_type;
    std::set<std::string> members;
    for (const viewcl::ViewDecl& view : decl->views) {
      box.views.push_back(view.name);
      for (const viewcl::ItemDecl& item : view.items) {
        members.insert(item.name);
      }
    }
    box.members.assign(members.begin(), members.end());
  }
  return summary;
}

}  // namespace analysis
