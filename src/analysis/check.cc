#include "src/analysis/check.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace analysis {

namespace {

// Mirrored vkern constants. The engine deliberately does not include vkern
// headers: like vlint, it sees the kernel only through TypeRegistry /
// SymbolTable / ReadSession, so these literals are part of the rule
// definitions themselves (documented in docs/checking.md).
constexpr uint8_t kSlabPoison = 0x6b;          // POISON_FREE
constexpr uint32_t kSlabFreeEnd = 0xffffffffu; // embedded freelist terminator
constexpr uint32_t kPipeCanMerge = 1u << 4;    // PIPE_BUF_FLAG_CAN_MERGE
constexpr uint64_t kPgAnon = 1ull << 11;       // PG_anon
constexpr uint64_t kMtMaxIndex = ~0ull;        // maple-tree index space bound
constexpr uint64_t kPageSize = 4096;

// Matches ReadSession's page-scope granule.
constexpr uint64_t kPageGranule = 4096;

// Traversal bounds: a corrupted pointer chain must terminate the walk, not
// the process.
constexpr int kMaxListSteps = 4096;
constexpr int kMaxTreeNodes = 4096;
constexpr int kMaxTreeDepth = 64;
constexpr int kMaxHlistSteps = 1024;
constexpr int kMaxTasks = 4096;
constexpr size_t kMaxViolationsPerRule = 16;
constexpr size_t kMaxExplainChildren = 24;

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

const std::vector<CheckRuleInfo>& CatalogImpl() {
  static const std::vector<CheckRuleInfo> kCatalog = {
      {"VC001", "list-integrity",
       "list_head back-links and cycle/termination bounds on the global lists"},
      {"VC002", "rbtree-order",
       "CFS tasks_timeline in-order vruntime ordering and cached leftmost"},
      {"VC003", "rbtree-color",
       "red-black invariants: black root, no red-red edge, equal black-height"},
      {"VC004", "maple-pivots",
       "maple-tree pivot monotonicity, bounds and parent/type encoding per mm"},
      {"VC005", "slab-freelist",
       "slab inuse vs list membership and embedded free-index chain sanity"},
      {"VC006", "slab-poison",
       "freed objects keep 0x6b poison; suspect pointers into free objects = UAF"},
      {"VC007", "task-reachability",
       "every task on the global list reachable from init_task; parent links"},
      {"VC008", "rcu-cblist",
       "per-CPU RCU callback list length/tail consistency and gp_seq bounds"},
      {"VC009", "pipe-can-merge",
       "no PIPE_BUF_FLAG_CAN_MERGE on page-cache-backed pipe buffers (DirtyPipe)"},
      {"VC010", "timer-wheel",
       "timer-wheel hlist pprev back-link integrity across all wheel buckets"},
      {"VC011", "workqueue-linkage",
       "workqueue->pwq back-pointers and worker-pool list/count consistency"},
  };
  return kCatalog;
}

// Per-run traversal context: plumbing (typed reads, offsets, symbols), the
// explain tree, and the violation sink for one rule body.
class Checker {
 public:
  Checker(const dbg::TypeRegistry* types, const dbg::SymbolTable* symbols,
          dbg::ReadSession* session, const std::vector<uint64_t>* suspects,
          CheckRuleReport* report)
      : types_(types), symbols_(symbols), session_(session), suspects_(suspects),
        report_(report) {
    stack_.push_back(&report_->explain);
  }

  void Run(size_t rule_idx) {
    switch (rule_idx) {
      case 0: ListIntegrity(); break;
      case 1: RbOrder(); break;
      case 2: RbColor(); break;
      case 3: MaplePivots(); break;
      case 4: SlabFreelist(); break;
      case 5: SlabPoison(); break;
      case 6: TaskReachability(); break;
      case 7: RcuCblist(); break;
      case 8: PipeCanMerge(); break;
      case 9: TimerWheel(); break;
      case 10: WorkqueueLinkage(); break;
      default: break;
    }
    if (truncated_) {
      report_->explain.children.push_back(
          {"… further violations suppressed (cap " +
               std::to_string(kMaxViolationsPerRule) + ")",
           {}});
    }
  }

 private:
  // ---- plumbing -----------------------------------------------------------

  uint64_t Off(const char* type_name, const char* field_name) {
    const dbg::Type* t = types_->FindByName(type_name);
    const dbg::Field* f = t != nullptr ? t->FindField(field_name) : nullptr;
    if (f == nullptr) {
      MetaMissing(std::string(type_name) + "." + field_name);
      return 0;
    }
    return f->offset;
  }

  size_t SizeOf(const char* type_name) {
    const dbg::Type* t = types_->FindByName(type_name);
    if (t == nullptr) {
      MetaMissing(type_name);
      return 0;
    }
    return t->size;
  }

  // Resolves a global symbol; returns its address and (optionally) its type.
  bool Sym(const char* name, uint64_t* addr, const dbg::Type** type = nullptr) {
    dbg::Value v;
    if (!symbols_->FindGlobal(name, &v)) {
      MetaMissing(std::string("symbol ") + name);
      return false;
    }
    *addr = v.addr();
    if (type != nullptr) {
      *type = v.type();
    }
    return true;
  }

  // Array length of a global symbol (runqueues, rcu_data, timer_bases, ...);
  // falls back to 1 for non-array symbols.
  size_t SymArrayLen(const dbg::Type* t) const {
    return (t != nullptr && t->array_len > 0) ? t->array_len : 1;
  }

  std::optional<uint64_t> RU(uint64_t addr, size_t size, const char* what = nullptr) {
    vl::StatusOr<uint64_t> v = session_->ReadUnsigned(addr, size);
    if (!v.ok()) {
      Violate(addr, std::string("unreadable memory") +
                        (what != nullptr ? std::string(" (") + what + ")" : ""));
      return std::nullopt;
    }
    return v.value();
  }
  std::optional<uint64_t> RPtr(uint64_t addr, const char* what = nullptr) {
    return RU(addr, 8, what);
  }

  std::string RStr(uint64_t addr, size_t max_len) {
    vl::StatusOr<std::string> v = session_->ReadCString(addr, max_len);
    return v.ok() ? v.value() : std::string("<unreadable>");
  }

  bool ReadBuf(uint64_t addr, std::vector<uint8_t>* out, size_t len) {
    out->resize(len);
    return session_->ReadBytes(addr, out->data(), len).ok();
  }

  void MetaMissing(const std::string& what) {
    if (meta_reported_.insert(what).second) {
      CheckViolation v;
      v.addr = 0;
      v.trail = trail_;
      v.diagnostic.rule = report_->id;
      v.diagnostic.severity = vl::Severity::kWarning;
      v.diagnostic.message = "type registry incomplete: missing " + what;
      report_->violations.push_back(std::move(v));
    }
  }

  bool Exhausted() const { return truncated_; }

  void Violate(uint64_t addr, std::string message) {
    if (report_->violations.size() >= kMaxViolationsPerRule) {
      truncated_ = true;
      return;
    }
    CheckViolation v;
    v.addr = addr;
    v.trail = trail_;
    v.diagnostic.rule = report_->id;
    v.diagnostic.severity = vl::Severity::kError;
    v.diagnostic.message = std::move(message) + " (addr " + Hex(addr) + ")";
    report_->violations.push_back(std::move(v));
  }

  // ---- explain tree -------------------------------------------------------

  CheckExplainNode* Enter(std::string label) {
    CheckExplainNode* parent = stack_.back();
    CheckExplainNode* node;
    if (parent->children.size() < kMaxExplainChildren) {
      parent->children.push_back({label, {}});
      node = &parent->children.back();
    } else {
      if (parent->children.size() == kMaxExplainChildren) {
        parent->children.push_back({"…", {}});
      }
      // Overflowing children still get a live node (for the trail), parked in
      // a stable side pool so nested Enter/Leave keeps working.
      scratch_.push_back({label, {}});
      node = &scratch_.back();
    }
    stack_.push_back(node);
    trail_.push_back(std::move(label));
    return node;
  }

  void Leave() {
    stack_.pop_back();
    trail_.pop_back();
  }

  struct ExplainScope {
    ExplainScope(Checker* c, std::string label) : c_(c) { node = c->Enter(std::move(label)); }
    ~ExplainScope() { c_->Leave(); }
    CheckExplainNode* node;

   private:
    Checker* c_;
  };

  // ---- shared walks -------------------------------------------------------

  // Walks a circular list_head ring from `head`, checking next/prev
  // back-links and termination. Returns node addresses (excluding the head).
  std::vector<uint64_t> WalkList(uint64_t head, const std::string& what) {
    std::vector<uint64_t> nodes;
    const uint64_t off_next = Off("list_head", "next");
    const uint64_t off_prev = Off("list_head", "prev");
    uint64_t prev = head;
    std::optional<uint64_t> cur = RPtr(head + off_next, what.c_str());
    if (!cur) {
      return nodes;
    }
    int steps = 0;
    while (*cur != head) {
      if (*cur == 0) {
        Violate(prev, what + ": null next link");
        return nodes;
      }
      if (++steps > kMaxListSteps) {
        Violate(head, what + ": unterminated list (no return to head within " +
                          std::to_string(kMaxListSteps) + " nodes)");
        return nodes;
      }
      std::optional<uint64_t> back = RPtr(*cur + off_prev, what.c_str());
      if (!back) {
        return nodes;
      }
      if (*back != prev) {
        Violate(*cur, what + ": broken back-link, node->prev is " + Hex(*back) +
                          " but the predecessor is " + Hex(prev));
      }
      nodes.push_back(*cur);
      prev = *cur;
      cur = RPtr(*cur + off_next, what.c_str());
      if (!cur) {
        return nodes;
      }
    }
    if (!nodes.empty()) {
      std::optional<uint64_t> head_prev = RPtr(head + off_prev, what.c_str());
      if (head_prev && *head_prev != prev) {
        Violate(head, what + ": head->prev is " + Hex(*head_prev) +
                          " but the last node is " + Hex(prev));
      }
    }
    return nodes;
  }

  // Enumerates every task on the global task list (init_task.tasks ring),
  // including init_task itself. Empty on metadata failure.
  std::vector<uint64_t> AllTasks() {
    uint64_t init_task = 0;
    if (!Sym("init_task", &init_task)) {
      return {};
    }
    const uint64_t off_tasks = Off("task_struct", "tasks");
    std::vector<uint64_t> tasks = {init_task};
    const uint64_t off_next = Off("list_head", "next");
    uint64_t head = init_task + off_tasks;
    std::optional<uint64_t> cur = RPtr(head + off_next, "task list");
    int steps = 0;
    while (cur && *cur != head && *cur != 0 && ++steps <= kMaxTasks) {
      tasks.push_back(*cur - off_tasks);
      cur = RPtr(*cur + off_next, "task list");
    }
    return tasks;
  }

  // ---- VC001 list-integrity ----------------------------------------------

  void ListIntegrity() {
    struct Root {
      const char* symbol;
      const char* label;
    };
    static const Root kRoots[] = {
        {"cache_chain", "cache_chain (kmem_cache ring)"},
        {"super_blocks", "super_blocks (mounted filesystems)"},
        {"workqueues", "workqueues (global workqueue list)"},
    };
    for (const Root& root : kRoots) {
      if (Exhausted()) return;
      uint64_t head = 0;
      if (!Sym(root.symbol, &head)) continue;
      ExplainScope scope(this, root.label);
      size_t n = WalkList(head, root.symbol).size();
      scope.node->label += " — " + std::to_string(n) + " nodes";
    }
    uint64_t init_task = 0;
    if (!Exhausted() && Sym("init_task", &init_task)) {
      ExplainScope scope(this, "init_task.tasks (global task list)");
      size_t n = WalkList(init_task + Off("task_struct", "tasks"), "task list").size();
      scope.node->label += " — " + std::to_string(n) + " nodes";
    }
  }

  // ---- VC002 / VC003: CFS red-black trees --------------------------------

  struct RbCtx {
    uint64_t off_parent_color;
    uint64_t off_right;
    uint64_t off_left;
    bool check_order;       // VC002: in-order vruntime monotonicity
    bool check_color;       // VC003: red-black structure
    uint64_t off_vruntime;  // node addr + off => vruntime (check_order)
    uint64_t prev_vruntime = 0;
    bool have_prev = false;
    uint64_t first_inorder = 0;
    int nodes = 0;
  };

  // Recursive in-order walk; returns the black-height (-1 on violation or
  // bound hit, with the violation already recorded).
  int RbWalk(RbCtx* ctx, uint64_t node, uint64_t parent, bool parent_red, int depth) {
    if (node == 0) {
      return 0;
    }
    if (depth > kMaxTreeDepth || ++ctx->nodes > kMaxTreeNodes) {
      Violate(node, "rbtree walk exceeded bounds (cycle or runaway depth)");
      return -1;
    }
    std::optional<uint64_t> pc = RPtr(node + ctx->off_parent_color, "rb_node");
    if (!pc) return -1;
    const bool black = (*pc & 1) != 0;
    if (ctx->check_color) {
      uint64_t up = *pc & ~3ull;
      if (up != parent) {
        Violate(node, "rb_node parent pointer is " + Hex(up) + ", expected " + Hex(parent));
        return -1;
      }
      if (parent_red && !black) {
        Violate(node, "red node with a red parent (red-red edge)");
        return -1;
      }
    }
    std::optional<uint64_t> left = RPtr(node + ctx->off_left, "rb_node");
    std::optional<uint64_t> right = RPtr(node + ctx->off_right, "rb_node");
    if (!left || !right) return -1;

    int lh = RbWalk(ctx, *left, node, !black, depth + 1);
    if (lh < 0) return -1;
    // In-order visit.
    if (ctx->check_order) {
      if (ctx->first_inorder == 0) {
        ctx->first_inorder = node;
      }
      std::optional<uint64_t> vr = RU(node + ctx->off_vruntime, 8, "vruntime");
      if (!vr) return -1;
      if (ctx->have_prev && *vr < ctx->prev_vruntime) {
        Violate(node, "tasks_timeline out of order: vruntime " + std::to_string(*vr) +
                          " follows " + std::to_string(ctx->prev_vruntime));
      }
      ctx->prev_vruntime = *vr;
      ctx->have_prev = true;
    }
    int rh = RbWalk(ctx, *right, node, !black, depth + 1);
    if (rh < 0) return -1;
    if (ctx->check_color && lh != rh) {
      Violate(node, "unequal black-heights below node (" + std::to_string(lh) + " vs " +
                        std::to_string(rh) + ")");
      return -1;
    }
    return lh + (black ? 1 : 0);
  }

  void CfsTrees(bool check_order, bool check_color) {
    uint64_t rq_base = 0;
    const dbg::Type* rq_type = nullptr;
    if (!Sym("runqueues", &rq_base, &rq_type)) return;
    const size_t cpus = SymArrayLen(rq_type);
    const size_t rq_size = SizeOf("rq");
    const uint64_t off_cfs = Off("rq", "cfs");
    const uint64_t off_tl = Off("cfs_rq", "tasks_timeline");
    const uint64_t off_root = Off("rb_root_cached", "rb_root") + Off("rb_root", "rb_node");
    const uint64_t off_leftmost = Off("rb_root_cached", "rb_leftmost");
    RbCtx ctx;
    ctx.off_parent_color = Off("rb_node", "__rb_parent_color");
    ctx.off_right = Off("rb_node", "rb_right");
    ctx.off_left = Off("rb_node", "rb_left");
    ctx.check_order = check_order;
    ctx.check_color = check_color;
    // The run_node rb_node is embedded in sched_entity: vruntime is a fixed
    // delta from the node address.
    ctx.off_vruntime = Off("sched_entity", "vruntime") - Off("sched_entity", "run_node");

    for (size_t cpu = 0; cpu < cpus; ++cpu) {
      if (Exhausted()) return;
      uint64_t tl = rq_base + cpu * rq_size + off_cfs + off_tl;
      ExplainScope scope(this, "runqueues[" + std::to_string(cpu) + "].cfs.tasks_timeline");
      std::optional<uint64_t> root = RPtr(tl + off_root, "rb_root");
      std::optional<uint64_t> leftmost = RPtr(tl + off_leftmost, "rb_leftmost");
      if (!root || !leftmost) continue;
      if (check_color && *root != 0) {
        std::optional<uint64_t> pc = RPtr(*root + ctx.off_parent_color, "rb root");
        if (pc && (*pc & 1) == 0) {
          Violate(*root, "rbtree root is red");
        }
      }
      ctx.have_prev = false;
      ctx.first_inorder = 0;
      ctx.nodes = 0;
      RbWalk(&ctx, *root, 0, false, 0);
      if (check_order && ctx.first_inorder != *leftmost) {
        Violate(tl + off_leftmost,
                "rb_leftmost is " + Hex(*leftmost) + " but the leftmost node is " +
                    Hex(ctx.first_inorder));
      }
      scope.node->label += " — " + std::to_string(ctx.nodes) + " nodes";
    }
  }

  void RbOrder() { CfsTrees(/*check_order=*/true, /*check_color=*/false); }
  void RbColor() { CfsTrees(/*check_order=*/false, /*check_color=*/true); }

  // ---- VC004 maple-pivots -------------------------------------------------

  struct MapleCtx {
    uint64_t tree_addr = 0;
    int nodes = 0;
    int leaf_depth = -1;
  };

  // Mirrors ma_data_end(): the first zero pivot (or one >= max) ends the data.
  uint32_t MapleDataEnd(const std::vector<uint64_t>& pivots, uint64_t max) const {
    for (uint32_t i = 0; i < pivots.size(); ++i) {
      if (pivots[i] == 0 || pivots[i] >= max) {
        return i;
      }
    }
    return static_cast<uint32_t>(pivots.size());
  }

  void MapleNodeWalk(MapleCtx* ctx, uint64_t enode, uint64_t min, uint64_t max,
                     uint64_t parent_node, uint32_t slot_in_parent, int depth) {
    if (Exhausted()) return;
    const uint64_t node = enode & ~0xffull;
    const uint32_t type = static_cast<uint32_t>((enode >> 3) & 0xf);
    if (depth > kMaxTreeDepth || ++ctx->nodes > kMaxTreeNodes) {
      Violate(node, "maple walk exceeded bounds (cycle or runaway depth)");
      return;
    }
    // Types: 1 = leaf_64, 2 = range_64, 3 = arange_64 (0 = dense, unused for
    // VMA trees).
    if (type < 1 || type > 3) {
      Violate(node, "maple_enode encodes invalid node type " + std::to_string(type));
      return;
    }
    const bool is_leaf = type == 1;
    const bool arange = type == 3;
    const char* tn = arange ? "maple_arange_64" : "maple_range_64";
    const uint64_t off_parent = Off(tn, "parent");
    const uint64_t off_pivot = Off(tn, "pivot");
    const uint64_t off_slot = Off(tn, "slot");
    const uint32_t n_pivots = arange ? 9 : 15;

    std::optional<uint64_t> parent = RPtr(node + off_parent, "maple parent");
    if (!parent) return;
    if (parent_node == 0) {
      if ((*parent & 1) == 0) {
        Violate(node, "maple root node lacks the root parent marker");
      } else if ((*parent & ~1ull) != ctx->tree_addr) {
        Violate(node, "maple root parent does not point back at the tree " +
                          Hex(ctx->tree_addr));
      }
    } else {
      if ((*parent & 1) != 0) {
        Violate(node, "non-root maple node carries the root marker");
      } else if ((*parent & ~0xffull) != parent_node) {
        Violate(node, "maple parent encoding points at " + Hex(*parent & ~0xffull) +
                          ", expected " + Hex(parent_node));
      } else if (static_cast<uint32_t>((*parent >> 1) & 0xf) != slot_in_parent) {
        Violate(node, "maple parent slot encoding is " +
                          std::to_string((*parent >> 1) & 0xf) + ", expected " +
                          std::to_string(slot_in_parent));
      }
    }

    std::vector<uint64_t> pivots(n_pivots);
    for (uint32_t i = 0; i < n_pivots; ++i) {
      std::optional<uint64_t> p = RU(node + off_pivot + 8ull * i, 8, "maple pivot");
      if (!p) return;
      pivots[i] = *p;
    }
    const uint32_t end = MapleDataEnd(pivots, max);
    uint64_t prev = min;
    for (uint32_t i = 0; i < end; ++i) {
      if (pivots[i] < prev || pivots[i] > max) {
        Violate(node + off_pivot + 8ull * i,
                "maple pivot[" + std::to_string(i) + "] = " + Hex(pivots[i]) +
                    " outside [" + Hex(prev) + ", " + Hex(max) + "] (non-monotonic "
                    "or out of the subtree range)");
        return;
      }
      prev = pivots[i] + 1;
    }

    if (is_leaf) {
      if (ctx->leaf_depth < 0) {
        ctx->leaf_depth = depth;
      } else if (ctx->leaf_depth != depth) {
        Violate(node, "maple leaves at different depths (" + std::to_string(depth) +
                          " vs " + std::to_string(ctx->leaf_depth) + ")");
      }
      for (uint32_t i = 0; i <= end && i < n_pivots + 1; ++i) {
        std::optional<uint64_t> slot = RPtr(node + off_slot + 8ull * i, "maple slot");
        if (!slot) return;
        if (*slot != 0 && (*slot & 2) != 0) {
          Violate(node + off_slot + 8ull * i, "maple leaf slot holds an internal "
                                              "node pointer " + Hex(*slot));
        }
      }
      return;
    }
    uint64_t slot_min = min;
    for (uint32_t i = 0; i <= end; ++i) {
      uint64_t slot_max = (i < end) ? pivots[i] : max;
      std::optional<uint64_t> child = RPtr(node + off_slot + 8ull * i, "maple slot");
      if (!child) return;
      if (*child == 0 || (*child & 2) == 0) {
        Violate(node + off_slot + 8ull * i,
                "maple internal slot[" + std::to_string(i) + "] does not hold a node (" +
                    Hex(*child) + ")");
        return;
      }
      MapleNodeWalk(ctx, *child, slot_min, slot_max, node, i, depth + 1);
      if (slot_max == kMtMaxIndex) break;
      slot_min = slot_max + 1;
    }
  }

  void MaplePivots() {
    const uint64_t off_mm = Off("task_struct", "mm");
    const uint64_t off_mt = Off("mm_struct", "mm_mt");
    const uint64_t off_root = Off("maple_tree", "ma_root");
    const uint64_t off_comm = Off("task_struct", "comm");
    std::unordered_set<uint64_t> seen_mm;
    for (uint64_t task : AllTasks()) {
      if (Exhausted()) return;
      std::optional<uint64_t> mm = RPtr(task + off_mm, "task->mm");
      if (!mm || *mm == 0 || !seen_mm.insert(*mm).second) continue;
      uint64_t tree = *mm + off_mt;
      std::optional<uint64_t> root = RPtr(tree + off_root, "ma_root");
      if (!root) continue;
      ExplainScope scope(this, RStr(task + off_comm, 16) + ": mm " + Hex(*mm) + " mm_mt");
      if (*root == 0 || (*root & 2) == 0) {
        scope.node->label += " (empty/direct)";
        continue;  // empty tree or direct root entry: nothing structural
      }
      MapleCtx ctx;
      ctx.tree_addr = tree;
      MapleNodeWalk(&ctx, *root, 0, kMtMaxIndex, 0, 0, 0);
      scope.node->label += " — " + std::to_string(ctx.nodes) + " nodes";
    }
  }

  // ---- VC005 / VC006: slab caches ----------------------------------------

  struct SlabInfo {
    uint64_t slab_addr = 0;
    uint64_t s_mem = 0;
    uint32_t inuse = 0;
    std::vector<uint32_t> free_chain;  // indexes on the embedded freelist
    bool chain_ok = false;
  };

  struct CacheInfo {
    uint64_t addr = 0;
    std::string name;
    uint32_t object_size = 0;
    uint32_t size = 0;  // aligned stride
    uint32_t num = 0;
    std::vector<SlabInfo> slabs;
  };

  // Reads one slab descriptor and walks its embedded free-index chain.
  // `expect` classifies the list the slab was found on: 0 = free, 1 =
  // partial, 2 = full. Emits VC005-style violations when `strict`.
  SlabInfo ReadSlab(const CacheInfo& cache, uint64_t slab_addr, int expect, bool strict) {
    SlabInfo info;
    info.slab_addr = slab_addr;
    const uint64_t off_cache = Off("slab", "cache");
    const uint64_t off_smem = Off("slab", "s_mem");
    const uint64_t off_inuse = Off("slab", "inuse");
    const uint64_t off_free = Off("slab", "free_idx");
    std::optional<uint64_t> owner = RPtr(slab_addr + off_cache, "slab->cache");
    std::optional<uint64_t> smem = RPtr(slab_addr + off_smem, "slab->s_mem");
    std::optional<uint64_t> inuse = RU(slab_addr + off_inuse, 4, "slab->inuse");
    std::optional<uint64_t> free_idx = RU(slab_addr + off_free, 4, "slab->free_idx");
    if (!owner || !smem || !inuse || !free_idx) return info;
    info.s_mem = *smem;
    info.inuse = static_cast<uint32_t>(*inuse);
    if (strict) {
      if (*owner != cache.addr) {
        Violate(slab_addr, "slab->cache points at " + Hex(*owner) + ", expected cache '" +
                               cache.name + "' " + Hex(cache.addr));
      }
      if (info.inuse > cache.num) {
        Violate(slab_addr, "slab inuse " + std::to_string(info.inuse) +
                               " exceeds objects-per-slab " + std::to_string(cache.num));
      }
      bool list_ok = (expect == 0 && info.inuse == 0) ||
                     (expect == 1 && info.inuse > 0 && info.inuse < cache.num) ||
                     (expect == 2 && info.inuse == cache.num);
      if (!list_ok) {
        static const char* kLists[] = {"slabs_free", "slabs_partial", "slabs_full"};
        Violate(slab_addr, std::string("slab with inuse ") + std::to_string(info.inuse) +
                               "/" + std::to_string(cache.num) + " is on the wrong list (" +
                               kLists[expect] + ")");
      }
    }
    // Walk the embedded free-index chain.
    std::vector<bool> seen(cache.num, false);
    uint32_t idx = static_cast<uint32_t>(*free_idx);
    uint32_t steps = 0;
    while (idx != kSlabFreeEnd) {
      if (idx >= cache.num) {
        if (strict) {
          Violate(slab_addr, "free-index chain escapes the slab: index " +
                                 std::to_string(idx) + " >= " + std::to_string(cache.num));
        }
        return info;
      }
      if (seen[idx] || ++steps > cache.num) {
        if (strict) {
          Violate(info.s_mem + static_cast<uint64_t>(idx) * cache.size,
                  "free-index chain cycles at index " + std::to_string(idx));
        }
        return info;
      }
      seen[idx] = true;
      info.free_chain.push_back(idx);
      std::optional<uint64_t> next =
          RU(info.s_mem + static_cast<uint64_t>(idx) * cache.size, 4, "freelist word");
      if (!next) return info;
      idx = static_cast<uint32_t>(*next);
    }
    info.chain_ok = true;
    if (strict && info.free_chain.size() != cache.num - info.inuse) {
      Violate(slab_addr, "free-index chain has " + std::to_string(info.free_chain.size()) +
                             " entries, expected num - inuse = " +
                             std::to_string(cache.num - info.inuse));
    }
    return info;
  }

  std::vector<CacheInfo> WalkCaches(bool strict) {
    std::vector<CacheInfo> caches;
    uint64_t chain = 0;
    if (!Sym("cache_chain", &chain)) return caches;
    const uint64_t off_link = Off("kmem_cache", "cache_list");
    const uint64_t off_name = Off("kmem_cache", "name");
    const uint64_t off_osize = Off("kmem_cache", "object_size");
    const uint64_t off_size = Off("kmem_cache", "size");
    const uint64_t off_num = Off("kmem_cache", "num");
    const uint64_t off_slab_list = Off("slab", "list");
    const uint64_t off_active = Off("kmem_cache", "active_objects");
    const uint64_t off_total = Off("kmem_cache", "total_objects");
    static const char* kLists[] = {"slabs_free", "slabs_partial", "slabs_full"};
    for (uint64_t node : WalkList(chain, "cache_chain")) {
      if (Exhausted()) break;
      CacheInfo cache;
      cache.addr = node - off_link;
      cache.name = RStr(cache.addr + off_name, 32);
      std::optional<uint64_t> osize = RU(cache.addr + off_osize, 4);
      std::optional<uint64_t> size = RU(cache.addr + off_size, 4);
      std::optional<uint64_t> num = RU(cache.addr + off_num, 4);
      if (!osize || !size || !num || *size == 0 || *num == 0) continue;
      cache.object_size = static_cast<uint32_t>(*osize);
      cache.size = static_cast<uint32_t>(*size);
      cache.num = static_cast<uint32_t>(*num);
      ExplainScope scope(this, "kmem_cache '" + cache.name + "' " + Hex(cache.addr));
      uint64_t sum_inuse = 0;
      uint64_t sum_objects = 0;
      for (int list = 0; list < 3; ++list) {
        uint64_t head = cache.addr + Off("kmem_cache", kLists[list]);
        for (uint64_t slab_node : WalkList(head, kLists[list])) {
          SlabInfo si = ReadSlab(cache, slab_node - off_slab_list, list, strict);
          sum_inuse += si.inuse;
          sum_objects += cache.num;
          cache.slabs.push_back(std::move(si));
        }
      }
      if (strict) {
        std::optional<uint64_t> active = RU(cache.addr + off_active, 8);
        std::optional<uint64_t> total = RU(cache.addr + off_total, 8);
        if (active && *active != sum_inuse) {
          Violate(cache.addr + off_active,
                  "cache '" + cache.name + "' active_objects " + std::to_string(*active) +
                      " != sum of slab inuse " + std::to_string(sum_inuse));
        }
        if (total && *total != sum_objects) {
          Violate(cache.addr + off_total,
                  "cache '" + cache.name + "' total_objects " + std::to_string(*total) +
                      " != objects on its slab lists " + std::to_string(sum_objects));
        }
      }
      scope.node->label += " — " + std::to_string(cache.slabs.size()) + " slabs, " +
                           std::to_string(sum_inuse) + " live objects";
      caches.push_back(std::move(cache));
    }
    return caches;
  }

  void SlabFreelist() { WalkCaches(/*strict=*/true); }

  void SlabPoison() {
    std::vector<CacheInfo> caches = WalkCaches(/*strict=*/false);
    std::vector<uint8_t> buf;
    for (const CacheInfo& cache : caches) {
      if (Exhausted()) return;
      if (cache.object_size <= sizeof(uint32_t)) continue;
      ExplainScope scope(this, "poison scan: '" + cache.name + "'");
      size_t scanned = 0;
      for (const SlabInfo& sl : cache.slabs) {
        for (uint32_t idx : sl.free_chain) {
          uint64_t obj = sl.s_mem + static_cast<uint64_t>(idx) * cache.size;
          // Skip the embedded freelist word, as IsPoisoned does.
          if (!ReadBuf(obj + sizeof(uint32_t), &buf, cache.object_size - sizeof(uint32_t))) {
            Violate(obj, "free object unreadable during poison scan");
            continue;
          }
          ++scanned;
          for (size_t i = 0; i < buf.size(); ++i) {
            if (buf[i] != kSlabPoison) {
              Violate(obj + sizeof(uint32_t) + i,
                      "free object in cache '" + cache.name + "' lost its 0x6b poison at +" +
                          std::to_string(sizeof(uint32_t) + i) +
                          " (write-after-free into " + Hex(obj) + ")");
              break;
            }
          }
          if (Exhausted()) return;
        }
      }
      scope.node->label += " — " + std::to_string(scanned) + " free objects";
    }
    // Suspect audit: a pointer a (crashed) reader still holds. If it resolves
    // into a *free* slab object, that reader's next dereference is a
    // use-after-free — this is how StackRot's stale maple node gets named.
    for (uint64_t suspect : *suspects_) {
      if (Exhausted()) return;
      ExplainScope scope(this, "suspect " + Hex(suspect));
      bool located = false;
      for (const CacheInfo& cache : caches) {
        for (const SlabInfo& sl : cache.slabs) {
          uint64_t span = static_cast<uint64_t>(cache.num) * cache.size;
          if (suspect < sl.s_mem || suspect >= sl.s_mem + span) continue;
          located = true;
          uint32_t idx = static_cast<uint32_t>((suspect - sl.s_mem) / cache.size);
          uint64_t obj = sl.s_mem + static_cast<uint64_t>(idx) * cache.size;
          bool is_free = std::find(sl.free_chain.begin(), sl.free_chain.end(), idx) !=
                         sl.free_chain.end();
          if (is_free) {
            Violate(obj, "use-after-free: suspect pointer " + Hex(suspect) +
                             " names freed object " + std::to_string(idx) + " of cache '" +
                             cache.name + "' (free-poisoned; any dereference reads 0x6b)");
            scope.node->label += " — freed object in '" + cache.name + "'";
          } else {
            scope.node->label += " — live object in '" + cache.name + "'";
          }
          break;
        }
        if (located) break;
      }
      if (!located) {
        scope.node->label += " — not a slab object";
      }
    }
  }

  // ---- VC007 task-reachability -------------------------------------------

  void TaskReachability() {
    uint64_t init_task = 0;
    if (!Sym("init_task", &init_task)) return;
    const uint64_t off_children = Off("task_struct", "children");
    const uint64_t off_sibling = Off("task_struct", "sibling");
    const uint64_t off_parent = Off("task_struct", "parent");
    const uint64_t off_real_parent = Off("task_struct", "real_parent");
    const uint64_t off_signal = Off("task_struct", "signal");
    const uint64_t off_thread_head = Off("signal_struct", "thread_head");
    const uint64_t off_thread_node = Off("task_struct", "thread_node");
    const uint64_t off_pid = Off("task_struct", "pid");
    const uint64_t off_comm = Off("task_struct", "comm");

    // Roots: init_task plus each runqueue's idle task (swapper/N lives on the
    // global list but outside the fork tree, exactly as in Linux).
    std::vector<uint64_t> stack = {init_task};
    uint64_t rq_base = 0;
    const dbg::Type* rq_type = nullptr;
    if (Sym("runqueues", &rq_base, &rq_type)) {
      const size_t rq_size = SizeOf("rq");
      const uint64_t off_idle = Off("rq", "idle");
      for (size_t cpu = 0; cpu < SymArrayLen(rq_type); ++cpu) {
        std::optional<uint64_t> idle = RPtr(rq_base + cpu * rq_size + off_idle, "rq->idle");
        if (idle && *idle != 0) stack.push_back(*idle);
      }
    }

    std::unordered_set<uint64_t> reachable;
    ExplainScope scope(this, "fork tree from init_task " + Hex(init_task));
    while (!stack.empty() && reachable.size() < kMaxTasks) {
      if (Exhausted()) return;
      uint64_t task = stack.back();
      stack.pop_back();
      if (!reachable.insert(task).second) continue;
      // Children.
      for (uint64_t node : WalkList(task + off_children, "children")) {
        uint64_t child = node - off_sibling;
        std::optional<uint64_t> parent = RPtr(child + off_parent, "task->parent");
        std::optional<uint64_t> real_parent = RPtr(child + off_real_parent, "real_parent");
        if (parent && real_parent && *parent != task && *real_parent != task) {
          Violate(child, "task on the children list of " + Hex(task) +
                             " but its parent is " + Hex(*parent));
        }
        stack.push_back(child);
      }
      // Thread group: every thread hangs off the shared signal_struct.
      std::optional<uint64_t> signal = RPtr(task + off_signal, "task->signal");
      if (signal && *signal != 0) {
        for (uint64_t node : WalkList(*signal + off_thread_head, "thread_head")) {
          stack.push_back(node - off_thread_node);
        }
      }
    }
    scope.node->label += " — " + std::to_string(reachable.size()) + " reachable";

    for (uint64_t task : AllTasks()) {
      if (Exhausted()) return;
      if (reachable.count(task) != 0) continue;
      std::optional<uint64_t> pid = RU(task + off_pid, 4);
      Violate(task, "task pid " + (pid ? std::to_string(static_cast<int>(*pid)) : "?") +
                        " comm '" + RStr(task + off_comm, 16) +
                        "' is on the global task list but unreachable from init_task");
    }
  }

  // ---- VC008 rcu-cblist ---------------------------------------------------

  void RcuCblist() {
    uint64_t rdp_base = 0;
    const dbg::Type* rdp_type = nullptr;
    if (!Sym("rcu_data", &rdp_base, &rdp_type)) return;
    uint64_t state = 0;
    if (!Sym("rcu_state", &state)) return;
    std::optional<uint64_t> global_seq = RU(state + Off("rcu_state", "gp_seq"), 8);
    if (!global_seq) return;
    const size_t rdp_size = SizeOf("rcu_data");
    const uint64_t off_cpu = Off("rcu_data", "cpu");
    const uint64_t off_gp = Off("rcu_data", "gp_seq");
    const uint64_t off_nesting = Off("rcu_data", "nesting");
    const uint64_t off_head = Off("rcu_data", "cblist_head");
    const uint64_t off_tail = Off("rcu_data", "cblist_tail");
    const uint64_t off_len = Off("rcu_data", "cblist_len");
    const uint64_t off_next = Off("rcu_head", "next");
    for (size_t cpu = 0; cpu < SymArrayLen(rdp_type); ++cpu) {
      if (Exhausted()) return;
      uint64_t rdp = rdp_base + cpu * rdp_size;
      ExplainScope scope(this, "rcu_data[" + std::to_string(cpu) + "] " + Hex(rdp));
      std::optional<uint64_t> cpu_field = RU(rdp + off_cpu, 4);
      if (cpu_field && *cpu_field != cpu) {
        Violate(rdp, "rcu_data cpu field is " + std::to_string(*cpu_field) + ", expected " +
                         std::to_string(cpu));
      }
      std::optional<uint64_t> nesting = RU(rdp + off_nesting, 4);
      if (nesting && static_cast<int32_t>(*nesting) < 0) {
        Violate(rdp + off_nesting, "negative rcu_read_lock nesting depth " +
                                       std::to_string(static_cast<int32_t>(*nesting)));
      }
      std::optional<uint64_t> gp = RU(rdp + off_gp, 8);
      if (gp && *gp > *global_seq) {
        Violate(rdp + off_gp, "per-CPU gp_seq " + std::to_string(*gp) +
                                  " is ahead of the global grace period " +
                                  std::to_string(*global_seq));
      }
      std::optional<uint64_t> len = RU(rdp + off_len, 8);
      std::optional<uint64_t> tail = RPtr(rdp + off_tail, "cblist_tail");
      if (!len || !tail) continue;
      uint64_t link = rdp + off_head;  // address of the pointer we follow
      std::optional<uint64_t> cur = RPtr(link, "cblist_head");
      uint64_t count = 0;
      const uint64_t cap = *len + 16;
      while (cur && *cur != 0) {
        if (++count > cap) {
          Violate(rdp + off_head, "cblist longer than cblist_len + slack (cycle or "
                                  "unaccounted callbacks)");
          break;
        }
        link = *cur + off_next;
        cur = RPtr(link, "rcu_head->next");
      }
      if (cur && *cur == 0) {
        if (count != *len) {
          Violate(rdp + off_len, "cblist_len says " + std::to_string(*len) +
                                     " callbacks but the chain holds " +
                                     std::to_string(count));
        }
        if (*tail != link) {
          Violate(rdp + off_tail, "cblist_tail is " + Hex(*tail) +
                                      " but the last next pointer lives at " + Hex(link));
        }
      }
      scope.node->label += " — " + std::to_string(count) + " callbacks";
    }
  }

  // ---- VC009 pipe-can-merge ----------------------------------------------

  void PipeCanMerge() {
    uint64_t sb_head = 0;
    if (!Sym("super_blocks", &sb_head)) return;
    const uint64_t off_s_list = Off("super_block", "s_list");
    const uint64_t off_s_inodes = Off("super_block", "s_inodes");
    const uint64_t off_s_id = Off("super_block", "s_id");
    const uint64_t off_i_sb_list = Off("inode", "i_sb_list");
    const uint64_t off_i_pipe = Off("inode", "i_pipe");
    const uint64_t off_i_ino = Off("inode", "i_ino");
    const uint64_t off_head = Off("pipe_inode_info", "head");
    const uint64_t off_tail = Off("pipe_inode_info", "tail");
    const uint64_t off_ring = Off("pipe_inode_info", "ring_size");
    const uint64_t off_bufs = Off("pipe_inode_info", "bufs");
    const size_t buf_size = SizeOf("pipe_buffer");
    const uint64_t off_b_page = Off("pipe_buffer", "page");
    const uint64_t off_b_off = Off("pipe_buffer", "offset");
    const uint64_t off_b_len = Off("pipe_buffer", "len");
    const uint64_t off_b_flags = Off("pipe_buffer", "flags");
    const uint64_t off_pg_mapping = Off("page", "mapping");
    const uint64_t off_pg_flags = Off("page", "flags");

    for (uint64_t sb_node : WalkList(sb_head, "super_blocks")) {
      if (Exhausted()) return;
      uint64_t sb = sb_node - off_s_list;
      std::string sid = RStr(sb + off_s_id, 32);
      size_t pipes = 0;
      ExplainScope sb_scope(this, "super_block '" + sid + "' " + Hex(sb));
      for (uint64_t ino_node : WalkList(sb + off_s_inodes, "s_inodes")) {
        if (Exhausted()) return;
        uint64_t ino = ino_node - off_i_sb_list;
        std::optional<uint64_t> pipe = RPtr(ino + off_i_pipe, "i_pipe");
        if (!pipe || *pipe == 0) continue;
        ++pipes;
        std::optional<uint64_t> ino_nr = RU(ino + off_i_ino, 8);
        ExplainScope scope(this, "pipe " + Hex(*pipe) + " (inode " +
                                     (ino_nr ? std::to_string(*ino_nr) : "?") + ")");
        std::optional<uint64_t> head = RU(*pipe + off_head, 4);
        std::optional<uint64_t> tail = RU(*pipe + off_tail, 4);
        std::optional<uint64_t> ring = RU(*pipe + off_ring, 4);
        std::optional<uint64_t> bufs = RPtr(*pipe + off_bufs, "pipe->bufs");
        if (!head || !tail || !ring || !bufs) continue;
        uint32_t ring_size = static_cast<uint32_t>(*ring);
        if (ring_size == 0 || (ring_size & (ring_size - 1)) != 0 || ring_size > 4096) {
          Violate(*pipe + off_ring, "pipe ring_size " + std::to_string(ring_size) +
                                        " is not a sane power of two");
          continue;
        }
        uint32_t used = static_cast<uint32_t>(*head) - static_cast<uint32_t>(*tail);
        if (used > ring_size) {
          Violate(*pipe, "pipe occupancy head-tail = " + std::to_string(used) +
                             " exceeds ring_size " + std::to_string(ring_size));
          continue;
        }
        for (uint32_t k = 0; k < used; ++k) {
          uint32_t idx = (static_cast<uint32_t>(*tail) + k) & (ring_size - 1);
          uint64_t buf = *bufs + static_cast<uint64_t>(idx) * buf_size;
          std::optional<uint64_t> flags = RU(buf + off_b_flags, 4);
          std::optional<uint64_t> page = RPtr(buf + off_b_page, "buf->page");
          std::optional<uint64_t> blen = RU(buf + off_b_len, 4);
          std::optional<uint64_t> boff = RU(buf + off_b_off, 4);
          if (!flags || !page || !blen || !boff) continue;
          if (*page == 0) {
            Violate(buf, "occupied pipe slot " + std::to_string(idx) + " has no page");
            continue;
          }
          if (*boff + *blen > kPageSize) {
            Violate(buf, "pipe buffer slot " + std::to_string(idx) + " spans past its page "
                         "(offset " + std::to_string(*boff) + " + len " +
                         std::to_string(*blen) + ")");
          }
          if ((*flags & kPipeCanMerge) != 0) {
            std::optional<uint64_t> mapping = RPtr(*page + off_pg_mapping, "page->mapping");
            std::optional<uint64_t> pflags = RU(*page + off_pg_flags, 8);
            if (!mapping || !pflags) continue;
            bool file_backed =
                *mapping != 0 && (*mapping & 1) == 0 && (*pflags & kPgAnon) == 0;
            if (file_backed) {
              Violate(buf, "PIPE_BUF_FLAG_CAN_MERGE set on ring slot " +
                               std::to_string(idx) + " whose page " + Hex(*page) +
                               " is page-cache-backed (mapping " + Hex(*mapping) +
                               ") — the Dirty Pipe signature: writes merge into the "
                               "shared file page");
            }
          }
        }
      }
      sb_scope.node->label += " — " + std::to_string(pipes) + " pipes";
    }
  }

  // ---- VC010 timer-wheel --------------------------------------------------

  void TimerWheel() {
    uint64_t base_addr = 0;
    const dbg::Type* base_type = nullptr;
    if (!Sym("timer_bases", &base_addr, &base_type)) return;
    const size_t base_size = SizeOf("timer_base");
    const uint64_t off_cpu = Off("timer_base", "cpu");
    const uint64_t off_vectors = Off("timer_base", "vectors");
    const uint64_t off_first = Off("hlist_head", "first");
    const uint64_t off_next = Off("hlist_node", "next");
    const uint64_t off_pprev = Off("hlist_node", "pprev");
    const dbg::Type* tb = types_->FindByName("timer_base");
    const dbg::Field* vf = tb != nullptr ? tb->FindField("vectors") : nullptr;
    const size_t slots =
        (vf != nullptr && vf->type != nullptr && vf->type->array_len > 0)
            ? vf->type->array_len
            : 256;
    const size_t head_size = SizeOf("hlist_head");
    for (size_t cpu = 0; cpu < SymArrayLen(base_type); ++cpu) {
      if (Exhausted()) return;
      uint64_t base = base_addr + cpu * base_size;
      ExplainScope scope(this, "timer_bases[" + std::to_string(cpu) + "] " + Hex(base));
      std::optional<uint64_t> cpu_field = RU(base + off_cpu, 4);
      if (cpu_field && *cpu_field != cpu) {
        Violate(base + off_cpu, "timer_base cpu field is " + std::to_string(*cpu_field) +
                                    ", expected " + std::to_string(cpu));
      }
      size_t timers = 0;
      for (size_t s = 0; s < slots; ++s) {
        uint64_t head = base + off_vectors + s * head_size + off_first;
        std::optional<uint64_t> cur = RPtr(head, "wheel bucket");
        uint64_t expected_pprev = head;
        int steps = 0;
        while (cur && *cur != 0) {
          if (++steps > kMaxHlistSteps) {
            Violate(head, "timer-wheel bucket " + std::to_string(s) +
                              " does not terminate (cycle)");
            break;
          }
          ++timers;
          std::optional<uint64_t> pprev = RPtr(*cur + off_pprev, "timer pprev");
          if (!pprev) break;
          if (*pprev != expected_pprev) {
            Violate(*cur, "timer-wheel bucket " + std::to_string(s) +
                              ": node pprev is " + Hex(*pprev) + ", expected " +
                              Hex(expected_pprev));
          }
          expected_pprev = *cur + off_next;
          cur = RPtr(*cur + off_next, "timer next");
          if (Exhausted()) return;
        }
      }
      scope.node->label += " — " + std::to_string(timers) + " pending timers";
    }
  }

  // ---- VC011 workqueue-linkage -------------------------------------------

  void WorkqueueLinkage() {
    uint64_t wq_head = 0;
    if (Sym("workqueues", &wq_head)) {
      const uint64_t off_list = Off("workqueue_struct", "list");
      const uint64_t off_name = Off("workqueue_struct", "name");
      const uint64_t off_pwqs = Off("workqueue_struct", "pwqs");
      const uint64_t off_pwq_node = Off("pool_workqueue", "pwqs_node");
      const uint64_t off_pwq_wq = Off("pool_workqueue", "wq");
      const uint64_t off_pwq_pool = Off("pool_workqueue", "pool");
      for (uint64_t node : WalkList(wq_head, "workqueues")) {
        if (Exhausted()) return;
        uint64_t wq = node - off_list;
        ExplainScope scope(this, "workqueue '" + RStr(wq + off_name, 24) + "' " + Hex(wq));
        size_t pwqs = 0;
        for (uint64_t pwq_node : WalkList(wq + off_pwqs, "pwqs")) {
          uint64_t pwq = pwq_node - off_pwq_node;
          ++pwqs;
          std::optional<uint64_t> back = RPtr(pwq + off_pwq_wq, "pwq->wq");
          if (back && *back != wq) {
            Violate(pwq, "pool_workqueue->wq points at " + Hex(*back) +
                             ", expected its owning workqueue " + Hex(wq));
          }
          std::optional<uint64_t> pool = RPtr(pwq + off_pwq_pool, "pwq->pool");
          if (pool && *pool == 0) {
            Violate(pwq, "pool_workqueue without a worker_pool");
          }
        }
        scope.node->label += " — " + std::to_string(pwqs) + " pwqs";
      }
    }
    uint64_t pools = 0;
    const dbg::Type* pools_type = nullptr;
    if (!Sym("cpu_worker_pools", &pools, &pools_type)) return;
    const size_t pool_size = SizeOf("worker_pool");
    const uint64_t off_pool_cpu = Off("worker_pool", "cpu");
    const uint64_t off_worklist = Off("worker_pool", "worklist");
    const uint64_t off_workers = Off("worker_pool", "workers");
    const uint64_t off_nr_workers = Off("worker_pool", "nr_workers");
    const uint64_t off_nr_running = Off("worker_pool", "nr_running");
    const uint64_t off_work_entry = Off("work_struct", "entry");
    const uint64_t off_work_func = Off("work_struct", "func");
    for (size_t cpu = 0; cpu < SymArrayLen(pools_type); ++cpu) {
      if (Exhausted()) return;
      uint64_t pool = pools + cpu * pool_size;
      ExplainScope scope(this, "cpu_worker_pools[" + std::to_string(cpu) + "] " + Hex(pool));
      std::optional<uint64_t> cpu_field = RU(pool + off_pool_cpu, 4);
      if (cpu_field && *cpu_field != cpu) {
        Violate(pool + off_pool_cpu, "worker_pool cpu field is " +
                                         std::to_string(static_cast<int32_t>(*cpu_field)) +
                                         ", expected " + std::to_string(cpu));
      }
      size_t pending = 0;
      for (uint64_t work_node : WalkList(pool + off_worklist, "worklist")) {
        uint64_t work = work_node - off_work_entry;
        ++pending;
        std::optional<uint64_t> func = RPtr(work + off_work_func, "work->func");
        if (func && *func == 0) {
          Violate(work, "pending work_struct with a null function pointer");
        }
      }
      // The boot path counts one conceptual worker per pool without linking
      // worker structs, so the list may undershoot nr_workers — but never
      // overshoot it, and nr_running is bounded by nr_workers.
      size_t workers = WalkList(pool + off_workers, "workers").size();
      std::optional<uint64_t> nr = RU(pool + off_nr_workers, 4);
      std::optional<uint64_t> running = RU(pool + off_nr_running, 4);
      if (nr && workers > *nr) {
        Violate(pool + off_nr_workers, "worker_pool nr_workers says " + std::to_string(*nr) +
                                           " but the workers list holds " +
                                           std::to_string(workers));
      }
      if (nr && running && *running > *nr) {
        Violate(pool + off_nr_workers, "worker_pool nr_running " + std::to_string(*running) +
                                           " exceeds nr_workers " + std::to_string(*nr));
      }
      scope.node->label +=
          " — " + std::to_string(pending) + " pending, " + std::to_string(workers) + " workers";
    }
  }

  const dbg::TypeRegistry* types_;
  const dbg::SymbolTable* symbols_;
  dbg::ReadSession* session_;
  const std::vector<uint64_t>* suspects_;
  CheckRuleReport* report_;
  std::vector<CheckExplainNode*> stack_;
  std::deque<CheckExplainNode> scratch_;
  std::vector<std::string> trail_;
  std::unordered_set<std::string> meta_reported_;
  bool truncated_ = false;
};

}  // namespace

// ---- report types ---------------------------------------------------------

vl::Json CheckExplainNode::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["label"] = vl::Json::Str(label);
  if (!children.empty()) {
    vl::Json kids = vl::Json::Array();
    for (const CheckExplainNode& child : children) {
      kids.Append(child.ToJson());
    }
    j["children"] = std::move(kids);
  }
  return j;
}

void CheckExplainNode::Render(std::string* out, int depth) const {
  for (int i = 0; i < depth; ++i) out->append("  ");
  out->append(label);
  out->push_back('\n');
  for (const CheckExplainNode& child : children) {
    child.Render(out, depth + 1);
  }
}

vl::Json CheckViolation::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["rule"] = vl::Json::Str(diagnostic.rule);
  j["severity"] = vl::Json::Str(std::string(vl::SeverityName(diagnostic.severity)));
  j["addr"] = vl::Json::Str(Hex(addr));
  j["message"] = vl::Json::Str(diagnostic.message);
  vl::Json t = vl::Json::Array();
  for (const std::string& hop : trail) {
    t.Append(vl::Json::Str(hop));
  }
  j["trail"] = std::move(t);
  return j;
}

vl::Json CheckRuleReport::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["id"] = vl::Json::Str(id);
  j["name"] = vl::Json::Str(name);
  j["ran"] = vl::Json::Bool(ran);
  j["skipped_clean"] = vl::Json::Bool(skipped_clean);
  j["reads"] = vl::Json::Int(static_cast<int64_t>(reads));
  j["bytes"] = vl::Json::Int(static_cast<int64_t>(bytes));
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["footprint_pages"] = vl::Json::Int(static_cast<int64_t>(footprint.size()));
  vl::Json v = vl::Json::Array();
  for (const CheckViolation& violation : violations) {
    v.Append(violation.ToJson());
  }
  j["violations"] = std::move(v);
  j["explain"] = explain.ToJson();
  return j;
}

size_t CheckReport::violations() const {
  size_t n = 0;
  for (const CheckRuleReport& r : rules) n += r.violations.size();
  return n;
}

size_t CheckReport::rules_run() const {
  size_t n = 0;
  for (const CheckRuleReport& r : rules) n += r.ran ? 1 : 0;
  return n;
}

size_t CheckReport::rules_skipped() const {
  size_t n = 0;
  for (const CheckRuleReport& r : rules) n += r.skipped_clean ? 1 : 0;
  return n;
}

vl::DiagnosticList CheckReport::Diagnostics() const {
  vl::DiagnosticList list;
  for (const CheckRuleReport& r : rules) {
    for (const CheckViolation& v : r.violations) {
      list.Add(v.diagnostic);
    }
  }
  list.Sort();
  return list;
}

vl::Json CheckReport::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["incremental"] = vl::Json::Bool(incremental);
  j["rules_run"] = vl::Json::Int(static_cast<int64_t>(rules_run()));
  j["rules_skipped"] = vl::Json::Int(static_cast<int64_t>(rules_skipped()));
  j["violations"] = vl::Json::Int(static_cast<int64_t>(violations()));
  j["reads"] = vl::Json::Int(static_cast<int64_t>(reads));
  j["bytes"] = vl::Json::Int(static_cast<int64_t>(bytes));
  j["charged_ns"] = vl::Json::Int(static_cast<int64_t>(charged_ns));
  j["sync_ns"] = vl::Json::Int(static_cast<int64_t>(sync_ns));
  j["clock_delta_ns"] = vl::Json::Int(static_cast<int64_t>(clock_delta_ns));
  j["reconciled"] = vl::Json::Bool(reconciled);
  vl::Json rs = vl::Json::Array();
  for (const CheckRuleReport& r : rules) {
    rs.Append(r.ToJson());
  }
  j["rules"] = std::move(rs);
  return j;
}

std::string CheckReport::RenderText() const {
  std::string out;
  for (const CheckRuleReport& r : rules) {
    out += r.id + " " + r.name + ": ";
    if (r.skipped_clean) {
      out += "skipped (footprint clean)";
    } else {
      out += std::to_string(r.violations.size()) + " violation(s), " +
             std::to_string(r.reads) + " reads, " + std::to_string(r.charged_ns) + " ns";
    }
    out.push_back('\n');
    for (const CheckViolation& v : r.violations) {
      out += "  " + std::string(vl::SeverityName(v.diagnostic.severity)) + "[" +
             v.diagnostic.rule + "]: " + v.diagnostic.message + "\n";
      if (!v.trail.empty()) {
        out += "    via: ";
        for (size_t i = 0; i < v.trail.size(); ++i) {
          if (i > 0) out += " > ";
          out += v.trail[i];
        }
        out.push_back('\n');
      }
    }
  }
  out += "vcheck: " + std::to_string(rules_run()) + " rule(s) run, " +
         std::to_string(rules_skipped()) + " skipped, " + std::to_string(violations()) +
         " violation(s), " + std::to_string(charged_ns + sync_ns) + " ns charged (" +
         (reconciled ? "reconciles" : "DOES NOT reconcile") + " with Target::clock())\n";
  return out;
}

// ---- engine ---------------------------------------------------------------

CheckEngine::CheckEngine(const dbg::TypeRegistry* types, const dbg::SymbolTable* symbols,
                         dbg::ReadSession* session)
    : types_(types), symbols_(symbols), session_(session),
      states_(CatalogImpl().size()) {}

const std::vector<CheckRuleInfo>& CheckEngine::Catalog() { return CatalogImpl(); }

const CheckRuleInfo* CheckEngine::FindRule(std::string_view id_or_name) {
  for (const CheckRuleInfo& info : CatalogImpl()) {
    if (id_or_name == info.id || id_or_name == info.name) {
      return &info;
    }
  }
  return nullptr;
}

void CheckEngine::AddSuspect(uint64_t addr) {
  suspects_.push_back(addr);
  ++suspects_gen_;
}

void CheckEngine::ClearSuspects() {
  if (!suspects_.empty()) {
    ++suspects_gen_;
  }
  suspects_.clear();
}

CheckRuleReport CheckEngine::ExecuteRule(size_t idx) {
  const CheckRuleInfo& info = CatalogImpl()[idx];
  CheckRuleReport report;
  report.id = info.id;
  report.name = info.name;
  report.explain.label = std::string(info.id) + " " + info.name;
  dbg::Target* target = session_->target();
  const uint64_t ns0 = target->clock().nanos();
  const uint64_t reads0 = target->reads();
  const uint64_t bytes0 = target->bytes_read();
  session_->PushPageScope();
  {
    Checker checker(types_, symbols_, session_, &suspects_, &report);
    checker.Run(idx);
  }
  report.footprint = session_->PopPageScope();
  report.epoch = session_->epoch();
  report.charged_ns = target->clock().nanos() - ns0;
  report.reads = target->reads() - reads0;
  report.bytes = target->bytes_read() - bytes0;
  report.ran = true;

  RuleState& state = states_[idx];
  state.has_run = true;
  state.epoch = report.epoch;
  state.suspects_gen = suspects_gen_;
  state.last = report;
  return report;
}

bool CheckEngine::CanSkip(size_t idx) const {
  const RuleState& state = states_[idx];
  if (!state.has_run || state.suspects_gen != suspects_gen_) {
    return false;
  }
  if (state.last.footprint.empty()) {
    return false;  // a rule that read nothing proves nothing
  }
  for (uint64_t page : state.last.footprint) {
    if (!session_->RangeCleanSince(page, kPageGranule, state.epoch)) {
      return false;  // conservative: unknown history also lands here
    }
  }
  return true;
}

void CheckEngine::FinishSweep(CheckReport* report, uint64_t clock_before,
                              uint64_t clock_after) const {
  for (const CheckRuleReport& r : report->rules) {
    if (!r.ran) continue;
    report->charged_ns += r.charged_ns;
    report->reads += r.reads;
    report->bytes += r.bytes;
  }
  report->clock_delta_ns = clock_after - clock_before;
  report->reconciled = report->clock_delta_ns == report->charged_ns + report->sync_ns;

  vl::MetricsRegistry& metrics = vl::MetricsRegistry::Instance();
  metrics.GetCounter("check.sweeps")->Add(1);
  metrics.GetCounter("check.rules.run")->Add(report->rules_run());
  metrics.GetCounter("check.violations")->Add(report->violations());
  metrics.GetCounter("check.reads")->Add(report->reads);
  metrics.GetCounter("check.read_bytes")->Add(report->bytes);
  metrics.GetCounter("check.charged_ns")->Add(report->charged_ns + report->sync_ns);
  if (report->incremental) {
    metrics.GetCounter("check.incremental.sweeps")->Add(1);
    metrics.GetCounter("check.incremental.skipped")->Add(report->rules_skipped());
    metrics.GetCounter("check.incremental.reran")->Add(report->rules_run());
  }
}

CheckReport CheckEngine::RunAll() {
  CheckReport report;
  vl::ScopedSpan span("vcheck");
  dbg::Target* target = session_->target();
  const uint64_t clock_before = target->clock().nanos();
  session_->SyncEpoch();
  report.sync_ns = target->clock().nanos() - clock_before;
  for (size_t i = 0; i < CatalogImpl().size(); ++i) {
    report.rules.push_back(ExecuteRule(i));
  }
  FinishSweep(&report, clock_before, target->clock().nanos());
  return report;
}

vl::StatusOr<CheckReport> CheckEngine::RunOne(std::string_view id_or_name) {
  const CheckRuleInfo* info = FindRule(id_or_name);
  if (info == nullptr) {
    return vl::Status(vl::StatusCode::kNotFound,
                      "unknown check rule '" + std::string(id_or_name) + "'");
  }
  CheckReport report;
  vl::ScopedSpan span("vcheck");
  dbg::Target* target = session_->target();
  const uint64_t clock_before = target->clock().nanos();
  session_->SyncEpoch();
  report.sync_ns = target->clock().nanos() - clock_before;
  for (size_t i = 0; i < CatalogImpl().size(); ++i) {
    if (&CatalogImpl()[i] == info) {
      report.rules.push_back(ExecuteRule(i));
    }
  }
  FinishSweep(&report, clock_before, target->clock().nanos());
  return report;
}

CheckReport CheckEngine::RunIncremental() {
  CheckReport report;
  report.incremental = true;
  vl::ScopedSpan span("vcheck");
  dbg::Target* target = session_->target();
  const uint64_t clock_before = target->clock().nanos();
  // One epoch sync primes the session's dirty-page history (charged as
  // sync_ns); per-rule skip decisions then consult RangeCleanSince for free.
  session_->SyncEpoch();
  report.sync_ns = target->clock().nanos() - clock_before;
  for (size_t i = 0; i < CatalogImpl().size(); ++i) {
    if (CanSkip(i)) {
      CheckRuleReport replay = states_[i].last;
      replay.ran = false;
      replay.skipped_clean = true;
      replay.reads = 0;
      replay.bytes = 0;
      replay.charged_ns = 0;
      report.rules.push_back(std::move(replay));
    } else {
      report.rules.push_back(ExecuteRule(i));
    }
  }
  FinishSweep(&report, clock_before, target->clock().nanos());
  return report;
}

}  // namespace analysis
