// vcheck: declarative kernel-state invariant engine (ROADMAP item 2).
//
// Where vlint (lint.h) statically checks *programs* against the registries
// with zero target reads, vcheck statically checks *kernel memory* against a
// catalog of structural invariants — and every byte it looks at goes through
// dbg::ReadSession, so a sweep is charged on the virtual clock and reconciles
// exactly with Target::clock() like vexplain/vflight do.
//
// Rule catalog (stable IDs; see docs/checking.md for the full table):
//   VC001 list-integrity      list_head back-links + cycle/termination bounds
//                             (cache_chain, super_blocks, workqueues, the
//                             global task list)
//   VC002 rbtree-order        CFS tasks_timeline in-order vruntime ordering +
//                             cached-leftmost correctness
//   VC003 rbtree-color        red-black invariants: black root, no red-red
//                             edge, equal black-height, parent back-pointers
//   VC004 maple-pivots        maple-tree pivot monotonicity + [min,max]
//                             bounds, node-type encoding, parent encoding
//                             (every user mm->mm_mt)
//   VC005 slab-freelist       slab descriptor sanity: inuse vs list
//                             membership, embedded free-index chain acyclic
//                             and complete, cache object accounting
//   VC006 slab-poison         freed objects carry intact 0x6b poison (a
//                             clobbered byte = write-after-free); suspect
//                             addresses (a crashed reader's pointer, fed in
//                             via AddSuspect) referencing a *free* object are
//                             flagged as use-after-free — this is how the
//                             StackRot node is named
//   VC007 task-reachability   every task on the global task list is reachable
//                             from init_task (or an idle task) via
//                             children/sibling + thread_head; parent
//                             back-pointers consistent
//   VC008 rcu-cblist          per-CPU callback list: chain length ==
//                             cblist_len, tail points at the last next
//                             pointer (or the head when empty), gp_seq never
//                             ahead of the global sequence
//   VC009 pipe-can-merge      occupied pipe-ring slots: bounds sane and
//                             PIPE_BUF_FLAG_CAN_MERGE never set on a
//                             page-cache-backed page (the DirtyPipe
//                             signature)
//   VC010 timer-wheel         timer-wheel hlist linkage: first->pprev points
//                             at the bucket, node->next->pprev back-links
//   VC011 workqueue-linkage   workqueue -> pwq back-pointers, worker-pool
//                             worklist/workers list integrity + nr_workers
//
// Each rule records its page footprint (ReadSession page scopes) while it
// runs. RunIncremental() re-runs only the rules whose footprint intersects
// pages dirtied since their last run (ReadSession::RangeCleanSince over the
// dirty-page journal primed by Target::DirtyPagesSince); clean rules are
// skipped and their previous result replayed. Violations are
// vl::Diagnostics carrying the offending address plus the traversal trail
// and an explain tree of what the rule walked.

#ifndef SRC_ANALYSIS_CHECK_H_
#define SRC_ANALYSIS_CHECK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/dbg/read_session.h"
#include "src/dbg/symbols.h"
#include "src/dbg/type.h"
#include "src/support/diag.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace analysis {

// One entry in the static rule catalog.
struct CheckRuleInfo {
  const char* id;           // stable ID, e.g. "VC004"
  const char* name;         // short kebab name, e.g. "maple-pivots"
  const char* description;  // one-line summary for --list / docs
};

// A node of the traversal explain tree a rule leaves behind. Children are
// bounded per node (an overflow marker is appended once), so reports stay
// small even over large kernels.
struct CheckExplainNode {
  std::string label;
  std::vector<CheckExplainNode> children;

  vl::Json ToJson() const;
  void Render(std::string* out, int depth) const;
};

// One invariant violation: a diagnostic (stable rule ID, kError severity,
// synthetic span — memory has no source lines) plus the offending address and
// the traversal trail that reached it.
struct CheckViolation {
  vl::Diagnostic diagnostic;
  uint64_t addr = 0;
  std::vector<std::string> trail;  // root -> offender labels

  vl::Json ToJson() const;
};

// The outcome of one rule in one sweep.
struct CheckRuleReport {
  std::string id;
  std::string name;
  bool ran = false;            // body executed this sweep
  bool skipped_clean = false;  // incremental: footprint clean, result replayed
  uint64_t reads = 0;          // transport requests charged by the body
  uint64_t bytes = 0;
  uint64_t charged_ns = 0;     // virtual-clock delta across the body
  uint64_t epoch = 0;          // session epoch the body ran at
  std::vector<uint64_t> footprint;  // 4 KiB page bases the body touched
  std::vector<CheckViolation> violations;
  CheckExplainNode explain;

  vl::Json ToJson() const;
};

// A full or incremental sweep over the catalog.
struct CheckReport {
  std::vector<CheckRuleReport> rules;
  bool incremental = false;
  uint64_t charged_ns = 0;     // sum of per-rule body charges
  uint64_t sync_ns = 0;        // epoch sync / dirty-log query charge
  uint64_t clock_delta_ns = 0; // Target::clock() delta across the sweep
  uint64_t reads = 0;
  uint64_t bytes = 0;
  // clock_delta_ns == charged_ns + sync_ns: every nanosecond the sweep put on
  // the virtual clock is attributed to a rule body or the epoch sync.
  bool reconciled = false;

  size_t violations() const;
  size_t rules_run() const;
  size_t rules_skipped() const;

  // All violations flattened into a DiagnosticList (sorted by rule ID).
  vl::DiagnosticList Diagnostics() const;
  vl::Json ToJson() const;
  // Deterministic human-readable report (one line per rule + violations).
  std::string RenderText() const;
};

// The engine. Holds only pointers (registries outlive it) plus per-rule
// incremental state: the footprint, epoch and result of each rule's last run.
//
// Threading: not thread-safe; callers serialize sweeps per session exactly
// like any other ReadSession consumer (Server::Sweep takes the shard lock).
class CheckEngine {
 public:
  CheckEngine(const dbg::TypeRegistry* types, const dbg::SymbolTable* symbols,
              dbg::ReadSession* session);

  static const std::vector<CheckRuleInfo>& Catalog();
  // Finds a rule by ID ("VC004") or name ("maple-pivots"); nullptr if unknown.
  static const CheckRuleInfo* FindRule(std::string_view id_or_name);

  // Runs every rule (full sweep). Wraps the sweep in a "vcheck" trace span
  // and bumps the check.* counters.
  CheckReport RunAll();

  // Runs a single rule by ID or name.
  vl::StatusOr<CheckReport> RunOne(std::string_view id_or_name);

  // Incremental re-check: rules whose recorded footprint is clean since their
  // last run (per the session's dirty-page history) are skipped and their
  // previous result replayed; dirty or never-run rules execute. Falls back to
  // a full run per-rule when the session has no delta invalidation (the
  // conservative RangeCleanSince contract). Bumps check.incremental.*.
  CheckReport RunIncremental();

  // Suspect addresses: pointers held by a crashed/stale reader (registers, a
  // crash report) that rules audit against allocator state. VC006 flags a
  // suspect that resolves to a *free* slab object as a use-after-free —
  // mechanically naming StackRot's stale node. Changing the suspect set
  // retriggers VC006 on the next incremental sweep.
  void AddSuspect(uint64_t addr);
  void ClearSuspects();
  const std::vector<uint64_t>& suspects() const { return suspects_; }

  const dbg::TypeRegistry* types() const { return types_; }
  const dbg::SymbolTable* symbols() const { return symbols_; }
  dbg::ReadSession* session() const { return session_; }

 private:
  struct RuleState {
    bool has_run = false;
    uint64_t epoch = 0;         // session epoch of the last executed run
    uint64_t suspects_gen = 0;  // suspect-set generation at the last run
    CheckRuleReport last;       // footprint + violations of the last run
  };

  // Executes rule `idx` (no skip logic), charging and footprint-recording.
  CheckRuleReport ExecuteRule(size_t idx);
  // True if rule `idx` may be skipped: it has run before, its footprint pages
  // are all clean since that run, and its inputs (suspects) are unchanged.
  bool CanSkip(size_t idx) const;
  void FinishSweep(CheckReport* report, uint64_t clock_before,
                   uint64_t clock_after) const;

  const dbg::TypeRegistry* types_;
  const dbg::SymbolTable* symbols_;
  dbg::ReadSession* session_;
  std::vector<RuleState> states_;
  std::vector<uint64_t> suspects_;
  uint64_t suspects_gen_ = 0;
};

}  // namespace analysis

#endif  // SRC_ANALYSIS_CHECK_H_
