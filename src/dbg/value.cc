#include "src/dbg/value.h"

#include "src/support/str.h"

namespace dbg {

vl::StatusOr<Value> Value::Load(ReadSession* session) const {
  if (type_ == nullptr) {
    return vl::EvalError("load of an untyped value");
  }
  if (!is_lvalue_) {
    return *this;
  }
  if (type_->IsAggregate() || type_->kind == TypeKind::kArray) {
    return *this;  // aggregates stay in place
  }
  if (type_->is_signed) {
    VL_ASSIGN_OR_RETURN(int64_t v, session->ReadSigned(addr_, type_->size));
    return MakeInt(type_, static_cast<uint64_t>(v));
  }
  VL_ASSIGN_OR_RETURN(uint64_t v, session->ReadUnsigned(addr_, type_->size));
  return MakeInt(type_, v);
}

vl::StatusOr<Value> Value::Member(ReadSession* session, const TypeRegistry* types,
                                  std::string_view field) const {
  Value base = *this;
  // Auto-deref pointer chains (a.b works when a is a pointer, like GDB).
  while (base.type_ != nullptr && base.type_->kind == TypeKind::kPointer) {
    VL_ASSIGN_OR_RETURN(base, base.Deref(session, types));
  }
  if (base.type_ == nullptr || !base.type_->IsAggregate()) {
    return vl::EvalError(vl::StrFormat("member '%.*s' on non-aggregate value",
                                       static_cast<int>(field.size()), field.data()));
  }
  if (!base.is_lvalue_) {
    return vl::EvalError("member access on a non-addressable aggregate");
  }
  const Field* f = base.type_->FindField(field);
  if (f == nullptr) {
    return vl::EvalError(vl::StrFormat("type '%s' has no member '%.*s'",
                                       base.type_->name.c_str(),
                                       static_cast<int>(field.size()), field.data()));
  }
  return MakeLValue(f->type, base.addr_ + f->offset);
}

vl::StatusOr<Value> Value::Deref(ReadSession* session, const TypeRegistry* types) const {
  Value v = *this;
  if (v.is_lvalue_) {
    VL_ASSIGN_OR_RETURN(v, v.Load(session));
  }
  if (v.type_ == nullptr || v.type_->kind != TypeKind::kPointer) {
    return vl::EvalError("dereference of a non-pointer value");
  }
  if (v.bits_ == 0) {
    return vl::EvalError("dereference of a NULL pointer");
  }
  return MakeLValue(v.type_->pointee, v.bits_);
}

vl::StatusOr<Value> Value::Index(ReadSession* session, const TypeRegistry* types,
                                 int64_t index) const {
  if (type_ == nullptr) {
    return vl::EvalError("index of an untyped value");
  }
  if (type_->kind == TypeKind::kArray) {
    if (!is_lvalue_) {
      return vl::EvalError("index of a non-addressable array");
    }
    const Type* elem = type_->element;
    return MakeLValue(elem, addr_ + static_cast<uint64_t>(index) * elem->size);
  }
  if (type_->kind == TypeKind::kPointer) {
    Value loaded = *this;
    if (is_lvalue_) {
      VL_ASSIGN_OR_RETURN(loaded, Load(session));
    }
    const Type* elem = loaded.type_->pointee;
    if (elem->size == 0) {
      return vl::EvalError("index of a void pointer");
    }
    return MakeLValue(elem, loaded.bits_ + static_cast<uint64_t>(index) * elem->size);
  }
  return vl::EvalError("index of a non-array, non-pointer value");
}

vl::StatusOr<Value> Value::AddressOf(const TypeRegistry* types) const {
  if (!is_lvalue_) {
    return vl::EvalError("address-of a non-lvalue");
  }
  return MakePointer(const_cast<TypeRegistry*>(types)->PointerTo(type_), addr_);
}

vl::StatusOr<bool> Value::ToBool(ReadSession* session) const {
  Value v = *this;
  if (v.is_lvalue_) {
    if (v.type_->IsAggregate() || v.type_->kind == TypeKind::kArray) {
      return true;  // an aggregate lvalue "exists"
    }
    VL_ASSIGN_OR_RETURN(v, v.Load(session));
  }
  return v.bits_ != 0;
}

std::string Value::ToString() const {
  if (type_ == nullptr) {
    return "<void>";
  }
  if (is_lvalue_) {
    return vl::StrFormat("(%s) @0x%llx", type_->ToString().c_str(),
                         static_cast<unsigned long long>(addr_));
  }
  if (type_->kind == TypeKind::kPointer) {
    return vl::StrFormat("(%s) 0x%llx", type_->ToString().c_str(),
                         static_cast<unsigned long long>(bits_));
  }
  if (type_->is_signed) {
    return vl::StrFormat("%lld", static_cast<long long>(bits_));
  }
  return vl::StrFormat("%llu", static_cast<unsigned long long>(bits_));
}

}  // namespace dbg
