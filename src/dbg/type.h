// DWARF-like type metadata for the debugger substrate.
//
// A TypeRegistry interns machine-accurate layout descriptions (offsets/sizes
// taken from the real C structs via offsetof/sizeof) that the expression
// evaluator and ViewCL use to navigate raw target memory — the role debug info
// plays for GDB.

#ifndef SRC_DBG_TYPE_H_
#define SRC_DBG_TYPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dbg {

enum class TypeKind {
  kVoid,
  kBool,
  kChar,
  kInt,
  kEnum,
  kPointer,
  kArray,
  kStruct,
  kUnion,
  kFunc,  // function-pointer pointee (opaque)
};

struct Type;

struct Field {
  std::string name;
  size_t offset = 0;
  const Type* type = nullptr;
};

struct Type {
  TypeKind kind = TypeKind::kVoid;
  std::string name;
  size_t size = 0;
  bool is_signed = false;

  const Type* pointee = nullptr;   // kPointer
  const Type* element = nullptr;   // kArray
  size_t array_len = 0;            // kArray

  std::vector<Field> fields;                             // kStruct / kUnion
  std::vector<std::pair<std::string, int64_t>> enumerators;  // kEnum

  bool IsScalar() const {
    return kind == TypeKind::kBool || kind == TypeKind::kChar || kind == TypeKind::kInt ||
           kind == TypeKind::kEnum || kind == TypeKind::kPointer;
  }
  bool IsAggregate() const { return kind == TypeKind::kStruct || kind == TypeKind::kUnion; }

  const Field* FindField(std::string_view field_name) const;

  // "task_struct *", "unsigned long", "char [16]" style rendering.
  std::string ToString() const;
};

class TypeRegistry {
 public:
  TypeRegistry();

  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // --- built-in scalars ---
  const Type* void_type() const { return void_; }
  const Type* bool_type() const { return bool_; }
  const Type* char_type() const { return char_; }
  const Type* func_type() const { return func_; }  // opaque function
  const Type* IntType(size_t size, bool is_signed) const;
  const Type* u64() const { return IntType(8, false); }
  const Type* i32() const { return IntType(4, true); }

  // --- derived types (interned) ---
  const Type* PointerTo(const Type* pointee);
  const Type* ArrayOf(const Type* element, size_t len);

  // --- named aggregates / enums ---
  Type* DeclareStruct(std::string_view name, size_t size);
  Type* DeclareUnion(std::string_view name, size_t size);
  Type* DeclareEnum(std::string_view name, size_t size);
  void AddField(Type* aggregate, std::string_view name, size_t offset, const Type* type);
  void AddEnumerator(Type* enum_type, std::string_view name, int64_t value);

  // Lookup by kernel name ("task_struct", "unsigned long", "u64", "int", ...).
  // Returns nullptr if unknown.
  const Type* FindByName(std::string_view name) const;

  // Resolves an enumerator by name across all registered enums; returns true
  // and fills *value when found.
  bool FindEnumerator(std::string_view name, int64_t* value) const;

  // All registered named types (for docs / tests).
  std::vector<const Type*> named_types() const;

 private:
  Type* NewType(TypeKind kind, std::string name, size_t size);

  std::vector<std::unique_ptr<Type>> all_;
  std::map<std::string, Type*, std::less<>> by_name_;
  std::map<const Type*, const Type*> pointer_cache_;
  std::map<std::pair<const Type*, size_t>, const Type*> array_cache_;

  const Type* void_;
  const Type* bool_;
  const Type* char_;
  const Type* func_;
  const Type* ints_[2][4];  // [signed][log2(size)] for sizes 1,2,4,8
};

}  // namespace dbg

#endif  // SRC_DBG_TYPE_H_
