// Typed values flowing through the expression evaluator.
//
// A Value is either an *lvalue* (a typed location in target memory) or an
// *rvalue* (a loaded scalar). Aggregates stay lvalues; loading a scalar
// lvalue reads through the caller's ReadSession (one cached block lookup,
// a transport round trip only on miss).

#ifndef SRC_DBG_VALUE_H_
#define SRC_DBG_VALUE_H_

#include <cstdint>
#include <string>

#include "src/dbg/read_session.h"
#include "src/dbg/type.h"
#include "src/support/status.h"

namespace dbg {

class Value {
 public:
  Value() = default;

  static Value MakeLValue(const Type* type, uint64_t addr) {
    Value v;
    v.type_ = type;
    v.is_lvalue_ = true;
    v.addr_ = addr;
    return v;
  }

  static Value MakeInt(const Type* type, uint64_t bits) {
    Value v;
    v.type_ = type;
    v.bits_ = bits;
    return v;
  }

  static Value MakePointer(const Type* pointer_type, uint64_t addr_value) {
    Value v;
    v.type_ = pointer_type;
    v.bits_ = addr_value;
    return v;
  }

  const Type* type() const { return type_; }
  bool is_lvalue() const { return is_lvalue_; }
  uint64_t addr() const { return addr_; }
  uint64_t bits() const { return bits_; }
  int64_t AsSigned() const { return static_cast<int64_t>(bits_); }
  bool IsNull() const { return !is_lvalue_ && bits_ == 0; }

  // Loads a scalar lvalue into an rvalue (no-op for rvalues; error for
  // aggregates). Sign-extends according to the type.
  vl::StatusOr<Value> Load(ReadSession* session) const;

  // Field access: `value.field`. Pointers are auto-dereferenced first (GDB's
  // permissive behaviour, which ViewCL's dot-paths rely on for flattening).
  vl::StatusOr<Value> Member(ReadSession* session, const TypeRegistry* types,
                             std::string_view field) const;

  // `*value`.
  vl::StatusOr<Value> Deref(ReadSession* session, const TypeRegistry* types) const;

  // `value[index]` on arrays and pointers.
  vl::StatusOr<Value> Index(ReadSession* session, const TypeRegistry* types, int64_t index) const;

  // Address-of: `&value` (lvalues only).
  vl::StatusOr<Value> AddressOf(const TypeRegistry* types) const;

  // Truthiness for logical operators (loads scalars as needed).
  vl::StatusOr<bool> ToBool(ReadSession* session) const;

  // Debug rendering ("(task_struct *) 0xffff..." style).
  std::string ToString() const;

 private:
  const Type* type_ = nullptr;
  bool is_lvalue_ = false;
  uint64_t addr_ = 0;  // lvalue location
  uint64_t bits_ = 0;  // rvalue payload (sign-extended when signed)
};

}  // namespace dbg

#endif  // SRC_DBG_VALUE_H_
