#include "src/dbg/kernel_introspect.h"

#include <cstring>
#include <type_traits>

namespace dbg {

namespace {

// Maps C++ struct types to their kernel type names (usually identical; the
// few renames restore the kernel spelling that the C++ port had to avoid).
template <typename T>
struct KernelTypeName;

#define VL_KTYPE(cpp_type, kname)                \
  template <>                                    \
  struct KernelTypeName<vkern::cpp_type> {       \
    static constexpr const char* kName = kname;  \
  }

VL_KTYPE(page, "page");
VL_KTYPE(free_area, "free_area");
VL_KTYPE(zone, "zone");
VL_KTYPE(slab, "slab");
VL_KTYPE(kmem_cache, "kmem_cache");
VL_KTYPE(rcu_head, "rcu_head");
VL_KTYPE(rcu_data, "rcu_data");
VL_KTYPE(rcu_state, "rcu_state");
VL_KTYPE(maple_range_64_s, "maple_range_64");
VL_KTYPE(maple_arange_64_s, "maple_arange_64");
VL_KTYPE(maple_node, "maple_node");
VL_KTYPE(maple_tree, "maple_tree");
VL_KTYPE(radix_tree_node, "radix_tree_node");
VL_KTYPE(radix_tree_root, "radix_tree_root");
VL_KTYPE(load_weight, "load_weight");
VL_KTYPE(sched_entity, "sched_entity");
VL_KTYPE(cfs_rq, "cfs_rq");
VL_KTYPE(rq, "rq");
VL_KTYPE(sigset_t_sim, "sigset_t");
VL_KTYPE(sigaction_k, "sigaction");
VL_KTYPE(k_sigaction, "k_sigaction");
VL_KTYPE(sigqueue, "sigqueue");
VL_KTYPE(sigpending, "sigpending");
VL_KTYPE(sighand_struct, "sighand_struct");
VL_KTYPE(signal_struct, "signal_struct");
VL_KTYPE(vm_area_struct, "vm_area_struct");
VL_KTYPE(atomic_t, "atomic_t");
VL_KTYPE(mm_struct, "mm_struct");
VL_KTYPE(anon_vma, "anon_vma");
VL_KTYPE(anon_vma_chain, "anon_vma_chain");
VL_KTYPE(address_space, "address_space");
VL_KTYPE(inode, "inode");
VL_KTYPE(dentry, "dentry");
VL_KTYPE(file_operations_stub, "file_operations");
VL_KTYPE(file, "file");
VL_KTYPE(fdtable, "fdtable");
VL_KTYPE(files_struct, "files_struct");
VL_KTYPE(file_system_type, "file_system_type");
VL_KTYPE(block_device, "block_device");
VL_KTYPE(super_block, "super_block");
VL_KTYPE(pipe_buf_operations_stub, "pipe_buf_operations");
VL_KTYPE(pipe_buffer, "pipe_buffer");
VL_KTYPE(pipe_inode_info, "pipe_inode_info");
VL_KTYPE(sk_buff, "sk_buff");
VL_KTYPE(sk_buff_head, "sk_buff_head");
VL_KTYPE(socket, "socket");
VL_KTYPE(sock, "sock");
VL_KTYPE(timer_list, "timer_list");
VL_KTYPE(timer_base, "timer_base");
VL_KTYPE(irq_chip, "irq_chip");
VL_KTYPE(irq_data, "irq_data");
VL_KTYPE(irq_desc, "irq_desc");
VL_KTYPE(irqaction, "irqaction");
VL_KTYPE(work_struct, "work_struct");
VL_KTYPE(delayed_work, "delayed_work");
VL_KTYPE(pool_workqueue, "pool_workqueue");
VL_KTYPE(worker, "worker");
VL_KTYPE(worker_pool, "worker_pool");
VL_KTYPE(workqueue_struct, "workqueue_struct");
VL_KTYPE(kern_ipc_perm, "kern_ipc_perm");
VL_KTYPE(sem_sim, "sem");
VL_KTYPE(sem_array, "sem_array");
VL_KTYPE(msg_msg, "msg_msg");
VL_KTYPE(msg_queue, "msg_queue");
VL_KTYPE(ipc_ids, "ipc_ids");
VL_KTYPE(ipc_namespace, "ipc_namespace");
VL_KTYPE(kref, "kref");
VL_KTYPE(kobject, "kobject");
VL_KTYPE(kset, "kset");
VL_KTYPE(bus_type, "bus_type");
VL_KTYPE(device_driver, "device_driver");
VL_KTYPE(device, "device");
VL_KTYPE(swap_info_struct, "swap_info_struct");
VL_KTYPE(pid_struct, "pid");
VL_KTYPE(pid_link, "pid_link");
VL_KTYPE(task_struct, "task_struct");
VL_KTYPE(list_head, "list_head");
VL_KTYPE(hlist_head, "hlist_head");
VL_KTYPE(hlist_node, "hlist_node");
VL_KTYPE(rb_node, "rb_node");
VL_KTYPE(rb_root, "rb_root");
VL_KTYPE(rb_root_cached, "rb_root_cached");
VL_KTYPE(vmstat_work_item, "vmstat_work_item");
VL_KTYPE(lru_drain_item, "lru_drain_item");
VL_KTYPE(drain_pages_item, "drain_pages_item");

#undef VL_KTYPE

template <typename T, typename = void>
struct HasKernelName : std::false_type {};
template <typename T>
struct HasKernelName<T, std::void_t<decltype(KernelTypeName<T>::kName)>> : std::true_type {};

// Deduces the registry Type for a C++ field type. Aggregate types must have
// been declared beforehand (two-phase registration).
template <typename T>
const Type* DeduceType(TypeRegistry* reg) {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, bool>) {
    return reg->bool_type();
  } else if constexpr (std::is_same_v<U, char>) {
    return reg->char_type();
  } else if constexpr (std::is_enum_v<U>) {
    return reg->IntType(sizeof(U), std::is_signed_v<std::underlying_type_t<U>>);
  } else if constexpr (std::is_integral_v<U>) {
    return reg->IntType(sizeof(U), std::is_signed_v<U>);
  } else if constexpr (std::is_array_v<U>) {
    using Elem = std::remove_extent_t<U>;
    return reg->ArrayOf(DeduceType<Elem>(reg), std::extent_v<U>);
  } else if constexpr (std::is_pointer_v<U>) {
    using P = std::remove_cv_t<std::remove_pointer_t<U>>;
    if constexpr (std::is_function_v<P>) {
      return reg->PointerTo(reg->func_type());
    } else if constexpr (std::is_void_v<P>) {
      return reg->PointerTo(reg->void_type());
    } else {
      return reg->PointerTo(DeduceType<P>(reg));
    }
  } else if constexpr (HasKernelName<U>::value) {
    const Type* t = reg->FindByName(KernelTypeName<U>::kName);
    return t != nullptr ? t : reg->void_type();
  } else {
    static_assert(HasKernelName<U>::value, "field type lacks a kernel type name");
    return nullptr;
  }
}

}  // namespace

bool KernelDebugger::ArenaMemory::ReadBytes(uint64_t addr, void* out, size_t len) const {
  if (!arena_->Contains(addr, len)) {
    return false;
  }
  std::memcpy(out, arena_->AtAddr(addr), len);
  return true;
}

uint64_t KernelDebugger::ArenaMemory::generation() const {
  return kernel_->generation();
}

DirtyPageInfo KernelDebugger::ArenaMemory::DirtyPagesSince(uint64_t since_generation) const {
  uint64_t hashed_before = journal_ != nullptr ? journal_->pages_hashed() : 0;
  if (journal_ == nullptr) {
    // Lazily baseline at the current generation: every page starts marked
    // dirty at this epoch, so a first query over an older epoch safely
    // degenerates to "everything dirty".
    journal_ = std::make_unique<vkern::PageJournal>(arena_, kernel_->generation());
  }
  std::vector<uint32_t> pages =
      journal_->DirtyPagesSince(since_generation, kernel_->generation());
  DirtyPageInfo info;
  info.supported = true;
  info.page_size = vkern::kPageSize;
  info.pages_total = journal_->page_count();
  info.pages_scanned = journal_->pages_hashed() - hashed_before;
  info.dirty_pages.reserve(pages.size());
  for (uint32_t p : pages) {
    info.dirty_pages.push_back(arena_->base_addr() + uint64_t{p} * vkern::kPageSize);
  }
  return info;
}

KernelDebugger::KernelDebugger(vkern::Kernel* kernel, LatencyModel model,
                               CacheConfig cache)
    : kernel_(kernel), memory_(&kernel->arena(), kernel) {
  target_ = std::make_unique<Target>(&memory_, std::move(model));
  RegisterTypes();
  RegisterEnums();
  // BuildStateStringTable writes the arena (AllocMeta) without a generation
  // bump, so it must run before the session exists: a delta-enabled session
  // baselines its dirty-page journal at construction, and any arena write
  // after that baseline would surface as a spuriously dirty page at the
  // first epoch sync.
  BuildStateStringTable();
  session_ = std::make_unique<ReadSession>(target_.get(), cache);
  RegisterSymbols();
  RegisterHelpers();
  context_ = std::make_unique<EvalContext>(&types_, session_.get(), &symbols_, &helpers_);
}

void KernelDebugger::RegisterTypes() {
  TypeRegistry* reg = &types_;

  // Phase 1: declare every aggregate so pointer fields can resolve.
#define DECL(S) Type* t_##S = reg->DeclareStruct(KernelTypeName<vkern::S>::kName, sizeof(vkern::S))
  DECL(list_head);
  DECL(hlist_head);
  DECL(hlist_node);
  DECL(rb_node);
  DECL(rb_root);
  DECL(rb_root_cached);
  DECL(page);
  DECL(free_area);
  DECL(zone);
  DECL(slab);
  DECL(kmem_cache);
  DECL(rcu_head);
  DECL(rcu_data);
  DECL(rcu_state);
  DECL(maple_range_64_s);
  DECL(maple_arange_64_s);
  DECL(maple_node);
  DECL(maple_tree);
  DECL(radix_tree_node);
  DECL(radix_tree_root);
  DECL(load_weight);
  DECL(sched_entity);
  DECL(cfs_rq);
  DECL(rq);
  DECL(sigset_t_sim);
  DECL(sigaction_k);
  DECL(k_sigaction);
  DECL(sigqueue);
  DECL(sigpending);
  DECL(sighand_struct);
  DECL(signal_struct);
  DECL(vm_area_struct);
  DECL(atomic_t);
  DECL(mm_struct);
  DECL(anon_vma);
  DECL(anon_vma_chain);
  DECL(address_space);
  DECL(inode);
  DECL(dentry);
  DECL(file_operations_stub);
  DECL(file);
  DECL(fdtable);
  DECL(files_struct);
  DECL(file_system_type);
  DECL(block_device);
  DECL(super_block);
  DECL(pipe_buf_operations_stub);
  DECL(pipe_buffer);
  DECL(pipe_inode_info);
  DECL(sk_buff);
  DECL(sk_buff_head);
  DECL(socket);
  DECL(sock);
  DECL(timer_list);
  DECL(timer_base);
  DECL(irq_chip);
  DECL(irq_data);
  DECL(irq_desc);
  DECL(irqaction);
  DECL(work_struct);
  DECL(delayed_work);
  DECL(pool_workqueue);
  DECL(worker);
  DECL(worker_pool);
  DECL(workqueue_struct);
  DECL(kern_ipc_perm);
  DECL(sem_sim);
  DECL(sem_array);
  DECL(msg_msg);
  DECL(msg_queue);
  DECL(ipc_ids);
  DECL(ipc_namespace);
  DECL(kref);
  DECL(kobject);
  DECL(kset);
  DECL(bus_type);
  DECL(device_driver);
  DECL(device);
  DECL(swap_info_struct);
  DECL(pid_struct);
  DECL(pid_link);
  DECL(task_struct);
  DECL(vmstat_work_item);
  DECL(lru_drain_item);
  DECL(drain_pages_item);
#undef DECL

  // Phase 2: fields. F registers under the C++ member name; FA renames to the
  // kernel spelling where the port had to diverge.
#define F(S, m) reg->AddField(t_##S, #m, offsetof(vkern::S, m), \
                              DeduceType<decltype(vkern::S::m)>(reg))
#define FA(S, m, kname) reg->AddField(t_##S, kname, offsetof(vkern::S, m), \
                                      DeduceType<decltype(vkern::S::m)>(reg))

  F(list_head, next);
  F(list_head, prev);
  F(hlist_head, first);
  F(hlist_node, next);
  F(hlist_node, pprev);
  F(rb_node, __rb_parent_color);
  F(rb_node, rb_right);
  F(rb_node, rb_left);
  FA(rb_root, rb_node_, "rb_node");
  FA(rb_root_cached, rb_root_, "rb_root");
  F(rb_root_cached, rb_leftmost);

  F(page, flags);
  FA(page, refcount, "_refcount");
  FA(page, mapcount, "_mapcount");
  F(page, mapping);
  F(page, index);
  F(page, lru);
  FA(page, private_data, "private");
  F(page, order);

  F(free_area, free_list);
  F(free_area, nr_free);
  F(zone, name);
  F(zone, zone_start_pfn);
  F(zone, spanned_pages);
  F(zone, free_pages);
  FA(zone, free_area_, "free_area");

  F(slab, list);
  F(slab, cache);
  F(slab, s_mem);
  F(slab, inuse);
  F(slab, free_idx);
  FA(slab, pg, "page");

  F(kmem_cache, name);
  F(kmem_cache, object_size);
  F(kmem_cache, size);
  F(kmem_cache, align);
  F(kmem_cache, num);
  F(kmem_cache, pages_per_slab);
  F(kmem_cache, slabs_partial);
  F(kmem_cache, slabs_full);
  F(kmem_cache, slabs_free);
  F(kmem_cache, total_objects);
  F(kmem_cache, active_objects);
  F(kmem_cache, cache_list);

  F(rcu_head, next);
  F(rcu_head, func);
  F(rcu_data, cpu);
  F(rcu_data, gp_seq);
  F(rcu_data, nesting);
  F(rcu_data, cblist_head);
  F(rcu_data, cblist_tail);
  F(rcu_data, cblist_len);
  F(rcu_data, invoked);
  F(rcu_state, gp_seq);
  F(rcu_state, gp_in_progress);

  F(maple_range_64_s, parent);
  F(maple_range_64_s, pivot);
  F(maple_range_64_s, slot);
  F(maple_arange_64_s, parent);
  F(maple_arange_64_s, pivot);
  F(maple_arange_64_s, slot);
  F(maple_arange_64_s, gap);
  F(maple_node, parent);
  F(maple_node, slot);
  F(maple_node, mr64);
  F(maple_node, ma64);
  F(maple_node, rcu);
  F(maple_node, ma_flags);
  F(maple_tree, ma_root);
  F(maple_tree, ma_flags);
  F(maple_tree, ma_lock);

  F(radix_tree_node, shift);
  F(radix_tree_node, offset);
  F(radix_tree_node, count);
  F(radix_tree_node, parent);
  F(radix_tree_node, slots);
  F(radix_tree_root, height);
  F(radix_tree_root, rnode);

  F(load_weight, weight);
  F(load_weight, inv_weight);
  F(sched_entity, load);
  F(sched_entity, run_node);
  F(sched_entity, on_rq);
  F(sched_entity, exec_start);
  F(sched_entity, sum_exec_runtime);
  F(sched_entity, vruntime);
  F(cfs_rq, load);
  F(cfs_rq, nr_running);
  F(cfs_rq, min_vruntime);
  F(cfs_rq, tasks_timeline);
  F(cfs_rq, curr);
  F(rq, cpu);
  F(rq, nr_running);
  F(rq, clock);
  F(rq, cfs);
  F(rq, curr);
  F(rq, idle);

  F(sigset_t_sim, sig);
  FA(sigaction_k, sa_handler_fn, "sa_handler");
  F(sigaction_k, sa_flags);
  F(sigaction_k, sa_mask);
  F(k_sigaction, sa);
  F(sigqueue, list);
  F(sigqueue, signo);
  FA(sigqueue, errno_, "errno");
  F(sigqueue, pid_from);
  F(sigpending, list);
  F(sigpending, signal);
  F(sighand_struct, count);
  F(sighand_struct, action);
  F(signal_struct, sig_cnt);
  F(signal_struct, nr_threads);
  F(signal_struct, thread_head);
  F(signal_struct, shared_pending);
  F(signal_struct, group_exit_code);
  FA(signal_struct, group_leader_task, "group_leader");

  F(vm_area_struct, vm_start);
  F(vm_area_struct, vm_end);
  F(vm_area_struct, vm_mm);
  F(vm_area_struct, vm_flags);
  F(vm_area_struct, vm_pgoff);
  F(vm_area_struct, vm_file);
  FA(vm_area_struct, anon_vma_, "anon_vma");
  F(vm_area_struct, anon_vma_chain);

  F(atomic_t, counter);

  F(mm_struct, mm_mt);
  F(mm_struct, mmap_base);
  F(mm_struct, task_size);
  F(mm_struct, mm_users);
  F(mm_struct, mm_count);
  F(mm_struct, map_count);
  F(mm_struct, total_vm);
  F(mm_struct, start_code);
  F(mm_struct, end_code);
  F(mm_struct, start_data);
  F(mm_struct, end_data);
  F(mm_struct, start_brk);
  F(mm_struct, brk);
  F(mm_struct, start_stack);
  F(mm_struct, pgd);
  F(mm_struct, owner);

  F(anon_vma, root);
  F(anon_vma, refcount);
  F(anon_vma, num_children);
  F(anon_vma, num_active_vmas);
  FA(anon_vma, rb_root_, "rb_root");
  F(anon_vma_chain, vma);
  FA(anon_vma_chain, av, "anon_vma");
  F(anon_vma_chain, same_vma);
  F(anon_vma_chain, rb);
  F(anon_vma_chain, rb_subtree_last);

  F(address_space, host);
  F(address_space, i_pages);
  F(address_space, nrpages);
  F(address_space, i_mmap);
  F(inode, i_ino);
  F(inode, i_mode);
  F(inode, i_nlink);
  F(inode, i_size);
  F(inode, i_sb);
  F(inode, i_data);
  F(inode, i_mapping);
  F(inode, i_sb_list);
  F(inode, i_pipe);
  F(dentry, d_name);
  F(dentry, d_inode);
  F(dentry, d_parent);
  F(dentry, d_child);
  F(dentry, d_subdirs);
  F(dentry, d_count);
  F(file_operations_stub, name);
  F(file, f_dentry);
  F(file, f_inode);
  F(file, f_mapping);
  F(file, f_op);
  F(file, f_flags);
  F(file, f_mode);
  F(file, f_pos);
  F(file, f_count);
  F(file, private_data);
  F(fdtable, max_fds);
  F(fdtable, fd);
  F(fdtable, open_fds);
  F(fdtable, close_on_exec);
  F(files_struct, count);
  FA(files_struct, fdt_embedded, "fdtab");
  F(files_struct, fdt);
  F(files_struct, fd_array);
  F(files_struct, open_fds_init);
  F(files_struct, next_fd);
  F(file_system_type, name);
  F(file_system_type, fs_supers);
  F(block_device, bd_dev);
  F(block_device, bd_disk_name);
  F(block_device, bd_nr_sectors);
  F(block_device, bd_super);
  F(super_block, s_list);
  F(super_block, s_dev);
  F(super_block, s_magic);
  F(super_block, s_type);
  F(super_block, s_bdev);
  F(super_block, s_root);
  F(super_block, s_inodes);
  F(super_block, s_count);
  F(super_block, s_id);

  F(pipe_buf_operations_stub, name);
  FA(pipe_buffer, page_, "page");
  F(pipe_buffer, offset);
  F(pipe_buffer, len);
  F(pipe_buffer, ops);
  F(pipe_buffer, flags);
  F(pipe_inode_info, head);
  F(pipe_inode_info, tail);
  F(pipe_inode_info, ring_size);
  F(pipe_inode_info, readers);
  F(pipe_inode_info, writers);
  F(pipe_inode_info, bufs);
  FA(pipe_inode_info, inode_, "inode");

  F(sk_buff, next);
  F(sk_buff, prev);
  F(sk_buff, len);
  F(sk_buff, data_len);
  F(sk_buff, data);
  F(sk_buff_head, next);
  F(sk_buff_head, prev);
  F(sk_buff_head, qlen);
  F(socket, state);
  F(socket, type);
  F(socket, sk);
  FA(socket, file_, "file");
  F(sock, skc_family);
  F(sock, skc_state);
  F(sock, sk_rcvbuf);
  F(sock, sk_sndbuf);
  F(sock, sk_receive_queue);
  F(sock, sk_write_queue);
  F(sock, sk_socket);
  F(sock, sk_peer);

  F(timer_list, entry);
  F(timer_list, expires);
  F(timer_list, function);
  F(timer_list, flags);
  F(timer_base, clk);
  F(timer_base, next_expiry);
  F(timer_base, cpu);
  F(timer_base, vectors);

  F(irq_chip, name);
  F(irq_data, irq);
  F(irq_data, hwirq);
  F(irq_data, chip);
  FA(irq_desc, irq_data_, "irq_data");
  F(irq_desc, handle_irq);
  F(irq_desc, action);
  F(irq_desc, depth);
  F(irq_desc, tot_count);
  F(irq_desc, name);
  F(irqaction, handler);
  F(irqaction, dev_id);
  F(irqaction, next);
  F(irqaction, irq);
  F(irqaction, flags);
  F(irqaction, name);

  F(work_struct, data);
  F(work_struct, entry);
  F(work_struct, func);
  F(delayed_work, work);
  F(delayed_work, timer);
  F(delayed_work, cpu);
  F(pool_workqueue, pool);
  F(pool_workqueue, wq);
  F(pool_workqueue, refcnt);
  F(pool_workqueue, pwqs_node);
  F(pool_workqueue, inactive_works);
  F(worker, node);
  F(worker, current_work);
  F(worker, task);
  F(worker, desc);
  F(worker_pool, cpu);
  F(worker_pool, id);
  F(worker_pool, nr_workers);
  F(worker_pool, nr_running);
  F(worker_pool, worklist);
  F(worker_pool, workers);
  F(workqueue_struct, name);
  F(workqueue_struct, flags);
  F(workqueue_struct, pwqs);
  F(workqueue_struct, list);

  F(kern_ipc_perm, id);
  F(kern_ipc_perm, key);
  F(kern_ipc_perm, uid);
  F(kern_ipc_perm, gid);
  F(kern_ipc_perm, mode);
  F(kern_ipc_perm, seq);
  F(sem_sim, semval);
  F(sem_sim, sempid);
  F(sem_sim, pending_alter);
  F(sem_sim, pending_const);
  F(sem_array, sem_perm);
  F(sem_array, sem_ctime);
  F(sem_array, sem_nsems);
  F(sem_array, pending_alter);
  F(sem_array, pending_const);
  F(sem_array, sems);
  F(msg_msg, m_list);
  F(msg_msg, m_type);
  F(msg_msg, m_ts);
  F(msg_msg, m_text);
  F(msg_queue, q_perm);
  F(msg_queue, q_stime);
  F(msg_queue, q_rtime);
  F(msg_queue, q_ctime);
  F(msg_queue, q_cbytes);
  F(msg_queue, q_qnum);
  F(msg_queue, q_qbytes);
  F(msg_queue, q_messages);
  F(msg_queue, q_receivers);
  F(msg_queue, q_senders);
  F(ipc_ids, in_use);
  F(ipc_ids, max_idx);
  F(ipc_ids, entries);
  F(ipc_namespace, ids);

  F(kref, refcount);
  F(kobject, name);
  F(kobject, entry);
  F(kobject, parent);
  FA(kobject, kset_, "kset");
  FA(kobject, kref_, "kref");
  F(kobject, state_initialized);
  F(kset, list);
  F(kset, kobj);
  F(bus_type, name);
  F(bus_type, devices_kset);
  F(bus_type, drivers_kset);
  F(bus_type, devices_list);
  F(bus_type, drivers_list);
  F(device_driver, name);
  F(device_driver, bus);
  F(device_driver, bus_node);
  F(device_driver, devices);
  F(device, kobj);
  F(device, parent);
  F(device, bus);
  F(device, driver);
  F(device, init_name);
  F(device, devt);
  F(device, bus_node);

  F(swap_info_struct, flags);
  F(swap_info_struct, prio);
  F(swap_info_struct, type);
  F(swap_info_struct, max);
  F(swap_info_struct, swap_map);
  F(swap_info_struct, pages);
  F(swap_info_struct, inuse_pages);
  F(swap_info_struct, swap_file);
  F(swap_info_struct, bdev);

  F(pid_struct, nr);
  F(pid_struct, pid_chain);
  F(pid_struct, tasks_head);
  F(pid_struct, count);
  F(pid_link, node);
  F(pid_link, pid);

  F(task_struct, __state);
  F(task_struct, prio);
  F(task_struct, static_prio);
  F(task_struct, policy);
  F(task_struct, se);
  F(task_struct, on_cpu);
  F(task_struct, recent_used_cpu);
  F(task_struct, utime);
  F(task_struct, stime);
  F(task_struct, pid);
  F(task_struct, tgid);
  F(task_struct, flags);
  F(task_struct, comm);
  F(task_struct, real_parent);
  F(task_struct, parent);
  F(task_struct, children);
  F(task_struct, sibling);
  F(task_struct, group_leader);
  F(task_struct, thread_node);
  F(task_struct, tasks);
  F(task_struct, pids);
  F(task_struct, thread_pid);
  F(task_struct, mm);
  F(task_struct, active_mm);
  F(task_struct, files);
  F(task_struct, signal);
  F(task_struct, sighand);
  F(task_struct, pending);
  F(task_struct, blocked);
  F(task_struct, start_time);
  F(task_struct, exit_state);
  F(task_struct, exit_code);

  F(vmstat_work_item, dw);
  F(vmstat_work_item, cpu);
  F(vmstat_work_item, nr_updates);
  F(lru_drain_item, work);
  F(lru_drain_item, cpu);
  F(drain_pages_item, work);
  F(drain_pages_item, cpu);
  F(drain_pages_item, drained);

#undef F
#undef FA
}

void KernelDebugger::RegisterEnums() {
  TypeRegistry* reg = &types_;

  Type* maple = reg->DeclareEnum("maple_type", 4);
  reg->AddEnumerator(maple, "maple_dense", vkern::maple_dense);
  reg->AddEnumerator(maple, "maple_leaf_64", vkern::maple_leaf_64);
  reg->AddEnumerator(maple, "maple_range_64", vkern::maple_range_64);
  reg->AddEnumerator(maple, "maple_arange_64", vkern::maple_arange_64);

  Type* vm_flags = reg->DeclareEnum("vm_flags_bits", 8);
  reg->AddEnumerator(vm_flags, "VM_READ", vkern::VM_READ);
  reg->AddEnumerator(vm_flags, "VM_WRITE", vkern::VM_WRITE);
  reg->AddEnumerator(vm_flags, "VM_EXEC", vkern::VM_EXEC);
  reg->AddEnumerator(vm_flags, "VM_SHARED", vkern::VM_SHARED);
  reg->AddEnumerator(vm_flags, "VM_MAYREAD", vkern::VM_MAYREAD);
  reg->AddEnumerator(vm_flags, "VM_MAYWRITE", vkern::VM_MAYWRITE);
  reg->AddEnumerator(vm_flags, "VM_GROWSDOWN", vkern::VM_GROWSDOWN);
  reg->AddEnumerator(vm_flags, "VM_ANON", vkern::VM_ANON);
  reg->AddEnumerator(vm_flags, "VM_STACK", vkern::VM_STACK);

  Type* page_flags = reg->DeclareEnum("page_flags_bits", 8);
  reg->AddEnumerator(page_flags, "PG_locked", vkern::PG_locked);
  reg->AddEnumerator(page_flags, "PG_referenced", vkern::PG_referenced);
  reg->AddEnumerator(page_flags, "PG_uptodate", vkern::PG_uptodate);
  reg->AddEnumerator(page_flags, "PG_dirty", vkern::PG_dirty);
  reg->AddEnumerator(page_flags, "PG_lru", vkern::PG_lru);
  reg->AddEnumerator(page_flags, "PG_slab", vkern::PG_slab);
  reg->AddEnumerator(page_flags, "PG_reserved", vkern::PG_reserved);
  reg->AddEnumerator(page_flags, "PG_writeback", vkern::PG_writeback);
  reg->AddEnumerator(page_flags, "PG_head", vkern::PG_head);
  reg->AddEnumerator(page_flags, "PG_swapcache", vkern::PG_swapcache);
  reg->AddEnumerator(page_flags, "PG_anon", vkern::PG_anon);
  reg->AddEnumerator(page_flags, "PG_buddy", vkern::PG_buddy);

  Type* pipe_flags = reg->DeclareEnum("pipe_buf_flag_bits", 4);
  reg->AddEnumerator(pipe_flags, "PIPE_BUF_FLAG_LRU", vkern::PIPE_BUF_FLAG_LRU);
  reg->AddEnumerator(pipe_flags, "PIPE_BUF_FLAG_ATOMIC", vkern::PIPE_BUF_FLAG_ATOMIC);
  reg->AddEnumerator(pipe_flags, "PIPE_BUF_FLAG_GIFT", vkern::PIPE_BUF_FLAG_GIFT);
  reg->AddEnumerator(pipe_flags, "PIPE_BUF_FLAG_PACKET", vkern::PIPE_BUF_FLAG_PACKET);
  reg->AddEnumerator(pipe_flags, "PIPE_BUF_FLAG_CAN_MERGE", vkern::PIPE_BUF_FLAG_CAN_MERGE);

  Type* task_state = reg->DeclareEnum("task_state_bits", 4);
  reg->AddEnumerator(task_state, "TASK_RUNNING", vkern::TASK_RUNNING);
  reg->AddEnumerator(task_state, "TASK_INTERRUPTIBLE", vkern::TASK_INTERRUPTIBLE);
  reg->AddEnumerator(task_state, "TASK_UNINTERRUPTIBLE", vkern::TASK_UNINTERRUPTIBLE);
  reg->AddEnumerator(task_state, "TASK_STOPPED", vkern::TASK_STOPPED);
  reg->AddEnumerator(task_state, "TASK_DEAD", vkern::TASK_DEAD);

  Type* pf_flags = reg->DeclareEnum("task_pf_bits", 4);
  reg->AddEnumerator(pf_flags, "PF_IDLE", vkern::PF_IDLE);
  reg->AddEnumerator(pf_flags, "PF_EXITING", vkern::PF_EXITING);
  reg->AddEnumerator(pf_flags, "PF_WQ_WORKER", vkern::PF_WQ_WORKER);
  reg->AddEnumerator(pf_flags, "PF_KTHREAD", vkern::PF_KTHREAD);

  Type* swp = reg->DeclareEnum("swap_flag_bits", 8);
  reg->AddEnumerator(swp, "SWP_USED", vkern::SWP_USED);
  reg->AddEnumerator(swp, "SWP_WRITEOK", vkern::SWP_WRITEOK);
  reg->AddEnumerator(swp, "SWP_DISCARDABLE", vkern::SWP_DISCARDABLE);

  Type* imode = reg->DeclareEnum("inode_mode_bits", 4);
  reg->AddEnumerator(imode, "S_IFREG", vkern::kSIfReg);
  reg->AddEnumerator(imode, "S_IFDIR", vkern::kSIfDir);
  reg->AddEnumerator(imode, "S_IFIFO", vkern::kSIfIfo);
  reg->AddEnumerator(imode, "S_IFSOCK", vkern::kSIfSock);
  reg->AddEnumerator(imode, "S_IFBLK", vkern::kSIfBlk);

  Type* constants = reg->DeclareEnum("kernel_constants", 8);
  reg->AddEnumerator(constants, "PAGE_SIZE", vkern::kPageSize);
  reg->AddEnumerator(constants, "NR_CPUS", vkern::kNrCpus);
  reg->AddEnumerator(constants, "PIDHASH_SIZE", vkern::kPidHashSize);
  reg->AddEnumerator(constants, "MAPLE_RANGE64_SLOTS", vkern::kMapleRange64Slots);
  reg->AddEnumerator(constants, "MAPLE_ARANGE64_SLOTS", vkern::kMapleArange64Slots);
  reg->AddEnumerator(constants, "SS_CONNECTED", vkern::SS_CONNECTED);
  reg->AddEnumerator(constants, "AF_UNIX", vkern::AF_UNIX);
}

void KernelDebugger::BuildStateStringTable() {
  // task_state() returns pointers to these in-arena strings (like the
  // GDB-script helper that renders a task state).
  static const char* kNames[8] = {"R (running)",  "S (sleeping)", "D (disk sleep)",
                                  "T (stopped)",  "Z (zombie)",   "X (dead)",
                                  "I (idle)",     "? (unknown)"};
  for (int i = 0; i < 8; ++i) {
    size_t len = std::strlen(kNames[i]) + 1;
    void* mem = kernel_->slabs().AllocMeta(len, 1);
    std::memcpy(mem, kNames[i], len);
    state_string_addrs_[i] = reinterpret_cast<uint64_t>(mem);
  }
}

void KernelDebugger::RegisterSymbols() {
  vkern::Kernel* k = kernel_;
  auto addr = [](const void* p) { return reinterpret_cast<uint64_t>(p); };
  const Type* t;

#define SYM(name, type_name, ptr)                          \
  t = types_.FindByName(type_name);                        \
  symbols_.AddGlobal(name, t, addr(ptr))

  SYM("init_task", "task_struct", k->procs().init_task());
  t = types_.ArrayOf(types_.FindByName("rq"), vkern::kNrCpus);
  symbols_.AddGlobal("runqueues", t, addr(k->runqueues()));
  t = types_.ArrayOf(types_.FindByName("hlist_head"), vkern::kPidHashSize);
  symbols_.AddGlobal("pid_hash", t, addr(k->procs().pid_hash()));
  SYM("super_blocks", "list_head", k->fs().super_blocks());
  SYM("cache_chain", "list_head", k->slabs().cache_chain());
  SYM("rcu_state", "rcu_state", k->rcu_state_ptr());
  t = types_.ArrayOf(types_.FindByName("rcu_data"), vkern::kNrCpus);
  symbols_.AddGlobal("rcu_data", t, addr(k->rcu_data_array()));
  t = types_.ArrayOf(types_.FindByName("timer_base"), vkern::kNrCpus);
  symbols_.AddGlobal("timer_bases", t, addr(k->timer_bases()));
  t = types_.ArrayOf(types_.FindByName("irq_desc"), vkern::kNrIrqs);
  symbols_.AddGlobal("irq_desc", t, addr(k->irq_descs()));
  t = types_.ArrayOf(types_.FindByName("worker_pool"), vkern::kNrCpus);
  symbols_.AddGlobal("cpu_worker_pools", t, addr(k->cpu_worker_pools()));
  SYM("workqueues", "list_head", k->workqueues_head());
  SYM("init_ipc_ns", "ipc_namespace", k->init_ipc_ns());
  t = types_.ArrayOf(types_.PointerTo(types_.FindByName("swap_info_struct")),
                     vkern::kMaxSwapFiles);
  symbols_.AddGlobal("swap_info", t, addr(k->swap_info()));
  SYM("mm_percpu_wq", "workqueue_struct", k->mm_percpu_wq());
  SYM("events_wq", "workqueue_struct", k->events_wq());
  SYM("contig_page_data", "zone", k->buddy().zone_desc());
  t = types_.PointerTo(types_.FindByName("page"));
  // mem_map is a pointer in Linux; expose it as an in-arena-pointing constant
  // by registering the first page descriptor as an array base.
  t = types_.ArrayOf(types_.FindByName("page"), k->buddy().nr_pool_pages());
  symbols_.AddGlobal("mem_map", t, addr(k->buddy().mem_map()));
  SYM("platform_bus_type", "bus_type", k->platform_bus());
#undef SYM

  // Function symbols come from the kernel's registry. They are also exposed
  // as enumerators so ViewCL switch-cases can compare function-pointer fields
  // against named kernel functions (the Figure 6 heterogeneous-list idiom).
  Type* kfuncs = types_.DeclareEnum("kernel_functions", 8);
  for (const auto& [fn_addr, name] : k->function_symbols()) {
    symbols_.AddFunction(fn_addr, name);
    types_.AddEnumerator(kfuncs, name, static_cast<int64_t>(fn_addr));
  }
}

void KernelDebugger::RegisterHelpers() {
  vkern::Kernel* k = kernel_;
  TypeRegistry* reg = &types_;

  auto scalar = [](EvalContext* ctx, Value v) -> vl::StatusOr<uint64_t> {
    VL_ASSIGN_OR_RETURN(Value loaded, v.Load(ctx->session()));
    if (loaded.is_lvalue()) {
      // An aggregate argument decays to its address.
      return loaded.addr();
    }
    return loaded.bits();
  };

  // cpu_rq(cpu): the per-CPU run queue.
  helpers_.Register("cpu_rq", [k, reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                  -> vl::StatusOr<Value> {
    if (args.size() != 1) {
      return vl::EvalError("cpu_rq(cpu) takes one argument");
    }
    VL_ASSIGN_OR_RETURN(uint64_t cpu, scalar(ctx, args[0]));
    if (cpu >= vkern::kNrCpus) {
      return vl::EvalError("cpu_rq: cpu out of range");
    }
    return Value::MakePointer(reg->PointerTo(reg->FindByName("rq")),
                              reinterpret_cast<uint64_t>(k->sched().cpu_rq(static_cast<int>(cpu))));
  });

  // --- maple tree pointer decoding ---
  helpers_.Register("mte_to_node", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                       -> vl::StatusOr<Value> {
    if (args.size() != 1) {
      return vl::EvalError("mte_to_node(enode) takes one argument");
    }
    VL_ASSIGN_OR_RETURN(uint64_t enode, scalar(ctx, args[0]));
    return Value::MakePointer(reg->PointerTo(reg->FindByName("maple_node")),
                              enode & ~uint64_t{0xff});
  });
  helpers_.Register("mte_node_type", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                         -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t enode, scalar(ctx, args[0]));
    return Value::MakeInt(reg->IntType(4, false), (enode >> 3) & 0xf);
  });
  helpers_.Register("mte_is_leaf", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                       -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t enode, scalar(ctx, args[0]));
    bool leaf = vkern::ma_is_leaf(vkern::mte_node_type(enode));
    return Value::MakeInt(reg->bool_type(), leaf ? 1 : 0);
  });
  helpers_.Register("xa_is_node", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                      -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t entry, scalar(ctx, args[0]));
    return Value::MakeInt(reg->bool_type(), (entry != 0 && (entry & 2) != 0) ? 1 : 0);
  });
  helpers_.Register("ma_is_root", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                      -> vl::StatusOr<Value> {
    // Takes the maple_pnode (parent word).
    VL_ASSIGN_OR_RETURN(uint64_t parent, scalar(ctx, args[0]));
    return Value::MakeInt(reg->bool_type(), (parent & 1) != 0 ? 1 : 0);
  });
  helpers_.Register("ma_parent_slot", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                          -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t parent, scalar(ctx, args[0]));
    return Value::MakeInt(reg->IntType(4, false), (parent >> 1) & 0xf);
  });
  helpers_.Register("mt_slot_count", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                         -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t type, scalar(ctx, args[0]));
    return Value::MakeInt(reg->IntType(4, false),
                          vkern::mt_slots(static_cast<vkern::maple_type>(type)));
  });

  // --- rbtree colour/parent compaction ---
  helpers_.Register("rb_parent", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                     -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t pc, scalar(ctx, args[0]));
    return Value::MakePointer(reg->PointerTo(reg->FindByName("rb_node")), pc & ~uint64_t{3});
  });
  helpers_.Register("rb_is_black", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                       -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t pc, scalar(ctx, args[0]));
    return Value::MakeInt(reg->bool_type(), pc & 1);
  });

  // task_state(task*): human-readable state string (in-arena char*).
  uint64_t* state_addrs = state_string_addrs_;
  helpers_.Register("task_state", [reg, scalar, state_addrs](
                                      EvalContext* ctx,
                                      std::vector<Value>& args) -> vl::StatusOr<Value> {
    if (args.size() != 1) {
      return vl::EvalError("task_state(task) takes one argument");
    }
    Value task = args[0];
    VL_ASSIGN_OR_RETURN(Value state_field, task.Member(ctx->session(), ctx->types(), "__state"));
    VL_ASSIGN_OR_RETURN(Value state, state_field.Load(ctx->session()));
    VL_ASSIGN_OR_RETURN(Value flags_field, task.Member(ctx->session(), ctx->types(), "flags"));
    VL_ASSIGN_OR_RETURN(Value flags, flags_field.Load(ctx->session()));
    VL_ASSIGN_OR_RETURN(Value exit_field, task.Member(ctx->session(), ctx->types(), "exit_state"));
    VL_ASSIGN_OR_RETURN(Value exit_state, exit_field.Load(ctx->session()));
    int idx;
    if (exit_state.bits() != 0) {
      idx = 4;  // zombie
    } else if ((flags.bits() & vkern::PF_IDLE) != 0) {
      idx = 6;
    } else if (state.bits() == vkern::TASK_RUNNING) {
      idx = 0;
    } else if ((state.bits() & vkern::TASK_INTERRUPTIBLE) != 0) {
      idx = 1;
    } else if ((state.bits() & vkern::TASK_UNINTERRUPTIBLE) != 0) {
      idx = 2;
    } else if ((state.bits() & vkern::TASK_STOPPED) != 0) {
      idx = 3;
    } else if ((state.bits() & vkern::TASK_DEAD) != 0) {
      idx = 5;
    } else {
      idx = 7;
    }
    return Value::MakePointer(reg->PointerTo(reg->char_type()), state_addrs[idx]);
  });

  // pid_hashfn(nr)
  helpers_.Register("pid_hashfn", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                      -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t nr, scalar(ctx, args[0]));
    return Value::MakeInt(reg->IntType(4, false), nr & (vkern::kPidHashSize - 1));
  });

  // page_to_virt(page*): payload address of a page descriptor.
  helpers_.Register("page_to_virt", [k, reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                        -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t pg, scalar(ctx, args[0]));
    auto* page_ptr = reinterpret_cast<vkern::page*>(pg);
    if (!k->arena().ContainsPtr(page_ptr, sizeof(vkern::page))) {
      return vl::EvalError("page_to_virt: not a page descriptor");
    }
    return Value::MakePointer(reg->PointerTo(reg->void_type()),
                              reinterpret_cast<uint64_t>(k->buddy().PageAddress(page_ptr)));
  });

  // anon_vma pointer tag helpers (PAGE_MAPPING_ANON).
  helpers_.Register("PageAnon", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                    -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t mapping, scalar(ctx, args[0]));
    return Value::MakeInt(reg->bool_type(), mapping & 1);
  });
  helpers_.Register("page_anon_vma", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                         -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t mapping, scalar(ctx, args[0]));
    return Value::MakePointer(reg->PointerTo(reg->FindByName("anon_vma")),
                              mapping & ~uint64_t{1});
  });
  helpers_.Register("page_mapping", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                        -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t mapping, scalar(ctx, args[0]));
    return Value::MakePointer(reg->PointerTo(reg->FindByName("address_space")),
                              (mapping & 1) != 0 ? 0 : mapping);
  });

  // per_cpu(symbol-address, cpu, stride) is covered by array indexing; expose
  // a work_struct data decoder instead (pwq pointer compaction).
  helpers_.Register("work_struct_pwq", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                           -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t data, scalar(ctx, args[0]));
    return Value::MakePointer(reg->PointerTo(reg->FindByName("pool_workqueue")),
                              data & ~uint64_t{1});
  });
  helpers_.Register("work_pending", [reg, scalar](EvalContext* ctx, std::vector<Value>& args)
                                        -> vl::StatusOr<Value> {
    VL_ASSIGN_OR_RETURN(uint64_t data, scalar(ctx, args[0]));
    return Value::MakeInt(reg->bool_type(), data & 1);
  });
}

}  // namespace dbg
