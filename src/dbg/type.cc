#include "src/dbg/type.h"

#include <cassert>

#include "src/support/str.h"

namespace dbg {

const Field* Type::FindField(std::string_view field_name) const {
  for (const Field& field : fields) {
    if (field.name == field_name) {
      return &field;
    }
  }
  return nullptr;
}

std::string Type::ToString() const {
  switch (kind) {
    case TypeKind::kPointer:
      return pointee->ToString() + " *";
    case TypeKind::kArray:
      return element->ToString() + vl::StrFormat(" [%zu]", array_len);
    default:
      return name;
  }
}

TypeRegistry::TypeRegistry() {
  void_ = NewType(TypeKind::kVoid, "void", 0);
  bool_ = NewType(TypeKind::kBool, "bool", 1);
  char_ = NewType(TypeKind::kChar, "char", 1);
  func_ = NewType(TypeKind::kFunc, "<function>", 0);

  static const char* kSignedNames[4] = {"signed char", "short", "int", "long"};
  static const char* kUnsignedNames[4] = {"unsigned char", "unsigned short", "unsigned int",
                                          "unsigned long"};
  for (int log2 = 0; log2 < 4; ++log2) {
    size_t size = size_t{1} << log2;
    Type* s = NewType(TypeKind::kInt, kSignedNames[log2], size);
    s->is_signed = true;
    ints_[1][log2] = s;
    Type* u = NewType(TypeKind::kInt, kUnsignedNames[log2], size);
    ints_[0][log2] = u;
  }
  // Kernel-style aliases.
  by_name_["u8"] = const_cast<Type*>(ints_[0][0]);
  by_name_["u16"] = const_cast<Type*>(ints_[0][1]);
  by_name_["u32"] = const_cast<Type*>(ints_[0][2]);
  by_name_["u64"] = const_cast<Type*>(ints_[0][3]);
  by_name_["s8"] = const_cast<Type*>(ints_[1][0]);
  by_name_["s16"] = const_cast<Type*>(ints_[1][1]);
  by_name_["s32"] = const_cast<Type*>(ints_[1][2]);
  by_name_["s64"] = const_cast<Type*>(ints_[1][3]);
  by_name_["size_t"] = const_cast<Type*>(ints_[0][3]);
  by_name_["uintptr_t"] = const_cast<Type*>(ints_[0][3]);
  by_name_["long long"] = const_cast<Type*>(ints_[1][3]);
  by_name_["unsigned long long"] = const_cast<Type*>(ints_[0][3]);
}

Type* TypeRegistry::NewType(TypeKind kind, std::string name, size_t size) {
  auto owned = std::make_unique<Type>();
  Type* t = owned.get();
  t->kind = kind;
  t->name = std::move(name);
  t->size = size;
  all_.push_back(std::move(owned));
  if (!t->name.empty() && t->name[0] != '<') {
    by_name_.emplace(t->name, t);
  }
  return t;
}

const Type* TypeRegistry::IntType(size_t size, bool is_signed) const {
  int log2 = size == 1 ? 0 : size == 2 ? 1 : size == 4 ? 2 : 3;
  assert((size_t{1} << log2) == size && "unsupported integer width");
  return ints_[is_signed ? 1 : 0][log2];
}

const Type* TypeRegistry::PointerTo(const Type* pointee) {
  auto it = pointer_cache_.find(pointee);
  if (it != pointer_cache_.end()) {
    return it->second;
  }
  Type* t = NewType(TypeKind::kPointer, "<ptr>", 8);
  t->pointee = pointee;
  pointer_cache_[pointee] = t;
  return t;
}

const Type* TypeRegistry::ArrayOf(const Type* element, size_t len) {
  auto key = std::make_pair(element, len);
  auto it = array_cache_.find(key);
  if (it != array_cache_.end()) {
    return it->second;
  }
  Type* t = NewType(TypeKind::kArray, "<array>", element->size * len);
  t->element = element;
  t->array_len = len;
  array_cache_[key] = t;
  return t;
}

Type* TypeRegistry::DeclareStruct(std::string_view name, size_t size) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  return NewType(TypeKind::kStruct, std::string(name), size);
}

Type* TypeRegistry::DeclareUnion(std::string_view name, size_t size) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  return NewType(TypeKind::kUnion, std::string(name), size);
}

Type* TypeRegistry::DeclareEnum(std::string_view name, size_t size) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  return NewType(TypeKind::kEnum, std::string(name), size);
}

void TypeRegistry::AddField(Type* aggregate, std::string_view name, size_t offset,
                            const Type* type) {
  assert(aggregate->IsAggregate());
  aggregate->fields.push_back(Field{std::string(name), offset, type});
}

void TypeRegistry::AddEnumerator(Type* enum_type, std::string_view name, int64_t value) {
  assert(enum_type->kind == TypeKind::kEnum);
  enum_type->enumerators.emplace_back(std::string(name), value);
}

const Type* TypeRegistry::FindByName(std::string_view name) const {
  // Strip "struct "/"union "/"enum " prefixes (C tag syntax).
  for (std::string_view prefix : {"struct ", "union ", "enum "}) {
    if (name.substr(0, prefix.size()) == prefix) {
      name = name.substr(prefix.size());
    }
  }
  auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

bool TypeRegistry::FindEnumerator(std::string_view name, int64_t* value) const {
  for (const auto& owned : all_) {
    if (owned->kind != TypeKind::kEnum) {
      continue;
    }
    for (const auto& [ename, evalue] : owned->enumerators) {
      if (ename == name) {
        *value = evalue;
        return true;
      }
    }
  }
  return false;
}

std::vector<const Type*> TypeRegistry::named_types() const {
  std::vector<const Type*> out;
  for (const auto& [name, type] : by_name_) {
    out.push_back(type);
  }
  return out;
}

}  // namespace dbg
