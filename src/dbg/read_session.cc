#include "src/dbg/read_session.h"

#include <algorithm>
#include <cstring>

#include "src/support/metrics.h"
#include "src/support/str.h"
#include "src/support/trace.h"

namespace dbg {

namespace {

// Smallest power of two >= n (n > 0), capped to keep shifts sane.
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n && p < (size_t{1} << 30)) {
    p <<= 1;
  }
  return p;
}

size_t Log2(size_t pow2) {
  size_t shift = 0;
  while ((size_t{1} << shift) < pow2) {
    ++shift;
  }
  return shift;
}

}  // namespace

vl::Json CacheStats::ToJson() const {
  vl::Json j = vl::Json::Object();
  j["hits"] = vl::Json::Int(static_cast<int64_t>(hits));
  j["misses"] = vl::Json::Int(static_cast<int64_t>(misses));
  j["hit_bytes"] = vl::Json::Int(static_cast<int64_t>(hit_bytes));
  j["miss_bytes"] = vl::Json::Int(static_cast<int64_t>(miss_bytes));
  j["block_fetches"] = vl::Json::Int(static_cast<int64_t>(block_fetches));
  j["fetched_bytes"] = vl::Json::Int(static_cast<int64_t>(fetched_bytes));
  j["evictions"] = vl::Json::Int(static_cast<int64_t>(evictions));
  j["invalidations"] = vl::Json::Int(static_cast<int64_t>(invalidations));
  j["uncached_reads"] = vl::Json::Int(static_cast<int64_t>(uncached_reads));
  j["prefetches"] = vl::Json::Int(static_cast<int64_t>(prefetches));
  j["delta_invalidations"] = vl::Json::Int(static_cast<int64_t>(delta_invalidations));
  j["invalidated_bytes_full"] = vl::Json::Int(static_cast<int64_t>(invalidated_bytes_full));
  j["invalidated_bytes_delta"] = vl::Json::Int(static_cast<int64_t>(invalidated_bytes_delta));
  j["delta_prefetches"] = vl::Json::Int(static_cast<int64_t>(delta_prefetches));
  j["vector_batches"] = vl::Json::Int(static_cast<int64_t>(vector_batches));
  j["vector_blocks"] = vl::Json::Int(static_cast<int64_t>(vector_blocks));
  return j;
}

ReadSession::ReadSession(Target* target, CacheConfig config)
    : target_(target), trace_flag_(vl::Tracer::Instance().enabled_flag()) {
  epoch_ = target_->memory_generation();
  Reconfigure(config);
}

void ReadSession::Reconfigure(CacheConfig config) {
  if (config.block_bytes != 0) {
    config.block_bytes = RoundUpPow2(config.block_bytes);
    if (config.capacity_blocks == 0) {
      config.capacity_blocks = 1;
    }
  }
  config_ = config;
  block_shift_ = config_.block_bytes != 0 ? Log2(config_.block_bytes) : 0;
  blocks_.clear();
  lru_.clear();
  page_last_dirty_.clear();
  prefetched_.clear();
  dirty_floor_ = epoch_;
  if (delta_enabled()) {
    // Prime the domain's dirty log (QEMU: enabling dirty logging at attach).
    // This baselines page tracking at the current epoch, so the first epoch
    // change reports only genuinely-dirtied pages instead of "history
    // unknown, everything dirty" — which would force a full flush.
    (void)target_->DirtyPagesSince(epoch_);
  }
}

void ReadSession::InvalidateAll() {
  blocks_.clear();
  lru_.clear();
}

void ReadSession::FullInvalidate() {
  if (blocks_.empty()) {
    return;
  }
  stats_.invalidations++;
  uint64_t bytes = static_cast<uint64_t>(blocks_.size()) * config_.block_bytes;
  stats_.invalidated_bytes_full += bytes;
  if (trace_flag_->load(std::memory_order_relaxed)) {
    vl::MetricsRegistry::Instance().GetCounter("cache.invalidate.full")->Add(bytes);
  }
  InvalidateAll();
}

void ReadSession::CheckEpoch() {
  uint64_t now = target_->memory_generation();
  if (now == epoch_) {
    return;
  }
  uint64_t since = epoch_;
  epoch_ = now;
  if (config_.delta_invalidation) {
    DirtyPageInfo info = target_->DirtyPagesSince(since);
    if (info.supported) {
      ApplyDirtyInfo(info, now);
      return;
    }
  }
  // Classic contract: no dirty log, so the whole cache is presumed stale and
  // this transition leaves no per-page history behind.
  dirty_floor_ = now;
  FullInvalidate();
}

void ReadSession::ApplyDirtyInfo(const DirtyPageInfo& info, uint64_t now) {
  // Page history first: memoization validity survives even a ratio fallback
  // below, because we know exactly which pages moved.
  uint64_t page_size = info.page_size != 0 ? info.page_size : kPageGranule;
  for (uint64_t page : info.dirty_pages) {
    uint64_t first = page & ~(kPageGranule - 1);
    for (uint64_t granule = first; granule < page + page_size; granule += kPageGranule) {
      uint64_t& last = page_last_dirty_[granule];
      if (last < now) {
        last = now;
      }
    }
  }
  double ratio = info.pages_total != 0
                     ? static_cast<double>(info.dirty_pages.size()) /
                           static_cast<double>(info.pages_total)
                     : 1.0;
  if (ratio > config_.max_dirty_ratio) {
    // Too much moved: block-wise eviction would walk most of the cache for
    // nothing. One flush is cheaper and just as correct.
    FullInvalidate();
    return;
  }
  stats_.delta_invalidations++;
  if (blocks_.empty()) {
    return;
  }
  size_t dropped = 0;
  for (uint64_t page : info.dirty_pages) {
    uint64_t first_block = (page >> block_shift_) << block_shift_;
    for (uint64_t base = first_block; base < page + page_size; base += config_.block_bytes) {
      auto it = blocks_.find(base);
      if (it == blocks_.end()) {
        continue;
      }
      lru_.erase(it->second.lru_it);
      blocks_.erase(it);
      ++dropped;
    }
  }
  uint64_t bytes = static_cast<uint64_t>(dropped) * config_.block_bytes;
  stats_.invalidated_bytes_delta += bytes;
  if (dropped != 0 && trace_flag_->load(std::memory_order_relaxed)) {
    vl::MetricsRegistry::Instance().GetCounter("cache.invalidate.delta")->Add(bytes);
  }
}

uint64_t ReadSession::SyncEpoch() {
  if (cache_enabled()) {
    CheckEpoch();
  } else {
    epoch_ = target_->memory_generation();
  }
  return epoch_;
}

bool ReadSession::RangeCleanSince(uint64_t addr, size_t len, uint64_t epoch) const {
  if (epoch == epoch_) {
    return true;  // nothing has moved since
  }
  if (epoch < dirty_floor_) {
    return false;  // history not observed — presume dirty
  }
  uint64_t first = addr & ~(kPageGranule - 1);
  for (uint64_t granule = first; granule < addr + len; granule += kPageGranule) {
    auto it = page_last_dirty_.find(granule);
    if (it != page_last_dirty_.end() && it->second > epoch) {
      return false;
    }
  }
  return true;
}

void ReadSession::PushPageScope() { page_scopes_.emplace_back(); }

std::vector<uint64_t> ReadSession::PopPageScope() {
  std::unordered_set<uint64_t> top = std::move(page_scopes_.back());
  page_scopes_.pop_back();
  if (!page_scopes_.empty()) {
    page_scopes_.back().insert(top.begin(), top.end());
  }
  return std::vector<uint64_t>(top.begin(), top.end());
}

void ReadSession::NotePages(const std::vector<uint64_t>& pages) {
  if (page_scopes_.empty()) {
    return;
  }
  page_scopes_.back().insert(pages.begin(), pages.end());
}

void ReadSession::RecordPages(uint64_t addr, size_t len) {
  if (len == 0) {
    return;
  }
  std::unordered_set<uint64_t>& top = page_scopes_.back();
  uint64_t first = addr & ~(kPageGranule - 1);
  for (uint64_t granule = first; granule < addr + len; granule += kPageGranule) {
    top.insert(granule);
  }
}

const ReadSession::Block* ReadSession::LookupOrFetch(uint64_t base, bool* hit) {
  auto it = blocks_.find(base);
  if (it != blocks_.end()) {
    *hit = true;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // move to front
    return &it->second;
  }
  *hit = false;
  // One transport round trip for the whole aligned block. If the block runs
  // off the edge of readable memory the caller falls back to a direct read.
  std::vector<uint8_t> bytes(config_.block_bytes);
  if (!target_->ReadBytes(base, bytes.data(), bytes.size()).ok()) {
    return nullptr;
  }
  stats_.block_fetches++;
  stats_.fetched_bytes += bytes.size();
  while (blocks_.size() >= config_.capacity_blocks && !lru_.empty()) {
    blocks_.erase(lru_.back());
    lru_.pop_back();
    stats_.evictions++;
  }
  lru_.push_front(base);
  Block& block = blocks_[base];
  block.bytes = std::move(bytes);
  block.lru_it = lru_.begin();
  return &block;
}

vl::Status ReadSession::ReadBytes(uint64_t addr, void* out, size_t len) {
  if (!page_scopes_.empty()) {
    RecordPages(addr, len);
  }
  if (!cache_enabled() || len == 0) {
    return target_->ReadBytes(addr, out, len);
  }
  CheckEpoch();
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t pos = addr;
  size_t remaining = len;
  while (remaining > 0) {
    uint64_t base = (pos >> block_shift_) << block_shift_;
    size_t offset = static_cast<size_t>(pos - base);
    size_t take = std::min(remaining, config_.block_bytes - offset);
    bool hit = false;
    const Block* block = LookupOrFetch(base, &hit);
    if (block == nullptr) {
      // The aligned block straddles unreadable memory (e.g. the arena edge);
      // fall through to an exact-range read, charged like a raw Target read.
      stats_.uncached_reads++;
      VL_RETURN_IF_ERROR(target_->ReadBytes(pos, dst, take));
      if (trace_flag_->load(std::memory_order_relaxed)) {
        vl::Tracer::Instance().Annotate("cache.miss_bytes",
                                        static_cast<int64_t>(take));
      }
    } else {
      std::memcpy(dst, block->bytes.data() + offset, take);
      if (hit) {
        stats_.hits++;
        stats_.hit_bytes += take;
      } else {
        stats_.misses++;
        stats_.miss_bytes += take;
      }
      if (trace_flag_->load(std::memory_order_relaxed)) {
        vl::Tracer::Instance().Annotate(hit ? "cache.hit_bytes" : "cache.miss_bytes",
                                        static_cast<int64_t>(take));
      }
    }
    dst += take;
    pos += take;
    remaining -= take;
  }
  return vl::Status::Ok();
}

vl::StatusOr<uint64_t> ReadSession::ReadUnsigned(uint64_t addr, size_t size) {
  if (size == 0 || size > 8) {
    return vl::InvalidArgumentError(vl::StrFormat("bad scalar width %zu", size));
  }
  uint64_t value = 0;
  VL_RETURN_IF_ERROR(ReadBytes(addr, &value, size));  // little-endian host
  return value;
}

vl::StatusOr<int64_t> ReadSession::ReadSigned(uint64_t addr, size_t size) {
  VL_ASSIGN_OR_RETURN(uint64_t raw, ReadUnsigned(addr, size));
  if (size < 8) {
    uint64_t sign_bit = 1ull << (size * 8 - 1);
    if ((raw & sign_bit) != 0) {
      raw |= ~((sign_bit << 1) - 1);
    }
  }
  return static_cast<int64_t>(raw);
}

vl::StatusOr<std::string> ReadSession::ReadCString(uint64_t addr, size_t max_len) {
  if (!cache_enabled()) {
    return target_->ReadCString(addr, max_len);
  }
  // Same chunked contract as Target::ReadCString (64-byte chunks, byte-wise
  // retry at unreadable boundaries), but each chunk flows through the block
  // cache so repeated name fetches are free.
  std::string out;
  char chunk[64];
  while (out.size() < max_len) {
    size_t want = std::min(sizeof(chunk), max_len - out.size());
    if (!ReadBytes(addr + out.size(), chunk, want).ok()) {
      size_t ok = 0;
      while (ok < want && ReadBytes(addr + out.size() + ok, chunk + ok, 1).ok()) {
        ++ok;
      }
      if (ok == 0) {
        return vl::MemoryFaultError(vl::StrFormat(
            "cannot read string at 0x%llx", static_cast<unsigned long long>(addr)));
      }
      want = ok;
    }
    for (size_t i = 0; i < want; ++i) {
      if (chunk[i] == '\0') {
        return out;
      }
      out.push_back(chunk[i]);
    }
  }
  return out;
}

void ReadSession::Prefetch(uint64_t addr, size_t len) {
  if (!cache_enabled() || len == 0) {
    return;
  }
  CheckEpoch();
  uint64_t base = (addr >> block_shift_) << block_shift_;
  uint64_t end = addr + len;
  for (uint64_t b = base; b < end; b += config_.block_bytes) {
    bool hit = false;
    (void)LookupOrFetch(b, &hit);  // best effort; failures fall back at read
  }
}

ReadSession::SpanFetch ReadSession::FetchSpans(
    const std::vector<Span>& spans,
    std::unordered_map<uint64_t, std::vector<uint8_t>>* snapshot) {
  SpanFetch out;
  if (!cache_enabled()) {
    return out;
  }
  CheckEpoch();
  // Gather the aligned blocks the spans cover; cached blocks are touched
  // (LRU) and copied into the snapshot, missing blocks queue for the batch.
  std::vector<uint64_t> missing;
  std::unordered_set<uint64_t> seen;
  for (const Span& span : spans) {
    if (span.len == 0) {
      continue;
    }
    uint64_t base = (span.addr >> block_shift_) << block_shift_;
    uint64_t end = span.addr + span.len;
    for (uint64_t b = base; b < end; b += config_.block_bytes) {
      if (!seen.insert(b).second) {
        continue;
      }
      auto it = blocks_.find(b);
      if (it != blocks_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        if (snapshot != nullptr) {
          (*snapshot)[b] = it->second.bytes;
        }
        continue;
      }
      missing.push_back(b);
    }
  }
  if (missing.empty()) {
    return out;
  }
  // One vectored transport request for every missing block.
  std::vector<std::vector<uint8_t>> buffers(missing.size());
  std::vector<ReadSpan> batch(missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    buffers[i].resize(config_.block_bytes);
    batch[i] = ReadSpan{missing[i], config_.block_bytes, buffers[i].data(), false};
  }
  (void)target_->ReadVector(batch);
  out.batches = 1;
  stats_.vector_batches++;
  for (size_t i = 0; i < missing.size(); ++i) {
    if (!batch[i].ok) {
      continue;  // unreadable block: reads of it fall back to exact ranges
    }
    out.fetched_blocks++;
    stats_.vector_blocks++;
    stats_.fetched_bytes += config_.block_bytes;
    while (blocks_.size() >= config_.capacity_blocks && !lru_.empty()) {
      blocks_.erase(lru_.back());
      lru_.pop_back();
      stats_.evictions++;
    }
    lru_.push_front(missing[i]);
    Block& block = blocks_[missing[i]];
    if (snapshot != nullptr) {
      (*snapshot)[missing[i]] = buffers[i];
    }
    block.bytes = std::move(buffers[i]);
    block.lru_it = lru_.begin();
  }
  return out;
}

void ReadSession::PrefetchObject(uint64_t addr, const Type* type) {
  if (type == nullptr || type->size == 0) {
    return;
  }
  stats_.prefetches++;
  if (cache_enabled() && config_.delta_invalidation) {
    CheckEpoch();
    auto it = prefetched_.find(addr);
    if (it != prefetched_.end() && it->second.bytes == type->size) {
      // Re-prefetch of a known object: warm only the granules dirtied since
      // the last prefetch. Clean granules are either still cached or not
      // worth a speculative fetch (a read faults them in on demand).
      stats_.delta_prefetches++;
      uint64_t end = addr + type->size;
      uint64_t first = addr & ~(kPageGranule - 1);
      for (uint64_t granule = first; granule < end; granule += kPageGranule) {
        if (RangeCleanSince(granule, kPageGranule, it->second.epoch)) {
          continue;
        }
        uint64_t lo = std::max(granule, addr);
        uint64_t hi = std::min(granule + kPageGranule, end);
        Prefetch(lo, static_cast<size_t>(hi - lo));
      }
      it->second.epoch = epoch_;
      return;
    }
    if (prefetched_.size() >= (size_t{1} << 16)) {
      prefetched_.clear();  // bound the registry; worst case we re-warm fully
    }
    prefetched_[addr] = PrefetchedObject{type->size, epoch_};
  }
  Prefetch(addr, type->size);
}

vl::Json ReadSession::StatsToJson() const {
  vl::Json j = stats_.ToJson();
  j["enabled"] = vl::Json::Bool(cache_enabled());
  j["block_bytes"] = vl::Json::Int(static_cast<int64_t>(config_.block_bytes));
  j["capacity_blocks"] = vl::Json::Int(static_cast<int64_t>(config_.capacity_blocks));
  j["cached_blocks"] = vl::Json::Int(static_cast<int64_t>(blocks_.size()));
  j["hit_rate"] = vl::Json::Number(stats_.HitRate());
  j["delta_enabled"] = vl::Json::Bool(delta_enabled());
  return j;
}

}  // namespace dbg
