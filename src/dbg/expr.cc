#include "src/dbg/expr.h"

#include <cassert>
#include <cctype>

#include "src/support/str.h"

namespace dbg {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd,
  kInt,
  kIdent,
  kAtIdent,
  kPunct,
};

struct Token {
  Tok kind = Tok::kEnd;
  uint64_t ival = 0;
  std::string text;   // identifier text or punctuation spelling
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  vl::Status Run(std::vector<Token>* out) {
    while (true) {
      SkipSpace();
      if (pos_ >= src_.size()) {
        out->push_back(Token{Tok::kEnd, 0, "", pos_});
        return vl::Status::Ok();
      }
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        VL_RETURN_IF_ERROR(LexNumber(out));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdent(out);
      } else if (c == '@') {
        ++pos_;
        if (pos_ >= src_.size() ||
            (!std::isalpha(static_cast<unsigned char>(src_[pos_])) && src_[pos_] != '_')) {
          return vl::ParseError("'@' must be followed by a name");
        }
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
          ++pos_;
        }
        out->push_back(Token{Tok::kAtIdent, 0, std::string(src_.substr(start, pos_ - start)),
                             start - 1});
      } else if (c == '\'') {
        VL_RETURN_IF_ERROR(LexChar(out));
      } else {
        VL_RETURN_IF_ERROR(LexPunct(out));
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  vl::Status LexNumber(std::vector<Token>* out) {
    size_t start = pos_;
    int base = 10;
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      base = 16;
      pos_ += 2;
    } else if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
      base = 8;
      ++pos_;
    }
    uint64_t value = 0;
    bool any = false;
    while (pos_ < src_.size()) {
      char c = static_cast<char>(std::tolower(static_cast<unsigned char>(src_[pos_])));
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        break;
      }
      if (digit >= base) {
        return vl::ParseError(vl::StrFormat("bad digit in numeric literal at %zu", pos_));
      }
      value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
      ++pos_;
      any = true;
    }
    if (!any && base == 16) {
      return vl::ParseError("incomplete hex literal");
    }
    // Swallow integer suffixes (ul, ull, u, l).
    while (pos_ < src_.size() &&
           (src_[pos_] == 'u' || src_[pos_] == 'U' || src_[pos_] == 'l' || src_[pos_] == 'L')) {
      ++pos_;
    }
    out->push_back(Token{Tok::kInt, value, "", start});
    return vl::Status::Ok();
  }

  void LexIdent(std::vector<Token>* out) {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
      ++pos_;
    }
    out->push_back(Token{Tok::kIdent, 0, std::string(src_.substr(start, pos_ - start)), start});
  }

  vl::Status LexChar(std::vector<Token>* out) {
    size_t start = pos_++;
    if (pos_ >= src_.size()) {
      return vl::ParseError("unterminated character literal");
    }
    uint64_t value;
    if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
      ++pos_;
      switch (src_[pos_]) {
        case 'n':
          value = '\n';
          break;
        case 't':
          value = '\t';
          break;
        case '0':
          value = 0;
          break;
        case '\\':
          value = '\\';
          break;
        case '\'':
          value = '\'';
          break;
        default:
          return vl::ParseError("unknown escape in character literal");
      }
      ++pos_;
    } else {
      value = static_cast<uint64_t>(src_[pos_++]);
    }
    if (pos_ >= src_.size() || src_[pos_] != '\'') {
      return vl::ParseError("unterminated character literal");
    }
    ++pos_;
    out->push_back(Token{Tok::kInt, value, "", start});
    return vl::Status::Ok();
  }

  vl::Status LexPunct(std::vector<Token>* out) {
    static const char* kTwoChar[] = {"->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||"};
    size_t start = pos_;
    for (const char* two : kTwoChar) {
      if (src_.substr(pos_, 2) == two) {
        pos_ += 2;
        out->push_back(Token{Tok::kPunct, 0, two, start});
        return vl::Status::Ok();
      }
    }
    static const std::string_view kOneChar = "()[].*&!~+-/%<>^|?:,";
    char c = src_[pos_];
    if (kOneChar.find(c) == std::string_view::npos) {
      return vl::ParseError(vl::StrFormat("unexpected character '%c' at %zu", c, pos_));
    }
    ++pos_;
    out->push_back(Token{Tok::kPunct, 0, std::string(1, c), start});
    return vl::Status::Ok();
  }

  std::string_view src_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Node {
  enum Kind {
    kInt,
    kIdent,
    kAtRef,
    kUnary,    // op in text
    kBinary,   // op in text
    kTernary,
    kCall,     // text = callee name
    kMember,   // text = field name (covers both . and ->)
    kIndex,
    kCast,     // text = type spelling (e.g. "task_struct**")
    kSizeofType,
  };
  Kind kind;
  uint64_t ival = 0;
  std::string text;
  std::vector<std::unique_ptr<Node>> kids;
};

std::unique_ptr<Node> MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent with precedence climbing for binaries)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  vl::StatusOr<std::unique_ptr<Node>> Parse() {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> node, ParseTernary());
    if (!AtEnd()) {
      return Err("trailing tokens after expression");
    }
    return node;
  }

 private:
  const Token& Cur() const { return toks_[idx_]; }
  bool AtEnd() const { return Cur().kind == Tok::kEnd; }
  void Advance() { ++idx_; }

  bool IsPunct(std::string_view p) const {
    return Cur().kind == Tok::kPunct && Cur().text == p;
  }
  bool EatPunct(std::string_view p) {
    if (IsPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }

  vl::Status Err(std::string_view message) const {
    return vl::ParseError(vl::StrFormat("%.*s (near position %zu)",
                                        static_cast<int>(message.size()), message.data(),
                                        Cur().pos));
  }

  // Type-name detection for casts: `( words *... )` where the first word is a
  // type keyword or a registered-looking name followed by at least one '*',
  // or any multi-word builtin spelling.
  static bool IsTypeKeyword(const std::string& word) {
    static const char* kWords[] = {"struct", "union", "enum", "unsigned", "signed",
                                   "void",   "bool",  "char", "short",    "int",
                                   "long",   "u8",    "u16",  "u32",      "u64",
                                   "s8",     "s16",   "s32",  "s64",      "size_t",
                                   "uintptr_t"};
    for (const char* w : kWords) {
      if (word == w) {
        return true;
      }
    }
    return false;
  }

  // Tries to parse "(typename)" starting at the current '('; returns the type
  // spelling or empty if this is not a cast. Only commits on success.
  std::string TryParseCastType() {
    size_t save = idx_;
    if (!EatPunct("(")) {
      return "";
    }
    std::vector<std::string> words;
    while (Cur().kind == Tok::kIdent) {
      words.push_back(Cur().text);
      Advance();
    }
    int stars = 0;
    while (IsPunct("*")) {
      ++stars;
      Advance();
    }
    bool closed = EatPunct(")");
    bool type_like =
        !words.empty() && (IsTypeKeyword(words[0]) || words.size() > 1 || stars > 0);
    // A cast must be followed by the start of a unary expression.
    bool followed = !AtEnd() && (Cur().kind != Tok::kPunct || IsPunct("(") || IsPunct("*") ||
                                 IsPunct("&") || IsPunct("!") || IsPunct("~") || IsPunct("-"));
    if (!closed || !type_like || !followed) {
      idx_ = save;
      return "";
    }
    std::string spelling = vl::StrJoin(words, " ");
    for (int i = 0; i < stars; ++i) {
      spelling += "*";
    }
    return spelling;
  }

  vl::StatusOr<std::unique_ptr<Node>> ParseTernary() {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> cond, ParseBinary(0));
    if (!EatPunct("?")) {
      return cond;
    }
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> then_expr, ParseTernary());
    if (!EatPunct(":")) {
      return Err("expected ':' in ternary expression");
    }
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> else_expr, ParseTernary());
    auto node = MakeNode(Node::kTernary);
    node->kids.push_back(std::move(cond));
    node->kids.push_back(std::move(then_expr));
    node->kids.push_back(std::move(else_expr));
    return node;
  }

  static int Precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  vl::StatusOr<std::unique_ptr<Node>> ParseBinary(int min_prec) {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> lhs, ParseUnary());
    while (Cur().kind == Tok::kPunct) {
      int prec = Precedence(Cur().text);
      if (prec < 0 || prec < min_prec) {
        break;
      }
      std::string op = Cur().text;
      Advance();
      VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> rhs, ParseBinary(prec + 1));
      auto node = MakeNode(Node::kBinary);
      node->text = op;
      node->kids.push_back(std::move(lhs));
      node->kids.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  vl::StatusOr<std::unique_ptr<Node>> ParseUnary() {
    for (std::string_view op : {"*", "&", "!", "~", "-", "+"}) {
      if (IsPunct(op)) {
        std::string spelling(op);
        Advance();
        VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> operand, ParseUnary());
        if (spelling == "+") {
          return operand;
        }
        auto node = MakeNode(Node::kUnary);
        node->text = spelling;
        node->kids.push_back(std::move(operand));
        return node;
      }
    }
    if (Cur().kind == Tok::kIdent && Cur().text == "sizeof") {
      Advance();
      if (!EatPunct("(")) {
        return Err("expected '(' after sizeof");
      }
      std::vector<std::string> words;
      while (Cur().kind == Tok::kIdent) {
        words.push_back(Cur().text);
        Advance();
      }
      std::string spelling = vl::StrJoin(words, " ");
      while (IsPunct("*")) {
        spelling += "*";
        Advance();
      }
      if (!EatPunct(")")) {
        return Err("expected ')' after sizeof type");
      }
      auto node = MakeNode(Node::kSizeofType);
      node->text = spelling;
      return node;
    }
    if (IsPunct("(")) {
      std::string cast_type = TryParseCastType();
      if (!cast_type.empty()) {
        VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> operand, ParseUnary());
        auto node = MakeNode(Node::kCast);
        node->text = cast_type;
        node->kids.push_back(std::move(operand));
        return node;
      }
    }
    return ParsePostfix();
  }

  vl::StatusOr<std::unique_ptr<Node>> ParsePostfix() {
    VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> node, ParsePrimary());
    while (true) {
      if (EatPunct(".") || (IsPunct("->") && (Advance(), true))) {
        if (Cur().kind != Tok::kIdent) {
          return Err("expected member name");
        }
        auto member = MakeNode(Node::kMember);
        member->text = Cur().text;
        Advance();
        member->kids.push_back(std::move(node));
        node = std::move(member);
      } else if (EatPunct("[")) {
        VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> index, ParseTernary());
        if (!EatPunct("]")) {
          return Err("expected ']'");
        }
        auto idx = MakeNode(Node::kIndex);
        idx->kids.push_back(std::move(node));
        idx->kids.push_back(std::move(index));
        node = std::move(idx);
      } else {
        break;
      }
    }
    return node;
  }

  vl::StatusOr<std::unique_ptr<Node>> ParsePrimary() {
    if (Cur().kind == Tok::kInt) {
      auto node = MakeNode(Node::kInt);
      node->ival = Cur().ival;
      Advance();
      return node;
    }
    if (Cur().kind == Tok::kAtIdent) {
      auto node = MakeNode(Node::kAtRef);
      node->text = Cur().text;
      Advance();
      return node;
    }
    if (Cur().kind == Tok::kIdent) {
      std::string name = Cur().text;
      Advance();
      if (EatPunct("(")) {
        auto node = MakeNode(Node::kCall);
        node->text = name;
        if (!EatPunct(")")) {
          while (true) {
            VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> arg, ParseTernary());
            node->kids.push_back(std::move(arg));
            if (EatPunct(")")) {
              break;
            }
            if (!EatPunct(",")) {
              return Err("expected ',' or ')' in call");
            }
          }
        }
        return node;
      }
      auto node = MakeNode(Node::kIdent);
      node->text = name;
      return node;
    }
    if (EatPunct("(")) {
      VL_ASSIGN_OR_RETURN(std::unique_ptr<Node> inner, ParseTernary());
      if (!EatPunct(")")) {
        return Err("expected ')'");
      }
      return inner;
    }
    return Err("expected an expression");
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  Evaluator(EvalContext* ctx, const Environment* env) : ctx_(ctx), env_(env) {}

  vl::StatusOr<Value> Eval(const Node* node) {
    switch (node->kind) {
      case Node::kInt:
        return Value::MakeInt(ctx_->types()->u64(), node->ival);
      case Node::kAtRef:
        return EvalAtRef(node);
      case Node::kIdent:
        return EvalIdent(node);
      case Node::kUnary:
        return EvalUnary(node);
      case Node::kBinary:
        return EvalBinary(node);
      case Node::kTernary:
        return EvalTernary(node);
      case Node::kCall:
        return EvalCall(node);
      case Node::kMember: {
        VL_ASSIGN_OR_RETURN(Value base, Eval(node->kids[0].get()));
        return base.Member(ctx_->session(), ctx_->types(), node->text);
      }
      case Node::kIndex: {
        VL_ASSIGN_OR_RETURN(Value base, Eval(node->kids[0].get()));
        VL_ASSIGN_OR_RETURN(Value index, Eval(node->kids[1].get()));
        VL_ASSIGN_OR_RETURN(index, index.Load(ctx_->session()));
        return base.Index(ctx_->session(), ctx_->types(), index.AsSigned());
      }
      case Node::kCast:
        return EvalCast(node);
      case Node::kSizeofType: {
        const Type* type = ResolveTypeSpelling(node->text);
        if (type == nullptr) {
          return vl::EvalError("sizeof of unknown type '" + node->text + "'");
        }
        return Value::MakeInt(ctx_->types()->u64(), type->size);
      }
    }
    return vl::InternalError("unhandled AST node");
  }

 private:
  vl::StatusOr<Value> EvalAtRef(const Node* node) {
    if (env_ != nullptr) {
      auto it = env_->find(node->text);
      if (it != env_->end()) {
        return it->second;
      }
    }
    return vl::EvalError("unbound @" + node->text);
  }

  vl::StatusOr<Value> EvalIdent(const Node* node) {
    const std::string& name = node->text;
    if (name == "NULL" || name == "null" || name == "nullptr") {
      return Value::MakePointer(ctx_->types()->PointerTo(ctx_->types()->void_type()), 0);
    }
    if (name == "true") {
      return Value::MakeInt(ctx_->types()->bool_type(), 1);
    }
    if (name == "false") {
      return Value::MakeInt(ctx_->types()->bool_type(), 0);
    }
    int64_t enum_value = 0;
    if (ctx_->types()->FindEnumerator(name, &enum_value)) {
      return Value::MakeInt(ctx_->types()->u64(), static_cast<uint64_t>(enum_value));
    }
    Value global;
    if (ctx_->symbols() != nullptr && ctx_->symbols()->FindGlobal(name, &global)) {
      return global;
    }
    return vl::EvalError("unknown identifier '" + name + "'");
  }

  vl::StatusOr<Value> EvalUnary(const Node* node) {
    VL_ASSIGN_OR_RETURN(Value operand, Eval(node->kids[0].get()));
    const std::string& op = node->text;
    if (op == "*") {
      return operand.Deref(ctx_->session(), ctx_->types());
    }
    if (op == "&") {
      return operand.AddressOf(ctx_->types());
    }
    VL_ASSIGN_OR_RETURN(Value loaded, operand.Load(ctx_->session()));
    if (op == "!") {
      return Value::MakeInt(ctx_->types()->IntType(4, true), loaded.bits() == 0 ? 1 : 0);
    }
    if (op == "~") {
      return Value::MakeInt(loaded.type(), ~loaded.bits());
    }
    if (op == "-") {
      return Value::MakeInt(ctx_->types()->IntType(8, true),
                            static_cast<uint64_t>(-loaded.AsSigned()));
    }
    return vl::InternalError("unhandled unary operator " + op);
  }

  vl::StatusOr<Value> EvalBinary(const Node* node) {
    const std::string& op = node->text;
    // Short-circuit logical operators.
    if (op == "&&" || op == "||") {
      VL_ASSIGN_OR_RETURN(Value lhs, Eval(node->kids[0].get()));
      VL_ASSIGN_OR_RETURN(bool lb, lhs.ToBool(ctx_->session()));
      if (op == "&&" && !lb) {
        return Value::MakeInt(ctx_->types()->IntType(4, true), 0);
      }
      if (op == "||" && lb) {
        return Value::MakeInt(ctx_->types()->IntType(4, true), 1);
      }
      VL_ASSIGN_OR_RETURN(Value rhs, Eval(node->kids[1].get()));
      VL_ASSIGN_OR_RETURN(bool rb, rhs.ToBool(ctx_->session()));
      return Value::MakeInt(ctx_->types()->IntType(4, true), rb ? 1 : 0);
    }

    VL_ASSIGN_OR_RETURN(Value lhs_raw, Eval(node->kids[0].get()));
    VL_ASSIGN_OR_RETURN(Value rhs_raw, Eval(node->kids[1].get()));
    VL_ASSIGN_OR_RETURN(Value lhs, lhs_raw.Load(ctx_->session()));
    VL_ASSIGN_OR_RETURN(Value rhs, rhs_raw.Load(ctx_->session()));

    // Pointer arithmetic: ptr +/- int is scaled by the pointee size.
    if (lhs.type() != nullptr && lhs.type()->kind == TypeKind::kPointer &&
        (op == "+" || op == "-") && rhs.type() != nullptr &&
        rhs.type()->kind != TypeKind::kPointer) {
      uint64_t scale = lhs.type()->pointee->size;
      scale = scale == 0 ? 1 : scale;
      uint64_t delta = rhs.bits() * scale;
      return Value::MakePointer(lhs.type(),
                                op == "+" ? lhs.bits() + delta : lhs.bits() - delta);
    }

    uint64_t a = lhs.bits();
    uint64_t b = rhs.bits();
    bool is_signed = (lhs.type() != nullptr && lhs.type()->is_signed) &&
                     (rhs.type() != nullptr && rhs.type()->is_signed);
    const Type* int_type = ctx_->types()->IntType(8, is_signed);
    const Type* cmp_type = ctx_->types()->IntType(4, true);

    if (op == "+") return Value::MakeInt(int_type, a + b);
    if (op == "-") return Value::MakeInt(int_type, a - b);
    if (op == "*") return Value::MakeInt(int_type, a * b);
    if (op == "/") {
      if (b == 0) {
        return vl::EvalError("division by zero");
      }
      return Value::MakeInt(
          int_type, is_signed ? static_cast<uint64_t>(lhs.AsSigned() / rhs.AsSigned()) : a / b);
    }
    if (op == "%") {
      if (b == 0) {
        return vl::EvalError("modulo by zero");
      }
      return Value::MakeInt(
          int_type, is_signed ? static_cast<uint64_t>(lhs.AsSigned() % rhs.AsSigned()) : a % b);
    }
    if (op == "&") return Value::MakeInt(int_type, a & b);
    if (op == "|") return Value::MakeInt(int_type, a | b);
    if (op == "^") return Value::MakeInt(int_type, a ^ b);
    if (op == "<<") return Value::MakeInt(int_type, a << (b & 63));
    if (op == ">>") return Value::MakeInt(int_type, a >> (b & 63));
    if (op == "==") return Value::MakeInt(cmp_type, a == b ? 1 : 0);
    if (op == "!=") return Value::MakeInt(cmp_type, a != b ? 1 : 0);
    if (op == "<") {
      return Value::MakeInt(cmp_type,
                            (is_signed ? lhs.AsSigned() < rhs.AsSigned() : a < b) ? 1 : 0);
    }
    if (op == "<=") {
      return Value::MakeInt(cmp_type,
                            (is_signed ? lhs.AsSigned() <= rhs.AsSigned() : a <= b) ? 1 : 0);
    }
    if (op == ">") {
      return Value::MakeInt(cmp_type,
                            (is_signed ? lhs.AsSigned() > rhs.AsSigned() : a > b) ? 1 : 0);
    }
    if (op == ">=") {
      return Value::MakeInt(cmp_type,
                            (is_signed ? lhs.AsSigned() >= rhs.AsSigned() : a >= b) ? 1 : 0);
    }
    return vl::InternalError("unhandled binary operator " + op);
  }

  vl::StatusOr<Value> EvalTernary(const Node* node) {
    VL_ASSIGN_OR_RETURN(Value cond, Eval(node->kids[0].get()));
    VL_ASSIGN_OR_RETURN(bool b, cond.ToBool(ctx_->session()));
    return Eval(node->kids[b ? 1 : 2].get());
  }

  vl::StatusOr<Value> EvalCall(const Node* node) {
    const HelperFn* fn =
        ctx_->helpers() != nullptr ? ctx_->helpers()->Find(node->text) : nullptr;
    if (fn == nullptr) {
      return vl::EvalError("unknown helper function '" + node->text + "'");
    }
    std::vector<Value> args;
    for (const auto& kid : node->kids) {
      VL_ASSIGN_OR_RETURN(Value arg, Eval(kid.get()));
      args.push_back(arg);
    }
    return (*fn)(ctx_, args);
  }

  const Type* ResolveTypeSpelling(std::string_view spelling) {
    // Split trailing '*'s from the base name.
    int stars = 0;
    while (!spelling.empty() && spelling.back() == '*') {
      spelling.remove_suffix(1);
      ++stars;
    }
    spelling = vl::StrTrim(spelling);
    const Type* base = ctx_->types()->FindByName(spelling);
    if (base == nullptr) {
      return nullptr;
    }
    for (int i = 0; i < stars; ++i) {
      base = ctx_->types()->PointerTo(base);
    }
    return base;
  }

  vl::StatusOr<Value> EvalCast(const Node* node) {
    const Type* target_type = ResolveTypeSpelling(node->text);
    if (target_type == nullptr) {
      return vl::EvalError("cast to unknown type '" + node->text + "'");
    }
    VL_ASSIGN_OR_RETURN(Value operand, Eval(node->kids[0].get()));
    VL_ASSIGN_OR_RETURN(Value loaded, operand.Load(ctx_->session()));
    if (loaded.is_lvalue()) {
      // Aggregate reinterpretation: retype the location.
      return Value::MakeLValue(target_type, loaded.addr());
    }
    if (target_type->kind == TypeKind::kPointer) {
      return Value::MakePointer(target_type, loaded.bits());
    }
    uint64_t bits = loaded.bits();
    if (target_type->size < 8) {
      uint64_t mask = (1ull << (target_type->size * 8)) - 1;
      bits &= mask;
      if (target_type->is_signed && (bits & (1ull << (target_type->size * 8 - 1))) != 0) {
        bits |= ~mask;
      }
    }
    return Value::MakeInt(target_type, bits);
  }

  EvalContext* ctx_;
  const Environment* env_;
};

vl::StatusOr<std::unique_ptr<Node>> ParseExpression(std::string_view expr) {
  Lexer lexer(expr);
  std::vector<Token> tokens;
  VL_RETURN_IF_ERROR(lexer.Run(&tokens));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace

vl::StatusOr<Value> EvalCExpression(EvalContext* ctx, std::string_view expr,
                                    const Environment* env) {
  auto parsed = ParseExpression(expr);
  if (!parsed.ok()) {
    return vl::ParseError(parsed.status().message() + " in '" + std::string(expr) + "'");
  }
  Evaluator evaluator(ctx, env);
  return evaluator.Eval(parsed.value().get());
}

vl::Status CheckCExpression(std::string_view expr) {
  auto parsed = ParseExpression(expr);
  return parsed.ok() ? vl::Status::Ok() : parsed.status();
}

}  // namespace dbg
