// KernelDebugger: attaches the debugger substrate to a simulated kernel.
//
// This plays the role of `gdb vmlinux` + the Visualinux GDB scripts: it
// populates the TypeRegistry with machine-accurate struct layouts (offsetof/
// sizeof of the real structs), exports the kernel's global objects as symbols,
// and registers the helper functions (kernel static inlines invisible to a
// debugger) that ViewCL programs call inside ${...} expressions.

#ifndef SRC_DBG_KERNEL_INTROSPECT_H_
#define SRC_DBG_KERNEL_INTROSPECT_H_

#include <memory>

#include "src/dbg/expr.h"
#include "src/dbg/read_session.h"
#include "src/dbg/symbols.h"
#include "src/dbg/target.h"
#include "src/dbg/type.h"
#include "src/vkern/kernel.h"
#include "src/vkern/page_journal.h"

namespace dbg {

// The per-kernel debugger bundle (types + symbols + target + read session).
// For multi-client or serving use, don't hold one of these directly — boot it
// as a vserve shard (vserve::Server::BootShard/AddShard, src/serve/server.h)
// and attach sessions via Server::Connect, so the block cache, extraction
// engines, and refresh dedup are shared safely across clients.
class KernelDebugger {
 public:
  explicit KernelDebugger(vkern::Kernel* kernel,
                          LatencyModel model = LatencyModel::Free(),
                          CacheConfig cache = CacheConfig{});

  KernelDebugger(const KernelDebugger&) = delete;
  KernelDebugger& operator=(const KernelDebugger&) = delete;

  vkern::Kernel* kernel() { return kernel_; }
  TypeRegistry& types() { return types_; }
  Target& target() { return *target_; }
  // The cached read front-end every extract-pipeline consumer goes through.
  ReadSession& session() { return *session_; }
  SymbolTable& symbols() { return symbols_; }
  HelperRegistry& helpers() { return helpers_; }
  EvalContext& context() { return *context_; }

  // Convenience: evaluates a C expression with an optional environment.
  vl::StatusOr<Value> Eval(std::string_view expr, const Environment* env = nullptr) {
    return EvalCExpression(context_.get(), expr, env);
  }

 private:
  class ArenaMemory : public MemoryDomain {
   public:
    ArenaMemory(vkern::Arena* arena, const vkern::Kernel* kernel)
        : arena_(arena), kernel_(kernel) {}
    bool ReadBytes(uint64_t addr, void* out, size_t len) const override;
    // The kernel bumps its generation on every mutation entry point; caching
    // sessions invalidate when this moves.
    uint64_t generation() const override;
    // Dirty-page log over the arena, backed by a lazily built PageJournal so
    // sessions that never query it pay no hashing cost.
    DirtyPageInfo DirtyPagesSince(uint64_t since_generation) const override;

   private:
    vkern::Arena* arena_;
    const vkern::Kernel* kernel_;
    mutable std::unique_ptr<vkern::PageJournal> journal_;  // lazy
  };

  void RegisterTypes();
  void RegisterEnums();
  void RegisterSymbols();
  void RegisterHelpers();
  void BuildStateStringTable();

  vkern::Kernel* kernel_;
  ArenaMemory memory_;
  TypeRegistry types_;
  SymbolTable symbols_;
  HelperRegistry helpers_;
  std::unique_ptr<Target> target_;
  std::unique_ptr<ReadSession> session_;
  std::unique_ptr<EvalContext> context_;
  // In-arena C strings for the task_state() helper.
  uint64_t state_string_addrs_[8] = {};
};

}  // namespace dbg

#endif  // SRC_DBG_KERNEL_INTROSPECT_H_
